#pragma once
// The computation graph G = (V, E): a DAG of operators whose edges are
// tensors (Section 3 of the paper). Provides a builder API used by the model
// zoo, adjacency queries used by the scheduler, and validation.

#include <span>
#include <string>
#include <vector>

#include "graph/op.hpp"

namespace ios {

class Graph {
 public:
  /// @param batch batch size N of every tensor in the graph.
  explicit Graph(int batch, std::string name = "graph");

  // ---- builder API -------------------------------------------------------

  /// Starts a new block; ops added afterwards belong to it. Returns its index.
  int begin_block();

  OpId input(int c, int h, int w, std::string name = "input");

  /// Conv-Relu unit. Same padding rules as cuDNN cross-correlation.
  OpId conv2d(OpId in, const Conv2dAttrs& attrs, std::string name = "");

  /// Relu-SepConv unit (depthwise k x k followed by pointwise 1x1). The
  /// multi-input overload sums identically-shaped inputs before the unit.
  OpId sepconv(OpId in, const SepConvAttrs& attrs, std::string name = "");
  OpId sepconv(std::span<const OpId> ins, const SepConvAttrs& attrs,
               std::string name = "");

  OpId pool2d(OpId in, const Pool2dAttrs& attrs, std::string name = "");
  OpId matmul(OpId in, const MatmulAttrs& attrs, std::string name = "");
  OpId relu(OpId in, std::string name = "");
  OpId concat(std::span<const OpId> ins, std::string name = "");
  OpId add(OpId a, OpId b, std::string name = "");
  OpId identity(OpId in, std::string name = "");
  OpId split(OpId in, int begin_channel, int end_channel,
             std::string name = "");

  // ---- queries -----------------------------------------------------------

  int batch() const { return batch_; }
  const std::string& name() const { return name_; }
  int num_ops() const { return static_cast<int>(ops_.size()); }
  const Op& op(OpId id) const { return ops_[static_cast<std::size_t>(id)]; }
  std::span<const Op> ops() const { return ops_; }

  std::span<const OpId> preds(OpId id) const {
    return ops_[static_cast<std::size_t>(id)].inputs;
  }
  std::span<const OpId> succs(OpId id) const {
    return succs_[static_cast<std::size_t>(id)];
  }

  /// Ids grouped by block, blocks in creation order; ops in insertion
  /// (hence topological) order within each block. Input ops are excluded.
  std::vector<std::vector<OpId>> blocks() const;

  int num_blocks() const { return next_block_; }

  /// All non-input ops in insertion order (a valid topological order).
  std::vector<OpId> schedulable_ops() const;

  std::int64_t flops(OpId id) const;
  std::int64_t weight_bytes(OpId id) const;
  std::int64_t input_bytes(OpId id) const;
  std::int64_t output_bytes(OpId id) const;

  std::int64_t total_flops() const;

  /// Checks DAG invariants (defined inputs, consistent shapes, blocks are
  /// contiguous in dependency order). Throws std::runtime_error on violation.
  void validate() const;

  std::string to_string() const;

 private:
  OpId add_op(Op op);
  std::vector<TensorDesc> input_descs(const Op& op) const;

  /// Bounds-checked access for builder methods (throws std::out_of_range).
  const Op& checked_op(OpId id) const;

  int batch_;
  std::string name_;
  int next_block_ = 0;
  std::vector<Op> ops_;
  std::vector<std::vector<OpId>> succs_;
};

}  // namespace ios
