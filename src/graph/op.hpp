#pragma once
// Operator IR. Each Op is one *schedule unit* in the sense of Section 5 of
// the paper: a Conv-Relu unit (convolution with fused ReLU), a Relu-SepConv
// unit (ReLU followed by a separable convolution), a pooling, matmul, concat,
// add, or the split that recovers merged-convolution outputs.

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "graph/tensor_desc.hpp"

namespace ios {

using OpId = int;
inline constexpr OpId kInvalidOp = -1;

enum class OpKind {
  kInput,    ///< graph input placeholder (not schedulable)
  kConv2d,   ///< dense convolution, optionally with fused pre/post ReLU
  kSepConv,  ///< depthwise-separable convolution unit (ReLU-SepConv)
  kPool2d,   ///< max / average / global-average pooling
  kMatmul,   ///< fully connected layer
  kRelu,     ///< standalone activation
  kConcat,   ///< channel concatenation
  kAdd,      ///< elementwise addition (residual)
  kIdentity, ///< passthrough (used by RandWire/NASNet skip edges)
  kSplit,    ///< channel slice recovering one merged-conv output
};

const char* op_kind_name(OpKind k);

struct Conv2dAttrs {
  int out_channels = 0;
  int kh = 1, kw = 1;
  int sh = 1, sw = 1;
  int ph = 0, pw = 0;
  bool post_relu = true;  ///< Conv-Relu unit (Inception / SqueezeNet style)
};

/// Relu-SepConv unit (RandWire / NASNet style). The unit may take several
/// inputs of identical shape; they are aggregated by summation before the
/// activation (RandWire's node aggregation), so one graph node stays one
/// schedule unit.
struct SepConvAttrs {
  int out_channels = 0;
  int k = 3;        ///< depthwise kernel extent (k x k)
  int sh = 1, sw = 1;
  int ph = 1, pw = 1;
  bool pre_relu = true;
};

struct Pool2dAttrs {
  enum class Kind { kMax, kAvg, kGlobalAvg };
  Kind kind = Kind::kMax;
  int kh = 2, kw = 2;
  int sh = 2, sw = 2;
  int ph = 0, pw = 0;
};

struct MatmulAttrs {
  int out_features = 0;
  bool post_relu = false;
};

struct ConcatAttrs {};   ///< concat along the channel axis
struct SplitAttrs {
  int begin_channel = 0;  ///< [begin, end) channel slice of the input
  int end_channel = 0;
};
struct NoAttrs {};

using OpAttrs = std::variant<NoAttrs, Conv2dAttrs, SepConvAttrs, Pool2dAttrs,
                             MatmulAttrs, ConcatAttrs, SplitAttrs>;

struct Op {
  OpId id = kInvalidOp;
  OpKind kind = OpKind::kInput;
  std::string name;
  std::vector<OpId> inputs;  ///< producer op ids, in argument order
  TensorDesc output;
  int block = 0;  ///< block index for block-wise scheduling (Section 4.2)
  OpAttrs attrs;

  const Conv2dAttrs& conv() const { return std::get<Conv2dAttrs>(attrs); }
  const SepConvAttrs& sepconv() const { return std::get<SepConvAttrs>(attrs); }
  const Pool2dAttrs& pool() const { return std::get<Pool2dAttrs>(attrs); }
  const MatmulAttrs& matmul() const { return std::get<MatmulAttrs>(attrs); }
  const SplitAttrs& split() const { return std::get<SplitAttrs>(attrs); }

  bool schedulable() const { return kind != OpKind::kInput; }
};

/// Floating point operations performed by one op (multiply-accumulate
/// counted as 2 FLOPs, matching the paper's Figure 1 accounting).
std::int64_t op_flops(const Op& op, const std::vector<TensorDesc>& in_descs);

/// Bytes of parameters (conv kernels / FC weights) read by the op.
std::int64_t op_weight_bytes(const Op& op,
                             const std::vector<TensorDesc>& in_descs);

}  // namespace ios
