#pragma once
// Shape/type descriptor for the tensors flowing along computation-graph
// edges. The reproduction uses NCHW fp32 throughout (the paper's engine is
// cuDNN fp32).

#include <cassert>
#include <cstdint>
#include <string>

namespace ios {

struct TensorDesc {
  int n = 1;  ///< batch size
  int c = 0;  ///< channels
  int h = 1;  ///< height
  int w = 1;  ///< width

  std::int64_t numel() const {
    return static_cast<std::int64_t>(n) * c * h * w;
  }

  /// Size in bytes at fp32.
  std::int64_t bytes() const { return numel() * 4; }

  bool operator==(const TensorDesc&) const = default;

  std::string to_string() const {
    return "[" + std::to_string(n) + "," + std::to_string(c) + "," +
           std::to_string(h) + "," + std::to_string(w) + "]";
  }
};

/// Output spatial extent of a strided, padded sliding window.
inline int conv_out_dim(int in, int kernel, int stride, int pad) {
  const int out = (in + 2 * pad - kernel) / stride + 1;
  assert(out > 0);
  return out;
}

}  // namespace ios
