#include "graph/op.hpp"

#include <cassert>

namespace ios {

const char* op_kind_name(OpKind k) {
  switch (k) {
    case OpKind::kInput: return "Input";
    case OpKind::kConv2d: return "Conv";
    case OpKind::kSepConv: return "SepConv";
    case OpKind::kPool2d: return "Pool";
    case OpKind::kMatmul: return "Matmul";
    case OpKind::kRelu: return "Relu";
    case OpKind::kConcat: return "Concat";
    case OpKind::kAdd: return "Add";
    case OpKind::kIdentity: return "Identity";
    case OpKind::kSplit: return "Split";
  }
  return "?";
}

std::int64_t op_flops(const Op& op, const std::vector<TensorDesc>& in_descs) {
  const TensorDesc& out = op.output;
  switch (op.kind) {
    case OpKind::kInput:
      return 0;
    case OpKind::kConv2d: {
      assert(in_descs.size() == 1);
      const auto& a = op.conv();
      // 2 * output elements * kernel volume MACs (+ ReLU, negligible).
      return 2 * out.numel() * in_descs[0].c * a.kh * a.kw;
    }
    case OpKind::kSepConv: {
      assert(!in_descs.empty());
      const auto& a = op.sepconv();
      const std::int64_t aggregate =
          static_cast<std::int64_t>(in_descs.size() - 1) * in_descs[0].numel();
      const std::int64_t depthwise =
          2 * static_cast<std::int64_t>(out.n) * in_descs[0].c * out.h *
          out.w * a.k * a.k;
      const std::int64_t pointwise = 2 * out.numel() * in_descs[0].c;
      return aggregate + depthwise + pointwise;
    }
    case OpKind::kPool2d: {
      const auto& a = op.pool();
      const std::int64_t window =
          a.kind == Pool2dAttrs::Kind::kGlobalAvg
              ? in_descs[0].h * static_cast<std::int64_t>(in_descs[0].w)
              : static_cast<std::int64_t>(a.kh) * a.kw;
      return out.numel() * window;
    }
    case OpKind::kMatmul:
      assert(in_descs.size() == 1);
      return 2 * static_cast<std::int64_t>(out.n) * out.c *
             in_descs[0].numel() / in_descs[0].n;
    case OpKind::kRelu:
    case OpKind::kAdd:
      return out.numel();
    case OpKind::kConcat:
    case OpKind::kIdentity:
    case OpKind::kSplit:
      return 0;  // pure data movement
  }
  return 0;
}

std::int64_t op_weight_bytes(const Op& op,
                             const std::vector<TensorDesc>& in_descs) {
  switch (op.kind) {
    case OpKind::kConv2d: {
      const auto& a = op.conv();
      return 4ll * a.out_channels * in_descs[0].c * a.kh * a.kw;
    }
    case OpKind::kSepConv: {
      const auto& a = op.sepconv();
      const std::int64_t depthwise = 4ll * in_descs[0].c * a.k * a.k;
      const std::int64_t pointwise = 4ll * a.out_channels * in_descs[0].c;
      return depthwise + pointwise;
    }
    case OpKind::kMatmul: {
      const auto& a = op.matmul();
      return 4ll * a.out_features * (in_descs[0].numel() / in_descs[0].n);
    }
    default:
      return 0;
  }
}

}  // namespace ios
