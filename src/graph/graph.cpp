#include "graph/graph.hpp"

#include <cassert>
#include <sstream>
#include <stdexcept>

namespace ios {

Graph::Graph(int batch, std::string name)
    : batch_(batch), name_(std::move(name)) {
  if (batch <= 0) throw std::invalid_argument("batch must be positive");
}

const Op& Graph::checked_op(OpId id) const {
  if (id < 0 || id >= num_ops()) {
    throw std::out_of_range("op id out of range: " + std::to_string(id));
  }
  return ops_[static_cast<std::size_t>(id)];
}

int Graph::begin_block() { return next_block_++; }

OpId Graph::add_op(Op op) {
  op.id = static_cast<OpId>(ops_.size());
  // Ops added before the first begin_block() land in block 0.
  op.block = next_block_ == 0 ? 0 : next_block_ - 1;
  if (op.name.empty()) {
    op.name = std::string(op_kind_name(op.kind)) + "_" + std::to_string(op.id);
  }
  for (OpId in : op.inputs) {
    if (in < 0 || in >= num_ops()) {
      throw std::out_of_range("op input id out of range: " +
                              std::to_string(in));
    }
    succs_[static_cast<std::size_t>(in)].push_back(op.id);
  }
  succs_.emplace_back();
  ops_.push_back(std::move(op));
  return ops_.back().id;
}

std::vector<TensorDesc> Graph::input_descs(const Op& op) const {
  std::vector<TensorDesc> descs;
  descs.reserve(op.inputs.size());
  for (OpId in : op.inputs) descs.push_back(this->op(in).output);
  return descs;
}

OpId Graph::input(int c, int h, int w, std::string name) {
  Op op;
  op.kind = OpKind::kInput;
  op.name = std::move(name);
  op.output = TensorDesc{batch_, c, h, w};
  return add_op(std::move(op));
}

OpId Graph::conv2d(OpId in, const Conv2dAttrs& attrs, std::string name) {
  const TensorDesc& x = checked_op(in).output;
  if (attrs.out_channels <= 0) throw std::invalid_argument("conv out_channels");
  Op op;
  op.kind = OpKind::kConv2d;
  op.name = std::move(name);
  op.inputs = {in};
  op.output = TensorDesc{x.n, attrs.out_channels,
                         conv_out_dim(x.h, attrs.kh, attrs.sh, attrs.ph),
                         conv_out_dim(x.w, attrs.kw, attrs.sw, attrs.pw)};
  op.attrs = attrs;
  return add_op(std::move(op));
}

OpId Graph::sepconv(OpId in, const SepConvAttrs& attrs, std::string name) {
  const OpId ins[] = {in};
  return sepconv(std::span<const OpId>(ins), attrs, std::move(name));
}

OpId Graph::sepconv(std::span<const OpId> ins, const SepConvAttrs& attrs,
                    std::string name) {
  if (ins.empty()) throw std::invalid_argument("sepconv needs inputs");
  if (attrs.out_channels <= 0)
    throw std::invalid_argument("sepconv out_channels");
  const TensorDesc& x = checked_op(ins[0]).output;
  for (OpId i : ins) {
    if (!(checked_op(i).output == x)) {
      throw std::invalid_argument("sepconv inputs disagree on shape");
    }
  }
  Op op;
  op.kind = OpKind::kSepConv;
  op.name = std::move(name);
  op.inputs.assign(ins.begin(), ins.end());
  op.output = TensorDesc{x.n, attrs.out_channels,
                         conv_out_dim(x.h, attrs.k, attrs.sh, attrs.ph),
                         conv_out_dim(x.w, attrs.k, attrs.sw, attrs.pw)};
  op.attrs = attrs;
  return add_op(std::move(op));
}

OpId Graph::pool2d(OpId in, const Pool2dAttrs& attrs, std::string name) {
  const TensorDesc& x = checked_op(in).output;
  Op op;
  op.kind = OpKind::kPool2d;
  op.name = std::move(name);
  op.inputs = {in};
  if (attrs.kind == Pool2dAttrs::Kind::kGlobalAvg) {
    op.output = TensorDesc{x.n, x.c, 1, 1};
  } else {
    op.output = TensorDesc{x.n, x.c,
                           conv_out_dim(x.h, attrs.kh, attrs.sh, attrs.ph),
                           conv_out_dim(x.w, attrs.kw, attrs.sw, attrs.pw)};
  }
  op.attrs = attrs;
  return add_op(std::move(op));
}

OpId Graph::matmul(OpId in, const MatmulAttrs& attrs, std::string name) {
  const TensorDesc& x = checked_op(in).output;
  Op op;
  op.kind = OpKind::kMatmul;
  op.name = std::move(name);
  op.inputs = {in};
  op.output = TensorDesc{x.n, attrs.out_features, 1, 1};
  op.attrs = attrs;
  return add_op(std::move(op));
}

OpId Graph::relu(OpId in, std::string name) {
  Op op;
  op.kind = OpKind::kRelu;
  op.name = std::move(name);
  op.inputs = {in};
  op.output = checked_op(in).output;
  return add_op(std::move(op));
}

OpId Graph::concat(std::span<const OpId> ins, std::string name) {
  if (ins.empty()) throw std::invalid_argument("concat needs inputs");
  const TensorDesc& first = checked_op(ins[0]).output;
  int channels = 0;
  for (OpId in : ins) {
    const TensorDesc& d = checked_op(in).output;
    if (d.n != first.n || d.h != first.h || d.w != first.w) {
      throw std::invalid_argument("concat inputs disagree on N/H/W");
    }
    channels += d.c;
  }
  Op op;
  op.kind = OpKind::kConcat;
  op.name = std::move(name);
  op.inputs.assign(ins.begin(), ins.end());
  op.output = TensorDesc{first.n, channels, first.h, first.w};
  op.attrs = ConcatAttrs{};
  return add_op(std::move(op));
}

OpId Graph::add(OpId a, OpId b, std::string name) {
  if (!(checked_op(a).output == checked_op(b).output)) {
    throw std::invalid_argument("add inputs must have identical shapes");
  }
  Op op;
  op.kind = OpKind::kAdd;
  op.name = std::move(name);
  op.inputs = {a, b};
  op.output = this->op(a).output;
  return add_op(std::move(op));
}

OpId Graph::identity(OpId in, std::string name) {
  Op op;
  op.kind = OpKind::kIdentity;
  op.name = std::move(name);
  op.inputs = {in};
  op.output = checked_op(in).output;
  return add_op(std::move(op));
}

OpId Graph::split(OpId in, int begin_channel, int end_channel,
                  std::string name) {
  const TensorDesc& x = checked_op(in).output;
  if (!(0 <= begin_channel && begin_channel < end_channel &&
        end_channel <= x.c)) {
    throw std::invalid_argument("split channel range invalid");
  }
  Op op;
  op.kind = OpKind::kSplit;
  op.name = std::move(name);
  op.inputs = {in};
  op.output = TensorDesc{x.n, end_channel - begin_channel, x.h, x.w};
  op.attrs = SplitAttrs{begin_channel, end_channel};
  return add_op(std::move(op));
}

std::vector<std::vector<OpId>> Graph::blocks() const {
  std::vector<std::vector<OpId>> out(
      static_cast<std::size_t>(std::max(next_block_, 1)));
  for (const Op& op : ops_) {
    if (!op.schedulable()) continue;
    out[static_cast<std::size_t>(op.block)].push_back(op.id);
  }
  // Drop empty trailing blocks (e.g. begin_block() with no schedulable ops).
  while (!out.empty() && out.back().empty()) out.pop_back();
  return out;
}

std::vector<OpId> Graph::schedulable_ops() const {
  std::vector<OpId> out;
  out.reserve(ops_.size());
  for (const Op& op : ops_) {
    if (op.schedulable()) out.push_back(op.id);
  }
  return out;
}

std::int64_t Graph::flops(OpId id) const {
  const Op& o = op(id);
  return op_flops(o, input_descs(o));
}

std::int64_t Graph::weight_bytes(OpId id) const {
  const Op& o = op(id);
  return op_weight_bytes(o, input_descs(o));
}

std::int64_t Graph::input_bytes(OpId id) const {
  std::int64_t b = 0;
  for (OpId in : op(id).inputs) b += op(in).output.bytes();
  return b;
}

std::int64_t Graph::output_bytes(OpId id) const { return op(id).output.bytes(); }

std::int64_t Graph::total_flops() const {
  std::int64_t f = 0;
  for (const Op& op : ops_) f += flops(op.id);
  return f;
}

void Graph::validate() const {
  for (const Op& op : ops_) {
    for (OpId in : op.inputs) {
      if (in >= op.id) {
        throw std::runtime_error("graph is not topologically ordered at op " +
                                 op.name);
      }
      // Block indices must be monotone along edges so that blocks can be
      // scheduled one after another (Section 4.2 block-wise optimization).
      if (this->op(in).schedulable() && this->op(in).block > op.block) {
        throw std::runtime_error("edge goes backwards across blocks: " +
                                 this->op(in).name + " -> " + op.name);
      }
    }
    if (op.schedulable() && op.inputs.empty()) {
      throw std::runtime_error("non-input op without inputs: " + op.name);
    }
  }
}

std::string Graph::to_string() const {
  std::ostringstream out;
  out << name_ << " (batch=" << batch_ << ", ops=" << num_ops() << ")\n";
  for (const Op& op : ops_) {
    out << "  #" << op.id << " b" << op.block << " "
        << op_kind_name(op.kind) << " " << op.name << " "
        << op.output.to_string() << " <-";
    for (OpId in : op.inputs) out << " #" << in;
    out << "\n";
  }
  return out.str();
}

}  // namespace ios
