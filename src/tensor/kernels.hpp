#pragma once
// CPU reference kernels, one per operator kind. Direct (naive) algorithms:
// clarity and obvious correctness over speed — these are the oracle the
// scheduler's transformations are verified against.

#include <span>

#include "graph/op.hpp"
#include "tensor/tensor.hpp"

namespace ios::kernels {

/// Dense convolution; weight layout [out_c, in_c, kh, kw]. Applies ReLU
/// afterwards when attrs.post_relu.
Tensor conv2d(const Tensor& x, const Tensor& weight, const Conv2dAttrs& attrs);

/// ReLU-SepConv unit: sums the (identically shaped) inputs, applies the
/// optional pre-ReLU, depthwise k x k (weight layout [c, 1, k, k]), then
/// pointwise 1x1 (weight layout [out_c, c, 1, 1]).
Tensor sepconv(std::span<const Tensor* const> xs, const Tensor& depthwise,
               const Tensor& pointwise, const SepConvAttrs& attrs);

Tensor pool2d(const Tensor& x, const Pool2dAttrs& attrs);

/// Fully connected over flattened input; weight layout [out_features, in].
Tensor matmul(const Tensor& x, const Tensor& weight, const MatmulAttrs& attrs);

Tensor relu(const Tensor& x);
Tensor concat(std::span<const Tensor* const> xs);
Tensor add(const Tensor& a, const Tensor& b);
Tensor split(const Tensor& x, int begin_channel, int end_channel);

/// Max |a - b| over all elements. Requires identical shapes.
float max_abs_diff(const Tensor& a, const Tensor& b);

}  // namespace ios::kernels
