#include "tensor/kernels.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ios::kernels {

namespace {

float weight_at(const Tensor& w, int o, int i, int kh_extent, int kw_extent,
                int kh, int kw) {
  // Weight tensors are stored with desc [out_c, in_c, kh, kw] mapped onto the
  // NCHW fields of TensorDesc.
  return w.at(o, i, kh, kw);
  (void)kh_extent;
  (void)kw_extent;
}

}  // namespace

Tensor conv2d(const Tensor& x, const Tensor& weight,
              const Conv2dAttrs& attrs) {
  const TensorDesc& in = x.desc();
  assert(weight.desc().n == attrs.out_channels);
  assert(weight.desc().c == in.c);
  const int oh = conv_out_dim(in.h, attrs.kh, attrs.sh, attrs.ph);
  const int ow = conv_out_dim(in.w, attrs.kw, attrs.sw, attrs.pw);
  Tensor out(TensorDesc{in.n, attrs.out_channels, oh, ow});
  for (int n = 0; n < in.n; ++n) {
    for (int oc = 0; oc < attrs.out_channels; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int xw = 0; xw < ow; ++xw) {
          double acc = 0;
          for (int ic = 0; ic < in.c; ++ic) {
            for (int kh = 0; kh < attrs.kh; ++kh) {
              const int iy = y * attrs.sh - attrs.ph + kh;
              if (iy < 0 || iy >= in.h) continue;
              for (int kw = 0; kw < attrs.kw; ++kw) {
                const int ix = xw * attrs.sw - attrs.pw + kw;
                if (ix < 0 || ix >= in.w) continue;
                acc += static_cast<double>(x.at(n, ic, iy, ix)) *
                       weight_at(weight, oc, ic, attrs.kh, attrs.kw, kh, kw);
              }
            }
          }
          float v = static_cast<float>(acc);
          if (attrs.post_relu) v = std::max(v, 0.0f);
          out.at(n, oc, y, xw) = v;
        }
      }
    }
  }
  return out;
}

Tensor sepconv(std::span<const Tensor* const> xs, const Tensor& depthwise,
               const Tensor& pointwise, const SepConvAttrs& attrs) {
  assert(!xs.empty());
  // Aggregate multiple inputs by summation (RandWire node aggregation).
  Tensor summed;
  const Tensor* aggregated = xs[0];
  if (xs.size() > 1) {
    summed = *xs[0];
    for (std::size_t i = 1; i < xs.size(); ++i) summed = add(summed, *xs[i]);
    aggregated = &summed;
  }
  const Tensor& x = *aggregated;

  const TensorDesc& in = x.desc();
  assert(depthwise.desc().n == in.c && depthwise.desc().c == 1);
  assert(pointwise.desc().n == attrs.out_channels &&
         pointwise.desc().c == in.c);

  const Tensor* src = &x;
  Tensor activated;
  if (attrs.pre_relu) {
    activated = relu(x);
    src = &activated;
  }

  const int oh = conv_out_dim(in.h, attrs.k, attrs.sh, attrs.ph);
  const int ow = conv_out_dim(in.w, attrs.k, attrs.sw, attrs.pw);
  Tensor mid(TensorDesc{in.n, in.c, oh, ow});
  for (int n = 0; n < in.n; ++n) {
    for (int c = 0; c < in.c; ++c) {
      for (int y = 0; y < oh; ++y) {
        for (int xw = 0; xw < ow; ++xw) {
          double acc = 0;
          for (int kh = 0; kh < attrs.k; ++kh) {
            const int iy = y * attrs.sh - attrs.ph + kh;
            if (iy < 0 || iy >= in.h) continue;
            for (int kw = 0; kw < attrs.k; ++kw) {
              const int ix = xw * attrs.sw - attrs.pw + kw;
              if (ix < 0 || ix >= in.w) continue;
              acc += static_cast<double>(src->at(n, c, iy, ix)) *
                     depthwise.at(c, 0, kh, kw);
            }
          }
          mid.at(n, c, y, xw) = static_cast<float>(acc);
        }
      }
    }
  }

  Tensor out(TensorDesc{in.n, attrs.out_channels, oh, ow});
  for (int n = 0; n < in.n; ++n) {
    for (int oc = 0; oc < attrs.out_channels; ++oc) {
      for (int y = 0; y < oh; ++y) {
        for (int xw = 0; xw < ow; ++xw) {
          double acc = 0;
          for (int c = 0; c < in.c; ++c) {
            acc += static_cast<double>(mid.at(n, c, y, xw)) *
                   pointwise.at(oc, c, 0, 0);
          }
          out.at(n, oc, y, xw) = static_cast<float>(acc);
        }
      }
    }
  }
  return out;
}

Tensor pool2d(const Tensor& x, const Pool2dAttrs& attrs) {
  const TensorDesc& in = x.desc();
  if (attrs.kind == Pool2dAttrs::Kind::kGlobalAvg) {
    Tensor out(TensorDesc{in.n, in.c, 1, 1});
    for (int n = 0; n < in.n; ++n) {
      for (int c = 0; c < in.c; ++c) {
        double acc = 0;
        for (int h = 0; h < in.h; ++h) {
          for (int w = 0; w < in.w; ++w) acc += x.at(n, c, h, w);
        }
        out.at(n, c, 0, 0) =
            static_cast<float>(acc / (static_cast<double>(in.h) * in.w));
      }
    }
    return out;
  }

  const int oh = conv_out_dim(in.h, attrs.kh, attrs.sh, attrs.ph);
  const int ow = conv_out_dim(in.w, attrs.kw, attrs.sw, attrs.pw);
  Tensor out(TensorDesc{in.n, in.c, oh, ow});
  const bool is_max = attrs.kind == Pool2dAttrs::Kind::kMax;
  for (int n = 0; n < in.n; ++n) {
    for (int c = 0; c < in.c; ++c) {
      for (int y = 0; y < oh; ++y) {
        for (int xw = 0; xw < ow; ++xw) {
          double acc = is_max ? -std::numeric_limits<double>::infinity() : 0;
          int count = 0;
          for (int kh = 0; kh < attrs.kh; ++kh) {
            const int iy = y * attrs.sh - attrs.ph + kh;
            if (iy < 0 || iy >= in.h) continue;
            for (int kw = 0; kw < attrs.kw; ++kw) {
              const int ix = xw * attrs.sw - attrs.pw + kw;
              if (ix < 0 || ix >= in.w) continue;
              const double v = x.at(n, c, iy, ix);
              if (is_max) {
                acc = std::max(acc, v);
              } else {
                acc += v;
              }
              ++count;
            }
          }
          out.at(n, c, y, xw) = static_cast<float>(
              is_max ? acc : (count > 0 ? acc / count : 0.0));
        }
      }
    }
  }
  return out;
}

Tensor matmul(const Tensor& x, const Tensor& weight,
              const MatmulAttrs& attrs) {
  const TensorDesc& in = x.desc();
  const int in_features = in.c * in.h * in.w;
  assert(weight.desc().n == attrs.out_features);
  assert(weight.desc().c * weight.desc().h * weight.desc().w == in_features ||
         weight.desc().c == in_features);
  Tensor out(TensorDesc{in.n, attrs.out_features, 1, 1});
  const float* xd = x.data();
  const float* wd = weight.data();
  for (int n = 0; n < in.n; ++n) {
    for (int o = 0; o < attrs.out_features; ++o) {
      double acc = 0;
      for (int i = 0; i < in_features; ++i) {
        acc += static_cast<double>(xd[n * in_features + i]) *
               wd[o * in_features + i];
      }
      float v = static_cast<float>(acc);
      if (attrs.post_relu) v = std::max(v, 0.0f);
      out.at(n, o, 0, 0) = v;
    }
  }
  return out;
}

Tensor relu(const Tensor& x) {
  Tensor out(x.desc());
  const float* src = x.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < x.size(); ++i) dst[i] = std::max(src[i], 0.0f);
  return out;
}

Tensor concat(std::span<const Tensor* const> xs) {
  if (xs.empty()) throw std::invalid_argument("concat of nothing");
  const TensorDesc& first = xs[0]->desc();
  int channels = 0;
  for (const Tensor* t : xs) channels += t->desc().c;
  Tensor out(TensorDesc{first.n, channels, first.h, first.w});
  for (int n = 0; n < first.n; ++n) {
    int c_base = 0;
    for (const Tensor* t : xs) {
      const TensorDesc& d = t->desc();
      for (int c = 0; c < d.c; ++c) {
        for (int h = 0; h < d.h; ++h) {
          for (int w = 0; w < d.w; ++w) {
            out.at(n, c_base + c, h, w) = t->at(n, c, h, w);
          }
        }
      }
      c_base += d.c;
    }
  }
  return out;
}

Tensor add(const Tensor& a, const Tensor& b) {
  assert(a.desc() == b.desc());
  Tensor out(a.desc());
  const float* pa = a.data();
  const float* pb = b.data();
  float* dst = out.data();
  for (std::size_t i = 0; i < a.size(); ++i) dst[i] = pa[i] + pb[i];
  return out;
}

Tensor split(const Tensor& x, int begin_channel, int end_channel) {
  const TensorDesc& in = x.desc();
  assert(0 <= begin_channel && begin_channel < end_channel &&
         end_channel <= in.c);
  Tensor out(TensorDesc{in.n, end_channel - begin_channel, in.h, in.w});
  for (int n = 0; n < in.n; ++n) {
    for (int c = begin_channel; c < end_channel; ++c) {
      for (int h = 0; h < in.h; ++h) {
        for (int w = 0; w < in.w; ++w) {
          out.at(n, c - begin_channel, h, w) = x.at(n, c, h, w);
        }
      }
    }
  }
  return out;
}

float max_abs_diff(const Tensor& a, const Tensor& b) {
  assert(a.desc() == b.desc());
  float m = 0;
  const float* pa = a.data();
  const float* pb = b.data();
  for (std::size_t i = 0; i < a.size(); ++i) {
    m = std::max(m, std::fabs(pa[i] - pb[i]));
  }
  return m;
}

}  // namespace ios::kernels
