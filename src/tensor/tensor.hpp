#pragma once
// Dense NCHW fp32 tensor used by the CPU reference executor. This substrate
// stands in for cuDNN's numerics: it lets the test suite prove that every
// schedule transformation IOS applies (operator merge + split, concurrent
// grouping, stage reordering) is functionally equivalent to the sequential
// graph.

#include <cassert>
#include <cstddef>
#include <vector>

#include "graph/tensor_desc.hpp"
#include "util/rng.hpp"

namespace ios {

class Tensor {
 public:
  Tensor() = default;
  explicit Tensor(TensorDesc desc)
      : desc_(desc), data_(static_cast<std::size_t>(desc.numel()), 0.0f) {}

  const TensorDesc& desc() const { return desc_; }
  std::size_t size() const { return data_.size(); }

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  float& at(int n, int c, int h, int w) {
    return data_[index(n, c, h, w)];
  }
  float at(int n, int c, int h, int w) const {
    return data_[index(n, c, h, w)];
  }

  /// Fills with deterministic pseudo-random values in [-1, 1).
  void fill_random(std::uint64_t seed) {
    Rng rng(seed);
    for (float& v : data_) v = static_cast<float>(rng.uniform() * 2.0 - 1.0);
  }

  void fill(float v) {
    for (float& x : data_) x = v;
  }

 private:
  std::size_t index(int n, int c, int h, int w) const {
    assert(n < desc_.n && c < desc_.c && h < desc_.h && w < desc_.w);
    return ((static_cast<std::size_t>(n) * desc_.c + c) * desc_.h + h) *
               desc_.w + w;
  }

  TensorDesc desc_;
  std::vector<float> data_;
};

}  // namespace ios
