#pragma once
// Deterministic seeded RNG (xoshiro256**). All stochastic pieces of the
// reproduction (RandWire graph generation, test input tensors, property-test
// sweeps) draw from this generator so every run is bit-reproducible.

#include <cstdint>

#include "util/hash.hpp"

namespace ios {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // Seed the four lanes through splitmix64 as recommended by the authors
    // of xoshiro.
    std::uint64_t x = seed;
    for (auto& lane : s_) {
      x += 0x9e3779b97f4a7c15ull;
      lane = mix64(x);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). Requires n > 0.
  int uniform_int(int n) {
    return static_cast<int>(next_u64() % static_cast<std::uint64_t>(n));
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool bernoulli(double p) { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace ios
