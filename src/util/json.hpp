#pragma once
// Minimal JSON support: a value tree, a writer, and a recursive-descent
// parser. Used to persist graphs, schedules ("scheduling recipes"), and
// kernel timelines. Supports the JSON subset the library emits: objects,
// arrays, strings, doubles/integers, booleans, null. No external
// dependencies.

#include <cstdint>
#include <map>
#include <memory>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

namespace ios {

/// A persisted document failed validation on load: truncated JSON, a
/// checksum mismatch, or a malformed format header. Callers that can fall
/// back to a cold start catch this type by name instead of pattern-matching
/// what() strings.
class CorruptFileError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;
  JsonValue(std::nullptr_t) {}
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}
  JsonValue(double d) : kind_(Kind::kNumber), number_(d) {}
  JsonValue(int v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(std::int64_t v) : JsonValue(static_cast<double>(v)) {}
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}

  static JsonValue array();
  static JsonValue object();

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }

  // ---- accessors (throw std::runtime_error on kind mismatch) ----
  bool as_bool() const;
  double as_number() const;
  std::int64_t as_int() const;
  const std::string& as_string() const;
  const std::vector<JsonValue>& as_array() const;
  const std::map<std::string, JsonValue>& as_object() const;

  /// Object member access; throws if missing or not an object.
  const JsonValue& at(const std::string& key) const;
  /// True if this is an object containing `key`.
  bool contains(const std::string& key) const;

  // ---- builders ----
  JsonValue& push_back(JsonValue v);            // array append
  JsonValue& set(const std::string& key, JsonValue v);  // object insert

  /// Serializes to a compact JSON string (keys sorted — deterministic).
  std::string dump() const;

  /// Parses a JSON document. Throws std::runtime_error with position info
  /// on malformed input.
  static JsonValue parse(std::string_view text);

 private:
  void dump_to(std::string& out) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Writes `text` to `path` atomically-ish (truncate+write). Throws on error.
void write_file(const std::string& path, const std::string& text);

/// Crash-safe write: `text` goes to `path`.tmp, is fsync'd, atomically
/// renamed over `path`, and the parent directory is fsync'd — a crash (even
/// kill -9 mid-write) leaves either the old file or the complete new one,
/// never a truncated hybrid. Throws std::runtime_error on failure (the temp
/// file is removed).
void write_file_atomic(const std::string& path, const std::string& text);

/// Hex content checksum of `text` (16 lowercase hex digits; FNV-1a + mix).
std::string content_checksum(std::string_view text);

/// Returns `doc` (must be an object) with a "checksum" member covering the
/// serialized form of every *other* member. Verified by
/// verify_content_checksum on load; detects torn/bit-rotted files that
/// still happen to parse.
JsonValue with_content_checksum(JsonValue doc);

/// Verifies the embedded "checksum" of a document produced by
/// with_content_checksum. A document without one passes (older files
/// predate checksums); a mismatch throws CorruptFileError naming `what`.
void verify_content_checksum(const JsonValue& doc, const std::string& what);

/// Reads a whole file. Throws std::runtime_error if unreadable.
std::string read_file(const std::string& path);

}  // namespace ios
