#pragma once
// Small statistics helpers used by the benchmark harnesses when aggregating
// repeated latency measurements (the paper reports the average of 5 runs and
// geometric means across networks).

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <span>
#include <vector>

namespace ios {

/// Mean of the sample; an empty sample has no mean and returns quiet NaN
/// (explicit, not an out-of-bounds read — callers that want 0 for "no data"
/// must branch themselves).
inline double mean(std::span<const double> xs) {
  if (xs.empty()) return std::numeric_limits<double>::quiet_NaN();
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double geomean(std::span<const double> xs) {
  assert(!xs.empty());
  double s = 0;
  for (double x : xs) {
    assert(x > 0);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

inline double stddev(std::span<const double> xs) {
  assert(xs.size() >= 2);
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

inline double min_of(std::span<const double> xs) {
  assert(!xs.empty());
  double m = xs[0];
  for (double x : xs) m = std::min(m, x);
  return m;
}

inline double max_of(std::span<const double> xs) {
  assert(!xs.empty());
  double m = xs[0];
  for (double x : xs) m = std::max(m, x);
  return m;
}

/// The p-th percentile (p in [0, 100]) of an ascending-sorted sample, with
/// linear interpolation between order statistics — the serving layer reports
/// p50/p95/p99 tail latencies. Callers extracting several percentiles sort
/// once and call this repeatedly.
///
/// Edge behavior is explicit (pinned by util_test):
///   * empty sample      -> quiet NaN for every p (there is no order
///                          statistic to report; a serving run with zero
///                          requests reports zeroed stats instead of
///                          calling this);
///   * one-element sample-> that element for every p, including 0 and 100;
///   * p = 0 / p = 100   -> the minimum / maximum element exactly.
inline double percentile_sorted(std::span<const double> sorted, double p) {
  assert(p >= 0 && p <= 100);
  assert(std::is_sorted(sorted.begin(), sorted.end()));
  if (sorted.empty()) return std::numeric_limits<double>::quiet_NaN();
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

/// percentile_sorted for unsorted data: copies and sorts, O(n log n); `xs`
/// itself is not modified.
inline double percentile(std::span<const double> xs, double p) {
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  return percentile_sorted(sorted, p);
}

}  // namespace ios
