#pragma once
// Small statistics helpers used by the benchmark harnesses when aggregating
// repeated latency measurements (the paper reports the average of 5 runs and
// geometric means across networks).

#include <cassert>
#include <cmath>
#include <span>

namespace ios {

inline double mean(std::span<const double> xs) {
  assert(!xs.empty());
  double s = 0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

inline double geomean(std::span<const double> xs) {
  assert(!xs.empty());
  double s = 0;
  for (double x : xs) {
    assert(x > 0);
    s += std::log(x);
  }
  return std::exp(s / static_cast<double>(xs.size()));
}

inline double stddev(std::span<const double> xs) {
  assert(xs.size() >= 2);
  const double m = mean(xs);
  double s = 0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size() - 1));
}

inline double min_of(std::span<const double> xs) {
  assert(!xs.empty());
  double m = xs[0];
  for (double x : xs) m = std::min(m, x);
  return m;
}

inline double max_of(std::span<const double> xs) {
  assert(!xs.empty());
  double m = xs[0];
  for (double x : xs) m = std::max(m, x);
  return m;
}

}  // namespace ios
