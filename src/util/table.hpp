#pragma once
// Aligned ASCII table printer used by every bench binary to emit the rows of
// the paper's tables and the series behind its figures.

#include <string>
#include <vector>

namespace ios {

class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void add_row(std::vector<std::string> row);

  /// Renders the table with a header separator, column-aligned.
  std::string to_string() const;

  /// Convenience: render and write to stdout.
  void print() const;

  static std::string fmt(double v, int precision = 3);

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace ios
