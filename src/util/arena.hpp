#pragma once
// Bump-allocation arenas for the wave search's per-level transition records.
//
// The wave engine records every surviving DP transition between its two
// passes. With one std::vector per state that is one heap allocation (plus
// geometric capacity slack and allocator metadata) per state — millions of
// tiny allocations on RandWire-sized blocks. An Arena replaces them with
// pointer bumps into few large chunks: allocation is an add, the final spans
// are exactly sized (the only growing sequence is the chunk tail, so growth
// extends in place and shrink_to_fit returns the slack), and a whole level's
// records are reclaimed wholesale by reset() instead of element-by-element
// frees. Chunks are retained across reset() and recycled through ArenaPool,
// so steady-state searches allocate no new memory at all.

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <mutex>
#include <type_traits>
#include <utility>
#include <vector>

namespace ios {

/// A chunked bump allocator. Not thread-safe: each concurrent user leases
/// its own Arena (see ArenaPool). Allocations are never individually freed;
/// reset() reclaims everything at once while keeping the chunks for reuse.
class Arena {
 public:
  /// Default size of each backing chunk. Big enough that even RandWire-scale
  /// wave levels touch few chunks, small enough that idle pooled arenas are
  /// cheap to keep around.
  static constexpr std::size_t kDefaultChunkBytes = std::size_t{256} * 1024;

  /// Creates an empty arena; the first allocation reserves a chunk of
  /// `chunk_bytes` (or of the allocation's size, whichever is larger).
  explicit Arena(std::size_t chunk_bytes = kDefaultChunkBytes)
      : chunk_bytes_(chunk_bytes < 64 ? 64 : chunk_bytes) {}

  Arena(const Arena&) = delete;             ///< not copyable (owns chunks)
  Arena& operator=(const Arena&) = delete;  ///< not copyable (owns chunks)

  /// Returns `bytes` bytes aligned to `align` (a power of two). The memory
  /// stays valid until reset() or destruction.
  void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (active_ < chunks_.size()) {
      Chunk& c = chunks_[active_];
      const std::uintptr_t base =
          reinterpret_cast<std::uintptr_t>(c.data.get()) + used_;
      const std::size_t pad = (align - base % align) % align;
      if (used_ + pad + bytes <= c.size) {
        used_ += pad + bytes;
        return c.data.get() + (used_ - bytes);
      }
      // Chunk exhausted: move on. The stranded tail is slack until reset().
      ++active_;
      used_ = 0;
    }
    const std::size_t want = bytes + align > chunk_bytes_ ? bytes + align
                                                          : chunk_bytes_;
    chunks_.push_back(Chunk{std::make_unique<std::byte[]>(want), want});
    return allocate(bytes, align);
  }

  /// Typed array allocation (elements are NOT constructed; T must be
  /// trivially constructible/destructible to be usable this way).
  template <typename T>
  T* allocate_array(std::size_t n) {
    static_assert(std::is_trivially_copyable_v<T>);
    return static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
  }

  /// Grows the most recent allocation in place: if `tail` (of `old_bytes`
  /// bytes) is exactly the last allocation of the active chunk and
  /// `new_bytes` still fits that chunk, the allocation is extended without
  /// moving and true is returned. Otherwise the arena is unchanged.
  bool try_extend(const void* tail, std::size_t old_bytes,
                  std::size_t new_bytes) {
    if (active_ >= chunks_.size()) return false;
    Chunk& c = chunks_[active_];
    const std::byte* p = static_cast<const std::byte*>(tail);
    if (p + old_bytes != c.data.get() + used_) return false;
    const std::size_t start = used_ - old_bytes;
    if (start + new_bytes > c.size) return false;
    used_ = start + new_bytes;
    return true;
  }

  /// Returns the unused tail of the most recent allocation to the arena
  /// (the shrink counterpart of try_extend). No-op if `tail` is not the
  /// active chunk's last allocation.
  void shrink_tail(const void* tail, std::size_t old_bytes,
                   std::size_t new_bytes) {
    if (new_bytes > old_bytes || active_ >= chunks_.size()) return;
    Chunk& c = chunks_[active_];
    const std::byte* p = static_cast<const std::byte*>(tail);
    if (p + old_bytes != c.data.get() + used_) return;
    used_ -= old_bytes - new_bytes;
  }

  /// Invalidates every allocation and rewinds to the first chunk. Chunks
  /// are kept, so a reset arena reallocates without touching the heap.
  void reset() {
    active_ = 0;
    used_ = 0;
  }

  /// Total bytes handed out since the last reset (including alignment
  /// padding and stranded chunk tails).
  std::size_t bytes_used() const {
    std::size_t total = used_;
    for (std::size_t i = 0; i < active_ && i < chunks_.size(); ++i) {
      total += chunks_[i].size;
    }
    return total;
  }

  /// Total bytes of backing chunks currently owned.
  std::size_t bytes_reserved() const {
    std::size_t total = 0;
    for (const Chunk& c : chunks_) total += c.size;
    return total;
  }

 private:
  struct Chunk {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  std::size_t chunk_bytes_;
  std::vector<Chunk> chunks_;
  std::size_t active_ = 0;  ///< index of the chunk being bumped
  std::size_t used_ = 0;    ///< bytes consumed in the active chunk
};

/// A growable array of trivially copyable elements backed by an Arena.
/// Growth prefers extending in place (possible whenever this vector made the
/// arena's most recent allocation — the wave engine's per-state fill pattern
/// guarantees it), falling back to allocate-and-memcpy; the abandoned copy
/// is reclaimed by the arena's next reset(). shrink_to_fit() returns the
/// capacity slack so back-to-back vectors pack the chunk exactly.
template <typename T>
class ArenaVec {
  static_assert(std::is_trivially_copyable_v<T>);

 public:
  /// An empty vector whose storage will come from `arena` (which must
  /// outlive it).
  explicit ArenaVec(Arena& arena) : arena_(&arena) {}

  /// Appends a copy of `v`, growing the arena span as needed.
  void push_back(const T& v) {
    if (size_ == capacity_) grow();
    data_[size_++] = v;
  }

  /// Gives the unused capacity back to the arena when this vector is the
  /// arena's most recent allocation.
  void shrink_to_fit() {
    if (size_ == capacity_) return;
    arena_->shrink_tail(data_, capacity_ * sizeof(T), size_ * sizeof(T));
    capacity_ = size_;
  }

  const T* data() const { return data_; }          ///< first element
  std::uint32_t size() const { return size_; }     ///< element count
  bool empty() const { return size_ == 0; }        ///< size() == 0
  /// Unchecked element access.
  const T& operator[](std::uint32_t i) const { return data_[i]; }
  const T* begin() const { return data_; }         ///< range begin
  const T* end() const { return data_ + size_; }   ///< range end

 private:
  void grow() {
    const std::uint32_t new_cap = capacity_ == 0 ? 8 : capacity_ * 2;
    if (data_ != nullptr &&
        arena_->try_extend(data_, capacity_ * sizeof(T),
                           std::size_t{new_cap} * sizeof(T))) {
      capacity_ = new_cap;
      return;
    }
    T* nd = arena_->allocate_array<T>(new_cap);
    if (size_ != 0) std::memcpy(nd, data_, size_ * sizeof(T));
    data_ = nd;
    capacity_ = new_cap;
  }

  Arena* arena_;
  T* data_ = nullptr;
  std::uint32_t size_ = 0;
  std::uint32_t capacity_ = 0;
};

/// A thread-safe pool of reusable arenas. Worker threads lease an arena for
/// one wave level's records and return it (reset, chunks intact) when the
/// level is consumed, so concurrent searches recycle a bounded set of chunk
/// allocations instead of growing one arena per search.
class ArenaPool {
 public:
  /// Exclusive RAII handle to a pooled arena; returns it (reset) on
  /// destruction. Movable, not copyable.
  class Lease {
   public:
    Lease() = default;  ///< empty handle (operator bool() is false)
    /// Wraps `arena`, to be returned to `pool` on destruction.
    Lease(ArenaPool* pool, std::unique_ptr<Arena> arena)
        : pool_(pool), arena_(std::move(arena)) {}
    Lease(Lease&&) = default;  ///< transfers ownership; the source empties
    /// Transfers ownership, returning any currently held arena first.
    Lease& operator=(Lease&& o) {
      release();
      pool_ = o.pool_;
      arena_ = std::move(o.arena_);
      o.pool_ = nullptr;
      return *this;
    }
    ~Lease() { release(); }  ///< returns the arena to the pool

    Arena& operator*() const { return *arena_; }    ///< the leased arena
    Arena* operator->() const { return arena_.get(); }  ///< the leased arena
    /// True when this lease holds an arena.
    explicit operator bool() const { return arena_ != nullptr; }

    /// Returns the arena to the pool early (idempotent).
    void release() {
      if (arena_ != nullptr && pool_ != nullptr) {
        arena_->reset();
        pool_->put(std::move(arena_));
      }
      arena_.reset();
      pool_ = nullptr;
    }

   private:
    ArenaPool* pool_ = nullptr;
    std::unique_ptr<Arena> arena_;
  };

  /// Leases a pooled arena, creating one if the pool is empty.
  Lease acquire() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!free_.empty()) {
        std::unique_ptr<Arena> a = std::move(free_.back());
        free_.pop_back();
        return Lease{this, std::move(a)};
      }
    }
    return Lease{this, std::make_unique<Arena>()};
  }

  /// Arenas currently idle in the pool.
  std::size_t idle() const {
    std::lock_guard<std::mutex> lock(mu_);
    return free_.size();
  }

 private:
  void put(std::unique_ptr<Arena> a) {
    std::lock_guard<std::mutex> lock(mu_);
    free_.push_back(std::move(a));
  }

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Arena>> free_;
};

/// The process-wide arena pool shared by every wave search (like
/// shared_thread_pool(): one bounded set of chunks for the whole process).
inline ArenaPool& shared_arena_pool() {
  static ArenaPool pool;
  return pool;
}

}  // namespace ios
