#pragma once
// Set64: a value-type set of up to 64 small integers, used by the IOS dynamic
// program to represent subsets of the operators of one block (states S and
// endings S' in Algorithm 1 of the paper). All operations are O(1) bit tricks.

#include <array>
#include <bit>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace ios {

class Set64 {
 public:
  constexpr Set64() = default;
  constexpr explicit Set64(std::uint64_t bits) : bits_(bits) {}

  /// The set {0, 1, ..., n-1}. Requires n <= 64.
  static constexpr Set64 full(int n) {
    assert(n >= 0 && n <= 64);
    if (n == 0) return Set64{};
    if (n == 64) return Set64{~std::uint64_t{0}};
    return Set64{(std::uint64_t{1} << n) - 1};
  }

  static constexpr Set64 single(int i) {
    assert(i >= 0 && i < 64);
    return Set64{std::uint64_t{1} << i};
  }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }
  constexpr bool contains(int i) const { return (bits_ >> i) & 1u; }

  constexpr void insert(int i) { bits_ |= std::uint64_t{1} << i; }
  constexpr void erase(int i) { bits_ &= ~(std::uint64_t{1} << i); }

  constexpr bool is_subset_of(Set64 other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  constexpr bool intersects(Set64 other) const {
    return (bits_ & other.bits_) != 0;
  }

  constexpr Set64 operator|(Set64 o) const { return Set64{bits_ | o.bits_}; }
  constexpr Set64 operator&(Set64 o) const { return Set64{bits_ & o.bits_}; }
  constexpr Set64 operator-(Set64 o) const { return Set64{bits_ & ~o.bits_}; }
  constexpr Set64 operator^(Set64 o) const { return Set64{bits_ ^ o.bits_}; }
  constexpr Set64& operator|=(Set64 o) { bits_ |= o.bits_; return *this; }
  constexpr Set64& operator&=(Set64 o) { bits_ &= o.bits_; return *this; }
  constexpr Set64& operator-=(Set64 o) { bits_ &= ~o.bits_; return *this; }
  constexpr bool operator==(const Set64&) const = default;

  /// Index of the smallest element. Requires non-empty.
  constexpr int first() const {
    assert(!empty());
    return std::countr_zero(bits_);
  }

  /// Iterates set members in increasing order.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const {
      return bits_ != o.bits_;
    }

   private:
    std::uint64_t bits_;
  };

  constexpr iterator begin() const { return iterator{bits_}; }
  constexpr iterator end() const { return iterator{0}; }

  std::vector<int> to_vector() const {
    std::vector<int> v;
    v.reserve(static_cast<std::size_t>(size()));
    for (int i : *this) v.push_back(i);
    return v;
  }

 private:
  std::uint64_t bits_ = 0;
};

/// Stable counting sort of 64-bit masks by popcount. The wave search's
/// successor merge buckets each level's newly discovered states by popcount;
/// sorting a whole batch at once replaces the per-state branchy bucket
/// dispatch with two tight passes over contiguous memory — the histogram
/// pass is a pure popcount reduction the compiler vectorizes — and yields
/// each bucket as one contiguous span ready to splice into its level.
class PopcountBuckets {
 public:
  /// Sorts `keys` into popcount buckets (stable within each bucket).
  void build(const std::uint64_t* keys, std::size_t n) {
    counts_.fill(0);
    sorted_.resize(n);
    for (std::size_t i = 0; i < n; ++i) {
      ++counts_[static_cast<std::size_t>(std::popcount(keys[i]))];
    }
    std::array<std::uint32_t, 65> cursor;  // running offset per bucket
    std::uint32_t off = 0;
    for (std::size_t p = 0; p <= 64; ++p) {
      cursor[p] = off;
      offsets_[p] = off;
      off += counts_[p];
    }
    offsets_[65] = off;
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t p = static_cast<std::size_t>(std::popcount(keys[i]));
      sorted_[cursor[p]++] = keys[i];
    }
  }

  /// Number of keys with popcount `p`.
  std::uint32_t count(int p) const {
    return counts_[static_cast<std::size_t>(p)];
  }

  /// The keys with popcount `p`, in input order. Valid until the next
  /// build().
  const std::uint64_t* bucket(int p) const {
    return sorted_.data() + offsets_[static_cast<std::size_t>(p)];
  }

 private:
  std::vector<std::uint64_t> sorted_;
  std::array<std::uint32_t, 65> counts_{};
  std::array<std::uint32_t, 66> offsets_{};
};

}  // namespace ios
