#pragma once
// Set64: a value-type set of up to 64 small integers, used by the IOS dynamic
// program to represent subsets of the operators of one block (states S and
// endings S' in Algorithm 1 of the paper). All operations are O(1) bit tricks.

#include <bit>
#include <cassert>
#include <cstdint>
#include <vector>

namespace ios {

class Set64 {
 public:
  constexpr Set64() = default;
  constexpr explicit Set64(std::uint64_t bits) : bits_(bits) {}

  /// The set {0, 1, ..., n-1}. Requires n <= 64.
  static constexpr Set64 full(int n) {
    assert(n >= 0 && n <= 64);
    if (n == 0) return Set64{};
    if (n == 64) return Set64{~std::uint64_t{0}};
    return Set64{(std::uint64_t{1} << n) - 1};
  }

  static constexpr Set64 single(int i) {
    assert(i >= 0 && i < 64);
    return Set64{std::uint64_t{1} << i};
  }

  constexpr std::uint64_t bits() const { return bits_; }
  constexpr bool empty() const { return bits_ == 0; }
  constexpr int size() const { return std::popcount(bits_); }
  constexpr bool contains(int i) const { return (bits_ >> i) & 1u; }

  constexpr void insert(int i) { bits_ |= std::uint64_t{1} << i; }
  constexpr void erase(int i) { bits_ &= ~(std::uint64_t{1} << i); }

  constexpr bool is_subset_of(Set64 other) const {
    return (bits_ & ~other.bits_) == 0;
  }
  constexpr bool intersects(Set64 other) const {
    return (bits_ & other.bits_) != 0;
  }

  constexpr Set64 operator|(Set64 o) const { return Set64{bits_ | o.bits_}; }
  constexpr Set64 operator&(Set64 o) const { return Set64{bits_ & o.bits_}; }
  constexpr Set64 operator-(Set64 o) const { return Set64{bits_ & ~o.bits_}; }
  constexpr Set64 operator^(Set64 o) const { return Set64{bits_ ^ o.bits_}; }
  constexpr Set64& operator|=(Set64 o) { bits_ |= o.bits_; return *this; }
  constexpr Set64& operator&=(Set64 o) { bits_ &= o.bits_; return *this; }
  constexpr Set64& operator-=(Set64 o) { bits_ &= ~o.bits_; return *this; }
  constexpr bool operator==(const Set64&) const = default;

  /// Index of the smallest element. Requires non-empty.
  constexpr int first() const {
    assert(!empty());
    return std::countr_zero(bits_);
  }

  /// Iterates set members in increasing order.
  class iterator {
   public:
    constexpr explicit iterator(std::uint64_t bits) : bits_(bits) {}
    constexpr int operator*() const { return std::countr_zero(bits_); }
    constexpr iterator& operator++() {
      bits_ &= bits_ - 1;
      return *this;
    }
    constexpr bool operator!=(const iterator& o) const {
      return bits_ != o.bits_;
    }

   private:
    std::uint64_t bits_;
  };

  constexpr iterator begin() const { return iterator{bits_}; }
  constexpr iterator end() const { return iterator{0}; }

  std::vector<int> to_vector() const {
    std::vector<int> v;
    v.reserve(static_cast<std::size_t>(size()));
    for (int i : *this) v.push_back(i);
    return v;
  }

 private:
  std::uint64_t bits_ = 0;
};

}  // namespace ios
