#pragma once
// Hashing utilities: a strong 64-bit mixer (splitmix64 finalizer) and a
// hash-combiner used for memoization keys in the scheduler and the stage
// latency cache.

#include <cstdint>
#include <functional>
#include <string_view>

namespace ios {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two 64-bit hashes.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

inline std::uint64_t hash_bytes(std::string_view s) {
  // FNV-1a over the bytes, then mixed.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

/// Hasher for 64-bit keys in unordered containers (identity hashing of a
/// bitmask would cluster badly; mix first).
struct U64Hasher {
  std::size_t operator()(std::uint64_t x) const noexcept {
    return static_cast<std::size_t>(mix64(x));
  }
};

}  // namespace ios
