#pragma once
// Hashing utilities: a strong 64-bit mixer (splitmix64 finalizer) and a
// hash-combiner used for memoization keys in the scheduler and the stage
// latency cache.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string_view>

namespace ios {

/// splitmix64 finalizer: a cheap, well-distributed 64-bit mixing function.
constexpr std::uint64_t mix64(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ull;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
  return x ^ (x >> 31);
}

/// Order-dependent combination of two 64-bit hashes.
constexpr std::uint64_t hash_combine(std::uint64_t seed, std::uint64_t v) {
  return mix64(seed ^ (v + 0x9e3779b97f4a7c15ull + (seed << 6) + (seed >> 2)));
}

inline std::uint64_t hash_bytes(std::string_view s) {
  // FNV-1a over the bytes, then mixed.
  std::uint64_t h = 0xcbf29ce484222325ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;
  }
  return mix64(h);
}

/// Shard/stripe selector for 64-bit keys that also index FlatMap64 tables:
/// uses the HIGH bits of mix64(key), because the flat tables probe from the
/// low bits of the same mix — selecting shards by those bits would leave
/// every key within a shard agreeing on its home-slot residue and degrade
/// open-addressing probes into long linear runs.
constexpr std::size_t shard_index(std::uint64_t key, std::size_t num_shards) {
  return static_cast<std::size_t>(mix64(key) >> 32) % num_shards;
}

/// Canonical fingerprint of a stage-shaped value: a strategy tag combined
/// with ordered groups of operator ids, with group separators so that
/// [a b][c] and [a][b c] hash differently. This is THE stage-identity hash —
/// the cost model's latency cache, the profiling database, and the tests all
/// key stages through it (via ios::stage_fingerprint in schedule/schedule.hpp),
/// so persisted profiles always match the keys the live cache computes.
/// Templated on the group range (anything whose elements expose `.ops`) so
/// util/ does not depend on the schedule IR.
template <typename GroupRange>
constexpr std::uint64_t fingerprint_groups(std::uint64_t strategy_tag,
                                           const GroupRange& groups) {
  std::uint64_t h = strategy_tag;
  for (const auto& grp : groups) {
    h = hash_combine(h, 0x60ull);
    for (const auto id : grp.ops) {
      h = hash_combine(h, static_cast<std::uint64_t>(id));
    }
    h = hash_combine(h, 0xabcdefull);
  }
  return h;
}

/// Hasher for 64-bit keys in unordered containers (identity hashing of a
/// bitmask would cluster badly; mix first).
struct U64Hasher {
  std::size_t operator()(std::uint64_t x) const noexcept {
    return static_cast<std::size_t>(mix64(x));
  }
};

}  // namespace ios
