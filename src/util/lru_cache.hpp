#pragma once
// Bounded string-keyed LRU map. The recipe caches (the ios::Optimizer
// facade's single cache and each shard of serve's ShardedRecipeCache) use it
// to keep memory bounded under long-running serving workloads: every lookup
// or insert promotes the entry to most-recently-used, and an insert that
// would exceed the capacity evicts the least-recently-used entry first.
//
// Not thread-safe by itself — callers guard it with their own mutex (the
// Optimizer with one lock, the sharded cache with one lock per shard).

#include <cassert>
#include <cstddef>
#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

namespace ios {

template <typename Value>
class LruCache {
 public:
  /// A cache holding at most `capacity` entries (clamped to >= 1).
  explicit LruCache(std::size_t capacity)
      : capacity_(capacity < 1 ? 1 : capacity) {}

  std::size_t capacity() const { return capacity_; }
  std::size_t size() const { return index_.size(); }
  bool empty() const { return index_.empty(); }

  /// Entries evicted over the cache's lifetime.
  std::int64_t evictions() const { return evictions_; }

  /// Looks up `key` and, on a hit, promotes the entry to most-recently-used.
  /// Returns nullptr on a miss. The pointer stays valid until the entry is
  /// evicted or the cache is cleared.
  Value* get(const std::string& key) {
    const auto it = index_.find(key);
    if (it == index_.end()) return nullptr;
    order_.splice(order_.begin(), order_, it->second);
    return &it->second->second;
  }

  /// Inserts or overwrites `key`, promotes it to most-recently-used, and
  /// evicts least-recently-used entries while the cache is over capacity.
  /// Returns a reference to the stored value (valid until eviction/clear).
  Value& put(std::string key, Value value) {
    const auto it = index_.find(key);
    if (it != index_.end()) {
      it->second->second = std::move(value);
      order_.splice(order_.begin(), order_, it->second);
      return it->second->second;
    }
    order_.emplace_front(std::move(key), std::move(value));
    index_.emplace(order_.front().first, order_.begin());
    while (index_.size() > capacity_) {
      index_.erase(order_.back().first);
      order_.pop_back();
      ++evictions_;
    }
    assert(index_.size() == order_.size());
    return order_.front().second;
  }

  void clear() {
    index_.clear();
    order_.clear();
  }

  /// Keys from most- to least-recently-used (exposed for eviction tests).
  std::vector<std::string> keys_by_recency() const {
    std::vector<std::string> keys;
    keys.reserve(order_.size());
    for (const auto& [key, value] : order_) keys.push_back(key);
    return keys;
  }

 private:
  std::size_t capacity_;
  /// Front = most recently used; back = next eviction victim.
  std::list<std::pair<std::string, Value>> order_;
  std::unordered_map<std::string,
                     typename std::list<std::pair<std::string, Value>>::iterator>
      index_;
  std::int64_t evictions_ = 0;
};

}  // namespace ios
