#pragma once
// Flat open-addressing hash containers keyed by std::uint64_t, used for the
// scheduler's DP memo / ending caches and the cost model's stage-latency
// cache. The DP keys are Set64::bits() masks and the cost-model keys are
// stage fingerprints, so the generic std::unordered_map (separate chaining,
// one allocation per node) is replaced by a single contiguous slot array
// with linear probing — no per-entry allocation, cache-friendly probes, and
// cheap iteration. Keys are mixed (splitmix64) before probing, so clustered
// bitmask keys spread uniformly.
//
// Insert-only semantics (no erase): the DP and the caches only ever grow
// within one search, which keeps the table tombstone-free. Not thread-safe;
// concurrent readers are fine only while no writer is active (the wave
// search relies on this: tables are frozen between parallel phases).

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "util/hash.hpp"

namespace ios {

/// Open-addressing map from std::uint64_t to Value. Pointers returned by
/// find/try_emplace are invalidated by any later insert (the slot array
/// rehashes in place) — copy values out instead of holding references
/// across inserts.
template <typename Value>
class FlatMap64 {
 public:
  FlatMap64() = default;
  explicit FlatMap64(std::size_t expected) { reserve(expected); }

  std::size_t size() const { return size_ + (has_zero_ ? 1 : 0); }
  bool empty() const { return size() == 0; }

  Value* find(std::uint64_t key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }

  const Value* find(std::uint64_t key) const {
    if (key == 0) return has_zero_ ? &zero_value_ : nullptr;
    if (slots_.empty()) return nullptr;
    for (std::size_t i = mix64(key) & mask_;; i = (i + 1) & mask_) {
      const Slot& slot = slots_[i];
      if (slot.key == key) return &slot.value;
      if (slot.key == 0) return nullptr;
    }
  }

  /// Inserts `value` under `key` unless present; returns {slot, inserted}.
  std::pair<Value*, bool> try_emplace(std::uint64_t key, Value value) {
    if (key == 0) {
      if (!has_zero_) {
        has_zero_ = true;
        zero_value_ = std::move(value);
        return {&zero_value_, true};
      }
      return {&zero_value_, false};
    }
    if (slots_.empty() || (size_ + 1) * 10 > slots_.size() * 7) grow();
    for (std::size_t i = mix64(key) & mask_;; i = (i + 1) & mask_) {
      Slot& slot = slots_[i];
      if (slot.key == key) return {&slot.value, false};
      if (slot.key == 0) {
        slot.key = key;
        slot.value = std::move(value);
        ++size_;
        return {&slot.value, true};
      }
    }
  }

  /// Inserts or overwrites `key`; returns the stored value.
  Value& insert_or_assign(std::uint64_t key, Value value) {
    const auto [slot, inserted] = try_emplace(key, value);
    if (!inserted) *slot = std::move(value);
    return *slot;
  }

  /// Grows the slot array so `n` entries fit without rehashing.
  void reserve(std::size_t n) {
    std::size_t cap = kMinCapacity;
    while (n * 10 > cap * 7) cap <<= 1;
    if (cap > slots_.size()) rehash(cap);
  }

  void clear() {
    slots_.clear();
    mask_ = 0;
    size_ = 0;
    has_zero_ = false;
    zero_value_ = Value{};
  }

  /// Removes every entry but keeps the slot array allocated, so steady-state
  /// refill cycles (e.g. the wave cache's per-level fresh stripes) neither
  /// reallocate nor regrow from the minimum capacity.
  void clear_retain() {
    std::fill(slots_.begin(), slots_.end(), Slot{});
    size_ = 0;
    has_zero_ = false;
    zero_value_ = Value{};
  }

  /// Invokes f(key, const Value&) for every entry, unspecified order.
  template <typename F>
  void for_each(F&& f) const {
    if (has_zero_) f(std::uint64_t{0}, zero_value_);
    for (const Slot& slot : slots_) {
      if (slot.key != 0) f(slot.key, slot.value);
    }
  }

 private:
  struct Slot {
    std::uint64_t key = 0;  // 0 = empty (the zero key lives outside the array)
    Value value{};
  };

  static constexpr std::size_t kMinCapacity = 16;

  void grow() { rehash(slots_.empty() ? kMinCapacity : slots_.size() * 2); }

  void rehash(std::size_t new_cap) {
    assert((new_cap & (new_cap - 1)) == 0);
    std::vector<Slot> old = std::move(slots_);
    slots_.assign(new_cap, Slot{});
    mask_ = new_cap - 1;
    for (Slot& slot : old) {
      if (slot.key == 0) continue;
      for (std::size_t i = mix64(slot.key) & mask_;; i = (i + 1) & mask_) {
        if (slots_[i].key == 0) {
          slots_[i] = std::move(slot);
          break;
        }
      }
    }
  }

  std::vector<Slot> slots_;
  std::size_t mask_ = 0;
  std::size_t size_ = 0;  // entries in slots_, excluding the zero key
  bool has_zero_ = false;
  Value zero_value_{};
};

/// Open-addressing set of std::uint64_t keys (same layout and caveats as
/// FlatMap64, minus the values). Used for reachable-state bookkeeping in the
/// wave search and the transition counters.
class FlatSet64 {
 public:
  FlatSet64() = default;
  explicit FlatSet64(std::size_t expected) : map_(expected) {}

  std::size_t size() const { return map_.size(); }
  bool empty() const { return map_.empty(); }
  bool contains(std::uint64_t key) const { return map_.find(key) != nullptr; }

  /// True if `key` was newly inserted.
  bool insert(std::uint64_t key) {
    return map_.try_emplace(key, Empty{}).second;
  }

  void reserve(std::size_t n) { map_.reserve(n); }
  void clear() { map_.clear(); }

 private:
  struct Empty {};
  FlatMap64<Empty> map_;
};

}  // namespace ios
