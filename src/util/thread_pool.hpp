#pragma once
// Fixed-size thread pool used to schedule independent per-block dynamic
// programs concurrently (each block of the partition has its own BlockDag
// and BlockContext, so block DPs only share the CostModel, whose
// measurement path is thread-safe). Jobs are submitted as callables and
// their results/exceptions come back through std::future.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ios {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads) {
    const int n = num_threads < 1 ? 1 : num_threads;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Joins the workers after draining the queue: jobs already submitted
  /// still run to completion before the destructor returns.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `f` and returns a future for its result. Exceptions thrown by
  /// the job are captured and rethrown from future::get().
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// A sensible worker count for CPU-bound work on this machine.
  static int hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stopping_ and nothing left to run
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

}  // namespace ios
