#pragma once
// Fixed-size thread pool plus the two primitives the search engine is built
// on: a process-wide lazily-initialized shared pool (spawning and joining a
// fresh pool per scheduling call costs more than small blocks' whole DP) and
// a nesting-safe parallel_for. Jobs are submitted as callables and their
// results/exceptions come back through std::future.

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

namespace ios {

class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads) {
    const int n = num_threads < 1 ? 1 : num_threads;
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
      workers_.emplace_back([this] { worker_loop(); });
    }
  }

  /// Joins the workers after draining the queue: jobs already submitted
  /// still run to completion before the destructor returns.
  ~ThreadPool() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      stopping_ = true;
    }
    cv_.notify_all();
    for (std::thread& w : workers_) w.join();
  }

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int size() const { return static_cast<int>(workers_.size()); }

  /// Enqueues `f` and returns a future for its result. Exceptions thrown by
  /// the job are captured and rethrown from future::get().
  template <typename F>
  std::future<std::invoke_result_t<F>> submit(F&& f) {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> result = task->get_future();
    {
      std::lock_guard<std::mutex> lock(mu_);
      jobs_.emplace_back([task] { (*task)(); });
    }
    cv_.notify_one();
    return result;
  }

  /// A sensible worker count for CPU-bound work on this machine.
  static int hardware_threads() {
    const unsigned n = std::thread::hardware_concurrency();
    return n == 0 ? 1 : static_cast<int>(n);
  }

 private:
  void worker_loop() {
    for (;;) {
      std::function<void()> job;
      {
        std::unique_lock<std::mutex> lock(mu_);
        cv_.wait(lock, [this] { return stopping_ || !jobs_.empty(); });
        if (jobs_.empty()) return;  // stopping_ and nothing left to run
        job = std::move(jobs_.front());
        jobs_.pop_front();
      }
      job();
    }
  }

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> jobs_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
};

/// The process-wide worker pool, created on first use with one thread per
/// hardware thread and shared by every parallel caller (block-level
/// scheduling, the wave search's per-level fan-out, serving prewarm). A
/// single long-lived pool amortizes thread spawn/join over all calls and
/// keeps the total thread count bounded no matter how many schedulers run.
inline ThreadPool& shared_thread_pool() {
  static ThreadPool pool(ThreadPool::hardware_threads());
  return pool;
}

/// Runs f(0) .. f(n-1) with up to `num_threads` workers (<= 0 = one per
/// hardware thread), drawing helpers from shared_thread_pool(). The calling
/// thread always participates and claims indices from the same atomic
/// cursor, so the loop completes even if every pool worker is busy — which
/// makes nesting safe: an outer parallel_for over blocks may invoke an
/// inner parallel_for over DP states without risking pool-exhaustion
/// deadlock (queued helpers that start after the work is drained return
/// immediately). Iterations must be independent; the assignment of indices
/// to threads is nondeterministic, so f must only write to per-index state.
/// The first exception thrown by any iteration is rethrown to the caller
/// after all claimed iterations finish.
inline void parallel_for(std::size_t n, int num_threads,
                         const std::function<void(std::size_t)>& f) {
  const int want =
      num_threads <= 0 ? ThreadPool::hardware_threads() : num_threads;
  if (n <= 1 || want <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(i);
    return;
  }

  // Shared by the caller and the queued helpers; the shared_ptr keeps it
  // (and the copied f) alive for helpers that start after the caller left.
  struct State {
    std::size_t n;
    std::function<void(std::size_t)> f;
    std::atomic<std::size_t> next{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->f = f;

  const auto run = [state] {
    std::size_t i;
    while ((i = state->next.fetch_add(1)) < state->n) {
      std::exception_ptr err;
      try {
        state->f(i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (err && !state->error) state->error = err;
      if (++state->done == state->n) state->cv.notify_all();
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(want) - 1, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    // Fire-and-forget: completion is tracked by state->done, not futures, so
    // the caller never blocks on a helper that was queued but never ran.
    shared_thread_pool().submit(run);
  }
  run();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

/// parallel_for with a per-worker slot id: runs f(slot, 0) .. f(slot, n-1)
/// like parallel_for, where `slot` identifies the participating worker and
/// is dense in [0, min(num_threads, n)). The wave engine uses the slot to
/// give each worker its own leased Arena, so per-state transition records
/// bump-allocate without synchronization. Same claiming, nesting, and
/// exception semantics as parallel_for; iteration-to-slot assignment is
/// nondeterministic, so per-slot state must not influence results.
inline void parallel_for_indexed(
    std::size_t n, int num_threads,
    const std::function<void(int, std::size_t)>& f) {
  const int want =
      num_threads <= 0 ? ThreadPool::hardware_threads() : num_threads;
  if (n <= 1 || want <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(0, i);
    return;
  }

  struct State {
    std::size_t n;
    std::function<void(int, std::size_t)> f;
    std::atomic<std::size_t> next{0};
    std::atomic<int> next_slot{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->f = f;

  const auto run = [state] {
    const int slot = state->next_slot.fetch_add(1);
    std::size_t i;
    while ((i = state->next.fetch_add(1)) < state->n) {
      std::exception_ptr err;
      try {
        state->f(slot, i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (err && !state->error) state->error = err;
      if (++state->done == state->n) state->cv.notify_all();
    }
  };

  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(want) - 1, n - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    shared_thread_pool().submit(run);
  }
  run();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace ios
