#include "util/json.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/hash.hpp"

namespace ios {

JsonValue JsonValue::array() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}

JsonValue JsonValue::object() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

namespace {

[[noreturn]] void kind_error(const char* want) {
  throw std::runtime_error(std::string("json: value is not a ") + want);
}

}  // namespace

bool JsonValue::as_bool() const {
  if (kind_ != Kind::kBool) kind_error("bool");
  return bool_;
}

double JsonValue::as_number() const {
  if (kind_ != Kind::kNumber) kind_error("number");
  return number_;
}

std::int64_t JsonValue::as_int() const {
  const double d = as_number();
  const auto i = static_cast<std::int64_t>(std::llround(d));
  return i;
}

const std::string& JsonValue::as_string() const {
  if (kind_ != Kind::kString) kind_error("string");
  return string_;
}

const std::vector<JsonValue>& JsonValue::as_array() const {
  if (kind_ != Kind::kArray) kind_error("array");
  return array_;
}

const std::map<std::string, JsonValue>& JsonValue::as_object() const {
  if (kind_ != Kind::kObject) kind_error("object");
  return object_;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  const auto& obj = as_object();
  const auto it = obj.find(key);
  if (it == obj.end()) {
    throw std::runtime_error("json: missing key '" + key + "'");
  }
  return it->second;
}

bool JsonValue::contains(const std::string& key) const {
  return kind_ == Kind::kObject && object_.count(key) > 0;
}

JsonValue& JsonValue::push_back(JsonValue v) {
  if (kind_ != Kind::kArray) kind_error("array");
  array_.push_back(std::move(v));
  return *this;
}

JsonValue& JsonValue::set(const std::string& key, JsonValue v) {
  if (kind_ != Kind::kObject) kind_error("object");
  object_[key] = std::move(v);
  return *this;
}

namespace {

void dump_string(const std::string& s, std::string& out) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

void dump_number(double d, std::string& out) {
  if (d == std::floor(d) && std::abs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

}  // namespace

void JsonValue::dump_to(std::string& out) const {
  switch (kind_) {
    case Kind::kNull:
      out += "null";
      break;
    case Kind::kBool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::kNumber:
      dump_number(number_, out);
      break;
    case Kind::kString:
      dump_string(string_, out);
      break;
    case Kind::kArray: {
      out += '[';
      bool first = true;
      for (const JsonValue& v : array_) {
        if (!first) out += ',';
        v.dump_to(out);
        first = false;
      }
      out += ']';
      break;
    }
    case Kind::kObject: {
      out += '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) out += ',';
        dump_string(k, out);
        out += ':';
        v.dump_to(out);
        first = false;
      }
      out += '}';
      break;
    }
  }
}

std::string JsonValue::dump() const {
  std::string out;
  dump_to(out);
  return out;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& what) const {
    throw std::runtime_error("json parse error at offset " +
                             std::to_string(pos_) + ": " + what);
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    if (c == '{') return parse_object();
    if (c == '[') return parse_array();
    if (c == '"') return JsonValue(parse_string());
    if (consume_literal("true")) return JsonValue(true);
    if (consume_literal("false")) return JsonValue(false);
    if (consume_literal("null")) return JsonValue(nullptr);
    return parse_number();
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.set(key, parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return obj;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      arr.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return arr;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) fail("bad escape");
        const char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) fail("bad \\u escape");
            const int code =
                std::stoi(std::string(text_.substr(pos_, 4)), nullptr, 16);
            pos_ += 4;
            // Only BMP codepoints < 0x80 are emitted by our writer; encode
            // anything else as UTF-8.
            if (code < 0x80) {
              out += static_cast<char>(code);
            } else if (code < 0x800) {
              out += static_cast<char>(0xC0 | (code >> 6));
              out += static_cast<char>(0x80 | (code & 0x3F));
            } else {
              out += static_cast<char>(0xE0 | (code >> 12));
              out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
              out += static_cast<char>(0x80 | (code & 0x3F));
            }
            break;
          }
          default:
            fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) fail("invalid value");
    try {
      return JsonValue(std::stod(std::string(text_.substr(start, pos_ - start))));
    } catch (const std::exception&) {
      fail("invalid number");
    }
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue JsonValue::parse(std::string_view text) {
  return Parser(text).parse_document();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) throw std::runtime_error("cannot open for writing: " + path);
  f.write(text.data(), static_cast<std::streamsize>(text.size()));
  if (!f) throw std::runtime_error("write failed: " + path);
}

void write_file_atomic(const std::string& path, const std::string& text) {
  const std::string tmp = path + ".tmp";
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) throw std::runtime_error("cannot open for writing: " + tmp);
  std::size_t written = 0;
  while (written < text.size()) {
    const ssize_t n =
        ::write(fd, text.data() + written, text.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      std::remove(tmp.c_str());
      throw std::runtime_error("write failed: " + tmp);
    }
    written += static_cast<std::size_t>(n);
  }
  // fsync before rename: the rename must not be durable before the data is,
  // or a crash could leave a correctly-named empty file.
  if (::fsync(fd) != 0) {
    ::close(fd);
    std::remove(tmp.c_str());
    throw std::runtime_error("fsync failed: " + tmp);
  }
  if (::close(fd) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("close failed: " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    throw std::runtime_error("cannot rename " + tmp + " to " + path);
  }
  // fsync the directory so the rename itself survives a crash.
  std::string dir = path;
  const std::size_t slash = dir.find_last_of('/');
  dir = slash == std::string::npos ? "." : dir.substr(0, slash + 1);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

std::string content_checksum(std::string_view text) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(hash_bytes(text)));
  return buf;
}

namespace {

// The checksum covers the document serialized *without* its "checksum"
// member (JsonValue::dump sorts keys, so both sides serialize identically).
std::string dump_without_checksum(const JsonValue& doc) {
  JsonValue stripped = JsonValue::object();
  for (const auto& [key, value] : doc.as_object()) {
    if (key != "checksum") stripped.set(key, value);
  }
  return stripped.dump();
}

}  // namespace

JsonValue with_content_checksum(JsonValue doc) {
  if (!doc.is_object()) {
    throw std::runtime_error(
        "with_content_checksum: document must be a JSON object");
  }
  doc.set("checksum", content_checksum(dump_without_checksum(doc)));
  return doc;
}

void verify_content_checksum(const JsonValue& doc, const std::string& what) {
  if (!doc.is_object() || !doc.contains("checksum")) return;
  const std::string& stored = doc.at("checksum").as_string();
  const std::string actual = content_checksum(dump_without_checksum(doc));
  if (stored != actual) {
    throw CorruptFileError(what + ": content checksum mismatch (stored " +
                           stored + ", computed " + actual +
                           ") — file is corrupt or truncated");
  }
}

std::string read_file(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  if (!f) throw std::runtime_error("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << f.rdbuf();
  return ss.str();
}

}  // namespace ios
