#include "util/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>

namespace ios {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::add_row(std::vector<std::string> row) {
  assert(row.size() == header_.size());
  rows_.push_back(std::move(row));
}

std::string TablePrinter::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

std::string TablePrinter::to_string() const {
  std::vector<std::size_t> width(header_.size());
  for (std::size_t c = 0; c < header_.size(); ++c) width[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }

  std::ostringstream out;
  auto emit = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out << "| " << row[c] << std::string(width[c] - row[c].size() + 1, ' ');
    }
    out << "|\n";
  };
  emit(header_);
  for (std::size_t c = 0; c < header_.size(); ++c) {
    out << "|" << std::string(width[c] + 2, '-');
  }
  out << "|\n";
  for (const auto& row : rows_) emit(row);
  return out.str();
}

void TablePrinter::print() const { std::fputs(to_string().c_str(), stdout); }

}  // namespace ios
