#pragma once
// Shared handling of name lists. unknown_name_message: formatting for
// registry-style lookup failures — every name-keyed lookup in the library
// (devices, zoo models, baselines) reports the full set of known names, so
// a typo on the command line or in an OptimizationRequest is a
// one-round-trip fix. split_csv: the inverse direction, parsing the
// comma-separated name lists the CLI and benches accept.

#include <string>
#include <string_view>
#include <vector>

namespace ios {

/// "known devices: 1080 2080ti k80 ..." — the enumerating suffix every
/// name-keyed error ends with, also usable on its own for errors that are
/// not a simple unknown-name lookup (e.g. an empty device-pool spec).
inline std::string known_names_list(std::string_view kind,
                                    const std::vector<std::string>& known) {
  std::string msg = "known ";
  msg += kind;
  msg += "s:";
  for (const std::string& k : known) {
    msg += ' ';
    msg += k;
  }
  return msg;
}

/// "unknown device 'foo'; known devices: 1080, 2080ti, k80, ..." — names are
/// listed in the order given (registries pass them sorted).
inline std::string unknown_name_message(std::string_view kind,
                                        std::string_view name,
                                        const std::vector<std::string>& known) {
  std::string msg = "unknown ";
  msg += kind;
  msg += " '";
  msg += name;
  msg += "'; ";
  msg += known_names_list(kind, known);
  return msg;
}

/// Splits "a,b,c" into {"a", "b", "c"}; empty segments are dropped.
inline std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> parts;
  std::size_t begin = 0;
  while (begin <= csv.size()) {
    const std::size_t end = csv.find(',', begin);
    const std::string part =
        csv.substr(begin, end == std::string::npos ? end : end - begin);
    if (!part.empty()) parts.push_back(part);
    if (end == std::string::npos) break;
    begin = end + 1;
  }
  return parts;
}

}  // namespace ios
