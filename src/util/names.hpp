#pragma once
// Shared formatting for registry-style lookup failures. Every name-keyed
// lookup in the library (devices, zoo models, baselines) reports the full
// set of known names, so a typo on the command line or in an
// OptimizationRequest is a one-round-trip fix.

#include <string>
#include <string_view>
#include <vector>

namespace ios {

/// "unknown device 'foo'; known devices: 1080, 2080ti, k80, ..." — names are
/// listed in the order given (registries pass them sorted).
inline std::string unknown_name_message(std::string_view kind,
                                        std::string_view name,
                                        const std::vector<std::string>& known) {
  std::string msg = "unknown ";
  msg += kind;
  msg += " '";
  msg += name;
  msg += "'; known ";
  msg += kind;
  msg += "s:";
  for (const std::string& k : known) {
    msg += ' ';
    msg += k;
  }
  return msg;
}

}  // namespace ios
