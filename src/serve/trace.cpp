#include "serve/trace.hpp"

#include <cmath>
#include <stdexcept>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ios::serve {

namespace {

// Appends `num_requests` Poisson arrivals at mean gap `mean_us` starting
// from *now, drawing gaps and model picks from `rng`. Leaves *now at the
// last generated arrival.
void append_phase(const TraceSpec& spec, int num_requests, double mean_us,
                  Rng& rng, double* now, Trace* trace) {
  for (int i = 0; i < num_requests; ++i) {
    // Exponential inter-arrival gap; 1 - uniform() is in (0, 1], so the log
    // is finite.
    *now += -std::log(1.0 - rng.uniform()) * mean_us;
    const int pick = rng.uniform_int(static_cast<int>(spec.models.size()));
    trace->requests.push_back(
        {*now, spec.models[static_cast<std::size_t>(pick)]});
  }
}

}  // namespace

Trace generate_trace(const TraceSpec& spec) {
  if (spec.models.empty()) {
    throw std::invalid_argument("generate_trace: spec.models is empty");
  }

  Trace trace;
  double now = 0;
  if (spec.phases.empty()) {
    if (spec.num_requests <= 0) {
      throw std::invalid_argument("generate_trace: num_requests must be > 0");
    }
    if (spec.mean_interarrival_us <= 0) {
      throw std::invalid_argument(
          "generate_trace: mean_interarrival_us must be > 0");
    }
    Rng rng(spec.seed);
    trace.requests.reserve(static_cast<std::size_t>(spec.num_requests));
    append_phase(spec, spec.num_requests, spec.mean_interarrival_us, rng, &now,
                 &trace);
    return trace;
  }

  std::size_t total = 0;
  for (const TracePhase& phase : spec.phases) {
    if (phase.num_requests <= 0) {
      throw std::invalid_argument(
          "generate_trace: phase num_requests must be > 0");
    }
    if (phase.mean_interarrival_us <= 0) {
      throw std::invalid_argument(
          "generate_trace: phase mean_interarrival_us must be > 0");
    }
    total += static_cast<std::size_t>(phase.num_requests);
  }
  trace.requests.reserve(total);
  for (std::size_t k = 0; k < spec.phases.size(); ++k) {
    // Seed-stable splicing: each phase gets its own RNG stream derived from
    // (seed, phase index), so tweaking one phase's shape never perturbs the
    // draws of any other phase.
    Rng rng(hash_combine(spec.seed, mix64(static_cast<std::uint64_t>(k))));
    append_phase(spec, spec.phases[k].num_requests,
                 spec.phases[k].mean_interarrival_us, rng, &now, &trace);
  }
  return trace;
}

}  // namespace ios::serve
