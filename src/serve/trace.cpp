#include "serve/trace.hpp"

#include <cmath>
#include <stdexcept>

#include "util/rng.hpp"

namespace ios::serve {

Trace generate_trace(const TraceSpec& spec) {
  if (spec.models.empty()) {
    throw std::invalid_argument("generate_trace: spec.models is empty");
  }
  if (spec.num_requests <= 0) {
    throw std::invalid_argument("generate_trace: num_requests must be > 0");
  }
  if (spec.mean_interarrival_us <= 0) {
    throw std::invalid_argument(
        "generate_trace: mean_interarrival_us must be > 0");
  }

  Rng rng(spec.seed);
  Trace trace;
  trace.requests.reserve(static_cast<std::size_t>(spec.num_requests));
  double now = 0;
  for (int i = 0; i < spec.num_requests; ++i) {
    // Exponential inter-arrival gap; 1 - uniform() is in (0, 1], so the log
    // is finite.
    now += -std::log(1.0 - rng.uniform()) * spec.mean_interarrival_us;
    const int pick = rng.uniform_int(static_cast<int>(spec.models.size()));
    trace.requests.push_back(
        {now, spec.models[static_cast<std::size_t>(pick)]});
  }
  return trace;
}

}  // namespace ios::serve
