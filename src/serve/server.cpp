#include "serve/server.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>
#include <map>
#include <queue>
#include <stdexcept>
#include <tuple>
#include <utility>

#include "sim/device.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ios::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Tolerance when comparing simulated times (they are sums of doubles).
constexpr double kTimeEps = 1e-9;

ServerOptions normalize(ServerOptions options) {
  if (options.batching.batch_sizes.empty()) {
    throw std::invalid_argument("Server: batching.batch_sizes is empty");
  }
  for (int b : options.batching.batch_sizes) {
    if (b < 1) {
      throw std::invalid_argument("Server: batch sizes must be >= 1");
    }
  }
  std::sort(options.batching.batch_sizes.begin(),
            options.batching.batch_sizes.end());
  options.batching.batch_sizes.erase(
      std::unique(options.batching.batch_sizes.begin(),
                  options.batching.batch_sizes.end()),
      options.batching.batch_sizes.end());
  if (options.batching.max_queue_delay_us < 0) {
    throw std::invalid_argument("Server: max_queue_delay_us must be >= 0");
  }
  options.num_workers = std::max(1, options.num_workers);
  // Reject inconsistent scheduler settings at construction, not on the
  // first cache miss.
  options.scheduler.validate();
  if (options.pool.empty()) {
    // Canonicalize (and validate) the device name once, up front.
    options.device = device_by_name(options.device).name;
  } else {
    // Pool classes must be registry devices (recipes are resolved through
    // the Optimizer by name); canonicalize them and size the worker fleet.
    options.pool.validate();
    for (DeviceClass& c : options.pool.classes) {
      c.spec.name = device_by_name(c.spec.name).name;
    }
    options.device = options.pool.classes.front().spec.name;
    options.num_workers = options.pool.total_devices();
  }
  return options;
}

}  // namespace

std::string serving_cache_key(const std::string& model,
                              const std::string& device, int batch,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol) {
  std::string key = model;
  key += '\n';
  key += device;
  key += "\nbatch=" + std::to_string(batch);
  key += '\n';
  key += scheduler_config_key(options, protocol);
  return key;
}

Server::Server(ServerOptions options)
    : Server(std::move(options), nullptr) {}

Server::Server(ServerOptions options, std::shared_ptr<ShardedRecipeCache> cache)
    : options_(normalize(std::move(options))),
      config_key_part_(
          '\n' + scheduler_config_key(options_.scheduler, options_.protocol)),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ShardedRecipeCache>(options_.cache)) {
  if (options_.pool.empty()) {
    classes_.push_back(WorkerClass{options_.device,
                                   '\n' + options_.device + "\nbatch=",
                                   options_.num_workers});
  } else {
    for (const DeviceClass& c : options_.pool.classes) {
      classes_.push_back(WorkerClass{
          c.spec.name, '\n' + c.spec.name + "\nbatch=", c.count});
    }
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (int i = 0; i < classes_[c].count; ++i) {
      worker_class_.push_back(static_cast<int>(c));
    }
  }
}

std::string Server::cache_key(const std::string& model, int batch,
                              std::size_t cls) const {
  // Equivalent to serving_cache_key(model, class device, batch, ...) with
  // the constant parts preassembled (pinned by ServingCacheKey tests).
  return model + classes_[cls].key_part + std::to_string(batch) +
         config_key_part_;
}

CachedRecipe Server::optimize_config(const std::string& model, int batch,
                                     const std::string& device) {
  OptimizationRequest request =
      OptimizationRequest::for_model(model, device, batch);
  request.options = options_.scheduler;
  request.protocol = options_.protocol;
  request.profile_db = options_.profile_db;
  request.baselines.clear();  // serving needs the schedule, not comparisons
  const OptimizationResult result = optimizer_.optimize(request);
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++total_optimizations_;
    total_measurements_ += result.new_measurements;
  }
  return CachedRecipe{result.schedule, result.latency_us, result.stats,
                      result.new_measurements};
}

CachedRecipe Server::resolve(const std::string& model, int batch,
                             std::size_t cls, bool* computed) {
  return cache_->get_or_compute(
      cache_key(model, batch, cls),
      [&] { return optimize_config(model, batch, classes_[cls].device); },
      computed);
}

double Server::resolve_latency(const std::string& model, int batch,
                               std::size_t cls, bool* computed) {
  return cache_->latency_or_compute(
      cache_key(model, batch, cls),
      [&] { return optimize_config(model, batch, classes_[cls].device); },
      computed);
}

void Server::prewarm(const std::vector<std::string>& models, int threads) {
  struct Config {
    const std::string* model;
    int batch;
    std::size_t cls;
  };
  std::vector<Config> configs;
  for (const std::string& model : models) {
    for (int batch : options_.batching.batch_sizes) {
      for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
        configs.push_back(Config{&model, batch, cls});
      }
    }
  }
  // Misses fan out over the shared process-wide pool (no per-call pool
  // spawn); the inner wave searches draw from the same pool, nesting-safe.
  parallel_for(configs.size(), threads, [&](std::size_t i) {
    resolve(*configs[i].model, configs[i].batch, configs[i].cls);
  });
}

ServingResult Server::run(const Trace& trace) {
  ServingResult result;
  result.records.resize(trace.requests.size());
  if (trace.requests.empty()) return result;

  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    if (trace.requests[i].arrival_us < trace.requests[i - 1].arrival_us) {
      throw std::invalid_argument(
          "Server::run: trace arrivals must be non-decreasing");
    }
  }

  // ---- simulation state -----------------------------------------------
  struct ModelQueue {
    int id = 0;               // index into `names` (flush-event payload)
    std::deque<int> pending;  // request indices, arrival order
    double flush_at = kInf;   // deadline of the currently armed flush event
  };
  // std::map: deterministic iteration order (not that the DES relies on it).
  std::map<std::string, ModelQueue> queues;

  // Min-heap of (time, sequence, kind, payload). kind 0 = arrival (payload =
  // request index), kind 1 = flush deadline (payload = index into `names`).
  using Event = std::tuple<double, long, int, int>;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> events;
  long seq = 0;
  std::vector<std::string> names;  // flush payload -> model name

  std::vector<double> worker_free(
      static_cast<std::size_t>(options_.num_workers), 0.0);
  std::vector<double> worker_busy(
      static_cast<std::size_t>(options_.num_workers), 0.0);

  const std::vector<int>& sizes = options_.batching.batch_sizes;
  const int max_batch = sizes.back();
  const double delay = options_.batching.max_queue_delay_us;

  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    events.emplace(trace.requests[i].arrival_us, seq++, 0,
                   static_cast<int>(i));
  }

  const auto arrival_of = [&](int index) {
    return trace.requests[static_cast<std::size_t>(index)].arrival_us;
  };

  // Reused per formed batch: service time of the batch on every worker
  // class (a per-dispatch allocation here would sit in the DES hot loop).
  std::vector<double> service(classes_.size());

  // Closes a batch of the first `size` queued requests of `model` at
  // simulated time `now` and dispatches it to the worker minimizing its
  // predicted completion, ties broken by the earlier-free worker (queue
  // depth) and then the lower index. With one device class this reduces to
  // FIFO list scheduling on the first worker that frees up.
  const auto form_batch = [&](const std::string& model, ModelQueue& q,
                              int size, double now) {
    BatchRecord batch;
    batch.id = static_cast<int>(result.batches.size());
    batch.model = model;
    batch.size = size;
    batch.formed_us = now;

    // Service time of this (model, size) on every worker class — the
    // routing decision needs all of them.
    double min_service = kInf;
    for (std::size_t c = 0; c < classes_.size(); ++c) {
      bool computed = false;
      service[c] = resolve_latency(model, size, c, &computed);
      ++(computed ? result.stats.cache_misses : result.stats.cache_hits);
      min_service = std::min(min_service, service[c]);
    }

    // Routing score: predicted completion plus the service-time inflation
    // over the batch's best class. The inflation term charges a misroute
    // the extra device time it burns, so under saturation each class keeps
    // the work it is best at; when the best class is backlogged the batch
    // still spills to a worker that genuinely finishes it sooner. With one
    // class the term is zero and this is plain FIFO list scheduling.
    int worker = 0;
    double best_score = kInf;
    for (int w = 0; w < options_.num_workers; ++w) {
      const auto wi = static_cast<std::size_t>(w);
      const double svc = service[static_cast<std::size_t>(worker_class_[wi])];
      const double score =
          std::max(now, worker_free[wi]) + svc + (svc - min_service);
      if (score < best_score ||
          (score == best_score &&
           worker_free[wi] < worker_free[static_cast<std::size_t>(worker)])) {
        best_score = score;
        worker = w;
      }
    }
    const auto wi = static_cast<std::size_t>(worker);
    const std::size_t cls = static_cast<std::size_t>(worker_class_[wi]);
    batch.service_us = service[cls];
    batch.worker = worker;
    batch.device = classes_[cls].device;
    batch.start_us = std::max(now, worker_free[wi]);
    batch.completion_us = batch.start_us + batch.service_us;
    worker_free[wi] = batch.completion_us;
    worker_busy[wi] += batch.service_us;

    for (int k = 0; k < size; ++k) {
      const int index = q.pending.front();
      q.pending.pop_front();
      RequestRecord& r = result.records[static_cast<std::size_t>(index)];
      r.index = index;
      r.model = model;
      r.arrival_us = arrival_of(index);
      r.dispatch_us = batch.start_us;
      r.completion_us = batch.completion_us;
      r.latency_us = batch.completion_us - r.arrival_us;
      r.batch_size = size;
      r.batch_id = batch.id;
      r.worker = worker;
      r.device = batch.device;
    }
    result.batches.push_back(std::move(batch));
  };

  // The largest allowed batch size that fits `len` queued requests; a queue
  // shorter than the smallest allowed size is flushed whole.
  const auto deadline_batch_size = [&](std::size_t len) {
    int best = 0;
    for (int s : sizes) {
      if (static_cast<std::size_t>(s) <= len) best = s;
    }
    return best > 0 ? best : static_cast<int>(len);
  };

  // (Re)arms the flush event for the queue's current oldest request.
  const auto arm_flush = [&](ModelQueue& q) {
    if (q.pending.empty()) {
      q.flush_at = kInf;
      return;
    }
    const double t = arrival_of(q.pending.front()) + delay;
    if (q.flush_at != t) {
      q.flush_at = t;
      events.emplace(t, seq++, 1, q.id);
    }
  };

  // ---- event loop ------------------------------------------------------
  while (!events.empty()) {
    const auto [now, s, kind, payload] = events.top();
    events.pop();
    (void)s;
    if (kind == 0) {  // arrival
      const std::string& model =
          trace.requests[static_cast<std::size_t>(payload)].model;
      const auto [it, inserted] = queues.try_emplace(model);
      ModelQueue& q = it->second;
      if (inserted) {
        q.id = static_cast<int>(names.size());
        names.push_back(model);
      }
      q.pending.push_back(payload);
      while (static_cast<int>(q.pending.size()) >= max_batch) {
        form_batch(model, q, max_batch, now);
      }
      arm_flush(q);
    } else {  // flush deadline
      const std::string& model = names[static_cast<std::size_t>(payload)];
      ModelQueue& q = queues[model];
      if (q.flush_at != now) continue;  // stale event: the queue moved on
      q.flush_at = kInf;
      while (!q.pending.empty() &&
             now >= arrival_of(q.pending.front()) + delay - kTimeEps) {
        form_batch(model, q, deadline_batch_size(q.pending.size()), now);
      }
      arm_flush(q);
    }
  }

  // ---- aggregates ------------------------------------------------------
  ServingStats& stats = result.stats;
  stats.requests = static_cast<std::int64_t>(result.records.size());
  stats.batches = static_cast<std::int64_t>(result.batches.size());
  std::vector<double> latencies, waits;
  latencies.reserve(result.records.size());
  waits.reserve(result.records.size());
  for (const RequestRecord& r : result.records) {
    latencies.push_back(r.latency_us);
    waits.push_back(r.dispatch_us - r.arrival_us);
  }
  for (const BatchRecord& b : result.batches) {
    stats.makespan_us = std::max(stats.makespan_us, b.completion_us);
  }
  if (stats.makespan_us > 0) {
    stats.throughput_rps =
        static_cast<double>(stats.requests) / (stats.makespan_us / 1e6);
    double busy = 0;
    for (double b : worker_busy) busy += b;
    stats.worker_utilization =
        busy / (static_cast<double>(options_.num_workers) * stats.makespan_us);
  }
  stats.mean_latency_us = mean(latencies);
  stats.mean_queue_wait_us = mean(waits);
  std::sort(latencies.begin(), latencies.end());
  stats.p50_latency_us = percentile_sorted(latencies, 50);
  stats.p95_latency_us = percentile_sorted(latencies, 95);
  stats.p99_latency_us = percentile_sorted(latencies, 99);
  stats.max_latency_us = latencies.back();
  stats.mean_batch_size = static_cast<double>(stats.requests) /
                          static_cast<double>(stats.batches);
  // Per-class load picture (one row for a homogeneous server).
  result.device_loads.resize(classes_.size());
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    result.device_loads[c].device = classes_[c].device;
    result.device_loads[c].devices = classes_[c].count;
  }
  for (int w = 0; w < options_.num_workers; ++w) {
    result.device_loads[static_cast<std::size_t>(worker_class_[
        static_cast<std::size_t>(w)])].busy_us +=
        worker_busy[static_cast<std::size_t>(w)];
  }
  for (const BatchRecord& b : result.batches) {
    ++result.device_loads[static_cast<std::size_t>(
        worker_class_[static_cast<std::size_t>(b.worker)])].batches;
  }
  if (stats.makespan_us > 0) {
    for (DeviceLoad& load : result.device_loads) {
      load.utilization = load.busy_us / (load.devices * stats.makespan_us);
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_requests_ += stats.requests;
    total_batches_ += stats.batches;
  }
  return result;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = total_requests_;
    s.batches = total_batches_;
    s.optimizations = total_optimizations_;
    s.measurements = total_measurements_;
  }
  s.cache = cache_->stats();
  return s;
}

}  // namespace ios::serve
