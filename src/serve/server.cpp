#include "serve/server.hpp"

#include <limits>
#include <stdexcept>
#include <utility>

namespace ios::serve {

Server::Server(ServerOptions options)
    : Server(std::move(options), nullptr) {}

Server::Server(ServerOptions options, std::shared_ptr<ShardedRecipeCache> cache)
    : engine_(std::move(options), &clock_, std::move(cache)) {}

void Server::prewarm(const std::vector<std::string>& models, int threads) {
  engine_.prewarm(models, threads);
}

ServingResult Server::run(const Trace& trace) {
  if (trace.requests.empty()) {
    return summarize({}, engine_, 0);
  }
  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    if (trace.requests[i].arrival_us < trace.requests[i - 1].arrival_us) {
      throw std::invalid_argument(
          "Server::run: trace arrivals must be non-decreasing");
    }
  }

  // Fresh simulation: the engine forgets queues and worker bookkeeping (but
  // keeps the recipe cache and lifetime counters), and time restarts at 0.
  engine_.reset();
  clock_.reset();

  std::vector<EngineBatch> batches;
  const auto collect = [&](std::vector<EngineBatch> formed) {
    for (EngineBatch& b : formed) batches.push_back(std::move(b));
  };

  // The DES event loop: deadlines strictly before the next arrival fire
  // first; an arrival coinciding with a deadline is admitted first (it may
  // complete a full batch the flush would otherwise split) — the (time,
  // seq) order of the pre-extraction event heap, where every arrival
  // outranked every later-armed flush event at equal times.
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& request = trace.requests[i];
    while (engine_.next_deadline_us() < request.arrival_us) {
      clock_.advance_to(engine_.next_deadline_us());
      collect(engine_.poll());
    }
    clock_.advance_to(request.arrival_us);
    collect(engine_.submit(static_cast<std::int64_t>(i), request.model));
  }
  while (engine_.next_deadline_us() < std::numeric_limits<double>::infinity()) {
    clock_.advance_to(engine_.next_deadline_us());
    collect(engine_.poll());
  }

  ServingResult result =
      summarize(std::move(batches), engine_, trace.requests.size());
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_requests_ += result.stats.requests;
    total_batches_ += result.stats.batches;
  }
  return result;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = total_requests_;
    s.batches = total_batches_;
  }
  const EngineCounters counters = engine_.counters();
  s.optimizations = counters.optimizations;
  s.measurements = counters.measurements;
  s.cache = engine_.cache().stats();
  return s;
}

}  // namespace ios::serve
