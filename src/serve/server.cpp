#include "serve/server.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>
#include <utility>

namespace ios::serve {

Server::Server(ServerOptions options)
    : Server(std::move(options), nullptr) {}

Server::Server(ServerOptions options, std::shared_ptr<ShardedRecipeCache> cache)
    : engine_(std::move(options), &clock_, std::move(cache)) {
  if (engine_.options().adaptive.enabled) {
    adaptive_ = std::make_unique<AdaptiveController>(
        engine_.options().adaptive, engine_);
  }
}

void Server::prewarm(const std::vector<std::string>& models, int threads) {
  engine_.prewarm(models, threads);
}

ServingResult Server::run(const Trace& trace) {
  if (trace.requests.empty()) {
    return summarize({}, engine_, 0);
  }
  for (std::size_t i = 1; i < trace.requests.size(); ++i) {
    if (trace.requests[i].arrival_us < trace.requests[i - 1].arrival_us) {
      throw std::invalid_argument(
          "Server::run: trace arrivals must be non-decreasing");
    }
  }

  // Fresh simulation: the engine forgets queues and worker bookkeeping (but
  // keeps the recipe cache and lifetime counters), and time restarts at 0.
  engine_.reset();
  clock_.reset();
  AdaptiveStats adaptive_before;
  if (adaptive_) {
    adaptive_->reset_run();
    adaptive_before = adaptive_->stats();
  }

  std::vector<EngineBatch> batches;
  const auto collect = [&](std::vector<EngineBatch> formed) {
    // Completed batches feed the controller's attainment signal; the
    // controller never feeds back into engine decisions, so the results
    // stay bit-identical with it on or off.
    if (adaptive_) {
      for (const EngineBatch& b : formed) {
        const double slo = engine_.slo_for(b.record.model).slo_us;
        for (const EngineRequest& m : b.members) {
          adaptive_->observe_outcome(
              b.record.model,
              b.record.completion_us - m.arrival_us <= slo);
        }
      }
    }
    for (EngineBatch& b : formed) batches.push_back(std::move(b));
  };
  const auto maybe_replan = [&] {
    if (adaptive_ && adaptive_->replan_due(clock_.now_us())) {
      adaptive_->replan(clock_.now_us());
    }
  };

  // The DES event loop: deadlines strictly before the next arrival fire
  // first; an arrival coinciding with a deadline is admitted first (it may
  // complete a full batch the flush would otherwise split) — the (time,
  // seq) order of the pre-extraction event heap, where every arrival
  // outranked every later-armed flush event at equal times.
  // A deadline may lie in the past: growing a queue at an arrival enlarges
  // the deadline batch, whose larger service estimate pulls the SLO flush
  // time backwards — possibly behind the arrival that caused it. Such a
  // flush fires "now" (max with the current time), exactly as the
  // wall-clock daemon's already-expired wait_until does.
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& request = trace.requests[i];
    while (engine_.next_deadline_us() < request.arrival_us) {
      clock_.advance_to(std::max(engine_.next_deadline_us(), clock_.now_us()));
      collect(engine_.poll());
      maybe_replan();
    }
    clock_.advance_to(request.arrival_us);
    if (adaptive_) adaptive_->observe_arrival(request.model, clock_.now_us());
    collect(engine_.submit(static_cast<std::int64_t>(i), request.model));
    maybe_replan();
  }
  while (engine_.next_deadline_us() < std::numeric_limits<double>::infinity()) {
    clock_.advance_to(std::max(engine_.next_deadline_us(), clock_.now_us()));
    collect(engine_.poll());
    maybe_replan();
  }

  ServingResult result = summarize(std::move(batches), engine_.take_shed(),
                                   engine_, trace.requests.size());
  if (adaptive_) {
    const AdaptiveStats after = adaptive_->stats();
    result.stats.replans = after.replans - adaptive_before.replans;
    result.stats.replan_optimizations =
        after.replan_optimizations - adaptive_before.replan_optimizations;
    result.stats.replan_measurements =
        after.replan_measurements - adaptive_before.replan_measurements;
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    total_requests_ += result.stats.requests;
    total_batches_ += result.stats.batches;
  }
  return result;
}

ServerStats Server::stats() const {
  ServerStats s;
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    s.requests = total_requests_;
    s.batches = total_batches_;
  }
  const EngineCounters counters = engine_.counters();
  s.optimizations = counters.optimizations;
  s.measurements = counters.measurements;
  s.cache = engine_.cache().stats();
  return s;
}

}  // namespace ios::serve
