#include "serve/engine.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>
#include <utility>

#include "sim/device.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace ios::serve {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
// Tolerance when comparing engine times (they are sums of doubles).
constexpr double kTimeEps = 1e-9;

ServerOptions normalize(ServerOptions options) {
  if (options.batching.batch_sizes.empty()) {
    throw std::invalid_argument("ServingEngine: batching.batch_sizes is empty");
  }
  for (int b : options.batching.batch_sizes) {
    if (b < 1) {
      throw std::invalid_argument("ServingEngine: batch sizes must be >= 1");
    }
  }
  std::sort(options.batching.batch_sizes.begin(),
            options.batching.batch_sizes.end());
  options.batching.batch_sizes.erase(
      std::unique(options.batching.batch_sizes.begin(),
                  options.batching.batch_sizes.end()),
      options.batching.batch_sizes.end());
  if (options.batching.max_queue_delay_us < 0) {
    throw std::invalid_argument(
        "ServingEngine: max_queue_delay_us must be >= 0");
  }
  options.num_workers = std::max(1, options.num_workers);
  const auto check_slo_class = [](const SloClass& c, const std::string& what) {
    if (std::isnan(c.slo_us) || c.slo_us < 0) {
      throw std::invalid_argument("ServingEngine: " + what +
                                  " slo_us must be >= 0");
    }
  };
  check_slo_class(options.slo.fallback, "fallback");
  for (const auto& [name, cls] : options.slo.models) {
    check_slo_class(cls, "model '" + name + "'");
  }
  if (!(options.slo.shed_slack_factor > 0)) {
    throw std::invalid_argument(
        "ServingEngine: slo.shed_slack_factor must be > 0");
  }
  if (!(options.slo.starvation_limit_us > 0)) {
    throw std::invalid_argument(
        "ServingEngine: slo.starvation_limit_us must be > 0");
  }
  // Reject inconsistent scheduler settings at construction, not on the
  // first cache miss.
  options.scheduler.validate();
  if (options.pool.empty()) {
    // Canonicalize (and validate) the device name once, up front.
    options.device = device_by_name(options.device).name;
  } else {
    // Pool classes must be registry devices (recipes are resolved through
    // the Optimizer by name); canonicalize them and size the worker fleet.
    options.pool.validate();
    for (DeviceClass& c : options.pool.classes) {
      c.spec.name = device_by_name(c.spec.name).name;
    }
    options.device = options.pool.classes.front().spec.name;
    options.num_workers = options.pool.total_devices();
  }
  return options;
}

}  // namespace

std::string serving_cache_key(const std::string& model,
                              const std::string& device, int batch,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol) {
  std::string key = model;
  key += '\n';
  key += device;
  key += "\nbatch=" + std::to_string(batch);
  key += '\n';
  key += scheduler_config_key(options, protocol);
  return key;
}

ServingEngine::ServingEngine(ServerOptions options, TimeSource* clock)
    : ServingEngine(std::move(options), clock, nullptr) {}

ServingEngine::ServingEngine(ServerOptions options, TimeSource* clock,
                             std::shared_ptr<ShardedRecipeCache> cache)
    : options_(normalize(std::move(options))),
      clock_(clock),
      config_key_part_(
          '\n' + scheduler_config_key(options_.scheduler, options_.protocol)),
      cache_(cache ? std::move(cache)
                   : std::make_shared<ShardedRecipeCache>(options_.cache)) {
  if (clock_ == nullptr) {
    throw std::invalid_argument("ServingEngine: clock must not be null");
  }
  if (options_.pool.empty()) {
    classes_.push_back(WorkerClass{options_.device,
                                   '\n' + options_.device + "\nbatch=",
                                   options_.num_workers});
  } else {
    for (const DeviceClass& c : options_.pool.classes) {
      classes_.push_back(WorkerClass{
          c.spec.name, '\n' + c.spec.name + "\nbatch=", c.count});
    }
  }
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    for (int i = 0; i < classes_[c].count; ++i) {
      worker_class_.push_back(static_cast<int>(c));
    }
  }
  worker_free_.assign(static_cast<std::size_t>(options_.num_workers), 0.0);
  worker_busy_.assign(static_cast<std::size_t>(options_.num_workers), 0.0);
  worker_dead_.assign(static_cast<std::size_t>(options_.num_workers), 0);
  class_alive_.clear();
  for (const WorkerClass& c : classes_) class_alive_.push_back(c.count);
  service_.resize(classes_.size());
}

void ServingEngine::kill_worker(int worker) {
  if (worker < 0 || worker >= options_.num_workers) {
    throw std::out_of_range("ServingEngine::kill_worker: no worker " +
                            std::to_string(worker));
  }
  const auto wi = static_cast<std::size_t>(worker);
  if (worker_dead_[wi]) {
    throw std::invalid_argument("ServingEngine::kill_worker: worker " +
                                std::to_string(worker) + " is already dead");
  }
  worker_dead_[wi] = 1;
  --class_alive_[static_cast<std::size_t>(worker_class_[wi])];
}

bool ServingEngine::worker_alive(int worker) const {
  if (worker < 0 || worker >= options_.num_workers) {
    throw std::out_of_range("ServingEngine::worker_alive: no worker " +
                            std::to_string(worker));
  }
  return !worker_dead_[static_cast<std::size_t>(worker)];
}

int ServingEngine::alive_workers() const {
  int alive = 0;
  for (int n : class_alive_) alive += n;
  return alive;
}

int ServingEngine::alive_in_class(std::size_t cls) const {
  return class_alive_.at(cls);
}

std::string ServingEngine::cache_key(const std::string& model, int batch,
                                     std::size_t cls) const {
  // Equivalent to serving_cache_key(model, class device, batch, ...) with
  // the constant parts preassembled (pinned by ServingCacheKey tests).
  return model + classes_[cls].key_part + std::to_string(batch) +
         config_key_part_;
}

CachedRecipe ServingEngine::optimize_config(const std::string& model,
                                            int batch,
                                            const std::string& device) {
  OptimizationRequest request =
      OptimizationRequest::for_model(model, device, batch);
  request.options = options_.scheduler;
  request.protocol = options_.protocol;
  request.profile_db = options_.profile_db;
  request.cross_reuse = options_.cross_reuse;
  request.baselines.clear();  // serving needs the schedule, not comparisons
  const OptimizationResult result = optimizer_.optimize(request);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.optimizations;
    counters_.measurements += result.new_measurements;
  }
  return CachedRecipe{result.schedule, result.latency_us, result.stats,
                      result.new_measurements};
}

CachedRecipe ServingEngine::resolve(const std::string& model, int batch,
                                    std::size_t cls, bool* computed) {
  return cache_->get_or_compute(
      cache_key(model, batch, cls),
      [&] { return optimize_config(model, batch, classes_[cls].device); },
      computed);
}

double ServingEngine::resolve_latency(const std::string& model, int batch,
                                      std::size_t cls, bool* computed) {
  return cache_->latency_or_compute(
      cache_key(model, batch, cls),
      [&] { return optimize_config(model, batch, classes_[cls].device); },
      computed);
}

void ServingEngine::prewarm(const std::vector<std::string>& models,
                            int threads) {
  struct Config {
    const std::string* model;
    int batch;
    std::size_t cls;
  };
  std::vector<Config> configs;
  for (const std::string& model : models) {
    for (int batch : options_.batching.batch_sizes) {
      for (std::size_t cls = 0; cls < classes_.size(); ++cls) {
        configs.push_back(Config{&model, batch, cls});
      }
    }
  }
  // Misses fan out over the shared process-wide pool (no per-call pool
  // spawn); the inner wave searches draw from the same pool, nesting-safe.
  parallel_for(configs.size(), threads, [&](std::size_t i) {
    resolve(*configs[i].model, configs[i].batch, configs[i].cls);
  });
}

double ServingEngine::advance_now() {
  const double now = clock_->now_us();
  if (now < last_now_) {
    throw std::invalid_argument(
        "ServingEngine: time went backwards (monotone clock required)");
  }
  last_now_ = now;
  return now;
}

int ServingEngine::deadline_batch_size(std::size_t len) const {
  int best = 0;
  for (int s : options_.batching.batch_sizes) {
    if (static_cast<std::size_t>(s) <= len) best = s;
  }
  return best > 0 ? best : static_cast<int>(len);
}

const SloClass& ServingEngine::slo_for(const std::string& model) const {
  const auto it = options_.slo.models.find(model);
  return it == options_.slo.models.end() ? options_.slo.fallback : it->second;
}

ServingEngine::ModelQueue& ServingEngine::queue_for(const std::string& model) {
  ModelQueue& q = queues_[model];
  if (q.slo == nullptr) q.slo = &slo_for(model);
  return q;
}

double ServingEngine::min_service_estimate(const std::string& model,
                                           int size) {
  double best = kInf;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (class_alive_[c] == 0) continue;
    best = std::min(best, resolve_latency(model, size, c));
  }
  return best == kInf ? 0 : best;
}

double ServingEngine::earliest_free_us(double now) const {
  double best = kInf;
  for (std::size_t w = 0; w < worker_free_.size(); ++w) {
    if (worker_dead_[w]) continue;
    best = std::min(best, std::max(now, worker_free_[w]));
  }
  return best == kInf ? now : best;
}

double ServingEngine::queue_flush_time(const std::string& model,
                                       const ModelQueue& q, double now) {
  const EngineRequest& front = q.pending.front();
  double t = front.arrival_us + options_.batching.max_queue_delay_us;
  if (options_.slo.deadline_flush && std::isfinite(q.slo->slo_us)) {
    // The oldest request must dispatch by (deadline - service) to have a
    // chance: pull the flush up to its slack point, never later than the
    // global timer.
    const double est =
        min_service_estimate(model, deadline_batch_size(q.pending.size()));
    const double slack = front.arrival_us + q.slo->slo_us - est;
    if (slack <= front.arrival_us) {
      // An SLO shorter than the service itself: flush immediately.
      t = std::min(t, front.arrival_us);
    } else {
      // Backlog-aware: the dispatch will sit behind the earliest-free
      // worker's backlog, so pull the flush earlier by that wait — a
      // just-in-time flush against the SLO as workers actually free up,
      // not as if one were idle. When the backlog alone already makes the
      // deadline hopeless, rushing a partial batch out only burns
      // capacity — keep the slack point and let the queue fill.
      const double wait = earliest_free_us(now) - now;
      const double pulled = slack - wait;
      t = std::min(t, pulled >= front.arrival_us ? pulled : slack);
    }
  }
  return t;
}

int ServingEngine::effective_priority(const ModelQueue& q, double now) const {
  if (q.pending.empty()) return std::numeric_limits<int>::min();
  if (now - q.pending.front().arrival_us >=
      options_.slo.starvation_limit_us - kTimeEps) {
    return std::numeric_limits<int>::max();
  }
  return q.slo->priority;
}

int ServingEngine::lowest_queued_priority() const {
  int lowest = std::numeric_limits<int>::max();
  for (const auto& [model, q] : queues_) {
    if (q.pending.empty()) continue;
    lowest = std::min(lowest, q.slo->priority);
  }
  return lowest;
}

bool ServingEngine::maybe_shed(const std::string& model, ModelQueue& q,
                               double now) {
  if (!options_.slo.shed) return false;
  const SloClass& slo = *q.slo;
  if (!std::isfinite(slo.slo_us)) return false;
  const EngineRequest& front = q.pending.front();
  // Past the starvation bound a request is served no matter what.
  if (now - front.arrival_us >=
      options_.slo.starvation_limit_us - kTimeEps) {
    return false;
  }
  // Only ever reject the lowest priority present across all queues.
  if (slo.priority > lowest_queued_priority()) return false;
  // Hopelessness test: even dispatched right now at the smallest
  // configured batch on the earliest-free worker, the request would miss
  // its (slack-scaled) SLO.
  const double best = earliest_free_us(now) +
                      min_service_estimate(model, deadline_batch_size(1));
  if (best <= front.arrival_us + slo.slo_us * options_.slo.shed_slack_factor +
                  kTimeEps) {
    return false;
  }
  shed_.push_back(ShedRecord{front.id, model, front.arrival_us, now,
                             slo.priority, next_batch_id_});
  q.pending.pop_front();
  return true;
}

int ServingEngine::degraded_size(const std::string& model, ModelQueue& q,
                                 int size, double now, bool* degraded) {
  const SloClass& slo = *q.slo;
  if (!options_.slo.degrade || !std::isfinite(slo.slo_us) || size <= 1) {
    return size;
  }
  const double deadline = q.pending.front().arrival_us + slo.slo_us;
  const double free = earliest_free_us(now);
  if (free + min_service_estimate(model, size) <= deadline + kTimeEps) {
    return size;
  }
  // The full batch misses the oldest member's SLO: take the largest
  // smaller configured size that still meets it. When none does the SLO is
  // lost either way — keep the full size for throughput.
  const std::vector<int>& sizes = options_.batching.batch_sizes;
  for (auto it = sizes.rbegin(); it != sizes.rend(); ++it) {
    if (*it >= size) continue;
    if (free + min_service_estimate(model, *it) <= deadline + kTimeEps) {
      *degraded = true;
      return *it;
    }
  }
  return size;
}

void ServingEngine::arm_flush(const std::string& model, ModelQueue& q,
                              double now) {
  if (q.pending.empty()) {
    q.flush_at = kInf;
    return;
  }
  const double t = queue_flush_time(model, q, now);
  if (q.flush_at != t) {
    q.flush_at = t;
    q.arm_seq = next_arm_seq_++;
  }
}

void ServingEngine::rearm_all(double now) {
  for (auto& [queued_model, queue] : queues_) {
    arm_flush(queued_model, queue, now);
  }
}

void ServingEngine::form_batch(const std::string& model, ModelQueue& q,
                               int size, double now, bool degraded,
                               std::vector<EngineBatch>& out) {
  EngineBatch batch;
  batch.record.id = next_batch_id_++;
  batch.record.model = model;
  batch.record.size = size;
  batch.record.formed_us = now;
  batch.record.priority = q.slo->priority;
  batch.record.degraded = degraded;

  // Service time of this (model, size) on every worker class with at least
  // one alive worker — the routing decision needs all of them. Wiped-out
  // classes resolve nothing (their recipes would route nowhere) and do not
  // anchor the inflation penalty.
  double min_service = kInf;
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    if (class_alive_[c] == 0) {
      service_[c] = kInf;
      continue;
    }
    bool computed = false;
    service_[c] = resolve_latency(model, size, c, &computed);
    ++(computed ? batch.resolve_misses : batch.resolve_hits);
    min_service = std::min(min_service, service_[c]);
  }
  if (min_service == kInf) {
    throw std::runtime_error(
        "ServingEngine: no alive workers to route a batch to");
  }

  // Routing score: predicted completion plus the service-time inflation
  // over the batch's best class. The inflation term charges a misroute the
  // extra device time it burns, so under saturation each class keeps the
  // work it is best at; when the best class is backlogged the batch still
  // spills to a worker that genuinely finishes it sooner. With one class
  // the term is zero and this is plain FIFO list scheduling. Dead workers
  // are skipped — an alive one always exists (min_service is finite).
  int worker = -1;
  double best_score = kInf;
  for (int w = 0; w < options_.num_workers; ++w) {
    const auto wi = static_cast<std::size_t>(w);
    if (worker_dead_[wi]) continue;
    const double svc = service_[static_cast<std::size_t>(worker_class_[wi])];
    const double score =
        std::max(now, worker_free_[wi]) + svc + (svc - min_service);
    if (worker < 0 || score < best_score ||
        (score == best_score &&
         worker_free_[wi] < worker_free_[static_cast<std::size_t>(worker)])) {
      best_score = score;
      worker = w;
    }
  }
  const auto wi = static_cast<std::size_t>(worker);
  const std::size_t cls = static_cast<std::size_t>(worker_class_[wi]);
  batch.record.service_us = service_[cls];
  batch.record.worker = worker;
  batch.record.device = classes_[cls].device;
  batch.record.start_us = std::max(now, worker_free_[wi]);
  batch.record.completion_us = batch.record.start_us + batch.record.service_us;
  worker_free_[wi] = batch.record.completion_us;
  worker_busy_[wi] += batch.record.service_us;

  batch.members.reserve(static_cast<std::size_t>(size));
  for (int k = 0; k < size; ++k) {
    batch.members.push_back(std::move(q.pending.front()));
    q.pending.pop_front();
  }
  out.push_back(std::move(batch));
}

std::vector<EngineBatch> ServingEngine::submit(std::int64_t id,
                                               const std::string& model) {
  const double now = advance_now();
  std::vector<EngineBatch> out;
  ModelQueue& q = queue_for(model);
  q.pending.push_back(EngineRequest{id, model, now});
  const int max_batch = options_.batching.batch_sizes.back();
  while (static_cast<int>(q.pending.size()) >= max_batch) {
    // A full greedy batch can blow the oldest member's deadline when the
    // queue filled slowly (the full batch serves longer than the partial
    // flush the armed deadline was counting on): degrade it like a
    // deadline flush would.
    bool degraded = false;
    const int size = degraded_size(model, q, max_batch, now, &degraded);
    form_batch(model, q, size, now, degraded, out);
  }
  if (out.empty()) {
    arm_flush(model, q, now);
  } else {
    rearm_all(now);
  }
  return out;
}

void ServingEngine::flush_queue(const std::string& model, ModelQueue& q,
                                double now, bool ignore_deadline,
                                std::vector<EngineBatch>& out) {
  q.flush_at = kInf;
  const std::size_t before = out.size();
  while (!q.pending.empty()) {
    if (!ignore_deadline) {
      if (now < queue_flush_time(model, q, now) - kTimeEps) break;
      if (maybe_shed(model, q, now)) continue;
    }
    int size = deadline_batch_size(q.pending.size());
    bool degraded = false;
    if (!ignore_deadline) {
      size = degraded_size(model, q, size, now, &degraded);
    }
    form_batch(model, q, size, now, degraded, out);
  }
  if (out.size() > before) {
    rearm_all(now);
  } else {
    arm_flush(model, q, now);
  }
}

std::vector<EngineBatch> ServingEngine::poll() {
  const double now = advance_now();
  std::vector<EngineBatch> out;
  // Queues whose deadline has passed fire in (priority desc, deadline,
  // arming) order. Without priority classes that is exactly the (time,
  // seq) order of the DES event heap, so a driver that advances a virtual
  // clock deadline-by-deadline reproduces the DES bit for bit even when
  // several queues fall due at one instant; with classes, the
  // highest-effective-priority due queue dispatches first (a queue past
  // the starvation bound outranks every class).
  for (;;) {
    ModelQueue* due = nullptr;
    const std::string* due_model = nullptr;
    int due_priority = 0;
    for (auto& [model, q] : queues_) {
      if (q.flush_at > now) continue;
      const int priority = effective_priority(q, now);
      if (due == nullptr || priority > due_priority ||
          (priority == due_priority &&
           (q.flush_at < due->flush_at ||
            (q.flush_at == due->flush_at && q.arm_seq < due->arm_seq)))) {
        due = &q;
        due_model = &model;
        due_priority = priority;
      }
    }
    if (due == nullptr) break;
    flush_queue(*due_model, *due, now, /*ignore_deadline=*/false, out);
  }
  return out;
}

std::vector<EngineBatch> ServingEngine::drain() {
  const double now = advance_now();
  std::vector<EngineBatch> out;
  for (;;) {
    // (priority desc, arming) order, mirroring poll(): among equal
    // priorities the longest-waiting queue goes first.
    ModelQueue* due = nullptr;
    const std::string* due_model = nullptr;
    int due_priority = 0;
    for (auto& [model, q] : queues_) {
      if (q.pending.empty()) continue;
      const int priority = effective_priority(q, now);
      if (due == nullptr || priority > due_priority ||
          (priority == due_priority &&
           (q.flush_at < due->flush_at ||
            (q.flush_at == due->flush_at && q.arm_seq < due->arm_seq)))) {
        due = &q;
        due_model = &model;
        due_priority = priority;
      }
    }
    if (due == nullptr) break;
    flush_queue(*due_model, *due, now, /*ignore_deadline=*/true, out);
  }
  return out;
}

std::vector<ShedRecord> ServingEngine::take_shed() {
  return std::exchange(shed_, {});
}

double ServingEngine::next_deadline_us() const {
  double next = kInf;
  for (const auto& [model, q] : queues_) {
    next = std::min(next, q.flush_at);
  }
  return next;
}

std::size_t ServingEngine::queued() const {
  std::size_t n = 0;
  for (const auto& [model, q] : queues_) n += q.pending.size();
  return n;
}

std::vector<std::pair<std::string, std::size_t>> ServingEngine::queue_depths()
    const {
  std::vector<std::pair<std::string, std::size_t>> depths;
  for (const auto& [model, q] : queues_) {
    if (!q.pending.empty()) depths.emplace_back(model, q.pending.size());
  }
  return depths;
}

void ServingEngine::reset() {
  queues_.clear();
  worker_free_.assign(worker_free_.size(), 0.0);
  worker_busy_.assign(worker_busy_.size(), 0.0);
  worker_dead_.assign(worker_dead_.size(), 0);
  for (std::size_t c = 0; c < classes_.size(); ++c) {
    class_alive_[c] = classes_[c].count;
  }
  next_batch_id_ = 0;
  next_arm_seq_ = 0;
  last_now_ = 0;
  shed_.clear();
}

EngineCounters ServingEngine::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

std::vector<std::string> ServingEngine::device_classes() const {
  std::vector<std::string> names;
  for (const WorkerClass& c : classes_) names.push_back(c.device);
  return names;
}

std::vector<int> ServingEngine::class_counts() const {
  std::vector<int> counts;
  for (const WorkerClass& c : classes_) counts.push_back(c.count);
  return counts;
}

ServingResult summarize(std::vector<EngineBatch> batches,
                        const ServingEngine& engine,
                        std::size_t num_requests) {
  return summarize(std::move(batches), {}, engine, num_requests);
}

ServingResult summarize(std::vector<EngineBatch> batches,
                        std::vector<ShedRecord> sheds,
                        const ServingEngine& engine,
                        std::size_t num_requests) {
  ServingResult result;
  result.records.resize(num_requests);
  for (EngineBatch& b : batches) {
    for (const EngineRequest& m : b.members) {
      if (m.id < 0 || static_cast<std::size_t>(m.id) >= num_requests) {
        throw std::out_of_range(
            "summarize: request id outside [0, num_requests)");
      }
      RequestRecord& r = result.records[static_cast<std::size_t>(m.id)];
      r.index = static_cast<int>(m.id);
      r.model = b.record.model;
      r.arrival_us = m.arrival_us;
      r.dispatch_us = b.record.start_us;
      r.completion_us = b.record.completion_us;
      r.latency_us = b.record.completion_us - m.arrival_us;
      r.batch_size = b.record.size;
      r.batch_id = b.record.id;
      r.worker = b.record.worker;
      r.device = b.record.device;
      r.priority = b.record.priority;
      r.slo_us = engine.slo_for(b.record.model).slo_us;
      r.slo_met = r.latency_us <= r.slo_us + kTimeEps;
    }
    result.stats.cache_hits += b.resolve_hits;
    result.stats.cache_misses += b.resolve_misses;
    if (b.record.degraded) ++result.stats.degraded_batches;
    result.batches.push_back(std::move(b.record));
  }
  for (ShedRecord& s : sheds) {
    if (s.id < 0 || static_cast<std::size_t>(s.id) >= num_requests) {
      throw std::out_of_range(
          "summarize: shed request id outside [0, num_requests)");
    }
    RequestRecord& r = result.records[static_cast<std::size_t>(s.id)];
    r.index = static_cast<int>(s.id);
    r.model = std::move(s.model);
    r.arrival_us = s.arrival_us;
    r.batch_id = -1;
    r.worker = -1;
    r.priority = s.priority;
    r.slo_us = engine.slo_for(r.model).slo_us;
    r.slo_met = false;
    r.shed = true;
    r.shed_us = s.shed_us;
  }
  if (num_requests == 0) return result;

  ServingStats& stats = result.stats;
  stats.requests = static_cast<std::int64_t>(result.records.size());
  stats.batches = static_cast<std::int64_t>(result.batches.size());
  stats.shed = static_cast<std::int64_t>(sheds.size());
  stats.completed = stats.requests - stats.shed;
  // Latency aggregates are over completed requests; attainment charges
  // sheds as misses.
  std::vector<double> latencies, waits;
  latencies.reserve(result.records.size());
  waits.reserve(result.records.size());
  for (const RequestRecord& r : result.records) {
    if (r.shed) continue;
    latencies.push_back(r.latency_us);
    waits.push_back(r.dispatch_us - r.arrival_us);
    if (r.slo_met) ++stats.slo_met;
  }
  stats.slo_attainment = static_cast<double>(stats.slo_met) /
                         static_cast<double>(stats.requests);
  for (const BatchRecord& b : result.batches) {
    stats.makespan_us = std::max(stats.makespan_us, b.completion_us);
  }
  const std::vector<double>& worker_busy = engine.worker_busy();
  if (stats.makespan_us > 0) {
    stats.throughput_rps =
        static_cast<double>(stats.completed) / (stats.makespan_us / 1e6);
    double busy = 0;
    for (double b : worker_busy) busy += b;
    stats.worker_utilization =
        busy /
        (static_cast<double>(worker_busy.size()) * stats.makespan_us);
  }
  stats.mean_latency_us = mean(latencies);
  stats.mean_queue_wait_us = mean(waits);
  std::sort(latencies.begin(), latencies.end());
  stats.p50_latency_us = percentile_sorted(latencies, 50);
  stats.p95_latency_us = percentile_sorted(latencies, 95);
  stats.p99_latency_us = percentile_sorted(latencies, 99);
  stats.max_latency_us = latencies.empty() ? 0 : latencies.back();
  if (stats.batches > 0) {
    stats.mean_batch_size = static_cast<double>(stats.completed) /
                            static_cast<double>(stats.batches);
  }
  // Per-class load picture (one row for a homogeneous configuration).
  const std::vector<std::string> classes = engine.device_classes();
  const std::vector<int> counts = engine.class_counts();
  const std::vector<int>& worker_class = engine.worker_class();
  result.device_loads.resize(classes.size());
  for (std::size_t c = 0; c < classes.size(); ++c) {
    result.device_loads[c].device = classes[c];
    result.device_loads[c].devices = counts[c];
  }
  for (std::size_t w = 0; w < worker_busy.size(); ++w) {
    result.device_loads[static_cast<std::size_t>(worker_class[w])].busy_us +=
        worker_busy[w];
  }
  for (const BatchRecord& b : result.batches) {
    ++result.device_loads[static_cast<std::size_t>(
        worker_class[static_cast<std::size_t>(b.worker)])].batches;
  }
  if (stats.makespan_us > 0) {
    for (DeviceLoad& load : result.device_loads) {
      load.utilization = load.busy_us / (load.devices * stats.makespan_us);
    }
  }
  return result;
}

}  // namespace ios::serve
