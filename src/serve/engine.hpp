#pragma once
// ios::serve::ServingEngine — the clock-agnostic batching/routing core of
// the serving layer. IOS (the paper) finds the best schedule for one
// (model, device, batch) point; this engine is the piece that makes those
// schedules pay off under multi-user load, factored so that *how time
// advances* is somebody else's problem:
//
//   * the DES Server (serve/server.hpp) drives it with a VirtualClock,
//     advancing simulated time event by event — a fixed trace always
//     produces bit-identical batches, routing, and latencies;
//   * the network daemon (net/daemon.hpp) drives the very same engine with
//     a WallClock — real sockets, real deadlines, identical decisions for
//     identical arrival times.
//
// The engine owns the three decisions of the serving hot path:
//
//   batching   per-model queues; a queue reaching the largest allowed batch
//              size is flushed greedily; a queue whose oldest request has
//              waited max_queue_delay_us is deadline-flushed into the
//              largest allowed size that fits (a queue shorter than the
//              smallest allowed size is served whole);
//   resolution each formed batch's schedule comes from the sharded LRU
//              recipe cache, invoking the ios::Optimizer at most once per
//              (model, device class, batch) configuration;
//   routing    the batch goes to the worker minimizing predicted completion
//              max(now, free) + service + (service - best_service), where
//              service is the cached schedule latency on the worker's
//              device class — FIFO list scheduling for one class,
//              device-aware routing for a heterogeneous pool.
//
// Threading: submit/poll/drain/reset mutate queue and worker state and must
// be externally serialized (the DES is single-threaded; the daemon wraps
// them in one mutex). prewarm, counters(), cache(), and options() are safe
// to call concurrently with each other.

#include <cstdint>
#include <deque>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "place/pool.hpp"
#include "serve/clock.hpp"
#include "serve/recipe_cache.hpp"
#include "serve/trace.hpp"

namespace ios::serve {

/// How the dynamic batcher coalesces a model's request queue.
struct BatchingPolicy {
  /// Batch sizes the batcher may form (deduplicated and sorted ascending by
  /// the engine). A queue reaching the largest size is flushed immediately;
  /// a deadline flush picks the largest entry that fits the queue. The
  /// degenerate policy {1} disables batching entirely.
  std::vector<int> batch_sizes = {1, 2, 4, 8};
  /// Max time a request may wait in the queue before its model's queue is
  /// force-flushed, in engine-clock microseconds.
  double max_queue_delay_us = 2000;
};

/// Latency objective and importance of one model's traffic.
struct SloClass {
  /// Target end-to-end latency (arrival -> completion) in engine-clock
  /// microseconds. Infinity (the default) means "no SLO": flushing falls
  /// back to the global max_queue_delay_us timer and requests of the model
  /// never degrade or shed — the PR 6 behavior, bit for bit.
  double slo_us = std::numeric_limits<double>::infinity();
  /// Priority class: when several queues are due at one instant, higher
  /// priority flushes (and therefore dispatches) first; the shed policy
  /// only ever rejects the lowest priority present. Default 0.
  int priority = 0;
};

/// Per-model SLO/priority policy plus the engine-side adaptation knobs
/// (deadline flushing, degrade, shed, starvation bound). The default
/// policy reproduces the plain global-timer engine bit for bit.
struct SloPolicy {
  /// Per-model overrides; models not listed here use `fallback`.
  std::map<std::string, SloClass> models;
  /// Class for models without an explicit entry.
  SloClass fallback{};
  /// Flush a queue when its oldest request's slack against its SLO runs
  /// out — at arrival + slo - (estimated service of the batch the queue
  /// would form) — instead of waiting for the global max_queue_delay_us
  /// timer. Never flushes later than the timer. No effect on models
  /// without a finite SLO.
  bool deadline_flush = true;
  /// Step a deadline flush down to a smaller configured batch size when
  /// the full-size batch would miss the oldest member's SLO and the
  /// smaller one would not (the batch is marked `degraded`). No effect on
  /// models without a finite SLO.
  bool degrade = true;
  /// Reject a queued request at flush time when even an immediate
  /// minimum-size dispatch on the fastest free worker would miss
  /// slo_us * shed_slack_factor — but only while the request is the
  /// lowest priority present across all queues, and never once it has
  /// crossed the starvation bound. Shed requests are reported via
  /// take_shed(), never batched. Off by default.
  bool shed = false;
  /// Slack multiplier on slo_us in the shed test (> 1 sheds later,
  /// < 1 sheds earlier). Must be > 0.
  double shed_slack_factor = 1.0;
  /// A queue whose oldest request has waited this long outranks every
  /// priority class and becomes exempt from shedding until it flushes —
  /// the per-priority starvation bound. Infinity disables promotion.
  double starvation_limit_us = std::numeric_limits<double>::infinity();
};

/// Knobs of the load-shift detection + re-planning loop (the
/// serve::AdaptiveController). Carried in ServerOptions so the DES Server
/// and the wall-clock daemon construct identical controllers; the engine
/// itself never reads them.
struct AdaptiveOptions {
  /// Master switch: off (the default) runs no controller at all.
  bool enabled = false;
  /// EWMA weight of the fast per-model inter-arrival tracker (0, 1].
  double fast_alpha = 0.3;
  /// EWMA weight of the slow tracker the fast one is compared against.
  double slow_alpha = 0.05;
  /// A model whose fast/slow mean-gap ratio leaves
  /// [1/shift_ratio, shift_ratio] flags a load shift. Must be > 1.
  double shift_ratio = 2.0;
  /// The SLO-attainment EWMA (weight fast_alpha) dropping below this
  /// also flags a shift.
  double attainment_floor = 0.9;
  /// Per-model arrivals observed before shift detection arms.
  int warmup_arrivals = 16;
  /// Hysteresis: minimum engine-clock gap between re-plans.
  double min_replan_gap_us = 100000;
  /// Pre-warm the recipe cache for every (model, batch, class) point the
  /// re-plan anticipates.
  bool prewarm = true;
};

/// Configuration shared by every front end over the engine: the DES Server,
/// the network daemon, and a bare engine in tests.
struct ServerOptions {
  /// Device short or full name (device_names()); all workers simulate it.
  /// Ignored when `pool` is non-empty.
  std::string device = "v100";
  /// Heterogeneous device pool (e.g. pool_from_spec("p100,1080tix2")). When
  /// non-empty, the engine runs one executor worker per pool device
  /// instance, each typed by its device class: schedules are resolved per
  /// (model, class, batch) — every class gets its own optimized recipe —
  /// and the batcher routes each formed batch to the worker minimizing its
  /// predicted completion time (ties fall back on queue depth, i.e. the
  /// earlier-free worker). Class names must be registry devices
  /// (device_names()); `device` and `num_workers` are ignored.
  DevicePool pool{};
  /// Number of executor workers replaying batches concurrently (clamped
  /// to >= 1). With a pool, the worker count is the pool's total device
  /// count instead.
  int num_workers = 1;
  /// Dynamic-batching policy shared by all model queues.
  BatchingPolicy batching{};
  /// DP-search options forwarded to the Optimizer on recipe-cache misses.
  SchedulerOptions scheduler{};
  /// Profiling protocol forwarded to the Optimizer on recipe-cache misses.
  ProfilingProtocol protocol{};
  /// Sizing of the sharded recipe cache (ignored when the engine is built
  /// around an external cache).
  RecipeCacheOptions cache{};
  /// Persistable profiling-database path forwarded to every Optimizer run a
  /// sharded-cache miss triggers (see OptimizationRequest::profile_db). A
  /// warm-started engine whose previous life profiled the same
  /// (model, device, batch) configurations re-runs zero simulations.
  std::string profile_db;
  /// Forward OptimizationRequest::cross_reuse on every recipe-cache miss:
  /// stage latencies and solved block layouts are shared across the models
  /// and batch sizes this engine serves (and across processes when
  /// profile_db is set). Reused values equal what profiling would have
  /// measured, so cached recipes are unchanged — the flag is not part of
  /// the serving cache key. Requires a noise-free protocol.
  bool cross_reuse = false;
  /// Per-model latency SLOs, priorities, and the shed/degrade policy. The
  /// default (no SLOs) reproduces the plain global-timer engine bit for
  /// bit.
  SloPolicy slo{};
  /// Load-shift detection + re-planning loop (off by default; consumed by
  /// the drivers, not the engine).
  AdaptiveOptions adaptive{};
};

/// Per-request outcome of a served trace.
struct RequestRecord {
  int index = 0;            ///< position of the request in the trace
  std::string model;        ///< model the request asked for
  double arrival_us = 0;    ///< engine-clock arrival time
  double dispatch_us = 0;   ///< when its batch started on a worker
  double completion_us = 0; ///< when its batch finished
  double latency_us = 0;    ///< completion - arrival (queueing + service)
  int batch_size = 0;       ///< size of the coalesced batch it rode in
  int batch_id = 0;         ///< id of that batch (index into batch records)
  int worker = 0;           ///< executor worker that ran the batch
  std::string device;       ///< device class of that worker
  int priority = 0;         ///< priority class of the request's model
  /// The model's SLO (infinity when it has none).
  double slo_us = std::numeric_limits<double>::infinity();
  bool slo_met = true;      ///< completed within slo_us (false when shed)
  bool shed = false;        ///< rejected by the shed policy, never served
  double shed_us = 0;       ///< when it was shed (0 when served)
};

/// Per-batch outcome of a served trace.
struct BatchRecord {
  int id = 0;               ///< dense batch id, formation order
  std::string model;        ///< model of every request in the batch
  int size = 0;             ///< number of coalesced requests
  double formed_us = 0;     ///< when the batcher closed the batch
  double start_us = 0;      ///< when a worker started executing it
  double completion_us = 0; ///< start + service time
  double service_us = 0;    ///< schedule latency at this batch size
  int worker = 0;           ///< executor worker it ran on
  std::string device;       ///< device class it ran on
  int priority = 0;         ///< priority class of the batch's model
  /// True when the degrade policy stepped this batch down from the size a
  /// plain deadline flush would have formed, to meet the oldest member's
  /// SLO.
  bool degraded = false;
};

/// Aggregates of one served trace, all on the engine clock.
struct ServingStats {
  std::int64_t requests = 0;       ///< requests served
  std::int64_t batches = 0;        ///< batches formed
  double makespan_us = 0;          ///< completion time of the last batch
  double throughput_rps = 0;       ///< requests per engine-clock second
  double mean_latency_us = 0;      ///< mean request latency
  double p50_latency_us = 0;       ///< median request latency
  double p95_latency_us = 0;       ///< 95th percentile request latency
  double p99_latency_us = 0;       ///< 99th percentile request latency
  double max_latency_us = 0;       ///< worst request latency
  double mean_queue_wait_us = 0;   ///< mean dispatch - arrival
  double mean_batch_size = 0;      ///< requests / batches
  double worker_utilization = 0;   ///< busy time / (workers * makespan)
  /// Recipe-cache hits by this run's own lookups (counted per lookup, not
  /// diffed from the cache's global counters — exact even when several
  /// engines share one cache concurrently).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;   ///< recipe-cache misses by this run
  // ---- SLO-aware serving (all zero/neutral without an SloPolicy) ----
  std::int64_t completed = 0;        ///< requests actually served (not shed)
  std::int64_t shed = 0;             ///< requests rejected by the shed policy
  std::int64_t slo_met = 0;          ///< completed within their model's SLO
  /// slo_met / requests; sheds count as misses. 1.0 when every request met
  /// its SLO (vacuously with no finite SLO configured).
  double slo_attainment = 1.0;
  std::int64_t degraded_batches = 0; ///< batches the degrade policy shrank
  // ---- adaptive control loop (filled by the driver, not summarize) ----
  std::int64_t replans = 0;               ///< controller re-plans this run
  std::int64_t replan_optimizations = 0;  ///< Optimizer runs those took
  std::int64_t replan_measurements = 0;   ///< new cost-model measurements
};

/// Per-device-class aggregates of one run (one entry per pool class; a
/// single entry for a homogeneous configuration).
struct DeviceLoad {
  std::string device;        ///< device class name
  int devices = 1;           ///< worker instances of the class
  std::int64_t batches = 0;  ///< batches the class executed
  double busy_us = 0;        ///< summed service time across its workers
  double utilization = 0;    ///< busy / (devices * makespan)
};

/// Everything a served trace produced.
struct ServingResult {
  std::vector<RequestRecord> records;  ///< per request, trace order
  std::vector<BatchRecord> batches;    ///< per batch, formation order
  ServingStats stats;                  ///< aggregates of this run
  std::vector<DeviceLoad> device_loads;  ///< per device class, pool order
};

/// One request admitted to the engine: a single sample of `model`, carrying
/// a caller-assigned id (the DES uses the trace index, the daemon a dense
/// admission counter) and the engine-clock time it was admitted.
struct EngineRequest {
  std::int64_t id = 0;
  std::string model;
  double arrival_us = 0;
};

/// A batch the engine formed, resolved, and routed: the decision record
/// plus the member requests in arrival order. `record.start_us` and
/// `record.completion_us` are the engine's predictions from its worker
/// bookkeeping — for the DES they *are* the simulated execution; the daemon
/// additionally measures wall time around the real execution.
struct EngineBatch {
  BatchRecord record;
  std::vector<EngineRequest> members;
  /// Recipe-cache outcome of this batch's per-class schedule resolution
  /// (one lookup per device class).
  int resolve_hits = 0;
  int resolve_misses = 0;
};

/// One request the shed policy rejected instead of batching. Collected by
/// the driver via take_shed() after every submit/poll/drain call; the
/// daemon answers them with an error, the DES folds them into the
/// ServingResult.
struct ShedRecord {
  std::int64_t id = 0;    ///< caller-assigned request id
  std::string model;      ///< model the request asked for
  double arrival_us = 0;  ///< engine-clock admission time
  double shed_us = 0;     ///< engine-clock time of the shed decision
  int priority = 0;       ///< priority class of the request's model
  /// The engine's next batch id at the decision: batches with id < seq
  /// formed before this shed, batches with id >= seq after. Together with
  /// take_shed()'s return order this reconstructs the exact interleaving
  /// of sheds and flushes within one poll instant (the property tests
  /// replay it to check the lowest-priority-present invariant).
  int seq = 0;
};

/// Lifetime optimizer accounting of one engine, across resets.
struct EngineCounters {
  std::int64_t optimizations = 0;  ///< recipe-cache misses -> Optimizer runs
  std::int64_t measurements = 0;   ///< cost-model profiles those runs took
};

/// The clock-agnostic batching/routing engine (see the file comment for the
/// model and the threading contract).
class ServingEngine {
 public:
  /// Builds an engine reading time from `clock` (not owned, must outlive
  /// the engine) with its own sharded recipe cache sized by
  /// `options.cache`.
  ServingEngine(ServerOptions options, TimeSource* clock);

  /// Builds an engine around an external (possibly shared) recipe cache —
  /// several engines or servers then reuse each other's optimized
  /// schedules. `cache` must not be null.
  ServingEngine(ServerOptions options, TimeSource* clock,
                std::shared_ptr<ShardedRecipeCache> cache);

  /// Admits one single-sample request for `model` at the clock's current
  /// time and greedily forms any full max-size batches this enables.
  /// Arrival times must be non-decreasing across submit/poll/drain calls
  /// (throws std::invalid_argument otherwise); unknown models throw from
  /// the registry on batch resolution.
  std::vector<EngineBatch> submit(std::int64_t id, const std::string& model);

  /// Fires every batching deadline due at the clock's current time: each
  /// queue whose oldest request has waited max_queue_delay_us is flushed
  /// into the largest allowed batch sizes that fit. Due queues flush in
  /// deadline order (ties: arming order), exactly like the DES event heap.
  std::vector<EngineBatch> poll();

  /// The earliest armed flush deadline, or +infinity when no queue is
  /// waiting. Drivers sleep (daemon) or advance the virtual clock (DES) to
  /// this time, then poll().
  double next_deadline_us() const;

  /// Flushes every queue immediately, deadline or not — the daemon's
  /// graceful-drain path. Queues flush in arming order. Never sheds or
  /// degrades: every queued request is served.
  std::vector<EngineBatch> drain();

  /// Returns (and clears) the requests the shed policy rejected since the
  /// last take_shed()/reset(), in decision order. Empty unless
  /// options().slo.shed is on. Mutates run state: externally serialized
  /// like submit/poll/drain.
  std::vector<ShedRecord> take_shed();

  /// The SLO class of `model` under this engine's policy (the explicit
  /// per-model entry, or the fallback).
  const SloClass& slo_for(const std::string& model) const;

  /// Queued (admitted but not yet batched) requests across all models.
  std::size_t queued() const;

  /// Per-model queue depths (non-empty queues only), in deterministic
  /// model-name order — the daemon's `health` verb. Externally serialized
  /// like submit/poll/drain.
  std::vector<std::pair<std::string, std::size_t>> queue_depths() const;

  /// Marks `worker` dead: the router stops considering it from the next
  /// formed batch on. The engine does not retain batch membership after
  /// returning an EngineBatch, so batches already routed to the worker are
  /// the *driver's* to requeue — the fleet simulator (src/fleet/sim.hpp)
  /// tracks outstanding batches and resubmits the members of any batch the
  /// death interrupts. Throws std::out_of_range on a bad index and
  /// std::invalid_argument when the worker is already dead. Killing the
  /// last alive worker is allowed; the next formed batch then throws
  /// std::runtime_error. reset() revives every worker. Mutates routing
  /// state: externally serialized like submit/poll/drain.
  void kill_worker(int worker);

  /// True when `worker` has not been killed since construction or the last
  /// reset(). Throws std::out_of_range on a bad index.
  bool worker_alive(int worker) const;

  /// Workers still alive (num_workers minus kills since the last reset()).
  int alive_workers() const;

  /// Alive workers of device class `cls` (an index into device_classes()).
  /// Zero means the class is wiped out — no batch routes there and its
  /// service time no longer anchors the routing inflation penalty.
  int alive_in_class(std::size_t cls) const;

  /// Forgets all queued requests and worker bookkeeping for a fresh run;
  /// the recipe cache and lifetime counters are kept. The driver resets its
  /// clock alongside (VirtualClock::reset).
  void reset();

  /// Optimizes every (model, configured batch size, worker device class)
  /// triple into the recipe cache up front, fanning the misses out over
  /// `threads` host threads (<= 0 = one per hardware thread). The cached
  /// results are identical to lazy misses — prewarming changes wall-clock
  /// cost, never engine-clock latencies.
  void prewarm(const std::vector<std::string>& models, int threads = 1);

  /// Lifetime Optimizer invocation/measurement counters (across resets).
  EngineCounters counters() const;

  /// The recipe cache this engine resolves schedules through.
  ShardedRecipeCache& cache() { return *cache_; }
  const ShardedRecipeCache& cache() const { return *cache_; }

  /// The normalized options (batch sizes deduplicated/sorted, worker count
  /// clamped, device names canonicalized) the engine actually runs with.
  const ServerOptions& options() const { return options_; }

  /// Per-worker busy time (summed service) since the last reset.
  const std::vector<double>& worker_busy() const { return worker_busy_; }

  /// Worker index -> device-class index (into device_classes()).
  const std::vector<int>& worker_class() const { return worker_class_; }

  /// Canonical device name per class, pool order (one entry when
  /// homogeneous).
  std::vector<std::string> device_classes() const;

  /// Worker instances per class, matching device_classes().
  std::vector<int> class_counts() const;

  /// The injected time source (e.g. for drivers that need to re-read now).
  TimeSource& clock() { return *clock_; }

 private:
  /// One device class the engine's workers are typed by.
  struct WorkerClass {
    std::string device;    ///< canonical device name
    std::string key_part;  ///< "\n<device>\nbatch=" serving-key fragment
    int count = 1;         ///< workers of this class
  };

  /// One model's pending queue.
  struct ModelQueue {
    std::deque<EngineRequest> pending;  ///< arrival order
    double flush_at = std::numeric_limits<double>::infinity();
    long arm_seq = 0;  ///< when flush_at was (re)armed — DES event order
    /// The model's SLO class (resolved once on queue creation; points into
    /// options_.slo, which is immutable after construction).
    const SloClass* slo = nullptr;
  };

  /// Resolves the full cached recipe for (model, batch) on worker class
  /// `cls` through the sharded cache, invoking the Optimizer on a miss.
  CachedRecipe resolve(const std::string& model, int batch, std::size_t cls,
                       bool* computed = nullptr);

  /// resolve, but returning only the service latency — the per-batch hot
  /// path, which must not copy a Schedule per dispatch.
  double resolve_latency(const std::string& model, int batch, std::size_t cls,
                         bool* computed = nullptr);

  /// Runs the Optimizer for (model, batch) on `device` and accounts it in
  /// the lifetime counters — the compute function behind both resolve
  /// flavors.
  CachedRecipe optimize_config(const std::string& model, int batch,
                               const std::string& device);

  /// The cache key for (model, batch) on worker class `cls` under this
  /// engine's options (serving_cache_key with the constant device/config
  /// suffixes precomputed).
  std::string cache_key(const std::string& model, int batch,
                        std::size_t cls) const;

  /// Closes a batch of the first `size` queued requests of `q` at time
  /// `now`, resolves its per-class service times, and routes it (see the
  /// file comment). Appends to `out`.
  void form_batch(const std::string& model, ModelQueue& q, int size,
                  double now, bool degraded, std::vector<EngineBatch>& out);

  /// The largest allowed batch size fitting `len` queued requests; a queue
  /// shorter than the smallest allowed size is flushed whole.
  int deadline_batch_size(std::size_t len) const;

  /// The queue the requests of `model` wait in, creating it (and resolving
  /// its SLO class) on first use.
  ModelQueue& queue_for(const std::string& model);

  /// When `q` must flush for its oldest request: the max_queue_delay_us
  /// timer, pulled earlier to the request's SLO slack point
  /// (arrival + slo - estimated service) when its model has a finite SLO
  /// and deadline flushing is on. The slack point is itself pulled earlier
  /// by the earliest-free worker's backlog at `now` — a dispatch queued
  /// behind busy workers must leave sooner to make the same deadline —
  /// unless the backlog alone already makes the deadline hopeless, in
  /// which case the plain slack point stands (keep batching; rushing a
  /// partial batch out only burns capacity).
  double queue_flush_time(const std::string& model, const ModelQueue& q,
                          double now);

  /// Cheapest service estimate of (model, size): the minimum cached
  /// schedule latency across alive worker classes (0 when none is alive —
  /// form_batch throws before the estimate matters).
  double min_service_estimate(const std::string& model, int size);

  /// Earliest time any alive worker is free, but not before `now`.
  double earliest_free_us(double now) const;

  /// The priority `q` flushes at when due at `now`: its SLO class
  /// priority, promoted above every class once its oldest request has
  /// waited past the starvation bound.
  int effective_priority(const ModelQueue& q, double now) const;

  /// The lowest SLO-class priority among all queued requests (INT_MAX when
  /// nothing is queued).
  int lowest_queued_priority() const;

  /// Sheds `q`'s oldest request at `now` when the shed policy condemns it
  /// (hopeless against its SLO and the lowest priority present); returns
  /// true when it did.
  bool maybe_shed(const std::string& model, ModelQueue& q, double now);

  /// The batch size a deadline flush of `q` should actually form: `size`,
  /// stepped down to a smaller configured size when only that meets the
  /// oldest member's SLO (sets *degraded).
  int degraded_size(const std::string& model, ModelQueue& q, int size,
                    double now, bool* degraded);

  /// Re-arms `q`'s flush deadline for its current oldest request, against
  /// the worker backlog as of `now`.
  void arm_flush(const std::string& model, ModelQueue& q, double now);

  /// Re-arms every queue's flush deadline. Called after a dispatch grows
  /// the worker backlog: queues armed against the old (smaller) backlog
  /// hold flush times that are now too late for their SLOs. Deadlines
  /// that do not depend on the backlog (the plain timer, SLO-less
  /// queues) recompute to the same value and keep their arming order.
  void rearm_all(double now);

  /// Flushes one due queue at `now` (the poll/drain inner loop).
  void flush_queue(const std::string& model, ModelQueue& q, double now,
                   bool ignore_deadline, std::vector<EngineBatch>& out);

  /// Reads the clock and enforces monotonicity across engine calls.
  double advance_now();

  ServerOptions options_;
  TimeSource* clock_;
  /// Worker classes (one for a homogeneous configuration, pool order
  /// otherwise) and each worker's class index; built once in the ctor.
  std::vector<WorkerClass> classes_;
  std::vector<int> worker_class_;
  std::string config_key_part_;
  std::shared_ptr<ShardedRecipeCache> cache_;
  /// Capacity 1: the sharded cache is the serving store; the facade's own
  /// cache (keyed by full graph JSON) would otherwise hold every recipe a
  /// second time.
  Optimizer optimizer_{1};

  // ---- per-run state (cleared by reset) ----
  std::map<std::string, ModelQueue> queues_;  ///< deterministic iteration
  std::vector<double> worker_free_;
  std::vector<double> worker_busy_;
  std::vector<char> worker_dead_;  ///< kill_worker flags (reset revives)
  std::vector<int> class_alive_;   ///< alive workers per class
  int next_batch_id_ = 0;
  long next_arm_seq_ = 0;
  double last_now_ = 0;
  std::vector<ShedRecord> shed_;  ///< shed decisions since last take_shed
  /// Scratch: per-class service times of the batch being formed (kept out
  /// of the per-dispatch hot loop).
  std::vector<double> service_;

  mutable std::mutex counters_mu_;
  EngineCounters counters_;
};

/// Builds the per-request records and aggregate statistics from a stream of
/// engine batches plus the shed decisions of the run — the one
/// summarization path shared by the DES Server and any engine driver
/// (pinned by the DES/engine equivalence tests). Request ids must lie in
/// [0, num_requests) and every id must appear exactly once, as a batch
/// member or a shed; `records` come back in id order. Latency percentiles,
/// throughput, and mean batch size are over completed (non-shed) requests;
/// slo_attainment counts sheds as misses.
ServingResult summarize(std::vector<EngineBatch> batches,
                        std::vector<ShedRecord> sheds,
                        const ServingEngine& engine, std::size_t num_requests);

/// summarize without sheds (a run with the shed policy off).
ServingResult summarize(std::vector<EngineBatch> batches,
                        const ServingEngine& engine, std::size_t num_requests);

/// The recipe-cache key material for serving lookups: model, canonical
/// device name, batch size, and the scheduler/profiling settings that can
/// change the found schedule. Cheap to build (no graph serialization) —
/// suitable for the per-batch hot path.
std::string serving_cache_key(const std::string& model,
                              const std::string& device, int batch,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol);

}  // namespace ios::serve
