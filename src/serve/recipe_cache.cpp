#include "serve/recipe_cache.hpp"

#include "util/hash.hpp"

namespace ios::serve {

ShardedRecipeCache::ShardedRecipeCache(RecipeCacheOptions options)
    : shard_capacity_(options.shard_capacity < 1 ? 1
                                                 : options.shard_capacity) {
  const std::size_t n = options.num_shards < 1 ? 1 : options.num_shards;
  shards_.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    shards_.push_back(std::make_unique<Shard>(shard_capacity_));
  }
}

std::size_t ShardedRecipeCache::shard_of(const std::string& key) const {
  return hash_bytes(key) % shards_.size();
}

CachedRecipe ShardedRecipeCache::get_or_compute(
    const std::string& key, const std::function<CachedRecipe()>& compute,
    bool* computed) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (CachedRecipe* hit = shard.entries.get(key)) {
    ++shard.hits;
    if (computed) *computed = false;
    return *hit;
  }
  ++shard.misses;
  if (computed) *computed = true;
  return shard.entries.put(key, compute());
}

double ShardedRecipeCache::latency_or_compute(
    const std::string& key, const std::function<CachedRecipe()>& compute,
    bool* computed) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  if (CachedRecipe* hit = shard.entries.get(key)) {
    ++shard.hits;
    if (computed) *computed = false;
    return hit->latency_us;
  }
  ++shard.misses;
  if (computed) *computed = true;
  return shard.entries.put(key, compute()).latency_us;
}

bool ShardedRecipeCache::contains(const std::string& key) {
  Shard& shard = *shards_[shard_of(key)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.entries.get(key) != nullptr;
}

RecipeCacheStats ShardedRecipeCache::stats() const {
  RecipeCacheStats s;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    s.hits += shard->hits;
    s.misses += shard->misses;
    s.evictions += shard->entries.evictions();
    s.size += shard->entries.size();
  }
  return s;
}

std::size_t ShardedRecipeCache::size() const {
  std::size_t n = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    n += shard->entries.size();
  }
  return n;
}

void ShardedRecipeCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
  }
}

}  // namespace ios::serve
