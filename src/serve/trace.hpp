#pragma once
// Request traces for the serving layer. A trace is the workload ios::Server
// replays on its deterministic simulated clock: one entry per inference
// request, carrying the request's arrival time and the model it asks for.
// Synthetic traces are generated from a TraceSpec with the repo's seeded
// xoshiro RNG — the same spec always yields byte-identical traces, which is
// what makes served latencies reproducible end to end.

#include <cstdint>
#include <string>
#include <vector>

namespace ios::serve {

/// One inference request: a single sample of `model`, arriving at
/// `arrival_us` on the simulated clock. The dynamic batcher coalesces
/// requests of the same model into larger batches.
struct TraceRequest {
  /// Simulated arrival time, microseconds from trace start (non-decreasing
  /// within a trace).
  double arrival_us = 0;
  /// Zoo model name (a models::registry() key).
  std::string model;
};

/// A serving workload: requests sorted by arrival time.
struct Trace {
  /// The requests, in arrival order.
  std::vector<TraceRequest> requests;

  /// Arrival time of the last request, in microseconds (0 when empty).
  double duration_us() const {
    return requests.empty() ? 0 : requests.back().arrival_us;
  }
};

/// One segment of a non-stationary trace: `num_requests` Poisson arrivals
/// at mean gap `mean_interarrival_us`. A burst is simply a phase with a
/// much smaller gap than its neighbors.
struct TracePhase {
  /// Requests generated in this phase.
  int num_requests = 0;
  /// Mean exponential inter-arrival gap within the phase, in simulated
  /// microseconds.
  double mean_interarrival_us = 0;
};

/// Parameters for synthetic trace generation.
struct TraceSpec {
  /// Candidate models; each request picks one uniformly at random. Must be
  /// non-empty.
  std::vector<std::string> models = {"squeezenet"};
  /// Number of requests to generate (ignored when `phases` is non-empty).
  int num_requests = 100;
  /// Mean of the exponential inter-arrival gap (Poisson arrivals), in
  /// simulated microseconds. The offered load is 1e6 / mean requests/s.
  /// Ignored when `phases` is non-empty.
  double mean_interarrival_us = 500;
  /// RNG seed: same spec + seed => identical trace.
  std::uint64_t seed = 1;
  /// Non-stationary workload: when non-empty, the trace is the phases
  /// spliced back to back (phase k starts at the last arrival of phase
  /// k-1), and `num_requests` / `mean_interarrival_us` are ignored. Each
  /// phase draws from its own RNG stream derived from (seed, phase index),
  /// so editing phase k leaves the arrivals of every other phase
  /// bit-identical — only the later phases' common time offset moves.
  std::vector<TracePhase> phases;
};

/// Generates a Poisson-arrival trace from the spec, deterministically in
/// the seed. Throws std::invalid_argument on an empty model list or
/// non-positive request count / inter-arrival mean (per phase when phases
/// are given).
Trace generate_trace(const TraceSpec& spec);

}  // namespace ios::serve
