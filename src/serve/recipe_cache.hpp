#pragma once
// ShardedRecipeCache: the serving layer's thread-safe schedule store. It
// generalizes the single-mutex recipe cache of the ios::Optimizer facade to
// N independently locked shards, each a bounded LRU map, so concurrent
// front-end threads resolving different deployment configurations never
// contend on one lock. A lookup miss runs the caller-supplied compute
// function (in ios::Server: a full Optimizer::optimize call) while holding
// only that key's shard lock — misses on *different* shards optimize in
// parallel, and a second thread asking for the same key blocks until the
// first thread's result is cached, so every configuration is optimized at
// most once.
//
// Eviction policy: per shard, strict least-recently-used with a fixed
// capacity (see util/lru_cache.hpp). Keys are distributed over shards by a
// mixed 64-bit hash of the key string, so total capacity is
// num_shards * shard_capacity.

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "schedule/schedule.hpp"
#include "util/lru_cache.hpp"

/// The inference-serving layer: request traces, dynamic batching, sharded
/// recipe caching, and the trace-driven serving simulator.
namespace ios::serve {

/// A cached optimization product: everything the serving executor needs to
/// replay one (model, device, batch) configuration without re-searching.
struct CachedRecipe {
  /// The IOS schedule chosen by the Optimizer for this configuration.
  Schedule schedule;
  /// Executor latency of `schedule` on the configuration's device, in
  /// microseconds — the batch service time the serving simulation charges.
  double latency_us = 0;
  /// Statistics of the DP search that produced the schedule.
  SchedulerStats stats;
  /// Cost-model profiles the optimization ran (0 when the Optimizer's own
  /// inner cache already knew the configuration).
  std::int64_t measurements = 0;
};

/// Sizing knobs for the sharded cache.
struct RecipeCacheOptions {
  /// Number of independently locked shards (clamped to >= 1).
  std::size_t num_shards = 8;
  /// Max entries per shard; the LRU entry of a full shard is evicted first.
  std::size_t shard_capacity = 64;
};

/// Cumulative cache counters, aggregated over all shards.
struct RecipeCacheStats {
  std::int64_t hits = 0;       ///< lookups answered from a shard
  std::int64_t misses = 0;     ///< lookups that had to run compute()
  std::int64_t evictions = 0;  ///< entries dropped by per-shard LRU
  std::size_t size = 0;        ///< resident entries across all shards
};

/// Thread-safe bounded schedule store: N independently locked shards, each
/// a strict-LRU map (see the file comment for the full contract).
class ShardedRecipeCache {
 public:
  /// Creates `options.num_shards` empty shards.
  explicit ShardedRecipeCache(RecipeCacheOptions options = {});

  /// Returns the cached recipe for `key`, running `compute` to fill the
  /// entry on a miss. The shard lock is held across compute(), so a given
  /// key is computed at most once even under concurrent lookups; lookups
  /// hashing to other shards proceed concurrently. compute() must not
  /// re-enter the cache. Returns a copy (the entry may be evicted any time
  /// after the call returns). When `computed` is non-null it is set to
  /// whether this call ran compute() — callers sharing the cache use it to
  /// keep their own hit/miss counts without racing on the global counters.
  CachedRecipe get_or_compute(const std::string& key,
                              const std::function<CachedRecipe()>& compute,
                              bool* computed = nullptr);

  /// get_or_compute, but returning only the entry's latency_us. The serving
  /// hot path dispatches one batch per lookup and needs its service time,
  /// not a copy of the whole Schedule.
  double latency_or_compute(const std::string& key,
                            const std::function<CachedRecipe()>& compute,
                            bool* computed = nullptr);

  /// True if `key` is resident (promotes it to most-recently-used).
  bool contains(const std::string& key);

  /// Aggregated hit/miss/eviction counters and resident size.
  RecipeCacheStats stats() const;

  /// Resident entries across all shards.
  std::size_t size() const;

  /// Number of independently locked shards.
  std::size_t num_shards() const { return shards_.size(); }

  /// Max entries per shard before LRU eviction.
  std::size_t shard_capacity() const { return shard_capacity_; }

  /// The shard index `key` hashes to (exposed for shard-independence tests).
  std::size_t shard_of(const std::string& key) const;

  /// Drops every entry; counters are kept.
  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    LruCache<CachedRecipe> entries;
    std::int64_t hits = 0;
    std::int64_t misses = 0;

    explicit Shard(std::size_t capacity) : entries(capacity) {}
  };

  std::size_t shard_capacity_;
  /// unique_ptr because Shard owns a mutex and must not move when the
  /// vector is built.
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace ios::serve
