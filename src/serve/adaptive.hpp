#pragma once
// ios::serve::AdaptiveController — the serving control loop that closes the
// gap between the offline planner and live traffic. The ServingEngine makes
// per-batch decisions under a fixed SloPolicy; the controller watches the
// traffic those decisions face and re-plans when it shifts:
//
//   observe    per-model inter-arrival gaps feed a fast and a slow EWMA;
//              batch completions feed an SLO-attainment EWMA;
//   detect     the fast/slow gap ratio leaving [1/r, r] (traffic sped up or
//              dried up), or attainment sinking below the floor, flags a
//              load shift — after a per-model warmup, with re-plan
//              hysteresis so one burst does not thrash the planner;
//   re-plan    an incremental Placer::place over the engine's device pool
//              with the *observed* arrival rates as workload weights,
//              through the same recipe cache + profiling database as the
//              serving path — a warm re-plan runs zero new cost-model
//              measurements (the bench gates this);
//   pre-warm   every (model, configured batch, device class) point the new
//              plan anticipates is resolved into the recipe cache, so the
//              serving hot path never pays an optimization after a shift.
//
// The controller never changes an engine decision — batching, routing, and
// shedding depend only on the SloPolicy and the arrival times — so a DES
// replay with the controller on yields bit-identical ServingResults to one
// with it off, plus the re-plan counters. That is what keeps the adaptive
// path inside the deterministic equivalence harness.
//
// Threading: all entry points are internally serialized by one mutex; the
// daemon calls observe_* from its io threads and replan from the batcher
// thread. The engine references are limited to the thread-safe surface
// (options/prewarm/device_classes).

#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "place/placer.hpp"
#include "serve/engine.hpp"

namespace ios::serve {

/// Lifetime counters of one controller (monotone; drivers diff them to
/// report per-run numbers).
struct AdaptiveStats {
  std::int64_t arrivals = 0;          ///< observe_arrival calls
  std::int64_t outcomes = 0;          ///< observe_outcome calls
  std::int64_t shifts_detected = 0;   ///< load-shift flags raised
  std::int64_t replans = 0;           ///< Placer re-runs executed
  std::int64_t replan_optimizations = 0;  ///< Optimizer searches those ran
  std::int64_t replan_cache_hits = 0;     ///< searches served from cache
  std::int64_t replan_measurements = 0;   ///< new cost-model measurements
  std::int64_t prewarmed_configs = 0;     ///< (model, batch, class) points
  double attainment_ewma = 1.0;       ///< current SLO-attainment estimate
};

/// The load-shift detector + incremental re-planner (see the file comment).
class AdaptiveController {
 public:
  /// Builds a controller observing traffic for `engine` (not owned, must
  /// outlive the controller). Validates `options` (alphas in (0, 1],
  /// shift_ratio > 1, attainment_floor in [0, 1], warmup >= 1,
  /// min_replan_gap_us >= 0; throws std::invalid_argument).
  AdaptiveController(AdaptiveOptions options, ServingEngine& engine);

  /// Feeds one admitted request of `model` at engine-clock `now_us` into
  /// the per-model rate trackers.
  void observe_arrival(const std::string& model, double now_us);

  /// Feeds one completed request's SLO outcome into the attainment EWMA.
  void observe_outcome(const std::string& model, bool slo_met);

  /// True when a load shift is flagged and the re-plan hysteresis has
  /// elapsed — the driver should call replan().
  bool replan_due(double now_us) const;

  /// Re-runs the Placer over the engine's pool with the observed per-model
  /// arrival rates as workload weights, pre-warms the anticipated recipe
  /// points, and clears the shift flag. Returns the placement (empty when
  /// no model has been observed yet).
  PlacementResult replan(double now_us);

  /// Snapshot of the lifetime counters.
  AdaptiveStats stats() const;

  /// Forgets the detector state (rate trackers, attainment EWMA, shift
  /// flag, hysteresis marker) for a fresh run; lifetime counters are kept.
  /// The DES Server calls this alongside ServingEngine::reset so repeated
  /// runs of one trace stay bit-identical.
  void reset_run();

 private:
  /// Per-model arrival-rate trackers.
  struct ModelLoad {
    bool has_arrival = false;   ///< first arrival seen (no gap yet)
    double last_arrival_us = 0;
    double fast_gap_us = 0;     ///< fast EWMA of the inter-arrival gap
    double slow_gap_us = 0;     ///< slow EWMA the fast one is compared to
    std::int64_t gaps = 0;      ///< gaps observed (arrivals - 1)
  };

  mutable std::mutex mu_;
  AdaptiveOptions options_;
  ServingEngine& engine_;
  /// Own Optimizer/Placer: re-plans share the engine's profiling database
  /// (via ServerOptions::profile_db) rather than its in-memory cache, which
  /// is exactly the warm-start path the planner uses offline.
  Placer placer_;
  std::map<std::string, ModelLoad> loads_;
  double attainment_ewma_ = 1.0;
  std::int64_t outcomes_ = 0;
  bool shift_pending_ = false;
  double last_replan_us_ = -std::numeric_limits<double>::infinity();
  AdaptiveStats stats_;
};

}  // namespace ios::serve
