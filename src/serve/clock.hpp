#pragma once
// Time sources for the serving engine. The ServingEngine never reads a
// hardware clock directly: it asks an injected TimeSource for "now", which
// is the whole trick that lets one batching/routing engine power both the
// deterministic discrete-event Server (VirtualClock, advanced by the event
// loop) and the real network daemon (WallClock, advanced by physics). A
// test can drive the engine with a VirtualClock by hand and compare its
// decisions bit-for-bit against the DES — see tests/engine_test.cpp.

#include <chrono>
#include <stdexcept>

namespace ios::serve {

/// The engine's view of time: a monotone microsecond clock. Implementations
/// must never go backwards between calls.
class TimeSource {
 public:
  virtual ~TimeSource() = default;

  /// Current time in microseconds since an implementation-defined epoch.
  virtual double now_us() = 0;
};

/// A manually advanced clock for deterministic (simulated) driving: now()
/// is whatever the driver last set. The DES Server advances it to each
/// event's timestamp before stepping the engine, so a fixed trace always
/// produces bit-identical decisions.
class VirtualClock final : public TimeSource {
 public:
  double now_us() override { return now_; }

  /// Moves the clock forward to `t_us`. Throws std::invalid_argument on a
  /// backwards move — simulated time, like real time, is monotone.
  void advance_to(double t_us) {
    if (t_us < now_) {
      throw std::invalid_argument("VirtualClock: time must not go backwards");
    }
    now_ = t_us;
  }

  /// Rewinds to `t_us` (default 0) for a fresh simulation run. Unlike
  /// advance_to this may go backwards; callers reset the engine alongside.
  void reset(double t_us = 0) { now_ = t_us; }

 private:
  double now_ = 0;
};

/// Real time: microseconds since construction on the monotonic steady
/// clock. The daemon injects this so the same engine that the DES tests
/// exercise batches live traffic.
class WallClock final : public TimeSource {
 public:
  WallClock() : epoch_(std::chrono::steady_clock::now()) {}

  double now_us() override {
    return std::chrono::duration<double, std::micro>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  /// The steady_clock instant corresponding to engine time `t_us` — what a
  /// condition variable should wait_until when sleeping toward a batching
  /// deadline.
  std::chrono::steady_clock::time_point time_point_at(double t_us) const {
    return epoch_ + std::chrono::duration_cast<
                        std::chrono::steady_clock::duration>(
                        std::chrono::duration<double, std::micro>(t_us));
  }

 private:
  const std::chrono::steady_clock::time_point epoch_;
};

}  // namespace ios::serve
