#include "serve/adaptive.hpp"

#include <algorithm>
#include <stdexcept>

#include "sim/device.hpp"

namespace ios::serve {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

AdaptiveOptions validate(AdaptiveOptions options) {
  const auto check_alpha = [](double a, const char* what) {
    if (!(a > 0) || a > 1) {
      throw std::invalid_argument(std::string("AdaptiveController: ") + what +
                                  " must be in (0, 1]");
    }
  };
  check_alpha(options.fast_alpha, "fast_alpha");
  check_alpha(options.slow_alpha, "slow_alpha");
  if (!(options.shift_ratio > 1)) {
    throw std::invalid_argument(
        "AdaptiveController: shift_ratio must be > 1");
  }
  if (!(options.attainment_floor >= 0) || options.attainment_floor > 1) {
    throw std::invalid_argument(
        "AdaptiveController: attainment_floor must be in [0, 1]");
  }
  if (options.warmup_arrivals < 1) {
    throw std::invalid_argument(
        "AdaptiveController: warmup_arrivals must be >= 1");
  }
  if (!(options.min_replan_gap_us >= 0)) {
    throw std::invalid_argument(
        "AdaptiveController: min_replan_gap_us must be >= 0");
  }
  return options;
}

}  // namespace

AdaptiveController::AdaptiveController(AdaptiveOptions options,
                                       ServingEngine& engine)
    : options_(validate(std::move(options))), engine_(engine) {}

void AdaptiveController::observe_arrival(const std::string& model,
                                         double now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.arrivals;
  ModelLoad& m = loads_[model];
  if (!m.has_arrival) {
    m.has_arrival = true;
    m.last_arrival_us = now_us;
    return;
  }
  const double gap = std::max(now_us - m.last_arrival_us, 0.0);
  m.last_arrival_us = now_us;
  ++m.gaps;
  if (m.gaps == 1) {
    m.fast_gap_us = m.slow_gap_us = gap;
    return;
  }
  m.fast_gap_us =
      options_.fast_alpha * gap + (1 - options_.fast_alpha) * m.fast_gap_us;
  m.slow_gap_us =
      options_.slow_alpha * gap + (1 - options_.slow_alpha) * m.slow_gap_us;
  if (shift_pending_ || m.gaps < options_.warmup_arrivals) return;
  if (!(m.fast_gap_us > 0) || !(m.slow_gap_us > 0)) return;
  // slow/fast > 1 means the recent gaps shrank (traffic sped up);
  // < 1 means it dried up. Either direction warrants a re-plan.
  const double ratio = m.slow_gap_us / m.fast_gap_us;
  if (ratio >= options_.shift_ratio || ratio <= 1.0 / options_.shift_ratio) {
    shift_pending_ = true;
    ++stats_.shifts_detected;
  }
}

void AdaptiveController::observe_outcome(const std::string& model,
                                         bool slo_met) {
  (void)model;  // attainment is tracked globally; the rate trackers are
                // the per-model signal
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.outcomes;
  ++outcomes_;
  const double sample = slo_met ? 1.0 : 0.0;
  attainment_ewma_ =
      outcomes_ == 1
          ? sample
          : options_.fast_alpha * sample +
                (1 - options_.fast_alpha) * attainment_ewma_;
  stats_.attainment_ewma = attainment_ewma_;
  if (!shift_pending_ && outcomes_ >= options_.warmup_arrivals &&
      attainment_ewma_ < options_.attainment_floor) {
    shift_pending_ = true;
    ++stats_.shifts_detected;
  }
}

bool AdaptiveController::replan_due(double now_us) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!shift_pending_) return false;
  return last_replan_us_ == kNegInf ||
         now_us - last_replan_us_ >= options_.min_replan_gap_us;
}

PlacementResult AdaptiveController::replan(double now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  shift_pending_ = false;
  last_replan_us_ = now_us;

  const ServerOptions& so = engine_.options();
  PlacementRequest request;
  if (!so.pool.empty()) {
    request.pool = so.pool;
  } else {
    DeviceClass cls;
    cls.spec = device_by_name(so.device);
    cls.count = so.num_workers;
    request.pool.classes.push_back(cls);
  }
  request.options = so.scheduler;
  request.protocol = so.protocol;
  request.profile_db = so.profile_db;
  request.allow_splits = false;

  // Anticipated workload: every observed model at the largest configured
  // batch, weighted by its fast-EWMA arrival rate — the plan follows the
  // traffic that actually materialized, not the one provisioned for.
  std::vector<std::string> models;
  const int batch = so.batching.batch_sizes.back();
  for (const auto& [model, m] : loads_) {
    if (!m.has_arrival) continue;
    models.push_back(model);
    const double rate = m.fast_gap_us > 0 ? 1e6 / m.fast_gap_us : 1.0;
    request.workload.push_back(WorkloadItem{model, batch, rate});
  }
  if (request.workload.empty()) return {};

  PlacementResult result = placer_.place(request);
  ++stats_.replans;
  stats_.replan_optimizations += result.optimizations;
  stats_.replan_cache_hits += result.cache_hits;
  stats_.replan_measurements += result.measurements;

  if (options_.prewarm) {
    // Resolve every (model, configured batch, class) point the plan
    // anticipates into the engine's recipe cache — identical results to
    // lazy misses, paid off the serving hot path.
    engine_.prewarm(models, 1);
    stats_.prewarmed_configs +=
        static_cast<std::int64_t>(models.size()) *
        static_cast<std::int64_t>(so.batching.batch_sizes.size()) *
        static_cast<std::int64_t>(engine_.device_classes().size());
  }
  return result;
}

AdaptiveStats AdaptiveController::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void AdaptiveController::reset_run() {
  std::lock_guard<std::mutex> lock(mu_);
  loads_.clear();
  attainment_ewma_ = 1.0;
  outcomes_ = 0;
  shift_pending_ = false;
  last_replan_us_ = kNegInf;
  stats_.attainment_ewma = 1.0;
}

}  // namespace ios::serve
