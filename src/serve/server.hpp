#pragma once
// ios::serve::Server — the inference-serving front end over the paper's
// optimizer. IOS (the paper) finds the best schedule for one (model, device,
// batch) point; the Server is the layer that makes those schedules pay off
// under multi-user load: it admits a trace of single-sample requests on a
// deterministic simulated clock, coalesces each model's queue into the
// nearest optimized batch size (dynamic batching), resolves the schedule for
// that batch through a sharded LRU recipe cache (invoking the ios::Optimizer
// on a miss, so every configuration is searched at most once), and replays
// the chosen Schedule on one of N simulated executor workers.
//
// Everything the server reports — per-request latency, batch timelines,
// throughput and tail percentiles — is derived from the simulated clock, so
// a fixed trace and configuration always produce bit-identical results,
// independent of host thread scheduling. Optimization happens off the
// simulated clock (it is the paper's offline cost) but is fully accounted in
// the server counters.
//
// Event model (discrete-event simulation):
//   * request arrival    -> enqueue on the model's queue; greedily form
//                           full max-size batches
//   * batching deadline  -> the oldest queued request has waited
//                           max_queue_delay_us; flush the queue into the
//                           largest allowed batch that fits
//   * batch formed       -> dispatched to the worker minimizing predicted
//                           completion time max(now, free) + service, where
//                           service is the cached schedule latency for that
//                           batch size *on the worker's device class*; ties
//                           fall back on queue depth (the earlier-free
//                           worker). For a homogeneous server this is
//                           exactly FIFO list scheduling; for a device pool
//                           (ServerOptions::pool) it is device-aware
//                           routing — a fast-but-busy class loses to a
//                           slower-but-idle one only when that actually
//                           finishes the batch earlier.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "place/pool.hpp"
#include "serve/recipe_cache.hpp"
#include "serve/trace.hpp"

namespace ios::serve {

/// How the dynamic batcher coalesces a model's request queue.
struct BatchingPolicy {
  /// Batch sizes the batcher may form (deduplicated and sorted ascending by
  /// the Server). A queue reaching the largest size is flushed immediately;
  /// a deadline flush picks the largest entry that fits the queue. The
  /// degenerate policy {1} disables batching entirely.
  std::vector<int> batch_sizes = {1, 2, 4, 8};
  /// Max time a request may wait in the queue before its model's queue is
  /// force-flushed, in simulated microseconds.
  double max_queue_delay_us = 2000;
};

/// Server configuration.
struct ServerOptions {
  /// Device short or full name (device_names()); all workers simulate it.
  /// Ignored when `pool` is non-empty.
  std::string device = "v100";
  /// Heterogeneous device pool (e.g. pool_from_spec("p100,1080tix2")). When
  /// non-empty, the server runs one executor worker per pool device
  /// instance, each typed by its device class: schedules are resolved per
  /// (model, class, batch) — every class gets its own optimized recipe —
  /// and the batcher routes each formed batch to the worker minimizing its
  /// predicted completion time (ties fall back on queue depth, i.e. the
  /// earlier-free worker). Class names must be registry devices
  /// (device_names()); `device` and `num_workers` are ignored.
  DevicePool pool{};
  /// Number of executor workers replaying batches concurrently (clamped
  /// to >= 1). With a pool, the worker count is the pool's total device
  /// count instead.
  int num_workers = 1;
  /// Dynamic-batching policy shared by all model queues.
  BatchingPolicy batching{};
  /// DP-search options forwarded to the Optimizer on recipe-cache misses.
  SchedulerOptions scheduler{};
  /// Profiling protocol forwarded to the Optimizer on recipe-cache misses.
  ProfilingProtocol protocol{};
  /// Sizing of the sharded recipe cache (ignored when the Server is built
  /// around an external cache).
  RecipeCacheOptions cache{};
  /// Persistable profiling-database path forwarded to every Optimizer run a
  /// sharded-cache miss triggers (see OptimizationRequest::profile_db). A
  /// warm-started server whose previous life profiled the same
  /// (model, device, batch) configurations re-runs zero simulations.
  std::string profile_db;
};

/// Per-request outcome of a served trace.
struct RequestRecord {
  int index = 0;            ///< position of the request in the trace
  std::string model;        ///< model the request asked for
  double arrival_us = 0;    ///< simulated arrival time
  double dispatch_us = 0;   ///< when its batch started on a worker
  double completion_us = 0; ///< when its batch finished
  double latency_us = 0;    ///< completion - arrival (queueing + service)
  int batch_size = 0;       ///< size of the coalesced batch it rode in
  int batch_id = 0;         ///< id of that batch (index into batch records)
  int worker = 0;           ///< executor worker that ran the batch
  std::string device;       ///< device class of that worker
};

/// Per-batch outcome of a served trace.
struct BatchRecord {
  int id = 0;               ///< dense batch id, formation order
  std::string model;        ///< model of every request in the batch
  int size = 0;             ///< number of coalesced requests
  double formed_us = 0;     ///< when the batcher closed the batch
  double start_us = 0;      ///< when a worker started executing it
  double completion_us = 0; ///< start + service time
  double service_us = 0;    ///< schedule latency at this batch size
  int worker = 0;           ///< executor worker it ran on
  std::string device;       ///< device class it ran on
};

/// Aggregates of one Server::run call, all on the simulated clock.
struct ServingStats {
  std::int64_t requests = 0;       ///< requests served
  std::int64_t batches = 0;        ///< batches formed
  double makespan_us = 0;          ///< completion time of the last batch
  double throughput_rps = 0;       ///< requests per simulated second
  double mean_latency_us = 0;      ///< mean request latency
  double p50_latency_us = 0;       ///< median request latency
  double p95_latency_us = 0;       ///< 95th percentile request latency
  double p99_latency_us = 0;       ///< 99th percentile request latency
  double max_latency_us = 0;       ///< worst request latency
  double mean_queue_wait_us = 0;   ///< mean dispatch - arrival
  double mean_batch_size = 0;      ///< requests / batches
  double worker_utilization = 0;   ///< busy time / (workers * makespan)
  /// Recipe-cache hits by this run's own lookups (counted per lookup, not
  /// diffed from the cache's global counters — exact even when several
  /// servers share one cache concurrently).
  std::int64_t cache_hits = 0;
  std::int64_t cache_misses = 0;   ///< recipe-cache misses by this run
};

/// Per-device-class aggregates of one run (one entry per pool class; a
/// single entry for a homogeneous server).
struct DeviceLoad {
  std::string device;        ///< device class name
  int devices = 1;           ///< worker instances of the class
  std::int64_t batches = 0;  ///< batches the class executed
  double busy_us = 0;        ///< summed service time across its workers
  double utilization = 0;    ///< busy / (devices * makespan)
};

/// Everything a served trace produced.
struct ServingResult {
  std::vector<RequestRecord> records;  ///< per request, trace order
  std::vector<BatchRecord> batches;    ///< per batch, formation order
  ServingStats stats;                  ///< aggregates of this run
  std::vector<DeviceLoad> device_loads;  ///< per device class, pool order
};

/// Lifetime counters of a Server, across every run() and prewarm() call.
struct ServerStats {
  std::int64_t requests = 0;       ///< total requests served
  std::int64_t batches = 0;        ///< total batches executed
  std::int64_t optimizations = 0;  ///< recipe-cache misses -> Optimizer runs
  std::int64_t measurements = 0;   ///< cost-model profiles those runs took
  RecipeCacheStats cache;          ///< live sharded-cache counters
};

/// The serving front end: admits request traces on a deterministic
/// simulated clock, batches them dynamically, resolves schedules through
/// the sharded recipe cache, and replays them on N simulated executor
/// workers (see the file comment for the event model).
class Server {
 public:
  /// Builds a server with its own sharded recipe cache sized by
  /// `options.cache`.
  explicit Server(ServerOptions options);

  /// Builds a server around an external (possibly shared) recipe cache —
  /// several servers, e.g. one per worker-count in a sweep, then reuse each
  /// other's optimized schedules. `cache` must not be null.
  Server(ServerOptions options, std::shared_ptr<ShardedRecipeCache> cache);

  /// Replays the trace on the simulated clock and returns per-request
  /// records plus aggregate statistics. Deterministic: the same trace and
  /// options always yield identical results. Requests must arrive in
  /// non-decreasing time order (throws std::invalid_argument otherwise);
  /// unknown model or device names throw from the underlying registries.
  ServingResult run(const Trace& trace);

  /// Optimizes every (model, configured batch size, worker device class)
  /// triple into the recipe cache up front, fanning the misses out over
  /// `threads` host threads
  /// (<= 0 = one per hardware thread). Serving then only misses on batch
  /// sizes outside the configured list (a deadline flush of a queue shorter
  /// than the smallest configured size serves the queue whole); those are
  /// resolved lazily. The cached results are identical to lazy misses —
  /// prewarming changes wall-clock cost, never simulated latencies.
  void prewarm(const std::vector<std::string>& models, int threads = 1);

  /// Lifetime counters: requests/batches served, Optimizer invocations, and
  /// the sharded cache's hit/miss/eviction counters.
  ServerStats stats() const;

  /// The recipe cache this server resolves schedules through.
  ShardedRecipeCache& cache() { return *cache_; }

  /// The normalized options (batch sizes deduplicated/sorted, worker count
  /// clamped) the server actually runs with.
  const ServerOptions& options() const { return options_; }

 private:
  /// One device class the server's workers are typed by: a homogeneous
  /// server has exactly one (options.device x num_workers); a pool server
  /// has one per pool class.
  struct WorkerClass {
    std::string device;    ///< canonical device name
    std::string key_part;  ///< "\n<device>\nbatch=" serving-key fragment
    int count = 1;         ///< workers of this class
  };

  /// Resolves the full cached recipe for (model, batch) on worker class
  /// `cls` through the sharded cache, invoking the Optimizer on a miss.
  /// `computed`, when non-null, reports whether this call ran the Optimizer
  /// (a miss).
  CachedRecipe resolve(const std::string& model, int batch, std::size_t cls,
                       bool* computed = nullptr);

  /// resolve, but returning only the service latency — the per-batch hot
  /// path, which must not copy a Schedule per dispatch.
  double resolve_latency(const std::string& model, int batch, std::size_t cls,
                         bool* computed = nullptr);

  /// Runs the Optimizer for (model, batch) on `device` and accounts it in
  /// the lifetime counters — the compute function behind both resolve
  /// flavors.
  CachedRecipe optimize_config(const std::string& model, int batch,
                               const std::string& device);

  /// The cache key for (model, batch) on worker class `cls` under this
  /// server's options (serving_cache_key with the constant device/config
  /// suffixes precomputed).
  std::string cache_key(const std::string& model, int batch,
                        std::size_t cls) const;

  ServerOptions options_;
  /// Worker classes (one for a homogeneous server, pool order otherwise)
  /// and each worker's class index; built once in the constructor.
  std::vector<WorkerClass> classes_;
  std::vector<int> worker_class_;
  std::string config_key_part_;
  std::shared_ptr<ShardedRecipeCache> cache_;
  /// Capacity 1: the sharded cache is the serving store; the facade's own
  /// cache (keyed by full graph JSON) would otherwise hold every recipe a
  /// second time.
  Optimizer optimizer_{1};

  mutable std::mutex stats_mu_;
  std::int64_t total_requests_ = 0;
  std::int64_t total_batches_ = 0;
  std::int64_t total_optimizations_ = 0;
  std::int64_t total_measurements_ = 0;
};

/// The recipe-cache key material for serving lookups: model, canonical
/// device name, batch size, and the scheduler/profiling settings that can
/// change the found schedule. Cheap to build (no graph serialization) —
/// suitable for the per-batch hot path.
std::string serving_cache_key(const std::string& model,
                              const std::string& device, int batch,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol);

}  // namespace ios::serve
