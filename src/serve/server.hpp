#pragma once
// ios::serve::Server — the deterministic, simulated-clock front end over
// the clock-agnostic ServingEngine (serve/engine.hpp). The engine makes
// every batching, schedule-resolution, and routing decision; the Server is
// a thin discrete-event driver that owns a VirtualClock and advances it
// through the two event kinds of a served trace:
//
//   * request arrival    -> clock to the arrival time, engine.submit()
//                           (greedy full-batch formation)
//   * batching deadline  -> clock to engine.next_deadline_us(),
//                           engine.poll() (deadline flush)
//
// with deadlines strictly before an arrival processed first and arrivals
// winning ties — the exact (time, seq) order of the event heap the DES used
// before the engine was extracted, pinned bit-for-bit by the equivalence
// suite in tests/engine_test.cpp. The network daemon (net/daemon.hpp)
// drives the same engine with a WallClock, which is what makes this Server
// the deterministic test harness for the production data path.
//
// Everything the server reports — per-request latency, batch timelines,
// throughput and tail percentiles — is derived from the virtual clock, so a
// fixed trace and configuration always produce bit-identical results,
// independent of host thread scheduling. Optimization happens off the
// simulated clock (it is the paper's offline cost) but is fully accounted
// in the server counters.

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "serve/adaptive.hpp"
#include "serve/engine.hpp"

namespace ios::serve {

/// Lifetime counters of a Server, across every run() and prewarm() call.
struct ServerStats {
  std::int64_t requests = 0;       ///< total requests served
  std::int64_t batches = 0;        ///< total batches executed
  std::int64_t optimizations = 0;  ///< recipe-cache misses -> Optimizer runs
  std::int64_t measurements = 0;   ///< cost-model profiles those runs took
  RecipeCacheStats cache;          ///< live sharded-cache counters
};

/// The simulated-clock serving front end: a DES adapter replaying request
/// traces through the shared ServingEngine (see the file comment for the
/// event model).
class Server {
 public:
  /// Builds a server with its own sharded recipe cache sized by
  /// `options.cache`.
  explicit Server(ServerOptions options);

  /// Builds a server around an external (possibly shared) recipe cache —
  /// several servers, e.g. one per worker-count in a sweep, then reuse each
  /// other's optimized schedules. `cache` must not be null.
  Server(ServerOptions options, std::shared_ptr<ShardedRecipeCache> cache);

  /// Replays the trace on the virtual clock and returns per-request
  /// records plus aggregate statistics. Deterministic: the same trace and
  /// options always yield identical results. Requests must arrive in
  /// non-decreasing time order (throws std::invalid_argument otherwise);
  /// unknown model or device names throw from the underlying registries.
  ServingResult run(const Trace& trace);

  /// Optimizes every (model, configured batch size, worker device class)
  /// triple into the recipe cache up front, fanning the misses out over
  /// `threads` host threads (<= 0 = one per hardware thread). Serving then
  /// only misses on batch sizes outside the configured list (a deadline
  /// flush of a queue shorter than the smallest configured size serves the
  /// queue whole); those are resolved lazily. The cached results are
  /// identical to lazy misses — prewarming changes wall-clock cost, never
  /// simulated latencies.
  void prewarm(const std::vector<std::string>& models, int threads = 1);

  /// Lifetime counters: requests/batches served, Optimizer invocations, and
  /// the sharded cache's hit/miss/eviction counters.
  ServerStats stats() const;

  /// The recipe cache this server resolves schedules through.
  ShardedRecipeCache& cache() { return engine_.cache(); }

  /// The normalized options (batch sizes deduplicated/sorted, worker count
  /// clamped) the server actually runs with.
  const ServerOptions& options() const { return engine_.options(); }

  /// The underlying clock-agnostic engine (shared with the daemon design;
  /// exposed for the DES/engine equivalence tests).
  ServingEngine& engine() { return engine_; }

  /// The adaptive controller, or nullptr when options.adaptive.enabled is
  /// false. Lifetime counters (AdaptiveController::stats) span runs; the
  /// per-run re-plan numbers land in ServingStats::replans*.
  const AdaptiveController* adaptive() const { return adaptive_.get(); }

 private:
  VirtualClock clock_;
  ServingEngine engine_;
  std::unique_ptr<AdaptiveController> adaptive_;

  mutable std::mutex stats_mu_;
  std::int64_t total_requests_ = 0;
  std::int64_t total_batches_ = 0;
};

}  // namespace ios::serve
