#include "place/placer.hpp"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "models/models.hpp"
#include "runtime/executor.hpp"

namespace ios {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Per-(item, class) data the plan builder needs beyond the recipe grid:
/// cumulative per-block-prefix latencies for split evaluation.
struct ClassProfile {
  double latency_us = 0;
  /// prefix_us[b] = latency of blocks [0, b) under this class's schedule
  /// (prefix_us[num_blocks] == latency_us).
  std::vector<double> prefix_us;
};

/// Activation bytes crossing each block boundary: cut_bytes[b] = output
/// bytes of ops in blocks [0, b) consumed by ops in blocks [b, n). Graph
/// inputs are host-fed and excluded (either segment device receives them
/// directly).
std::vector<std::int64_t> boundary_bytes(const Graph& g) {
  const int n = g.num_blocks();
  std::vector<std::int64_t> cut(static_cast<std::size_t>(n) + 1, 0);
  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    int max_succ_block = -1;
    for (OpId s : g.succs(op.id)) {
      max_succ_block = std::max(max_succ_block, g.op(s).block);
    }
    // The op's output must be transferred across every cut b with
    // op.block < b <= max consumer block.
    for (int b = op.block + 1; b <= max_succ_block; ++b) {
      cut[static_cast<std::size_t>(b)] += g.output_bytes(op.id);
    }
  }
  return cut;
}

/// Sums each stage's latency into its block's slot and folds the result
/// into cumulative prefix sums.
ClassProfile profile_schedule(const Graph& g, const Schedule& schedule,
                              const DeviceSpec& device) {
  const Executor executor(g, ExecConfig{device, KernelModelParams{}});
  ClassProfile p;
  std::vector<double> per_block(static_cast<std::size_t>(g.num_blocks()), 0);
  for (const Stage& stage : schedule.stages) {
    const int block = g.op(stage.groups.front().ops.front()).block;
    per_block[static_cast<std::size_t>(block)] +=
        executor.stage_latency_us(stage);
  }
  p.prefix_us.assign(per_block.size() + 1, 0);
  for (std::size_t b = 0; b < per_block.size(); ++b) {
    p.prefix_us[b + 1] = p.prefix_us[b] + per_block[b];
  }
  p.latency_us = p.prefix_us.back();
  return p;
}

void validate_request(const PlacementRequest& request) {
  request.pool.validate();
  request.options.validate();
  if (request.workload.empty()) {
    throw std::invalid_argument("Placer: workload is empty");
  }
  for (const WorkloadItem& item : request.workload) {
    if (item.batch < 1) {
      throw std::invalid_argument("Placer: batch for '" + item.model +
                                  "' must be >= 1");
    }
    if (!(item.weight > 0)) {
      throw std::invalid_argument("Placer: weight for '" + item.model +
                                  "' must be > 0");
    }
  }
}

}  // namespace

PlacementRequest PlacementRequest::from(const OptimizationRequest& request) {
  if (request.graph) {
    throw std::invalid_argument(
        "placement requires a zoo model (in-memory graphs have no "
        "registry name to optimize per device class)");
  }
  PlacementRequest p;
  p.pool = request.pool;
  p.workload = {WorkloadItem{request.model, request.batch, 1.0}};
  p.options = request.options;
  p.protocol = request.protocol;
  p.profile_db = request.profile_db;
  return p;
}

const DeviceRecipe* PlacementResult::recipe_for(const std::string& model,
                                                int batch,
                                                const std::string& device)
    const {
  for (const DeviceRecipe& r : recipes) {
    if (r.model == model && r.batch == batch && r.device == device) return &r;
  }
  return nullptr;
}

Placer::Placer() : optimizer_(own_) {}
Placer::Placer(Optimizer& optimizer) : optimizer_(optimizer) {}

PlacementResult Placer::place(const OptimizationRequest& request) {
  return place(PlacementRequest::from(request));
}

PlacementResult Placer::place(const PlacementRequest& request) {
  validate_request(request);
  const std::size_t num_items = request.workload.size();
  const std::size_t num_classes = request.pool.classes.size();

  PlacementResult result;
  result.recipes.reserve(num_items * num_classes);

  // ---- recipe grid: every item optimized for every device class ---------
  // grid[i * num_classes + c]: prefix latencies for split evaluation.
  std::vector<ClassProfile> grid(num_items * num_classes);
  std::vector<std::vector<std::int64_t>> cuts(num_items);
  for (std::size_t i = 0; i < num_items; ++i) {
    const WorkloadItem& item = request.workload[i];
    const Graph g = models::build_model(item.model, item.batch);
    cuts[i] = boundary_bytes(g);
    for (std::size_t c = 0; c < num_classes; ++c) {
      const DeviceSpec& spec = request.pool.classes[c].spec;
      OptimizationRequest opt =
          OptimizationRequest::for_model(item.model, spec.name, item.batch);
      opt.options = request.options;
      opt.protocol = request.protocol;
      opt.profile_db = request.profile_db;
      opt.baselines.clear();  // placement needs latencies, not comparisons
      const OptimizationResult r = optimizer_.optimize(opt);
      ++(r.cache_hit ? result.cache_hits : result.optimizations);
      result.measurements += r.new_measurements;

      DeviceRecipe recipe;
      recipe.model = item.model;
      recipe.batch = item.batch;
      recipe.device = spec.name;
      recipe.latency_us = r.latency_us;
      recipe.recipe = r.recipe;
      recipe.stats = r.stats;
      result.recipes.push_back(std::move(recipe));

      grid[i * num_classes + c] = profile_schedule(g, r.schedule, spec);
    }
  }

  // ---- best pipeline split per item (load-independent) -------------------
  std::vector<std::optional<PipelineSplit>> splits(num_items);
  if (request.allow_splits && num_classes > 1) {
    for (std::size_t i = 0; i < num_items; ++i) {
      const int num_blocks = static_cast<int>(cuts[i].size()) - 1;
      PipelineSplit best;
      best.latency_us = kInf;
      for (std::size_t c1 = 0; c1 < num_classes; ++c1) {
        for (std::size_t c2 = 0; c2 < num_classes; ++c2) {
          if (c1 == c2) continue;  // same-class splits only add transfer
          const ClassProfile& p1 = grid[i * num_classes + c1];
          const ClassProfile& p2 = grid[i * num_classes + c2];
          for (int cut = 1; cut < num_blocks; ++cut) {
            const double first = p1.prefix_us[static_cast<std::size_t>(cut)];
            const double second =
                p2.latency_us - p2.prefix_us[static_cast<std::size_t>(cut)];
            const double transfer = request.pool.interconnect.transfer_us(
                cuts[i][static_cast<std::size_t>(cut)]);
            const double total = first + transfer + second;
            if (total < best.latency_us) {
              best.first_device = request.pool.classes[c1].spec.name;
              best.second_device = request.pool.classes[c2].spec.name;
              best.cut_block = cut;
              best.cut_bytes = cuts[i][static_cast<std::size_t>(cut)];
              best.first_us = first;
              best.transfer_us = transfer;
              best.second_us = second;
              best.latency_us = total;
            }
          }
        }
      }
      if (best.latency_us < kInf) splits[i] = best;
    }
  }

  // ---- greedy heterogeneous-makespan assignment --------------------------
  // Items are committed in descending work order (weight x best latency),
  // the LPT rule; each goes to the option minimizing its predicted
  // completion (committed per-instance load + its own service time).
  std::vector<std::size_t> order(num_items);
  for (std::size_t i = 0; i < num_items; ++i) order[i] = i;
  const auto item_work = [&](std::size_t i) {
    double best = kInf;
    for (std::size_t c = 0; c < num_classes; ++c) {
      best = std::min(best, grid[i * num_classes + c].latency_us);
    }
    if (splits[i]) best = std::min(best, splits[i]->latency_us);
    return request.workload[i].weight * best;
  };
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double wa = item_work(a), wb = item_work(b);
    if (wa != wb) return wa > wb;
    if (request.workload[a].model != request.workload[b].model) {
      return request.workload[a].model < request.workload[b].model;
    }
    return request.workload[a].batch < request.workload[b].batch;
  });

  std::vector<double> load(num_classes, 0);
  const auto class_index = [&](const std::string& device) {
    for (std::size_t c = 0; c < num_classes; ++c) {
      if (request.pool.classes[c].spec.name == device) return c;
    }
    throw std::logic_error("placement: unknown class " + device);
  };

  PlacementPlan& plan = result.plan;
  plan.assignments.resize(num_items);
  for (const std::size_t i : order) {
    const WorkloadItem& item = request.workload[i];
    Assignment a;
    a.model = item.model;
    a.batch = item.batch;
    a.weight = item.weight;

    // Best single class by predicted completion; ties prefer the lower
    // service latency, then pool declaration order.
    std::size_t best_c = 0;
    double best_completion = kInf;
    double best_single = kInf;
    for (std::size_t c = 0; c < num_classes; ++c) {
      const double lat = grid[i * num_classes + c].latency_us;
      const double completion =
          (load[c] + item.weight * lat) / request.pool.classes[c].count;
      best_single = std::min(best_single, lat);
      const double cur = grid[i * num_classes + best_c].latency_us;
      if (completion < best_completion ||
          (completion == best_completion && lat < cur)) {
        best_completion = completion;
        best_c = c;
      }
    }
    a.best_single_us = best_single;

    // A split competes only when its end-to-end latency strictly beats
    // every single device; it is then weighed on completion time like any
    // other option (both segment classes must absorb their share).
    bool use_split = false;
    if (splits[i] && splits[i]->latency_us < best_single) {
      const std::size_t c1 = class_index(splits[i]->first_device);
      const std::size_t c2 = class_index(splits[i]->second_device);
      const double completion = std::max(
          (load[c1] + item.weight * splits[i]->first_us) /
              request.pool.classes[c1].count,
          (load[c2] + item.weight * splits[i]->second_us) /
              request.pool.classes[c2].count);
      use_split = completion < best_completion;
    }

    if (use_split) {
      const PipelineSplit& s = *splits[i];
      a.device = s.first_device + "|" + s.second_device;
      a.service_us = s.latency_us;
      a.split = s;
      load[class_index(s.first_device)] += item.weight * s.first_us;
      load[class_index(s.second_device)] += item.weight * s.second_us;
    } else {
      a.device = request.pool.classes[best_c].spec.name;
      a.service_us = grid[i * num_classes + best_c].latency_us;
      load[best_c] += item.weight * a.service_us;
    }
    plan.weighted_latency_us += item.weight * a.service_us;
    plan.assignments[i] = std::move(a);
  }

  // ---- load picture -------------------------------------------------------
  for (std::size_t c = 0; c < num_classes; ++c) {
    plan.makespan_us = std::max(
        plan.makespan_us, load[c] / request.pool.classes[c].count);
  }
  for (std::size_t c = 0; c < num_classes; ++c) {
    ClassLoad cl;
    cl.device = request.pool.classes[c].spec.name;
    cl.count = request.pool.classes[c].count;
    cl.load_us = load[c];
    cl.utilization = plan.makespan_us > 0
                         ? (load[c] / cl.count) / plan.makespan_us
                         : 0;
    plan.loads.push_back(std::move(cl));
  }
  return result;
}

JsonValue placement_to_json(const PlacementResult& result) {
  JsonValue recipes = JsonValue::array();
  for (const DeviceRecipe& r : result.recipes) {
    JsonValue entry = JsonValue::object();
    entry.set("model", r.model);
    entry.set("batch", r.batch);
    entry.set("device", r.device);
    entry.set("latency_us", r.latency_us);
    recipes.push_back(std::move(entry));
  }

  JsonValue assignments = JsonValue::array();
  for (const Assignment& a : result.plan.assignments) {
    JsonValue entry = JsonValue::object();
    entry.set("model", a.model);
    entry.set("batch", a.batch);
    entry.set("weight", a.weight);
    entry.set("device", a.device);
    entry.set("service_us", a.service_us);
    entry.set("best_single_us", a.best_single_us);
    if (a.split) {
      JsonValue split = JsonValue::object();
      split.set("first_device", a.split->first_device);
      split.set("second_device", a.split->second_device);
      split.set("cut_block", a.split->cut_block);
      split.set("cut_bytes", a.split->cut_bytes);
      split.set("first_us", a.split->first_us);
      split.set("transfer_us", a.split->transfer_us);
      split.set("second_us", a.split->second_us);
      entry.set("split", std::move(split));
    }
    assignments.push_back(std::move(entry));
  }

  JsonValue loads = JsonValue::array();
  for (const ClassLoad& l : result.plan.loads) {
    JsonValue entry = JsonValue::object();
    entry.set("device", l.device);
    entry.set("count", l.count);
    entry.set("load_us", l.load_us);
    entry.set("utilization", l.utilization);
    loads.push_back(std::move(entry));
  }

  JsonValue plan = JsonValue::object();
  plan.set("assignments", std::move(assignments));
  plan.set("loads", std::move(loads));
  plan.set("makespan_us", result.plan.makespan_us);
  plan.set("weighted_latency_us", result.plan.weighted_latency_us);

  JsonValue root = JsonValue::object();
  root.set("recipes", std::move(recipes));
  root.set("plan", std::move(plan));
  root.set("optimizations", result.optimizations);
  root.set("cache_hits", result.cache_hits);
  root.set("measurements", result.measurements);
  return root;
}

}  // namespace ios
