#pragma once
// Heterogeneous device pools. A DevicePool describes the fleet a deployment
// runs on: a handful of *device classes* (one simulated DeviceSpec each, e.g.
// "Tesla P100") with an instance count per class, plus the host interconnect
// (PCIe-like) a tensor crosses when a model is pipeline-split across two
// devices. Pools are parsed from compact spec strings — "v100,k80x2" is one
// V100 next to two K80s — and every name error enumerates the known devices,
// the same UX as the model/baseline registries.
//
// The pool itself is pure description; src/place/placer.hpp decides which
// device class serves which (model, batch) configuration and src/serve routes
// batches across pool workers.

#include <cstdint>
#include <string>
#include <vector>

#include "sim/device.hpp"

namespace ios {

/// Host interconnect crossed by a tensor moving between two pool devices
/// (PCIe-style): a fixed per-transfer setup latency plus bytes / bandwidth.
struct InterconnectSpec {
  double latency_us = 10.0;      ///< DMA setup + host round trip
  double bandwidth_gbps = 12.0;  ///< effective PCIe 3.0 x16 throughput

  /// Time to move `bytes` between two devices, microseconds.
  double transfer_us(std::int64_t bytes) const {
    // GB/s = 1e3 bytes/us (same convention as DeviceSpec::bytes_per_us).
    return latency_us + static_cast<double>(bytes) / (bandwidth_gbps * 1e3);
  }
};

/// Levels of a hierarchical fleet interconnect, innermost first. A tensor
/// moving between two fleet devices crosses the link of the *outermost*
/// level at which the endpoints differ: two devices in one node share the
/// host PCIe fabric, two nodes in one rack talk over the node NIC, and two
/// racks cross the datacenter network (see src/fleet/topology.hpp for the
/// device -> node -> rack topology itself).
enum class LinkLevel { kIntraNode = 0, kCrossNode = 1, kCrossRack = 2 };

/// Printable name of a link level ("intra-node", "cross-node", "cross-rack").
const char* link_level_name(LinkLevel level);

/// Per-level interconnects of a hierarchical fleet — PR 5's flat
/// InterconnectSpec transfer model, extended with one spec per topology
/// level. Defaults model a PCIe 3.0 x16 host fabric, an RDMA-class node NIC,
/// and an oversubscribed cross-rack network: every level outward is strictly
/// worse in both setup latency and bandwidth.
struct InterconnectHierarchy {
  InterconnectSpec intra_node{10.0, 12.0};  ///< host PCIe between two devices
  InterconnectSpec cross_node{25.0, 10.0};  ///< NIC between two rack nodes
  InterconnectSpec cross_rack{80.0, 5.0};   ///< datacenter fabric across racks

  /// The spec of one level.
  const InterconnectSpec& at(LinkLevel level) const {
    switch (level) {
      case LinkLevel::kIntraNode: return intra_node;
      case LinkLevel::kCrossNode: return cross_node;
      case LinkLevel::kCrossRack: return cross_rack;
    }
    return intra_node;  // unreachable; keeps -Wreturn-type quiet
  }
};

/// One device class of a pool: a spec plus how many identical instances.
struct DeviceClass {
  DeviceSpec spec;  ///< the simulated device every instance runs
  int count = 1;    ///< identical instances of it in the pool
};

/// A heterogeneous set of simulated devices: device classes in declaration
/// order (duplicate classes merged by pool_from_spec) plus the interconnect
/// between them. An empty pool means "single configured device" to the
/// layers that accept both (OptimizationRequest, ServerOptions).
struct DevicePool {
  /// Device classes in declaration order (pool_from_spec merges duplicates).
  std::vector<DeviceClass> classes;
  /// The host link crossed by cross-device transfers within this pool.
  InterconnectSpec interconnect{};

  /// True when the pool describes no devices ("use the single configured
  /// device" to layers accepting both).
  bool empty() const { return classes.empty(); }
  /// Number of distinct device classes.
  int num_classes() const { return static_cast<int>(classes.size()); }

  /// Total device instances over all classes.
  int total_devices() const {
    int n = 0;
    for (const DeviceClass& c : classes) n += c.count;
    return n;
  }

  /// The canonical spec string ("p100,1080tix2"): short names, class order,
  /// counts > 1 as an x-suffix. pool_from_spec round-trips through this.
  std::string spec_string() const;

  /// Throws std::invalid_argument when the pool is empty or a class count
  /// is < 1. Called by every pool-consuming entry point.
  void validate() const;
};

/// Parses one "<name>[x<count>]" device token ("v100", "k80x2") into a
/// DeviceClass. Throws std::invalid_argument on a zero or negative count —
/// naming the offending token — and on an unknown device name (enumerating
/// all known devices). Shared by pool_from_spec and the hierarchical fleet
/// parser (src/fleet/topology.hpp), so both report identical errors.
DeviceClass device_class_from_token(const std::string& token);

/// Parses "v100,k80x2" into a DevicePool: comma-separated device names
/// (short or full, see device_names()), each optionally suffixed with
/// "x<count>". Duplicate classes merge their counts, keeping first-seen
/// order. Throws std::invalid_argument on an empty spec, a malformed count
/// (zero, negative, or beyond the per-class cap — the error names the bad
/// token), or an unknown device name (enumerating all known devices).
DevicePool pool_from_spec(const std::string& spec);

}  // namespace ios
