#include "place/pool.hpp"

#include <cctype>
#include <stdexcept>

#include "util/names.hpp"

namespace ios {

std::string DevicePool::spec_string() const {
  std::string spec;
  for (const DeviceClass& c : classes) {
    if (!spec.empty()) spec += ',';
    spec += device_short_name(c.spec.name);
    if (c.count != 1) spec += 'x' + std::to_string(c.count);
  }
  return spec;
}

void DevicePool::validate() const {
  if (classes.empty()) {
    throw std::invalid_argument("device pool is empty");
  }
  for (const DeviceClass& c : classes) {
    if (c.count < 1) {
      throw std::invalid_argument("device pool: count for '" + c.spec.name +
                                  "' must be >= 1");
    }
  }
}

const char* link_level_name(LinkLevel level) {
  switch (level) {
    case LinkLevel::kIntraNode: return "intra-node";
    case LinkLevel::kCrossNode: return "cross-node";
    case LinkLevel::kCrossRack: return "cross-rack";
  }
  return "intra-node";  // unreachable; keeps -Wreturn-type quiet
}

DeviceClass device_class_from_token(const std::string& token) {
  // <name>[x<count>]: the count suffix starts at the last 'x' that is
  // followed only by digits, optionally signed ("1080ti" has no such
  // suffix, "k80x2" and the rejected "k80x-1" do).
  std::string name = token;
  int count = 1;
  const std::size_t x = token.rfind('x');
  if (x != std::string::npos && x + 1 < token.size()) {
    std::size_t digit_begin = x + 1;
    const bool negative = token[digit_begin] == '-';
    if (negative) ++digit_begin;
    bool digits = digit_begin < token.size();
    for (std::size_t i = digit_begin; i < token.size(); ++i) {
      digits = digits && std::isdigit(static_cast<unsigned char>(token[i]));
    }
    if (digits) {
      if (negative) {
        // "k80x-1" must be the count error naming the token, not a
        // baffling unknown-device lookup of the literal string.
        throw std::invalid_argument("device pool: count must be >= 1 in '" +
                                    token + "'");
      }
      name = token.substr(0, x);
      // Bounded parse: stoi would throw std::out_of_range (breaking the
      // invalid_argument contract) and a parseable-but-huge count would
      // overflow total_devices() and the server's worker fleet.
      constexpr int kMaxClassCount = 4096;
      try {
        count = std::stoi(token.substr(x + 1));
      } catch (const std::out_of_range&) {
        count = kMaxClassCount + 1;
      }
      if (count < 1) {
        throw std::invalid_argument("device pool: count must be >= 1 in '" +
                                    token + "'");
      }
      if (count > kMaxClassCount) {
        throw std::invalid_argument(
            "device pool: count in '" + token + "' exceeds the limit of " +
            std::to_string(kMaxClassCount) + " devices per class");
      }
    }
  }
  // Throws the enumerating unknown-device message on a bad name.
  return DeviceClass{device_by_name(name), count};
}

DevicePool pool_from_spec(const std::string& spec) {
  DevicePool pool;
  for (const std::string& token : split_csv(spec)) {
    const DeviceClass parsed = device_class_from_token(token);
    bool merged = false;
    for (DeviceClass& c : pool.classes) {
      if (c.spec.name == parsed.spec.name) {
        c.count += parsed.count;
        merged = true;
        break;
      }
    }
    if (!merged) pool.classes.push_back(parsed);
  }
  if (pool.classes.empty()) {
    // Enumerate like every other unknown-name path (util/names.hpp): an
    // empty or all-commas --devices spec gets the same one-round-trip fix
    // as a typo'd device name.
    throw std::invalid_argument("device pool spec '" + spec +
                                "' names no devices; " +
                                known_names_list("device", device_names()));
  }
  return pool;
}

}  // namespace ios
