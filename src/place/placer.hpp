#pragma once
// ios::Placer — placement of a multi-model workload across a heterogeneous
// DevicePool. IOS (the paper) finds the best schedule for one
// (model, device, batch) point; the Placer is the layer above: it reuses the
// DP scheduler (through the ios::Optimizer facade, so the recipe cache and
// profiling database apply) to optimize every workload configuration *per
// device class*, then builds a PlacementPlan that assigns each configuration
// to the class minimizing its predicted completion time under the load the
// plan has already committed — the classic heterogeneous-makespan greedy,
// deterministic for a fixed request.
//
// Large models may additionally be *pipeline-split* across two device
// classes at a block-partition boundary: blocks [0, cut) run on one class,
// blocks [cut, n) on another, and the activation tensors crossing the cut
// pay the pool interconnect's transfer cost. A split is chosen only when its
// end-to-end latency (first segment + transfer + second segment) strictly
// beats the best single-device latency — which happens when the two classes
// win different halves of the network (e.g. a bandwidth-bound stem on an
// HBM2 card, a compute-bound tail on a GDDR card).

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "place/pool.hpp"
#include "util/json.hpp"

namespace ios {

/// One workload configuration: a zoo model at a batch size, with the
/// fraction of pool traffic it represents (weights are relative, any
/// positive scale).
struct WorkloadItem {
  std::string model;    ///< zoo model name (a models::registry() key)
  int batch = 1;        ///< batch size the configuration serves
  double weight = 1.0;  ///< relative share of pool traffic (> 0)
};

/// What to place: the pool, the workload, and the search/profiling settings
/// forwarded to every per-device optimization.
struct PlacementRequest {
  DevicePool pool;                     ///< the heterogeneous fleet
  std::vector<WorkloadItem> workload;  ///< configurations to place
  SchedulerOptions options{};          ///< DP-search settings per device
  ProfilingProtocol protocol{};        ///< profiling protocol per device
  /// Persistable profiling database shared by every per-device search (see
  /// OptimizationRequest::profile_db).
  std::string profile_db;
  /// Consider cross-device pipeline splits at block-partition boundaries.
  bool allow_splits = true;

  /// The single-configuration placement request an OptimizationRequest with
  /// a non-empty pool describes: workload = {model, batch, weight 1}.
  static PlacementRequest from(const OptimizationRequest& request);
};

/// One (workload item, device class) optimization product.
struct DeviceRecipe {
  std::string model;     ///< zoo model of the workload item
  int batch = 1;         ///< batch size of the workload item
  std::string device;    ///< canonical device name
  double latency_us = 0; ///< IOS schedule latency on that device
  Recipe recipe;         ///< persistable schedule (Optimizer::save)
  SchedulerStats stats;  ///< DP statistics of the search that produced it
};

/// A cross-device pipeline split of one configuration: blocks [0, cut) on
/// `first_device`, blocks [cut, n) on `second_device`, activations crossing
/// the cut transferred over the pool interconnect.
struct PipelineSplit {
  std::string first_device;   ///< class running blocks [0, cut)
  std::string second_device;  ///< class running blocks [cut, n)
  int cut_block = 0;        ///< first block of the second segment
  std::int64_t cut_bytes = 0; ///< activation bytes crossing the cut
  double first_us = 0;      ///< first-segment latency on first_device
  double transfer_us = 0;   ///< interconnect cost for cut_bytes
  double second_us = 0;     ///< second-segment latency on second_device
  double latency_us = 0;    ///< first + transfer + second
};

/// Where one workload item goes: a device class (or a pipeline split) plus
/// the predicted per-batch service latency there.
struct Assignment {
  std::string model;         ///< zoo model of the workload item
  int batch = 1;             ///< batch size of the workload item
  double weight = 1.0;       ///< the item's traffic weight, echoed back
  std::string device;        ///< chosen class ("a|b" display for splits)
  double service_us = 0;     ///< predicted per-batch latency of the choice
  double best_single_us = 0; ///< best single-device latency (== service_us
                             ///< unless a split won)
  std::optional<PipelineSplit> split;  ///< set when a pipeline split won
};

/// Predicted load of one device class under the plan.
struct ClassLoad {
  std::string device;     ///< canonical device name of the class
  int count = 1;          ///< instances of the class in the pool
  double load_us = 0;     ///< committed weighted service time
  double utilization = 0; ///< (load / count) / plan makespan
};

/// The routing plan: one assignment per workload item (request order) and
/// the per-class load picture.
struct PlacementPlan {
  std::vector<Assignment> assignments;  ///< one per workload item, in order
  std::vector<ClassLoad> loads;         ///< per device class, pool order
  /// Bottleneck per-instance load — the plan's predicted steady-state cycle
  /// time per unit of workload weight.
  double makespan_us = 0;
  /// Sum of weight * service latency over the workload (the latency term
  /// the greedy trades against the load term).
  double weighted_latency_us = 0;
};

/// Everything Placer::place produced: the per-(item, class) recipe grid in
/// (item-major, class-minor) order plus the plan and the optimization cost
/// counters.
struct PlacementResult {
  std::vector<DeviceRecipe> recipes;  ///< the per-(item, class) grid
  PlacementPlan plan;                 ///< the routing plan over the grid
  std::int64_t optimizations = 0;  ///< Optimizer runs that missed its cache
  std::int64_t cache_hits = 0;     ///< Optimizer runs served from its cache
  std::int64_t measurements = 0;   ///< cost-model profiles across all runs

  /// The grid entry for (model, batch, device), or nullptr.
  const DeviceRecipe* recipe_for(const std::string& model, int batch,
                                 const std::string& device) const;
};

/// The placement engine. Stateless apart from the Optimizer it reuses: every
/// per-device search goes through Optimizer::optimize, so repeated place()
/// calls (or a Placer sharing a caller's Optimizer) re-search nothing.
class Placer {
 public:
  /// A placer with its own Optimizer (default recipe-cache capacity).
  Placer();
  /// A placer reusing a caller-owned Optimizer (and its recipe cache). The
  /// optimizer must outlive the placer.
  explicit Placer(Optimizer& optimizer);

  /// Optimizes every workload item for every pool device class and returns
  /// the recipes plus the placement plan. Deterministic: identical requests
  /// yield identical plans. Throws std::invalid_argument on an empty pool
  /// or workload, non-positive weights/batches, and unknown model or device
  /// names (enumerating the known names).
  PlacementResult place(const PlacementRequest& request);

  /// Places an OptimizationRequest with a non-empty pool: single-item
  /// workload {model, batch}, per-device recipes + plan in one call.
  PlacementResult place(const OptimizationRequest& request);

 private:
  Optimizer own_;
  Optimizer& optimizer_;
};

/// Machine-readable form of a placement result (the plan plus per-recipe
/// latencies, not the schedules themselves) — what `ios_opt place --json`
/// and bench_placement emit.
JsonValue placement_to_json(const PlacementResult& result);

}  // namespace ios
