#include "fleet/failure.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ios::fleet {

FailureInjector::FailureInjector(const FailureSpec& spec) : rng_(spec.seed) {
  if (!spec.schedule.empty()) {
    if (!std::is_sorted(spec.schedule.begin(), spec.schedule.end(),
                        [](const KillEvent& a, const KillEvent& b) {
                          return a.time_us < b.time_us;
                        })) {
      throw std::invalid_argument(
          "failure spec: the scripted schedule must be sorted by time");
    }
    schedule_ = spec.schedule;
    return;
  }
  if (spec.max_kills < 0) {
    throw std::invalid_argument("failure spec: max_kills must be >= 0");
  }
  if (spec.max_kills > 0 && !(spec.mean_time_between_kills_us > 0)) {
    throw std::invalid_argument(
        "failure spec: mean_time_between_kills_us must be > 0");
  }
  // Fix the kill times up front: a Poisson process with exponential gaps.
  // Drawing them all now keeps the victim draws at fire time independent of
  // how many gaps were consumed, which keeps scripted and seeded runs on
  // the same Rng discipline.
  double t = spec.first_kill_at_us;
  for (int k = 0; k < spec.max_kills; ++k) {
    t += -std::log(1.0 - rng_.uniform()) * spec.mean_time_between_kills_us;
    schedule_.push_back(KillEvent{t, -1});
  }
}

double FailureInjector::next_kill_us() const {
  if (fired_ >= static_cast<int>(schedule_.size())) {
    return std::numeric_limits<double>::infinity();
  }
  return schedule_[static_cast<std::size_t>(fired_)].time_us;
}

int FailureInjector::fire(const std::vector<int>& alive) {
  if (fired_ >= static_cast<int>(schedule_.size())) {
    throw std::logic_error("failure injector: no kill pending");
  }
  if (alive.empty()) {
    throw std::invalid_argument(
        "failure injector: no alive workers to kill");
  }
  const KillEvent& event = schedule_[static_cast<std::size_t>(fired_)];
  int victim = event.worker;
  if (victim < 0) {
    victim = alive[static_cast<std::size_t>(
        rng_.uniform_int(static_cast<int>(alive.size())))];
  } else if (std::find(alive.begin(), alive.end(), victim) == alive.end()) {
    throw std::invalid_argument(
        "failure injector: scripted victim " + std::to_string(victim) +
        " is not alive");
  }
  ++fired_;
  return victim;
}

}  // namespace ios::fleet
