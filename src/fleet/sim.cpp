#include "fleet/sim.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>
#include <utility>

#include "util/stats.hpp"

namespace ios::fleet {

namespace {

serve::ServerOptions engine_options(const FleetSimOptions& options) {
  serve::ServerOptions server;
  server.pool = options.topology.pool;
  server.batching = options.batching;
  server.scheduler = options.scheduler;
  server.protocol = options.protocol;
  server.cache = options.cache;
  server.profile_db = options.profile_db;
  return server;
}

}  // namespace

FleetSimulator::FleetSimulator(FleetSimOptions options)
    : options_(std::move(options)),
      planner_(optimizer_),
      placer_(optimizer_),
      engine_(engine_options(options_), &clock_) {
  if (options_.topology.devices.empty()) {
    throw std::invalid_argument("fleet sim: the topology has no devices");
  }
}

const FleetPlan& FleetSimulator::plan() {
  if (!plan_) {
    if (options_.workload.empty()) {
      throw std::invalid_argument("fleet sim: no workload to plan");
    }
    FleetPlanRequest request;
    request.topology = options_.topology;
    request.workload = options_.workload;
    request.options = options_.scheduler;
    request.protocol = options_.protocol;
    request.profile_db = options_.profile_db;
    request.allow_splits = false;
    request.replicas = options_.replicas;
    plan_ = planner_.plan(request);
  }
  return *plan_;
}

FleetSimResult FleetSimulator::run(const serve::Trace& trace) {
  const auto wall_start = std::chrono::steady_clock::now();
  constexpr double kInf = std::numeric_limits<double>::infinity();
  engine_.reset();
  clock_.reset();

  const std::size_t n = trace.requests.size();
  if (options_.prewarm && n > 0) {
    std::vector<std::string> models;
    for (const serve::TraceRequest& r : trace.requests) {
      if (std::find(models.begin(), models.end(), r.model) == models.end()) {
        models.push_back(r.model);
      }
    }
    engine_.prewarm(models, options_.prewarm_threads);
  }

  FailureInjector injector(options_.failures);
  FleetStats stats;

  // Per original request id: the latest predicted completion (-1 = pending)
  // and the kill that last requeued it (-1 = never requeued).
  std::vector<double> completion(n, -1.0);
  std::vector<int> requeue_event(n, -1);
  std::vector<double> kill_times;

  /// A formed batch whose predicted execution window is still open — what a
  /// kill can interrupt. The engine forgets batch membership on return, so
  /// the simulator is the system of record for requeueing.
  struct Outstanding {
    int worker = 0;
    int batch_id = 0;
    double start_us = 0;
    double completion_us = 0;
    std::vector<serve::EngineRequest> members;
  };
  std::vector<Outstanding> outstanding;

  const auto collect = [&](std::vector<serve::EngineBatch>&& batches) {
    for (serve::EngineBatch& b : batches) {
      ++stats.batches;
      for (const serve::EngineRequest& m : b.members) {
        completion[static_cast<std::size_t>(m.id)] = b.record.completion_us;
      }
      outstanding.push_back(Outstanding{b.record.worker, b.record.id,
                                        b.record.start_us,
                                        b.record.completion_us,
                                        std::move(b.members)});
    }
  };

  // The DES loop of serve/server.cpp plus a third event kind. Order at one
  // instant: deadlines strictly before arrivals, arrivals win exact
  // arrival/deadline and arrival/kill ties, deadlines win deadline/kill
  // ties, kills last — a kill never preempts work already due at its time.
  std::size_t next = 0;
  while (true) {
    const double t_dl = engine_.next_deadline_us();
    const double t_arr = next < n ? trace.requests[next].arrival_us : kInf;
    double t_kill = injector.next_kill_us();
    if (t_kill < kInf) {
      // Spare the last alive worker (the lost_requests == 0 invariant), and
      // skip kills past the end of the run: with nothing arriving, queued,
      // or executing beyond the kill time, firing could change no outcome.
      bool live_batch = false;
      for (const Outstanding& o : outstanding) {
        if (o.completion_us > t_kill) {
          live_batch = true;
          break;
        }
      }
      const bool terminal = next >= n && engine_.queued() == 0 && !live_batch;
      if (engine_.alive_workers() <= 1 || terminal) t_kill = kInf;
    }
    if (t_dl == kInf && t_arr == kInf && t_kill == kInf) break;

    if (t_dl < t_arr && t_dl <= t_kill) {
      clock_.advance_to(t_dl);
      collect(engine_.poll());
      continue;
    }
    if (t_arr <= t_kill && t_arr < kInf) {
      clock_.advance_to(t_arr);
      collect(engine_.submit(static_cast<std::int64_t>(next),
                             trace.requests[next].model));
      ++next;
      continue;
    }

    // ---- kill ----
    const double t = t_kill;
    clock_.advance_to(t);
    std::vector<int> alive;
    const int total = options_.topology.total_devices();
    for (int w = 0; w < total; ++w) {
      if (engine_.worker_alive(w)) alive.push_back(w);
    }
    const int victim = injector.fire(alive);
    engine_.kill_worker(victim);
    const int kill_index = static_cast<int>(kill_times.size());
    kill_times.push_back(t);
    ++stats.failures;

    // Retire batches that finished by now; batches open on the victim are
    // interrupted and their members requeued in deterministic order
    // (dispatch order, then batch id; members keep arrival order).
    std::vector<Outstanding> interrupted;
    std::vector<Outstanding> keep;
    for (Outstanding& o : outstanding) {
      if (o.completion_us <= t) continue;
      (o.worker == victim ? interrupted : keep).push_back(std::move(o));
    }
    outstanding = std::move(keep);
    std::sort(interrupted.begin(), interrupted.end(),
              [](const Outstanding& a, const Outstanding& b) {
                if (a.start_us != b.start_us) return a.start_us < b.start_us;
                return a.batch_id < b.batch_id;
              });
    for (const Outstanding& o : interrupted) {
      ++stats.killed_batches;
      for (const serve::EngineRequest& m : o.members) {
        completion[static_cast<std::size_t>(m.id)] = -1.0;
        requeue_event[static_cast<std::size_t>(m.id)] = kill_index;
        ++stats.rerouted_requests;
        collect(engine_.submit(m.id, m.model));
      }
    }

    // A wiped-out class changes what the fleet can serve — re-plan the
    // workload over the survivors. Warm Optimizer => pure cache hits.
    const std::size_t cls = static_cast<std::size_t>(
        engine_.worker_class()[static_cast<std::size_t>(victim)]);
    if (engine_.alive_in_class(cls) == 0) {
      ++stats.replans;
      if (!options_.workload.empty()) {
        PlacementRequest replan;
        const std::vector<DeviceClass>& classes =
            options_.topology.pool.classes;
        for (std::size_t c = 0; c < classes.size(); ++c) {
          const int alive_count = engine_.alive_in_class(c);
          if (alive_count > 0) {
            replan.pool.classes.push_back(
                DeviceClass{classes[c].spec, alive_count});
          }
        }
        replan.workload = options_.workload;
        replan.options = options_.scheduler;
        replan.protocol = options_.protocol;
        replan.profile_db = options_.profile_db;
        replan.allow_splits = false;
        const PlacementResult result = placer_.place(replan);
        stats.replan_optimizations += result.optimizations;
        stats.replan_cache_hits += result.cache_hits;
      }
    }
  }

  // ---- summarize (virtual-clock quantities only) ----
  stats.requests = static_cast<std::int64_t>(n);
  FleetSimResult result;
  result.latencies.reserve(n);
  std::vector<double> completed;
  completed.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    if (completion[i] < 0) {
      ++stats.lost_requests;
      result.latencies.push_back(-1.0);
      continue;
    }
    const double latency = completion[i] - trace.requests[i].arrival_us;
    result.latencies.push_back(latency);
    completed.push_back(latency);
    stats.makespan_us = std::max(stats.makespan_us, completion[i]);
  }
  if (!completed.empty()) {
    std::vector<double> sorted = completed;
    std::sort(sorted.begin(), sorted.end());
    stats.mean_latency_us = mean(sorted);
    stats.p50_latency_us = percentile_sorted(sorted, 50);
    stats.p95_latency_us = percentile_sorted(sorted, 95);
    stats.p99_latency_us = percentile_sorted(sorted, 99);
    stats.max_latency_us = sorted.back();
  }

  std::vector<double> recoveries;
  for (std::size_t k = 0; k < kill_times.size(); ++k) {
    double last = -1.0;
    for (std::size_t i = 0; i < n; ++i) {
      if (requeue_event[i] == static_cast<int>(k) && completion[i] >= 0) {
        last = std::max(last, completion[i] - kill_times[k]);
      }
    }
    if (last >= 0) recoveries.push_back(last);
  }
  if (!recoveries.empty()) {
    stats.mean_recovery_us = mean(recoveries);
    stats.max_recovery_us = max_of(recoveries);
  }

  result.stats = stats;
  result.run_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return result;
}

JsonValue fleet_stats_to_json(const FleetStats& stats) {
  JsonValue v = JsonValue::object();
  v.set("requests", stats.requests);
  v.set("batches", stats.batches);
  v.set("failures", stats.failures);
  v.set("killed_batches", stats.killed_batches);
  v.set("rerouted_requests", stats.rerouted_requests);
  v.set("replans", stats.replans);
  v.set("replan_optimizations", stats.replan_optimizations);
  v.set("replan_cache_hits", stats.replan_cache_hits);
  v.set("lost_requests", stats.lost_requests);
  v.set("makespan_us", stats.makespan_us);
  v.set("mean_latency_us", stats.mean_latency_us);
  v.set("p50_latency_us", stats.p50_latency_us);
  v.set("p95_latency_us", stats.p95_latency_us);
  v.set("p99_latency_us", stats.p99_latency_us);
  v.set("max_latency_us", stats.max_latency_us);
  v.set("mean_recovery_us", stats.mean_recovery_us);
  v.set("max_recovery_us", stats.max_recovery_us);
  return v;
}

}  // namespace ios::fleet
