#include "fleet/topology.hpp"

#include <cctype>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "sim/device.hpp"
#include "util/names.hpp"

namespace ios::fleet {

namespace {

/// The fleet-wide device cap, matching pool_from_spec's per-class cap: specs
/// beyond it are configuration mistakes, not simulations we can serve.
constexpr int kMaxFleetDevices = 4096;

/// Pre-expansion node: a multiplicity plus its device tokens.
struct NodeSpec {
  int count = 1;
  std::vector<DeviceClass> devices;
};

/// Pre-expansion rack: a multiplicity plus its nodes.
struct RackSpec {
  int count = 1;
  std::vector<NodeSpec> nodes;
};

/// Recursive-descent parser over the whitespace-stripped spec. Commas
/// separate items at every level; '{'/'}' brace level contents.
class Parser {
 public:
  explicit Parser(const std::string& spec) {
    for (const char c : spec) {
      if (!std::isspace(static_cast<unsigned char>(c))) s_ += c;
    }
  }

  std::vector<RackSpec> parse() {
    std::vector<RackSpec> racks;
    std::vector<NodeSpec> loose_nodes;
    NodeSpec loose_devices;
    while (pos_ < s_.size()) {
      if (s_[pos_] == ',') {
        ++pos_;  // empty segments are dropped, like split_csv
        continue;
      }
      if (at_level("rack")) {
        racks.push_back(parse_rack());
      } else if (at_level("node")) {
        loose_nodes.push_back(parse_node());
      } else {
        loose_devices.devices.push_back(device_class_from_token(next_token()));
      }
      expect_separator("},");
    }
    // Loose devices form one implicit node; loose nodes one implicit rack.
    if (!loose_devices.devices.empty()) {
      loose_nodes.push_back(std::move(loose_devices));
    }
    if (!loose_nodes.empty()) {
      racks.push_back(RackSpec{1, std::move(loose_nodes)});
    }
    return racks;
  }

 private:
  /// True when the upcoming characters are "<level>:".
  bool at_level(const char* level) const {
    const std::size_t len = std::strlen(level);
    return s_.compare(pos_, len, level) == 0 && pos_ + len < s_.size() &&
           s_[pos_ + len] == ':';
  }

  RackSpec parse_rack() {
    RackSpec rack;
    rack.count = parse_count("rack");
    expect('{', "after 'rack:<count>'");
    NodeSpec loose;
    while (pos_ < s_.size() && s_[pos_] != '}') {
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (at_level("rack")) {
        throw std::invalid_argument(
            "fleet spec: 'rack' may not nest inside a rack");
      }
      if (at_level("node")) {
        rack.nodes.push_back(parse_node());
      } else {
        loose.devices.push_back(device_class_from_token(next_token()));
      }
      expect_separator("},");
    }
    expect('}', "to close the rack group");
    if (!loose.devices.empty()) rack.nodes.push_back(std::move(loose));
    if (rack.nodes.empty()) {
      throw std::invalid_argument("fleet spec: a rack group names no devices");
    }
    return rack;
  }

  NodeSpec parse_node() {
    NodeSpec node;
    node.count = parse_count("node");
    expect('{', "after 'node:<count>'");
    while (pos_ < s_.size() && s_[pos_] != '}') {
      if (s_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (at_level("rack") || at_level("node")) {
        throw std::invalid_argument(
            "fleet spec: a node group may only contain device tokens");
      }
      node.devices.push_back(device_class_from_token(next_token()));
      expect_separator("},");
    }
    expect('}', "to close the node group");
    if (node.devices.empty()) {
      throw std::invalid_argument("fleet spec: a node group names no devices");
    }
    return node;
  }

  /// Parses the "<level>:<count>" multiplicity the cursor sits on.
  int parse_count(const char* level) {
    pos_ += std::strlen(level) + 1;  // the level name and its ':'
    const std::size_t start = pos_;
    if (pos_ < s_.size() && (s_[pos_] == '-' || s_[pos_] == '+')) ++pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    const std::string digits = s_.substr(start, pos_ - start);
    const std::string token = std::string(level) + ':' + digits;
    if (digits.empty() || digits == "-" || digits == "+") {
      throw std::invalid_argument(std::string("fleet spec: expected a count "
                                              "after '") +
                                  level + ":'");
    }
    long value = 0;
    try {
      value = std::stol(digits);
    } catch (const std::out_of_range&) {
      value = kMaxFleetDevices + 1;
    }
    if (value < 1) {
      throw std::invalid_argument(
          "fleet spec: multiplicity must be >= 1 in '" + token + "'");
    }
    if (value > kMaxFleetDevices) {
      throw std::invalid_argument("fleet spec: multiplicity in '" + token +
                                  "' exceeds the limit of " +
                                  std::to_string(kMaxFleetDevices));
    }
    return static_cast<int>(value);
  }

  /// Reads one device token (everything up to a separator or brace).
  std::string next_token() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() && s_[pos_] != ',' && s_[pos_] != '{' &&
           s_[pos_] != '}') {
      ++pos_;
    }
    const std::string token = s_.substr(start, pos_ - start);
    if (token.empty()) {
      throw std::invalid_argument(std::string("fleet spec: unexpected '") +
                                  s_[pos_] + "'");
    }
    if (token.find(':') != std::string::npos) {
      throw std::invalid_argument(
          "fleet spec: unknown level '" + token.substr(0, token.find(':')) +
          "' in '" + token + "' (expected rack or node)");
    }
    return token;
  }

  void expect(char c, const char* where) {
    if (pos_ >= s_.size() || s_[pos_] != c) {
      throw std::invalid_argument(std::string("fleet spec: expected '") + c +
                                  "' " + where);
    }
    ++pos_;
  }

  /// After an item, the next character must be a separator (or the end).
  void expect_separator(const char* allowed) {
    if (pos_ < s_.size() && std::strchr(allowed, s_[pos_]) == nullptr) {
      throw std::invalid_argument(std::string("fleet spec: expected ',' "
                                              "before '") +
                                  s_[pos_] + "'");
    }
  }

  std::string s_;
  std::size_t pos_ = 0;
};

}  // namespace

LinkLevel FleetTopology::level_between(int a, int b) const {
  const FleetDevice& da = devices.at(static_cast<std::size_t>(a));
  const FleetDevice& db = devices.at(static_cast<std::size_t>(b));
  if (da.node == db.node) return LinkLevel::kIntraNode;
  if (da.rack == db.rack) return LinkLevel::kCrossNode;
  return LinkLevel::kCrossRack;
}

const InterconnectSpec& FleetTopology::link_between(int a, int b) const {
  return links.at(level_between(a, b));
}

FleetTopology fleet_from_spec(const std::string& spec,
                              const InterconnectHierarchy& links) {
  const std::vector<RackSpec> racks = Parser(spec).parse();
  if (racks.empty()) {
    throw std::invalid_argument("fleet spec '" + spec +
                                "' names no devices; " +
                                known_names_list("device", device_names()));
  }

  // Bound the fleet before expanding: rack:4096{node:4096{v100}} must be an
  // error message, not a 16M-element allocation.
  std::int64_t total = 0;
  for (const RackSpec& rack : racks) {
    std::int64_t per_rack = 0;
    for (const NodeSpec& node : rack.nodes) {
      std::int64_t per_node = 0;
      for (const DeviceClass& dc : node.devices) per_node += dc.count;
      per_rack += static_cast<std::int64_t>(node.count) * per_node;
    }
    total += static_cast<std::int64_t>(rack.count) * per_rack;
  }
  if (total > kMaxFleetDevices) {
    throw std::invalid_argument(
        "fleet spec describes " + std::to_string(total) +
        " devices, beyond the limit of " + std::to_string(kMaxFleetDevices));
  }

  FleetTopology topology;
  topology.links = links;
  topology.spec = spec;
  topology.pool.interconnect = links.intra_node;

  // Expand the multiplicities into device instances with global node/rack
  // ids (declaration order), merging pool classes first-seen like
  // pool_from_spec.
  struct Instance {
    int class_index, node, rack;
  };
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(total));
  int node_id = 0;
  int rack_id = 0;
  for (const RackSpec& rack : racks) {
    for (int rc = 0; rc < rack.count; ++rc) {
      const int this_rack = rack_id++;
      for (const NodeSpec& node : rack.nodes) {
        for (int nc = 0; nc < node.count; ++nc) {
          const int this_node = node_id++;
          for (const DeviceClass& dc : node.devices) {
            int class_index = -1;
            for (std::size_t c = 0; c < topology.pool.classes.size(); ++c) {
              if (topology.pool.classes[c].spec.name == dc.spec.name) {
                class_index = static_cast<int>(c);
                break;
              }
            }
            if (class_index < 0) {
              class_index = static_cast<int>(topology.pool.classes.size());
              topology.pool.classes.push_back(DeviceClass{dc.spec, 0});
            }
            topology.pool.classes[static_cast<std::size_t>(class_index)]
                .count += dc.count;
            for (int k = 0; k < dc.count; ++k) {
              instances.push_back(Instance{class_index, this_node, this_rack});
            }
          }
        }
      }
    }
  }
  topology.num_nodes = node_id;
  topology.num_racks = rack_id;

  // Engine worker order: grouped by pool class, declaration order within a
  // class — exactly how ServingEngine numbers the workers of a pool, so
  // FleetDevice::id == worker index.
  topology.devices.reserve(instances.size());
  for (std::size_t c = 0; c < topology.pool.classes.size(); ++c) {
    for (const Instance& instance : instances) {
      if (instance.class_index != static_cast<int>(c)) continue;
      topology.devices.push_back(
          FleetDevice{static_cast<int>(topology.devices.size()),
                      instance.class_index, instance.node, instance.rack});
    }
  }
  return topology;
}

}  // namespace ios::fleet
