#pragma once
// ios::fleet::FailureInjector — deterministic worker-failure schedules for
// the fleet simulator. Two modes:
//
//   * seeded: kill times follow a Poisson process (exponential gaps from a
//     seeded ios::Rng) and each victim is drawn uniformly from the workers
//     still alive at fire time. Same seed => same kills, bit-identical.
//   * scripted: an explicit KillEvent schedule, for tests that need to
//     wipe out a specific class at a specific virtual time.
//
// The injector owns *when* and *who*; the FleetSimulator owns the
// consequences (requeue, re-route, re-plan).

#include <cstdint>
#include <vector>

#include "util/rng.hpp"

namespace ios::fleet {

/// One scripted kill: a virtual time and a victim worker (or -1 to let the
/// seeded Rng pick among the then-alive workers).
struct KillEvent {
  double time_us = 0;
  int worker = -1;
};

/// Failure model configuration. When `schedule` is non-empty it overrides
/// the seeded Poisson mode entirely.
struct FailureSpec {
  std::uint64_t seed = 1;
  /// Kills to inject in seeded mode (0 disables failures).
  int max_kills = 0;
  /// Mean exponential gap between seeded kills, virtual microseconds.
  double mean_time_between_kills_us = 2e5;
  /// Virtual time before the first seeded kill gap starts.
  double first_kill_at_us = 0;
  /// Scripted schedule; must be sorted by time_us, ascending.
  std::vector<KillEvent> schedule;
};

/// Walks a FailureSpec's kill sequence. Deterministic: the kill times are
/// fixed at construction; only the victim draw consumes Rng state at fire
/// time (so victims depend on who is alive, never on wall time).
class FailureInjector {
 public:
  /// Throws std::invalid_argument on a negative max_kills, a non-positive
  /// mean gap with max_kills > 0, or an unsorted scripted schedule.
  explicit FailureInjector(const FailureSpec& spec);

  /// Virtual time of the next kill, or +infinity when exhausted.
  double next_kill_us() const;

  /// Fires the pending kill and advances to the next one. `alive` is the
  /// ascending list of currently-alive workers; returns the victim (the
  /// scripted worker, or a seeded uniform pick from `alive`). Throws
  /// std::logic_error when exhausted, std::invalid_argument when `alive` is
  /// empty or a scripted victim is not in it.
  int fire(const std::vector<int>& alive);

  int kills_fired() const { return fired_; }

 private:
  std::vector<KillEvent> schedule_;  ///< resolved kill sequence
  int fired_ = 0;
  Rng rng_;
};

}  // namespace ios::fleet
