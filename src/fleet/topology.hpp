#pragma once
// ios::fleet — hierarchical fleet topologies. PR 5's DevicePool describes a
// handful of devices behind one host link; a FleetTopology scales that to
// thousands by arranging device instances into nodes and racks:
//
//   rack:2{node:4{v100x8}}          2 racks x 4 nodes x 8 V100s = 64 devices
//   rack:2{node:2{p100x4,1080tix4}} heterogeneous nodes, 32 devices
//   node:4{v100x8}                  one implicit rack
//   v100x8                          one implicit node in one implicit rack
//
// with one InterconnectSpec per level (place/pool.hpp's
// InterconnectHierarchy): a tensor moving between two devices crosses the
// link of the outermost level at which they differ. The flattened class
// view (`pool`) is exactly what the existing Placer and ServingEngine
// consume — the fleet layers above (planner.hpp, sim.hpp) add placement
// over the hierarchy and failure-injected serving.

#include <string>
#include <vector>

#include "place/pool.hpp"

namespace ios::fleet {

/// One physical device instance of the fleet. `id` doubles as the
/// ServingEngine worker index when the engine runs on `pool` — the engine
/// numbers workers grouped by pool class, and `devices` is built in exactly
/// that order — so a worker death maps straight back to a node and rack.
struct FleetDevice {
  int id = 0;           ///< engine worker index (grouped by pool class)
  int class_index = 0;  ///< index into pool.classes
  int node = 0;         ///< global node id, declaration order
  int rack = 0;         ///< global rack id, declaration order
};

/// A parsed fleet: the flattened device-class pool (what the Placer and the
/// ServingEngine consume), the per-device node/rack coordinates, and the
/// per-level interconnects.
struct FleetTopology {
  /// Flattened device classes (duplicates merged, first-seen order). Its
  /// interconnect is the intra-node link, so single-node consumers of the
  /// pool (the Placer's pipeline splits) price transfers as before.
  DevicePool pool;
  /// The per-level links crossed by cross-device transfers.
  InterconnectHierarchy links;
  /// Every device instance; index == FleetDevice::id == engine worker.
  std::vector<FleetDevice> devices;
  int num_nodes = 0;
  int num_racks = 0;
  /// The spec string this topology was parsed from.
  std::string spec;

  int total_devices() const { return static_cast<int>(devices.size()); }

  /// The outermost level at which devices `a` and `b` differ (kIntraNode
  /// for two devices of one node, including a == b). Indexes are
  /// FleetDevice ids; throws std::out_of_range on a bad id.
  LinkLevel level_between(int a, int b) const;

  /// The interconnect crossed by a tensor moving between devices `a` and
  /// `b` — `links.at(level_between(a, b))`.
  const InterconnectSpec& link_between(int a, int b) const;
};

/// Parses a hierarchical fleet spec. Grammar, comma-separated at every
/// level:
///
///   group  := item (',' item)*
///   item   := 'rack' ':' count '{' group '}'     (top level only)
///           | 'node' ':' count '{' devices '}'   (top level or in a rack)
///           | device-token                        ("v100", "k80x2")
///
/// A multiplicity replicates the braced contents count times. Loose device
/// tokens form one implicit node per enclosing scope; loose nodes at the
/// top level form one implicit rack. Whitespace is ignored. Throws
/// std::invalid_argument on malformed syntax, zero/negative multiplicities
/// (naming the bad token), unknown device names (enumerating the known
/// devices), misplaced levels (a rack inside a rack), an empty spec, or a
/// fleet beyond 4096 devices.
FleetTopology fleet_from_spec(const std::string& spec,
                              const InterconnectHierarchy& links = {});

}  // namespace ios::fleet
