#include "fleet/planner.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <stdexcept>

namespace ios::fleet {

FleetPlanner::FleetPlanner() : placer_(own_) {}

FleetPlanner::FleetPlanner(Optimizer& optimizer) : placer_(optimizer) {}

FleetPlan FleetPlanner::plan(const FleetPlanRequest& request) {
  const auto wall_start = std::chrono::steady_clock::now();
  if (request.topology.devices.empty()) {
    throw std::invalid_argument("fleet plan: the topology has no devices");
  }
  if (request.replicas < 1) {
    throw std::invalid_argument("fleet plan: replicas must be >= 1");
  }

  FleetPlan plan;
  PlacementRequest class_request;
  class_request.pool = request.topology.pool;
  class_request.workload = request.workload;
  class_request.options = request.options;
  class_request.protocol = request.protocol;
  class_request.profile_db = request.profile_db;
  class_request.allow_splits = request.allow_splits;
  plan.placement = placer_.place(class_request);

  // Workers of each class, ascending id (devices are already grouped by
  // class in id order).
  const std::vector<DeviceClass>& classes = request.topology.pool.classes;
  std::vector<std::vector<int>> class_workers(classes.size());
  for (const FleetDevice& device : request.topology.devices) {
    class_workers[static_cast<std::size_t>(device.class_index)].push_back(
        device.id);
  }

  // Anti-affinity greedy: per replica, prefer a node the item does not yet
  // occupy, then a rack it does not occupy, then the least committed load,
  // then the lowest worker id. Deterministic.
  std::vector<double> committed(request.topology.devices.size(), 0.0);
  plan.min_distinct_nodes = std::numeric_limits<int>::max();
  plan.min_distinct_racks = std::numeric_limits<int>::max();
  bool any_replicated = false;
  for (std::size_t i = 0; i < plan.placement.plan.assignments.size(); ++i) {
    const Assignment& assignment = plan.placement.plan.assignments[i];
    // A pipeline split's first segment anchors the replica (its display
    // device "a|b" is not a pool class).
    const std::string& class_name =
        assignment.split ? assignment.split->first_device : assignment.device;
    std::size_t cls = classes.size();
    for (std::size_t c = 0; c < classes.size(); ++c) {
      if (classes[c].spec.name == class_name) {
        cls = c;
        break;
      }
    }
    const std::vector<int>& candidates = class_workers.at(cls);
    const int replicas =
        std::min<int>(request.replicas, static_cast<int>(candidates.size()));

    std::vector<int> chosen;
    std::vector<int> item_nodes, item_racks;  // occupied by this item
    for (int r = 0; r < replicas; ++r) {
      int best = -1;
      int best_node_hits = 0, best_rack_hits = 0;
      double best_load = 0;
      for (const int worker : candidates) {
        if (std::find(chosen.begin(), chosen.end(), worker) != chosen.end()) {
          continue;
        }
        const FleetDevice& device =
            request.topology.devices[static_cast<std::size_t>(worker)];
        const int node_hits = static_cast<int>(
            std::count(item_nodes.begin(), item_nodes.end(), device.node));
        const int rack_hits = static_cast<int>(
            std::count(item_racks.begin(), item_racks.end(), device.rack));
        const double load = committed[static_cast<std::size_t>(worker)];
        const bool better =
            best < 0 || node_hits < best_node_hits ||
            (node_hits == best_node_hits &&
             (rack_hits < best_rack_hits ||
              (rack_hits == best_rack_hits && load < best_load)));
        if (better) {
          best = worker;
          best_node_hits = node_hits;
          best_rack_hits = rack_hits;
          best_load = load;
        }
      }
      const FleetDevice& device =
          request.topology.devices[static_cast<std::size_t>(best)];
      chosen.push_back(best);
      item_nodes.push_back(device.node);
      item_racks.push_back(device.rack);
      committed[static_cast<std::size_t>(best)] +=
          assignment.weight * assignment.service_us / replicas;
      plan.replicas.push_back(ReplicaPlacement{
          assignment.model, assignment.batch, static_cast<int>(i), best,
          device.node, device.rack, classes[cls].spec.name});
    }

    if (replicas >= 2) {
      any_replicated = true;
      std::sort(item_nodes.begin(), item_nodes.end());
      std::sort(item_racks.begin(), item_racks.end());
      const int distinct_nodes = static_cast<int>(
          std::unique(item_nodes.begin(), item_nodes.end()) -
          item_nodes.begin());
      const int distinct_racks = static_cast<int>(
          std::unique(item_racks.begin(), item_racks.end()) -
          item_racks.begin());
      plan.min_distinct_nodes =
          std::min(plan.min_distinct_nodes, distinct_nodes);
      plan.min_distinct_racks =
          std::min(plan.min_distinct_racks, distinct_racks);
    }
  }
  if (!any_replicated) {
    plan.min_distinct_nodes = 0;
    plan.min_distinct_racks = 0;
  }

  plan.plan_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - wall_start)
          .count();
  return plan;
}

JsonValue fleet_plan_to_json(const FleetTopology& topology,
                             const FleetPlan& plan) {
  JsonValue root = JsonValue::object();

  JsonValue topo = JsonValue::object();
  topo.set("spec", topology.spec);
  topo.set("devices", topology.total_devices());
  topo.set("nodes", topology.num_nodes);
  topo.set("racks", topology.num_racks);
  JsonValue classes = JsonValue::array();
  for (const DeviceClass& c : topology.pool.classes) {
    JsonValue entry = JsonValue::object();
    entry.set("device", c.spec.name);
    entry.set("count", c.count);
    classes.push_back(std::move(entry));
  }
  topo.set("classes", std::move(classes));
  root.set("topology", std::move(topo));

  root.set("placement", placement_to_json(plan.placement));

  JsonValue replicas = JsonValue::array();
  for (const ReplicaPlacement& r : plan.replicas) {
    JsonValue entry = JsonValue::object();
    entry.set("model", r.model);
    entry.set("batch", r.batch);
    entry.set("item", r.item);
    entry.set("worker", r.worker);
    entry.set("node", r.node);
    entry.set("rack", r.rack);
    entry.set("device", r.device);
    replicas.push_back(std::move(entry));
  }
  root.set("replicas", std::move(replicas));

  JsonValue spread = JsonValue::object();
  spread.set("min_distinct_nodes", plan.min_distinct_nodes);
  spread.set("min_distinct_racks", plan.min_distinct_racks);
  root.set("spread", std::move(spread));

  root.set("plan_wall_ms", plan.plan_wall_ms);
  return root;
}

}  // namespace ios::fleet
