#pragma once
// ios::fleet::FleetPlanner — placement over a FleetTopology. The existing
// Placer answers "which device *class* should serve each workload item";
// the fleet planner takes its plan and pins each item to concrete device
// *instances* (replicas), spreading the replicas of one item across nodes
// and racks (anti-affinity) so a single node or rack failure cannot take
// every copy of a model down at once. All the per-class optimization goes
// through the shared Optimizer, so planning a 1024-device fleet costs the
// same recipe searches as a 16-device one — only the cheap instance
// assignment scales with fleet size.

#include <string>
#include <vector>

#include "fleet/topology.hpp"
#include "place/placer.hpp"

namespace ios::fleet {

/// What to plan: the fleet, the workload, and the search/profiling settings
/// forwarded to the per-class optimizations (mirrors PlacementRequest).
struct FleetPlanRequest {
  FleetTopology topology;
  std::vector<WorkloadItem> workload;
  SchedulerOptions options{};
  ProfilingProtocol protocol{};
  /// Persistable profiling database shared by the per-class searches.
  std::string profile_db;
  /// Consider cross-device pipeline splits (priced at the intra-node link).
  bool allow_splits = false;
  /// Replicas per workload item, clamped to the item's class population.
  int replicas = 2;
};

/// One replica of one workload item pinned to a device instance.
struct ReplicaPlacement {
  std::string model;   ///< zoo model of the workload item
  int batch = 1;       ///< batch size of the workload item
  int item = 0;        ///< index into the request workload
  int worker = 0;      ///< FleetDevice::id == engine worker index
  int node = 0;        ///< the device's node
  int rack = 0;        ///< the device's rack
  std::string device;  ///< canonical device name of the instance's class
};

/// A fleet plan: the class-level PlacementResult plus the per-item replica
/// pinning and its anti-affinity spread.
struct FleetPlan {
  PlacementResult placement;  ///< the Placer's class-level plan
  /// Replica pins, workload order then replica order (deterministic).
  std::vector<ReplicaPlacement> replicas;
  /// Over items with >= 2 replicas: the minimum number of distinct nodes
  /// (racks) any single item's replicas span. 0 when no item has 2 replicas.
  int min_distinct_nodes = 0;
  int min_distinct_racks = 0;
  /// Wall time of the plan() call (measurement, NOT deterministic — keep it
  /// out of bit-identical comparisons).
  double plan_wall_ms = 0;
};

/// The fleet placement engine. Like Placer, stateless apart from the
/// Optimizer it reuses, so repeated plans re-search nothing.
class FleetPlanner {
 public:
  /// A planner with its own Optimizer (default recipe-cache capacity).
  FleetPlanner();
  /// A planner reusing a caller-owned Optimizer (and its recipe cache).
  explicit FleetPlanner(Optimizer& optimizer);

  /// Places the workload over the fleet: Placer::place on the flattened
  /// pool, then a deterministic greedy that pins each item's replicas to
  /// instances of its chosen class, preferring (1) a node with no replica
  /// of the item, (2) a rack with no replica of the item, (3) the least
  /// committed-load instance, (4) the lowest worker id. Throws
  /// std::invalid_argument on an empty topology or workload and whatever
  /// Placer::place throws; `replicas` < 1 is an error.
  FleetPlan plan(const FleetPlanRequest& request);

 private:
  Optimizer own_;
  Placer placer_;
};

/// Machine-readable form of a fleet plan (topology summary, class plan,
/// replica pins, spread) — what `ios_opt fleet --json` emits.
JsonValue fleet_plan_to_json(const FleetTopology& topology,
                             const FleetPlan& plan);

}  // namespace ios::fleet
