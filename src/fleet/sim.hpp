#pragma once
// ios::fleet::FleetSimulator — failure-injected fleet serving on the
// virtual clock. The DES Server (serve/server.hpp) replays a trace through
// the ServingEngine with two event kinds (arrivals, batching deadlines);
// the fleet simulator adds a third — worker kills from a deterministic
// FailureInjector — and owns the recovery protocol:
//
//   * a kill interrupting an in-flight batch marks the worker dead,
//     requeues every member of the batch (original ids, original models) at
//     the kill time, and lets the engine re-route them to the survivors;
//   * a kill that wipes out the last worker of a device class triggers a
//     re-plan of the workload over the surviving pool — cheap, because the
//     shared Optimizer's recipe cache already holds every configuration
//     (FleetStats::replan_optimizations stays 0 after a warm plan());
//   * the last alive worker is never killed, so every admitted request
//     completes: FleetStats::lost_requests == 0 is the recovery invariant
//     the fleet bench gates on.
//
// Everything runs on the VirtualClock, so a fixed topology, trace, and
// failure spec produce bit-identical FleetStats and per-request latencies
// regardless of host threads or wall time.

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "fleet/failure.hpp"
#include "fleet/planner.hpp"
#include "fleet/topology.hpp"
#include "serve/engine.hpp"

namespace ios::fleet {

/// Everything a fleet simulation needs: the fleet, the serving
/// configuration (mirroring serve::ServerOptions), the workload to plan,
/// and the failure model.
struct FleetSimOptions {
  FleetTopology topology;
  serve::BatchingPolicy batching{};
  SchedulerOptions scheduler{};
  ProfilingProtocol protocol{};
  serve::RecipeCacheOptions cache{};
  /// Persistable profiling database forwarded to every Optimizer run.
  std::string profile_db;
  /// Workload for plan() and for the re-plan after a class wipe-out. May be
  /// empty — the simulator then serves traces without a placement plan.
  std::vector<WorkloadItem> workload;
  /// Replicas per workload item for plan().
  int replicas = 2;
  /// The failure model driving worker kills during run().
  FailureSpec failures{};
  /// Prewarm the recipe cache for a trace's models before the event loop
  /// (wall-clock cost only; simulated results are identical either way).
  bool prewarm = true;
  int prewarm_threads = 1;
};

/// Deterministic aggregates of one fleet run. Every field derives from the
/// virtual clock and the seeded failure schedule — no wall time — so two
/// runs of the same configuration compare bit-identical.
struct FleetStats {
  std::int64_t requests = 0;        ///< requests admitted (and completed)
  std::int64_t batches = 0;         ///< batches formed, killed ones included
  std::int64_t failures = 0;        ///< worker kills fired
  std::int64_t killed_batches = 0;  ///< in-flight batches a kill interrupted
  std::int64_t rerouted_requests = 0;  ///< request requeue events
  std::int64_t replans = 0;         ///< class wipe-outs -> workload re-plans
  std::int64_t replan_optimizations = 0;  ///< Optimizer runs those re-plans
                                          ///< missed (0 when warm)
  std::int64_t replan_cache_hits = 0;     ///< cached recipes they reused
  std::int64_t lost_requests = 0;   ///< admitted but never completed (== 0)
  double makespan_us = 0;           ///< completion time of the last batch
  double mean_latency_us = 0;       ///< completion - ORIGINAL arrival
  double p50_latency_us = 0;
  double p95_latency_us = 0;
  double p99_latency_us = 0;
  double max_latency_us = 0;
  /// Recovery latency of a kill: the last completion among the requests it
  /// requeued, minus the kill time. Mean/max over kills that requeued
  /// anything (0 when none did).
  double mean_recovery_us = 0;
  double max_recovery_us = 0;
};

/// One fleet run: per-request latencies (trace order; completion minus the
/// request's original arrival, requeues included) plus the stats.
struct FleetSimResult {
  std::vector<double> latencies;
  FleetStats stats;
  /// Host wall time of the run() call (measurement, NOT deterministic).
  double run_wall_ms = 0;
};

/// The failure-injected fleet front end over the shared ServingEngine (see
/// the file comment for the event model). Single-threaded like the DES
/// Server: plan() and run() are externally serialized.
class FleetSimulator {
 public:
  /// Throws std::invalid_argument on an empty topology.
  explicit FleetSimulator(FleetSimOptions options);

  /// The fleet plan for `options.workload`, computed on first use through
  /// the simulator's own Optimizer (so run()'s recipe resolutions and any
  /// re-plans reuse its cache). Throws std::invalid_argument when the
  /// workload is empty.
  const FleetPlan& plan();

  /// Replays the trace with the configured failure schedule and returns
  /// per-request latencies plus FleetStats. Deterministic: identical
  /// options and trace yield bit-identical latencies and stats. Callable
  /// repeatedly; each run resets the engine and replays the same failure
  /// spec from its seed.
  FleetSimResult run(const serve::Trace& trace);

  const FleetSimOptions& options() const { return options_; }
  serve::ServingEngine& engine() { return engine_; }

 private:
  FleetSimOptions options_;
  Optimizer optimizer_;
  FleetPlanner planner_;
  Placer placer_;  ///< re-plans after a class wipe-out (shared Optimizer)
  std::optional<FleetPlan> plan_;
  serve::VirtualClock clock_;
  serve::ServingEngine engine_;
};

/// Machine-readable form of a fleet run — what `ios_opt fleet --json` and
/// bench_fleet emit alongside the plan.
JsonValue fleet_stats_to_json(const FleetStats& stats);

}  // namespace ios::fleet
