#include "schedule/schedule.hpp"

#include <algorithm>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "util/hash.hpp"

namespace ios {

const char* stage_strategy_name(StageStrategy s) {
  return s == StageStrategy::kConcurrent ? "concurrent" : "merge";
}

std::uint64_t stage_fingerprint(const Stage& stage) {
  // Tags match the historical CostModel::stage_key seeds, so fingerprints
  // (and the noise streams derived from them) are stable across versions.
  const std::uint64_t tag =
      stage.strategy == StageStrategy::kMerge ? 0x9e37u : 0x51edu;
  return fingerprint_groups(tag, stage.groups);
}

std::vector<OpId> Stage::ops() const {
  std::vector<OpId> out;
  for (const Group& g : groups) {
    out.insert(out.end(), g.ops.begin(), g.ops.end());
  }
  return out;
}

int Stage::num_ops() const {
  int n = 0;
  for (const Group& g : groups) n += static_cast<int>(g.ops.size());
  return n;
}

int Schedule::num_ops() const {
  int n = 0;
  for (const Stage& s : stages) n += s.num_ops();
  return n;
}

std::string Schedule::to_string(const Graph& g) const {
  std::ostringstream out;
  out << "schedule with " << stages.size() << " stages\n";
  for (std::size_t i = 0; i < stages.size(); ++i) {
    const Stage& stage = stages[i];
    out << "  stage " << i + 1 << " [" << stage_strategy_name(stage.strategy)
        << "]";
    for (const Group& grp : stage.groups) {
      out << " {";
      for (std::size_t j = 0; j < grp.ops.size(); ++j) {
        if (j) out << ", ";
        out << g.op(grp.ops[j]).name;
      }
      out << "}";
    }
    out << "\n";
  }
  return out.str();
}

std::vector<Group> partition_groups(const Graph& g,
                                    std::span<const OpId> ops) {
  std::unordered_map<OpId, int> component;
  component.reserve(ops.size());
  // Union-find over the ops, joining endpoints of edges internal to `ops`.
  std::vector<int> parent(ops.size());
  for (std::size_t i = 0; i < ops.size(); ++i) {
    parent[i] = static_cast<int>(i);
    component[ops[i]] = static_cast<int>(i);
  }
  auto find = [&](int x) {
    while (parent[static_cast<std::size_t>(x)] != x) {
      parent[static_cast<std::size_t>(x)] =
          parent[static_cast<std::size_t>(parent[static_cast<std::size_t>(x)])];
      x = parent[static_cast<std::size_t>(x)];
    }
    return x;
  };
  auto unite = [&](int a, int b) {
    a = find(a);
    b = find(b);
    if (a != b) parent[static_cast<std::size_t>(b)] = a;
  };
  for (std::size_t i = 0; i < ops.size(); ++i) {
    for (OpId pred : g.preds(ops[i])) {
      auto it = component.find(pred);
      if (it != component.end()) unite(static_cast<int>(i), it->second);
    }
  }

  // Bucket ops by root, preserving relative (topological) order: op ids in a
  // Graph are assigned in insertion order, so sorting by id is a topological
  // order.
  std::vector<OpId> sorted(ops.begin(), ops.end());
  std::sort(sorted.begin(), sorted.end());

  std::unordered_map<int, std::size_t> root_to_group;
  std::vector<Group> groups;
  for (OpId id : sorted) {
    const int root = find(component[id]);
    auto [it, inserted] = root_to_group.try_emplace(root, groups.size());
    if (inserted) groups.emplace_back();
    groups[it->second].ops.push_back(id);
  }
  return groups;
}

void validate_schedule(const Graph& g, const Schedule& q) {
  std::unordered_map<OpId, int> stage_of;       // op -> stage index
  std::unordered_map<OpId, std::size_t> group_of;  // op -> group index
  std::unordered_map<OpId, std::size_t> pos_in_group;

  for (std::size_t si = 0; si < q.stages.size(); ++si) {
    const Stage& stage = q.stages[si];
    if (stage.groups.empty()) {
      throw std::runtime_error("stage " + std::to_string(si) + " is empty");
    }
    for (std::size_t gi = 0; gi < stage.groups.size(); ++gi) {
      const Group& grp = stage.groups[gi];
      if (grp.ops.empty()) {
        throw std::runtime_error("empty group in stage " + std::to_string(si));
      }
      for (std::size_t pi = 0; pi < grp.ops.size(); ++pi) {
        const OpId id = grp.ops[pi];
        if (!g.op(id).schedulable()) {
          throw std::runtime_error("input op scheduled: " + g.op(id).name);
        }
        if (!stage_of.emplace(id, static_cast<int>(si)).second) {
          throw std::runtime_error("op scheduled twice: " + g.op(id).name);
        }
        group_of[id] = gi;
        pos_in_group[id] = pi;
      }
    }
  }

  int expected = 0;
  for (const Op& op : g.ops()) {
    if (op.schedulable()) ++expected;
  }
  if (q.num_ops() != expected) {
    throw std::runtime_error("schedule covers " + std::to_string(q.num_ops()) +
                             " ops, graph has " + std::to_string(expected));
  }

  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    for (OpId pred : op.inputs) {
      if (!g.op(pred).schedulable()) continue;  // graph input
      if (stage_of[pred] > stage_of[op.id]) {
        throw std::runtime_error("dependency violated: " + g.op(pred).name +
                                 " scheduled after " + op.name);
      }
      if (stage_of[pred] == stage_of[op.id]) {
        if (group_of[pred] != group_of[op.id]) {
          throw std::runtime_error(
              "same-stage dependency across groups: " + g.op(pred).name +
              " -> " + op.name);
        }
        if (pos_in_group[pred] >= pos_in_group[op.id]) {
          throw std::runtime_error("group order violates dependency: " +
                                   g.op(pred).name + " -> " + op.name);
        }
      }
    }
  }
}

}  // namespace ios
