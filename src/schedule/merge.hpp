#pragma once
// Operator-merge analysis (the paper's "operator merge" parallelization
// strategy, Section 3). Convolutions consuming the same input tensor, with
// equal strides and matching output extents, are stacked along the output
// channel axis into one larger convolution; smaller kernels are zero-padded
// to the common extent. A split per original operator recovers its output.

#include <optional>
#include <span>

#include "graph/graph.hpp"

namespace ios {

struct MergeInfo {
  Conv2dAttrs merged_attrs;       ///< the stacked convolution
  OpId shared_input = kInvalidOp; ///< common producer of every merged conv
  std::vector<OpId> ops;          ///< merged convs in stacking order
  std::vector<int> channel_offset; ///< output-channel offset per op
  /// Spatial kernel offset per op: its (kh x kw) kernel sits centered in the
  /// merged (KH x KW) kernel at this (top, left) offset.
  std::vector<std::pair<int, int>> spatial_offset;
};

/// Returns the merge recipe if the operators are mergeable: at least one op,
/// all dense convolutions with the same single input, equal strides and
/// fused activation, kernel extents of equal parity, and identical output
/// H/W after zero-padding smaller kernels. Otherwise std::nullopt (forcing
/// the scheduler to pick concurrent execution, Algorithm 1 L26-29).
std::optional<MergeInfo> analyze_merge(const Graph& g,
                                       std::span<const OpId> ops);

}  // namespace ios
