#include "schedule/baselines.hpp"

#include <unordered_set>

namespace ios {

Schedule sequential_schedule(const Graph& g) {
  Schedule q;
  for (OpId id : g.schedulable_ops()) {
    Stage stage;
    stage.strategy = StageStrategy::kConcurrent;
    stage.groups.push_back(Group{{id}});
    q.stages.push_back(std::move(stage));
  }
  return q;
}

Schedule greedy_schedule(const Graph& g) {
  Schedule q;
  for (const std::vector<OpId>& block : g.blocks()) {
    std::unordered_set<OpId> remaining(block.begin(), block.end());
    while (!remaining.empty()) {
      std::vector<OpId> ready;
      for (OpId id : block) {
        if (!remaining.contains(id)) continue;
        bool ok = true;
        for (OpId pred : g.preds(id)) {
          // Predecessors outside the block (earlier blocks / graph inputs)
          // are complete by construction; only unscheduled in-block
          // predecessors gate readiness.
          if (remaining.contains(pred)) {
            ok = false;
            break;
          }
        }
        if (ok) ready.push_back(id);
      }
      Stage stage;
      stage.strategy = StageStrategy::kConcurrent;
      stage.groups = partition_groups(g, ready);
      q.stages.push_back(std::move(stage));
      for (OpId id : ready) remaining.erase(id);
    }
  }
  return q;
}

}  // namespace ios
