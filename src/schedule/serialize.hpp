#pragma once
// (De)serialization of graphs and schedules. A persisted schedule plus its
// context (model, device, batch size, scheduler settings) forms a
// *scheduling recipe*: optimize once per deployment configuration, then
// load the recipe at inference time — the workflow of the paper's released
// implementation.

#include <optional>
#include <string>

#include "core/scheduler.hpp"
#include "graph/graph.hpp"
#include "schedule/schedule.hpp"
#include "util/json.hpp"

namespace ios {

/// Serializes the full graph: batch, name, every op with kind, name,
/// inputs, block, and kind-specific attributes.
JsonValue graph_to_json(const Graph& g);

/// Rebuilds a graph through the builder API. Throws std::runtime_error on
/// malformed documents.
Graph graph_from_json(const JsonValue& v);

JsonValue schedule_to_json(const Schedule& q);
Schedule schedule_from_json(const JsonValue& v);

/// A scheduling recipe: the schedule together with the configuration it was
/// specialized for.
struct Recipe {
  std::string model;
  std::string device;
  int batch = 1;
  IosVariant variant = IosVariant::kBoth;
  PruningStrategy pruning;
  Schedule schedule;
  /// For schedules of graphs that are not in the model zoo: the graph itself,
  /// embedded in the recipe so evaluate-after-load needs no builder. Zoo
  /// recipes leave this empty and rebuild through models::build_model.
  std::optional<Graph> graph;
};

JsonValue recipe_to_json(const Recipe& r);
Recipe recipe_from_json(const JsonValue& v);

/// Convenience: persist/load a recipe at `path` (JSON file).
void save_recipe(const Recipe& r, const std::string& path);
Recipe load_recipe(const std::string& path);

}  // namespace ios
