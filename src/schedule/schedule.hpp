#pragma once
// Schedule IR (Section 3 of the paper): a schedule Q partitions the graph's
// operators into stages executed sequentially; each stage either merges its
// operators into one kernel ("operator merge") or partitions them into
// weakly-connected groups executed concurrently on separate streams
// ("concurrent execution").

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ios {

enum class StageStrategy {
  kConcurrent,  ///< disjoint groups on separate streams
  kMerge,       ///< stack same-type operators into one kernel + splits
};

const char* stage_strategy_name(StageStrategy s);

/// A group: operators executed sequentially on one stream, in the stored
/// (topological) order.
struct Group {
  std::vector<OpId> ops;
};

struct Stage {
  StageStrategy strategy = StageStrategy::kConcurrent;
  std::vector<Group> groups;

  /// All operators of the stage, group order.
  std::vector<OpId> ops() const;
  int num_ops() const;
};

struct Schedule {
  std::vector<Stage> stages;

  /// Total number of scheduled operators.
  int num_ops() const;

  std::string to_string(const Graph& g) const;
};

/// Canonical 64-bit identity of a stage: strategy plus the ordered operator
/// ids of each group (util::fingerprint_groups). Two stages with the same
/// fingerprint execute identically on a given graph/device, so this is the
/// key of the cost model's latency cache and of the persistable profiling
/// database — persisted profiles stay valid across processes because the
/// fingerprint only depends on the stage structure.
std::uint64_t stage_fingerprint(const Stage& stage);

/// Partitions `ops` into weakly-connected components of the induced
/// subgraph, each topologically ordered; components ordered by smallest
/// member. This is the paper's group construction: operators joined by an
/// edge land in the same group.
std::vector<Group> partition_groups(const Graph& g, std::span<const OpId> ops);

/// Checks that `q` is a feasible schedule of `g`: every schedulable op
/// appears exactly once, all dependencies point to the same or an earlier
/// stage (same-stage dependencies only within one group, respecting group
/// order), and groups within a stage are pairwise independent.
/// Throws std::runtime_error with a diagnostic on violation.
void validate_schedule(const Graph& g, const Schedule& q);

}  // namespace ios
