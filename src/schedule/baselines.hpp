#pragma once
// Baseline schedulers from Section 6.1 of the paper:
//  * Sequential — operators one-by-one in topological order (what cuDNN-based
//    frameworks do today);
//  * Greedy — every operator whose predecessors completed goes into the
//    current stage (Tang et al. 2018 / Graphi); eagerly wide early stages,
//    starved late stages, and unbounded concurrency.

#include "schedule/schedule.hpp"

namespace ios {

/// One stage per operator, in topological order.
Schedule sequential_schedule(const Graph& g);

/// Repeatedly schedules all currently-ready operators into one concurrent
/// stage. Applied block-by-block so blocks stay sequential (like IOS).
Schedule greedy_schedule(const Graph& g);

}  // namespace ios
