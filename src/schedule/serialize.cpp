#include "schedule/serialize.hpp"

#include <stdexcept>

namespace ios {

namespace {

JsonValue attrs_to_json(const Op& op) {
  JsonValue a = JsonValue::object();
  switch (op.kind) {
    case OpKind::kConv2d: {
      const Conv2dAttrs& c = op.conv();
      a.set("out_channels", c.out_channels);
      a.set("kh", c.kh).set("kw", c.kw);
      a.set("sh", c.sh).set("sw", c.sw);
      a.set("ph", c.ph).set("pw", c.pw);
      a.set("post_relu", c.post_relu);
      break;
    }
    case OpKind::kSepConv: {
      const SepConvAttrs& s = op.sepconv();
      a.set("out_channels", s.out_channels);
      a.set("k", s.k);
      a.set("sh", s.sh).set("sw", s.sw);
      a.set("ph", s.ph).set("pw", s.pw);
      a.set("pre_relu", s.pre_relu);
      break;
    }
    case OpKind::kPool2d: {
      const Pool2dAttrs& p = op.pool();
      a.set("pool_kind", static_cast<int>(p.kind));
      a.set("kh", p.kh).set("kw", p.kw);
      a.set("sh", p.sh).set("sw", p.sw);
      a.set("ph", p.ph).set("pw", p.pw);
      break;
    }
    case OpKind::kMatmul: {
      const MatmulAttrs& m = op.matmul();
      a.set("out_features", m.out_features);
      a.set("post_relu", m.post_relu);
      break;
    }
    case OpKind::kSplit: {
      const SplitAttrs& s = op.split();
      a.set("begin_channel", s.begin_channel);
      a.set("end_channel", s.end_channel);
      break;
    }
    case OpKind::kInput:
      a.set("c", op.output.c).set("h", op.output.h).set("w", op.output.w);
      break;
    default:
      break;
  }
  return a;
}

}  // namespace

JsonValue graph_to_json(const Graph& g) {
  JsonValue root = JsonValue::object();
  root.set("name", g.name());
  root.set("batch", g.batch());
  JsonValue ops = JsonValue::array();
  for (const Op& op : g.ops()) {
    JsonValue o = JsonValue::object();
    o.set("kind", op_kind_name(op.kind));
    o.set("name", op.name);
    o.set("block", op.block);
    JsonValue inputs = JsonValue::array();
    for (OpId in : op.inputs) inputs.push_back(in);
    o.set("inputs", std::move(inputs));
    o.set("attrs", attrs_to_json(op));
    ops.push_back(std::move(o));
  }
  root.set("ops", std::move(ops));
  return root;
}

namespace {

OpKind kind_from_name(const std::string& s) {
  for (OpKind k : {OpKind::kInput, OpKind::kConv2d, OpKind::kSepConv,
                   OpKind::kPool2d, OpKind::kMatmul, OpKind::kRelu,
                   OpKind::kConcat, OpKind::kAdd, OpKind::kIdentity,
                   OpKind::kSplit}) {
    if (s == op_kind_name(k)) return k;
  }
  throw std::runtime_error("unknown op kind: " + s);
}

std::vector<OpId> inputs_of(const JsonValue& o) {
  std::vector<OpId> ins;
  for (const JsonValue& v : o.at("inputs").as_array()) {
    ins.push_back(static_cast<OpId>(v.as_int()));
  }
  return ins;
}

}  // namespace

Graph graph_from_json(const JsonValue& v) {
  Graph g(static_cast<int>(v.at("batch").as_int()),
          v.at("name").as_string());
  // Ops must be stored with non-decreasing block indices (true for any graph
  // produced by the builder API); block structure is replayed with
  // begin_block(). The builder maps "blocks begun == b + 1" to block b.
  int blocks_begun = 0;
  for (const JsonValue& o : v.at("ops").as_array()) {
    const OpKind kind = kind_from_name(o.at("kind").as_string());
    const std::string name = o.at("name").as_string();
    const int block = static_cast<int>(o.at("block").as_int());
    if (block < blocks_begun - 1) {
      throw std::runtime_error("op blocks are not non-decreasing");
    }
    while (blocks_begun < block + 1) {
      g.begin_block();
      ++blocks_begun;
    }

    const JsonValue& a = o.at("attrs");
    const std::vector<OpId> ins = inputs_of(o);
    const OpId id = [&]() -> OpId {
      switch (kind) {
        case OpKind::kInput:
          return g.input(static_cast<int>(a.at("c").as_int()),
                         static_cast<int>(a.at("h").as_int()),
                         static_cast<int>(a.at("w").as_int()), name);
        case OpKind::kConv2d:
          return g.conv2d(
              ins.at(0),
              Conv2dAttrs{
                  .out_channels = static_cast<int>(a.at("out_channels").as_int()),
                  .kh = static_cast<int>(a.at("kh").as_int()),
                  .kw = static_cast<int>(a.at("kw").as_int()),
                  .sh = static_cast<int>(a.at("sh").as_int()),
                  .sw = static_cast<int>(a.at("sw").as_int()),
                  .ph = static_cast<int>(a.at("ph").as_int()),
                  .pw = static_cast<int>(a.at("pw").as_int()),
                  .post_relu = a.at("post_relu").as_bool()},
              name);
        case OpKind::kSepConv:
          return g.sepconv(
              std::span<const OpId>(ins),
              SepConvAttrs{
                  .out_channels = static_cast<int>(a.at("out_channels").as_int()),
                  .k = static_cast<int>(a.at("k").as_int()),
                  .sh = static_cast<int>(a.at("sh").as_int()),
                  .sw = static_cast<int>(a.at("sw").as_int()),
                  .ph = static_cast<int>(a.at("ph").as_int()),
                  .pw = static_cast<int>(a.at("pw").as_int()),
                  .pre_relu = a.at("pre_relu").as_bool()},
              name);
        case OpKind::kPool2d:
          return g.pool2d(
              ins.at(0),
              Pool2dAttrs{
                  static_cast<Pool2dAttrs::Kind>(a.at("pool_kind").as_int()),
                  static_cast<int>(a.at("kh").as_int()),
                  static_cast<int>(a.at("kw").as_int()),
                  static_cast<int>(a.at("sh").as_int()),
                  static_cast<int>(a.at("sw").as_int()),
                  static_cast<int>(a.at("ph").as_int()),
                  static_cast<int>(a.at("pw").as_int())},
              name);
        case OpKind::kMatmul:
          return g.matmul(
              ins.at(0),
              MatmulAttrs{.out_features =
                              static_cast<int>(a.at("out_features").as_int()),
                          .post_relu = a.at("post_relu").as_bool()},
              name);
        case OpKind::kRelu:
          return g.relu(ins.at(0), name);
        case OpKind::kConcat:
          return g.concat(ins, name);
        case OpKind::kAdd:
          return g.add(ins.at(0), ins.at(1), name);
        case OpKind::kIdentity:
          return g.identity(ins.at(0), name);
        case OpKind::kSplit:
          return g.split(ins.at(0),
                         static_cast<int>(a.at("begin_channel").as_int()),
                         static_cast<int>(a.at("end_channel").as_int()), name);
      }
      throw std::logic_error("unhandled kind");
    }();
    (void)id;
  }
  g.validate();
  return g;
}

JsonValue schedule_to_json(const Schedule& q) {
  JsonValue stages = JsonValue::array();
  for (const Stage& s : q.stages) {
    JsonValue stage = JsonValue::object();
    stage.set("strategy", stage_strategy_name(s.strategy));
    JsonValue groups = JsonValue::array();
    for (const Group& grp : s.groups) {
      JsonValue ops = JsonValue::array();
      for (OpId id : grp.ops) ops.push_back(id);
      groups.push_back(std::move(ops));
    }
    stage.set("groups", std::move(groups));
    stages.push_back(std::move(stage));
  }
  JsonValue root = JsonValue::object();
  root.set("stages", std::move(stages));
  return root;
}

Schedule schedule_from_json(const JsonValue& v) {
  Schedule q;
  for (const JsonValue& s : v.at("stages").as_array()) {
    Stage stage;
    const std::string strat = s.at("strategy").as_string();
    if (strat == "merge") {
      stage.strategy = StageStrategy::kMerge;
    } else if (strat == "concurrent") {
      stage.strategy = StageStrategy::kConcurrent;
    } else {
      throw std::runtime_error("unknown stage strategy: " + strat);
    }
    for (const JsonValue& grp : s.at("groups").as_array()) {
      Group group;
      for (const JsonValue& id : grp.as_array()) {
        group.ops.push_back(static_cast<OpId>(id.as_int()));
      }
      stage.groups.push_back(std::move(group));
    }
    q.stages.push_back(std::move(stage));
  }
  return q;
}

JsonValue recipe_to_json(const Recipe& r) {
  JsonValue root = JsonValue::object();
  root.set("model", r.model);
  root.set("device", r.device);
  root.set("batch", r.batch);
  root.set("variant", ios_variant_name(r.variant));
  JsonValue pruning = JsonValue::object();
  pruning.set("r", r.pruning.r);
  pruning.set("s", r.pruning.s);
  root.set("pruning", std::move(pruning));
  root.set("schedule", schedule_to_json(r.schedule));
  if (r.graph) root.set("graph", graph_to_json(*r.graph));
  return root;
}

Recipe recipe_from_json(const JsonValue& v) {
  Recipe r;
  r.model = v.at("model").as_string();
  r.device = v.at("device").as_string();
  r.batch = static_cast<int>(v.at("batch").as_int());
  const std::string variant = v.at("variant").as_string();
  if (variant == "IOS-Both") {
    r.variant = IosVariant::kBoth;
  } else if (variant == "IOS-Parallel") {
    r.variant = IosVariant::kParallel;
  } else if (variant == "IOS-Merge") {
    r.variant = IosVariant::kMerge;
  } else {
    throw std::runtime_error("unknown variant: " + variant);
  }
  r.pruning.r = static_cast<int>(v.at("pruning").at("r").as_int());
  r.pruning.s = static_cast<int>(v.at("pruning").at("s").as_int());
  r.schedule = schedule_from_json(v.at("schedule"));
  if (v.contains("graph")) r.graph = graph_from_json(v.at("graph"));
  return r;
}

void save_recipe(const Recipe& r, const std::string& path) {
  // Crash-safe like ProfileDb::save: temp + fsync + atomic rename, with an
  // embedded content checksum so a torn or bit-rotted recipe is rejected on
  // load instead of silently mis-scheduling.
  write_file_atomic(path, with_content_checksum(recipe_to_json(r)).dump());
}

Recipe load_recipe(const std::string& path) {
  // A missing/unreadable file keeps its plain runtime_error; only a file
  // that exists but fails validation becomes CorruptFileError.
  const std::string text = read_file(path);
  try {
    const JsonValue v = JsonValue::parse(text);
    verify_content_checksum(v, "recipe");
    return recipe_from_json(v);
  } catch (const std::exception& e) {
    throw CorruptFileError("recipe: cannot load '" + path + "': " + e.what());
  }
}

}  // namespace ios
