#include "schedule/merge.hpp"

#include <algorithm>

namespace ios {

std::optional<MergeInfo> analyze_merge(const Graph& g,
                                       std::span<const OpId> ops) {
  if (ops.empty()) return std::nullopt;

  MergeInfo info;
  info.ops.assign(ops.begin(), ops.end());
  // Deterministic stacking order: by op id (topological / creation order).
  std::sort(info.ops.begin(), info.ops.end());

  const Op& first = g.op(info.ops[0]);
  if (first.kind != OpKind::kConv2d) return std::nullopt;
  if (first.inputs.size() != 1) return std::nullopt;
  info.shared_input = first.inputs[0];

  int max_kh = 0, max_kw = 0;
  for (OpId id : info.ops) {
    const Op& op = g.op(id);
    if (op.kind != OpKind::kConv2d) return std::nullopt;
    if (op.inputs.size() != 1 || op.inputs[0] != info.shared_input) {
      return std::nullopt;  // kernels can be stacked only over one input
    }
    const Conv2dAttrs& a = op.conv();
    const Conv2dAttrs& f = first.conv();
    if (a.sh != f.sh || a.sw != f.sw) return std::nullopt;
    if (a.post_relu != f.post_relu) return std::nullopt;
    // Same output extent is required for channel stacking.
    if (op.output.h != first.output.h || op.output.w != first.output.w) {
      return std::nullopt;
    }
    // Parity: zero-padding a (kh x kw) kernel into (KH x KW) keeps the
    // anchor centered only when extents differ by an even amount.
    if ((a.kh - f.kh) % 2 != 0 || (a.kw - f.kw) % 2 != 0) return std::nullopt;
    max_kh = std::max(max_kh, a.kh);
    max_kw = std::max(max_kw, a.kw);
  }

  // The merged convolution pads each smaller kernel to (max_kh x max_kw);
  // compensating padding keeps every op's output aligned. All ops must then
  // agree on the merged padding.
  const Conv2dAttrs& f = first.conv();
  const int merged_ph = f.ph + (max_kh - f.kh) / 2;
  const int merged_pw = f.pw + (max_kw - f.kw) / 2;
  int channels = 0;
  for (OpId id : info.ops) {
    const Conv2dAttrs& a = g.op(id).conv();
    if (a.ph + (max_kh - a.kh) / 2 != merged_ph ||
        a.pw + (max_kw - a.kw) / 2 != merged_pw) {
      return std::nullopt;
    }
    info.channel_offset.push_back(channels);
    info.spatial_offset.emplace_back((max_kh - a.kh) / 2, (max_kw - a.kw) / 2);
    channels += a.out_channels;
  }

  info.merged_attrs = Conv2dAttrs{
      .out_channels = channels,
      .kh = max_kh,
      .kw = max_kw,
      .sh = f.sh,
      .sw = f.sw,
      .ph = merged_ph,
      .pw = merged_pw,
      .post_relu = f.post_relu,
  };
  return info;
}

}  // namespace ios
