#include "net/fault.hpp"

#include <algorithm>

namespace ios::net {

FaultInjector::FaultInjector(FaultSpec spec) : spec_(spec), rng_(spec.seed) {}

FaultInjector::WritePlan FaultInjector::plan_write(std::size_t size) {
  WritePlan plan;
  std::lock_guard<std::mutex> lock(mu_);
  if (size > 1 && spec_.torn_write_prob > 0 &&
      rng_.bernoulli(spec_.torn_write_prob)) {
    // Tear into 2..4 segments at distinct random offsets. A short pause
    // between segments forces the peer's reader to observe partial lines.
    const int cut_limit =
        static_cast<int>(std::min<std::size_t>(3, size - 1));
    const int cuts = 1 + rng_.uniform_int(cut_limit);
    std::vector<std::size_t> offsets;
    for (int i = 0; i < cuts; ++i) {
      offsets.push_back(1 + static_cast<std::size_t>(rng_.uniform_int(
                                static_cast<int>(size - 1))));
    }
    std::sort(offsets.begin(), offsets.end());
    offsets.erase(std::unique(offsets.begin(), offsets.end()), offsets.end());
    std::size_t previous = 0;
    for (const std::size_t offset : offsets) {
      plan.segments.push_back(offset - previous);
      previous = offset;
    }
    plan.segments.push_back(size - previous);
    plan.inter_segment_stall_us = std::min(spec_.stall_us, 200.0);
    ++counters_.torn_writes;
  } else {
    plan.segments.push_back(size);
  }
  if (spec_.disconnect_prob > 0 && rng_.bernoulli(spec_.disconnect_prob)) {
    plan.disconnect = true;
    plan.disconnect_after =
        static_cast<std::size_t>(rng_.uniform_int(static_cast<int>(size)));
    ++counters_.disconnects;
  }
  return plan;
}

double FaultInjector::read_stall_us() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.stall_prob > 0 && rng_.bernoulli(spec_.stall_prob)) {
    ++counters_.stalls;
    return spec_.stall_us;
  }
  return 0;
}

bool FaultInjector::should_refuse_connect() {
  std::lock_guard<std::mutex> lock(mu_);
  if (spec_.refuse_connect_prob > 0 &&
      rng_.bernoulli(spec_.refuse_connect_prob)) {
    ++counters_.refused_connects;
    return true;
  }
  return false;
}

FaultCounters FaultInjector::counters() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

}  // namespace ios::net
