#pragma once
// Seeded network fault injection for chaos-testing the daemon and its
// clients. A FaultInjector wraps the decisions "should this connect be
// refused?", "how should this write be torn into segments?", "should the
// connection die mid-message?", and "should this read stall?" behind one
// deterministic RNG, so a chaos run with a fixed seed replays the exact
// same fault sequence every time. Sockets consult an (optional, default
// null) injector at each IO operation — with no injector installed the
// fault paths cost one pointer check and nothing else.
//
// Faults are modeled at the layer the daemon actually has to survive:
//
//   torn writes        a logical write is split into several send() calls
//                      with a short pause between them — the peer's reader
//                      sees partial lines and must reassemble;
//   read stalls        a recv() is delayed — idle/slow-peer deadlines fire;
//   disconnects        the socket is shut down after a prefix of a write —
//                      the peer sees a truncated line then EOF;
//   connect refusals   connect_to throws SocketError{kConnectRefused}
//                      without touching the network — retry/backoff paths
//                      run.
//
// TCP guarantees torn writes and stalls never corrupt the byte stream, so
// they test *timing* robustness; disconnects and refusals test *loss*
// robustness (retries, reconnects, request de-duplication by id).

#include <cstddef>
#include <cstdint>
#include <mutex>
#include <vector>

#include "util/rng.hpp"

namespace ios::net {

/// What to inject and how often. All probabilities default to 0 — a default
/// spec injects nothing (and Socket skips the injector entirely).
struct FaultSpec {
  /// RNG seed: the same seed replays the same fault sequence for the same
  /// sequence of injector calls.
  std::uint64_t seed = 1;
  /// Probability a write is torn into 2..4 segments with stall_us pauses
  /// between them.
  double torn_write_prob = 0;
  /// Probability a read (or torn-write gap) stalls for stall_us.
  double stall_prob = 0;
  /// Stall duration in wall microseconds.
  double stall_us = 200;
  /// Probability a write shuts the socket down after a random prefix.
  double disconnect_prob = 0;
  /// Probability connect_to refuses without touching the network.
  double refuse_connect_prob = 0;

  /// True when any fault can fire (a Socket with an all-zero spec behaves
  /// exactly like one with no injector).
  bool any() const {
    return torn_write_prob > 0 || stall_prob > 0 || disconnect_prob > 0 ||
           refuse_connect_prob > 0;
  }
};

/// How many faults of each kind actually fired.
struct FaultCounters {
  std::int64_t torn_writes = 0;
  std::int64_t stalls = 0;
  std::int64_t disconnects = 0;
  std::int64_t refused_connects = 0;
};

/// The seeded fault decision source (see the file comment). Thread-safe:
/// one injector may be shared by every connection of a daemon or client;
/// decisions are serialized, so a single-threaded caller sees a fully
/// deterministic sequence per seed.
class FaultInjector {
 public:
  explicit FaultInjector(FaultSpec spec);

  /// One write's worth of injected behavior, decided up front.
  struct WritePlan {
    /// Segment lengths summing to the write size (one entry = intact).
    std::vector<std::size_t> segments;
    /// Pause between segments, wall microseconds (0 = none).
    double inter_segment_stall_us = 0;
    /// Shut the socket down after `disconnect_after` bytes.
    bool disconnect = false;
    std::size_t disconnect_after = 0;
  };

  /// Decides how a write of `size` bytes should be injected.
  WritePlan plan_write(std::size_t size);

  /// Stall to apply before the next recv, wall microseconds (0 = none).
  double read_stall_us();

  /// True when the next connect should be refused.
  bool should_refuse_connect();

  FaultCounters counters() const;
  const FaultSpec& spec() const { return spec_; }

 private:
  const FaultSpec spec_;
  mutable std::mutex mu_;
  Rng rng_;
  FaultCounters counters_;
};

}  // namespace ios::net
