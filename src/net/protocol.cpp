#include "net/protocol.hpp"

#include <stdexcept>
#include <utility>

namespace ios::net {

WireRequest parse_request(std::string_view line) {
  const JsonValue v = JsonValue::parse(line);
  if (!v.is_object()) {
    throw std::runtime_error("request must be a JSON object");
  }
  WireRequest request;
  if (v.contains("id")) request.id = v.at("id").as_int();
  const std::string cmd = v.contains("cmd") ? v.at("cmd").as_string() : "infer";
  if (cmd == "infer") {
    request.kind = RequestKind::kInfer;
    if (!v.contains("model")) {
      throw std::runtime_error("inference request missing 'model'");
    }
    request.model = v.at("model").as_string();
  } else if (cmd == "ping") {
    request.kind = RequestKind::kPing;
  } else if (cmd == "stats") {
    request.kind = RequestKind::kStats;
  } else if (cmd == "health") {
    request.kind = RequestKind::kHealth;
  } else if (cmd == "kill_worker" || cmd == "stall_worker") {
    request.kind = cmd == "kill_worker" ? RequestKind::kKillWorker
                                        : RequestKind::kStallWorker;
    if (!v.contains("worker")) {
      throw std::runtime_error("'" + cmd + "' request missing 'worker'");
    }
    request.worker = static_cast<int>(v.at("worker").as_int());
    if (request.kind == RequestKind::kStallWorker) {
      if (!v.contains("stall_us")) {
        throw std::runtime_error("'stall_worker' request missing 'stall_us'");
      }
      request.stall_us = v.at("stall_us").as_number();
    }
  } else {
    throw std::runtime_error(
        "unknown cmd '" + cmd +
        "'; known cmds: infer ping stats health kill_worker stall_worker");
  }
  return request;
}

std::string format_request(const WireRequest& request) {
  JsonValue v = JsonValue::object();
  v.set("id", request.id);
  switch (request.kind) {
    case RequestKind::kInfer:
      v.set("model", request.model);
      break;
    case RequestKind::kPing:
      v.set("cmd", "ping");
      break;
    case RequestKind::kStats:
      v.set("cmd", "stats");
      break;
    case RequestKind::kHealth:
      v.set("cmd", "health");
      break;
    case RequestKind::kKillWorker:
      v.set("cmd", "kill_worker");
      v.set("worker", request.worker);
      break;
    case RequestKind::kStallWorker:
      v.set("cmd", "stall_worker");
      v.set("worker", request.worker);
      v.set("stall_us", request.stall_us);
      break;
  }
  return v.dump();
}

std::string format_response(const WireResponse& response) {
  JsonValue v = JsonValue::object();
  v.set("id", response.id);
  v.set("ok", response.ok);
  if (!response.ok) {
    v.set("error", response.error);
    return v.dump();
  }
  v.set("model", response.model);
  v.set("device", response.device);
  v.set("batch_size", response.batch_size);
  v.set("worker", response.worker);
  v.set("latency_us", response.latency_us);
  v.set("queue_us", response.queue_us);
  v.set("service_us", response.service_us);
  v.set("wall_latency_us", response.wall_latency_us);
  return v.dump();
}

WireResponse parse_response(std::string_view line) {
  const JsonValue v = JsonValue::parse(line);
  if (!v.is_object()) {
    throw std::runtime_error("response must be a JSON object");
  }
  WireResponse response;
  if (v.contains("id")) response.id = v.at("id").as_int();
  response.ok = v.contains("ok") && v.at("ok").as_bool();
  if (!response.ok) {
    if (v.contains("error")) response.error = v.at("error").as_string();
    return response;
  }
  // Ping/stats responses parse as ok with the numeric fields left zero.
  if (v.contains("model")) response.model = v.at("model").as_string();
  if (v.contains("device")) response.device = v.at("device").as_string();
  if (v.contains("batch_size")) {
    response.batch_size = static_cast<int>(v.at("batch_size").as_int());
  }
  if (v.contains("worker")) {
    response.worker = static_cast<int>(v.at("worker").as_int());
  }
  if (v.contains("latency_us")) {
    response.latency_us = v.at("latency_us").as_number();
  }
  if (v.contains("queue_us")) response.queue_us = v.at("queue_us").as_number();
  if (v.contains("service_us")) {
    response.service_us = v.at("service_us").as_number();
  }
  if (v.contains("wall_latency_us")) {
    response.wall_latency_us = v.at("wall_latency_us").as_number();
  }
  return response;
}

WireResponse error_response(std::int64_t id, std::string message) {
  WireResponse response;
  response.id = id;
  response.ok = false;
  response.error = std::move(message);
  return response;
}

}  // namespace ios::net
