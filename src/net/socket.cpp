#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <thread>
#include <utility>

#include "net/fault.hpp"

namespace ios::net {

namespace {

// EPIPE and ECONNRESET both mean "the peer vanished mid-stream" — the one
// failure class a client can safely retry on a fresh connection.
SocketErrorKind classify_errno(int err) {
  if (err == EPIPE || err == ECONNRESET) return SocketErrorKind::kPeerReset;
  if (err == ECONNREFUSED) return SocketErrorKind::kConnectRefused;
  return SocketErrorKind::kIo;
}

[[noreturn]] void throw_errno(const std::string& what) {
  const int err = errno;
  throw SocketError(classify_errno(err),
                    what + ": " + std::strerror(err));
}

// Nagle coalescing would hold each small request/response line back for the
// previous packet's ACK — milliseconds of added latency on a protocol whose
// batching deadlines are themselves milliseconds. Every socket runs NODELAY.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void sleep_us(double us) {
  if (us > 0) {
    std::this_thread::sleep_for(
        std::chrono::microseconds(static_cast<std::int64_t>(us)));
  }
}

double now_us() {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

const char* socket_error_kind_name(SocketErrorKind kind) {
  switch (kind) {
    case SocketErrorKind::kConnectRefused:
      return "connect_refused";
    case SocketErrorKind::kPeerReset:
      return "peer_reset";
    case SocketErrorKind::kTimeout:
      return "timeout";
    case SocketErrorKind::kOversizedLine:
      return "oversized_line";
    case SocketErrorKind::kInjectedFault:
      return "injected_fault";
    case SocketErrorKind::kIo:
      return "io";
  }
  return "unknown";
}

// ---- Socket ---------------------------------------------------------------

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      buffer_(std::move(other.buffer_)),
      write_timeout_us_(other.write_timeout_us_),
      max_line_bytes_(other.max_line_bytes_),
      injector_(std::exchange(other.injector_, nullptr)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
    write_timeout_us_ = other.write_timeout_us_;
    max_line_bytes_ = other.max_line_bytes_;
    injector_ = std::exchange(other.injector_, nullptr);
  }
  return *this;
}

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket Socket::connect_to(const std::string& host, int port,
                          FaultInjector* injector) {
  const std::string peer = host + ":" + std::to_string(port);
  if (injector != nullptr && injector->should_refuse_connect()) {
    throw SocketError(SocketErrorKind::kConnectRefused,
                      "connect to " + peer + ": injected refusal");
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw SocketError(SocketErrorKind::kIo,
                      "connect_to: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("connect to " + peer);
  }
  set_nodelay(fd);
  Socket sock(fd);
  sock.set_fault_injector(injector);
  return sock;
}

std::size_t Socket::fill_buffer() {
  if (injector_ != nullptr) sleep_us(injector_->read_stall_us());
  char chunk[4096];
  for (;;) {
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n >= 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      // Bounded-line guard: measure the *current* line, not the buffer —
      // a burst of many small pipelined lines is fine.
      const std::size_t nl = buffer_.find('\n');
      const std::size_t line_len =
          nl == std::string::npos ? buffer_.size() : nl;
      if (max_line_bytes_ > 0 && line_len > max_line_bytes_) {
        throw SocketError(
            SocketErrorKind::kOversizedLine,
            "request line exceeds " + std::to_string(max_line_bytes_) +
                " bytes");
      }
      return static_cast<std::size_t>(n);
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      // No receive timeout is configured on these sockets, so this is a
      // transient wakeup; poll until actually readable.
      pollfd pfd{fd_, POLLIN, 0};
      ::poll(&pfd, 1, -1);
      continue;
    }
    throw_errno("recv");
  }
}

bool Socket::read_line(std::string& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    if (fill_buffer() == 0) {  // orderly EOF: hand back a trailing line
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
  }
}

ReadStatus Socket::read_line_deadline(std::string& line, double timeout_us) {
  if (timeout_us <= 0) {
    return read_line(line) ? ReadStatus::kLine : ReadStatus::kEof;
  }
  const double deadline = now_us() + timeout_us;
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return ReadStatus::kLine;
    }
    const double remaining = deadline - now_us();
    if (remaining <= 0) return ReadStatus::kTimeout;
    pollfd pfd{fd_, POLLIN, 0};
    const int timeout_ms =
        static_cast<int>(std::ceil(remaining / 1000.0));
    const int ready = ::poll(&pfd, 1, timeout_ms < 1 ? 1 : timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (ready == 0) return ReadStatus::kTimeout;
    if (fill_buffer() == 0) {  // orderly EOF: hand back a trailing line
      if (buffer_.empty()) return ReadStatus::kEof;
      line = std::move(buffer_);
      buffer_.clear();
      return ReadStatus::kLine;
    }
  }
}

void Socket::write_all(std::string_view data) {
  if (data.empty()) return;
  FaultInjector::WritePlan plan;
  if (injector_ != nullptr) {
    plan = injector_->plan_write(data.size());
  } else {
    plan.segments.push_back(data.size());
  }
  const double start = now_us();
  std::size_t sent_total = 0;
  for (std::size_t seg_index = 0; seg_index < plan.segments.size();
       ++seg_index) {
    if (seg_index > 0) sleep_us(plan.inter_segment_stall_us);
    std::size_t seg_end = sent_total + plan.segments[seg_index];
    bool drop_here = false;
    if (plan.disconnect && plan.disconnect_after <= seg_end) {
      seg_end = std::max(plan.disconnect_after, sent_total);
      drop_here = true;
    }
    while (sent_total < seg_end) {
      // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing
      // SIGPIPE.
      const ssize_t n = ::send(fd_, data.data() + sent_total,
                               seg_end - sent_total, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        if (errno == EAGAIN || errno == EWOULDBLOCK) {
          // The peer has stopped draining its receive window (blocking
          // send gives up once SO_SNDTIMEO — armed by
          // set_write_timeout_us — expires). Give it the rest of the
          // write budget, then declare the client slow.
          const double elapsed = now_us() - start;
          if (write_timeout_us_ > 0 && elapsed >= write_timeout_us_) {
            throw SocketError(SocketErrorKind::kTimeout,
                              "send timed out after " +
                                  std::to_string(static_cast<long long>(
                                      elapsed)) +
                                  " us");
          }
          continue;
        }
        throw_errno("send");
      }
      sent_total += static_cast<std::size_t>(n);
    }
    if (drop_here) {
      ::shutdown(fd_, SHUT_RDWR);
      throw SocketError(SocketErrorKind::kInjectedFault,
                        "injected disconnect after " +
                            std::to_string(sent_total) + " bytes");
    }
  }
}

bool Socket::wait_readable(double timeout_us) {
  if (!buffer_.empty()) return true;
  pollfd pfd{fd_, POLLIN, 0};
  const int timeout_ms =
      timeout_us < 0 ? -1 : static_cast<int>(std::ceil(timeout_us / 1000.0));
  for (;;) {
    const int ready = ::poll(&pfd, 1, timeout_ms);
    if (ready < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    return ready > 0;
  }
}

void Socket::set_write_timeout_us(double timeout_us) {
  write_timeout_us_ = timeout_us;
  // SO_SNDTIMEO makes a blocking send() return EAGAIN once the peer's
  // receive window has been full for this long; write_all then checks the
  // overall budget. Re-arm with a fraction of the budget so several short
  // stalls cannot each reset the clock past the total.
  timeval tv{};
  const double slice_us = timeout_us > 0 ? timeout_us / 4 : 0;
  tv.tv_sec = static_cast<time_t>(slice_us / 1e6);
  tv.tv_usec = static_cast<suseconds_t>(
      slice_us - static_cast<double>(tv.tv_sec) * 1e6);
  if (timeout_us > 0 && tv.tv_sec == 0 && tv.tv_usec == 0) tv.tv_usec = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

void Socket::discard_pending(double window_us) {
  buffer_.clear();
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::duration_cast<std::chrono::steady_clock::duration>(
          std::chrono::duration<double, std::micro>(window_us));
  char sink[4096];
  for (;;) {
    const auto now = std::chrono::steady_clock::now();
    if (now >= deadline) return;
    const int timeout_ms = static_cast<int>(
        std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now)
            .count() +
        1);
    pollfd pfd{fd_, POLLIN, 0};
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0 && errno == EINTR) continue;
    if (rc <= 0) return;  // quiet for the whole window
    const ssize_t n = ::recv(fd_, sink, sizeof(sink), 0);
    if (n > 0) continue;
    if (n < 0 && (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK)) {
      continue;
    }
    return;  // EOF or a dead peer: nothing left to absorb
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

// ---- ListenSocket ---------------------------------------------------------

ListenSocket::ListenSocket(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, 64) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Socket> ListenSocket::accept_interruptible(int wake_fd) {
  pollfd fds[2];
  fds[0].fd = fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fd;
  fds[1].events = POLLIN;
  for (;;) {
    const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      return std::nullopt;  // woken for shutdown
    }
    if (fds[0].revents & POLLIN) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) return std::nullopt;  // transient (peer vanished)
      set_nodelay(client);
      return Socket(client);
    }
  }
}

}  // namespace ios::net
