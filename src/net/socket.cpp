#include "net/socket.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <utility>

namespace ios::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

// Nagle coalescing would hold each small request/response line back for the
// previous packet's ACK — milliseconds of added latency on a protocol whose
// batching deadlines are themselves milliseconds. Every socket runs NODELAY.
void set_nodelay(int fd) {
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

}  // namespace

// ---- Socket ---------------------------------------------------------------

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), buffer_(std::move(other.buffer_)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    if (fd_ >= 0) ::close(fd_);
    fd_ = std::exchange(other.fd_, -1);
    buffer_ = std::move(other.buffer_);
  }
  return *this;
}

Socket::~Socket() {
  if (fd_ >= 0) ::close(fd_);
}

Socket Socket::connect_to(const std::string& host, int port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) throw_errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    throw std::runtime_error("connect_to: bad IPv4 address '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd);
    errno = err;
    throw_errno("connect to " + host + ":" + std::to_string(port));
  }
  set_nodelay(fd);
  return Socket(fd);
}

bool Socket::read_line(std::string& line) {
  for (;;) {
    const std::size_t nl = buffer_.find('\n');
    if (nl != std::string::npos) {
      line.assign(buffer_, 0, nl);
      buffer_.erase(0, nl + 1);
      return true;
    }
    char chunk[4096];
    const ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
    if (n > 0) {
      buffer_.append(chunk, static_cast<std::size_t>(n));
      continue;
    }
    if (n == 0) {  // orderly EOF: hand back a trailing unterminated line
      if (buffer_.empty()) return false;
      line = std::move(buffer_);
      buffer_.clear();
      return true;
    }
    if (errno == EINTR) continue;
    throw_errno("recv");
  }
}

void Socket::write_all(std::string_view data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a dead peer yields EPIPE, not a process-killing SIGPIPE.
    const ssize_t n = ::send(fd_, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    sent += static_cast<std::size_t>(n);
  }
}

void Socket::shutdown_read() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::shutdown_write() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_WR);
}

// ---- ListenSocket ---------------------------------------------------------

ListenSocket::ListenSocket(int port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) <
      0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd_, 64) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("listen");
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &len) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    errno = err;
    throw_errno("getsockname");
  }
  port_ = static_cast<int>(ntohs(bound.sin_port));
}

ListenSocket::ListenSocket(ListenSocket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      port_(std::exchange(other.port_, 0)) {}

ListenSocket::~ListenSocket() {
  if (fd_ >= 0) ::close(fd_);
}

std::optional<Socket> ListenSocket::accept_interruptible(int wake_fd) {
  pollfd fds[2];
  fds[0].fd = fd_;
  fds[0].events = POLLIN;
  fds[1].fd = wake_fd;
  fds[1].events = POLLIN;
  for (;;) {
    const int n = ::poll(fds, wake_fd >= 0 ? 2 : 1, -1);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (wake_fd >= 0 && (fds[1].revents & (POLLIN | POLLHUP | POLLERR))) {
      return std::nullopt;  // woken for shutdown
    }
    if (fds[0].revents & POLLIN) {
      const int client = ::accept(fd_, nullptr, nullptr);
      if (client < 0) return std::nullopt;  // transient (peer vanished)
      set_nodelay(client);
      return Socket(client);
    }
  }
}

}  // namespace ios::net
