#pragma once
// Minimal hand-rolled POSIX TCP wrappers for the serving daemon: an RAII
// connected socket with buffered line reads, and a listening socket whose
// accept loop can be woken by a pipe (the daemon's shutdown path). No
// external dependencies; loopback-oriented (the daemon binds 127.0.0.1 —
// it is a research serving daemon, not an internet-facing one).

#include <cstddef>
#include <optional>
#include <string>
#include <string_view>

namespace ios::net {

/// A connected TCP socket: owns the fd, closes on destruction, and layers a
/// read buffer for newline-delimited protocols. Move-only.
class Socket {
 public:
  /// Wraps an already-connected fd (takes ownership).
  explicit Socket(int fd) : fd_(fd) {}
  /// Transfers fd ownership; `other` is left invalid.
  Socket(Socket&& other) noexcept;
  /// Closes the current fd (if any) and takes over `other`'s.
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;             ///< not copyable (owns the fd)
  Socket& operator=(const Socket&) = delete;  ///< not copyable (owns the fd)
  /// Closes the fd.
  ~Socket();

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). Throws
  /// std::runtime_error on failure.
  static Socket connect_to(const std::string& host, int port);

  /// Reads up to and including the next '\n'; returns the line without the
  /// newline in `line`. Returns false on orderly EOF with no buffered
  /// partial line. Throws std::runtime_error on a read error. A trailing
  /// unterminated line at EOF is returned as a final line.
  bool read_line(std::string& line);

  /// Writes all of `data`, retrying short writes. Throws std::runtime_error
  /// on error (a closed peer surfaces here, not as SIGPIPE).
  void write_all(std::string_view data);

  /// Half-closes the read side (wakes a blocked reader with EOF).
  void shutdown_read();

  /// Half-closes the write side (the peer's reader sees EOF; this side can
  /// still read — how a client says "no more requests, finish the rest").
  void shutdown_write();

  /// The underlying fd (for poll()-style multiplexing in the daemon).
  int fd() const { return fd_; }

  /// True while this object owns a live fd (false after being moved from).
  bool valid() const { return fd_ >= 0; }

 private:
  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
};

/// A listening TCP socket bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port; read it back with port()). SO_REUSEADDR is set so
/// restarted daemons do not trip over TIME_WAIT.
class ListenSocket {
 public:
  /// Binds and listens. Throws std::runtime_error on failure.
  explicit ListenSocket(int port);
  /// Transfers fd ownership; `other` is left invalid.
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;  ///< not copyable (owns the fd)
  /// Not copyable (owns the fd).
  ListenSocket& operator=(const ListenSocket&) = delete;
  /// Closes the listening fd.
  ~ListenSocket();

  /// The bound port (resolves 0 to the kernel's ephemeral choice).
  int port() const { return port_; }

  /// Blocks until a connection arrives or `wake_fd` becomes readable
  /// (the daemon's shutdown pipe). Returns the accepted socket, or
  /// std::nullopt when woken (or on a transient accept failure). Throws
  /// std::runtime_error on poll errors.
  std::optional<Socket> accept_interruptible(int wake_fd);

  /// The listening fd.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace ios::net
