#pragma once
// Minimal hand-rolled POSIX TCP wrappers for the serving daemon: an RAII
// connected socket with buffered line reads, and a listening socket whose
// accept loop can be woken by a pipe (the daemon's shutdown path). No
// external dependencies; loopback-oriented (the daemon binds 127.0.0.1 —
// it is a research serving daemon, not an internet-facing one).
//
// IO failures surface as typed SocketError exceptions so callers can route
// on the failure class: a peer reset is retryable for a client, a timeout
// means a slow-client close for the daemon, an oversized line is a protocol
// error, an injected fault is chaos-testing noise. An optional FaultInjector
// (see fault.hpp) can be installed per socket to deterministically tear
// writes, stall reads, and drop connections mid-message.

#include <cstddef>
#include <limits>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>

namespace ios::net {

class FaultInjector;

/// Failure classes a Socket operation can raise. Callers switch on the kind
/// instead of parsing what() strings.
enum class SocketErrorKind {
  kConnectRefused,  ///< connect() refused (or injected refusal)
  kPeerReset,       ///< ECONNRESET / EPIPE: the peer vanished mid-stream
  kTimeout,         ///< a configured read/write deadline expired
  kOversizedLine,   ///< a line exceeded the configured maximum length
  kInjectedFault,   ///< a FaultInjector dropped the connection
  kIo,              ///< any other socket-layer errno
};

/// Human-readable name for a SocketErrorKind ("peer_reset", "timeout", ...).
const char* socket_error_kind_name(SocketErrorKind kind);

/// A socket-layer failure with a machine-routable kind. Derives from
/// std::runtime_error so legacy catch sites keep working.
class SocketError : public std::runtime_error {
 public:
  SocketError(SocketErrorKind kind, const std::string& message)
      : std::runtime_error(message), kind_(kind) {}

  SocketErrorKind kind() const { return kind_; }

 private:
  SocketErrorKind kind_;
};

/// Outcome of a deadline-bounded read (see Socket::read_line_deadline).
enum class ReadStatus {
  kLine,     ///< a full line was produced
  kEof,      ///< orderly EOF with nothing buffered
  kTimeout,  ///< the deadline expired with no complete line
};

/// A connected TCP socket: owns the fd, closes on destruction, and layers a
/// read buffer for newline-delimited protocols. Move-only.
class Socket {
 public:
  /// Wraps an already-connected fd (takes ownership).
  explicit Socket(int fd) : fd_(fd) {}
  /// Transfers fd ownership; `other` is left invalid.
  Socket(Socket&& other) noexcept;
  /// Closes the current fd (if any) and takes over `other`'s.
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;             ///< not copyable (owns the fd)
  Socket& operator=(const Socket&) = delete;  ///< not copyable (owns the fd)
  /// Closes the fd.
  ~Socket();

  /// Connects to host:port (numeric IPv4 host, e.g. "127.0.0.1"). Throws
  /// SocketError{kConnectRefused} when the peer refuses (retryable) and
  /// SocketError{kIo} otherwise. When `injector` is non-null it may refuse
  /// the connect deterministically, and it is installed on the returned
  /// socket so all subsequent IO runs through it.
  static Socket connect_to(const std::string& host, int port,
                           FaultInjector* injector = nullptr);

  /// Reads up to and including the next '\n'; returns the line without the
  /// newline in `line`. Returns false on orderly EOF with no buffered
  /// partial line. Throws SocketError on a read error. A trailing
  /// unterminated line at EOF is returned as a final line.
  bool read_line(std::string& line);

  /// read_line with a deadline: returns kTimeout when no complete line
  /// arrives within `timeout_us` wall microseconds (partial bytes stay
  /// buffered — a later call resumes where this one left off). A
  /// non-positive timeout blocks forever (equivalent to read_line).
  ReadStatus read_line_deadline(std::string& line, double timeout_us);

  /// Writes all of `data`, retrying short writes and EINTR. Throws
  /// SocketError: kPeerReset for EPIPE/ECONNRESET, kTimeout when the write
  /// timeout (set_write_timeout_us) expires against a stalled peer,
  /// kInjectedFault when a FaultInjector drops the connection, kIo
  /// otherwise. A closed peer surfaces here, not as SIGPIPE.
  void write_all(std::string_view data);

  /// Blocks until the socket is readable, the peer hangs up, or
  /// `timeout_us` expires; returns true when readable/hung-up (a subsequent
  /// read will not block), false on timeout. Buffered bytes from a previous
  /// partial read count as readable.
  bool wait_readable(double timeout_us);

  /// Caps the write_all duration (wall microseconds; 0 = unlimited). When a
  /// peer stops draining its receive window for this long, write_all throws
  /// SocketError{kTimeout} — the daemon's slow-client guard.
  void set_write_timeout_us(double timeout_us);

  /// Caps the length of a line read_line may buffer (bytes, excluding the
  /// newline; 0 = unlimited). Exceeding it throws
  /// SocketError{kOversizedLine} — the daemon's bounded-request-line guard.
  void set_max_line_bytes(std::size_t max_bytes) {
    max_line_bytes_ = max_bytes;
  }

  /// Installs a fault injector (not owned; may be nullptr to disable; the
  /// default). The injector must outlive the socket.
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// Discards whatever the peer has already sent (or sends within
  /// `window_us`), then returns. Called before closing a connection whose
  /// final response must survive: closing a socket with unread bytes in
  /// its receive queue sends RST, which destroys data still in flight to
  /// the peer — draining first turns the close into a clean FIN.
  void discard_pending(double window_us);

  /// Half-closes the read side (wakes a blocked reader with EOF).
  void shutdown_read();

  /// Half-closes the write side (the peer's reader sees EOF; this side can
  /// still read — how a client says "no more requests, finish the rest").
  void shutdown_write();

  /// The underlying fd (for poll()-style multiplexing in the daemon).
  int fd() const { return fd_; }

  /// True while this object owns a live fd (false after being moved from).
  bool valid() const { return fd_ >= 0; }

 private:
  /// One recv into buffer_: returns bytes read (0 = EOF). Applies injected
  /// read stalls and the max-line guard; throws SocketError on error.
  std::size_t fill_buffer();

  int fd_ = -1;
  std::string buffer_;  ///< bytes read past the last returned line
  double write_timeout_us_ = 0;
  std::size_t max_line_bytes_ = 0;
  FaultInjector* injector_ = nullptr;  ///< not owned
};

/// A listening TCP socket bound to 127.0.0.1:`port` (0 = kernel-assigned
/// ephemeral port; read it back with port()). SO_REUSEADDR is set so
/// restarted daemons do not trip over TIME_WAIT.
class ListenSocket {
 public:
  /// Binds and listens. Throws std::runtime_error on failure.
  explicit ListenSocket(int port);
  /// Transfers fd ownership; `other` is left invalid.
  ListenSocket(ListenSocket&& other) noexcept;
  ListenSocket(const ListenSocket&) = delete;  ///< not copyable (owns the fd)
  /// Not copyable (owns the fd).
  ListenSocket& operator=(const ListenSocket&) = delete;
  /// Closes the listening fd.
  ~ListenSocket();

  /// The bound port (resolves 0 to the kernel's ephemeral choice).
  int port() const { return port_; }

  /// Blocks until a connection arrives or `wake_fd` becomes readable
  /// (the daemon's shutdown pipe). Returns the accepted socket, or
  /// std::nullopt when woken (or on a transient accept failure). Throws
  /// std::runtime_error on poll errors.
  std::optional<Socket> accept_interruptible(int wake_fd);

  /// The listening fd.
  int fd() const { return fd_; }

 private:
  int fd_ = -1;
  int port_ = 0;
};

}  // namespace ios::net
