#pragma once
// ios::net::Daemon — the wall-clock network front end over the same
// ServingEngine the deterministic DES Server drives (serve/engine.hpp).
// One engine, two drivers: the DES is the test harness, this is the
// production data path. The daemon owns
//
//   * a listening TCP socket (127.0.0.1, ephemeral port supported) with one
//     accept thread and a small pool of connection-handler threads reading
//     newline-delimited JSON requests (net/protocol.hpp);
//   * bounded admission: at most max_pending requests may be in flight
//     (queued or executing); excess requests are answered with an
//     {"ok":false,"error":"overloaded"} line instead of being buffered
//     without bound — backpressure the client can see;
//   * a batcher thread that sleeps until the engine's next flush deadline
//     and polls it, so wall-clock time drives exactly the deadline flushes
//     the DES simulates;
//   * one executor thread per engine worker, replaying each routed batch
//     (optionally occupying wall time for its service latency — the
//     simulated device, made temporal) and writing responses;
//   * graceful drain: stop() (or SIGTERM via serve_forever) stops
//     accepting, flushes every queue through the engine, lets in-flight
//     batches finish, answers every admitted request, then joins all
//     threads. Recipes and the profiling database are already persisted by
//     the Optimizer as misses resolve, so a drained daemon leaves a warm
//     start behind.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.hpp"
#include "net/protocol.hpp"
#include "net/socket.hpp"
#include "serve/adaptive.hpp"
#include "serve/engine.hpp"
#include "util/json.hpp"

namespace ios::net {

/// Daemon configuration: the shared engine options plus network knobs.
struct DaemonOptions {
  /// Port to bind on 127.0.0.1 (0 = kernel-assigned; read back via
  /// Daemon::port()).
  int port = 0;
  /// The batching/routing engine configuration — identical semantics to the
  /// DES Server (device/pool, batch sizes, deadline, cache, profile db).
  serve::ServerOptions serving{};
  /// Models to optimize into the recipe cache before accepting traffic.
  std::vector<std::string> prewarm_models;
  /// Host threads for prewarming (<= 0 = one per hardware thread).
  int prewarm_threads = 0;
  /// Admission bound: max requests in flight (queued + executing) before
  /// new inference requests are refused with "overloaded".
  std::size_t max_pending = 1024;
  /// Service-time emulation: each batch occupies its executor thread for
  /// service_us * time_scale wall microseconds (1.0 = the simulated device
  /// in real time; 0 = complete instantly, useful in tests).
  double time_scale = 1.0;
  /// Connection-handler threads; also the max concurrent connections.
  int io_threads = 4;
  /// Close a connection that sends nothing for this long (wall
  /// microseconds; 0 = never). Counted in DaemonStats::idle_closes.
  double idle_timeout_us = 0;
  /// Slow-client guard: a response write that cannot complete within this
  /// budget (the peer stopped draining its receive window) abandons the
  /// connection (wall microseconds; 0 = never). Counted in
  /// DaemonStats::slow_client_closes.
  double write_timeout_us = 0;
  /// Bound on one request line (bytes, excluding the newline; 0 =
  /// unlimited). An oversized line gets a protocol-error response and a
  /// close, never an unbounded buffer.
  std::size_t max_line_bytes = 64 * 1024;
  /// Enables the chaos protocol verbs kill_worker / stall_worker. Off by
  /// default: a production daemon must not let a client kill workers.
  bool chaos = false;
  /// Executor watchdog: a worker whose in-flight batch overruns its
  /// expected wall service time by more than this is declared dead — the
  /// engine routes around it and the batch's members are requeued (0 =
  /// watchdog disabled).
  double stuck_grace_us = 0;
  /// Watchdog poll period (wall microseconds).
  double watchdog_interval_us = 20000;
  /// Daemon-side fault injection applied to every accepted connection
  /// (torn/stalled/dropped response writes, stalled reads). All-zero =
  /// off; chaos testing only.
  FaultSpec fault{};
};

/// Parses a daemon config file (JSON object) into options. Recognized keys:
/// port, device, devices (pool spec string), workers, batch_sizes (array),
/// max_queue_delay_us, shards, capacity, profile_db, prewarm (array of
/// model names), prewarm_threads, max_pending, time_scale, io_threads,
/// slo (object: model name -> SLO in us, or -> {"slo_us": n,
/// "priority": p}), default_slo_us, default_priority, shed (bool),
/// shed_slack, starvation_limit_us, adaptive (bool), idle_timeout_us,
/// write_timeout_us, max_line_bytes, chaos (bool), stuck_grace_us,
/// watchdog_interval_us, fault (object: seed, torn_write_prob, stall_prob,
/// stall_us, disconnect_prob). Unknown keys throw std::runtime_error (a
/// typo'd config should not silently serve defaults).
DaemonOptions daemon_options_from_json(const JsonValue& config);

/// Lifetime counters of a daemon.
struct DaemonStats {
  std::int64_t connections = 0;      ///< accepted TCP connections
  std::int64_t admitted = 0;         ///< inference requests admitted
  std::int64_t completed = 0;        ///< inference responses written
  std::int64_t rejected = 0;         ///< refused by the admission bound
  std::int64_t protocol_errors = 0;  ///< malformed / unknown-model requests
  std::int64_t batches = 0;          ///< batches dispatched to executors
  /// Admitted requests the shed policy rejected (answered
  /// {"ok":false,"error":"shed"}). admitted == completed + shed after a
  /// clean drain.
  std::int64_t shed = 0;
  std::int64_t replans = 0;          ///< adaptive-controller re-plans
  std::int64_t idle_closes = 0;      ///< connections closed by idle timeout
  std::int64_t slow_client_closes = 0;  ///< writes abandoned by the timeout
  std::int64_t oversized_lines = 0;  ///< request lines over max_line_bytes
  std::int64_t worker_deaths = 0;    ///< workers killed (verb or watchdog)
  /// In-flight / queued batch members resubmitted after a worker death.
  /// They keep their pending entry, so a requeued request is answered
  /// exactly once — never lost, never double-counted.
  std::int64_t requeued_requests = 0;
};

/// The long-running serving daemon (see the file comment). start() binds
/// and spawns the thread fleet; stop() drains gracefully; serve_forever()
/// parks the calling thread until SIGTERM/SIGINT.
class Daemon {
 public:
  /// Builds the engine (normalizing options) but does not bind or spawn
  /// anything — call start().
  explicit Daemon(DaemonOptions options);
  /// Drains via stop() if still running.
  ~Daemon();
  Daemon(const Daemon&) = delete;             ///< not copyable (owns threads)
  Daemon& operator=(const Daemon&) = delete;  ///< not copyable (owns threads)

  /// Binds 127.0.0.1:port, prewarms, and spawns the accept/io/batcher/
  /// executor threads. Throws std::runtime_error on bind failure; throws
  /// std::logic_error if already started.
  void start();

  /// The bound port (valid after start()).
  int port() const;

  /// Graceful drain: stop accepting, flush the engine's queues, finish
  /// in-flight batches, answer every admitted request, join all threads.
  /// Idempotent; also invoked by the destructor.
  void stop();

  /// True between start() and the end of stop().
  bool running() const { return running_.load(); }

  /// Installs SIGTERM/SIGINT handlers, parks until one arrives, then
  /// drains via stop(). Returns the signal number. Call from the main
  /// thread after start().
  int serve_forever();

  /// Lifetime counters.
  DaemonStats stats() const;

  /// Kills `worker`: marks it dead in the engine (the router stops
  /// considering it), steals its in-flight and queued batches, and
  /// resubmits their members so every admitted request is still answered —
  /// the wall-clock twin of the fleet simulator's failure handling. Refuses
  /// (returns false, fills *error) for a bad index, an already-dead worker,
  /// or the last alive worker. Called by the chaos verb and the watchdog;
  /// safe from any thread.
  bool kill_worker(int worker, std::string* error);

  /// The engine options the daemon actually runs with (normalized).
  const serve::ServerOptions& serving_options() const {
    return engine_.options();
  }

  /// Engine-level optimizer accounting and the recipe cache.
  serve::EngineCounters engine_counters() const { return engine_.counters(); }
  serve::ShardedRecipeCache& cache() { return engine_.cache(); }

 private:
  /// One live client connection: the socket plus a write lock so executor
  /// threads interleave whole response lines, never bytes.
  struct Connection {
    explicit Connection(Socket s) : sock(std::move(s)) {}
    Socket sock;
    std::mutex write_mu;
  };

  /// An admitted request waiting for its batch to complete.
  struct Pending {
    std::shared_ptr<Connection> conn;
    std::int64_t client_id = 0;
    double wall_admitted_us = 0;
  };

  void accept_loop();
  void io_loop();
  void batcher_loop();
  void executor_loop(int worker);
  void watchdog_loop();

  /// Serves one connection until EOF or shutdown.
  void handle_connection(const std::shared_ptr<Connection>& conn);

  /// Handles one parsed request line on `conn`.
  void handle_request(const std::shared_ptr<Connection>& conn,
                      const WireRequest& request);

  /// Pushes formed batches onto the executor queues. A batch routed to a
  /// worker that died between formation and dispatch is not enqueued; its
  /// members are requeued instead.
  void dispatch(std::vector<serve::EngineBatch> formed);

  /// Resubmits orphaned batch members (their pending entries are intact,
  /// so each is still answered exactly once) and dispatches whatever
  /// batches the resubmission forms. Takes engine_mu_; call unlocked.
  void requeue(std::vector<serve::EngineRequest> members);

  /// Answers shed requests with {"ok":false,"error":"shed"} and settles
  /// their pending entries. Takes engine_mu_ per record; call unlocked.
  void answer_shed(std::vector<serve::ShedRecord> sheds);

  /// Writes one response line (appending '\n'), swallowing write errors
  /// from a dead peer — the response has nowhere useful to go.
  void write_response(const std::shared_ptr<Connection>& conn,
                      const std::string& line);

  /// The stats JSON answered to a "stats" request.
  std::string stats_json(std::int64_t id) const;

  /// The health JSON answered to a "health" request: live workers, queue
  /// depths, and the fault/timeout counters.
  std::string health_json(std::int64_t id) const;

  DaemonOptions options_;
  serve::WallClock clock_;
  serve::ServingEngine engine_;
  /// Load-shift detector + re-planner (null unless
  /// serving.adaptive.enabled). io threads feed arrivals, executors feed
  /// SLO outcomes, the batcher runs due re-plans off the request path.
  std::unique_ptr<serve::AdaptiveController> adaptive_;
  std::set<std::string> known_models_;  ///< admission-time model validation

  std::optional<ListenSocket> listener_;
  int wake_pipe_[2] = {-1, -1};  ///< stop() -> accept loop
  int sig_pipe_[2] = {-1, -1};   ///< signal handler -> serve_forever

  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex stop_mu_;  ///< serializes stop() (dtor vs serve_forever)
  bool stopped_ = false;

  // Engine + admission state, one lock (the engine is externally
  // serialized by contract).
  mutable std::mutex engine_mu_;
  std::condition_variable engine_cv_;  ///< batcher wake: deadline changed
  std::condition_variable drain_cv_;   ///< stop() wake: pending emptied
  std::map<std::int64_t, Pending> pending_;
  std::int64_t next_engine_id_ = 0;

  // Accepted-connection handoff to the io pool.
  std::mutex conn_mu_;
  std::condition_variable conn_cv_;
  std::deque<std::shared_ptr<Connection>> accepted_;
  std::vector<std::weak_ptr<Connection>> live_;  ///< for shutdown_read

  // Executor queues, one per engine worker. A worker's in-flight batch
  // stays visible in inflight_ while its executor emulates the service
  // time, so a kill (verb or watchdog) can steal and requeue its members
  // mid-execution; the executor notices the steal on wakeup and drops the
  // batch. exec_dead_ mirrors the engine's liveness for the dispatch path.
  std::mutex exec_mu_;
  std::condition_variable exec_cv_;
  std::vector<std::deque<serve::EngineBatch>> exec_queues_;
  bool exec_stop_ = false;

  /// A batch currently occupying its executor (see exec_mu_ comment).
  struct InFlight {
    bool active = false;
    std::vector<serve::EngineRequest> members;
    /// Wall time the batch should complete (start + service * time_scale,
    /// excluding injected stalls) — the watchdog's overdue baseline.
    double deadline_wall_us = 0;
  };
  std::vector<InFlight> inflight_;
  std::vector<char> exec_dead_;
  /// One-shot extra wall stall applied to the worker's next batch (the
  /// stall_worker chaos verb; consumed on batch start).
  std::vector<double> exec_stall_us_;

  /// Daemon-side fault injector shared by every accepted connection (null
  /// unless options.fault injects anything).
  std::unique_ptr<FaultInjector> fault_;

  // The watchdog outlives the early phases of stop() (it may have to
  // rescue a drain wedged behind a stuck worker), so it has its own stop
  // flag, set only after every pending request is answered.
  std::mutex watchdog_mu_;
  std::condition_variable watchdog_cv_;
  bool watchdog_stop_ = false;

  std::thread accept_thread_;
  std::thread batcher_thread_;
  std::thread watchdog_thread_;
  std::vector<std::thread> io_threads_;
  std::vector<std::thread> exec_threads_;

  // Lifetime counters (atomics: bumped from io/executor threads, read from
  // stats() on any thread).
  std::atomic<std::int64_t> connections_{0};
  std::atomic<std::int64_t> admitted_{0};
  std::atomic<std::int64_t> completed_{0};
  std::atomic<std::int64_t> rejected_{0};
  std::atomic<std::int64_t> protocol_errors_{0};
  std::atomic<std::int64_t> batches_{0};
  std::atomic<std::int64_t> shed_{0};
  std::atomic<std::int64_t> idle_closes_{0};
  std::atomic<std::int64_t> slow_client_closes_{0};
  std::atomic<std::int64_t> oversized_lines_{0};
  std::atomic<std::int64_t> worker_deaths_{0};
  std::atomic<std::int64_t> requeued_requests_{0};
};

}  // namespace ios::net
