#pragma once
// The daemon's wire protocol: newline-delimited JSON, one object per line
// in each direction, over a plain TCP stream. Requests carry a
// client-chosen id that the response echoes, so a client may pipeline
// arbitrarily many requests on one connection and match completions as its
// batches finish (responses come back in batch-completion order, not
// submission order — that is the whole point of a batching server).
//
//   -> {"id":7,"model":"squeezenet"}                     inference
//   -> {"id":8,"cmd":"ping"}                             liveness probe
//   -> {"id":9,"cmd":"stats"}                            engine counters
//   -> {"id":10,"cmd":"health"}                          worker/fault health
//   -> {"id":11,"cmd":"kill_worker","worker":0}          chaos: kill worker
//   -> {"id":12,"cmd":"stall_worker","worker":0,
//       "stall_us":500000}                               chaos: wedge worker
//   <- {"id":7,"ok":true,"model":"squeezenet","batch_size":4,
//       "worker":0,"device":"Tesla V100","latency_us":...,
//       "queue_us":...,"service_us":...,"wall_latency_us":...}
//   <- {"id":3,"ok":false,"error":"overloaded"}          backpressure
//
// latency/queue/service_us are engine-clock numbers (the same quantities
// the DES reports); wall_latency_us is measured admission-to-response on
// the daemon's wall clock.

#include <cstdint>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace ios::net {

/// What a request line asks for. The two chaos verbs (kKillWorker,
/// kStallWorker) are only honored when the daemon runs with chaos enabled;
/// kStallWorker wedges a worker's next batch past its expected service time
/// so the executor watchdog can be exercised end-to-end.
enum class RequestKind {
  kInfer,
  kPing,
  kStats,
  kHealth,
  kKillWorker,
  kStallWorker,
};

/// A parsed request line.
struct WireRequest {
  std::int64_t id = 0;
  RequestKind kind = RequestKind::kInfer;
  std::string model;    ///< kInfer only
  int worker = -1;      ///< kKillWorker / kStallWorker target
  double stall_us = 0;  ///< kStallWorker only
};

/// A response line (inference result or error; ping/stats build their JSON
/// directly in the daemon).
struct WireResponse {
  std::int64_t id = 0;
  bool ok = false;
  std::string error;  ///< non-empty iff !ok

  std::string model;
  std::string device;
  int batch_size = 0;
  int worker = 0;
  double latency_us = 0;       ///< engine-clock completion - arrival
  double queue_us = 0;         ///< engine-clock dispatch - arrival
  double service_us = 0;       ///< schedule latency of the coalesced batch
  double wall_latency_us = 0;  ///< daemon wall clock, admission -> response
};

/// Parses one request line. Throws std::runtime_error on malformed JSON, a
/// missing/unknown cmd, or a missing model on an inference request.
WireRequest parse_request(std::string_view line);

/// Serializes a request (the trace client's sender side), without the
/// trailing newline.
std::string format_request(const WireRequest& request);

/// Serializes a response, without the trailing newline.
std::string format_response(const WireResponse& response);

/// Parses a response line (the trace client's receiver side). Throws
/// std::runtime_error on malformed input.
WireResponse parse_response(std::string_view line);

/// An error response for `id` (e.g. "overloaded", "unknown model ...").
WireResponse error_response(std::int64_t id, std::string message);

}  // namespace ios::net
