#include "net/daemon.hpp"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "models/models.hpp"
#include "place/pool.hpp"
#include "util/names.hpp"

namespace ios::net {

namespace {

// serve_forever's signal plumbing: the handler may only touch
// async-signal-safe state, so it records the signal number and pokes the
// daemon's signal pipe.
std::atomic<int> g_signal_fd{-1};
std::atomic<int> g_signal{0};

void handle_shutdown_signal(int sig) {
  g_signal.store(sig);
  const int fd = g_signal_fd.load();
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void make_pipe(int fds[2], const char* what) {
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("pipe (") + what + ") failed");
  }
}

void close_pipe(int fds[2]) {
  for (int i = 0; i < 2; ++i) {
    if (fds[i] >= 0) {
      ::close(fds[i]);
      fds[i] = -1;
    }
  }
}

}  // namespace

DaemonOptions daemon_options_from_json(const JsonValue& config) {
  if (!config.is_object()) {
    throw std::runtime_error("daemon config must be a JSON object");
  }
  DaemonOptions options;
  for (const auto& [key, value] : config.as_object()) {
    if (key == "port") {
      options.port = static_cast<int>(value.as_int());
    } else if (key == "device") {
      options.serving.device = value.as_string();
    } else if (key == "devices") {
      options.serving.pool = pool_from_spec(value.as_string());
    } else if (key == "workers") {
      options.serving.num_workers = static_cast<int>(value.as_int());
    } else if (key == "batch_sizes") {
      options.serving.batching.batch_sizes.clear();
      for (const JsonValue& b : value.as_array()) {
        options.serving.batching.batch_sizes.push_back(
            static_cast<int>(b.as_int()));
      }
    } else if (key == "max_queue_delay_us") {
      options.serving.batching.max_queue_delay_us = value.as_number();
    } else if (key == "shards") {
      options.serving.cache.num_shards =
          static_cast<std::size_t>(value.as_int());
    } else if (key == "capacity") {
      options.serving.cache.shard_capacity =
          static_cast<std::size_t>(value.as_int());
    } else if (key == "profile_db") {
      options.serving.profile_db = value.as_string();
    } else if (key == "prewarm") {
      for (const JsonValue& m : value.as_array()) {
        options.prewarm_models.push_back(m.as_string());
      }
    } else if (key == "prewarm_threads") {
      options.prewarm_threads = static_cast<int>(value.as_int());
    } else if (key == "max_pending") {
      options.max_pending = static_cast<std::size_t>(value.as_int());
    } else if (key == "time_scale") {
      options.time_scale = value.as_number();
    } else if (key == "io_threads") {
      options.io_threads = static_cast<int>(value.as_int());
    } else if (key == "slo") {
      // Per-model SLO classes: "model": 2500 (SLO only) or
      // "model": {"slo_us": 2500, "priority": 2}.
      for (const auto& [model, cls] : value.as_object()) {
        serve::SloClass slo;
        if (cls.is_object()) {
          for (const auto& [k, v] : cls.as_object()) {
            if (k == "slo_us") {
              slo.slo_us = v.as_number();
            } else if (k == "priority") {
              slo.priority = static_cast<int>(v.as_int());
            } else {
              throw std::runtime_error(
                  "daemon config: unknown slo key '" + k +
                  "' for model '" + model + "'; known keys: slo_us priority");
            }
          }
        } else {
          slo.slo_us = cls.as_number();
        }
        options.serving.slo.models[model] = slo;
      }
    } else if (key == "default_slo_us") {
      options.serving.slo.fallback.slo_us = value.as_number();
    } else if (key == "default_priority") {
      options.serving.slo.fallback.priority = static_cast<int>(value.as_int());
    } else if (key == "shed") {
      options.serving.slo.shed = value.as_bool();
    } else if (key == "shed_slack") {
      options.serving.slo.shed_slack_factor = value.as_number();
    } else if (key == "starvation_limit_us") {
      options.serving.slo.starvation_limit_us = value.as_number();
    } else if (key == "adaptive") {
      options.serving.adaptive.enabled = value.as_bool();
    } else {
      throw std::runtime_error(
          "daemon config: unknown key '" + key +
          "'; known keys: port device devices workers batch_sizes "
          "max_queue_delay_us shards capacity profile_db prewarm "
          "prewarm_threads max_pending time_scale io_threads slo "
          "default_slo_us default_priority shed shed_slack "
          "starvation_limit_us adaptive");
    }
  }
  return options;
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), engine_(options_.serving, &clock_) {
  if (engine_.options().adaptive.enabled) {
    adaptive_ = std::make_unique<serve::AdaptiveController>(
        engine_.options().adaptive, engine_);
  }
  const std::vector<std::string> models = models::model_names();
  known_models_.insert(models.begin(), models.end());
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (started_) throw std::logic_error("Daemon::start: already started");
  started_ = true;

  listener_.emplace(options_.port);
  make_pipe(wake_pipe_, "accept wake");
  make_pipe(sig_pipe_, "signal wake");

  if (!options_.prewarm_models.empty()) {
    engine_.prewarm(options_.prewarm_models, options_.prewarm_threads);
  }

  exec_queues_.resize(engine_.worker_busy().size());
  running_.store(true);

  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  batcher_thread_ = std::thread(&Daemon::batcher_loop, this);
  const int io = std::max(1, options_.io_threads);
  io_threads_.reserve(static_cast<std::size_t>(io));
  for (int i = 0; i < io; ++i) {
    io_threads_.emplace_back(&Daemon::io_loop, this);
  }
  exec_threads_.reserve(exec_queues_.size());
  for (std::size_t w = 0; w < exec_queues_.size(); ++w) {
    exec_threads_.emplace_back(&Daemon::executor_loop, this,
                               static_cast<int>(w));
  }
}

int Daemon::port() const {
  if (!listener_) throw std::logic_error("Daemon::port: not started");
  return listener_->port();
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);

  // 1. Stop accepting: wake the accept loop, close the listener.
  {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();

  // 2. Stop reading: drop never-served connections, EOF the live readers,
  //    and join the io pool — after this no new request can be admitted.
  {
    std::lock_guard<std::mutex> guard(conn_mu_);
    accepted_.clear();
    for (auto& weak : live_) {
      if (auto conn = weak.lock()) conn->sock.shutdown_read();
    }
  }
  conn_cv_.notify_all();
  for (auto& t : io_threads_) {
    if (t.joinable()) t.join();
  }

  // 3. Flush: every queued request leaves the engine in a batch now
  //    (drain never sheds, but poll-time sheds may still be unanswered).
  std::vector<serve::EngineBatch> formed;
  std::vector<serve::ShedRecord> sheds;
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    formed = engine_.drain();
    sheds = engine_.take_shed();
  }
  dispatch(std::move(formed));
  answer_shed(std::move(sheds));
  engine_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();

  // 4. Wait until every admitted request has been answered.
  {
    std::unique_lock<std::mutex> lock(engine_mu_);
    drain_cv_.wait(lock, [this] { return pending_.empty(); });
  }

  // 5. Park the executors and tear down.
  {
    std::lock_guard<std::mutex> guard(exec_mu_);
    exec_stop_ = true;
  }
  exec_cv_.notify_all();
  for (auto& t : exec_threads_) {
    if (t.joinable()) t.join();
  }

  close_pipe(wake_pipe_);
  close_pipe(sig_pipe_);
  running_.store(false);
}

int Daemon::serve_forever() {
  if (!running_.load()) {
    throw std::logic_error("Daemon::serve_forever: call start() first");
  }
  g_signal.store(0);
  g_signal_fd.store(sig_pipe_[1]);

  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_term {}, old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  char byte = 0;
  while (::read(sig_pipe_[0], &byte, 1) < 0 && errno == EINTR) {
  }

  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  g_signal_fd.store(-1);

  stop();
  return g_signal.load();
}

DaemonStats Daemon::stats() const {
  DaemonStats stats;
  stats.connections = connections_.load();
  stats.admitted = admitted_.load();
  stats.completed = completed_.load();
  stats.rejected = rejected_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.batches = batches_.load();
  stats.shed = shed_.load();
  if (adaptive_) stats.replans = adaptive_->stats().replans;
  return stats;
}

void Daemon::accept_loop() {
  for (;;) {
    std::optional<Socket> accepted =
        listener_->accept_interruptible(wake_pipe_[0]);
    if (stopping_.load()) return;
    if (!accepted) continue;  // transient accept failure
    auto conn = std::make_shared<Connection>(std::move(*accepted));
    connections_.fetch_add(1);
    {
      std::lock_guard<std::mutex> guard(conn_mu_);
      live_.erase(std::remove_if(live_.begin(), live_.end(),
                                 [](const std::weak_ptr<Connection>& w) {
                                   return w.expired();
                                 }),
                  live_.end());
      live_.push_back(conn);
      accepted_.push_back(std::move(conn));
    }
    conn_cv_.notify_one();
  }
}

void Daemon::io_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return stopping_.load() || !accepted_.empty();
      });
      if (accepted_.empty()) return;  // stopping
      conn = std::move(accepted_.front());
      accepted_.pop_front();
    }
    handle_connection(conn);
  }
}

void Daemon::handle_connection(const std::shared_ptr<Connection>& conn) {
  std::string line;
  try {
    while (conn->sock.read_line(line)) {
      if (line.empty()) continue;
      WireRequest request;
      try {
        request = parse_request(line);
      } catch (const std::exception& e) {
        protocol_errors_.fetch_add(1);
        write_response(conn, format_response(error_response(0, e.what())));
        continue;
      }
      handle_request(conn, request);
    }
  } catch (const std::exception&) {
    // Read error: the peer vanished mid-line. Pending responses for this
    // connection still complete; their writes fail quietly.
  }
}

void Daemon::handle_request(const std::shared_ptr<Connection>& conn,
                            const WireRequest& request) {
  switch (request.kind) {
    case RequestKind::kPing: {
      JsonValue v = JsonValue::object();
      v.set("id", request.id);
      v.set("ok", true);
      v.set("pong", true);
      write_response(conn, v.dump());
      return;
    }
    case RequestKind::kStats:
      write_response(conn, stats_json(request.id));
      return;
    case RequestKind::kInfer:
      break;
  }

  // Validate the model before it reaches the engine: an unknown name must
  // be one failed request, not an exception inside a shared batch.
  if (known_models_.find(request.model) == known_models_.end()) {
    protocol_errors_.fetch_add(1);
    write_response(
        conn, format_response(error_response(
                  request.id, unknown_name_message("model", request.model,
                                                   models::model_names()))));
    return;
  }

  std::vector<serve::EngineBatch> formed;
  std::string refusal;
  {
    std::unique_lock<std::mutex> lock(engine_mu_);
    if (stopping_.load()) {
      refusal = "shutting down";
    } else if (pending_.size() >= options_.max_pending) {
      refusal = "overloaded";
    } else {
      const std::int64_t engine_id = next_engine_id_++;
      Pending pending;
      pending.conn = conn;
      pending.client_id = request.id;
      pending.wall_admitted_us = clock_.now_us();
      pending_.emplace(engine_id, std::move(pending));
      admitted_.fetch_add(1);
      try {
        formed = engine_.submit(engine_id, request.model);
      } catch (const std::exception& e) {
        pending_.erase(engine_id);
        admitted_.fetch_sub(1);
        refusal = e.what();
      }
    }
  }
  if (!refusal.empty()) {
    rejected_.fetch_add(1);
    write_response(conn,
                   format_response(error_response(request.id, refusal)));
    return;
  }
  // Feed the load detector outside engine_mu_: the controller has its own
  // lock and must never nest inside the engine's.
  if (adaptive_) adaptive_->observe_arrival(request.model, clock_.now_us());
  engine_cv_.notify_one();  // the next flush deadline may have changed
  dispatch(std::move(formed));
}

void Daemon::batcher_loop() {
  std::unique_lock<std::mutex> lock(engine_mu_);
  while (!stopping_.load()) {
    // Due re-plans run here, off the request path, with the engine lock
    // dropped: a re-plan only touches the shared recipe cache and profile
    // db, never live queues, so serving continues underneath it.
    if (adaptive_ && adaptive_->replan_due(clock_.now_us())) {
      lock.unlock();
      try {
        adaptive_->replan(clock_.now_us());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ios daemon: replan error: %s\n", e.what());
      }
      lock.lock();
      continue;
    }
    const double deadline = engine_.next_deadline_us();
    if (deadline == std::numeric_limits<double>::infinity()) {
      engine_cv_.wait(lock);
      continue;
    }
    // +1us: time_point_at truncates, and waking a hair early would spin.
    engine_cv_.wait_until(
        lock, clock_.time_point_at(deadline) + std::chrono::microseconds(1));
    if (stopping_.load()) break;
    std::vector<serve::EngineBatch> formed;
    std::vector<serve::ShedRecord> sheds;
    try {
      formed = engine_.poll();
      sheds = engine_.take_shed();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ios daemon: batcher error: %s\n", e.what());
      continue;
    }
    if (!formed.empty() || !sheds.empty()) {
      lock.unlock();
      dispatch(std::move(formed));
      answer_shed(std::move(sheds));
      lock.lock();
    }
  }
}

void Daemon::dispatch(std::vector<serve::EngineBatch> formed) {
  if (formed.empty()) return;
  {
    std::lock_guard<std::mutex> guard(exec_mu_);
    for (serve::EngineBatch& batch : formed) {
      batches_.fetch_add(1);
      exec_queues_[static_cast<std::size_t>(batch.record.worker)].push_back(
          std::move(batch));
    }
  }
  exec_cv_.notify_all();
}

void Daemon::executor_loop(int worker) {
  const auto w = static_cast<std::size_t>(worker);
  for (;;) {
    serve::EngineBatch batch;
    {
      std::unique_lock<std::mutex> lock(exec_mu_);
      exec_cv_.wait(lock, [this, w] {
        return exec_stop_ || !exec_queues_[w].empty();
      });
      if (exec_queues_[w].empty()) return;  // exec_stop_ and drained
      batch = std::move(exec_queues_[w].front());
      exec_queues_[w].pop_front();
    }

    // Occupy this worker for the schedule's latency: the simulated device,
    // made temporal (time_scale 0 in tests skips the sleep).
    if (options_.time_scale > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double, std::micro>(
          batch.record.service_us * options_.time_scale));
    }

    const double batch_slo =
        adaptive_ ? engine_.slo_for(batch.record.model).slo_us
                  : std::numeric_limits<double>::infinity();
    for (const serve::EngineRequest& member : batch.members) {
      if (adaptive_) {
        adaptive_->observe_outcome(
            batch.record.model,
            batch.record.completion_us - member.arrival_us <= batch_slo);
      }
      Pending pending;
      {
        std::lock_guard<std::mutex> guard(engine_mu_);
        auto it = pending_.find(member.id);
        if (it == pending_.end()) continue;  // refused after formation: never
        pending = std::move(it->second);
        pending_.erase(it);
        if (pending_.empty()) drain_cv_.notify_all();
      }
      WireResponse response;
      response.id = pending.client_id;
      response.ok = true;
      response.model = batch.record.model;
      response.device = batch.record.device;
      response.batch_size = batch.record.size;
      response.worker = batch.record.worker;
      response.latency_us = batch.record.completion_us - member.arrival_us;
      response.queue_us = batch.record.start_us - member.arrival_us;
      response.service_us = batch.record.service_us;
      response.wall_latency_us = clock_.now_us() - pending.wall_admitted_us;
      write_response(pending.conn, format_response(response));
      completed_.fetch_add(1);
    }
  }
}

void Daemon::answer_shed(std::vector<serve::ShedRecord> sheds) {
  for (const serve::ShedRecord& record : sheds) {
    Pending pending;
    {
      std::lock_guard<std::mutex> guard(engine_mu_);
      auto it = pending_.find(record.id);
      if (it == pending_.end()) continue;
      pending = std::move(it->second);
      pending_.erase(it);
      if (pending_.empty()) drain_cv_.notify_all();
    }
    shed_.fetch_add(1);
    if (adaptive_) adaptive_->observe_outcome(record.model, false);
    write_response(pending.conn,
                   format_response(error_response(pending.client_id, "shed")));
  }
}

void Daemon::write_response(const std::shared_ptr<Connection>& conn,
                            const std::string& line) {
  std::lock_guard<std::mutex> guard(conn->write_mu);
  try {
    conn->sock.write_all(line);
    conn->sock.write_all("\n");
  } catch (const std::exception&) {
    // Dead peer: nothing useful to do with the response.
  }
}

std::string Daemon::stats_json(std::int64_t id) const {
  JsonValue v = JsonValue::object();
  v.set("id", id);
  v.set("ok", true);
  v.set("connections", connections_.load());
  v.set("admitted", admitted_.load());
  v.set("completed", completed_.load());
  v.set("rejected", rejected_.load());
  v.set("protocol_errors", protocol_errors_.load());
  v.set("batches", batches_.load());
  v.set("shed", shed_.load());
  if (adaptive_) {
    const serve::AdaptiveStats a = adaptive_->stats();
    v.set("replans", a.replans);
    v.set("shifts_detected", a.shifts_detected);
    v.set("attainment_ewma", a.attainment_ewma);
  }
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    v.set("pending", static_cast<std::int64_t>(pending_.size()));
    v.set("queued", static_cast<std::int64_t>(engine_.queued()));
  }
  const serve::EngineCounters counters = engine_.counters();
  v.set("optimizations", counters.optimizations);
  v.set("measurements", counters.measurements);
  const serve::RecipeCacheStats cache = engine_.cache().stats();
  v.set("cache_hits", cache.hits);
  v.set("cache_misses", cache.misses);
  v.set("cache_size", static_cast<std::int64_t>(cache.size));
  return v.dump();
}

}  // namespace ios::net
