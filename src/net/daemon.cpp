#include "net/daemon.hpp"

#include <csignal>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <stdexcept>
#include <utility>

#include "models/models.hpp"
#include "place/pool.hpp"
#include "util/names.hpp"

namespace ios::net {

namespace {

// serve_forever's signal plumbing: the handler may only touch
// async-signal-safe state, so it records the signal number and pokes the
// daemon's signal pipe.
std::atomic<int> g_signal_fd{-1};
std::atomic<int> g_signal{0};

void handle_shutdown_signal(int sig) {
  g_signal.store(sig);
  const int fd = g_signal_fd.load();
  if (fd >= 0) {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(fd, &byte, 1);
  }
}

void make_pipe(int fds[2], const char* what) {
  if (::pipe(fds) != 0) {
    throw std::runtime_error(std::string("pipe (") + what + ") failed");
  }
}

void close_pipe(int fds[2]) {
  for (int i = 0; i < 2; ++i) {
    if (fds[i] >= 0) {
      ::close(fds[i]);
      fds[i] = -1;
    }
  }
}

}  // namespace

DaemonOptions daemon_options_from_json(const JsonValue& config) {
  if (!config.is_object()) {
    throw std::runtime_error("daemon config must be a JSON object");
  }
  DaemonOptions options;
  for (const auto& [key, value] : config.as_object()) {
    if (key == "port") {
      options.port = static_cast<int>(value.as_int());
    } else if (key == "device") {
      options.serving.device = value.as_string();
    } else if (key == "devices") {
      options.serving.pool = pool_from_spec(value.as_string());
    } else if (key == "workers") {
      options.serving.num_workers = static_cast<int>(value.as_int());
    } else if (key == "batch_sizes") {
      options.serving.batching.batch_sizes.clear();
      for (const JsonValue& b : value.as_array()) {
        options.serving.batching.batch_sizes.push_back(
            static_cast<int>(b.as_int()));
      }
    } else if (key == "max_queue_delay_us") {
      options.serving.batching.max_queue_delay_us = value.as_number();
    } else if (key == "shards") {
      options.serving.cache.num_shards =
          static_cast<std::size_t>(value.as_int());
    } else if (key == "capacity") {
      options.serving.cache.shard_capacity =
          static_cast<std::size_t>(value.as_int());
    } else if (key == "profile_db") {
      options.serving.profile_db = value.as_string();
    } else if (key == "prewarm") {
      for (const JsonValue& m : value.as_array()) {
        options.prewarm_models.push_back(m.as_string());
      }
    } else if (key == "prewarm_threads") {
      options.prewarm_threads = static_cast<int>(value.as_int());
    } else if (key == "max_pending") {
      options.max_pending = static_cast<std::size_t>(value.as_int());
    } else if (key == "time_scale") {
      options.time_scale = value.as_number();
    } else if (key == "io_threads") {
      options.io_threads = static_cast<int>(value.as_int());
    } else if (key == "slo") {
      // Per-model SLO classes: "model": 2500 (SLO only) or
      // "model": {"slo_us": 2500, "priority": 2}.
      for (const auto& [model, cls] : value.as_object()) {
        serve::SloClass slo;
        if (cls.is_object()) {
          for (const auto& [k, v] : cls.as_object()) {
            if (k == "slo_us") {
              slo.slo_us = v.as_number();
            } else if (k == "priority") {
              slo.priority = static_cast<int>(v.as_int());
            } else {
              throw std::runtime_error(
                  "daemon config: unknown slo key '" + k +
                  "' for model '" + model + "'; known keys: slo_us priority");
            }
          }
        } else {
          slo.slo_us = cls.as_number();
        }
        options.serving.slo.models[model] = slo;
      }
    } else if (key == "default_slo_us") {
      options.serving.slo.fallback.slo_us = value.as_number();
    } else if (key == "default_priority") {
      options.serving.slo.fallback.priority = static_cast<int>(value.as_int());
    } else if (key == "shed") {
      options.serving.slo.shed = value.as_bool();
    } else if (key == "shed_slack") {
      options.serving.slo.shed_slack_factor = value.as_number();
    } else if (key == "starvation_limit_us") {
      options.serving.slo.starvation_limit_us = value.as_number();
    } else if (key == "adaptive") {
      options.serving.adaptive.enabled = value.as_bool();
    } else if (key == "idle_timeout_us") {
      options.idle_timeout_us = value.as_number();
    } else if (key == "write_timeout_us") {
      options.write_timeout_us = value.as_number();
    } else if (key == "max_line_bytes") {
      options.max_line_bytes = static_cast<std::size_t>(value.as_int());
    } else if (key == "chaos") {
      options.chaos = value.as_bool();
    } else if (key == "stuck_grace_us") {
      options.stuck_grace_us = value.as_number();
    } else if (key == "watchdog_interval_us") {
      options.watchdog_interval_us = value.as_number();
    } else if (key == "fault") {
      for (const auto& [k, v] : value.as_object()) {
        if (k == "seed") {
          options.fault.seed = static_cast<std::uint64_t>(v.as_int());
        } else if (k == "torn_write_prob") {
          options.fault.torn_write_prob = v.as_number();
        } else if (k == "stall_prob") {
          options.fault.stall_prob = v.as_number();
        } else if (k == "stall_us") {
          options.fault.stall_us = v.as_number();
        } else if (k == "disconnect_prob") {
          options.fault.disconnect_prob = v.as_number();
        } else {
          throw std::runtime_error(
              "daemon config: unknown fault key '" + k +
              "'; known keys: seed torn_write_prob stall_prob stall_us "
              "disconnect_prob");
        }
      }
    } else {
      throw std::runtime_error(
          "daemon config: unknown key '" + key +
          "'; known keys: port device devices workers batch_sizes "
          "max_queue_delay_us shards capacity profile_db prewarm "
          "prewarm_threads max_pending time_scale io_threads slo "
          "default_slo_us default_priority shed shed_slack "
          "starvation_limit_us adaptive idle_timeout_us write_timeout_us "
          "max_line_bytes chaos stuck_grace_us watchdog_interval_us fault");
    }
  }
  return options;
}

Daemon::Daemon(DaemonOptions options)
    : options_(std::move(options)), engine_(options_.serving, &clock_) {
  if (engine_.options().adaptive.enabled) {
    adaptive_ = std::make_unique<serve::AdaptiveController>(
        engine_.options().adaptive, engine_);
  }
  const std::vector<std::string> models = models::model_names();
  known_models_.insert(models.begin(), models.end());
  if (options_.fault.any()) {
    fault_ = std::make_unique<FaultInjector>(options_.fault);
  }
}

Daemon::~Daemon() { stop(); }

void Daemon::start() {
  if (started_) throw std::logic_error("Daemon::start: already started");
  started_ = true;

  listener_.emplace(options_.port);
  make_pipe(wake_pipe_, "accept wake");
  make_pipe(sig_pipe_, "signal wake");

  if (!options_.prewarm_models.empty()) {
    engine_.prewarm(options_.prewarm_models, options_.prewarm_threads);
  }

  exec_queues_.resize(engine_.worker_busy().size());
  inflight_.resize(exec_queues_.size());
  exec_dead_.assign(exec_queues_.size(), 0);
  exec_stall_us_.assign(exec_queues_.size(), 0.0);
  running_.store(true);

  accept_thread_ = std::thread(&Daemon::accept_loop, this);
  batcher_thread_ = std::thread(&Daemon::batcher_loop, this);
  if (options_.stuck_grace_us > 0) {
    watchdog_thread_ = std::thread(&Daemon::watchdog_loop, this);
  }
  const int io = std::max(1, options_.io_threads);
  io_threads_.reserve(static_cast<std::size_t>(io));
  for (int i = 0; i < io; ++i) {
    io_threads_.emplace_back(&Daemon::io_loop, this);
  }
  exec_threads_.reserve(exec_queues_.size());
  for (std::size_t w = 0; w < exec_queues_.size(); ++w) {
    exec_threads_.emplace_back(&Daemon::executor_loop, this,
                               static_cast<int>(w));
  }
}

int Daemon::port() const {
  if (!listener_) throw std::logic_error("Daemon::port: not started");
  return listener_->port();
}

void Daemon::stop() {
  {
    std::lock_guard<std::mutex> guard(stop_mu_);
    if (!started_ || stopped_) return;
    stopped_ = true;
  }
  stopping_.store(true);

  // 1. Stop accepting: wake the accept loop, close the listener.
  {
    const char byte = 1;
    [[maybe_unused]] const ssize_t n = ::write(wake_pipe_[1], &byte, 1);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listener_.reset();

  // 2. Stop reading: drop never-served connections, EOF the live readers,
  //    and join the io pool — after this no new request can be admitted.
  {
    std::lock_guard<std::mutex> guard(conn_mu_);
    accepted_.clear();
    for (auto& weak : live_) {
      if (auto conn = weak.lock()) conn->sock.shutdown_read();
    }
  }
  conn_cv_.notify_all();
  for (auto& t : io_threads_) {
    if (t.joinable()) t.join();
  }

  // 3. Flush: every queued request leaves the engine in a batch now
  //    (drain never sheds, but poll-time sheds may still be unanswered).
  std::vector<serve::EngineBatch> formed;
  std::vector<serve::ShedRecord> sheds;
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    formed = engine_.drain();
    sheds = engine_.take_shed();
  }
  dispatch(std::move(formed));
  answer_shed(std::move(sheds));
  engine_cv_.notify_all();
  if (batcher_thread_.joinable()) batcher_thread_.join();

  // 4. Wait until every admitted request has been answered. The watchdog
  //    stays alive through this wait: a worker wedged mid-batch would
  //    otherwise hold the drain hostage; the watchdog kills it and the
  //    requeued members complete on the survivors.
  {
    std::unique_lock<std::mutex> lock(engine_mu_);
    drain_cv_.wait(lock, [this] { return pending_.empty(); });
  }
  {
    std::lock_guard<std::mutex> guard(watchdog_mu_);
    watchdog_stop_ = true;
  }
  watchdog_cv_.notify_all();
  if (watchdog_thread_.joinable()) watchdog_thread_.join();

  // 5. Park the executors and tear down.
  {
    std::lock_guard<std::mutex> guard(exec_mu_);
    exec_stop_ = true;
  }
  exec_cv_.notify_all();
  for (auto& t : exec_threads_) {
    if (t.joinable()) t.join();
  }

  close_pipe(wake_pipe_);
  close_pipe(sig_pipe_);
  running_.store(false);
}

int Daemon::serve_forever() {
  if (!running_.load()) {
    throw std::logic_error("Daemon::serve_forever: call start() first");
  }
  g_signal.store(0);
  g_signal_fd.store(sig_pipe_[1]);

  struct sigaction action {};
  action.sa_handler = handle_shutdown_signal;
  sigemptyset(&action.sa_mask);
  struct sigaction old_term {}, old_int {};
  ::sigaction(SIGTERM, &action, &old_term);
  ::sigaction(SIGINT, &action, &old_int);

  char byte = 0;
  while (::read(sig_pipe_[0], &byte, 1) < 0 && errno == EINTR) {
  }

  ::sigaction(SIGTERM, &old_term, nullptr);
  ::sigaction(SIGINT, &old_int, nullptr);
  g_signal_fd.store(-1);

  stop();
  return g_signal.load();
}

DaemonStats Daemon::stats() const {
  DaemonStats stats;
  stats.connections = connections_.load();
  stats.admitted = admitted_.load();
  stats.completed = completed_.load();
  stats.rejected = rejected_.load();
  stats.protocol_errors = protocol_errors_.load();
  stats.batches = batches_.load();
  stats.shed = shed_.load();
  if (adaptive_) stats.replans = adaptive_->stats().replans;
  stats.idle_closes = idle_closes_.load();
  stats.slow_client_closes = slow_client_closes_.load();
  stats.oversized_lines = oversized_lines_.load();
  stats.worker_deaths = worker_deaths_.load();
  stats.requeued_requests = requeued_requests_.load();
  return stats;
}

void Daemon::accept_loop() {
  for (;;) {
    std::optional<Socket> accepted =
        listener_->accept_interruptible(wake_pipe_[0]);
    if (stopping_.load()) return;
    if (!accepted) continue;  // transient accept failure
    auto conn = std::make_shared<Connection>(std::move(*accepted));
    connections_.fetch_add(1);
    {
      std::lock_guard<std::mutex> guard(conn_mu_);
      live_.erase(std::remove_if(live_.begin(), live_.end(),
                                 [](const std::weak_ptr<Connection>& w) {
                                   return w.expired();
                                 }),
                  live_.end());
      live_.push_back(conn);
      accepted_.push_back(std::move(conn));
    }
    conn_cv_.notify_one();
  }
}

void Daemon::io_loop() {
  for (;;) {
    std::shared_ptr<Connection> conn;
    {
      std::unique_lock<std::mutex> lock(conn_mu_);
      conn_cv_.wait(lock, [this] {
        return stopping_.load() || !accepted_.empty();
      });
      if (accepted_.empty()) return;  // stopping
      conn = std::move(accepted_.front());
      accepted_.pop_front();
    }
    handle_connection(conn);
  }
}

void Daemon::handle_connection(const std::shared_ptr<Connection>& conn) {
  conn->sock.set_max_line_bytes(options_.max_line_bytes);
  if (options_.write_timeout_us > 0) {
    conn->sock.set_write_timeout_us(options_.write_timeout_us);
  }
  if (fault_) conn->sock.set_fault_injector(fault_.get());
  std::string line;
  try {
    for (;;) {
      const ReadStatus status =
          conn->sock.read_line_deadline(line, options_.idle_timeout_us);
      if (status == ReadStatus::kEof) return;
      if (status == ReadStatus::kTimeout) {
        // Idle client: reclaim the io thread. Responses already in flight
        // for this connection still complete; their writes fail quietly.
        idle_closes_.fetch_add(1);
        return;
      }
      if (line.empty()) continue;
      WireRequest request;
      try {
        request = parse_request(line);
      } catch (const std::exception& e) {
        protocol_errors_.fetch_add(1);
        write_response(conn, format_response(error_response(0, e.what())));
        continue;
      }
      handle_request(conn, request);
    }
  } catch (const SocketError& e) {
    if (e.kind() == SocketErrorKind::kOversizedLine) {
      // Bounded-line guard: answer with a protocol error, then close —
      // the stream position inside the oversized line is unknowable.
      oversized_lines_.fetch_add(1);
      protocol_errors_.fetch_add(1);
      write_response(conn, format_response(error_response(0, e.what())));
      // Absorb the rest of the oversized line briefly before closing;
      // closing with unread bytes queued sends RST, which would destroy
      // the error response before the client reads it.
      conn->sock.shutdown_write();
      conn->sock.discard_pending(100e3);
      return;
    }
    // Peer reset / IO error mid-line: pending responses for this
    // connection still complete; their writes fail quietly.
  } catch (const std::exception&) {
    // Same as above for non-socket failures.
  }
}

void Daemon::handle_request(const std::shared_ptr<Connection>& conn,
                            const WireRequest& request) {
  switch (request.kind) {
    case RequestKind::kPing: {
      JsonValue v = JsonValue::object();
      v.set("id", request.id);
      v.set("ok", true);
      v.set("pong", true);
      write_response(conn, v.dump());
      return;
    }
    case RequestKind::kStats:
      write_response(conn, stats_json(request.id));
      return;
    case RequestKind::kHealth:
      write_response(conn, health_json(request.id));
      return;
    case RequestKind::kKillWorker: {
      if (!options_.chaos) {
        protocol_errors_.fetch_add(1);
        write_response(conn, format_response(error_response(
                                 request.id,
                                 "chaos verbs are disabled; start the "
                                 "daemon with chaos enabled")));
        return;
      }
      std::string why;
      if (!kill_worker(request.worker, &why)) {
        write_response(conn,
                       format_response(error_response(request.id, why)));
        return;
      }
      JsonValue v = JsonValue::object();
      v.set("id", request.id);
      v.set("ok", true);
      v.set("killed", request.worker);
      write_response(conn, v.dump());
      return;
    }
    case RequestKind::kStallWorker: {
      if (!options_.chaos) {
        protocol_errors_.fetch_add(1);
        write_response(conn, format_response(error_response(
                                 request.id,
                                 "chaos verbs are disabled; start the "
                                 "daemon with chaos enabled")));
        return;
      }
      {
        std::lock_guard<std::mutex> guard(exec_mu_);
        if (request.worker < 0 ||
            static_cast<std::size_t>(request.worker) >=
                exec_stall_us_.size()) {
          write_response(conn, format_response(error_response(
                                   request.id, "worker index out of range")));
          return;
        }
        exec_stall_us_[static_cast<std::size_t>(request.worker)] =
            request.stall_us;
      }
      JsonValue v = JsonValue::object();
      v.set("id", request.id);
      v.set("ok", true);
      v.set("stalled", request.worker);
      v.set("stall_us", request.stall_us);
      write_response(conn, v.dump());
      return;
    }
    case RequestKind::kInfer:
      break;
  }

  // Validate the model before it reaches the engine: an unknown name must
  // be one failed request, not an exception inside a shared batch.
  if (known_models_.find(request.model) == known_models_.end()) {
    protocol_errors_.fetch_add(1);
    write_response(
        conn, format_response(error_response(
                  request.id, unknown_name_message("model", request.model,
                                                   models::model_names()))));
    return;
  }

  std::vector<serve::EngineBatch> formed;
  std::string refusal;
  {
    std::unique_lock<std::mutex> lock(engine_mu_);
    if (stopping_.load()) {
      refusal = "shutting down";
    } else if (pending_.size() >= options_.max_pending) {
      refusal = "overloaded";
    } else {
      const std::int64_t engine_id = next_engine_id_++;
      Pending pending;
      pending.conn = conn;
      pending.client_id = request.id;
      pending.wall_admitted_us = clock_.now_us();
      pending_.emplace(engine_id, std::move(pending));
      admitted_.fetch_add(1);
      try {
        formed = engine_.submit(engine_id, request.model);
      } catch (const std::exception& e) {
        pending_.erase(engine_id);
        admitted_.fetch_sub(1);
        refusal = e.what();
      }
    }
  }
  if (!refusal.empty()) {
    rejected_.fetch_add(1);
    write_response(conn,
                   format_response(error_response(request.id, refusal)));
    return;
  }
  // Feed the load detector outside engine_mu_: the controller has its own
  // lock and must never nest inside the engine's.
  if (adaptive_) adaptive_->observe_arrival(request.model, clock_.now_us());
  engine_cv_.notify_one();  // the next flush deadline may have changed
  dispatch(std::move(formed));
}

void Daemon::batcher_loop() {
  std::unique_lock<std::mutex> lock(engine_mu_);
  while (!stopping_.load()) {
    // Due re-plans run here, off the request path, with the engine lock
    // dropped: a re-plan only touches the shared recipe cache and profile
    // db, never live queues, so serving continues underneath it.
    if (adaptive_ && adaptive_->replan_due(clock_.now_us())) {
      lock.unlock();
      try {
        adaptive_->replan(clock_.now_us());
      } catch (const std::exception& e) {
        std::fprintf(stderr, "ios daemon: replan error: %s\n", e.what());
      }
      lock.lock();
      continue;
    }
    const double deadline = engine_.next_deadline_us();
    if (deadline == std::numeric_limits<double>::infinity()) {
      engine_cv_.wait(lock);
      continue;
    }
    // +1us: time_point_at truncates, and waking a hair early would spin.
    engine_cv_.wait_until(
        lock, clock_.time_point_at(deadline) + std::chrono::microseconds(1));
    if (stopping_.load()) break;
    std::vector<serve::EngineBatch> formed;
    std::vector<serve::ShedRecord> sheds;
    try {
      formed = engine_.poll();
      sheds = engine_.take_shed();
    } catch (const std::exception& e) {
      std::fprintf(stderr, "ios daemon: batcher error: %s\n", e.what());
      continue;
    }
    if (!formed.empty() || !sheds.empty()) {
      lock.unlock();
      dispatch(std::move(formed));
      answer_shed(std::move(sheds));
      lock.lock();
    }
  }
}

void Daemon::dispatch(std::vector<serve::EngineBatch> formed) {
  if (formed.empty()) return;
  std::vector<serve::EngineRequest> orphans;
  {
    std::lock_guard<std::mutex> guard(exec_mu_);
    for (serve::EngineBatch& batch : formed) {
      const auto w = static_cast<std::size_t>(batch.record.worker);
      if (exec_dead_[w]) {
        // The worker died between batch formation and this dispatch (the
        // engine lock is not held across the gap). Its queue was already
        // drained by the kill, so route the members back through submit.
        orphans.insert(orphans.end(), batch.members.begin(),
                       batch.members.end());
        continue;
      }
      batches_.fetch_add(1);
      exec_queues_[w].push_back(std::move(batch));
    }
  }
  exec_cv_.notify_all();
  requeue(std::move(orphans));
}

void Daemon::requeue(std::vector<serve::EngineRequest> members) {
  if (members.empty()) return;
  std::vector<serve::EngineBatch> formed;
  std::vector<serve::ShedRecord> sheds;
  std::vector<std::pair<std::shared_ptr<Connection>, std::string>> failures;
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    for (const serve::EngineRequest& member : members) {
      try {
        std::vector<serve::EngineBatch> now =
            engine_.submit(member.id, member.model);
        formed.insert(formed.end(), std::make_move_iterator(now.begin()),
                      std::make_move_iterator(now.end()));
        requeued_requests_.fetch_add(1);
      } catch (const std::exception& e) {
        // No capacity left (e.g. every worker dead): answer rather than
        // lose the request. The write happens after the lock drops.
        auto it = pending_.find(member.id);
        if (it != pending_.end()) {
          const Pending pending = std::move(it->second);
          pending_.erase(it);
          if (pending_.empty()) drain_cv_.notify_all();
          rejected_.fetch_add(1);
          failures.emplace_back(
              pending.conn, format_response(error_response(
                                pending.client_id, e.what())));
        }
      }
    }
    sheds = engine_.take_shed();
    // During a drain the batcher is gone — nobody will flush a partial
    // requeued batch at its deadline, so force it out now.
    if (stopping_.load()) {
      std::vector<serve::EngineBatch> rest = engine_.drain();
      formed.insert(formed.end(), std::make_move_iterator(rest.begin()),
                    std::make_move_iterator(rest.end()));
    }
  }
  engine_cv_.notify_one();  // the next flush deadline may have changed
  for (const auto& [conn, line] : failures) write_response(conn, line);
  dispatch(std::move(formed));
  answer_shed(std::move(sheds));
}

bool Daemon::kill_worker(int worker, std::string* error) {
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    if (worker < 0 ||
        static_cast<std::size_t>(worker) >= exec_queues_.size()) {
      if (error) *error = "worker index out of range";
      return false;
    }
    if (!engine_.worker_alive(worker)) {
      if (error) *error = "worker already dead";
      return false;
    }
    if (engine_.alive_workers() <= 1) {
      if (error) *error = "cannot kill the last alive worker";
      return false;
    }
    engine_.kill_worker(worker);
  }
  // Steal everything the dead worker holds: the in-flight batch (its
  // executor notices the steal on wakeup and drops it) and every batch
  // still queued behind it.
  std::vector<serve::EngineRequest> orphans;
  {
    const auto w = static_cast<std::size_t>(worker);
    std::lock_guard<std::mutex> guard(exec_mu_);
    exec_dead_[w] = 1;
    if (inflight_[w].active) {
      orphans.insert(orphans.end(), inflight_[w].members.begin(),
                     inflight_[w].members.end());
      inflight_[w].active = false;
      inflight_[w].members.clear();
    }
    for (serve::EngineBatch& batch : exec_queues_[w]) {
      orphans.insert(orphans.end(), batch.members.begin(),
                     batch.members.end());
    }
    exec_queues_[w].clear();
  }
  exec_cv_.notify_all();
  worker_deaths_.fetch_add(1);
  requeue(std::move(orphans));
  return true;
}

void Daemon::watchdog_loop() {
  std::unique_lock<std::mutex> lock(watchdog_mu_);
  for (;;) {
    watchdog_cv_.wait_for(
        lock,
        std::chrono::duration<double, std::micro>(
            options_.watchdog_interval_us),
        [this] { return watchdog_stop_; });
    if (watchdog_stop_) return;
    lock.unlock();
    std::vector<int> suspects;
    {
      const double now = clock_.now_us();
      std::lock_guard<std::mutex> guard(exec_mu_);
      for (std::size_t w = 0; w < inflight_.size(); ++w) {
        if (!exec_dead_[w] && inflight_[w].active &&
            now > inflight_[w].deadline_wall_us + options_.stuck_grace_us) {
          suspects.push_back(static_cast<int>(w));
        }
      }
    }
    for (const int w : suspects) {
      std::string why;
      if (kill_worker(w, &why)) {
        std::fprintf(stderr,
                     "ios daemon: watchdog killed stuck worker %d\n", w);
      } else {
        std::fprintf(stderr,
                     "ios daemon: watchdog could not kill worker %d: %s\n",
                     w, why.c_str());
      }
    }
    lock.lock();
  }
}

void Daemon::executor_loop(int worker) {
  const auto w = static_cast<std::size_t>(worker);
  for (;;) {
    serve::EngineBatch batch;
    {
      std::unique_lock<std::mutex> lock(exec_mu_);
      exec_cv_.wait(lock, [this, w] {
        return exec_stop_ || !exec_queues_[w].empty();
      });
      if (exec_queues_[w].empty()) return;  // exec_stop_ and drained
      batch = std::move(exec_queues_[w].front());
      exec_queues_[w].pop_front();

      // Occupy this worker for the schedule's latency: the simulated
      // device, made temporal (time_scale 0 in tests skips the sleep).
      // The batch stays registered in inflight_ for the duration so a
      // kill (chaos verb or watchdog) can steal its members and requeue
      // them on the survivors; the wait wakes early when that happens.
      // An injected stall (stall_worker) wedges the executor past its
      // deadline_wall_us, which is what the watchdog keys on.
      const double stall_us = std::exchange(exec_stall_us_[w], 0.0);
      const double service_wall_us =
          batch.record.service_us * std::max(0.0, options_.time_scale);
      inflight_[w].active = true;
      inflight_[w].members = batch.members;
      inflight_[w].deadline_wall_us = clock_.now_us() + service_wall_us;
      if (service_wall_us > 0 || stall_us > 0) {
        const auto wake = clock_.time_point_at(clock_.now_us() +
                                               service_wall_us + stall_us);
        exec_cv_.wait_until(lock, wake,
                            [this, w] { return exec_dead_[w] != 0; });
      }
      if (!inflight_[w].active) continue;  // stolen by a kill: requeued
      inflight_[w].active = false;
      inflight_[w].members.clear();
    }

    const double batch_slo =
        adaptive_ ? engine_.slo_for(batch.record.model).slo_us
                  : std::numeric_limits<double>::infinity();
    for (const serve::EngineRequest& member : batch.members) {
      if (adaptive_) {
        adaptive_->observe_outcome(
            batch.record.model,
            batch.record.completion_us - member.arrival_us <= batch_slo);
      }
      Pending pending;
      {
        std::lock_guard<std::mutex> guard(engine_mu_);
        auto it = pending_.find(member.id);
        if (it == pending_.end()) continue;  // refused after formation: never
        pending = std::move(it->second);
        pending_.erase(it);
        if (pending_.empty()) drain_cv_.notify_all();
      }
      WireResponse response;
      response.id = pending.client_id;
      response.ok = true;
      response.model = batch.record.model;
      response.device = batch.record.device;
      response.batch_size = batch.record.size;
      response.worker = batch.record.worker;
      response.latency_us = batch.record.completion_us - member.arrival_us;
      response.queue_us = batch.record.start_us - member.arrival_us;
      response.service_us = batch.record.service_us;
      response.wall_latency_us = clock_.now_us() - pending.wall_admitted_us;
      write_response(pending.conn, format_response(response));
      completed_.fetch_add(1);
    }
  }
}

void Daemon::answer_shed(std::vector<serve::ShedRecord> sheds) {
  for (const serve::ShedRecord& record : sheds) {
    Pending pending;
    {
      std::lock_guard<std::mutex> guard(engine_mu_);
      auto it = pending_.find(record.id);
      if (it == pending_.end()) continue;
      pending = std::move(it->second);
      pending_.erase(it);
      if (pending_.empty()) drain_cv_.notify_all();
    }
    shed_.fetch_add(1);
    if (adaptive_) adaptive_->observe_outcome(record.model, false);
    write_response(pending.conn,
                   format_response(error_response(pending.client_id, "shed")));
  }
}

void Daemon::write_response(const std::shared_ptr<Connection>& conn,
                            const std::string& line) {
  std::lock_guard<std::mutex> guard(conn->write_mu);
  try {
    conn->sock.write_all(line);
    conn->sock.write_all("\n");
  } catch (const SocketError& e) {
    if (e.kind() == SocketErrorKind::kTimeout) {
      // Slow client: it stopped draining its receive window. Abandon the
      // connection — shutting down both sides wakes its blocked reader so
      // the io thread moves on.
      slow_client_closes_.fetch_add(1);
      conn->sock.shutdown_read();
      conn->sock.shutdown_write();
    }
    // Otherwise a dead peer (reset / injected drop): nothing useful to do
    // with the response.
  } catch (const std::exception&) {
    // Dead peer: nothing useful to do with the response.
  }
}

std::string Daemon::stats_json(std::int64_t id) const {
  JsonValue v = JsonValue::object();
  v.set("id", id);
  v.set("ok", true);
  v.set("connections", connections_.load());
  v.set("admitted", admitted_.load());
  v.set("completed", completed_.load());
  v.set("rejected", rejected_.load());
  v.set("protocol_errors", protocol_errors_.load());
  v.set("batches", batches_.load());
  v.set("shed", shed_.load());
  v.set("idle_closes", idle_closes_.load());
  v.set("slow_client_closes", slow_client_closes_.load());
  v.set("oversized_lines", oversized_lines_.load());
  v.set("worker_deaths", worker_deaths_.load());
  v.set("requeued_requests", requeued_requests_.load());
  if (adaptive_) {
    const serve::AdaptiveStats a = adaptive_->stats();
    v.set("replans", a.replans);
    v.set("shifts_detected", a.shifts_detected);
    v.set("attainment_ewma", a.attainment_ewma);
  }
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    v.set("pending", static_cast<std::int64_t>(pending_.size()));
    v.set("queued", static_cast<std::int64_t>(engine_.queued()));
  }
  const serve::EngineCounters counters = engine_.counters();
  v.set("optimizations", counters.optimizations);
  v.set("measurements", counters.measurements);
  const serve::RecipeCacheStats cache = engine_.cache().stats();
  v.set("cache_hits", cache.hits);
  v.set("cache_misses", cache.misses);
  v.set("cache_size", static_cast<std::int64_t>(cache.size));
  return v.dump();
}

std::string Daemon::health_json(std::int64_t id) const {
  JsonValue v = JsonValue::object();
  v.set("id", id);
  v.set("ok", true);
  {
    std::lock_guard<std::mutex> guard(engine_mu_);
    v.set("workers", static_cast<std::int64_t>(exec_queues_.size()));
    v.set("alive", engine_.alive_workers());
    JsonValue dead = JsonValue::array();
    for (std::size_t w = 0; w < exec_queues_.size(); ++w) {
      if (!engine_.worker_alive(static_cast<int>(w))) {
        dead.push_back(static_cast<std::int64_t>(w));
      }
    }
    v.set("dead_workers", std::move(dead));
    JsonValue depths = JsonValue::object();
    for (const auto& [model, depth] : engine_.queue_depths()) {
      depths.set(model, static_cast<std::int64_t>(depth));
    }
    v.set("queue_depths", std::move(depths));
    v.set("pending", static_cast<std::int64_t>(pending_.size()));
    v.set("queued", static_cast<std::int64_t>(engine_.queued()));
  }
  v.set("admitted", admitted_.load());
  v.set("completed", completed_.load());
  v.set("rejected", rejected_.load());
  v.set("shed", shed_.load());
  v.set("protocol_errors", protocol_errors_.load());
  v.set("idle_closes", idle_closes_.load());
  v.set("slow_client_closes", slow_client_closes_.load());
  v.set("oversized_lines", oversized_lines_.load());
  v.set("worker_deaths", worker_deaths_.load());
  v.set("requeued_requests", requeued_requests_.load());
  if (fault_) {
    const FaultCounters fc = fault_->counters();
    JsonValue f = JsonValue::object();
    f.set("torn_writes", fc.torn_writes);
    f.set("stalls", fc.stalls);
    f.set("disconnects", fc.disconnects);
    v.set("injected_faults", std::move(f));
  }
  return v.dump();
}

}  // namespace ios::net
