#include "api/optimizer.hpp"

#include <bit>
#include <cstdio>
#include <map>
#include <memory>
#include <stdexcept>
#include <utility>

#include "frameworks/frameworks.hpp"
#include "models/models.hpp"
#include "runtime/canonical_cache.hpp"
#include "runtime/profile_db.hpp"
#include "schedule/baselines.hpp"
#include "util/hash.hpp"
#include "util/names.hpp"

namespace ios {

namespace {

/// Process-wide registry of open profiling databases, one per path. Each
/// file is parsed once (on first touch), merges accumulate in memory, and
/// merges that add entries are written through to disk — so concurrent
/// optimize() calls (e.g. a server prewarm fan-out) sharing one path never
/// clobber each other's contexts and never re-parse a growing file per
/// call. Every open database carries its own mutex, so calls on different
/// paths never serialize on each other. Deleting the file resets the path
/// on next open (operators delete a database to start it over); external
/// *edits* to a file this process already opened are not re-read — within
/// one process the registry is authoritative, and writers in other
/// processes are last-write-wins, as with any unlocked shared file.
struct OpenProfileDb {
  std::mutex mu;
  ProfileDb db;
  /// True once the database is known to be on disk (loaded from an existing
  /// file, or written by us). Guards the deleted-file reset below: a path
  /// whose first write has not happened yet must NOT be reset — concurrent
  /// first-time misses open the path before the first save creates the
  /// file, and resetting then would split them across registry entries.
  std::atomic<bool> on_disk{false};
};

struct ProfileDbRegistry {
  std::mutex mu;  // guards by_path; per-db access uses OpenProfileDb::mu
  std::map<std::string, std::shared_ptr<OpenProfileDb>> by_path;

  std::shared_ptr<OpenProfileDb> open(const std::string& path) {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = by_path.find(path);
    if (it != by_path.end()) {
      std::shared_ptr<OpenProfileDb>& handle = it->second;
      if (handle->on_disk.load() && !ProfileDb::exists(path)) {
        // The file was deleted: reset the contents IN PLACE (lock order:
        // registry.mu then handle->mu, never the reverse). Keeping the same
        // handle means optimize() calls still holding it merge into the
        // reset database rather than forking a second writer for the path.
        std::lock_guard<std::mutex> db_lock(handle->mu);
        handle->db = ProfileDb{};
        handle->on_disk.store(false);
      }
      return handle;
    }
    auto opened = std::make_shared<OpenProfileDb>();
    opened->on_disk.store(ProfileDb::exists(path));
    try {
      opened->db = ProfileDb::load(path);
    } catch (const CorruptFileError& e) {
      // A truncated/corrupt warm-start cache costs re-simulation, never the
      // process: fall back to a cold database and let the next save (which
      // is atomic) replace the bad file with a good one.
      std::fprintf(stderr,
                   "ios: %s; starting with a cold profile database\n",
                   e.what());
      opened->db = ProfileDb{};
      opened->on_disk.store(false);
    }
    by_path.emplace(path, opened);
    return opened;
  }
};

ProfileDbRegistry& profile_db_registry() {
  static ProfileDbRegistry registry;
  return registry;
}

constexpr Baseline kAllBaselines[] = {
    Baseline::kSequential, Baseline::kGreedy,      Baseline::kTensorFlow,
    Baseline::kTensorFlowXla, Baseline::kTaso,     Baseline::kTvmCudnn,
    Baseline::kTensorRT,   Baseline::kTvmAutoTune, Baseline::kNimble,
};

double run_baseline(Baseline b, const Graph& g, const DeviceSpec& device,
                    const Executor& executor) {
  switch (b) {
    case Baseline::kSequential:
      return executor.schedule_latency_us(sequential_schedule(g));
    case Baseline::kGreedy:
      return executor.schedule_latency_us(greedy_schedule(g));
    case Baseline::kTensorFlow:
      return frameworks::run_framework(g, device, frameworks::tensorflow_spec())
          .latency_us;
    case Baseline::kTensorFlowXla:
      return frameworks::run_framework(g, device,
                                       frameworks::tensorflow_xla_spec())
          .latency_us;
    case Baseline::kTaso:
      return frameworks::run_framework(g, device, frameworks::taso_spec())
          .latency_us;
    case Baseline::kTvmCudnn:
      return frameworks::run_framework(g, device, frameworks::tvm_cudnn_spec())
          .latency_us;
    case Baseline::kTensorRT:
      return frameworks::run_framework(g, device, frameworks::tensorrt_spec())
          .latency_us;
    case Baseline::kTvmAutoTune:
      return frameworks::run_framework(g, device,
                                       frameworks::tvm_autotune_spec())
          .latency_us;
    case Baseline::kNimble:
      return frameworks::run_nimble(g, device).latency_us;
  }
  throw std::logic_error("unhandled baseline");
}

}  // namespace

const char* baseline_name(Baseline b) {
  switch (b) {
    case Baseline::kSequential: return "sequential";
    case Baseline::kGreedy: return "greedy";
    // Framework baselines keep the display names of frameworks.cpp so tables
    // printed from OptimizationResult line up with the Figure 7 benches.
    case Baseline::kTensorFlow: return "TensorFlow";
    case Baseline::kTensorFlowXla: return "TensorFlow-XLA";
    case Baseline::kTaso: return "TASO";
    case Baseline::kTvmCudnn: return "TVM-cuDNN";
    case Baseline::kTensorRT: return "TensorRT";
    case Baseline::kTvmAutoTune: return "TVM-AutoTune";
    case Baseline::kNimble: return "Nimble";
  }
  return "?";
}

Baseline baseline_by_name(const std::string& name) {
  for (Baseline b : kAllBaselines) {
    if (name == baseline_name(b)) return b;
  }
  std::vector<std::string> known;
  for (Baseline b : kAllBaselines) known.push_back(baseline_name(b));
  throw std::invalid_argument(unknown_name_message("baseline", name, known));
}

std::vector<Baseline> all_baselines() {
  return {std::begin(kAllBaselines), std::end(kAllBaselines)};
}

OptimizationRequest OptimizationRequest::for_model(std::string name,
                                                   std::string device,
                                                   int batch) {
  OptimizationRequest r;
  r.model = std::move(name);
  r.device = std::move(device);
  r.batch = batch;
  return r;
}

OptimizationRequest OptimizationRequest::for_graph(Graph g,
                                                   std::string device) {
  OptimizationRequest r;
  r.graph = std::move(g);
  r.device = std::move(device);
  return r;
}

const BaselineResult* OptimizationResult::baseline(
    const std::string& name) const {
  for (const BaselineResult& b : baselines) {
    if (b.name == name) return &b;
  }
  return nullptr;
}

std::string scheduler_config_key(const SchedulerOptions& options,
                                 const ProfilingProtocol& protocol) {
  std::string key = "variant=";
  key += ios_variant_name(options.variant);
  key += ";r=" + std::to_string(options.pruning.r);
  key += ";s=" + std::to_string(options.pruning.s);
  key += ";memoize=" + std::to_string(options.memoize ? 1 : 0);
  key += ";warmup=" + std::to_string(protocol.warmup);
  key += ";repeats=" + std::to_string(protocol.repeats);
  key += ";noise=" +
         std::to_string(std::bit_cast<std::uint64_t>(protocol.noise_frac));
  key += ";seed=" + std::to_string(protocol.noise_seed);
  // Pruned-mode fields are appended only when active so every key minted
  // before the pruning knob existed stays byte-identical (pinned golden
  // recipes and serving cache keys must not churn). cross_block_reuse is
  // deliberately excluded: replayed block templates reproduce the search's
  // own schedule bit for bit.
  if (options.prune != PruneMode::kExact) {
    key += ";prune=";
    key += prune_mode_name(options.prune);
    if (options.prune == PruneMode::kBeam) {
      key += ";beam=" + std::to_string(options.beam_width);
    }
  }
  return key;
}

std::string request_cache_key(const Graph& g, const std::string& device,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol) {
  std::string key = graph_to_json(g).dump();
  key += '\n';
  key += device;
  key += '\n';
  key += scheduler_config_key(options, protocol);
  return key;
}

Graph graph_with_batch(const Graph& g, int batch) {
  if (batch == g.batch()) return g;
  JsonValue doc = graph_to_json(g);
  doc.set("batch", batch);
  return graph_from_json(doc);
}

OptimizationResult Optimizer::optimize(const OptimizationRequest& request) {
  // Before the cache lookup: an invalid option combination must throw even
  // when an equivalent request (the key excludes the engine) is cached.
  request.options.validate();
  const DeviceSpec device = device_by_name(request.device);
  // Bind the graph by reference: a for_graph request must not deep-copy the
  // graph on the cache-hit serving path.
  std::optional<Graph> built;
  const Graph& g =
      request.graph
          ? *request.graph
          : built.emplace(models::build_model(request.model, request.batch));
  const ExecConfig config{device, KernelModelParams{}};

  OptimizationResult result;
  const std::string key =
      request_cache_key(g, device.name, request.options, request.protocol);
  result.fingerprint = hash_bytes(key);

  {
    std::lock_guard<std::mutex> lock(mu_);
    if (const CacheEntry* entry = cache_.get(key)) {
      result.schedule = entry->schedule;
      result.stats = entry->stats;
      result.latency_us = entry->latency_us;
      result.cache_hit = true;
      ++cache_hits_;
    } else {
      ++cache_misses_;
    }
  }

  if (!result.cache_hit) {
    CostModel cost(g, config, request.protocol);
    SchedulerOptions options = request.options;
    if (request.cross_reuse) {
      // Throws under a noisy protocol — reused latencies must equal what
      // profiling would have measured, or the found schedule would change.
      cost.enable_canonical_reuse(&shared_canonical_stage_cache());
      options.cross_block_reuse = true;
    }
    std::shared_ptr<OpenProfileDb> profile_db;
    if (!request.profile_db.empty()) {
      profile_db = profile_db_registry().open(request.profile_db);
      std::lock_guard<std::mutex> db_lock(profile_db->mu);
      result.profile_entries_loaded = cost.load_profile(profile_db->db);
      if (request.cross_reuse) {
        result.profile_entries_loaded += cost.load_canonical(profile_db->db);
      }
    }
    result.schedule =
        IosScheduler(cost, options).schedule_graph(&result.stats);
    validate_schedule(g, result.schedule);
    result.new_measurements = cost.num_measurements();
    result.canonical_hits = result.stats.canonical_hits;
    result.cross_model_hits = result.stats.cross_model_hits;
    result.block_cache_hits = result.stats.block_cache_hits;
    if (profile_db) {
      std::lock_guard<std::mutex> db_lock(profile_db->mu);
      const std::size_t before = profile_db->db.num_entries();
      result.profile_entries_saved = cost.save_profile(profile_db->db);
      if (request.cross_reuse) {
        result.profile_entries_saved += cost.save_canonical(profile_db->db);
      }
      // Merged values for already-known fingerprints are identical (the
      // simulator is deterministic), so only a growing database is worth a
      // full rewrite — warm runs then do zero file writes.
      if (profile_db->db.num_entries() != before ||
          !profile_db->on_disk.load()) {
        profile_db->db.save(request.profile_db);
        profile_db->on_disk.store(true);
      }
    }
    result.latency_us =
        Executor(g, config).schedule_latency_us(result.schedule);
    std::lock_guard<std::mutex> lock(mu_);
    total_measurements_ += result.new_measurements;
    cache_.put(key, CacheEntry{result.schedule, result.stats,
                               result.latency_us});
  }

  const Executor executor(g, config);
  for (Baseline b : request.baselines) {
    const double latency = run_baseline(b, g, device, executor);
    result.baselines.push_back(
        {baseline_name(b), latency, latency / result.latency_us});
  }

  result.recipe.model = request.graph ? g.name() : request.model;
  result.recipe.device = device.name;
  result.recipe.batch = g.batch();
  result.recipe.variant = request.options.variant;
  result.recipe.pruning = request.options.pruning;
  result.recipe.schedule = result.schedule;
  if (request.graph) result.recipe.graph = g;
  return result;
}

EvaluationResult Optimizer::evaluate(const Recipe& recipe,
                                     const std::string& device,
                                     int batch) const {
  const DeviceSpec spec =
      device_by_name(device.empty() ? recipe.device : device);
  const int eval_batch = batch > 0 ? batch : recipe.batch;
  const Graph g = recipe.graph
                      ? graph_with_batch(*recipe.graph, eval_batch)
                      : models::build_model(recipe.model, eval_batch);
  validate_schedule(g, recipe.schedule);

  const Executor executor(g, ExecConfig{spec, KernelModelParams{}});
  EvaluationResult ev;
  ev.device = spec.name;
  ev.batch = eval_batch;
  ev.latency_us = executor.schedule_latency_us(recipe.schedule);
  ev.sequential_latency_us =
      executor.schedule_latency_us(sequential_schedule(g));
  ev.speedup = ev.sequential_latency_us / ev.latency_us;
  return ev;
}

void Optimizer::save(const OptimizationResult& result,
                     const std::string& path) {
  save_recipe(result.recipe, path);
}

Recipe Optimizer::load(const std::string& path) { return load_recipe(path); }

std::size_t Optimizer::cache_size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.size();
}

std::size_t Optimizer::cache_capacity() const {
  std::lock_guard<std::mutex> lock(mu_);
  return cache_.capacity();
}

OptimizerCacheStats Optimizer::cache_stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return {cache_hits_, cache_misses_, cache_.evictions(), cache_.size()};
}

void Optimizer::clear_cache() {
  std::lock_guard<std::mutex> lock(mu_);
  cache_.clear();
}

std::int64_t Optimizer::total_measurements() const {
  std::lock_guard<std::mutex> lock(mu_);
  return total_measurements_;
}

}  // namespace ios
