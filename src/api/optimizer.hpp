#pragma once
// ios::Optimizer — the single-call facade over the paper's whole pipeline:
// build graph → profile with the CostModel → DP search (Algorithm 1) →
// execute and compare against baselines. Callers describe *what* to optimize
// in an OptimizationRequest (a zoo model by name, or an in-memory Graph) and
// get everything the pipeline produces back in one OptimizationResult.
//
// The facade keeps an in-process, thread-safe *recipe cache* keyed by
// (graph fingerprint, device, scheduler options, profiling protocol): a
// repeated request — the serving scenario, where the same deployment
// configuration is optimized over and over — skips the DP search and all
// cost-model profiling entirely. The cache is bounded: entries are evicted
// strictly least-recently-used once the configurable capacity is reached
// (see Optimizer::Optimizer), so a long-running server churning through
// many configurations keeps a fixed memory footprint. Results can also be
// persisted as recipe JSON (save/load) and re-evaluated later, possibly on
// a different device or batch size.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "util/lru_cache.hpp"

#include "core/scheduler.hpp"
#include "place/pool.hpp"
#include "runtime/cost_model.hpp"
#include "schedule/serialize.hpp"
#include "sim/device.hpp"

/// The IOS reproduction: graph, scheduler, simulator, and serving layers.
namespace ios {

/// Reference points a request may compare the IOS schedule against: the
/// paper's Section 6.1 schedules plus the simulated framework baselines of
/// Figure 7 and the Nimble extension.
enum class Baseline {
  kSequential,     ///< one operator per stage, paper Section 6.1
  kGreedy,         ///< greedy maximal concurrent stages, Section 6.1
  kTensorFlow,     ///< simulated TensorFlow framework baseline (Figure 7)
  kTensorFlowXla,  ///< simulated TensorFlow-XLA baseline (Figure 7)
  kTaso,           ///< simulated TASO baseline (Figure 7)
  kTvmCudnn,       ///< simulated TVM-cuDNN baseline (Figure 7)
  kTensorRT,       ///< simulated TensorRT baseline (Figure 7)
  kTvmAutoTune,    ///< simulated auto-tuned TVM baseline (Figure 7)
  kNimble,         ///< simulated Nimble extension baseline
};

/// Display name of a baseline (matches the Figure 7 framework specs).
const char* baseline_name(Baseline b);

/// Inverse of baseline_name. Throws std::invalid_argument enumerating all
/// baseline names when `name` is unknown.
Baseline baseline_by_name(const std::string& name);

/// Every baseline, in the order of the enum (sequential, greedy, then the
/// Figure 7 frameworks, then Nimble).
std::vector<Baseline> all_baselines();

/// What to optimize: a model (by zoo name or in-memory graph), the device
/// and batch size to specialize for, and the search/profiling settings.
struct OptimizationRequest {
  /// Model zoo name (a models::registry() key). Ignored when `graph` is set.
  std::string model = "inception_v3";
  /// Optimize this in-memory graph instead of a zoo model. The graph carries
  /// its own batch size, so `batch` below is ignored.
  std::optional<Graph> graph;
  /// Device short or full name (device_names()).
  std::string device = "v100";
  /// Heterogeneous device pool. Empty (the default) means "the single
  /// device above". A non-empty pool is consumed by the placement layer:
  /// ios::Placer::place(request) optimizes the request once per pool device
  /// class and returns the per-device recipes plus a latency- and
  /// load-aware placement plan (src/place/placer.hpp). Optimizer::optimize
  /// itself always targets `device` and ignores the pool.
  DevicePool pool{};
  /// Batch size for zoo models.
  int batch = 1;
  /// DP-search settings (variant, pruning, memoization, engine, threads).
  SchedulerOptions options{};
  /// Cost-model profiling protocol (warmup/repeats/noise).
  ProfilingProtocol protocol{};
  /// Baselines to execute and compare against, in result order.
  std::vector<Baseline> baselines{Baseline::kSequential, Baseline::kGreedy};
  /// Path of a persistable profiling database (runtime/profile_db.hpp).
  /// When non-empty, a cache miss loads the database's stage latencies for
  /// this request's profile context before searching (a missing file is an
  /// empty database) and merges the cost model's measurements back
  /// afterwards — so repeat runs across processes do zero redundant
  /// simulations. Each path is parsed once per process and then kept in a
  /// process-wide registry (merges accumulate in memory, every merge is
  /// written through to the file), so concurrent optimize() calls sharing a
  /// path never clobber each other. Loaded entries equal what profiling
  /// would have measured, so the found schedule is unchanged; the path is
  /// therefore not part of the recipe cache key.
  std::string profile_db;
  /// Cross-request reuse (opt-in). When set, a cache miss attaches the
  /// process-wide canonical stage cache (runtime/canonical_cache.hpp) — so
  /// stages with identical kernel streams are simulated once across models,
  /// blocks, and batch sizes — and turns on the scheduler's cross-block
  /// template reuse (SchedulerOptions::cross_block_reuse). When profile_db
  /// is also set, the canonical cache is loaded from / merged into the
  /// database's canonical bucket, extending reuse across processes. Reused
  /// latencies equal what profiling would have measured, so the found
  /// schedule is unchanged and this flag is not part of the recipe cache
  /// key. Requires a noise-free protocol (optimize() throws otherwise).
  bool cross_reuse = false;

  /// Shorthand for a zoo-model request.
  static OptimizationRequest for_model(std::string name,
                                       std::string device = "v100",
                                       int batch = 1);
  /// Shorthand for an in-memory graph request.
  static OptimizationRequest for_graph(Graph g, std::string device = "v100");
};

/// Latency of one requested baseline next to the IOS schedule.
struct BaselineResult {
  std::string name;      ///< display name (baseline_name())
  double latency_us = 0; ///< baseline latency on the requested device
  double speedup = 0;    ///< baseline latency / IOS latency
};

/// Everything one Optimizer::optimize call produced.
struct OptimizationResult {
  /// The schedule the DP search chose (or the cached one).
  Schedule schedule;
  /// IOS schedule latency on the requested device, microseconds.
  double latency_us = 0;
  /// One entry per requested baseline, request order.
  std::vector<BaselineResult> baselines;
  /// DP search statistics. On a cache hit these are the stats of the search
  /// that originally filled the cache entry.
  SchedulerStats stats;
  /// Persistable recipe; pass to Optimizer::save / Optimizer::evaluate. For
  /// for_graph requests this embeds a copy of the graph — on every call,
  /// cache hit or not, so a result is always save()-able.
  Recipe recipe;
  /// True when the schedule came from the recipe cache.
  bool cache_hit = false;
  /// Cost-model profiles run by *this* call — 0 on a cache hit, and 0 on a
  /// profile-db-warmed miss whose stages were all measured in an earlier
  /// run.
  std::int64_t new_measurements = 0;
  /// Stage latencies imported from / merged into request.profile_db by this
  /// call (both 0 when no profile_db was set or the recipe cache hit).
  /// With cross_reuse set, canonical-bucket entries are included.
  std::int64_t profile_entries_loaded = 0;
  std::int64_t profile_entries_saved = 0;
  /// Cross-request reuse counters of *this* call (all 0 unless
  /// request.cross_reuse was set and the recipe cache missed): stage
  /// measurements answered by the canonical stage cache, how many of those
  /// were recorded by a different model (or an earlier process), and blocks
  /// replayed from the cross-request block template cache.
  std::int64_t canonical_hits = 0;
  std::int64_t cross_model_hits = 0;
  std::int64_t block_cache_hits = 0;
  /// The cache key the request mapped to.
  std::uint64_t fingerprint = 0;

  /// The entry for a named baseline, or nullptr if it was not requested.
  const BaselineResult* baseline(const std::string& name) const;
};

/// Outcome of replaying a saved recipe (Optimizer::evaluate).
struct EvaluationResult {
  std::string device;  ///< full device name the recipe was evaluated on
  int batch = 1;       ///< batch size the evaluation ran at
  double latency_us = 0;             ///< recipe schedule latency
  double sequential_latency_us = 0;  ///< sequential baseline on same device
  double speedup = 0;                ///< sequential / recipe
};

/// Recipe-cache counters (see Optimizer::cache_stats).
struct OptimizerCacheStats {
  std::int64_t hits = 0;       ///< optimize() calls served from the cache
  std::int64_t misses = 0;     ///< optimize() calls that ran the DP search
  std::int64_t evictions = 0;  ///< entries dropped by LRU eviction
  std::size_t size = 0;        ///< resident entries
};

/// The single-call facade over the paper's whole pipeline: build graph →
/// profile → DP search → execute, with a bounded LRU recipe cache in front.
/// Thread-safe; one instance can serve concurrent optimize() calls.
class Optimizer {
 public:
  /// Default recipe-cache capacity (entries), plenty for every
  /// (model, device, batch) combination of the paper's experiments.
  static constexpr std::size_t kDefaultCacheCapacity = 256;

  /// Creates an optimizer whose recipe cache holds at most `cache_capacity`
  /// entries (clamped to >= 1). Eviction policy: strict least-recently-used
  /// — every optimize() lookup (hit or insert) marks its entry as
  /// most-recently-used, and the insert that exceeds the capacity evicts
  /// the entry whose last use is oldest.
  explicit Optimizer(std::size_t cache_capacity = kDefaultCacheCapacity)
      : cache_(cache_capacity) {}

  /// Runs the full pipeline for the request, or serves the schedule from the
  /// recipe cache when an equivalent request was optimized before. Baseline
  /// latencies are (re)computed per call — they only need the executor, never
  /// the profiling cost model. Thread-safe; concurrent identical misses may
  /// both search, but insert identical entries.
  OptimizationResult optimize(const OptimizationRequest& request);

  /// Executes a recipe's schedule and the sequential baseline. Empty device /
  /// non-positive batch mean "as recorded in the recipe". Zoo recipes are
  /// rebuilt through models::build_model; recipes with an embedded graph are
  /// re-materialized at the requested batch size.
  EvaluationResult evaluate(const Recipe& recipe,
                            const std::string& device = "",
                            int batch = 0) const;

  /// Persists the result's recipe as JSON at `path`.
  static void save(const OptimizationResult& result, const std::string& path);
  /// Loads a recipe persisted with save().
  static Recipe load(const std::string& path);

  /// Resident recipe-cache entries.
  std::size_t cache_size() const;

  /// Max recipe-cache entries before LRU eviction kicks in.
  std::size_t cache_capacity() const;

  /// Hit/miss/eviction counters of the recipe cache (counters survive
  /// clear_cache()).
  OptimizerCacheStats cache_stats() const;

  /// Drops every cached recipe (capacity and counters are kept).
  void clear_cache();

  /// Cost-model profiles run by all optimize() calls on this Optimizer.
  std::int64_t total_measurements() const;

 private:
  struct CacheEntry {
    Schedule schedule;
    SchedulerStats stats;
    double latency_us = 0;
  };

  mutable std::mutex mu_;
  /// Bounded LRU, keyed by the full key material (graph JSON + device +
  /// options), not its hash — a fingerprint collision must not serve
  /// another request's schedule.
  LruCache<CacheEntry> cache_;
  std::int64_t cache_hits_ = 0;
  std::int64_t cache_misses_ = 0;
  std::int64_t total_measurements_ = 0;
};

/// The recipe-cache key material: the serialized graph (which covers batch,
/// topology, and every attribute), the canonical device name, and the
/// options that can change the found schedule. SchedulerOptions::num_threads
/// and ::engine are deliberately excluded — the schedule is identical for
/// every thread count and search engine. OptimizationResult::fingerprint is
/// the hash of this string.
std::string request_cache_key(const Graph& g, const std::string& device,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol);

/// The options/protocol suffix of every recipe-cache key: each
/// SchedulerOptions and ProfilingProtocol field that can change the found
/// schedule (num_threads, engine, and cross_block_reuse excluded, see
/// request_cache_key; prune/beam_width appended only when prune != kExact so
/// pre-existing keys stay byte-identical).
/// Shared by
/// request_cache_key and the serving layer's serving_cache_key, so the two
/// key schemes can never drift apart on these fields.
std::string scheduler_config_key(const SchedulerOptions& options,
                                 const ProfilingProtocol& protocol);

/// Re-materializes `g` at a different batch size (round-trips through the
/// graph JSON with the batch replaced; op ids are preserved, so existing
/// schedules stay valid).
Graph graph_with_batch(const Graph& g, int batch);

}  // namespace ios
