#pragma once
// ios::Optimizer — the single-call facade over the paper's whole pipeline:
// build graph → profile with the CostModel → DP search (Algorithm 1) →
// execute and compare against baselines. Callers describe *what* to optimize
// in an OptimizationRequest (a zoo model by name, or an in-memory Graph) and
// get everything the pipeline produces back in one OptimizationResult.
//
// The facade keeps an in-process, thread-safe *recipe cache* keyed by
// (graph fingerprint, device, scheduler options, profiling protocol): a
// repeated request — the serving scenario, where the same deployment
// configuration is optimized over and over — skips the DP search and all
// cost-model profiling entirely. Results can also be persisted as recipe
// JSON (save/load) and re-evaluated later, possibly on a different device or
// batch size.

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/scheduler.hpp"
#include "runtime/cost_model.hpp"
#include "schedule/serialize.hpp"
#include "sim/device.hpp"

namespace ios {

/// Reference points a request may compare the IOS schedule against: the
/// paper's Section 6.1 schedules plus the simulated framework baselines of
/// Figure 7 and the Nimble extension.
enum class Baseline {
  kSequential,
  kGreedy,
  kTensorFlow,
  kTensorFlowXla,
  kTaso,
  kTvmCudnn,
  kTensorRT,
  kTvmAutoTune,
  kNimble,
};

const char* baseline_name(Baseline b);

/// Inverse of baseline_name. Throws std::invalid_argument enumerating all
/// baseline names when `name` is unknown.
Baseline baseline_by_name(const std::string& name);

/// Every baseline, in the order of the enum (sequential, greedy, then the
/// Figure 7 frameworks, then Nimble).
std::vector<Baseline> all_baselines();

struct OptimizationRequest {
  /// Model zoo name (a models::registry() key). Ignored when `graph` is set.
  std::string model = "inception_v3";
  /// Optimize this in-memory graph instead of a zoo model. The graph carries
  /// its own batch size, so `batch` below is ignored.
  std::optional<Graph> graph;
  /// Device short or full name (device_names()).
  std::string device = "v100";
  /// Batch size for zoo models.
  int batch = 1;
  SchedulerOptions options{};
  ProfilingProtocol protocol{};
  std::vector<Baseline> baselines{Baseline::kSequential, Baseline::kGreedy};

  static OptimizationRequest for_model(std::string name,
                                       std::string device = "v100",
                                       int batch = 1);
  static OptimizationRequest for_graph(Graph g, std::string device = "v100");
};

struct BaselineResult {
  std::string name;
  double latency_us = 0;
  double speedup = 0;  ///< baseline latency / IOS latency
};

struct OptimizationResult {
  Schedule schedule;
  /// IOS schedule latency on the requested device, microseconds.
  double latency_us = 0;
  /// One entry per requested baseline, request order.
  std::vector<BaselineResult> baselines;
  /// DP search statistics. On a cache hit these are the stats of the search
  /// that originally filled the cache entry.
  SchedulerStats stats;
  /// Persistable recipe; pass to Optimizer::save / Optimizer::evaluate. For
  /// for_graph requests this embeds a copy of the graph — on every call,
  /// cache hit or not, so a result is always save()-able.
  Recipe recipe;
  /// True when the schedule came from the recipe cache.
  bool cache_hit = false;
  /// Cost-model profiles run by *this* call — 0 on a cache hit.
  std::int64_t new_measurements = 0;
  /// The cache key the request mapped to.
  std::uint64_t fingerprint = 0;

  /// The entry for a named baseline, or nullptr if it was not requested.
  const BaselineResult* baseline(const std::string& name) const;
};

struct EvaluationResult {
  std::string device;  ///< full device name the recipe was evaluated on
  int batch = 1;
  double latency_us = 0;             ///< recipe schedule latency
  double sequential_latency_us = 0;  ///< sequential baseline on same device
  double speedup = 0;                ///< sequential / recipe
};

class Optimizer {
 public:
  /// Runs the full pipeline for the request, or serves the schedule from the
  /// recipe cache when an equivalent request was optimized before. Baseline
  /// latencies are (re)computed per call — they only need the executor, never
  /// the profiling cost model. Thread-safe; concurrent identical misses may
  /// both search, but insert identical entries.
  OptimizationResult optimize(const OptimizationRequest& request);

  /// Executes a recipe's schedule and the sequential baseline. Empty device /
  /// non-positive batch mean "as recorded in the recipe". Zoo recipes are
  /// rebuilt through models::build_model; recipes with an embedded graph are
  /// re-materialized at the requested batch size.
  EvaluationResult evaluate(const Recipe& recipe,
                            const std::string& device = "",
                            int batch = 0) const;

  static void save(const OptimizationResult& result, const std::string& path);
  static Recipe load(const std::string& path);

  std::size_t cache_size() const;
  void clear_cache();

  /// Cost-model profiles run by all optimize() calls on this Optimizer.
  std::int64_t total_measurements() const;

 private:
  struct CacheEntry {
    Schedule schedule;
    SchedulerStats stats;
    double latency_us = 0;
  };

  mutable std::mutex mu_;
  /// Keyed by the full key material (graph JSON + device + options), not its
  /// hash — a fingerprint collision must not serve another request's
  /// schedule.
  std::unordered_map<std::string, CacheEntry> cache_;
  std::int64_t total_measurements_ = 0;
};

/// The recipe-cache key material: the serialized graph (which covers batch,
/// topology, and every attribute), the canonical device name, and the
/// options that can change the found schedule. SchedulerOptions::num_threads
/// is deliberately excluded — the schedule is identical for every thread
/// count. OptimizationResult::fingerprint is the hash of this string.
std::string request_cache_key(const Graph& g, const std::string& device,
                              const SchedulerOptions& options,
                              const ProfilingProtocol& protocol);

/// Re-materializes `g` at a different batch size (round-trips through the
/// graph JSON with the batch replaced; op ids are preserved, so existing
/// schedules stay valid).
Graph graph_with_batch(const Graph& g, int batch);

}  // namespace ios
