#pragma once
// Event-driven multi-stream GPU execution simulator.
//
// This is the reproduction's substitute for running kernels through cuDNN on
// real CUDA streams (Section 5 of the paper). The model:
//
//  * Each stream executes its kernels in order; a kernel becomes *active*
//    `kernel_launch_us` after its predecessor in the stream finishes.
//  * Active kernels share the device. Kernel k demands `warps_k` resident
//    warps; if total demand exceeds the device's warp slots, allocations are
//    scaled proportionally (the hardware work distributor interleaves thread
//    blocks from concurrent grids).
//  * Device-level throughput saturates with total resident warps A:
//        eff_c(A) = 1 - exp(-A / (slots * compute_sat_frac))
//        eff_m(A) = 1 - exp(-A / (slots * memory_sat_frac))
//    so a single small kernel leaves the device under-utilized (the paper's
//    Figures 1-2) while concurrent kernels raise utilization until the
//    slots saturate, after which they only contend (the paper's "resource
//    contention" effect that penalizes the greedy schedule).
//  * Kernel k's instantaneous progress is roofline-limited:
//        rate_k = min( P * eff_c(A) * share_k * efficiency_k / flops_k,
//                      BW * eff_m(A) * share_k / bytes_k )
//    with share_k = alloc_k / A. Compute- and memory-bound kernels therefore
//    contend for the right resource.
//
// The simulator is deterministic and returns the full kernel timeline plus a
// resident-warp trace (used to reproduce the paper's Figure 8).

#include "sim/device.hpp"
#include "sim/kernel.hpp"

namespace ios {

class Engine {
 public:
  explicit Engine(DeviceSpec spec) : spec_(std::move(spec)) {}

  const DeviceSpec& device() const { return spec_; }

  /// Simulates the concurrent execution of the given streams starting at
  /// t = 0. Returns the makespan and traces.
  SimResult run(const std::vector<KernelStream>& streams) const;

  /// Latency of a single kernel executed alone (including launch overhead).
  double kernel_latency_us(const KernelDesc& k) const;

 private:
  DeviceSpec spec_;
};

}  // namespace ios
