#include "sim/kernel_model.hpp"

#include <algorithm>
#include <cassert>

namespace ios {

KernelDesc kernel_for_op(const Graph& g, OpId id,
                         const KernelModelParams& params) {
  const Op& op = g.op(id);
  assert(op.schedulable());

  KernelDesc k;
  k.op = id;
  k.name = op.name;
  k.flops = static_cast<double>(g.flops(id));
  k.bytes = static_cast<double>(g.input_bytes(id) + g.weight_bytes(id) +
                                g.output_bytes(id));

  // Threads ~ output elements / elems_per_thread; warps = threads / 32.
  const double out_elems = static_cast<double>(op.output.numel());
  k.warps = std::max(1.0, out_elems / (32.0 * params.elems_per_thread));

  switch (op.kind) {
    case OpKind::kConv2d:
      k.efficiency = params.conv_efficiency;
      break;
    case OpKind::kSepConv:
      k.efficiency = params.sepconv_efficiency;
      break;
    case OpKind::kMatmul:
      k.efficiency = params.matmul_efficiency;
      break;
    case OpKind::kPool2d:
      k.efficiency = params.pool_efficiency;
      break;
    default:
      k.efficiency = params.memop_efficiency;
      break;
  }
  return k;
}

}  // namespace ios
