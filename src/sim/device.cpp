#include "sim/device.hpp"

#include <stdexcept>

#include "util/names.hpp"

namespace ios {

DeviceSpec tesla_v100() {
  DeviceSpec d;
  d.name = "Tesla V100";
  d.num_sms = 80;
  d.warp_slots_per_sm = 64;
  d.peak_tflops = 15.7;
  d.dram_gbps = 900;
  d.kernel_launch_us = 4.0;
  d.stage_sync_us = 4.5;
  d.stream_sync_us = 2.0;
  return d;
}

DeviceSpec tesla_k80() {
  DeviceSpec d;
  d.name = "Tesla K80";
  d.num_sms = 13;  // one GK210 die
  d.warp_slots_per_sm = 64;
  d.peak_tflops = 4.37;  // with GPU boost
  d.dram_gbps = 240;
  d.kernel_launch_us = 7.0;
  d.stage_sync_us = 8.0;
  d.stream_sync_us = 3.0;
  // Kepler needs relatively more resident warps to hide latency and its
  // small L2 makes co-resident kernels interfere more.
  d.compute_sat_frac = 0.35;
  d.mem_contention_coef = 0.55;
  return d;
}

DeviceSpec rtx_2080ti() {
  DeviceSpec d;
  d.name = "RTX 2080Ti";
  d.num_sms = 68;
  d.warp_slots_per_sm = 32;  // Turing halves resident warps per SM
  d.peak_tflops = 13.45;
  d.dram_gbps = 616;
  d.kernel_launch_us = 4.0;
  d.stage_sync_us = 5.0;
  d.stream_sync_us = 2.0;
  d.mem_contention_coef = 0.4;
  return d;
}

DeviceSpec gtx_1080() {
  DeviceSpec d;
  d.name = "GTX 1080";
  d.num_sms = 20;
  d.warp_slots_per_sm = 64;
  d.peak_tflops = 8.87;
  d.dram_gbps = 320;
  d.kernel_launch_us = 5.5;
  d.stage_sync_us = 8.0;
  d.stream_sync_us = 2.5;
  return d;
}

DeviceSpec gtx_980ti() {
  DeviceSpec d;
  d.name = "GTX 980Ti";
  d.num_sms = 22;
  d.warp_slots_per_sm = 64;
  d.peak_tflops = 5.77;  // the paper's Figure 1 quotes 5767 GFLOPs/s
  d.dram_gbps = 336;
  d.kernel_launch_us = 6.0;
  d.stage_sync_us = 9.0;
  d.stream_sync_us = 2.5;
  d.compute_sat_frac = 0.3;
  return d;
}

DeviceSpec tesla_p100() {
  DeviceSpec d;
  d.name = "Tesla P100";
  d.num_sms = 56;
  d.warp_slots_per_sm = 64;
  d.peak_tflops = 10.6;  // SXM2 variant
  d.dram_gbps = 732;     // HBM2
  d.kernel_launch_us = 4.5;
  d.stage_sync_us = 5.5;
  d.stream_sync_us = 2.0;
  // HBM2's wide bus tolerates co-resident kernels better than GDDR.
  d.mem_contention_coef = 0.3;
  return d;
}

DeviceSpec gtx_1080ti() {
  DeviceSpec d;
  d.name = "GTX 1080Ti";
  d.num_sms = 28;
  d.warp_slots_per_sm = 64;
  d.peak_tflops = 11.34;
  d.dram_gbps = 484;  // GDDR5X
  d.kernel_launch_us = 5.5;
  d.stage_sync_us = 8.0;
  d.stream_sync_us = 2.5;
  d.mem_contention_coef = 0.4;
  return d;
}

namespace {

// Single source for every name device_by_name() accepts; short names sorted.
struct NamedDevice {
  const char* short_name;
  const char* full_name;
  DeviceSpec (*build)();
};
constexpr NamedDevice kDevices[] = {
    {"1080", "GTX 1080", gtx_1080},
    {"1080ti", "GTX 1080Ti", gtx_1080ti},
    {"2080ti", "RTX 2080Ti", rtx_2080ti},
    {"980ti", "GTX 980Ti", gtx_980ti},
    {"k80", "Tesla K80", tesla_k80},
    {"p100", "Tesla P100", tesla_p100},
    {"v100", "Tesla V100", tesla_v100},
};

}  // namespace

std::vector<std::string> device_names() {
  std::vector<std::string> names;
  for (const NamedDevice& d : kDevices) names.push_back(d.short_name);
  return names;
}

DeviceSpec device_by_name(const std::string& name) {
  for (const NamedDevice& d : kDevices) {
    if (name == d.short_name || name == d.full_name) return d.build();
  }
  throw std::invalid_argument(unknown_name_message("device", name,
                                                   device_names()));
}

std::string device_short_name(const std::string& name) {
  for (const NamedDevice& d : kDevices) {
    if (name == d.short_name || name == d.full_name) return d.short_name;
  }
  throw std::invalid_argument(unknown_name_message("device", name,
                                                   device_names()));
}

}  // namespace ios
