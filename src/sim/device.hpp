#pragma once
// Device models for the simulated GPUs. The paper evaluates on NVIDIA Tesla
// V100 (primary), Tesla K80 (Table 3 device specialization) and RTX 2080Ti
// (Appendix B). Each spec captures the handful of parameters the latency
// model needs: parallelism capacity (warp slots), peak FP32 throughput, DRAM
// bandwidth, and host-side launch/synchronization overheads.

#include <string>
#include <vector>

namespace ios {

struct DeviceSpec {
  std::string name;
  int num_sms = 0;
  int warp_slots_per_sm = 64;  ///< max resident warps per SM
  double peak_tflops = 0;      ///< peak FP32 TFLOP/s
  double dram_gbps = 0;        ///< DRAM bandwidth, GB/s
  double kernel_launch_us = 5; ///< host dispatch latency per kernel
  double stage_sync_us = 9;    ///< event/synchronize cost closing a
                               ///< multi-stream stage
  double stream_sync_us = 2;   ///< additional event cost per extra stream
  /// Fraction of total warp slots at which compute throughput reaches
  /// 1 - 1/e of its ceiling (occupancy saturation constant).
  double compute_sat_frac = 0.25;
  /// Same for DRAM bandwidth; memory saturates with fewer warps in flight.
  double memory_sat_frac = 0.08;
  /// Shared-resource (L2 / DRAM row buffer) interference between
  /// concurrently resident kernels: each kernel's memory throughput is
  /// divided by 1 + coef * (n_active - 1) * occupancy^2. Negligible when
  /// the device is under-occupied (small batches), substantial once the
  /// warp slots are saturated — the paper's Section 7.2 contention effect.
  double mem_contention_coef = 0.35;

  int total_warp_slots() const { return num_sms * warp_slots_per_sm; }
  double peak_flops_per_us() const { return peak_tflops * 1e6; }
  double bytes_per_us() const { return dram_gbps * 1e3; }
};

/// NVIDIA Tesla V100 (Volta, 2017): the paper's primary platform.
DeviceSpec tesla_v100();

/// NVIDIA Tesla K80, one GK210 die (Kepler, 2014): the paper's low-end GPU.
DeviceSpec tesla_k80();

/// NVIDIA GeForce RTX 2080Ti (Turing, 2018): Appendix B platform.
DeviceSpec rtx_2080ti();

/// NVIDIA GTX 1080 (Pascal, 2016): used in the Figure 1 trend discussion.
DeviceSpec gtx_1080();

/// NVIDIA GTX 980Ti (Maxwell): the 2013-era representative of Figure 1.
DeviceSpec gtx_980ti();

/// NVIDIA Tesla P100 (Pascal, 2016): HBM2 server card — modest FP32 peak but
/// the highest DRAM bandwidth of the Pascal generation. Together with the
/// GTX 1080Ti it forms the pool-placement tradeoff pair: memory-bound
/// networks run faster here, compute-bound networks faster on the 1080Ti.
DeviceSpec tesla_p100();

/// NVIDIA GTX 1080Ti (Pascal, 2017): GDDR5X consumer card — more FP32
/// throughput than the P100 but two thirds of its bandwidth.
DeviceSpec gtx_1080ti();

/// Short names accepted by device_by_name(), sorted. (The full marketing
/// names, e.g. "Tesla V100", are accepted too.)
std::vector<std::string> device_names();

/// Looks up a device spec by short or full name. Throws std::invalid_argument
/// enumerating device_names() when the name is unknown.
DeviceSpec device_by_name(const std::string& name);

/// The short name ("v100") of a device given either of its names. Throws
/// like device_by_name. Pool spec strings round-trip through this.
std::string device_short_name(const std::string& name);

}  // namespace ios
