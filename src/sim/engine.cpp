#include "sim/engine.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ios {

double SimResult::warp_time_integral() const {
  double integral = 0;
  for (std::size_t i = 0; i < warp_trace.size(); ++i) {
    const double t0 = warp_trace[i].t_us;
    const double t1 =
        i + 1 < warp_trace.size() ? warp_trace[i + 1].t_us : makespan_us;
    integral += warp_trace[i].active_warps * (t1 - t0);
  }
  return integral;
}

double SimResult::mean_active_warps() const {
  return makespan_us > 0 ? warp_time_integral() / makespan_us : 0.0;
}

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kTimeEps = 1e-9;  // microsecond-scale epsilon

struct ActiveKernel {
  int stream = 0;
  int index = 0;            // position within its stream
  double start_us = 0;      // activation time
  double remaining = 1.0;   // fraction of the kernel's work left
  double rate = 0;          // fraction per microsecond (recomputed per epoch)
};

double saturation(double warps, double slots, double frac) {
  if (warps <= 0) return 0;
  return 1.0 - std::exp(-warps / (slots * frac));
}

}  // namespace

double Engine::kernel_latency_us(const KernelDesc& k) const {
  std::vector<KernelStream> streams(1);
  streams[0].push_back(k);
  return run(streams).makespan_us;
}

SimResult Engine::run(const std::vector<KernelStream>& streams) const {
  SimResult result;

  const double slots = spec_.total_warp_slots();
  const double peak = spec_.peak_flops_per_us();
  const double bw = spec_.bytes_per_us();

  const int num_streams = static_cast<int>(streams.size());
  // next_launch[s]: time at which stream s's next kernel becomes active,
  // or kInf if the stream is exhausted / its next kernel not yet scheduled.
  std::vector<int> next_index(static_cast<std::size_t>(num_streams), 0);
  std::vector<double> next_launch(static_cast<std::size_t>(num_streams), kInf);
  for (int s = 0; s < num_streams; ++s) {
    if (!streams[static_cast<std::size_t>(s)].empty()) {
      next_launch[static_cast<std::size_t>(s)] = spec_.kernel_launch_us;
    }
  }

  std::vector<ActiveKernel> active;
  double now = 0;

  auto kernel_of = [&](const ActiveKernel& a) -> const KernelDesc& {
    return streams[static_cast<std::size_t>(a.stream)]
                  [static_cast<std::size_t>(a.index)];
  };

  auto record_warp_segment = [&](double t) {
    double warps = 0;
    for (const ActiveKernel& a : active) {
      warps += kernel_of(a).warps;
    }
    warps = std::min(warps, slots);
    if (!result.warp_trace.empty() &&
        result.warp_trace.back().active_warps == warps) {
      return;  // merge identical adjacent segments
    }
    result.warp_trace.push_back({t, warps});
  };

  auto recompute_rates = [&]() {
    // Proportional warp allocation under the slot cap.
    double demand = 0;
    for (const ActiveKernel& a : active) demand += kernel_of(a).warps;
    const double scale = demand > slots ? slots / demand : 1.0;
    const double total_alloc = std::min(demand, slots);
    const double eff_c =
        saturation(total_alloc, slots, spec_.compute_sat_frac);
    const double eff_m = saturation(total_alloc, slots, spec_.memory_sat_frac);
    // Shared-resource interference between co-resident kernels (Section 7.2
    // of the paper): grows with occupancy, so concurrency is nearly free on
    // an under-utilized device but costly when the batch already fills it.
    const double occupancy = total_alloc / slots;
    const double n_active = static_cast<double>(active.size());
    const double contention =
        1.0 + spec_.mem_contention_coef * (n_active - 1.0) * occupancy *
                  occupancy;
    for (ActiveKernel& a : active) {
      const KernelDesc& k = kernel_of(a);
      const double alloc = k.warps * scale;
      const double share = total_alloc > 0 ? alloc / total_alloc : 0;
      double rate = kInf;
      if (k.flops > 0) {
        rate = std::min(rate, peak * eff_c * share * k.efficiency / k.flops);
      }
      if (k.bytes > 0) {
        rate = std::min(rate, bw * eff_m * share / (k.bytes * contention));
      }
      a.rate = rate;
    }
  };

  int total_kernels = 0;
  for (const KernelStream& s : streams) {
    total_kernels += static_cast<int>(s.size());
  }
  int completed = 0;

  while (completed < total_kernels) {
    // Next event: earliest kernel completion or stream launch.
    double next_event = kInf;
    for (const ActiveKernel& a : active) {
      if (a.rate <= 0) {
        throw std::runtime_error("simulator stall: kernel has zero rate");
      }
      next_event = std::min(next_event, now + a.remaining / a.rate);
    }
    for (int s = 0; s < num_streams; ++s) {
      next_event = std::min(next_event, next_launch[static_cast<std::size_t>(s)]);
    }
    assert(next_event < kInf && next_event >= now - kTimeEps);
    next_event = std::max(next_event, now);

    // Advance active kernels to the event time.
    const double dt = next_event - now;
    for (ActiveKernel& a : active) {
      a.remaining -= a.rate * dt;
    }
    now = next_event;

    // Retire finished kernels and schedule their stream's next launch.
    bool changed = false;
    for (std::size_t i = 0; i < active.size();) {
      ActiveKernel& a = active[i];
      if (a.remaining <= a.rate * kTimeEps + 1e-12) {
        const KernelDesc& k = kernel_of(a);
        result.timeline.push_back({k.op, k.name, a.stream, a.start_us, now});
        const std::size_t si = static_cast<std::size_t>(a.stream);
        next_index[si] = a.index + 1;
        if (next_index[si] <
            static_cast<int>(streams[si].size())) {
          next_launch[si] = now + spec_.kernel_launch_us;
        }
        ++completed;
        active[i] = active.back();
        active.pop_back();
        changed = true;
      } else {
        ++i;
      }
    }

    // Activate newly launched kernels.
    for (int s = 0; s < num_streams; ++s) {
      const std::size_t si = static_cast<std::size_t>(s);
      if (next_launch[si] <= now + kTimeEps) {
        const KernelDesc& k = streams[si][static_cast<std::size_t>(next_index[si])];
        ActiveKernel a;
        a.stream = s;
        a.index = next_index[si];
        a.start_us = now;
        // Zero-work kernels (pure bookkeeping) complete instantly; give them
        // an epsilon of work so the loop retires them on the next iteration.
        a.remaining = (k.flops <= 0 && k.bytes <= 0) ? 0.0 : 1.0;
        active.push_back(a);
        next_launch[si] = kInf;
        changed = true;
      }
    }

    if (changed) {
      recompute_rates();
      record_warp_segment(now);
      // Instantly retire zero-work kernels activated above.
      for (std::size_t i = 0; i < active.size();) {
        if (active[i].remaining <= 0) {
          const ActiveKernel& a = active[i];
          const KernelDesc& k = kernel_of(a);
          result.timeline.push_back({k.op, k.name, a.stream, a.start_us, now});
          const std::size_t si = static_cast<std::size_t>(a.stream);
          next_index[si] = a.index + 1;
          if (next_index[si] < static_cast<int>(streams[si].size())) {
            next_launch[si] = now + spec_.kernel_launch_us;
          }
          ++completed;
          active[i] = active.back();
          active.pop_back();
        } else {
          ++i;
        }
      }
      recompute_rates();
      record_warp_segment(now);
    }
  }

  result.makespan_us = now;
  return result;
}

}  // namespace ios
