#pragma once
// Maps operator IR nodes to simulated kernels. This encodes how a cuDNN-like
// library would launch each primitive: how much work it does, how much DRAM
// traffic it generates, how many warps it exposes, and how efficient the
// vendor implementation of that primitive is at full occupancy.

#include "graph/graph.hpp"
#include "sim/kernel.hpp"

namespace ios {

struct KernelModelParams {
  /// Output elements computed per thread (cuDNN kernels assign several
  /// output elements to each thread, which limits exposed parallelism for
  /// small tensors — the root cause of the paper's under-utilization gap).
  double elems_per_thread = 4;

  /// Implementation efficiency by primitive: achievable fraction of device
  /// peak at full occupancy. Dense convolution and GEMM are the
  /// best-optimized cuDNN paths; depthwise-separable convolutions are
  /// notoriously poor in cuDNN (which is why TVM-AutoTune beats cuDNN-based
  /// stacks on RandWire/NasNet in the paper's Figure 12).
  double conv_efficiency = 0.80;
  double sepconv_efficiency = 0.22;
  double matmul_efficiency = 0.88;
  double pool_efficiency = 0.90;
  double memop_efficiency = 1.0;
};

/// Builds the simulated kernel for one operator of the graph.
KernelDesc kernel_for_op(const Graph& g, OpId id,
                         const KernelModelParams& params = {});

}  // namespace ios
