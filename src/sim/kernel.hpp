#pragma once
// KernelDesc: what the execution simulator knows about one launched GPU
// kernel — its total work (FLOPs), its memory traffic (bytes moved through
// DRAM), its parallelism (warps it can keep resident), and a per-kernel
// implementation-efficiency factor standing in for how well the vendor
// library implements that primitive.

#include <string>
#include <vector>

#include "graph/op.hpp"

namespace ios {

struct KernelDesc {
  std::string name;
  double flops = 0;        ///< total floating point work
  double bytes = 0;        ///< DRAM traffic: inputs + weights + outputs
  double warps = 0;        ///< resident-warp demand (parallelism exposed)
  double efficiency = 1.0; ///< fraction of device peak this kernel's
                           ///< implementation can reach at full occupancy
  OpId op = kInvalidOp;    ///< provenance (for traces); kInvalidOp for
                           ///< synthetic kernels
};

/// One stream = an ordered list of kernels executed back-to-back.
using KernelStream = std::vector<KernelDesc>;

struct KernelTiming {
  OpId op = kInvalidOp;
  std::string name;
  int stream = 0;
  double start_us = 0;
  double end_us = 0;
};

/// Piecewise-constant resident-warp count over time: (timestamp_us, warps)
/// at the start of each constant segment.
struct WarpTraceEntry {
  double t_us = 0;
  double active_warps = 0;
};

struct SimResult {
  double makespan_us = 0;
  std::vector<KernelTiming> timeline;
  std::vector<WarpTraceEntry> warp_trace;

  /// Time-integral of active warps (warp-microseconds) up to makespan.
  double warp_time_integral() const;
  /// Average active warps over the run.
  double mean_active_warps() const;
};

}  // namespace ios
