#pragma once
// Simulated framework baselines for the paper's Figures 7, 11, 12, 15.
//
// Each baseline is modeled as the scheduling/rewriting policy that framework
// actually applies, executed on the same GPU simulator as IOS:
//
//   * TensorFlow      — sequential cuDNN execution, heavy runtime dispatch.
//   * TensorFlow-XLA  — sequential + elementwise fusion (standalone ReLU /
//                       identity kernels folded into their producers).
//   * TASO            — graph-substitution search: merges same-input
//                       convolutions when profitable, then sequential
//                       execution (no concurrent streams — the limitation
//                       IOS lifts).
//   * TVM-cuDNN       — sequential, cuDNN convolutions, lean runtime.
//   * TensorRT        — merge substitutions + kernel autotuning + the
//                       lowest dispatch overhead, still sequential.
//   * TVM-AutoTune    — sequential, but with autotuned kernels that are far
//                       better than cuDNN on depthwise-separable
//                       convolutions, at two-orders-of-magnitude higher
//                       optimization cost (Figure 12).
//
// What is preserved from the paper is each framework's *policy*; absolute
// constants (dispatch scale, kernel-efficiency scale) are calibrated so the
// relative ordering matches the published measurements.

#include <string>
#include <vector>

#include "graph/graph.hpp"
#include "sim/device.hpp"

namespace ios::frameworks {

struct FrameworkSpec {
  std::string name;
  double launch_scale = 1.0;      ///< multiplier on kernel launch overhead
  double conv_eff_scale = 1.0;    ///< multiplier on conv kernel efficiency
  double sepconv_eff_scale = 1.0; ///< multiplier on sepconv efficiency
  bool fuse_elementwise = false;  ///< fold ReLU/identity into producers
  bool merge_substitution = false;///< TASO/TensorRT-style conv merging
  /// Autotuning trials per distinct kernel (0 = no tuning). Drives the
  /// modeled optimization cost.
  int tuning_trials = 0;
};

FrameworkSpec tensorflow_spec();
FrameworkSpec tensorflow_xla_spec();
FrameworkSpec taso_spec();
FrameworkSpec tvm_cudnn_spec();
FrameworkSpec tensorrt_spec();
FrameworkSpec tvm_autotune_spec();

/// All baselines of Figure 7, in the paper's order.
std::vector<FrameworkSpec> cudnn_baselines();

struct FrameworkResult {
  std::string name;
  double latency_us = 0;
  /// Modeled optimization cost in simulated GPU seconds (kernel tuning
  /// and/or substitution search).
  double optimization_cost_s = 0;
};

/// End-to-end latency of the graph executed under the framework's policy.
FrameworkResult run_framework(const Graph& g, const DeviceSpec& device,
                              const FrameworkSpec& spec);

/// Nimble (Kwon et al. 2020), an extension beyond the paper's evaluation:
/// parallel operator execution with ahead-of-time scheduling. The AOT CUDA
/// graph eliminates most launch/synchronization overhead, but the schedule
/// itself is latency-oblivious (topological greedy) — the limitation the
/// paper's related-work section points out and IOS's profile-based DP
/// addresses.
FrameworkResult run_nimble(const Graph& g, const DeviceSpec& device);

}  // namespace ios::frameworks
