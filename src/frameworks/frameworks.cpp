#include "frameworks/frameworks.hpp"

#include <unordered_map>
#include <unordered_set>

#include "runtime/executor.hpp"
#include "schedule/baselines.hpp"
#include "schedule/merge.hpp"
#include "sim/engine.hpp"
#include "sim/kernel_model.hpp"

namespace ios::frameworks {

FrameworkSpec tensorflow_spec() {
  return {.name = "TensorFlow", .launch_scale = 2.6};
}

FrameworkSpec tensorflow_xla_spec() {
  return {.name = "TensorFlow-XLA",
          .launch_scale = 1.7,
          .fuse_elementwise = true};
}

FrameworkSpec taso_spec() {
  return {.name = "TASO", .launch_scale = 1.1, .merge_substitution = true};
}

FrameworkSpec tvm_cudnn_spec() {
  return {.name = "TVM-cuDNN", .launch_scale = 1.15};
}

FrameworkSpec tensorrt_spec() {
  return {.name = "TensorRT",
          .launch_scale = 0.8,
          .merge_substitution = true};
}

FrameworkSpec tvm_autotune_spec() {
  // Ansor-style autotuning: graph-level codegen with almost no runtime
  // dispatch overhead and depthwise-separable kernels ~3x better than
  // cuDNN's notoriously slow grouped convolutions.
  return {.name = "TVM-AutoTune",
          .launch_scale = 0.85,
          .conv_eff_scale = 1.05,
          .sepconv_eff_scale = 4.5,
          .tuning_trials = 900};
}

std::vector<FrameworkSpec> cudnn_baselines() {
  return {tensorflow_spec(), tensorflow_xla_spec(), taso_spec(),
          tvm_cudnn_spec(), tensorrt_spec()};
}

namespace {

KernelModelParams scaled_params(const FrameworkSpec& spec) {
  KernelModelParams p;
  p.conv_efficiency = std::min(1.0, p.conv_efficiency * spec.conv_eff_scale);
  p.matmul_efficiency =
      std::min(1.0, p.matmul_efficiency * spec.conv_eff_scale);
  p.sepconv_efficiency =
      std::min(1.0, p.sepconv_efficiency * spec.sepconv_eff_scale);
  return p;
}

/// Greedy TASO/TensorRT-style substitution: for every producer, merge the
/// maximal mergeable set of its consumer convolutions if the merged kernel
/// (plus splits) is faster than executing them one-by-one.
std::vector<MergeInfo> find_profitable_merges(const Graph& g,
                                              const Engine& engine,
                                              const KernelModelParams& params) {
  std::vector<MergeInfo> merges;
  std::unordered_set<OpId> taken;
  for (const Op& producer : g.ops()) {
    std::vector<OpId> candidates;
    for (OpId c : g.succs(producer.id)) {
      const Op& consumer = g.op(c);
      if (consumer.kind == OpKind::kConv2d && consumer.inputs.size() == 1 &&
          !taken.contains(c)) {
        candidates.push_back(c);
      }
    }
    if (candidates.size() < 2) continue;
    // Try the full candidate set first, then drop the op with the largest
    // kernel extent until mergeable (simple but effective for sibling
    // branches with mixed kernel sizes).
    while (candidates.size() >= 2) {
      const auto info = analyze_merge(g, candidates);
      if (info) {
        double sequential = 0;
        for (OpId id : candidates) {
          sequential += engine.kernel_latency_us(kernel_for_op(g, id, params));
        }
        const double merged =
            engine.run({merged_stage_stream(g, *info, params)}).makespan_us;
        if (merged < sequential) {
          merges.push_back(*info);
          for (OpId id : candidates) taken.insert(id);
        }
        break;
      }
      candidates.pop_back();
    }
  }
  return merges;
}

}  // namespace

FrameworkResult run_framework(const Graph& g, const DeviceSpec& device,
                              const FrameworkSpec& spec) {
  DeviceSpec dev = device;
  dev.kernel_launch_us *= spec.launch_scale;
  const KernelModelParams params = scaled_params(spec);
  Engine engine(dev);

  FrameworkResult result;
  result.name = spec.name;

  // Substitution pass (TASO / TensorRT).
  std::vector<MergeInfo> merges;
  std::unordered_map<OpId, std::size_t> merged_into;
  if (spec.merge_substitution) {
    merges = find_profitable_merges(g, engine, params);
    for (std::size_t m = 0; m < merges.size(); ++m) {
      for (OpId id : merges[m].ops) merged_into[id] = m;
    }
  }

  // Sequential execution: one stream, topological order, merges emitted at
  // their first member.
  KernelStream stream;
  std::unordered_set<std::size_t> emitted_merges;
  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    if (spec.fuse_elementwise &&
        (op.kind == OpKind::kRelu || op.kind == OpKind::kIdentity)) {
      continue;  // folded into the producer kernel
    }
    auto it = merged_into.find(op.id);
    if (it != merged_into.end()) {
      if (emitted_merges.insert(it->second).second) {
        for (KernelDesc& k :
             merged_stage_stream(g, merges[it->second], params)) {
          stream.push_back(std::move(k));
        }
      }
      continue;
    }
    stream.push_back(kernel_for_op(g, op.id, params));
  }

  result.latency_us = engine.run({stream}).makespan_us;

  // Optimization cost model: autotuning measures `tuning_trials` candidate
  // tensor programs per kernel; each trial pays a compile+deploy overhead
  // (~0.5 s — this dominates, as in Ansor/AutoTVM) plus ~10 measured runs.
  // Substitution search costs a profile per considered merge. Expressed in
  // simulated GPU seconds.
  if (spec.tuning_trials > 0) {
    constexpr double kTrialOverheadS = 0.5;
    constexpr int kRunsPerTrial = 10;
    double cost_s = 0;
    for (const KernelDesc& k : stream) {
      cost_s += spec.tuning_trials *
                (kTrialOverheadS +
                 kRunsPerTrial * engine.kernel_latency_us(k) * 1e-6);
    }
    result.optimization_cost_s = cost_s;
  }
  if (spec.merge_substitution) {
    result.optimization_cost_s += 1e-6 * 50 * result.latency_us;
  }
  return result;
}

FrameworkResult run_nimble(const Graph& g, const DeviceSpec& device) {
  // AOT scheduling: the whole network is captured once into a device-side
  // graph, so per-kernel dispatch and per-stage synchronization nearly
  // disappear. The schedule itself is the latency-oblivious greedy one.
  DeviceSpec dev = device;
  dev.kernel_launch_us *= 0.15;
  dev.stage_sync_us *= 0.25;
  dev.stream_sync_us *= 0.25;
  Executor executor(g, ExecConfig{dev, KernelModelParams{}});
  FrameworkResult result;
  result.name = "Nimble";
  result.latency_us = executor.schedule_latency_us(greedy_schedule(g));
  // One capture pass over the network.
  result.optimization_cost_s = result.latency_us * 1e-6;
  return result;
}

}  // namespace ios::frameworks
