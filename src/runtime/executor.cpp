#include "runtime/executor.hpp"

#include <stdexcept>

namespace ios {

KernelStream merged_stage_stream(const Graph& g, const MergeInfo& info,
                                 const KernelModelParams& params) {
  KernelStream stream;

  const Op& shared = g.op(info.shared_input);
  const Conv2dAttrs& m = info.merged_attrs;
  const Op& first = g.op(info.ops[0]);
  const int oh = first.output.h;
  const int ow = first.output.w;
  const int n = first.output.n;

  KernelDesc conv;
  conv.name = "merged_conv";
  const double out_elems =
      static_cast<double>(n) * m.out_channels * oh * ow;
  conv.flops = 2.0 * out_elems * shared.output.c * m.kh * m.kw;
  // Key benefit of merging (Section 3): the shared input is read once
  // instead of once per operator.
  const double weight_bytes =
      4.0 * m.out_channels * shared.output.c * m.kh * m.kw;
  conv.bytes = static_cast<double>(shared.output.bytes()) + weight_bytes +
               out_elems * 4.0;
  conv.warps = std::max(1.0, out_elems / (32.0 * params.elems_per_thread));
  conv.efficiency = params.conv_efficiency;
  stream.push_back(conv);

  for (OpId id : info.ops) {
    const Op& op = g.op(id);
    // Split elision: when every consumer is a concat, the consumer can read
    // the channel slice straight out of the merged buffer — materializing
    // the split would be pure waste. This is what makes merging profitable
    // for branches that end in a concat (SqueezeNet fire modules, the
    // Inception-E 1x3/3x1 pairs of the paper's Figure 10).
    bool consumers_are_concats = !g.succs(id).empty();
    for (OpId c : g.succs(id)) {
      if (g.op(c).kind != OpKind::kConcat) {
        consumers_are_concats = false;
        break;
      }
    }
    if (consumers_are_concats) continue;

    KernelDesc split;
    split.op = id;
    split.name = "split_" + op.name;
    split.flops = 0;
    split.bytes = 2.0 * static_cast<double>(op.output.bytes());
    split.warps = std::max(
        1.0, static_cast<double>(op.output.numel()) /
                 (32.0 * params.elems_per_thread));
    split.efficiency = params.memop_efficiency;
    stream.push_back(split);
  }
  return stream;
}

std::vector<KernelStream> Executor::stage_streams(const Stage& stage) const {
  std::vector<KernelStream> streams;
  if (stage.strategy == StageStrategy::kMerge) {
    const std::vector<OpId> ops = stage.ops();
    const auto info = analyze_merge(graph_, ops);
    if (!info) {
      throw std::runtime_error("merge stage is not mergeable");
    }
    streams.push_back(merged_stage_stream(graph_, *info, kparams_));
    return streams;
  }
  streams.reserve(stage.groups.size());
  for (const Group& grp : stage.groups) {
    KernelStream stream;
    stream.reserve(grp.ops.size());
    for (OpId id : grp.ops) {
      stream.push_back(kernel_for_op(graph_, id, kparams_));
    }
    streams.push_back(std::move(stream));
  }
  return streams;
}

double Executor::stage_latency_us(const Stage& stage) const {
  const auto streams = stage_streams(stage);
  double latency = engine_.run(streams).makespan_us;
  if (streams.size() > 1) {
    const DeviceSpec& dev = engine_.device();
    latency += dev.stage_sync_us +
               dev.stream_sync_us * static_cast<double>(streams.size() - 1);
  }
  return latency;
}

double Executor::schedule_latency_us(const Schedule& q) const {
  double total = 0;
  for (const Stage& stage : q.stages) total += stage_latency_us(stage);
  return total;
}

SimResult Executor::run_schedule(const Schedule& q) const {
  SimResult out;
  double offset = 0;
  for (const Stage& stage : q.stages) {
    const auto streams = stage_streams(stage);
    SimResult r = engine_.run(streams);
    for (KernelTiming t : r.timeline) {
      t.start_us += offset;
      t.end_us += offset;
      out.timeline.push_back(std::move(t));
    }
    for (WarpTraceEntry e : r.warp_trace) {
      e.t_us += offset;
      out.warp_trace.push_back(e);
    }
    offset += r.makespan_us;
    if (streams.size() > 1) {
      // Synchronization gap: no kernels resident.
      out.warp_trace.push_back({offset, 0});
      const DeviceSpec& dev = engine_.device();
      offset += dev.stage_sync_us +
                dev.stream_sync_us * static_cast<double>(streams.size() - 1);
    }
  }
  out.makespan_us = offset;
  return out;
}

}  // namespace ios
