#pragma once
// Executor: runs a Schedule on the simulated GPU and reports latency. This
// mirrors the paper's C++/cuDNN execution engine: each group of a concurrent
// stage becomes a CUDA-stream-like kernel stream; a merge stage becomes one
// stacked convolution followed by channel splits; stages are separated by a
// synchronization whose cost is only paid when the stage actually used
// multiple streams.

#include "graph/graph.hpp"
#include "schedule/merge.hpp"
#include "schedule/schedule.hpp"
#include "sim/engine.hpp"
#include "sim/kernel_model.hpp"

namespace ios {

struct ExecConfig {
  DeviceSpec device;
  KernelModelParams kernel_params;
};

class Executor {
 public:
  Executor(const Graph& g, ExecConfig cfg)
      : graph_(g), engine_(cfg.device), kparams_(cfg.kernel_params) {}

  const Graph& graph() const { return graph_; }
  const DeviceSpec& device() const { return engine_.device(); }
  const KernelModelParams& kernel_params() const { return kparams_; }

  /// Latency of one stage in microseconds, including the closing
  /// synchronization when the stage ran more than one stream.
  double stage_latency_us(const Stage& stage) const;

  /// End-to-end latency of the schedule (sum of stage latencies).
  double schedule_latency_us(const Schedule& q) const;

  /// Full simulation of the schedule: kernel timeline and resident-warp
  /// trace across all stages (stage t=0 offsets applied).
  SimResult run_schedule(const Schedule& q) const;

  /// The kernel streams a stage expands to (exposed for tests).
  std::vector<KernelStream> stage_streams(const Stage& stage) const;

 private:
  const Graph& graph_;
  Engine engine_;
  KernelModelParams kparams_;
};

/// Kernel for a merged convolution stage: one stacked conv reading the
/// shared input once, plus one split (channel slice copy) per original op.
KernelStream merged_stage_stream(const Graph& g, const MergeInfo& info,
                                 const KernelModelParams& params);

}  // namespace ios
