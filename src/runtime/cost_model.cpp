#include "runtime/cost_model.hpp"

#include <bit>
#include <limits>
#include <stdexcept>

#include "runtime/canonical_cache.hpp"
#include "runtime/profile_db.hpp"
#include "schedule/serialize.hpp"
#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ios {

namespace {

std::uint64_t hash_double(std::uint64_t seed, double v) {
  return hash_combine(seed, std::bit_cast<std::uint64_t>(v));
}

std::uint64_t device_fingerprint(const DeviceSpec& d) {
  std::uint64_t h = hash_bytes(d.name);
  h = hash_combine(h, static_cast<std::uint64_t>(d.num_sms));
  h = hash_combine(h, static_cast<std::uint64_t>(d.warp_slots_per_sm));
  h = hash_double(h, d.peak_tflops);
  h = hash_double(h, d.dram_gbps);
  h = hash_double(h, d.kernel_launch_us);
  h = hash_double(h, d.stage_sync_us);
  h = hash_double(h, d.stream_sync_us);
  h = hash_double(h, d.compute_sat_frac);
  h = hash_double(h, d.memory_sat_frac);
  h = hash_double(h, d.mem_contention_coef);
  return h;
}

std::uint64_t kernel_params_fingerprint(const KernelModelParams& p) {
  std::uint64_t h = 0x6b70u;  // "kp"
  h = hash_double(h, p.elems_per_thread);
  h = hash_double(h, p.conv_efficiency);
  h = hash_double(h, p.sepconv_efficiency);
  h = hash_double(h, p.matmul_efficiency);
  h = hash_double(h, p.pool_efficiency);
  h = hash_double(h, p.memop_efficiency);
  return h;
}

std::uint64_t protocol_fingerprint(const ProfilingProtocol& p) {
  std::uint64_t h = 0x7072u;  // "pr"
  h = hash_combine(h, static_cast<std::uint64_t>(p.warmup));
  h = hash_combine(h, static_cast<std::uint64_t>(p.repeats));
  h = hash_double(h, p.noise_frac);
  h = hash_combine(h, p.noise_seed);
  return h;
}

/// The ProfileDb context canonical entries live under. Process- and
/// graph-independent: the keys themselves embed the environment
/// fingerprint, so one bucket safely holds every device/protocol mix.
constexpr std::uint64_t canonical_profile_context() {
  return 0x63616e6f6e696361ull;  // "canonica"
}

}  // namespace

CostModel::CostModel(const Graph& g, ExecConfig cfg,
                     ProfilingProtocol protocol, int cache_shards)
    : executor_(g, std::move(cfg)), protocol_(protocol) {
  const int n = cache_shards < 1 ? 1 : cache_shards;
  shards_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

double CostModel::measure(const Stage& stage) {
  const std::uint64_t key = stage_fingerprint(stage);
  Shard& shard = shard_for(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    if (const double* hit = shard.cache.find(key)) return *hit;
  }
  return measure_slow(key, stage);
}

double CostModel::measure_slow(std::uint64_t key, const Stage& stage) {
  Shard& shard = shard_for(key);
  std::uint64_t canon_key = 0;
  if (canonical_ != nullptr) {
    // Canonical reuse: another model/block/batch may have simulated a stage
    // with identical kernel streams. Installing its latency locally skips
    // the simulation and leaves the measurement counters untouched — reuse
    // is free, like a load_profile() entry.
    canon_key = canonical_stage_key(stage);
    if (const auto hit = canonical_->get(canon_key)) {
      bool inserted = false;
      double stored = hit->latency_us;
      {
        std::lock_guard<std::mutex> lock(shard.mu);
        const auto [slot, fresh] = shard.cache.try_emplace(key, stored);
        inserted = fresh;
        stored = *slot;
      }
      if (inserted) {
        canonical_hits_.fetch_add(1, std::memory_order_relaxed);
        if (hit->origin != origin_) {
          cross_model_hits_.fetch_add(1, std::memory_order_relaxed);
        }
      }
      return stored;
    }
  }

  // Simulate outside the lock so concurrent DPs overlap their profiling.
  // Two threads may race to measure the same stage; the simulation is
  // deterministic, so both compute the same value and only the first
  // insert below bumps the counters (keeping them order-independent).
  const double true_latency = executor_.stage_latency_us(stage);
  double latency = true_latency;
  if (protocol_.noise_frac > 0) {
    // Average `repeats` noisy samples, like real profiling would.
    Rng rng(hash_combine(protocol_.noise_seed, key));
    double sum = 0;
    for (int i = 0; i < protocol_.repeats; ++i) {
      const double jitter =
          1.0 + protocol_.noise_frac * (2.0 * rng.uniform() - 1.0);
      sum += true_latency * jitter;
    }
    latency = sum / protocol_.repeats;
  }

  bool inserted = false;
  double stored = latency;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    const auto [slot, fresh] = shard.cache.try_emplace(key, latency);
    inserted = fresh;
    stored = *slot;
  }
  if (inserted) {
    num_measurements_.fetch_add(1, std::memory_order_relaxed);
    profiling_cost_us_.fetch_add(
        true_latency * (protocol_.warmup + protocol_.repeats),
        std::memory_order_relaxed);
  }
  if (canonical_ != nullptr) canonical_->put(canon_key, stored, origin_);
  return stored;
}

StageChoice CostModel::generate_stage(std::span<const OpId> ops) {
  // Concurrent execution: partition into weakly connected groups (L24-25).
  Stage concurrent;
  concurrent.strategy = StageStrategy::kConcurrent;
  concurrent.groups = partition_groups(graph(), ops);
  const double l_concurrent = measure(concurrent);

  // Operator merge (L26-29): only when all operators stack into one kernel.
  double l_merge = std::numeric_limits<double>::infinity();
  if (ops.size() >= 2 && analyze_merge(graph(), ops)) {
    Stage merged;
    merged.strategy = StageStrategy::kMerge;
    merged.groups.push_back(Group{{ops.begin(), ops.end()}});
    l_merge = measure(merged);
  }

  if (l_concurrent <= l_merge) {
    return {l_concurrent, StageStrategy::kConcurrent};
  }
  return {l_merge, StageStrategy::kMerge};
}

void CostModel::reset_counters() {
  num_measurements_.store(0, std::memory_order_relaxed);
  profiling_cost_us_.store(0, std::memory_order_relaxed);
}

std::uint64_t CostModel::profile_context() const {
  std::uint64_t h = hash_bytes(graph_to_json(graph()).dump());
  h = hash_combine(h, device_fingerprint(executor_.device()));
  h = hash_combine(h, kernel_params_fingerprint(executor_.kernel_params()));
  h = hash_combine(h, protocol_fingerprint(protocol_));
  return h;
}

int CostModel::save_profile(ProfileDb& db) const {
  ProfileDb::Entries& entries = db.context_for_update(profile_context());
  int written = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->cache.for_each([&](std::uint64_t key, const double& latency) {
      entries[key] = latency;
      ++written;
    });
  }
  return written;
}

int CostModel::load_profile(const ProfileDb& db) {
  const ProfileDb::Entries* entries = db.context(profile_context());
  if (!entries) return 0;
  int loaded = 0;
  for (const auto& [key, latency] : *entries) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (shard.cache.try_emplace(key, latency).second) ++loaded;
  }
  return loaded;
}

void CostModel::enable_canonical_reuse(CanonicalStageCache* cache) {
  if (cache != nullptr && protocol_.noise_frac > 0) {
    throw std::invalid_argument(
        "canonical stage reuse requires a noise-free protocol: noisy "
        "measurements are seeded by the id-keyed stage fingerprint, so "
        "reusing a latency across stages would change the schedules found");
  }
  canonical_ = cache;
  if (cache != nullptr) {
    origin_ = hash_bytes(graph_to_json(graph()).dump());
    env_fp_ = environment_fingerprint();
  }
}

std::uint64_t CostModel::environment_fingerprint() const {
  std::uint64_t h = device_fingerprint(executor_.device());
  h = hash_combine(h, kernel_params_fingerprint(executor_.kernel_params()));
  h = hash_combine(h, protocol_fingerprint(protocol_));
  return h;
}

std::uint64_t CostModel::canonical_stage_key(const Stage& stage) const {
  std::uint64_t h = env_fp_ != 0 ? env_fp_ : environment_fingerprint();
  for (const KernelStream& stream : executor_.stage_streams(stage)) {
    h = hash_combine(h, 0x73ull);  // stream separator
    for (const KernelDesc& k : stream) {
      h = hash_double(h, k.flops);
      h = hash_double(h, k.bytes);
      h = hash_double(h, k.warps);
      h = hash_double(h, k.efficiency);
    }
  }
  return h;
}

int CostModel::save_canonical(ProfileDb& db) const {
  if (canonical_ == nullptr) return 0;
  ProfileDb::Entries& entries =
      db.context_for_update(canonical_profile_context());
  int written = 0;
  canonical_->for_each(
      [&](std::uint64_t key, const CanonicalStageCache::Entry& e) {
        entries[key] = e.latency_us;
        ++written;
      });
  return written;
}

int CostModel::load_canonical(const ProfileDb& db) {
  if (canonical_ == nullptr) return 0;
  const ProfileDb::Entries* entries =
      db.context(canonical_profile_context());
  if (!entries) return 0;
  int loaded = 0;
  for (const auto& [key, latency] : *entries) {
    if (canonical_->put(key, latency, /*origin=*/0)) ++loaded;
  }
  return loaded;
}

}  // namespace ios
