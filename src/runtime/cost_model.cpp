#include "runtime/cost_model.hpp"

#include <limits>

#include "util/hash.hpp"
#include "util/rng.hpp"

namespace ios {

CostModel::CostModel(const Graph& g, ExecConfig cfg,
                     ProfilingProtocol protocol)
    : executor_(g, std::move(cfg)), protocol_(protocol) {}

std::uint64_t CostModel::stage_key(const Stage& stage) const {
  std::uint64_t h = stage.strategy == StageStrategy::kMerge ? 0x9e37u : 0x51edu;
  for (const Group& grp : stage.groups) {
    h = hash_combine(h, 0x60ull);
    for (OpId id : grp.ops) {
      h = hash_combine(h, static_cast<std::uint64_t>(id));
    }
    h = hash_combine(h, 0xabcdefull);
  }
  return h;
}

double CostModel::measure(const Stage& stage) {
  const std::uint64_t key = stage_key(stage);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = cache_.find(key);
    if (it != cache_.end()) return it->second;
  }

  // Simulate outside the lock so concurrent DPs overlap their profiling.
  // Two threads may race to measure the same stage; the simulation is
  // deterministic, so both compute the same value and only the first
  // insert below bumps the counters (keeping them order-independent).
  const double true_latency = executor_.stage_latency_us(stage);
  double latency = true_latency;
  if (protocol_.noise_frac > 0) {
    // Average `repeats` noisy samples, like real profiling would.
    Rng rng(hash_combine(protocol_.noise_seed, key));
    double sum = 0;
    for (int i = 0; i < protocol_.repeats; ++i) {
      const double jitter =
          1.0 + protocol_.noise_frac * (2.0 * rng.uniform() - 1.0);
      sum += true_latency * jitter;
    }
    latency = sum / protocol_.repeats;
  }

  std::lock_guard<std::mutex> lock(mu_);
  const auto [it, inserted] = cache_.emplace(key, latency);
  if (inserted) {
    ++num_measurements_;
    profiling_cost_us_ +=
        true_latency * (protocol_.warmup + protocol_.repeats);
  }
  return it->second;
}

StageChoice CostModel::generate_stage(std::span<const OpId> ops) {
  // Concurrent execution: partition into weakly connected groups (L24-25).
  Stage concurrent;
  concurrent.strategy = StageStrategy::kConcurrent;
  concurrent.groups = partition_groups(graph(), ops);
  const double l_concurrent = measure(concurrent);

  // Operator merge (L26-29): only when all operators stack into one kernel.
  double l_merge = std::numeric_limits<double>::infinity();
  if (ops.size() >= 2 && analyze_merge(graph(), ops)) {
    Stage merged;
    merged.strategy = StageStrategy::kMerge;
    merged.groups.push_back(Group{{ops.begin(), ops.end()}});
    l_merge = measure(merged);
  }

  if (l_concurrent <= l_merge) {
    return {l_concurrent, StageStrategy::kConcurrent};
  }
  return {l_merge, StageStrategy::kMerge};
}

void CostModel::reset_counters() {
  std::lock_guard<std::mutex> lock(mu_);
  num_measurements_ = 0;
  profiling_cost_us_ = 0;
}

}  // namespace ios
