#pragma once
// ReferenceExecutor: executes a graph numerically on the CPU, either
// sequentially (the oracle) or following a Schedule (applying the operator
// merge transform with real weight stacking). The test suite uses it to
// prove that every schedule IOS emits is functionally equivalent to the
// original network.

#include <span>
#include <vector>

#include "runtime/weights.hpp"
#include "schedule/schedule.hpp"
#include "tensor/tensor.hpp"

namespace ios {

class ReferenceExecutor {
 public:
  /// @param seed controls the deterministic pseudo-random weights.
  ReferenceExecutor(const Graph& g, std::uint64_t seed);

  const Graph& graph() const { return graph_; }
  const WeightStore& weights() const { return weights_; }

  /// Runs every operator in topological order. Returns one tensor per op
  /// (indexed by OpId); entry i is that operator's output.
  std::vector<Tensor> run_sequential(std::span<const Tensor> inputs) const;

  /// Runs the schedule stage by stage. Merge stages execute as one stacked
  /// convolution whose output is sliced back per original operator.
  std::vector<Tensor> run_schedule(const Schedule& q,
                                   std::span<const Tensor> inputs) const;

  /// Deterministic random inputs matching the graph's input ops.
  std::vector<Tensor> make_inputs(std::uint64_t seed) const;

 private:
  Tensor eval_op(OpId id, const std::vector<Tensor>& vals) const;
  void bind_inputs(std::span<const Tensor> inputs,
                   std::vector<Tensor>& vals) const;

  const Graph& graph_;
  WeightStore weights_;
};

}  // namespace ios
