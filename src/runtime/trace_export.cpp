#include "runtime/trace_export.hpp"

#include <sstream>
#include <unordered_map>

#include "util/json.hpp"

namespace ios {

std::string to_chrome_trace(const SimResult& result) {
  JsonValue events = JsonValue::array();
  for (const KernelTiming& t : result.timeline) {
    JsonValue e = JsonValue::object();
    e.set("name", t.name);
    e.set("ph", "X");
    e.set("ts", t.start_us);
    e.set("dur", t.end_us - t.start_us);
    e.set("pid", 0);
    e.set("tid", t.stream);
    JsonValue args = JsonValue::object();
    args.set("op", t.op);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }
  // Resident-warp counter track.
  for (const WarpTraceEntry& w : result.warp_trace) {
    JsonValue e = JsonValue::object();
    e.set("name", "active_warps");
    e.set("ph", "C");
    e.set("ts", w.t_us);
    e.set("pid", 0);
    JsonValue args = JsonValue::object();
    args.set("warps", w.active_warps);
    e.set("args", std::move(args));
    events.push_back(std::move(e));
  }
  JsonValue root = JsonValue::object();
  root.set("traceEvents", std::move(events));
  root.set("displayTimeUnit", "ms");
  return root.dump();
}

namespace {

const char* kGroupColors[] = {"lightblue",  "lightsalmon", "palegreen",
                              "plum",       "khaki",       "lightcyan",
                              "mistyrose",  "lavender"};

}  // namespace

std::string to_dot(const Graph& g, const Schedule* schedule) {
  std::ostringstream out;
  out << "digraph \"" << g.name() << "\" {\n"
      << "  rankdir=TB;\n  node [shape=box, style=filled, "
         "fillcolor=white];\n";

  std::unordered_map<OpId, int> stage_of;
  std::unordered_map<OpId, std::size_t> group_of;
  if (schedule != nullptr) {
    for (std::size_t si = 0; si < schedule->stages.size(); ++si) {
      const Stage& stage = schedule->stages[si];
      for (std::size_t gi = 0; gi < stage.groups.size(); ++gi) {
        for (OpId id : stage.groups[gi].ops) {
          stage_of[id] = static_cast<int>(si);
          group_of[id] = gi;
        }
      }
    }
  }

  auto emit_node = [&](const Op& op) {
    out << "    op" << op.id << " [label=\"" << op.name << "\\n"
        << op_kind_name(op.kind) << " " << op.output.to_string() << "\"";
    if (auto it = group_of.find(op.id); it != group_of.end()) {
      out << ", fillcolor=" << kGroupColors[it->second % 8];
    } else if (op.kind == OpKind::kInput) {
      out << ", fillcolor=gray90, shape=ellipse";
    }
    out << "];\n";
  };

  if (schedule != nullptr) {
    // Cluster by stage.
    for (std::size_t si = 0; si < schedule->stages.size(); ++si) {
      out << "  subgraph cluster_stage" << si << " {\n"
          << "    label=\"stage " << si + 1 << " ["
          << stage_strategy_name(schedule->stages[si].strategy) << "]\";\n";
      for (OpId id : schedule->stages[si].ops()) {
        emit_node(g.op(id));
      }
      out << "  }\n";
    }
    for (const Op& op : g.ops()) {
      if (!stage_of.contains(op.id)) emit_node(op);
    }
  } else {
    for (const Op& op : g.ops()) emit_node(op);
  }

  for (const Op& op : g.ops()) {
    for (OpId in : op.inputs) {
      out << "  op" << in << " -> op" << op.id << ";\n";
    }
  }
  out << "}\n";
  return out.str();
}

}  // namespace ios
