#pragma once
// CanonicalStageCache: cross-request stage-latency reuse.
//
// The CostModel's regular cache keys stages by stage_fingerprint — ordered
// groups of *operator ids* — so two structurally identical stages from
// different models (or different blocks of the same model) never share an
// entry. The canonical cache keys stages by what the simulator actually
// consumes: the numeric content of the expanded kernel streams (flops,
// bytes, warps, efficiency per kernel, stream boundaries) combined with the
// device/kernel-model/protocol environment. A stage's simulated latency is
// a pure function of exactly that, so equal canonical keys imply equal
// latencies — ResNet-50's fully-connected head can answer Inception V3's.
//
// Entries carry the fingerprint of the graph that recorded them, letting
// the cost model count same-model vs cross-model reuse separately. Reuse is
// strictly opt-in (CostModel::enable_canonical_reuse) because hits make
// measurement statistics depend on what the process profiled before.

#include <cstdint>
#include <mutex>
#include <optional>

#include "util/flat_map.hpp"
#include "util/hash.hpp"

namespace ios {

/// Thread-safe (lock-striped) map from canonical stage keys to simulated
/// latencies, shared across cost models and requests. Insert-only: the
/// first value stored for a key wins, which keeps concurrent warm-ups
/// deterministic (every writer computes the same latency for a key).
class CanonicalStageCache {
 public:
  /// A cached latency plus the fingerprint of the graph that recorded it
  /// (0 when installed from a ProfileDb, i.e. by some earlier process).
  struct Entry {
    double latency_us = 0;     ///< simulated latency of the canonical stage
    std::uint64_t origin = 0;  ///< recording graph's fingerprint (0 = db)
  };

  /// Looks up `key`; empty when the stage was never recorded.
  std::optional<Entry> get(std::uint64_t key) const {
    const Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    if (const Entry* hit = shard.map.find(key)) return *hit;
    return std::nullopt;
  }

  /// Records `latency_us` under `key` unless the key is already present
  /// (first writer wins). Returns true when newly inserted.
  bool put(std::uint64_t key, double latency_us, std::uint64_t origin) {
    Shard& shard = shard_for(key);
    std::lock_guard<std::mutex> lock(shard.mu);
    return shard.map.try_emplace(key, Entry{latency_us, origin}).second;
  }

  /// Invokes f(key, const Entry&) for every cached stage, unspecified
  /// order. Takes each stripe lock in turn.
  template <typename F>
  void for_each(F&& f) const {
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      shard.map.for_each(f);
    }
  }

  /// Number of cached stages.
  std::size_t size() const {
    std::size_t n = 0;
    for (const Shard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mu);
      n += shard.map.size();
    }
    return n;
  }

 private:
  static constexpr std::size_t kShards = 16;

  struct Shard {
    mutable std::mutex mu;
    FlatMap64<Entry> map;
  };

  Shard& shard_for(std::uint64_t key) {
    return shards_[shard_index(key, kShards)];
  }
  const Shard& shard_for(std::uint64_t key) const {
    return shards_[shard_index(key, kShards)];
  }

  Shard shards_[kShards];
};

/// The process-wide canonical stage cache every cross-reuse-enabled request
/// shares (the Optimizer facade wires it in when
/// OptimizationRequest::cross_reuse is set).
inline CanonicalStageCache& shared_canonical_stage_cache() {
  static CanonicalStageCache cache;
  return cache;
}

}  // namespace ios
