#pragma once
// ProfileDb: the persistable profiling database. IOS's optimization cost is
// dominated by stage-latency profiling; within one process the CostModel's
// cache already deduplicates measurements, but every new Optimizer (a fresh
// CLI invocation, a cold-started server) used to re-profile stages it had
// measured in a previous life. A ProfileDb is the cache's durable form: a
// JSON document of measured stage latencies keyed by the canonical stage
// fingerprint (stage_fingerprint) and grouped by *profile context* — the
// fingerprint of everything a latency depends on besides the stage itself
// (graph, device spec, kernel-model parameters, profiling protocol). A
// CostModel only imports entries of its own context, so one database file
// can safely accumulate profiles for many models and devices.
//
// On-disk format (version 1):
//   { "format": "ios-profile-db", "version": 1,
//     "contexts": { "<ctx hex16>": { "<stage hex16>": latency_us, ... } } }
// Keys are 16-digit hex strings because JSON numbers (doubles) cannot carry
// 64-bit keys exactly; latencies round-trip exactly through the writer's
// %.17g formatting.

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>

#include "util/hash.hpp"
#include "util/json.hpp"

namespace ios {

class ProfileDb {
 public:
  /// Measured latency by canonical stage fingerprint, one bucket per context.
  using Entries = std::unordered_map<std::uint64_t, double, U64Hasher>;

  ProfileDb() = default;

  /// Parses a profile-db JSON document (throws std::runtime_error on an
  /// unknown format or version).
  static ProfileDb from_json(const JsonValue& doc);

  /// Loads `path`, returning an empty database if the file does not exist
  /// (the first run of a warm-start loop starts from nothing). A file that
  /// exists but is truncated/corrupt (bad JSON, wrong format header, or a
  /// content-checksum mismatch) throws CorruptFileError naming the path;
  /// files saved before checksums were embedded still load.
  static ProfileDb load(const std::string& path);

  /// True if a file exists at `path` (how callers distinguish "empty
  /// database" from "database was deleted").
  static bool exists(const std::string& path);

  JsonValue to_json() const;

  /// Serializes to `path` crash-safely (write_file_atomic: temp + fsync +
  /// rename, with an embedded content checksum). Deterministic: contexts
  /// and entries are emitted in sorted key order.
  void save(const std::string& path) const;

  /// The entry bucket of `ctx`, or nullptr if this database has none.
  const Entries* context(std::uint64_t ctx) const;

  /// The (created-on-demand) mutable bucket of `ctx` — how a CostModel
  /// exports its cache into the database.
  Entries& context_for_update(std::uint64_t ctx);

  std::size_t num_contexts() const { return contexts_.size(); }
  std::size_t num_entries() const;
  bool empty() const { return contexts_.empty(); }

 private:
  /// Ordered by context so to_json() is deterministic.
  std::map<std::uint64_t, Entries> contexts_;
};

}  // namespace ios
