#include "runtime/reference_executor.hpp"

#include <stdexcept>

#include "schedule/merge.hpp"
#include "tensor/kernels.hpp"
#include "util/hash.hpp"

namespace ios {

ReferenceExecutor::ReferenceExecutor(const Graph& g, std::uint64_t seed)
    : graph_(g), weights_(g, seed) {}

std::vector<Tensor> ReferenceExecutor::make_inputs(std::uint64_t seed) const {
  std::vector<Tensor> inputs;
  for (const Op& op : graph_.ops()) {
    if (op.kind != OpKind::kInput) continue;
    Tensor t(op.output);
    t.fill_random(hash_combine(seed, static_cast<std::uint64_t>(op.id)));
    inputs.push_back(std::move(t));
  }
  return inputs;
}

void ReferenceExecutor::bind_inputs(std::span<const Tensor> inputs,
                                    std::vector<Tensor>& vals) const {
  std::size_t next = 0;
  for (const Op& op : graph_.ops()) {
    if (op.kind != OpKind::kInput) continue;
    if (next >= inputs.size()) {
      throw std::invalid_argument("not enough input tensors");
    }
    if (!(inputs[next].desc() == op.output)) {
      throw std::invalid_argument("input tensor shape mismatch for " +
                                  op.name);
    }
    vals[static_cast<std::size_t>(op.id)] = inputs[next++];
  }
  if (next != inputs.size()) {
    throw std::invalid_argument("too many input tensors");
  }
}

Tensor ReferenceExecutor::eval_op(OpId id,
                                  const std::vector<Tensor>& vals) const {
  const Op& op = graph_.op(id);
  auto in = [&](std::size_t i) -> const Tensor& {
    return vals[static_cast<std::size_t>(op.inputs[i])];
  };
  switch (op.kind) {
    case OpKind::kInput:
      throw std::logic_error("eval of input op");
    case OpKind::kConv2d:
      return kernels::conv2d(in(0), weights_.conv_weight(id), op.conv());
    case OpKind::kSepConv: {
      std::vector<const Tensor*> xs;
      xs.reserve(op.inputs.size());
      for (OpId i : op.inputs) {
        xs.push_back(&vals[static_cast<std::size_t>(i)]);
      }
      return kernels::sepconv(xs, weights_.depthwise_weight(id),
                              weights_.pointwise_weight(id), op.sepconv());
    }
    case OpKind::kPool2d:
      return kernels::pool2d(in(0), op.pool());
    case OpKind::kMatmul:
      return kernels::matmul(in(0), weights_.matmul_weight(id), op.matmul());
    case OpKind::kRelu:
      return kernels::relu(in(0));
    case OpKind::kConcat: {
      std::vector<const Tensor*> xs;
      xs.reserve(op.inputs.size());
      for (OpId i : op.inputs) {
        xs.push_back(&vals[static_cast<std::size_t>(i)]);
      }
      return kernels::concat(xs);
    }
    case OpKind::kAdd:
      return kernels::add(in(0), in(1));
    case OpKind::kIdentity:
      return in(0);
    case OpKind::kSplit:
      return kernels::split(in(0), op.split().begin_channel,
                            op.split().end_channel);
  }
  throw std::logic_error("unhandled op kind");
}

std::vector<Tensor> ReferenceExecutor::run_sequential(
    std::span<const Tensor> inputs) const {
  std::vector<Tensor> vals(static_cast<std::size_t>(graph_.num_ops()));
  bind_inputs(inputs, vals);
  for (const Op& op : graph_.ops()) {
    if (!op.schedulable()) continue;
    vals[static_cast<std::size_t>(op.id)] = eval_op(op.id, vals);
  }
  return vals;
}

namespace {

/// Stacks the per-op conv weights into the merged kernel: op i's
/// [out_c, in_c, kh, kw] weight lands at channel_offset[i], spatially
/// centered inside the (KH x KW) merged extent, zero elsewhere.
Tensor stack_merged_weight(const Graph& g, const WeightStore& weights,
                           const MergeInfo& info) {
  const Conv2dAttrs& m = info.merged_attrs;
  const int in_c = g.op(info.shared_input).output.c;
  Tensor merged(TensorDesc{m.out_channels, in_c, m.kh, m.kw});
  for (std::size_t i = 0; i < info.ops.size(); ++i) {
    const OpId id = info.ops[i];
    const Conv2dAttrs& a = g.op(id).conv();
    const Tensor& w = weights.conv_weight(id);
    const auto [dh, dw] = info.spatial_offset[i];
    const int oc_base = info.channel_offset[i];
    for (int oc = 0; oc < a.out_channels; ++oc) {
      for (int ic = 0; ic < in_c; ++ic) {
        for (int kh = 0; kh < a.kh; ++kh) {
          for (int kw = 0; kw < a.kw; ++kw) {
            merged.at(oc_base + oc, ic, dh + kh, dw + kw) =
                w.at(oc, ic, kh, kw);
          }
        }
      }
    }
  }
  return merged;
}

}  // namespace

std::vector<Tensor> ReferenceExecutor::run_schedule(
    const Schedule& q, std::span<const Tensor> inputs) const {
  validate_schedule(graph_, q);
  std::vector<Tensor> vals(static_cast<std::size_t>(graph_.num_ops()));
  bind_inputs(inputs, vals);

  for (const Stage& stage : q.stages) {
    if (stage.strategy == StageStrategy::kMerge) {
      const std::vector<OpId> ops = stage.ops();
      const auto info = analyze_merge(graph_, ops);
      if (!info) throw std::runtime_error("merge stage is not mergeable");
      const Tensor merged_w = stack_merged_weight(graph_, weights_, *info);
      const Tensor merged_out =
          kernels::conv2d(vals[static_cast<std::size_t>(info->shared_input)],
                          merged_w, info->merged_attrs);
      for (std::size_t i = 0; i < info->ops.size(); ++i) {
        const OpId id = info->ops[i];
        const int begin = info->channel_offset[i];
        const int end = begin + graph_.op(id).conv().out_channels;
        vals[static_cast<std::size_t>(id)] =
            kernels::split(merged_out, begin, end);
      }
    } else {
      // Concurrent stage: groups are independent; any group interleaving is
      // valid, so execute group-by-group in stored order.
      for (const Group& grp : stage.groups) {
        for (OpId id : grp.ops) {
          vals[static_cast<std::size_t>(id)] = eval_op(id, vals);
        }
      }
    }
  }
  return vals;
}

}  // namespace ios
