#pragma once
// Visualization exports: kernel timelines in the Chrome trace-event format
// (open in chrome://tracing or Perfetto), and Graphviz DOT renderings of
// computation graphs with their schedule overlaid.

#include <string>

#include "graph/graph.hpp"
#include "schedule/schedule.hpp"
#include "sim/kernel.hpp"

namespace ios {

/// Converts a simulation result into a Chrome trace-event JSON document.
/// Each stream becomes a "thread", each kernel a complete ("X") event.
std::string to_chrome_trace(const SimResult& result);

/// Renders the graph as Graphviz DOT. When `schedule` is non-null, nodes
/// are clustered by stage and colored by group.
std::string to_dot(const Graph& g, const Schedule* schedule = nullptr);

}  // namespace ios
