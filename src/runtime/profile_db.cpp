#include "runtime/profile_db.hpp"

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>
#include <sys/stat.h>

namespace ios {

namespace {

constexpr const char* kFormat = "ios-profile-db";
constexpr int kVersion = 1;

std::string hex16(std::uint64_t v) {
  char buf[17];
  std::snprintf(buf, sizeof(buf), "%016llx", static_cast<unsigned long long>(v));
  return buf;
}

std::uint64_t parse_hex16(const std::string& s) {
  if (s.empty()) throw std::runtime_error("profile-db: empty hex key");
  char* end = nullptr;
  errno = 0;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 16);
  if (errno != 0 || end != s.c_str() + s.size()) {
    throw std::runtime_error("profile-db: bad hex key '" + s + "'");
  }
  return v;
}

}  // namespace

ProfileDb ProfileDb::from_json(const JsonValue& doc) {
  if (!doc.is_object() || !doc.contains("format") ||
      doc.at("format").as_string() != kFormat) {
    throw std::runtime_error("profile-db: not an ios-profile-db document");
  }
  verify_content_checksum(doc, "profile-db");
  if (doc.at("version").as_int() != kVersion) {
    throw std::runtime_error("profile-db: unsupported version " +
                             std::to_string(doc.at("version").as_int()));
  }
  ProfileDb db;
  if (doc.contains("contexts")) {
    for (const auto& [ctx_key, bucket] : doc.at("contexts").as_object()) {
      Entries& entries = db.contexts_[parse_hex16(ctx_key)];
      for (const auto& [stage_key, latency] : bucket.as_object()) {
        entries[parse_hex16(stage_key)] = latency.as_number();
      }
    }
  }
  return db;
}

ProfileDb ProfileDb::load(const std::string& path) {
  if (!exists(path)) return ProfileDb{};
  try {
    return from_json(JsonValue::parse(read_file(path)));
  } catch (const std::exception& e) {
    // One named error type for every corruption mode (truncated JSON,
    // checksum mismatch, wrong format header) so callers can fall back to
    // a cold start without string-matching.
    throw CorruptFileError("profile-db: cannot load '" + path +
                           "': " + e.what());
  }
}

bool ProfileDb::exists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

JsonValue ProfileDb::to_json() const {
  JsonValue contexts = JsonValue::object();
  for (const auto& [ctx, entries] : contexts_) {
    // Sort stage keys so the dump is byte-stable run to run.
    std::map<std::uint64_t, double> sorted(entries.begin(), entries.end());
    JsonValue bucket = JsonValue::object();
    for (const auto& [key, latency] : sorted) {
      bucket.set(hex16(key), latency);
    }
    contexts.set(hex16(ctx), std::move(bucket));
  }
  JsonValue doc = JsonValue::object();
  doc.set("format", kFormat);
  doc.set("version", kVersion);
  doc.set("contexts", std::move(contexts));
  return doc;
}

void ProfileDb::save(const std::string& path) const {
  // fsync + rename + directory fsync: a reader (or a kill -9) mid-save must
  // never observe a truncated document, and the embedded checksum catches
  // any corruption that still parses — a bad warm-start cache degrades to a
  // cold one instead of failing every later run.
  write_file_atomic(path, with_content_checksum(to_json()).dump());
}

const ProfileDb::Entries* ProfileDb::context(std::uint64_t ctx) const {
  const auto it = contexts_.find(ctx);
  return it == contexts_.end() ? nullptr : &it->second;
}

ProfileDb::Entries& ProfileDb::context_for_update(std::uint64_t ctx) {
  return contexts_[ctx];
}

std::size_t ProfileDb::num_entries() const {
  std::size_t n = 0;
  for (const auto& [ctx, entries] : contexts_) n += entries.size();
  return n;
}

}  // namespace ios
