#pragma once
// CostModel: the profiler that Algorithm 1 consults. IOS is a profile-based
// scheduler — GENERATE_STAGE "directly measures the latencies of both
// parallelization strategies on the hardware". Here the hardware is the
// execution simulator; measurements are cached by stage signature, and the
// model keeps account of how much (simulated) device time the profiling
// consumed, which is what the paper reports as optimization cost.

#include <cstdint>
#include <mutex>
#include <span>
#include <unordered_map>

#include "runtime/executor.hpp"

namespace ios {

struct StageChoice {
  double latency_us = 0;
  StageStrategy strategy = StageStrategy::kConcurrent;
};

/// Profiling protocol: warmup runs are discarded, `repeats` runs averaged
/// (the paper averages 5 measurements). `noise_frac` adds multiplicative
/// measurement noise per run (deterministic per seed) — real GPU profiling
/// is noisy, and tests use this to check the DP's robustness.
struct ProfilingProtocol {
  int warmup = 2;
  int repeats = 5;
  double noise_frac = 0.0;
  std::uint64_t noise_seed = 1;
};

class CostModel {
 public:
  CostModel(const Graph& g, ExecConfig cfg, ProfilingProtocol protocol = {});
  CostModel(const Graph& g, ExecConfig cfg, int warmup, int repeats)
      : CostModel(g, std::move(cfg),
                  ProfilingProtocol{warmup, repeats, 0.0, 1}) {}

  const Graph& graph() const { return executor_.graph(); }
  const Executor& executor() const { return executor_; }

  /// Algorithm 1 GENERATE_STAGE: measures "concurrent execution" (groups =
  /// weakly connected components) and, when mergeable, "operator merge";
  /// returns the cheaper strategy and its latency.
  StageChoice generate_stage(std::span<const OpId> ops);

  /// Measured latency of a fully-specified stage (cached). Thread-safe:
  /// concurrent block DPs share one CostModel, so the cache and the
  /// profiling counters are guarded by a mutex while the simulation itself
  /// (a const Executor call) runs unlocked. Results and counters are
  /// deterministic regardless of thread count — the set of distinct stages
  /// measured does not depend on the order threads request them.
  double measure(const Stage& stage);

  /// Number of distinct stage configurations profiled so far.
  std::int64_t num_measurements() const {
    std::lock_guard<std::mutex> lock(mu_);
    return num_measurements_;
  }

  /// Total simulated device time spent profiling, in microseconds. This is
  /// the dominant part of IOS's optimization cost (Figure 9 / Figure 12).
  double profiling_cost_us() const {
    std::lock_guard<std::mutex> lock(mu_);
    return profiling_cost_us_;
  }

  void reset_counters();

 private:
  std::uint64_t stage_key(const Stage& stage) const;

  Executor executor_;
  ProfilingProtocol protocol_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, double> cache_;
  std::int64_t num_measurements_ = 0;
  double profiling_cost_us_ = 0;
};

}  // namespace ios
