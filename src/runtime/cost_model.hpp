#pragma once
// CostModel: the profiler that Algorithm 1 consults. IOS is a profile-based
// scheduler — GENERATE_STAGE "directly measures the latencies of both
// parallelization strategies on the hardware". Here the hardware is the
// execution simulator; measurements are cached by the canonical stage
// fingerprint, and the model keeps account of how much (simulated) device
// time the profiling consumed, which is what the paper reports as
// optimization cost.
//
// Concurrency: the cache is lock-striped — N independently locked shards,
// stage fingerprints distributed by hash — so the wave-parallel DP's worker
// threads (and concurrent block searches) do not convoy on a single mutex.
// The profiling counters are atomics, making the read accessors lock-free.
// Measurements stay deterministic regardless of thread count: the set of
// distinct stages measured does not depend on the order threads request
// them, and each stage's simulated latency is a pure function of the stage.
//
// Persistence: save_profile/load_profile move the cache contents to/from a
// ProfileDb keyed by stage fingerprint under this model's profile_context()
// (graph + device + kernel params + protocol), so a warm-started process
// re-runs zero simulations for stages any previous run already measured.

#include <atomic>
#include <cassert>
#include <cstdint>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "runtime/executor.hpp"
#include "util/flat_map.hpp"

namespace ios {

class ProfileDb;  // runtime/profile_db.hpp — persistence only, not hot-path
class CanonicalStageCache;  // runtime/canonical_cache.hpp — opt-in reuse

struct StageChoice {
  double latency_us = 0;
  StageStrategy strategy = StageStrategy::kConcurrent;
};

/// Profiling protocol: warmup runs are discarded, `repeats` runs averaged
/// (the paper averages 5 measurements). `noise_frac` adds multiplicative
/// measurement noise per run (deterministic per seed) — real GPU profiling
/// is noisy, and tests use this to check the DP's robustness.
struct ProfilingProtocol {
  int warmup = 2;
  int repeats = 5;
  double noise_frac = 0.0;
  std::uint64_t noise_seed = 1;
};

class CostModel {
 public:
  /// Default number of independently locked cache shards. Plenty to keep
  /// collision odds low for the wave DP's worker counts (the ablation bench
  /// compares against a single-shard model to show the convoying effect).
  static constexpr int kDefaultCacheShards = 16;

  CostModel(const Graph& g, ExecConfig cfg, ProfilingProtocol protocol = {},
            int cache_shards = kDefaultCacheShards);
  CostModel(const Graph& g, ExecConfig cfg, int warmup, int repeats)
      : CostModel(g, std::move(cfg),
                  ProfilingProtocol{warmup, repeats, 0.0, 1}) {}

  const Graph& graph() const { return executor_.graph(); }
  const Executor& executor() const { return executor_; }
  const ProfilingProtocol& protocol() const { return protocol_; }

  /// Algorithm 1 GENERATE_STAGE: measures "concurrent execution" (groups =
  /// weakly connected components) and, when mergeable, "operator merge";
  /// returns the cheaper strategy and its latency.
  StageChoice generate_stage(std::span<const OpId> ops);

  /// Measured latency of a fully-specified stage, cached by
  /// stage_fingerprint. Thread-safe: the fingerprint picks one of
  /// num_cache_shards() independently locked shards, and the simulation
  /// itself (a const Executor call) runs unlocked. Two threads racing on the
  /// same uncached stage may both simulate it; the simulation is
  /// deterministic, so both compute the same value and only the winning
  /// insert bumps the counters (keeping them order-independent).
  double measure(const Stage& stage);

  /// Cache probe by a precomputed key: `key` MUST equal
  /// stage_fingerprint(make()), and `make` is invoked only on a cache miss.
  /// This is the scheduler's warm fast path — callers that can derive the
  /// fingerprint directly (the wave engine knows each ending's groups from
  /// enumeration) skip materializing the Stage and its per-group vectors
  /// for every repeat lookup, which is the overwhelmingly common case once
  /// a search is underway. Same caching/counter semantics as measure().
  template <typename MakeStage>
  double measure_keyed(std::uint64_t key, MakeStage&& make) {
    Shard& shard = shard_for(key);
    {
      std::lock_guard<std::mutex> lock(shard.mu);
      if (const double* hit = shard.cache.find(key)) return *hit;
    }
    const Stage stage = make();
    assert(key == stage_fingerprint(stage));
    return measure_slow(key, stage);
  }

  /// Number of distinct stage configurations profiled so far (lock-free).
  /// Stages installed by load_profile are not counted — they cost nothing.
  std::int64_t num_measurements() const {
    return num_measurements_.load(std::memory_order_relaxed);
  }

  /// Total simulated device time spent profiling, in microseconds. This is
  /// the dominant part of IOS's optimization cost (Figure 9 / Figure 12).
  double profiling_cost_us() const {
    return profiling_cost_us_.load(std::memory_order_relaxed);
  }

  void reset_counters();

  /// Independently locked cache shards (ablation knob; see the constructor).
  int num_cache_shards() const { return static_cast<int>(shards_.size()); }

  /// Fingerprint of everything a cached latency depends on besides the stage
  /// itself: the serialized graph, the device spec, the kernel-model
  /// parameters, and the profiling protocol. ProfileDb entries are bucketed
  /// by this value, so loading a database never applies another
  /// model/device's latencies.
  std::uint64_t profile_context() const;

  /// Exports every cached stage latency into `db` under profile_context().
  /// Returns the number of entries written (cache size).
  int save_profile(ProfileDb& db) const;

  /// Installs `db`'s entries for this model's profile_context() into the
  /// cache and returns how many were installed. Entries of other contexts
  /// are ignored; already-cached fingerprints keep their in-memory value.
  /// Loaded entries do not move the profiling counters — subsequent
  /// measure() calls on them are pure cache hits.
  int load_profile(const ProfileDb& db);

  // -- Cross-request canonical reuse (opt-in) ------------------------------

  /// Turns on canonical stage reuse against `cache` (usually
  /// shared_canonical_stage_cache()). On an id-keyed cache miss, measure()
  /// first probes the canonical cache by canonical_stage_key(); a hit is
  /// installed locally without bumping the measurement counters, and every
  /// fresh simulation is published back. Pass nullptr to turn reuse off.
  /// Throws std::invalid_argument when the protocol has measurement noise:
  /// noisy measurements are seeded by the id-keyed fingerprint, so
  /// canonical reuse would change which noise a stage receives (and hence
  /// the schedules found).
  void enable_canonical_reuse(CanonicalStageCache* cache);

  /// Measurements answered by the canonical cache since construction, and
  /// how many of those were recorded by a different graph (or loaded from a
  /// ProfileDb by an earlier process). Lock-free reads.
  std::int64_t canonical_hits() const {
    return canonical_hits_.load(std::memory_order_relaxed);
  }
  std::int64_t cross_model_hits() const {
    return cross_model_hits_.load(std::memory_order_relaxed);
  }

  /// Fingerprint of the measurement environment *without* the graph: device
  /// spec, kernel-model parameters, profiling protocol. Part of every
  /// canonical stage key, so latencies never leak across devices or
  /// protocols.
  std::uint64_t environment_fingerprint() const;

  /// The canonical identity of a stage: environment_fingerprint() combined
  /// with the numeric content of the stage's expanded kernel streams
  /// (per-kernel flops/bytes/warps/efficiency and the stream boundaries —
  /// no operator ids or names). The simulated latency is a pure function of
  /// exactly this, so equal keys imply equal latencies across models,
  /// blocks, and batch sizes.
  std::uint64_t canonical_stage_key(const Stage& stage) const;

  /// Exports the *entire* attached canonical cache into `db` under the
  /// process-independent canonical context; returns entries written. No-op
  /// (0) when reuse is off.
  int save_canonical(ProfileDb& db) const;

  /// Installs `db`'s canonical bucket into the attached cache (origin 0 =
  /// recorded by an earlier process, so hits count as cross-model); returns
  /// entries newly installed. No-op (0) when reuse is off.
  int load_canonical(const ProfileDb& db);

 private:
  struct Shard {
    mutable std::mutex mu;
    FlatMap64<double> cache;
  };

  /// Cache-miss tail shared by measure() and measure_keyed(): canonical
  /// reuse probe, simulation, noise averaging, and the counted insert.
  double measure_slow(std::uint64_t key, const Stage& stage);

  Shard& shard_for(std::uint64_t key) const {
    return *shards_[shard_index(key, shards_.size())];
  }

  Executor executor_;
  ProfilingProtocol protocol_;
  /// unique_ptr because Shard owns a mutex and must not move.
  std::vector<std::unique_ptr<Shard>> shards_;
  std::atomic<std::int64_t> num_measurements_{0};
  std::atomic<double> profiling_cost_us_{0};

  CanonicalStageCache* canonical_ = nullptr;  ///< null = reuse off
  std::uint64_t origin_ = 0;      ///< this graph's fingerprint (reuse on)
  std::uint64_t env_fp_ = 0;      ///< cached environment_fingerprint()
  std::atomic<std::int64_t> canonical_hits_{0};
  std::atomic<std::int64_t> cross_model_hits_{0};
};

}  // namespace ios
