#include "runtime/weights.hpp"

#include <cmath>

#include "util/hash.hpp"

namespace ios {

const Tensor& WeightStore::cached(std::uint64_t key, TensorDesc desc,
                                  double scale) const {
  auto it = cache_.find(key);
  if (it != cache_.end()) return it->second;

  Tensor t(desc);
  t.fill_random(key);
  float* d = t.data();
  for (std::size_t i = 0; i < t.size(); ++i) {
    d[i] = static_cast<float>(d[i] * scale);
  }
  return cache_.emplace(key, std::move(t)).first->second;
}

const Tensor& WeightStore::conv_weight(OpId id) const {
  const Op& op = graph_.op(id);
  const Conv2dAttrs& a = op.conv();
  const int in_c = graph_.op(op.inputs[0]).output.c;
  const double scale = 1.0 / std::sqrt(static_cast<double>(in_c) * a.kh * a.kw);
  return cached(hash_combine(seed_, static_cast<std::uint64_t>(id) * 4 + 0),
                TensorDesc{a.out_channels, in_c, a.kh, a.kw}, scale);
}

const Tensor& WeightStore::depthwise_weight(OpId id) const {
  const Op& op = graph_.op(id);
  const SepConvAttrs& a = op.sepconv();
  const int in_c = graph_.op(op.inputs[0]).output.c;
  const double scale = 1.0 / std::sqrt(static_cast<double>(a.k) * a.k);
  return cached(hash_combine(seed_, static_cast<std::uint64_t>(id) * 4 + 1),
                TensorDesc{in_c, 1, a.k, a.k}, scale);
}

const Tensor& WeightStore::pointwise_weight(OpId id) const {
  const Op& op = graph_.op(id);
  const SepConvAttrs& a = op.sepconv();
  const int in_c = graph_.op(op.inputs[0]).output.c;
  const double scale = 1.0 / std::sqrt(static_cast<double>(in_c));
  return cached(hash_combine(seed_, static_cast<std::uint64_t>(id) * 4 + 2),
                TensorDesc{a.out_channels, in_c, 1, 1}, scale);
}

const Tensor& WeightStore::matmul_weight(OpId id) const {
  const Op& op = graph_.op(id);
  const MatmulAttrs& a = op.matmul();
  const TensorDesc& in = graph_.op(op.inputs[0]).output;
  const int in_features = in.c * in.h * in.w;
  const double scale = 1.0 / std::sqrt(static_cast<double>(in_features));
  return cached(hash_combine(seed_, static_cast<std::uint64_t>(id) * 4 + 3),
                TensorDesc{a.out_features, in_features, 1, 1}, scale);
}

}  // namespace ios
