#pragma once
// WeightStore: deterministic pseudo-random parameters for every parametric
// operator of a graph, generated lazily from (seed, op id). Weights are
// scaled by 1/sqrt(fan_in) so deep stacks keep activations in a numerically
// comfortable range.

#include <cstdint>
#include <unordered_map>

#include "graph/graph.hpp"
#include "tensor/tensor.hpp"

namespace ios {

class WeightStore {
 public:
  WeightStore(const Graph& g, std::uint64_t seed) : graph_(g), seed_(seed) {}

  /// Dense conv weight [out_c, in_c, kh, kw].
  const Tensor& conv_weight(OpId id) const;

  /// Depthwise weight [c, 1, k, k] of a SepConv unit.
  const Tensor& depthwise_weight(OpId id) const;

  /// Pointwise weight [out_c, c, 1, 1] of a SepConv unit.
  const Tensor& pointwise_weight(OpId id) const;

  /// FC weight [out_features, in_features] (stored as [out, in, 1, 1]).
  const Tensor& matmul_weight(OpId id) const;

 private:
  const Tensor& cached(std::uint64_t key, TensorDesc desc, double scale) const;

  const Graph& graph_;
  std::uint64_t seed_;
  mutable std::unordered_map<std::uint64_t, Tensor> cache_;
};

}  // namespace ios
