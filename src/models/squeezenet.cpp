#include "models/models.hpp"

namespace ios::models {

namespace {

Conv2dAttrs conv(int out_c, int k, int stride = 1) {
  return Conv2dAttrs{.out_channels = out_c, .kh = k, .kw = k, .sh = stride,
                     .sw = stride, .ph = (k - 1) / 2, .pw = (k - 1) / 2,
                     .post_relu = true};
}

/// Fire module: squeeze 1x1 -> {expand 1x1, expand 3x3} -> concat.
/// With `bypass`, the module input is added to the concat (SqueezeNet's
/// simple-bypass variant; requires matching channel counts).
OpId fire(Graph& g, OpId x, int squeeze_c, int expand_c, bool bypass,
          const std::string& tag) {
  g.begin_block();
  const OpId s = g.conv2d(x, conv(squeeze_c, 1), tag + "_squeeze");
  const OpId e1 = g.conv2d(s, conv(expand_c, 1), tag + "_expand1x1");
  const OpId e3 = g.conv2d(s, conv(expand_c, 3), tag + "_expand3x3");
  const OpId outs[] = {e1, e3};
  OpId out = g.concat(outs, tag + "_concat");
  if (bypass) out = g.add(out, x, tag + "_bypass");
  return out;
}

Pool2dAttrs max_pool_3x3_s2() {
  return Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 0, 0};
}

}  // namespace

Graph squeezenet(int batch) {
  Graph g(batch, "SqueezeNet");
  const OpId in = g.input(3, 224, 224, "image");

  g.begin_block();
  OpId x = g.conv2d(in,
                    Conv2dAttrs{.out_channels = 64, .kh = 3, .kw = 3, .sh = 2,
                                .sw = 2, .ph = 0, .pw = 0, .post_relu = true},
                    "conv1");
  x = g.pool2d(x, max_pool_3x3_s2(), "pool1");

  x = fire(g, x, 16, 64, false, "fire2");
  x = fire(g, x, 16, 64, true, "fire3");
  x = g.pool2d(x, max_pool_3x3_s2(), "pool3");
  x = fire(g, x, 32, 128, false, "fire4");
  x = fire(g, x, 32, 128, true, "fire5");
  x = g.pool2d(x, max_pool_3x3_s2(), "pool5");
  x = fire(g, x, 48, 192, false, "fire6");
  x = fire(g, x, 48, 192, true, "fire7");
  x = fire(g, x, 64, 256, false, "fire8");
  x = fire(g, x, 64, 256, true, "fire9");

  g.begin_block();
  x = g.conv2d(x, conv(1000, 1), "conv10");
  g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
           "gap");

  g.validate();
  return g;
}

}  // namespace ios::models
