#pragma once
// Model zoo: the four CNNs benchmarked in the paper (Table 2) plus the
// auxiliary networks used in its discussion sections, and the small didactic
// graphs from Figures 2, 3, 5, and 13. All builders take the batch size;
// stochastic builders (RandWire) additionally take a seed.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/graph.hpp"

namespace ios::models {

/// Inception V3 (Szegedy et al. 2016): 299x299 input; stem, 3x Inception-A,
/// Reduction-A, 4x Inception-B, Reduction-B, 2x Inception-E, classifier.
/// Largest block is an Inception-E block: n = 11 operators, width d = 6
/// (paper Table 1).
Graph inception_v3(int batch);

/// RandWire (Xie et al. 2019), Watts-Strogatz WS(32, 4, 0.75) regime with
/// three random stages. Each stage block has n = 33 schedule units (32
/// Relu-SepConv nodes + output concat). The default seed is chosen so the
/// largest stage width matches the paper's d = 8.
inline constexpr std::uint64_t kRandwireDefaultSeed = 0;
Graph randwire(int batch, std::uint64_t seed = kRandwireDefaultSeed);

/// NASNet-A (Zoph et al. 2018): stem + 12 cells in three resolution groups.
/// Each cell is one block with n = 18 schedule units and width d = 8.
Graph nasnet_a(int batch);

/// SqueezeNet v1.1 with simple bypass (Iandola et al. 2016): stem, 8 fire
/// modules, classifier.
Graph squeezenet(int batch);

/// ResNet-34: almost purely sequential; used for the Section 5 observation
/// that IOS only gains 2-5% on ResNets (downsample branch only).
Graph resnet34(int batch);

/// ResNet-50 (bottleneck blocks), same purpose as resnet34.
Graph resnet50(int batch);

/// VGG-16: the single-branch 2013-era network of Figure 1's trend line.
Graph vgg16(int batch);

/// MobileNetV2 (Sandler et al. 2018): inverted-residual blocks; one of the
/// "lightweight design" networks the paper's background section names as
/// unable to utilize big accelerators.
Graph mobilenet_v2(int batch);

/// ShuffleNetV2: channel-split units (exercises the Split operator in a
/// real network), the other lightweight design from the background section.
Graph shufflenet_v2(int batch);

/// GoogLeNet / Inception V1 (Szegedy et al. 2015): nine 4-branch inception
/// modules; the earliest multi-branch network the paper cites.
Graph googlenet(int batch);

/// The motivating example of Figure 2: convolution [a] feeding [b], with
/// [c] and [d] parallel, concatenated to 1920 channels.
Graph fig2_graph(int batch);

/// The example of Figure 3: conv a, b (mergeable, same input), then
/// conv c -> conv d concurrent with matmul e.
Graph fig3_graph(int batch);

/// The 3-operator graph of Figure 5 (a -> b, c independent).
Graph fig5_graph(int batch);

/// The complexity-tightness example of Figure 13 / Appendix A: d
/// independent chains of c operators each, in one block.
Graph fig13_chains(int batch, int chain_length, int num_chains);

// ---- model registry --------------------------------------------------------
// The central name → builder table shared by the CLI, the ios::Optimizer
// facade, examples, benches, and tests. Stochastic builders are registered
// with their default seed; extra-parameter builders (fig13_chains) are not
// registered.

using ModelBuilder = Graph (*)(int batch);

/// All registered builders, keyed by name, sorted (std::map order).
const std::map<std::string, ModelBuilder>& registry();

/// The registered names, sorted.
std::vector<std::string> model_names();

bool has_model(const std::string& name);

/// Builds a registered model at the given batch size. Throws
/// std::invalid_argument enumerating model_names() when `name` is unknown.
Graph build_model(const std::string& name, int batch);

}  // namespace ios::models
