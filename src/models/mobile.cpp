// Lightweight mobile networks from the paper's background section, plus the
// original GoogLeNet. These extend the model zoo beyond the four evaluation
// networks: MobileNetV2 and ShuffleNetV2 demonstrate the paper's point that
// lightweight designs leave big accelerators idle; GoogLeNet is the earliest
// multi-branch CNN the paper cites.

#include "models/models.hpp"

namespace ios::models {

namespace {

Conv2dAttrs conv(int out_c, int k, int stride = 1) {
  return Conv2dAttrs{.out_channels = out_c, .kh = k, .kw = k, .sh = stride,
                     .sw = stride, .ph = (k - 1) / 2, .pw = (k - 1) / 2,
                     .post_relu = true};
}

/// MobileNetV2 inverted residual: 1x1 expansion (ratio t), depthwise 3x3 +
/// 1x1 projection (one SepConv unit), and a residual add when the block
/// keeps its shape.
OpId inverted_residual(Graph& g, OpId x, int out_c, int stride, int expand,
                       const std::string& tag) {
  g.begin_block();
  const int in_c = g.op(x).output.c;
  OpId h = x;
  if (expand != 1) {
    h = g.conv2d(h, conv(in_c * expand, 1), tag + "_expand");
  }
  h = g.sepconv(h,
                SepConvAttrs{.out_channels = out_c, .k = 3, .sh = stride,
                             .sw = stride, .ph = 1, .pw = 1,
                             .pre_relu = false},
                tag + "_dwproj");
  if (stride == 1 && in_c == out_c) {
    h = g.add(h, x, tag + "_res");
  }
  return h;
}

}  // namespace

Graph mobilenet_v2(int batch) {
  Graph g(batch, "MobileNetV2");
  const OpId in = g.input(3, 224, 224, "image");
  g.begin_block();
  OpId x = g.conv2d(in, conv(32, 3, 2), "stem");

  struct StageCfg {
    int t, c, n, s;
  };
  const StageCfg cfg[] = {{1, 16, 1, 1},  {6, 24, 2, 2},  {6, 32, 3, 2},
                          {6, 64, 4, 2},  {6, 96, 3, 1},  {6, 160, 3, 2},
                          {6, 320, 1, 1}};
  int block = 0;
  for (const StageCfg& s : cfg) {
    for (int i = 0; i < s.n; ++i) {
      x = inverted_residual(g, x, s.c, i == 0 ? s.s : 1, s.t,
                            "ir" + std::to_string(block++));
    }
  }

  g.begin_block();
  x = g.conv2d(x, conv(1280, 1), "head_conv");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
               "gap");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");
  g.validate();
  return g;
}

namespace {

/// ShuffleNetV2 basic unit: channel split; the right half runs
/// 1x1 -> depthwise+1x1 (SepConv); the halves concat back. The channel
/// shuffle is a layout permutation with no FLOPs — modeled as an identity
/// schedule unit (it is still a kernel launch at runtime).
OpId shuffle_unit(Graph& g, OpId x, const std::string& tag) {
  g.begin_block();
  const int c = g.op(x).output.c;
  const int half = c / 2;
  const OpId left = g.split(x, 0, half, tag + "_split_l");
  const OpId right_in = g.split(x, half, c, tag + "_split_r");
  OpId right = g.conv2d(right_in, conv(half, 1), tag + "_pw1");
  right = g.sepconv(right,
                    SepConvAttrs{.out_channels = half, .k = 3, .sh = 1,
                                 .sw = 1, .ph = 1, .pw = 1, .pre_relu = false},
                    tag + "_dw");
  const OpId parts[] = {left, right};
  const OpId cat = g.concat(parts, tag + "_concat");
  return g.identity(cat, tag + "_shuffle");
}

/// Downsampling unit: both branches stride-2, doubling channels.
OpId shuffle_down_unit(Graph& g, OpId x, int out_c, const std::string& tag) {
  g.begin_block();
  const int half = out_c / 2;
  const OpId left = g.sepconv(
      x, SepConvAttrs{.out_channels = half, .k = 3, .sh = 2, .sw = 2, .ph = 1,
                      .pw = 1, .pre_relu = false},
      tag + "_l_dw");
  OpId right = g.conv2d(x, conv(half, 1), tag + "_r_pw1");
  right = g.sepconv(right,
                    SepConvAttrs{.out_channels = half, .k = 3, .sh = 2,
                                 .sw = 2, .ph = 1, .pw = 1, .pre_relu = false},
                    tag + "_r_dw");
  const OpId parts[] = {left, right};
  const OpId cat = g.concat(parts, tag + "_concat");
  return g.identity(cat, tag + "_shuffle");
}

}  // namespace

Graph shufflenet_v2(int batch) {
  Graph g(batch, "ShuffleNetV2");
  const OpId in = g.input(3, 224, 224, "image");
  g.begin_block();
  OpId x = g.conv2d(in, conv(24, 3, 2), "stem_conv");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 1, 1},
               "stem_pool");

  const int stage_channels[] = {116, 232, 464};
  const int stage_repeats[] = {4, 8, 4};
  int unit = 0;
  for (int stage = 0; stage < 3; ++stage) {
    x = shuffle_down_unit(g, x, stage_channels[stage],
                          "u" + std::to_string(unit++));
    for (int i = 1; i < stage_repeats[stage]; ++i) {
      x = shuffle_unit(g, x, "u" + std::to_string(unit++));
    }
  }

  g.begin_block();
  x = g.conv2d(x, conv(1024, 1), "head_conv");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
               "gap");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");
  g.validate();
  return g;
}

namespace {

/// GoogLeNet inception module: 1x1 / 1x1->3x3 / 1x1->5x5 / pool->1x1.
OpId googlenet_module(Graph& g, OpId x, int c1, int c3r, int c3, int c5r,
                      int c5, int pool_proj, const std::string& tag) {
  g.begin_block();
  const OpId b0 = g.conv2d(x, conv(c1, 1), tag + "_1x1");
  const OpId b1a = g.conv2d(x, conv(c3r, 1), tag + "_3x3r");
  const OpId b1b = g.conv2d(b1a, conv(c3, 3), tag + "_3x3");
  const OpId b2a = g.conv2d(x, conv(c5r, 1), tag + "_5x5r");
  const OpId b2b = g.conv2d(b2a, conv(c5, 5), tag + "_5x5");
  const OpId b3a = g.pool2d(
      x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 1, 1, 1, 1},
      tag + "_pool");
  const OpId b3b = g.conv2d(b3a, conv(pool_proj, 1), tag + "_proj");
  const OpId outs[] = {b0, b1b, b2b, b3b};
  return g.concat(outs, tag + "_concat");
}

}  // namespace

Graph googlenet(int batch) {
  Graph g(batch, "GoogLeNet");
  const OpId in = g.input(3, 224, 224, "image");
  g.begin_block();
  OpId x = g.conv2d(in,
                    Conv2dAttrs{.out_channels = 64, .kh = 7, .kw = 7, .sh = 2,
                                .sw = 2, .ph = 3, .pw = 3, .post_relu = true},
                    "stem_conv1");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 1, 1},
               "stem_pool1");
  x = g.conv2d(x, conv(64, 1), "stem_conv2");
  x = g.conv2d(x, conv(192, 3), "stem_conv3");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 1, 1},
               "stem_pool2");

  x = googlenet_module(g, x, 64, 96, 128, 16, 32, 32, "i3a");
  x = googlenet_module(g, x, 128, 128, 192, 32, 96, 64, "i3b");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 1, 1},
               "pool3");
  x = googlenet_module(g, x, 192, 96, 208, 16, 48, 64, "i4a");
  x = googlenet_module(g, x, 160, 112, 224, 24, 64, 64, "i4b");
  x = googlenet_module(g, x, 128, 128, 256, 24, 64, 64, "i4c");
  x = googlenet_module(g, x, 112, 144, 288, 32, 64, 64, "i4d");
  x = googlenet_module(g, x, 256, 160, 320, 32, 128, 128, "i4e");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 1, 1},
               "pool4");
  x = googlenet_module(g, x, 256, 160, 320, 32, 128, 128, "i5a");
  x = googlenet_module(g, x, 384, 192, 384, 48, 128, 128, "i5b");

  g.begin_block();
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
               "gap");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");
  g.validate();
  return g;
}

}  // namespace ios::models
