#include "models/models.hpp"

namespace ios::models {

namespace {

// Branch channel configurations follow the torchvision Inception V3.

Conv2dAttrs conv(int out_c, int kh, int kw, int stride = 1, int ph = -1,
                 int pw = -1) {
  // Default "same" padding for odd kernels when stride is 1.
  if (ph < 0) ph = (kh - 1) / 2;
  if (pw < 0) pw = (kw - 1) / 2;
  return Conv2dAttrs{.out_channels = out_c,
                     .kh = kh,
                     .kw = kw,
                     .sh = stride,
                     .sw = stride,
                     .ph = ph,
                     .pw = pw,
                     .post_relu = true};
}

Pool2dAttrs avg_pool_3x3_s1() {
  return Pool2dAttrs{Pool2dAttrs::Kind::kAvg, 3, 3, 1, 1, 1, 1};
}

Pool2dAttrs max_pool_3x3_s2() {
  return Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 0, 0};
}

OpId inception_a(Graph& g, OpId x, int pool_proj, const std::string& tag) {
  g.begin_block();
  const OpId b0 = g.conv2d(x, conv(64, 1, 1), tag + "_b0_1x1");
  const OpId b1a = g.conv2d(x, conv(48, 1, 1), tag + "_b1_1x1");
  const OpId b1b = g.conv2d(b1a, conv(64, 5, 5), tag + "_b1_5x5");
  const OpId b2a = g.conv2d(x, conv(64, 1, 1), tag + "_b2_1x1");
  const OpId b2b = g.conv2d(b2a, conv(96, 3, 3), tag + "_b2_3x3a");
  const OpId b2c = g.conv2d(b2b, conv(96, 3, 3), tag + "_b2_3x3b");
  const OpId b3a = g.pool2d(x, avg_pool_3x3_s1(), tag + "_b3_pool");
  const OpId b3b = g.conv2d(b3a, conv(pool_proj, 1, 1), tag + "_b3_1x1");
  const OpId outs[] = {b0, b1b, b2c, b3b};
  return g.concat(outs, tag + "_concat");
}

OpId reduction_a(Graph& g, OpId x, const std::string& tag) {
  g.begin_block();
  const OpId b0 = g.conv2d(x, conv(384, 3, 3, 2, 0, 0), tag + "_b0_3x3s2");
  const OpId b1a = g.conv2d(x, conv(64, 1, 1), tag + "_b1_1x1");
  const OpId b1b = g.conv2d(b1a, conv(96, 3, 3), tag + "_b1_3x3");
  const OpId b1c = g.conv2d(b1b, conv(96, 3, 3, 2, 0, 0), tag + "_b1_3x3s2");
  const OpId b2 = g.pool2d(x, max_pool_3x3_s2(), tag + "_pool");
  const OpId outs[] = {b0, b1c, b2};
  return g.concat(outs, tag + "_concat");
}

OpId inception_b(Graph& g, OpId x, int c7, const std::string& tag) {
  g.begin_block();
  const OpId b0 = g.conv2d(x, conv(192, 1, 1), tag + "_b0_1x1");
  const OpId b1a = g.conv2d(x, conv(c7, 1, 1), tag + "_b1_1x1");
  const OpId b1b = g.conv2d(b1a, conv(c7, 1, 7), tag + "_b1_1x7");
  const OpId b1c = g.conv2d(b1b, conv(192, 7, 1), tag + "_b1_7x1");
  const OpId b2a = g.conv2d(x, conv(c7, 1, 1), tag + "_b2_1x1");
  const OpId b2b = g.conv2d(b2a, conv(c7, 7, 1), tag + "_b2_7x1a");
  const OpId b2c = g.conv2d(b2b, conv(c7, 1, 7), tag + "_b2_1x7a");
  const OpId b2d = g.conv2d(b2c, conv(c7, 7, 1), tag + "_b2_7x1b");
  const OpId b2e = g.conv2d(b2d, conv(192, 1, 7), tag + "_b2_1x7b");
  const OpId b3a = g.pool2d(x, avg_pool_3x3_s1(), tag + "_b3_pool");
  const OpId b3b = g.conv2d(b3a, conv(192, 1, 1), tag + "_b3_1x1");
  const OpId outs[] = {b0, b1c, b2e, b3b};
  return g.concat(outs, tag + "_concat");
}

OpId reduction_b(Graph& g, OpId x, const std::string& tag) {
  g.begin_block();
  const OpId b0a = g.conv2d(x, conv(192, 1, 1), tag + "_b0_1x1");
  const OpId b0b = g.conv2d(b0a, conv(320, 3, 3, 2, 0, 0), tag + "_b0_3x3s2");
  const OpId b1a = g.conv2d(x, conv(192, 1, 1), tag + "_b1_1x1");
  const OpId b1b = g.conv2d(b1a, conv(192, 1, 7), tag + "_b1_1x7");
  const OpId b1c = g.conv2d(b1b, conv(192, 7, 1), tag + "_b1_7x1");
  const OpId b1d = g.conv2d(b1c, conv(192, 3, 3, 2, 0, 0), tag + "_b1_3x3s2");
  const OpId b2 = g.pool2d(x, max_pool_3x3_s2(), tag + "_pool");
  const OpId outs[] = {b0b, b1d, b2};
  return g.concat(outs, tag + "_concat");
}

// Inception-E: the network's widest block — n = 11 schedule units with
// width d = 6 — and the subject of the paper's Figure 10 schedule study.
OpId inception_e(Graph& g, OpId x, const std::string& tag) {
  g.begin_block();
  const OpId b0 = g.conv2d(x, conv(320, 1, 1), tag + "_b0_1x1");
  const OpId b1a = g.conv2d(x, conv(384, 1, 1), tag + "_b1_1x1");
  const OpId b1b = g.conv2d(b1a, conv(384, 1, 3), tag + "_b1_1x3");
  const OpId b1c = g.conv2d(b1a, conv(384, 3, 1), tag + "_b1_3x1");
  const OpId b2a = g.conv2d(x, conv(448, 1, 1), tag + "_b2_1x1");
  const OpId b2b = g.conv2d(b2a, conv(384, 3, 3), tag + "_b2_3x3");
  const OpId b2c = g.conv2d(b2b, conv(384, 1, 3), tag + "_b2_1x3");
  const OpId b2d = g.conv2d(b2b, conv(384, 3, 1), tag + "_b2_3x1");
  const OpId b3a = g.pool2d(x, avg_pool_3x3_s1(), tag + "_b3_pool");
  const OpId b3b = g.conv2d(b3a, conv(192, 1, 1), tag + "_b3_1x1");
  const OpId outs[] = {b0, b1b, b1c, b2c, b2d, b3b};
  return g.concat(outs, tag + "_concat");
}

}  // namespace

Graph inception_v3(int batch) {
  Graph g(batch, "InceptionV3");
  const OpId in = g.input(3, 299, 299, "image");

  // Stem.
  g.begin_block();
  OpId x = g.conv2d(in, conv(32, 3, 3, 2, 0, 0), "stem_conv1");
  x = g.conv2d(x, conv(32, 3, 3, 1, 0, 0), "stem_conv2");
  x = g.conv2d(x, conv(64, 3, 3), "stem_conv3");
  x = g.pool2d(x, max_pool_3x3_s2(), "stem_pool1");
  x = g.conv2d(x, conv(80, 1, 1), "stem_conv4");
  x = g.conv2d(x, conv(192, 3, 3, 1, 0, 0), "stem_conv5");
  x = g.pool2d(x, max_pool_3x3_s2(), "stem_pool2");

  x = inception_a(g, x, 32, "mixed1");
  x = inception_a(g, x, 64, "mixed2");
  x = inception_a(g, x, 64, "mixed3");
  x = reduction_a(g, x, "mixed4");
  x = inception_b(g, x, 128, "mixed5");
  x = inception_b(g, x, 160, "mixed6");
  x = inception_b(g, x, 160, "mixed7");
  x = inception_b(g, x, 192, "mixed8");
  x = reduction_b(g, x, "mixed9");
  x = inception_e(g, x, "mixed10");
  x = inception_e(g, x, "mixed11");

  // Classifier.
  g.begin_block();
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
               "gap");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");

  g.validate();
  return g;
}

Graph fig2_graph(int batch) {
  Graph g(batch, "Fig2");
  const OpId in = g.input(384, 15, 15, "input");
  g.begin_block();
  const OpId a = g.conv2d(in, conv(384, 3, 3), "conv_a");
  const OpId b = g.conv2d(a, conv(768, 3, 3), "conv_b");
  const OpId c = g.conv2d(in, conv(384, 3, 3), "conv_c");
  const OpId d = g.conv2d(in, conv(768, 3, 3), "conv_d");
  const OpId outs[] = {b, c, d};
  g.concat(outs, "concat");
  g.validate();
  return g;
}

Graph fig3_graph(int batch) {
  Graph g(batch, "Fig3");
  const OpId in = g.input(64, 16, 16, "input");
  g.begin_block();
  const OpId a = g.conv2d(in, conv(128, 3, 3), "conv_a");
  const OpId b = g.conv2d(in, conv(256, 3, 3), "conv_b");
  const OpId c = g.conv2d(a, conv(64, 3, 3), "conv_c");
  const OpId d = g.conv2d(c, conv(64, 3, 3), "conv_d");
  const OpId e = g.matmul(b, MatmulAttrs{.out_features = 256}, "matmul_e");
  (void)d;
  (void)e;
  g.validate();
  return g;
}

Graph fig5_graph(int batch) {
  Graph g(batch, "Fig5");
  const OpId in = g.input(64, 14, 14, "input");
  g.begin_block();
  const OpId a = g.conv2d(in, conv(128, 3, 3), "a");
  g.conv2d(a, conv(128, 3, 3), "b");
  g.conv2d(in, conv(64, 3, 3), "c");
  g.validate();
  return g;
}

Graph fig13_chains(int batch, int chain_length, int num_chains) {
  Graph g(batch, "Fig13");
  const OpId in = g.input(32, 8, 8, "input");
  g.begin_block();
  std::vector<OpId> tails;
  for (int chain = 0; chain < num_chains; ++chain) {
    OpId x = in;
    for (int i = 0; i < chain_length; ++i) {
      x = g.conv2d(x, conv(32, 3, 3),
                   "chain" + std::to_string(chain) + "_op" + std::to_string(i));
    }
    tails.push_back(x);
  }
  // The concat joining the chains lives in its own block so the analyzed
  // block is exactly the d independent chains of Appendix A.
  g.begin_block();
  g.concat(tails, "out");
  g.validate();
  return g;
}

}  // namespace ios::models
