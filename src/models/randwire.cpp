#include "models/models.hpp"

#include <algorithm>

#include "util/rng.hpp"

namespace ios::models {

namespace {

/// Watts-Strogatz small-world graph WS(n, k, p) converted to a DAG by
/// directing every edge from the lower-numbered node to the higher-numbered
/// one (the RandWire paper's construction). Returns adjacency: preds[i] =
/// sorted predecessors of node i.
std::vector<std::vector<int>> watts_strogatz_dag(int n, int k, double p,
                                                 Rng& rng) {
  // Ring lattice: each node connects to its k nearest neighbours (k/2 on
  // each side), then each edge's far endpoint is rewired with probability p.
  std::vector<std::pair<int, int>> edges;
  for (int i = 0; i < n; ++i) {
    for (int j = 1; j <= k / 2; ++j) {
      edges.emplace_back(i, (i + j) % n);
    }
  }
  for (auto& [u, v] : edges) {
    if (rng.bernoulli(p)) {
      // Rewire v to a uniformly random node distinct from u and not
      // duplicating an existing edge from u (retry a few times).
      for (int attempt = 0; attempt < 16; ++attempt) {
        const int w = rng.uniform_int(n);
        if (w == u || w == v) continue;
        bool duplicate = false;
        for (const auto& [a, b] : edges) {
          if ((a == u && b == w) || (a == w && b == u)) {
            duplicate = true;
            break;
          }
        }
        if (!duplicate) {
          v = w;
          break;
        }
      }
    }
  }

  std::vector<std::vector<int>> preds(static_cast<std::size_t>(n));
  for (const auto& [u, v] : edges) {
    const int lo = std::min(u, v);
    const int hi = std::max(u, v);
    if (lo == hi) continue;
    auto& pl = preds[static_cast<std::size_t>(hi)];
    if (std::find(pl.begin(), pl.end(), lo) == pl.end()) pl.push_back(lo);
  }
  for (auto& pl : preds) std::sort(pl.begin(), pl.end());
  return preds;
}

/// One RandWire stage: 32 Relu-SepConv nodes wired by the WS DAG, entry
/// nodes reading the stage input with stride 2, plus an output concat of the
/// sink nodes — 33 schedule units in one block (paper Table 1: n = 33).
OpId randwire_stage(Graph& g, OpId x, int channels, int stage_index,
                    Rng& rng) {
  constexpr int kNodes = 32;
  const auto preds = watts_strogatz_dag(kNodes, 4, 0.75, rng);

  g.begin_block();
  const std::string tag = "stage" + std::to_string(stage_index);
  std::vector<OpId> node_op(kNodes, kInvalidOp);
  std::vector<char> has_succ(kNodes, 0);
  for (int i = 0; i < kNodes; ++i) {
    for (int p : preds[static_cast<std::size_t>(i)]) has_succ[static_cast<std::size_t>(p)] = 1;
  }

  for (int i = 0; i < kNodes; ++i) {
    const std::string name = tag + "_node" + std::to_string(i);
    if (preds[static_cast<std::size_t>(i)].empty()) {
      // Entry node: consumes the stage input at stride 2.
      node_op[static_cast<std::size_t>(i)] = g.sepconv(
          x, SepConvAttrs{.out_channels = channels, .k = 3, .sh = 2, .sw = 2,
                          .ph = 1, .pw = 1, .pre_relu = true},
          name);
    } else {
      std::vector<OpId> ins;
      for (int p : preds[static_cast<std::size_t>(i)]) {
        ins.push_back(node_op[static_cast<std::size_t>(p)]);
      }
      node_op[static_cast<std::size_t>(i)] = g.sepconv(
          ins, SepConvAttrs{.out_channels = channels, .k = 3, .sh = 1, .sw = 1,
                            .ph = 1, .pw = 1, .pre_relu = true},
          name);
    }
  }

  std::vector<OpId> sinks;
  for (int i = 0; i < kNodes; ++i) {
    if (!has_succ[static_cast<std::size_t>(i)]) {
      sinks.push_back(node_op[static_cast<std::size_t>(i)]);
    }
  }
  return g.concat(sinks, tag + "_out");
}

}  // namespace

Graph randwire(int batch, std::uint64_t seed) {
  Graph g(batch, "RandWire");
  Rng rng(seed);
  const OpId in = g.input(3, 224, 224, "image");

  // Stem: conv s2 -> conv s2, reaching 56x56.
  g.begin_block();
  OpId x = g.conv2d(in,
                    Conv2dAttrs{.out_channels = 32, .kh = 3, .kw = 3, .sh = 2,
                                .sw = 2, .ph = 1, .pw = 1, .post_relu = true},
                    "stem_conv1");
  x = g.conv2d(x,
               Conv2dAttrs{.out_channels = 64, .kh = 3, .kw = 3, .sh = 2,
                           .sw = 2, .ph = 1, .pw = 1, .post_relu = true},
               "stem_conv2");

  x = randwire_stage(g, x, 64, 1, rng);    // 28x28
  x = randwire_stage(g, x, 128, 2, rng);   // 14x14
  x = randwire_stage(g, x, 256, 3, rng);   // 7x7

  // Classifier.
  g.begin_block();
  x = g.conv2d(x,
               Conv2dAttrs{.out_channels = 1280, .kh = 1, .kw = 1,
                           .post_relu = true},
               "head_conv");
  x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
               "gap");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");

  g.validate();
  return g;
}

}  // namespace ios::models
