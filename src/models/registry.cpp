#include "models/models.hpp"

#include <stdexcept>

#include "util/names.hpp"

namespace ios::models {

const std::map<std::string, ModelBuilder>& registry() {
  static const std::map<std::string, ModelBuilder> table = {
      {"inception_v3", [](int b) { return inception_v3(b); }},
      {"randwire", [](int b) { return randwire(b); }},
      {"nasnet", [](int b) { return nasnet_a(b); }},
      {"squeezenet", [](int b) { return squeezenet(b); }},
      {"resnet34", [](int b) { return resnet34(b); }},
      {"resnet50", [](int b) { return resnet50(b); }},
      {"vgg16", [](int b) { return vgg16(b); }},
      {"mobilenet_v2", [](int b) { return mobilenet_v2(b); }},
      {"shufflenet_v2", [](int b) { return shufflenet_v2(b); }},
      {"googlenet", [](int b) { return googlenet(b); }},
      // Didactic graphs, so `ios_opt inspect`/`optimize` can reproduce the
      // paper's figure examples by name.
      {"fig2", [](int b) { return fig2_graph(b); }},
      {"fig3", [](int b) { return fig3_graph(b); }},
      {"fig5", [](int b) { return fig5_graph(b); }},
  };
  return table;
}

std::vector<std::string> model_names() {
  std::vector<std::string> names;
  names.reserve(registry().size());
  for (const auto& [name, builder] : registry()) names.push_back(name);
  return names;
}

bool has_model(const std::string& name) {
  return registry().count(name) != 0;
}

Graph build_model(const std::string& name, int batch) {
  const auto& table = registry();
  const auto it = table.find(name);
  if (it == table.end()) {
    throw std::invalid_argument(unknown_name_message("model", name,
                                                     model_names()));
  }
  return it->second(batch);
}

}  // namespace ios::models
