#include "models/models.hpp"

namespace ios::models {

namespace {

Conv2dAttrs conv(int out_c, int k, int stride = 1, bool relu = true) {
  return Conv2dAttrs{.out_channels = out_c, .kh = k, .kw = k, .sh = stride,
                     .sw = stride, .ph = (k - 1) / 2, .pw = (k - 1) / 2,
                     .post_relu = relu};
}

/// Basic residual block (ResNet-18/34): conv3x3 - conv3x3 + shortcut.
/// When the block changes channels/stride, the shortcut is a 1x1
/// "downsample" convolution — the only inter-operator parallelism a ResNet
/// offers (Section 5: 2-5% speedup only).
OpId basic_block(Graph& g, OpId x, int out_c, int stride,
                 const std::string& tag) {
  g.begin_block();
  const OpId c1 = g.conv2d(x, conv(out_c, 3, stride), tag + "_conv1");
  const OpId c2 = g.conv2d(c1, conv(out_c, 3, 1, false), tag + "_conv2");
  OpId shortcut = x;
  if (stride != 1 || g.op(x).output.c != out_c) {
    shortcut = g.conv2d(x, conv(out_c, 1, stride, false), tag + "_down");
  }
  const OpId sum = g.add(c2, shortcut, tag + "_add");
  return g.relu(sum, tag + "_relu");
}

/// Bottleneck residual block (ResNet-50): 1x1 - 3x3 - 1x1 + shortcut.
OpId bottleneck_block(Graph& g, OpId x, int mid_c, int out_c, int stride,
                      const std::string& tag) {
  g.begin_block();
  const OpId c1 = g.conv2d(x, conv(mid_c, 1), tag + "_conv1");
  const OpId c2 = g.conv2d(c1, conv(mid_c, 3, stride), tag + "_conv2");
  const OpId c3 = g.conv2d(c2, conv(out_c, 1, 1, false), tag + "_conv3");
  OpId shortcut = x;
  if (stride != 1 || g.op(x).output.c != out_c) {
    shortcut = g.conv2d(x, conv(out_c, 1, stride, false), tag + "_down");
  }
  const OpId sum = g.add(c3, shortcut, tag + "_add");
  return g.relu(sum, tag + "_relu");
}

OpId resnet_stem(Graph& g, OpId in) {
  g.begin_block();
  OpId x = g.conv2d(in,
                    Conv2dAttrs{.out_channels = 64, .kh = 7, .kw = 7, .sh = 2,
                                .sw = 2, .ph = 3, .pw = 3, .post_relu = true},
                    "stem_conv");
  return g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, 2, 2, 1, 1},
                  "stem_pool");
}

void resnet_head(Graph& g, OpId x) {
  g.begin_block();
  const OpId gap = g.pool2d(
      x, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0}, "gap");
  g.matmul(gap, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");
}

}  // namespace

Graph resnet34(int batch) {
  Graph g(batch, "ResNet34");
  const OpId in = g.input(3, 224, 224, "image");
  OpId x = resnet_stem(g, in);
  const int layers[4] = {3, 4, 6, 3};
  int channels = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < layers[stage]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      x = basic_block(g, x, channels, stride,
                      "s" + std::to_string(stage) + "b" + std::to_string(i));
    }
    channels *= 2;
  }
  resnet_head(g, x);
  g.validate();
  return g;
}

Graph resnet50(int batch) {
  Graph g(batch, "ResNet50");
  const OpId in = g.input(3, 224, 224, "image");
  OpId x = resnet_stem(g, in);
  const int layers[4] = {3, 4, 6, 3};
  int mid = 64;
  for (int stage = 0; stage < 4; ++stage) {
    for (int i = 0; i < layers[stage]; ++i) {
      const int stride = (stage > 0 && i == 0) ? 2 : 1;
      x = bottleneck_block(
          g, x, mid, mid * 4, stride,
          "s" + std::to_string(stage) + "b" + std::to_string(i));
    }
    mid *= 2;
  }
  resnet_head(g, x);
  g.validate();
  return g;
}

Graph vgg16(int batch) {
  Graph g(batch, "VGG16");
  const OpId in = g.input(3, 224, 224, "image");
  g.begin_block();
  const int cfg[] = {64, 64, -1, 128, 128, -1, 256, 256, 256, -1,
                     512, 512, 512, -1, 512, 512, 512, -1};
  OpId x = in;
  int idx = 0;
  for (int c : cfg) {
    if (c < 0) {
      x = g.pool2d(x, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 2, 2, 2, 2, 0, 0},
                   "pool" + std::to_string(idx));
    } else {
      x = g.conv2d(x, conv(c, 3), "conv" + std::to_string(idx));
    }
    ++idx;
  }
  x = g.matmul(x, MatmulAttrs{.out_features = 4096, .post_relu = true}, "fc1");
  x = g.matmul(x, MatmulAttrs{.out_features = 4096, .post_relu = true}, "fc2");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc3");
  g.validate();
  return g;
}

}  // namespace ios::models
