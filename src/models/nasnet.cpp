#include "models/models.hpp"

namespace ios::models {

namespace {

SepConvAttrs sep(int out_c, int k, int stride = 1) {
  return SepConvAttrs{.out_channels = out_c, .k = k, .sh = stride,
                      .sw = stride, .ph = (k - 1) / 2, .pw = (k - 1) / 2,
                      .pre_relu = true};
}

Conv2dAttrs conv1x1(int out_c, int stride = 1) {
  return Conv2dAttrs{.out_channels = out_c, .kh = 1, .kw = 1, .sh = stride,
                     .sw = stride, .ph = 0, .pw = 0, .post_relu = true};
}

Pool2dAttrs avg3(int stride = 1) {
  return Pool2dAttrs{Pool2dAttrs::Kind::kAvg, 3, 3, stride, stride, 1, 1};
}

Pool2dAttrs max3(int stride = 1) {
  return Pool2dAttrs{Pool2dAttrs::Kind::kMax, 3, 3, stride, stride, 1, 1};
}

struct CellOut {
  OpId out = kInvalidOp;   // cell output (concat)
  OpId hidden = kInvalidOp;  // value to feed as h_{i-1} to the next cell
};

/// One NASNet-A style cell: two 1x1 adjust convolutions on the cell inputs
/// followed by five add-combines over separable convolutions, poolings and
/// identities, concluded by a concat. Exactly 18 schedule units per cell,
/// with width 8 (the last two combines consume earlier combine outputs):
/// this matches the paper's Table 1 row for NasNet (n = 18, d = 8).
CellOut nasnet_cell(Graph& g, OpId h_prev, OpId h, int channels, int stride,
                    const std::string& tag) {
  g.begin_block();
  // Adjust both inputs to `channels` (and reduce resolution when the cell
  // is a reduction cell).
  const OpId x1 = g.conv2d(h_prev, conv1x1(channels, stride), tag + "_adj1");
  const OpId x2 = g.conv2d(h, conv1x1(channels, stride), tag + "_adj2");

  // Combine 1: sep5x5(x1) + sep3x3(x2)
  const OpId c1a = g.sepconv(x1, sep(channels, 5), tag + "_c1_sep5");
  const OpId c1b = g.sepconv(x2, sep(channels, 3), tag + "_c1_sep3");
  const OpId c1 = g.add(c1a, c1b, tag + "_c1");
  // Combine 2: sep5x5(x1) + sep3x3(x1)
  const OpId c2a = g.sepconv(x1, sep(channels, 5), tag + "_c2_sep5");
  const OpId c2b = g.sepconv(x1, sep(channels, 3), tag + "_c2_sep3");
  const OpId c2 = g.add(c2a, c2b, tag + "_c2");
  // Combine 3: avg3x3(x2) + identity(x1)
  const OpId c3a = g.pool2d(x2, avg3(), tag + "_c3_avg");
  const OpId c3b = g.identity(x1, tag + "_c3_id");
  const OpId c3 = g.add(c3a, c3b, tag + "_c3");
  // Combine 4: avg3x3(c1) + sep3x3(x2) — consumes combine 1's output.
  const OpId c4a = g.pool2d(c1, avg3(), tag + "_c4_avg");
  const OpId c4b = g.sepconv(x2, sep(channels, 3), tag + "_c4_sep3");
  const OpId c4 = g.add(c4a, c4b, tag + "_c4");
  // Combine 5: max3x3(c2) + sep5x5(x2) — consumes combine 2's output.
  const OpId c5a = g.pool2d(c2, max3(), tag + "_c5_max");
  const OpId c5b = g.sepconv(x2, sep(channels, 5), tag + "_c5_sep5");
  const OpId c5 = g.add(c5a, c5b, tag + "_c5");

  const OpId outs[] = {c3, c4, c5};
  CellOut result;
  result.out = g.concat(outs, tag + "_concat");
  result.hidden = result.out;
  return result;
}

}  // namespace

Graph nasnet_a(int batch) {
  Graph g(batch, "NasNet");
  const OpId in = g.input(3, 224, 224, "image");

  g.begin_block();
  OpId x = g.conv2d(in,
                    Conv2dAttrs{.out_channels = 32, .kh = 3, .kw = 3, .sh = 2,
                                .sw = 2, .ph = 1, .pw = 1, .post_relu = true},
                    "stem_conv1");
  x = g.conv2d(x,
               Conv2dAttrs{.out_channels = 44, .kh = 3, .kw = 3, .sh = 2,
                           .sw = 2, .ph = 1, .pw = 1, .post_relu = true},
               "stem_conv2");

  // Three resolution groups of four cells; the first cell of group 2 and 3
  // is a stride-2 reduction cell. Every cell is its own block.
  OpId h_prev = x;
  OpId h = x;
  int channels = 44;
  int cell_index = 0;
  for (int group = 0; group < 3; ++group) {
    if (group > 0) channels *= 2;
    for (int i = 0; i < 4; ++i) {
      const int stride = (group > 0 && i == 0) ? 2 : 1;
      // A reduction cell changes resolution, so both inputs must be taken
      // from the same resolution: feed h twice.
      const OpId a = stride == 2 ? h : h_prev;
      const CellOut cell =
          nasnet_cell(g, a, h, channels, stride,
                      "cell" + std::to_string(cell_index++));
      h_prev = h;
      if (stride == 2) h_prev = cell.out;
      h = cell.out;
    }
  }

  g.begin_block();
  x = g.pool2d(h, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
               "gap");
  g.matmul(x, MatmulAttrs{.out_features = 1000, .post_relu = false}, "fc");

  g.validate();
  return g;
}

}  // namespace ios::models
