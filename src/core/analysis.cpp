#include "core/analysis.hpp"

namespace ios {

BlockComplexity analyze_block(const Graph& g, std::span<const OpId> block_ops,
                              int block_index) {
  BlockDag dag(g, block_ops);
  BlockComplexity out;
  out.block_index = block_index;
  out.n = dag.size();
  out.d = dag.width();
  out.upper_bound = BlockDag::transition_upper_bound(out.n, out.d);
  const auto counts = dag.count_transitions();
  out.states = counts.states;
  out.transitions = counts.transitions;
  out.num_schedules = dag.count_schedules();
  return out;
}

BlockComplexity largest_block_complexity(const Graph& g) {
  const auto blocks = g.blocks();
  int best = 0;
  for (std::size_t i = 1; i < blocks.size(); ++i) {
    if (blocks[i].size() > blocks[static_cast<std::size_t>(best)].size()) {
      best = static_cast<int>(i);
    }
  }
  return analyze_block(g, blocks[static_cast<std::size_t>(best)], best);
}

NetworkSummary summarize_network(const Graph& g) {
  NetworkSummary s;
  s.name = g.name();
  s.num_blocks = static_cast<int>(g.blocks().size());
  int convs = 0, sepconvs = 0;
  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    ++s.num_ops;
    if (op.kind == OpKind::kConv2d) ++convs;
    if (op.kind == OpKind::kSepConv) ++sepconvs;
  }
  s.main_op_type = sepconvs > convs ? "Relu-SepConv" : "Conv-Relu";
  return s;
}

}  // namespace ios
