#pragma once
// IOS: the Inter-Operator Scheduler (Algorithm 1 of the paper).
//
// For each block of the computation graph, the scheduler runs a dynamic
// program over the block's operator subsets: cost[S] = min over endings S'
// of S of (cost[S - S'] + stage_latency[S']), where stage_latency is
// measured by the profiling CostModel and the stage's parallelization
// strategy ("concurrent execution" vs "operator merge") is chosen by
// GENERATE_STAGE. choice[S] records the argmin so the optimal schedule can
// be reconstructed back-to-front.
//
// Two search engines produce bit-identical results:
//  * kSerial — the reference recursive top-down solver, one thread.
//  * kWave   — an iterative bottom-up solver that groups the reachable
//    states by popcount ("waves") and evaluates each wave's states in
//    parallel on the shared thread pool, so even a single large block
//    (NASNet cell, RandWire) uses every core. See IosScheduler::solve_wave.
// Memo and ending caches are flat open-addressing tables (util/flat_map.hpp)
// keyed by Set64::bits().

#include <string>

#include "core/block_dag.hpp"
#include "runtime/cost_model.hpp"
#include "schedule/schedule.hpp"
#include "util/flat_map.hpp"

namespace ios {

/// The pruning strategy P of Section 4.3: an ending is explored only if it
/// has at most `s` groups of at most `r` operators each.
struct PruningStrategy {
  int r = 3;  ///< max operators per group
  int s = 8;  ///< max groups per stage

  static PruningStrategy none() { return {64, 64}; }
  bool unrestricted() const { return r >= 64 && s >= 64; }
};

/// Which parallelization strategies GENERATE_STAGE may use (Section 6.1).
enum class IosVariant {
  kBoth,      ///< IOS-Both: pick the cheaper of merge / concurrent
  kParallel,  ///< IOS-Parallel: concurrent execution only
  kMerge,     ///< IOS-Merge: operator merge only (non-mergeable endings
              ///< execute their operators sequentially on one stream)
};

const char* ios_variant_name(IosVariant v);

/// Which DP solver runs the per-block search. In exact mode every engine
/// explores exactly the same states and produces bit-identical schedules,
/// latencies, and statistics; they differ only in wall-clock and memory
/// behavior (the wave engines record every surviving transition between
/// their two passes — O(transitions) peak memory, which search time bounds
/// long before it becomes the binding constraint).
enum class SearchEngine {
  kAuto,        ///< kWave when memoization is on and either pruning or more
                ///< than one worker is requested, kSerial otherwise
  kSerial,      ///< reference recursive top-down solver (always one thread)
  kWave,        ///< arena-backed bottom-up solver, wave-parallel on the
                ///< thread pool; the only engine supporting PruneMode
  kWaveLegacy,  ///< the previous wave solver, kept verbatim as the in-tree
                ///< performance baseline for the states/sec and peak-RSS
                ///< bench gates and as the exactness reference in
                ///< prune_property_test; exact mode only, never picked by
                ///< kAuto
};

const char* search_engine_name(SearchEngine e);

/// How aggressively the DP search may cut state space beyond the paper's
/// P(r, s) transition pruning.
enum class PruneMode {
  /// No state-space cuts: bit-identical schedules, latencies, and
  /// statistics to the reference serial engine. The default.
  kExact,
  /// Branch-and-bound state dominance: a beam presearch supplies a feasible
  /// upper bound U, and any state whose best known prefix cost plus an
  /// admissible roofline lower bound on its remaining work exceeds U is cut
  /// before its endings are enumerated. Provably returns the exact optimum
  /// (the optimal chain always survives), so the reported
  /// latency_gap_bound_us is always 0 — the knob trades the guarantee's
  /// proof obligation for wall-clock only.
  kDominance,
  /// Per-state transition beam: each state evaluates only its `beam_width`
  /// most promising endings (largest first, enumeration order tie-break)
  /// plus an always-feasible singleton safety valve. Results are monotone
  /// non-worsening in the width and carry a sound latency_gap_bound_us;
  /// schedules may be suboptimal by at most that bound.
  kBeam,
};

const char* prune_mode_name(PruneMode m);

struct SchedulerOptions;

/// Parses a pruning spec — "exact", "dominance", or "beam:<width>" (bare
/// "beam" keeps the default width) — into `options`. Throws
/// std::invalid_argument on unknown specs. This is the string form the CLI
/// (`ios_opt optimize --prune beam:8`) and the benches share.
void apply_prune_spec(SchedulerOptions& options, const std::string& spec);

struct SchedulerOptions {
  PruningStrategy pruning{};
  IosVariant variant = IosVariant::kBoth;
  /// Ablation knob: disable the cost[S] memoization (the DP then re-solves
  /// shared sub-schedules exponentially often). Only the serial engine
  /// supports this — requesting kWave with memoize=false throws.
  bool memoize = true;
  /// DP solver selection; kAuto resolves to the wave engine when
  /// memoization is on and the effective worker count (num_threads, or the
  /// hardware threads when <= 0) exceeds one. The found schedule is
  /// identical either way.
  SearchEngine engine = SearchEngine::kAuto;
  /// Worker-thread target for the whole search: independent blocks run
  /// their DPs concurrently (Section 4.2), and within a block the wave
  /// engine evaluates each popcount level's states concurrently. All
  /// workers come from the shared process-wide pool (shared_thread_pool());
  /// 1 = fully sequential; <= 0 = one per hardware thread. The resulting
  /// schedule is identical regardless of the count.
  int num_threads = 1;
  /// State-space pruning beyond P(r, s). Non-exact modes require the wave
  /// engine (kAuto resolves there; kSerial / kWaveLegacy throw) and
  /// memoization. Results stay bit-identical across thread counts in every
  /// mode.
  PruneMode prune = PruneMode::kExact;
  /// Endings each state evaluates under PruneMode::kBeam (>= 1; the
  /// always-feasible safety-valve singleton is added on top). Larger widths
  /// are monotone non-worsening; a width >= the state's ending count is
  /// exact.
  int beam_width = 8;
  /// Cross-request reuse: when set, blocks whose canonical descriptor
  /// (operator kinds, attributes, shapes, internal wiring, device, kernel
  /// params, protocol, and scheduler config) was already solved — in this
  /// or any other graph this process scheduled — reuse the cached stage
  /// layout instead of re-running the DP. Off by default because hits make
  /// SchedulerStats depend on what the process scheduled before.
  bool cross_block_reuse = false;

  /// Throws std::invalid_argument on inconsistent settings (pruning bounds
  /// < 1, wave engine with memoization disabled). Called by the
  /// IosScheduler constructor and by every caching front end *before* its
  /// cache lookup, so an invalid combination is rejected identically
  /// whether or not an equivalent request is already cached.
  void validate() const;
};

struct SchedulerStats {
  std::int64_t states = 0;       ///< distinct S values solved
  std::int64_t transitions = 0;  ///< (S, S') pairs explored (pruned excluded)
  std::int64_t measurements = 0; ///< distinct stage profiles requested
  /// Ending evaluations served from the per-block cache for endings that
  /// survived pruning. Repeat visits to *pruned* endings are counted in
  /// pruned_endings instead, so the two counters partition the repeat
  /// lookups by their verdict.
  std::int64_t cache_hits = 0;
  /// Ending visits cut by P(r, s) — every (S, S') pair whose ending is
  /// pruned, including repeat visits answered from the cache.
  std::int64_t pruned_endings = 0;
  /// States where the dominance bound skipped at least one transition's
  /// evaluation. Zero in exact and beam modes.
  std::int64_t pruned_states = 0;
  /// Transitions cut without their stage being evaluated: by the beam
  /// width cap (beam mode), or by the dominance argmin bound — a
  /// transition whose admissible stage floor plus exact sub-state cost
  /// cannot beat the state's best evaluated total is skipped before its
  /// stage is simulated, which provably changes nothing about the found
  /// schedule. Zero in exact mode.
  std::int64_t beam_trimmed = 0;
  /// Sound upper bound on how far the found latency can sit above the exact
  /// optimum, summed over blocks. Always 0 for kExact and kDominance; a
  /// beam search reports the bound its cut states imply.
  double latency_gap_bound_us = 0;
  /// Blocks whose schedule came from the cross-request block cache instead
  /// of a DP run (cross_block_reuse only).
  std::int64_t block_cache_hits = 0;
  /// Stage measurements answered by the canonical stage cache (cross-request
  /// reuse only), and how many of those were recorded by a different graph.
  std::int64_t canonical_hits = 0;
  std::int64_t cross_model_hits = 0;
  double profiling_cost_us = 0;  ///< simulated device time spent profiling
  double search_wall_ms = 0;     ///< host time spent in the DP itself

  /// Accumulates another block's stats (used to merge the per-thread stats
  /// of a parallel schedule_partition at join).
  SchedulerStats& operator+=(const SchedulerStats& o) {
    states += o.states;
    transitions += o.transitions;
    measurements += o.measurements;
    cache_hits += o.cache_hits;
    pruned_endings += o.pruned_endings;
    pruned_states += o.pruned_states;
    beam_trimmed += o.beam_trimmed;
    latency_gap_bound_us += o.latency_gap_bound_us;
    block_cache_hits += o.block_cache_hits;
    canonical_hits += o.canonical_hits;
    cross_model_hits += o.cross_model_hits;
    profiling_cost_us += o.profiling_cost_us;
    search_wall_ms += o.search_wall_ms;
    return *this;
  }
};

class IosScheduler {
 public:
  IosScheduler(CostModel& cost, SchedulerOptions options = {});

  /// Schedules every block of the cost model's graph and concatenates the
  /// per-block schedules (Section 4.2: blocks are optimized separately).
  Schedule schedule_graph(SchedulerStats* stats = nullptr);

  /// Schedules one block given its operators.
  Schedule schedule_block(std::span<const OpId> block_ops,
                          SchedulerStats* stats = nullptr);

  /// Schedules an explicit partition (e.g. from auto_partition()) instead of
  /// the graph's built-in block annotations.
  Schedule schedule_partition(const std::vector<std::vector<OpId>>& blocks,
                              SchedulerStats* stats = nullptr);

  /// The engine an option set resolves to (kAuto applied).
  SearchEngine resolved_engine() const;

 private:
  /// How the stage for a chosen ending is constructed.
  enum class StageBuild {
    kConcurrentGroups,  ///< one group per weakly connected component
    kMergeSingle,       ///< all ops stacked into one merged kernel
    kSequentialSingle,  ///< one group, one stream (IOS-Merge fallback)
  };

  struct Entry {
    double cost = 0;
    std::uint64_t choice = 0;  // ending mask of the last stage
    StageBuild build = StageBuild::kConcurrentGroups;
  };

  /// Cached per-ending evaluation: GENERATE_STAGE's result plus the pruning
  /// verdict. Both depend only on the ending (not on the DP state), so they
  /// are computed once per distinct ending instead of once per transition.
  struct EndingEval {
    bool pruned = false;
    double latency_us = 0;
    StageBuild build = StageBuild::kConcurrentGroups;
  };

  struct BlockContext {
    const BlockDag& dag;
    FlatMap64<Entry> memo;
    FlatMap64<EndingEval> ending_cache;  // serial engine only
  };

  /// The wave engine's shared ending cache: stripes of independently locked
  /// flat tables (defined in scheduler.cpp).
  struct EndingStripes;

  /// GENERATE_STAGE (Algorithm 1 L23-33) specialized by the variant, plus
  /// the P(r, s) pruning verdict. Pure with respect to the DP state.
  EndingEval compute_ending(const BlockDag& dag, Set64 ending) const;

  /// compute_ending for callers that already hold the ending's weakly
  /// connected components (the wave enumerator maintains them as it
  /// recurses). Skips the per-ending flood fill and derives the stage
  /// fingerprints directly from the component masks, so a warm latency
  /// cache is probed without materializing any Stage. Bit-identical
  /// results to compute_ending — same cache keys, same tie-breaking.
  EndingEval compute_ending_grouped(const BlockDag& dag, Set64 ending,
                                    const Set64* comps, int ncomps) const;

  /// compute_ending memoized in ctx.ending_cache with hit/pruned counting
  /// (serial engine path).
  EndingEval evaluate_ending(BlockContext& ctx, Set64 ending,
                             SchedulerStats* stats);

  /// SCHEDULER (Algorithm 1 L13-22): the reference recursive solver.
  double solve(BlockContext& ctx, Set64 s, SchedulerStats* stats);

  /// The wave engine: discovers the reachable states level-by-level
  /// (popcount descending, evaluating every ending in parallel on the way)
  /// and then fills ctx.memo level-by-level popcount ascending. In exact
  /// mode it produces bit-identical memo entries and statistics to
  /// solve(ctx, dag.all()); kDominance / kBeam run their pruned searches
  /// here too (see WavePass in scheduler.cpp).
  void solve_wave(BlockContext& ctx, SchedulerStats* stats);

  /// The PR 4 wave solver, kept verbatim (own transition vectors, own
  /// ending-cache accounting) as the states/sec and peak-RSS baseline the
  /// bench gates compare against, and as the independent exactness
  /// reference for prune_property_test. Exact mode only.
  void solve_wave_legacy(BlockContext& ctx, SchedulerStats* stats);

  /// One bottom-up wave search over `dag` into `memo` under `mode`.
  /// kExact and kBeam evaluate endings during discovery (kBeam only the
  /// `beam_width` selected per state); kDominance discovers structurally
  /// and evaluates lazily in the cost pass, skipping every transition
  /// whose floor-plus-exact-sub-cost bound cannot beat the state's running
  /// best — bit-identical results with fewer simulations. Returns the root
  /// cost. See scheduler.cpp for the machinery.
  double wave_pass(const BlockDag& dag, EndingStripes& endings,
                   FlatMap64<Entry>& memo, PruneMode mode, int beam_width,
                   SchedulerStats* stats);

  /// The cross-request identity of a block: operator kinds, attributes, and
  /// shapes by local index, internal wiring, external-input sharing
  /// structure and shapes, the scheduler config, and the measurement
  /// environment. Equal keys get bit-identical DP outcomes, so the block
  /// template cache can replay the stage layout (cross_block_reuse).
  std::string canonical_block_key(const BlockDag& dag) const;

  Stage build_stage(const BlockDag& dag, Set64 ending, StageBuild build) const;

  /// The concurrent stage for an ending whose weakly connected components
  /// are already known (avoids recomputing them in the DP hot path).
  static Stage concurrent_stage(const BlockDag& dag,
                                const std::vector<Set64>& comps);

  CostModel& cost_;
  SchedulerOptions options_;
};

}  // namespace ios
