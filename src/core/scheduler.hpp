#pragma once
// IOS: the Inter-Operator Scheduler (Algorithm 1 of the paper).
//
// For each block of the computation graph, the scheduler runs a dynamic
// program over the block's operator subsets: cost[S] = min over endings S'
// of S of (cost[S - S'] + stage_latency[S']), where stage_latency is
// measured by the profiling CostModel and the stage's parallelization
// strategy ("concurrent execution" vs "operator merge") is chosen by
// GENERATE_STAGE. choice[S] records the argmin so the optimal schedule can
// be reconstructed back-to-front.

#include <unordered_map>

#include "core/block_dag.hpp"
#include "runtime/cost_model.hpp"
#include "schedule/schedule.hpp"
#include "util/hash.hpp"

namespace ios {

/// The pruning strategy P of Section 4.3: an ending is explored only if it
/// has at most `s` groups of at most `r` operators each.
struct PruningStrategy {
  int r = 3;  ///< max operators per group
  int s = 8;  ///< max groups per stage

  static PruningStrategy none() { return {64, 64}; }
  bool unrestricted() const { return r >= 64 && s >= 64; }
};

/// Which parallelization strategies GENERATE_STAGE may use (Section 6.1).
enum class IosVariant {
  kBoth,      ///< IOS-Both: pick the cheaper of merge / concurrent
  kParallel,  ///< IOS-Parallel: concurrent execution only
  kMerge,     ///< IOS-Merge: operator merge only (non-mergeable endings
              ///< execute their operators sequentially on one stream)
};

const char* ios_variant_name(IosVariant v);

struct SchedulerOptions {
  PruningStrategy pruning{};
  IosVariant variant = IosVariant::kBoth;
  /// Ablation knob: disable the cost[S] memoization (the DP then re-solves
  /// shared sub-schedules exponentially often).
  bool memoize = true;
  /// Worker threads for schedule_partition / schedule_graph: independent
  /// blocks run their DPs concurrently (Section 4.2 — blocks are optimized
  /// separately, so their searches never share state beyond the thread-safe
  /// CostModel). 1 = sequential (seed behavior); <= 0 = one per hardware
  /// thread. The resulting schedule is identical regardless of the count.
  int num_threads = 1;
};

struct SchedulerStats {
  std::int64_t states = 0;       ///< distinct S values solved
  std::int64_t transitions = 0;  ///< (S, S') pairs explored
  std::int64_t measurements = 0; ///< distinct stage profiles requested
  std::int64_t cache_hits = 0;   ///< ending evaluations served from cache
  std::int64_t pruned_endings = 0;  ///< distinct endings cut by P(r, s)
  double profiling_cost_us = 0;  ///< simulated device time spent profiling
  double search_wall_ms = 0;     ///< host time spent in the DP itself

  /// Accumulates another block's stats (used to merge the per-thread stats
  /// of a parallel schedule_partition at join).
  SchedulerStats& operator+=(const SchedulerStats& o) {
    states += o.states;
    transitions += o.transitions;
    measurements += o.measurements;
    cache_hits += o.cache_hits;
    pruned_endings += o.pruned_endings;
    profiling_cost_us += o.profiling_cost_us;
    search_wall_ms += o.search_wall_ms;
    return *this;
  }
};

class IosScheduler {
 public:
  IosScheduler(CostModel& cost, SchedulerOptions options = {});

  /// Schedules every block of the cost model's graph and concatenates the
  /// per-block schedules (Section 4.2: blocks are optimized separately).
  Schedule schedule_graph(SchedulerStats* stats = nullptr);

  /// Schedules one block given its operators.
  Schedule schedule_block(std::span<const OpId> block_ops,
                          SchedulerStats* stats = nullptr);

  /// Schedules an explicit partition (e.g. from auto_partition()) instead of
  /// the graph's built-in block annotations.
  Schedule schedule_partition(const std::vector<std::vector<OpId>>& blocks,
                              SchedulerStats* stats = nullptr);

 private:
  /// How the stage for a chosen ending is constructed.
  enum class StageBuild {
    kConcurrentGroups,  ///< one group per weakly connected component
    kMergeSingle,       ///< all ops stacked into one merged kernel
    kSequentialSingle,  ///< one group, one stream (IOS-Merge fallback)
  };

  struct Entry {
    double cost = 0;
    std::uint64_t choice = 0;  // ending mask of the last stage
    StageBuild build = StageBuild::kConcurrentGroups;
  };

  /// Cached per-ending evaluation: GENERATE_STAGE's result plus the pruning
  /// verdict. Both depend only on the ending (not on the DP state), so they
  /// are computed once per distinct ending instead of once per transition.
  struct EndingEval {
    bool pruned = false;
    double latency_us = 0;
    StageBuild build = StageBuild::kConcurrentGroups;
  };

  struct BlockContext {
    const BlockDag& dag;
    std::unordered_map<std::uint64_t, Entry, U64Hasher> memo;
    std::unordered_map<std::uint64_t, EndingEval, U64Hasher> ending_cache;
  };

  /// GENERATE_STAGE (Algorithm 1 L23-33) specialized by the variant,
  /// memoized per ending together with the P(r, s) check.
  const EndingEval& evaluate_ending(BlockContext& ctx, Set64 ending,
                                    SchedulerStats* stats);

  /// SCHEDULER (Algorithm 1 L13-22).
  double solve(BlockContext& ctx, Set64 s, SchedulerStats* stats);

  Stage build_stage(const BlockDag& dag, Set64 ending, StageBuild build) const;

  /// The concurrent stage for an ending whose weakly connected components
  /// are already known (avoids recomputing them in the DP hot path).
  static Stage concurrent_stage(const BlockDag& dag,
                                const std::vector<Set64>& comps);

  CostModel& cost_;
  SchedulerOptions options_;
};

}  // namespace ios
