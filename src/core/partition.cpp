#include "core/partition.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

namespace ios {

std::vector<std::vector<OpId>> auto_partition(const Graph& g,
                                              const PartitionOptions& options) {
  if (options.max_block_ops < 1 || options.max_block_ops > 64) {
    throw std::invalid_argument("max_block_ops must be in [1, 64]");
  }

  const std::vector<OpId> ops = g.schedulable_ops();  // topological order
  const int n = static_cast<int>(ops.size());
  if (n == 0) return {};

  std::unordered_map<OpId, int> position;
  for (int i = 0; i < n; ++i) position[ops[static_cast<std::size_t>(i)]] = i;

  // cut[i] == true: a block boundary may be placed after position i, i.e.
  // every edge crossing the boundary starts at ops[i] itself. Graph inputs
  // are visible everywhere and do not count as crossings.
  std::vector<char> cut(static_cast<std::size_t>(n), 0);
  // Sweep with a multiset of "open" edges: for each position, edges from
  // earlier schedulable ops to later ops.
  std::vector<int> open_from(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (OpId succ : g.succs(ops[static_cast<std::size_t>(i)])) {
      auto it = position.find(succ);
      if (it != position.end() && it->second > i) {
        ++open_from[static_cast<std::size_t>(i)];
      }
    }
  }
  // crossing(i) = edges (u, w) with pos(u) <= i < pos(w). Boundary after i
  // is a cut iff all such edges have pos(u) == i.
  // Track, for each boundary, the number of crossing edges that start
  // strictly before i.
  std::vector<int> ends_at(static_cast<std::size_t>(n), 0);
  for (int i = 0; i < n; ++i) {
    for (OpId pred : g.preds(ops[static_cast<std::size_t>(i)])) {
      auto it = position.find(pred);
      if (it != position.end() && it->second < i) {
        ++ends_at[static_cast<std::size_t>(i)];
      }
    }
  }
  int open_before = 0;  // edges starting at positions < i+1 and ending > i
  for (int i = 0; i < n; ++i) {
    // Edges ending exactly at i close before considering boundary after i.
    open_before -= ends_at[static_cast<std::size_t>(i)];
    // Cut after i iff no edge from positions < i crosses the boundary
    // (edges from i itself are allowed: its output tensor is the cut).
    cut[static_cast<std::size_t>(i)] = open_before == 0;
    open_before += open_from[static_cast<std::size_t>(i)];
  }
  cut[static_cast<std::size_t>(n - 1)] = 1;  // the end is always a boundary

  // Split into minimal segments at every cut, then coalesce greedily.
  std::vector<std::pair<int, int>> segments;  // [begin, end] inclusive
  int begin = 0;
  for (int i = 0; i < n; ++i) {
    if (cut[static_cast<std::size_t>(i)]) {
      segments.emplace_back(begin, i);
      begin = i + 1;
    }
  }

  std::vector<std::vector<OpId>> blocks;
  std::vector<OpId> current;
  auto flush = [&] {
    if (!current.empty()) {
      blocks.push_back(std::move(current));
      current.clear();
    }
  };
  for (const auto& [s, e] : segments) {
    const int seg_size = e - s + 1;
    if (seg_size > options.max_block_ops) {
      // Unsplittable oversized segment: flush and chunk it by topo order.
      flush();
      for (int i = s; i <= e; i += options.max_block_ops) {
        std::vector<OpId> chunk;
        for (int j = i; j <= std::min(e, i + options.max_block_ops - 1); ++j) {
          chunk.push_back(ops[static_cast<std::size_t>(j)]);
        }
        blocks.push_back(std::move(chunk));
      }
      continue;
    }
    if ((static_cast<int>(current.size()) + seg_size > options.max_block_ops &&
         static_cast<int>(current.size()) >= options.min_block_ops) ||
        static_cast<int>(current.size()) + seg_size > 64) {
      flush();
    }
    for (int j = s; j <= e; ++j) {
      current.push_back(ops[static_cast<std::size_t>(j)]);
    }
    if (static_cast<int>(current.size()) >= options.max_block_ops) flush();
  }
  flush();
  return blocks;
}

}  // namespace ios
