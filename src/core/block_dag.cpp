#include "core/block_dag.hpp"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "util/flat_map.hpp"
#include "util/hash.hpp"

namespace ios {

BlockDag::BlockDag(const Graph& g, std::span<const OpId> block_ops) {
  n_ = static_cast<int>(block_ops.size());
  if (n_ > 64) {
    throw std::invalid_argument(
        "block has more than 64 operators; split it into smaller blocks");
  }
  ops_.assign(block_ops.begin(), block_ops.end());
  std::sort(ops_.begin(), ops_.end());  // id order == topological order

  std::unordered_map<OpId, int> local;
  for (int i = 0; i < n_; ++i) local[ops_[static_cast<std::size_t>(i)]] = i;

  succ_.assign(static_cast<std::size_t>(n_), Set64{});
  pred_.assign(static_cast<std::size_t>(n_), Set64{});
  adj_.assign(static_cast<std::size_t>(n_), Set64{});
  for (int i = 0; i < n_; ++i) {
    for (OpId p : g.preds(ops_[static_cast<std::size_t>(i)])) {
      auto it = local.find(p);
      if (it == local.end()) continue;  // producer in an earlier block
      const int j = it->second;
      succ_[static_cast<std::size_t>(j)].insert(i);
      pred_[static_cast<std::size_t>(i)].insert(j);
      adj_[static_cast<std::size_t>(i)].insert(j);
      adj_[static_cast<std::size_t>(j)].insert(i);
    }
  }
}

int BlockDag::local_of(OpId id) const {
  const auto it = std::lower_bound(ops_.begin(), ops_.end(), id);
  if (it == ops_.end() || *it != id) {
    throw std::out_of_range("op not in block");
  }
  return static_cast<int>(it - ops_.begin());
}

std::vector<OpId> BlockDag::to_ops(Set64 s) const {
  std::vector<OpId> out;
  out.reserve(static_cast<std::size_t>(s.size()));
  for (int i : s) out.push_back(ops_[static_cast<std::size_t>(i)]);
  return out;
}

void BlockDag::rec_endings(std::span<const int> rev_topo, std::size_t pos,
                           Set64 s, Set64 chosen, std::vector<Set64>& comps,
                           int max_ops, int max_group_ops,
                           const std::function<void(Set64)>& f) const {
  if (pos == rev_topo.size()) {
    if (!chosen.empty()) f(chosen);
    return;
  }
  const int u = rev_topo[pos];
  // Exclude u.
  rec_endings(rev_topo, pos + 1, s, chosen, comps, max_ops, max_group_ops, f);
  // Include u: legal iff every in-S successor of u is already chosen
  // (successors precede u in reverse-topological order).
  if (chosen.size() < max_ops && (succ_mask(u) & s).is_subset_of(chosen)) {
    // Merge u with the chosen components it touches. A weakly connected
    // component never shrinks as more ops are added, so once it exceeds
    // max_group_ops the whole subtree violates the pruning strategy and can
    // be cut exactly — this is what keeps the pruned DP fast on wide blocks
    // like RandWire's.
    Set64 merged = Set64::single(u);
    std::vector<Set64> next_comps;
    next_comps.reserve(comps.size() + 1);
    const Set64 adj = adj_mask(u);
    for (const Set64 comp : comps) {
      if (comp.intersects(adj)) {
        merged |= comp;
      } else {
        next_comps.push_back(comp);
      }
    }
    if (merged.size() <= max_group_ops) {
      next_comps.push_back(merged);
      Set64 next = chosen;
      next.insert(u);
      rec_endings(rev_topo, pos + 1, s, next, next_comps, max_ops,
                  max_group_ops, f);
    }
  }
}

void BlockDag::for_each_ending(Set64 s, int max_ops, int max_group_ops,
                               const std::function<void(Set64)>& f) const {
  // Reverse topological order of the members of s: local indices ascending
  // is topological, so descending is reverse-topological.
  std::vector<int> rev_topo;
  rev_topo.reserve(static_cast<std::size_t>(s.size()));
  for (int i : s) rev_topo.push_back(i);
  std::reverse(rev_topo.begin(), rev_topo.end());
  std::vector<Set64> comps;
  rec_endings(rev_topo, 0, s, Set64{}, comps, max_ops, max_group_ops, f);
}

std::vector<Set64> BlockDag::components(Set64 s) const {
  std::vector<Set64> comps;
  Set64 rest = s;
  while (!rest.empty()) {
    Set64 comp = Set64::single(rest.first());
    // Grow to the full weakly-connected component via mask BFS.
    for (;;) {
      Set64 frontier = comp;
      Set64 grown = comp;
      for (int i : frontier) grown |= adj_mask(i) & s;
      if (grown == comp) break;
      comp = grown;
    }
    comps.push_back(comp);
    rest -= comp;
  }
  return comps;
}

int BlockDag::width() const {
  // Transitive closure by descending local index (successors first).
  std::vector<Set64> closure(static_cast<std::size_t>(n_));
  for (int i = n_ - 1; i >= 0; --i) {
    Set64 c = succ_mask(i);
    for (int j : succ_mask(i)) c |= closure[static_cast<std::size_t>(j)];
    closure[static_cast<std::size_t>(i)] = c;
  }

  // Dilworth: largest antichain = n - max matching in the bipartite graph
  // {left copy} x {right copy} with an edge (i, j) iff i precedes j.
  std::vector<int> match_right(static_cast<std::size_t>(n_), -1);
  std::vector<char> visited(static_cast<std::size_t>(n_));
  std::function<bool(int)> try_kuhn = [&](int i) -> bool {
    for (int j : closure[static_cast<std::size_t>(i)]) {
      if (visited[static_cast<std::size_t>(j)]) continue;
      visited[static_cast<std::size_t>(j)] = 1;
      if (match_right[static_cast<std::size_t>(j)] == -1 ||
          try_kuhn(match_right[static_cast<std::size_t>(j)])) {
        match_right[static_cast<std::size_t>(j)] = i;
        return true;
      }
    }
    return false;
  };
  int matching = 0;
  for (int i = 0; i < n_; ++i) {
    std::fill(visited.begin(), visited.end(), 0);
    if (try_kuhn(i)) ++matching;
  }
  return n_ - matching;
}

BlockDag::TransitionCount BlockDag::count_transitions() const {
  TransitionCount out;
  FlatSet64 seen;
  std::vector<Set64> stack{all()};
  seen.insert(all().bits());
  // The empty state is a state too (cost[emptyset] = 0), matching the
  // paper's state diagram in Figure 5 which includes S = {}.
  while (!stack.empty()) {
    const Set64 s = stack.back();
    stack.pop_back();
    ++out.states;
    if (s.empty()) continue;
    for_each_ending(s, 64, [&](Set64 ending) {
      ++out.transitions;
      const Set64 next = s - ending;
      if (seen.insert(next.bits())) stack.push_back(next);
    });
  }
  return out;
}

double BlockDag::count_schedules() const {
  FlatMap64<double> memo;
  std::function<double(Set64)> count = [&](Set64 s) -> double {
    if (s.empty()) return 1.0;
    if (const double* hit = memo.find(s.bits())) return *hit;
    double total = 0;
    for_each_ending(s, 64, [&](Set64 ending) { total += count(s - ending); });
    memo.try_emplace(s.bits(), total);
    return total;
  };
  return count(all());
}

double BlockDag::transition_upper_bound(int n, int d) {
  const double ratio = static_cast<double>(n) / d;
  const double per_chain = (ratio + 2.0) * (ratio + 1.0) / 2.0;
  double bound = 1;
  for (int i = 0; i < d; ++i) bound *= per_chain;
  return bound;
}

}  // namespace ios
