#pragma once
// BlockDag: the per-block view the dynamic program works on. Operators of
// one block are re-indexed into [0, n) (n <= 64) so subsets of them — the
// states S and endings S' of Algorithm 1 — are Set64 bitmasks. Provides
// ending enumeration, weakly-connected-component grouping, DAG width
// (Definition 1, computed via Dilworth's theorem), and the state/transition
// counting behind Table 1.

#include <functional>
#include <span>

#include "graph/graph.hpp"
#include "util/bitset64.hpp"

namespace ios {

class BlockDag {
 public:
  /// @param block_ops ops of one block in topological (id) order; <= 64.
  BlockDag(const Graph& g, std::span<const OpId> block_ops);

  int size() const { return n_; }
  Set64 all() const { return Set64::full(n_); }
  OpId op_of(int local) const { return ops_[static_cast<std::size_t>(local)]; }
  int local_of(OpId id) const;

  /// Direct successors/predecessors within the block.
  Set64 succ_mask(int local) const {
    return succ_[static_cast<std::size_t>(local)];
  }
  Set64 pred_mask(int local) const {
    return pred_[static_cast<std::size_t>(local)];
  }
  /// Undirected adjacency within the block (for group construction).
  Set64 adj_mask(int local) const {
    return adj_[static_cast<std::size_t>(local)];
  }

  std::vector<OpId> to_ops(Set64 s) const;

  /// Invokes `f` once for every non-empty ending S' of S — every non-empty
  /// subset of S closed under in-S successors (Figure 4). Enumeration order
  /// is deterministic. `max_ops`, when < 64, prunes endings larger than that
  /// many operators (the r*s cap of the pruning strategy); `max_group_ops`
  /// prunes endings containing a weakly connected component larger than r
  /// (components only grow as ops are added, so the cut is exact).
  void for_each_ending(Set64 s, int max_ops,
                       const std::function<void(Set64)>& f) const {
    for_each_ending(s, max_ops, 64, f);
  }
  void for_each_ending(Set64 s, int max_ops, int max_group_ops,
                       const std::function<void(Set64)>& f) const;

  /// Allocation-free ending enumeration: identical visit order and pruning
  /// to for_each_ending, but templated on the callback (no std::function
  /// indirection) and using fixed stack scratch for the reverse-topological
  /// order and the per-depth component lists (no per-include-step vector
  /// copies). The callback receives f(ending, comps, ncomps): the weakly
  /// connected components the enumerator already maintains for its group-
  /// size cut, valid only for the duration of the call. They are the same
  /// partition components(ending) would compute (in enumeration order, not
  /// smallest-member order), so evaluators can skip the per-ending flood
  /// fill entirely. This is the wave engine's hot path; for_each_ending is
  /// kept as the reference (and as the legacy engine's unchanged code path).
  template <typename F>
  void visit_endings(Set64 s, int max_ops, int max_group_ops, F&& f) const {
    int rev_topo[64];
    int m = 0;
    for (int i : s) rev_topo[m++] = i;
    for (int lo = 0, hi = m - 1; lo < hi; ++lo, --hi) {
      const int tmp = rev_topo[lo];
      rev_topo[lo] = rev_topo[hi];
      rev_topo[hi] = tmp;
    }
    // rows[d] holds the component list built by an include step at depth d;
    // exclude steps pass their caller's list through untouched, so distinct
    // depths never alias.
    ComponentRows rows;
    visit_rec(rev_topo, m, 0, s, Set64{}, nullptr, 0, rows, max_ops,
              max_group_ops, f);
  }

  /// Weakly connected components of the induced subgraph on `s`, each a
  /// Set64, ordered by smallest member.
  std::vector<Set64> components(Set64 s) const;

  /// Width d of the block DAG (Definition 1): size of the largest
  /// antichain, computed as n minus a maximum matching on the transitive
  /// closure (Dilworth / Corollary 1).
  int width() const;

  /// Number of distinct (S, S') pairs the unpruned dynamic program visits —
  /// the "#(S, S')" column of Table 1. Also reports the number of states.
  struct TransitionCount {
    std::int64_t states = 0;
    std::int64_t transitions = 0;
  };
  TransitionCount count_transitions() const;

  /// Total number of feasible schedules (ordered partitions of the block
  /// into endings) — the "#Schedules" column of Table 1. Returned as double
  /// because the count reaches ~1e22 on RandWire.
  double count_schedules() const;

  /// The paper's closed-form upper bound ((n/d+2) choose 2)^d on the number
  /// of transitions, evaluated with real-valued n/d.
  static double transition_upper_bound(int n, int d);

 private:
  void rec_endings(std::span<const int> rev_topo, std::size_t pos, Set64 s,
                   Set64 chosen, std::vector<Set64>& comps, int max_ops,
                   int max_group_ops,
                   const std::function<void(Set64)>& f) const;

  /// Per-depth scratch rows for visit_endings' component merging (32 KiB of
  /// stack; fine on pool worker threads).
  struct ComponentRows {
    Set64 row[64][64];
  };

  template <typename F>
  void visit_rec(const int* rev_topo, int m, int pos, Set64 s, Set64 chosen,
                 const Set64* comps, int ncomps, ComponentRows& rows,
                 int max_ops, int max_group_ops, F& f) const {
    if (pos == m) {
      if (!chosen.empty()) f(chosen, comps, ncomps);
      return;
    }
    const int u = rev_topo[pos];
    // Exclude u.
    visit_rec(rev_topo, m, pos + 1, s, chosen, comps, ncomps, rows, max_ops,
              max_group_ops, f);
    // Include u: legal iff every in-S successor of u is already chosen
    // (successors precede u in reverse-topological order).
    if (chosen.size() < max_ops && (succ_mask(u) & s).is_subset_of(chosen)) {
      Set64 merged = Set64::single(u);
      Set64* next = rows.row[pos];
      int nnext = 0;
      const Set64 adj = adj_mask(u);
      for (int c = 0; c < ncomps; ++c) {
        if (comps[c].intersects(adj)) {
          merged |= comps[c];
        } else {
          next[nnext++] = comps[c];
        }
      }
      // Components only grow as ops are added, so exceeding max_group_ops
      // cuts the whole include subtree exactly (same cut as rec_endings).
      if (merged.size() <= max_group_ops) {
        next[nnext++] = merged;
        Set64 next_chosen = chosen;
        next_chosen.insert(u);
        visit_rec(rev_topo, m, pos + 1, s, next_chosen, next, nnext, rows,
                  max_ops, max_group_ops, f);
      }
    }
  }

  int n_ = 0;
  std::vector<OpId> ops_;
  std::vector<Set64> succ_;
  std::vector<Set64> pred_;
  std::vector<Set64> adj_;
};

}  // namespace ios
