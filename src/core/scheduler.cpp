#include "core/scheduler.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <numeric>
#include <optional>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "sim/kernel_model.hpp"
#include "util/arena.hpp"
#include "util/thread_pool.hpp"

namespace ios {

const char* ios_variant_name(IosVariant v) {
  switch (v) {
    case IosVariant::kBoth: return "IOS-Both";
    case IosVariant::kParallel: return "IOS-Parallel";
    case IosVariant::kMerge: return "IOS-Merge";
  }
  return "?";
}

const char* search_engine_name(SearchEngine e) {
  switch (e) {
    case SearchEngine::kAuto: return "auto";
    case SearchEngine::kSerial: return "serial";
    case SearchEngine::kWave: return "wave";
    case SearchEngine::kWaveLegacy: return "wave-legacy";
  }
  return "?";
}

const char* prune_mode_name(PruneMode m) {
  switch (m) {
    case PruneMode::kExact: return "exact";
    case PruneMode::kDominance: return "dominance";
    case PruneMode::kBeam: return "beam";
  }
  return "?";
}

void apply_prune_spec(SchedulerOptions& options, const std::string& spec) {
  if (spec == "exact") {
    options.prune = PruneMode::kExact;
    return;
  }
  if (spec == "dominance") {
    options.prune = PruneMode::kDominance;
    return;
  }
  if (spec == "beam") {  // bare "beam" keeps the default width
    options.prune = PruneMode::kBeam;
    return;
  }
  if (spec.rfind("beam:", 0) == 0) {
    const std::string width = spec.substr(5);
    std::size_t pos = 0;
    int w = 0;
    try {
      w = std::stoi(width, &pos);
    } catch (const std::exception&) {
      pos = 0;
    }
    if (pos != width.size() || w < 1) {
      throw std::invalid_argument("invalid beam width '" + width +
                                  "' (expected an integer >= 1)");
    }
    options.prune = PruneMode::kBeam;
    options.beam_width = w;
    return;
  }
  throw std::invalid_argument("unknown prune spec '" + spec +
                              "' (expected exact, dominance, or beam:<width>)");
}

void SchedulerOptions::validate() const {
  if (pruning.r < 1 || pruning.s < 1) {
    throw std::invalid_argument("pruning parameters must be >= 1");
  }
  if (beam_width < 1) {
    throw std::invalid_argument("beam_width must be >= 1");
  }
  if ((engine == SearchEngine::kWave || engine == SearchEngine::kWaveLegacy) &&
      !memoize) {
    throw std::invalid_argument(
        "the wave engines memoize by construction; use engine=kSerial for "
        "the memoize=false ablation");
  }
  if (prune != PruneMode::kExact) {
    if (!memoize) {
      throw std::invalid_argument(
          "pruned search modes require memoization (the bounds are relaxed "
          "over the memoized state graph)");
    }
    if (engine == SearchEngine::kSerial || engine == SearchEngine::kWaveLegacy) {
      throw std::invalid_argument(
          "pruned search modes require the wave engine (engine=kAuto or "
          "kWave)");
    }
  }
}

IosScheduler::IosScheduler(CostModel& cost, SchedulerOptions options)
    : cost_(cost), options_(options) {
  options_.validate();
  if (options_.cross_block_reuse && cost_.protocol().noise_frac > 0) {
    throw std::invalid_argument(
        "cross-block reuse requires a noise-free protocol: noisy "
        "measurements are seeded per op-id stage fingerprint, so replaying "
        "another block's stage layout would change the schedules found");
  }
}

SearchEngine IosScheduler::resolved_engine() const {
  if (options_.engine != SearchEngine::kAuto) return options_.engine;
  if (!options_.memoize) return SearchEngine::kSerial;
  // Pruned modes exist only in the wave engine.
  if (options_.prune != PruneMode::kExact) return SearchEngine::kWave;
  // A single-worker wave search pays the level machinery (and its
  // O(transitions) transition records) for zero parallelism; the recursive
  // engine is the better single-threaded solver. The schedule is identical
  // either way.
  const int workers = options_.num_threads > 0 ? options_.num_threads
                                               : ThreadPool::hardware_threads();
  return workers > 1 ? SearchEngine::kWave : SearchEngine::kSerial;
}

Stage IosScheduler::concurrent_stage(const BlockDag& dag,
                                     const std::vector<Set64>& comps) {
  Stage stage;
  stage.strategy = StageStrategy::kConcurrent;
  for (Set64 comp : comps) {
    stage.groups.push_back(Group{dag.to_ops(comp)});
  }
  return stage;
}

Stage IosScheduler::build_stage(const BlockDag& dag, Set64 ending,
                                StageBuild build) const {
  Stage stage;
  switch (build) {
    case StageBuild::kConcurrentGroups:
      return concurrent_stage(dag, dag.components(ending));
    case StageBuild::kMergeSingle:
      stage.strategy = StageStrategy::kMerge;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
    case StageBuild::kSequentialSingle:
      stage.strategy = StageStrategy::kConcurrent;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
  }
  return stage;
}

IosScheduler::EndingEval IosScheduler::compute_ending(const BlockDag& dag,
                                                      Set64 ending) const {
  EndingEval eval;
  // Pruning strategy P(r, s): group sizes were already bounded by the
  // enumeration; the group-count bound s is checked here. The components
  // double as the concurrent stage's groups below.
  const std::vector<Set64> comps = dag.components(ending);
  if (!options_.pruning.unrestricted() &&
      static_cast<int>(comps.size()) > options_.pruning.s) {
    eval.pruned = true;
    return eval;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<OpId> ops = dag.to_ops(ending);

  double l_concurrent = kInf;
  if (options_.variant != IosVariant::kMerge) {
    l_concurrent = cost_.measure(concurrent_stage(dag, comps));
  }

  double l_merge = kInf;
  if (options_.variant != IosVariant::kParallel && ops.size() >= 2 &&
      analyze_merge(cost_.graph(), ops)) {
    l_merge =
        cost_.measure(build_stage(dag, ending, StageBuild::kMergeSingle));
  }

  if (options_.variant == IosVariant::kMerge && !std::isfinite(l_merge)) {
    // IOS-Merge fallback: execute the ending's operators sequentially on a
    // single stream (so IOS-Merge degenerates to the sequential schedule on
    // networks with nothing to merge, as reported in Section 6.1).
    eval.build = StageBuild::kSequentialSingle;
    eval.latency_us =
        cost_.measure(build_stage(dag, ending, StageBuild::kSequentialSingle));
  } else if (l_concurrent <= l_merge) {
    eval.build = StageBuild::kConcurrentGroups;
    eval.latency_us = l_concurrent;
  } else {
    eval.build = StageBuild::kMergeSingle;
    eval.latency_us = l_merge;
  }
  return eval;
}

IosScheduler::EndingEval IosScheduler::compute_ending_grouped(
    const BlockDag& dag, Set64 ending, const Set64* comps, int ncomps) const {
  EndingEval eval;
  if (!options_.pruning.unrestricted() && ncomps > options_.pruning.s) {
    eval.pruned = true;
    return eval;
  }

  // dag.components orders groups by smallest member; the enumerator hands
  // them over in merge order. Sort a local copy so the derived fingerprints
  // (hence the latency-cache keys and any noise streams seeded by them)
  // match compute_ending bit for bit.
  Set64 sorted[64];
  std::copy(comps, comps + ncomps, sorted);
  std::sort(sorted, sorted + ncomps, [](Set64 a, Set64 b) {
    return std::countr_zero(a.bits()) < std::countr_zero(b.bits());
  });

  // Tags and separators mirror stage_fingerprint / fingerprint_groups;
  // measure_keyed asserts the keys agree with the materialized stage.
  constexpr std::uint64_t kConcurrentTag = 0x51edu;
  constexpr std::uint64_t kMergeTag = 0x9e37u;
  const auto group_fp = [&dag](std::uint64_t h, Set64 comp) {
    h = hash_combine(h, 0x60ull);
    for (int i : comp) {
      h = hash_combine(h, static_cast<std::uint64_t>(dag.op_of(i)));
    }
    return hash_combine(h, 0xabcdefull);
  };

  constexpr double kInf = std::numeric_limits<double>::infinity();
  double l_concurrent = kInf;
  if (options_.variant != IosVariant::kMerge) {
    std::uint64_t fp = kConcurrentTag;
    for (int c = 0; c < ncomps; ++c) fp = group_fp(fp, sorted[c]);
    l_concurrent = cost_.measure_keyed(fp, [&] {
      return concurrent_stage(dag,
                              std::vector<Set64>(sorted, sorted + ncomps));
    });
  }

  double l_merge = kInf;
  if (options_.variant != IosVariant::kParallel && ending.size() >= 2) {
    // Cheap structural pre-check before the full analyze_merge walk: every
    // op must be a single-input convolution for a merge to be possible, and
    // almost every ending fails on its first op — without ever building the
    // op-id vector.
    const Graph& g = cost_.graph();
    bool maybe_merge = true;
    for (int i : ending) {
      const Op& op = g.op(dag.op_of(i));
      if (op.kind != OpKind::kConv2d || op.inputs.size() != 1) {
        maybe_merge = false;
        break;
      }
    }
    if (maybe_merge) {
      const std::vector<OpId> ops = dag.to_ops(ending);
      if (analyze_merge(g, ops)) {
        l_merge = cost_.measure_keyed(group_fp(kMergeTag, ending), [&] {
          return build_stage(dag, ending, StageBuild::kMergeSingle);
        });
      }
    }
  }

  if (options_.variant == IosVariant::kMerge && !std::isfinite(l_merge)) {
    // IOS-Merge fallback, as in compute_ending: one sequential stream.
    eval.build = StageBuild::kSequentialSingle;
    eval.latency_us =
        cost_.measure_keyed(group_fp(kConcurrentTag, ending), [&] {
          return build_stage(dag, ending, StageBuild::kSequentialSingle);
        });
  } else if (l_concurrent <= l_merge) {
    eval.build = StageBuild::kConcurrentGroups;
    eval.latency_us = l_concurrent;
  } else {
    eval.build = StageBuild::kMergeSingle;
    eval.latency_us = l_merge;
  }
  return eval;
}

IosScheduler::EndingEval IosScheduler::evaluate_ending(BlockContext& ctx,
                                                       Set64 ending,
                                                       SchedulerStats* stats) {
  if (const EndingEval* hit = ctx.ending_cache.find(ending.bits())) {
    // Attribute the repeat visit by its verdict: a cached *pruned* ending is
    // another pruned (S, S') pair, not a productive cache hit — fig9's
    // pruning statistics count every cut transition.
    if (stats) {
      if (hit->pruned) {
        ++stats->pruned_endings;
      } else {
        ++stats->cache_hits;
      }
    }
    return *hit;
  }

  const EndingEval eval = compute_ending(ctx.dag, ending);
  if (stats && eval.pruned) ++stats->pruned_endings;
  ctx.ending_cache.try_emplace(ending.bits(), eval);
  return eval;
}

double IosScheduler::solve(BlockContext& ctx, Set64 s, SchedulerStats* stats) {
  if (s.empty()) return 0;  // cost[emptyset] = 0
  if (options_.memoize) {
    if (const Entry* hit = ctx.memo.find(s.bits())) return hit->cost;
  }
  if (stats) ++stats->states;

  Entry best;
  best.cost = std::numeric_limits<double>::infinity();
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  ctx.dag.for_each_ending(s, max_ops, max_group_ops, [&](Set64 ending) {
    // By value: the recursion below inserts into the flat ending cache,
    // which invalidates pointers into it.
    const EndingEval eval = evaluate_ending(ctx, ending, stats);
    if (eval.pruned) return;
    if (stats) ++stats->transitions;
    const double total = solve(ctx, s - ending, stats) + eval.latency_us;
    if (total < best.cost) {
      best.cost = total;
      best.choice = ending.bits();
      best.build = eval.build;
    }
  });

  if (!std::isfinite(best.cost)) {
    throw std::logic_error("no feasible ending found for a non-empty state");
  }
  ctx.memo.insert_or_assign(s.bits(), best);
  return best.cost;
}

// ---------------------------------------------------------------------------
// Wave engines
// ---------------------------------------------------------------------------

/// Lock-striped ending cache shared by the worker threads of one block's
/// wave search, split into two generations. Fresh entries live in the
/// locked stripes; at each of the wave engine's serial points drain()
/// migrates them into `frozen`, a map that is never written during a
/// parallel phase and is therefore read without any lock. Most repeat
/// lookups are cross-level — an ending evaluated once recurs under most
/// states of every later wave — so after the first level the hot hit path
/// takes no stripe lock at all. get_or_eval holds a stripe lock only
/// around the fresh-table lookup/insert, never across the measurement, so
/// stripes stay available while stages simulate; two threads racing on the
/// same uncached ending both evaluate it (deterministically) and the first
/// insert wins. The legacy solver never drains, so its lookups all take
/// the locked striped path — the PR 4 baseline behavior.
struct IosScheduler::EndingStripes {
  static constexpr std::size_t kStripes = 32;  // power of two

  struct Stripe {
    std::mutex mu;
    FlatMap64<EndingEval> map;
  };
  std::array<Stripe, kStripes> stripes;
  /// Earlier-wave entries, written only by drain() at serial points.
  FlatMap64<EndingEval> frozen;
  /// False when the whole search runs on the calling thread — the stripes
  /// are then only ever touched sequentially and the (per-lookup) lock cost
  /// would be pure overhead on the serial fast path.
  bool locked = true;

  explicit EndingStripes(bool locked_) : locked(locked_) {}

  Stripe& stripe_for(std::uint64_t key) {
    return stripes[shard_index(key, kStripes)];
  }

  EndingEval get_or_eval(const IosScheduler& sched, const BlockDag& dag,
                         Set64 ending) {
    if (const EndingEval* hit = frozen.find(ending.bits())) return *hit;
    Stripe& stripe = stripe_for(ending.bits());
    if (locked) {
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (const EndingEval* hit = stripe.map.find(ending.bits())) {
          return *hit;
        }
      }
      const EndingEval eval = sched.compute_ending(dag, ending);
      std::lock_guard<std::mutex> lock(stripe.mu);
      return *stripe.map.try_emplace(ending.bits(), eval).first;
    }
    if (const EndingEval* hit = stripe.map.find(ending.bits())) return *hit;
    return *stripe.map
                .try_emplace(ending.bits(), sched.compute_ending(dag, ending))
                .first;
  }

  /// get_or_eval for callers that already hold the ending's components
  /// (the wave discovery pass): misses evaluate via compute_ending_grouped,
  /// skipping the flood fill and the stage materialization. Cached results
  /// are identical either way.
  EndingEval get_or_eval_grouped(const IosScheduler& sched,
                                 const BlockDag& dag, Set64 ending,
                                 const Set64* comps, int ncomps) {
    if (const EndingEval* hit = frozen.find(ending.bits())) return *hit;
    Stripe& stripe = stripe_for(ending.bits());
    if (locked) {
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (const EndingEval* hit = stripe.map.find(ending.bits())) {
          return *hit;
        }
      }
      const EndingEval eval =
          sched.compute_ending_grouped(dag, ending, comps, ncomps);
      std::lock_guard<std::mutex> lock(stripe.mu);
      return *stripe.map.try_emplace(ending.bits(), eval).first;
    }
    if (const EndingEval* hit = stripe.map.find(ending.bits())) return *hit;
    return *stripe.map
                .try_emplace(ending.bits(), sched.compute_ending_grouped(
                                                dag, ending, comps, ncomps))
                .first;
  }

  /// Lock-free lookup for after discovery, when the stripes are quiescent
  /// (no writer runs concurrently with the cost pass). The key must have
  /// been evaluated; returns null otherwise.
  const EndingEval* find_frozen(std::uint64_t key) const {
    if (const EndingEval* hit = frozen.find(key)) return hit;
    return stripes[shard_index(key, kStripes)].map.find(key);
  }

  /// Serially migrates every fresh striped entry into the frozen map. Only
  /// the wave engine calls this, between its parallel phases; after the
  /// call, lookups of everything evaluated so far are lock-free. Because
  /// drains happen only at serial points, the frozen map's contents after
  /// each level are deterministic regardless of thread count.
  void drain() {
    std::size_t added = 0;
    for (const Stripe& stripe : stripes) added += stripe.map.size();
    if (added == 0) return;
    frozen.reserve(frozen.size() + added);
    for (Stripe& stripe : stripes) {
      if (stripe.map.empty()) continue;
      stripe.map.for_each([this](std::uint64_t key, const EndingEval& eval) {
        frozen.try_emplace(key, eval);
      });
      stripe.map.clear_retain();
    }
  }

  /// Distinct non-pruned endings evaluated (single-threaded use only).
  std::int64_t distinct_unpruned() const {
    std::int64_t n = 0;
    const auto count = [&n](std::uint64_t, const EndingEval& eval) {
      if (!eval.pruned) ++n;
    };
    frozen.for_each(count);
    for (const Stripe& stripe : stripes) {
      stripe.map.for_each(count);
    }
    return n;
  }
};

void IosScheduler::solve_wave_legacy(BlockContext& ctx, SchedulerStats* stats) {
  const BlockDag& dag = ctx.dag;
  const int n = dag.size();
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  const int threads = options_.num_threads;
  const int workers =
      threads <= 0 ? ThreadPool::hardware_threads() : threads;

  EndingStripes endings(/*locked=*/workers > 1);
  // Reachable DP states bucketed by popcount, each with its surviving
  // (non-pruned) transitions in enumeration order. A state's endings only
  // lead to strictly smaller states, so popcount levels are a topological
  // order of the DP dependency graph in both directions. Recording each
  // transition's evaluation during discovery lets the cost pass replay it
  // without re-running the (expensive) ending enumeration or re-probing the
  // (large) ending cache.
  struct Transition {
    std::uint64_t ending = 0;
    double latency_us = 0;
    StageBuild build = StageBuild::kConcurrentGroups;
  };
  struct WaveLevel {
    std::vector<std::uint64_t> states;
    std::vector<std::vector<Transition>> transitions;  // per state
  };
  std::vector<WaveLevel> levels(static_cast<std::size_t>(n) + 1);
  levels[static_cast<std::size_t>(n)].states.push_back(dag.all().bits());
  FlatSet64 seen;
  seen.insert(dag.all().bits());

  std::int64_t states = 0;
  std::int64_t enumerated = 0;     // (S, S') pairs visited, pruned included
  std::int64_t pruned_calls = 0;   // of which pruned

  // ---- Discovery pass (popcount descending) ----------------------------
  // Finds every state the pruned transition relation reaches from the full
  // set, and evaluates every visited ending — all measurements happen here,
  // fanned out across the wave's states. Successor dedup is merged serially
  // between waves, so the level contents (and all statistics) are
  // deterministic regardless of thread count.
  for (int p = n; p >= 1; --p) {
    WaveLevel& wave = levels[static_cast<std::size_t>(p)];
    if (wave.states.empty()) continue;
    states += static_cast<std::int64_t>(wave.states.size());
    wave.transitions.resize(wave.states.size());
    std::vector<std::int64_t> pruned_per_state(wave.states.size(), 0);
    parallel_for(wave.states.size(), threads, [&](std::size_t i) {
      const Set64 s{wave.states[i]};
      std::vector<Transition>& out = wave.transitions[i];
      dag.for_each_ending(s, max_ops, max_group_ops, [&](Set64 ending) {
        const EndingEval eval = endings.get_or_eval(*this, dag, ending);
        if (eval.pruned) {
          ++pruned_per_state[i];
          return;
        }
        out.push_back({ending.bits(), eval.latency_us, eval.build});
      });
    });
    for (std::size_t i = 0; i < wave.states.size(); ++i) {
      enumerated += pruned_per_state[i] +
                    static_cast<std::int64_t>(wave.transitions[i].size());
      pruned_calls += pruned_per_state[i];
      for (const Transition& t : wave.transitions[i]) {
        const std::uint64_t sub = wave.states[i] & ~t.ending;
        if (sub != 0 && seen.insert(sub)) {
          levels[static_cast<std::size_t>(std::popcount(sub))]
              .states.push_back(sub);
        }
      }
    }
  }

  // ---- Cost pass (popcount ascending) ----------------------------------
  // Every transition is recorded with its evaluation now, so this pass is
  // measurement-free and cache-probe-free: each state replays its recorded
  // transitions, reads sub-state costs from strictly lower levels (frozen
  // during the wave), and takes the argmin in enumeration order — the same
  // tie-breaking as the recursive engine, hence bit-identical choices.
  ctx.memo.reserve(static_cast<std::size_t>(states));
  for (int p = 1; p <= n; ++p) {
    WaveLevel& wave = levels[static_cast<std::size_t>(p)];
    if (wave.states.empty()) continue;
    std::vector<Entry> entries(wave.states.size());
    parallel_for(wave.states.size(), threads, [&](std::size_t i) {
      const std::uint64_t s = wave.states[i];
      Entry best;
      best.cost = std::numeric_limits<double>::infinity();
      for (const Transition& t : wave.transitions[i]) {
        const std::uint64_t sub = s & ~t.ending;
        double total = t.latency_us;
        if (sub != 0) total += ctx.memo.find(sub)->cost;
        if (total < best.cost) {
          best.cost = total;
          best.choice = t.ending;
          best.build = t.build;
        }
      }
      if (!std::isfinite(best.cost)) {
        throw std::logic_error(
            "no feasible ending found for a non-empty state");
      }
      entries[i] = best;
    });
    for (std::size_t i = 0; i < wave.states.size(); ++i) {
      ctx.memo.try_emplace(wave.states[i], entries[i]);
    }
    // The recorded transitions are dead once the level's costs are in the
    // memo.
    std::vector<std::vector<Transition>>().swap(wave.transitions);
  }

  if (stats) {
    // Identical to the serial engine's counting by construction: the same
    // multiset of (S, S') pairs is visited exactly once per solved state,
    // and repeat ending lookups split into cache_hits / pruned_endings by
    // verdict — computed analytically here because the racing stripe
    // lookups must not influence the (deterministic) statistics.
    const std::int64_t transitions = enumerated - pruned_calls;
    stats->states += states;
    stats->transitions += transitions;
    stats->pruned_endings += pruned_calls;
    stats->cache_hits += transitions - endings.distinct_unpruned();
  }
}

namespace {

/// A recorded DP transition of the arena wave engine: 16 bytes, down from
/// the legacy engine's 24 (the stage build is not stored — the cost pass
/// re-reads it from the frozen ending stripes for the one argmin choice per
/// state). Transitions live in exact-fit arena spans, so there is no
/// per-state vector header or capacity slack either; together that roughly
/// halves the engine's peak memory, which the bench's RSS gate pins.
struct WaveTransition {
  std::uint64_t ending = 0;
  double latency_us = 0;
};

/// An admissible lower bound ("floor") on the remaining-schedule latency of
/// a DP state, derived from the simulator's own resource model. For any
/// stage partition of the op set S the simulated latency is at least
///  * compute:  sum over ops of flops/efficiency, divided by the device's
///    best-case throughput peak * effc(slots) — the simulator allocates at
///    most `slots` warps, and its per-epoch aggregate compute rate never
///    exceeds that ceiling (shares sum to one; operator merge only adds
///    flops-equivalents, since merged kernels pad to the max kernel size);
///  * memory:   weights + outputs only, at bw * effm(slots) — merged
///    kernels deduplicate the shared input read, so input bytes are not a
///    schedule-independent cost, while every schedule moves all weights
///    and all outputs at least once (contention only slows this further);
///  * structure: every stage of m ops issues m kernels spread over at most
///    s streams (a merged stage has m <= s by the group-count bound), each
///    kernel costing kernel_launch_us of serialized stream time.
/// The three are ceilings on different resources that overlap in time, so
/// they combine by max, never sum. Stage/stream sync overhead is charged
/// only to multi-stream stages and is therefore not schedule-independent —
/// it is deliberately left out. Under measurement noise every sample is at
/// least (1 - noise_frac) times the true latency, so the floors are
/// pre-scaled by that factor to stay admissible in the measured metric.
struct PruneFloor {
  double cost_c[64] = {};    ///< per-op compute floor, us (noise-scaled)
  double cost_m[64] = {};    ///< per-op memory floor, us (noise-scaled)
  double tight[64] = {};     ///< per-kernel exec floor, us: the simulator's
                             ///< rate for op i's own kernel never exceeds the
                             ///< device rate at saturation(min(warps_i,
                             ///< slots)) — eff(T) * a / T is maximized at
                             ///< T = a — so one launch of that kernel takes
                             ///< at least max(C_i, M_i) at its own-demand
                             ///< efficiency. Exact for a single-op stage
                             ///< (contention = 1, share = 1, no sync). Only
                             ///< valid for builds that launch op kernels
                             ///< verbatim, i.e. never for a merged stage.
  std::uint64_t merge_mask[64] = {};  ///< ops whose kernels could stack with
                                      ///< op i (conservative superset of
                                      ///< analyze_merge: conv2d, one input,
                                      ///< same producer). An ending can merge
                                      ///< only if it is a subset of its first
                                      ///< op's mask; all-zero when the
                                      ///< variant never merges.
  double launch_per_op = 0;  ///< structural floor per op, us (noise-scaled)
  double launch_single = 0;  ///< floor on any one stage's wall, us: the
                             ///< executor starts a stage's first kernel only
                             ///< after a full kernel_launch_us, so no stage
                             ///< finishes sooner (noise-scaled)

  double eval(Set64 s) const {
    double c = 0;
    double m = 0;
    for (int i : s) {
      c += cost_c[i];
      m += cost_m[i];
    }
    const double structural = launch_per_op * static_cast<double>(s.size());
    return std::max(structural, std::max(c, m));
  }

};

PruneFloor make_prune_floor(const BlockDag& dag, const CostModel& cost,
                            const PruningStrategy& pruning,
                            IosVariant variant) {
  const Graph& g = cost.graph();
  const DeviceSpec& dev = cost.executor().device();
  // saturation(slots, slots, frac) — the simulator's efficiency ceiling
  // (its warp allocation never exceeds the slot count).
  const double eff_c = 1.0 - std::exp(-1.0 / dev.compute_sat_frac);
  const double eff_m = 1.0 - std::exp(-1.0 / dev.memory_sat_frac);
  const double slots = static_cast<double>(dev.total_warp_slots());
  const double peak = dev.peak_flops_per_us();
  const double bw = dev.bytes_per_us();
  const double noise =
      std::max(0.0, 1.0 - cost.protocol().noise_frac);

  PruneFloor floor;
  for (int i = 0; i < dag.size(); ++i) {
    const OpId id = dag.op_of(i);
    const KernelDesc k = kernel_for_op(g, id, cost.executor().kernel_params());
    if (k.flops > 0 && k.efficiency > 0) {
      floor.cost_c[i] = noise * (k.flops / k.efficiency) / (peak * eff_c);
    }
    const double bytes =
        static_cast<double>(g.weight_bytes(id) + g.output_bytes(id));
    floor.cost_m[i] = noise * bytes / (bw * eff_m);
    // Own-demand efficiency: allocation never exceeds min(warps, slots), and
    // eff(T) * alloc / T falls as T grows past alloc, so the kernel's rate is
    // capped by the device rate at its own saturation point. Contention and
    // sharing only slow it further.
    const double own = std::min(k.warps, slots);
    if (own > 0 && slots > 0) {
      const double ec = 1.0 - std::exp(-own / (slots * dev.compute_sat_frac));
      const double em = 1.0 - std::exp(-own / (slots * dev.memory_sat_frac));
      double tc = 0;
      if (k.flops > 0 && k.efficiency > 0 && ec > 0) {
        tc = (k.flops / k.efficiency) / (peak * ec);
      }
      const double tm = em > 0 ? k.bytes / (bw * em) : 0;
      floor.tight[i] = noise * std::max(tc, tm);
    }
  }
  if (variant != IosVariant::kParallel) {
    // Group stackable convolutions by their shared input producer; a
    // superset of analyze_merge's test (stride/padding/extent checks are
    // skipped), which only makes the floor more conservative.
    FlatMap64<std::uint64_t> groups;
    for (int i = 0; i < dag.size(); ++i) {
      const Op& op = g.op(dag.op_of(i));
      if (op.kind != OpKind::kConv2d || op.inputs.size() != 1) continue;
      const auto [slot, inserted] =
          groups.try_emplace(static_cast<std::uint64_t>(op.inputs[0]), 0);
      *slot |= std::uint64_t{1} << i;
    }
    for (int i = 0; i < dag.size(); ++i) {
      const Op& op = g.op(dag.op_of(i));
      if (op.kind != OpKind::kConv2d || op.inputs.size() != 1) continue;
      const std::uint64_t* mask =
          groups.find(static_cast<std::uint64_t>(op.inputs[0]));
      floor.merge_mask[i] = mask != nullptr ? *mask : 0;
    }
  }
  const double s_eff =
      pruning.unrestricted() ? 64.0 : static_cast<double>(pruning.s);
  floor.launch_per_op = noise * dev.kernel_launch_us / s_eff;
  floor.launch_single = noise * dev.kernel_launch_us;
  return floor;
}

/// One structural scan of an ending, fused for the dominance mode's
/// discovery pass: the P(r, s) group-count verdict (compute_ending's prune
/// test — returns true when the ending is pruned) and, when it survives,
/// the admissible stage floor written to *lb. Components come straight
/// from the enumerator (visit_endings maintains them for its group-size
/// cut) — no allocation, no flood fill, and no stage build, where
/// compute_ending's component-list materialization would dominate.
///
/// The floor sharpens PruneFloor::eval(ending) with a per-build stage term.
/// A concurrent stage runs each component on its own stream: k kernels
/// back-to-back, each paying a full launch gap plus at least its own-
/// saturation exec time (PruneFloor::tight) — exact for single-op stages. A
/// merged stage launches one kernel whose padded flops and moved bytes
/// include every op's sums; merging is structurally impossible unless the
/// whole ending stacks over one shared input (merge_mask), so the tight
/// per-kernel term applies whenever it is not. A sequential stream is a
/// superset of the concurrent per-stream bound. Near-exact for the small
/// stages that dominate deep states, which is what makes the lazy skip
/// test bite.
bool scan_ending(const PruningStrategy& pruning, const PruneFloor& floor,
                 Set64 ending, const Set64* comps, int ncomps, double* lb) {
  const int cap = pruning.unrestricted() ? 64 : pruning.s;
  if (ncomps > cap) return true;
  double conc = 0;    // slowest concurrent stream's floor
  double c_all = 0;   // aggregate compute floor of the whole ending
  double m_all = 0;   // aggregate memory floor of the whole ending
  int ops_total = 0;
  for (int ci = 0; ci < ncomps; ++ci) {
    double c = 0;
    double m = 0;
    double t = 0;
    int k = 0;
    for (int i : comps[ci]) {
      c += floor.cost_c[i];
      m += floor.cost_m[i];
      t += floor.tight[i];
      ++k;
    }
    c_all += c;
    m_all += m;
    ops_total += k;
    const double stream_floor =
        std::max(std::max(c, m),
                 static_cast<double>(k) * floor.launch_single + t);
    conc = std::max(conc, stream_floor);
  }
  double stage = conc;
  const std::uint64_t e = ending.bits();
  const int first = std::countr_zero(e);
  if (ops_total >= 2 && first < 64 &&
      (e & ~floor.merge_mask[first]) == 0) {
    // The ending might merge into one kernel: one launch, aggregate sums at
    // the global efficiency ceiling. The cheaper possible build bounds the
    // stage from below.
    stage = std::min(stage, floor.launch_single + std::max(c_all, m_all));
  }
  const double structural =
      floor.launch_per_op * static_cast<double>(ops_total);
  *lb = std::max(std::max(structural, stage), std::max(c_all, m_all));
  return false;
}

/// Process-wide cache of solved block stage layouts, keyed by the canonical
/// block descriptor (IosScheduler::canonical_block_key). Values are the
/// chosen stages first-to-last as (ending mask, stage build) pairs in block-
/// local indices, so a hit replays the schedule onto any structurally
/// identical block without running the DP. Insert-only, first writer wins.
struct BlockTemplateCache {
  using Templates = std::vector<std::pair<std::uint64_t, int>>;

  std::optional<Templates> get(const std::string& key) const {
    std::lock_guard<std::mutex> lock(mu);
    const auto it = map.find(key);
    if (it == map.end()) return std::nullopt;
    return it->second;
  }

  void put(const std::string& key, Templates value) {
    std::lock_guard<std::mutex> lock(mu);
    map.try_emplace(key, std::move(value));
  }

  mutable std::mutex mu;
  std::unordered_map<std::string, Templates> map;
};

BlockTemplateCache& block_template_cache() {
  static BlockTemplateCache cache;
  return cache;
}

/// Chunk-claiming fan-out for the wave engine's level loops. Semantically
/// parallel_for_indexed, but workers grab contiguous index chunks from one
/// atomic cursor and report completion once per chunk, so the done-counting
/// mutex is touched O(n / chunk) times instead of O(n) — on a 100k-state
/// level that is the difference between 100k lock round-trips and ~32.
/// Small levels (`n` below `serial_below`) run inline on the caller: the
/// fixed cost of queueing pool helpers exceeds the whole level's work on
/// the many tiny levels of shallow blocks. Iterations write per-index
/// state only and the caller merges serially, so results are deterministic
/// regardless of chunking or thread count.
void wave_level_for(std::size_t n, int num_threads, std::size_t serial_below,
                    const std::function<void(int, std::size_t)>& f) {
  const int want =
      num_threads <= 0 ? ThreadPool::hardware_threads() : num_threads;
  if (n < serial_below || n <= 1 || want <= 1) {
    for (std::size_t i = 0; i < n; ++i) f(0, i);
    return;
  }

  // Aim for several chunks per worker so stragglers rebalance, while
  // keeping chunks big enough that claiming stays off the hot path.
  const std::size_t chunk =
      std::max<std::size_t>(1, n / (static_cast<std::size_t>(want) * 8));

  struct State {
    std::size_t n = 0;
    std::size_t chunk = 1;
    std::function<void(int, std::size_t)> f;
    std::atomic<std::size_t> next{0};
    std::atomic<int> next_slot{0};
    std::mutex mu;
    std::condition_variable cv;
    std::size_t done = 0;
    std::exception_ptr error;
  };
  auto state = std::make_shared<State>();
  state->n = n;
  state->chunk = chunk;
  state->f = f;

  const auto run = [state] {
    const int slot = state->next_slot.fetch_add(1);
    for (;;) {
      const std::size_t begin = state->next.fetch_add(state->chunk);
      if (begin >= state->n) break;
      const std::size_t end = std::min(state->n, begin + state->chunk);
      std::exception_ptr err;
      try {
        for (std::size_t i = begin; i < end; ++i) state->f(slot, i);
      } catch (...) {
        err = std::current_exception();
      }
      std::lock_guard<std::mutex> lock(state->mu);
      if (err && !state->error) state->error = err;
      state->done += end - begin;
      if (state->done == state->n) state->cv.notify_all();
    }
  };

  const std::size_t num_chunks = (n + chunk - 1) / chunk;
  const std::size_t helpers =
      std::min<std::size_t>(static_cast<std::size_t>(want) - 1,
                            num_chunks - 1);
  for (std::size_t h = 0; h < helpers; ++h) {
    // Fire-and-forget, like parallel_for: completion is tracked by
    // state->done, so the caller never blocks on a helper that was queued
    // but never ran.
    shared_thread_pool().submit(run);
  }
  run();

  std::unique_lock<std::mutex> lock(state->mu);
  state->cv.wait(lock, [&] { return state->done == state->n; });
  if (state->error) std::rethrow_exception(state->error);
}

/// Below this many states a level runs on the calling thread (see
/// wave_level_for). Chosen from the paper zoo: inception-style blocks have
/// hundreds of levels of a handful of states each, where pool dispatch
/// dominated the level's own work.
constexpr std::size_t kSerialLevelCutoff = 24;

}  // namespace

double IosScheduler::wave_pass(const BlockDag& dag, EndingStripes& endings,
                               FlatMap64<Entry>& memo, PruneMode mode,
                               int beam_width, SchedulerStats* stats) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const int n = dag.size();
  if (n == 0) return 0;
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  const int threads = options_.num_threads;
  const int workers =
      threads <= 0 ? ThreadPool::hardware_threads() : threads;

  // Reachable DP states bucketed by popcount, each with an exact-fit span of
  // surviving transitions in arena memory (leased per worker, returned when
  // the cost pass has consumed the level). Popcount levels are a topological
  // order of the DP dependency graph in both directions.
  struct Span {
    const WaveTransition* tr = nullptr;
    std::uint32_t count = 0;
  };
  struct WaveLevel {
    std::vector<std::uint64_t> states;
    std::vector<Span> spans;
    std::vector<ArenaPool::Lease> leases;
  };
  std::vector<WaveLevel> levels(static_cast<std::size_t>(n) + 1);
  levels[static_cast<std::size_t>(n)].states.push_back(dag.all().bits());
  FlatSet64 seen;
  seen.insert(dag.all().bits());

  // Bound bookkeeping (beam mode): fcost[S] is the cheapest known prefix
  // cost from the full set down to S, relaxed serially during each level's
  // merge. Since endings strictly shrink states, every transition into S
  // comes from a strictly higher level, so fcost[S] is final before S's
  // level expands. The floor supplies the admissible remainder bound h(S);
  // min over trim points of f + h is the certified lower bound behind
  // latency_gap_bound_us. Dominance mode needs no prefix bookkeeping — its
  // trims are local argmin dominance in the cost pass (see below) and never
  // lose a schedule, so its gap is structurally zero.
  const bool track_bounds = mode == PruneMode::kBeam && stats != nullptr;
  PruneFloor floor;
  FlatMap64<double> fcost;
  if (mode != PruneMode::kExact) {
    floor = make_prune_floor(dag, cost_, options_.pruning, options_.variant);
  }
  if (track_bounds) {
    fcost.try_emplace(dag.all().bits(), 0.0);
  }
  double min_cut = kInf;  // min f + h over trim points; kInf = nothing cut

  // Per-worker scratch for the beam mode's collect-then-select enumeration.
  struct BeamScratch {
    std::vector<std::uint64_t> collected;
    std::vector<std::uint32_t> kept;
  };

  std::int64_t states_expanded = 0;
  std::int64_t enumerated = 0;     // endings visited, pruned included
  std::int64_t pruned_calls = 0;   // of which P(r, s)-pruned
  std::int64_t pruned_states = 0;  // dominance: states with >= 1 trim
  std::int64_t trimmed = 0;        // endings cut unevaluated (beam keep-set
                                   // or dominance argmin bound)
  std::int64_t lazy_evals = 0;     // dominance: cost-pass ending lookups

  std::vector<std::uint64_t> fresh_subs;  // per-level, reused
  PopcountBuckets buckets;

  // ---- Discovery pass (popcount descending) ----------------------------
  // Finds every state the (pruned) transition relation reaches from the
  // full set. Exact and beam modes evaluate every surviving ending here —
  // all their measurements happen in this pass, fanned out across the
  // wave's states. Dominance mode records transitions *structurally* (the
  // P(r, s) verdict is a component count, no simulation needed) and stores
  // each transition's admissible stage floor in the latency slot instead;
  // its measurements happen lazily in the cost pass, where exact sub-costs
  // make the floor a sharp skip test. Successor dedup and all statistics
  // happen in the serial merge between waves, so level contents are
  // deterministic regardless of thread count.
  for (int p = n; p >= 1; --p) {
    WaveLevel& wave = levels[static_cast<std::size_t>(p)];
    if (wave.states.empty()) continue;
    const std::size_t cnt = wave.states.size();

    wave.spans.assign(cnt, Span{});
    const int lease_n = std::max(
        1, std::min(workers, static_cast<int>(cnt)));
    wave.leases.reserve(static_cast<std::size_t>(lease_n));
    for (int i = 0; i < lease_n; ++i) {
      wave.leases.push_back(shared_arena_pool().acquire());
    }
    std::vector<BeamScratch> scratch(
        mode == PruneMode::kBeam ? static_cast<std::size_t>(lease_n) : 0);
    std::vector<std::int32_t> pruned_per_state(cnt, 0);
    std::vector<std::int32_t> trimmed_per_state(
        mode == PruneMode::kBeam ? cnt : 0, 0);

    wave_level_for(cnt, threads, kSerialLevelCutoff,
                   [&](int slot, std::size_t i) {
      const Set64 s{wave.states[i]};
      Arena& arena = *wave.leases[static_cast<std::size_t>(slot)];
      ArenaVec<WaveTransition> out(arena);

      if (mode == PruneMode::kBeam) {
        // Collect every ending without evaluating, then keep the beam: the
        // `beam_width` best under (popcount desc, enumeration index asc) —
        // bigger endings mean fewer stages — plus the safety valve, the
        // singleton of the state's topologically last op. The valve is
        // always enumerated (excluding everything else is legal), never
        // P-pruned (one group of one op), and always feasible, so every
        // state keeps at least one transition and the DP always completes.
        // The keep set is a prefix of one fixed total order, so it is
        // nested across widths — results are monotone in beam_width.
        BeamScratch& sc = scratch[static_cast<std::size_t>(slot)];
        sc.collected.clear();
        dag.visit_endings(s, max_ops, max_group_ops,
                          [&sc](Set64 ending, const Set64*, int) {
                            sc.collected.push_back(ending.bits());
                          });
        const std::uint32_t total =
            static_cast<std::uint32_t>(sc.collected.size());
        const auto eval_one = [&](std::uint64_t bits) {
          const EndingEval eval = endings.get_or_eval(*this, dag, Set64{bits});
          if (eval.pruned) {
            ++pruned_per_state[i];
            return;
          }
          out.push_back({bits, eval.latency_us});
        };
        if (total <= static_cast<std::uint32_t>(beam_width)) {
          for (const std::uint64_t bits : sc.collected) eval_one(bits);
        } else {
          sc.kept.resize(total);
          std::iota(sc.kept.begin(), sc.kept.end(), 0u);
          const std::vector<std::uint64_t>& col = sc.collected;
          const auto better = [&col](std::uint32_t a, std::uint32_t b) {
            const int pa = std::popcount(col[a]);
            const int pb = std::popcount(col[b]);
            if (pa != pb) return pa > pb;
            return a < b;
          };
          std::nth_element(sc.kept.begin(),
                           sc.kept.begin() + beam_width, sc.kept.end(),
                           better);
          sc.kept.resize(static_cast<std::size_t>(beam_width));
          const int top = 63 - std::countl_zero(s.bits());
          const std::uint64_t valve = std::uint64_t{1} << top;
          bool have_valve = false;
          for (const std::uint32_t j : sc.kept) {
            if (col[j] == valve) {
              have_valve = true;
              break;
            }
          }
          if (!have_valve) {
            for (std::uint32_t j = 0; j < total; ++j) {
              if (col[j] == valve) {
                sc.kept.push_back(j);
                break;
              }
            }
          }
          // Ascending collection index restores enumeration order, keeping
          // the cost pass's argmin tie-break identical to the serial
          // engine's.
          std::sort(sc.kept.begin(), sc.kept.end());
          trimmed_per_state[i] =
              static_cast<std::int32_t>(total - sc.kept.size());
          for (const std::uint32_t j : sc.kept) eval_one(col[j]);
        }
      } else if (mode == PruneMode::kDominance) {
        // Structural discovery: no stage is simulated here. Each surviving
        // transition records its admissible stage floor — the larger of the
        // resource floor and the single launch latency every stage pays —
        // in the latency slot; the cost pass reads it back as the skip
        // test's lower bound and evaluates lazily.
        dag.visit_endings(
            s, max_ops, max_group_ops,
            [&](Set64 ending, const Set64* comps, int ncomps) {
              double lb = 0;
              if (scan_ending(options_.pruning, floor, ending, comps, ncomps,
                              &lb)) {
                ++pruned_per_state[i];
                return;
              }
              out.push_back({ending.bits(), lb});
            });
      } else {
        dag.visit_endings(
            s, max_ops, max_group_ops,
            [&](Set64 ending, const Set64* comps, int ncomps) {
              const EndingEval eval = endings.get_or_eval_grouped(
                  *this, dag, ending, comps, ncomps);
              if (eval.pruned) {
                ++pruned_per_state[i];
                return;
              }
              out.push_back({ending.bits(), eval.latency_us});
            });
      }

      out.shrink_to_fit();
      wave.spans[i] = Span{out.data(), out.size()};
    });

    // Serial merge: statistics, bound relaxation, successor discovery.
    fresh_subs.clear();
    for (std::size_t i = 0; i < cnt; ++i) {
      ++states_expanded;
      const std::uint64_t sbits = wave.states[i];
      const Span& span = wave.spans[i];
      enumerated += pruned_per_state[i] + span.count;
      pruned_calls += pruned_per_state[i];
      double f_here = 0;
      if (track_bounds) {
        const double* f = fcost.find(sbits);
        f_here = f ? *f : 0;
        if (trimmed_per_state[i] > 0) {
          trimmed += trimmed_per_state[i];
          // Any schedule reaching this state through a trimmed ending costs
          // at least f + h; together with the found cost this certifies the
          // reported gap bound.
          min_cut = std::min(min_cut, f_here + floor.eval(Set64{sbits}));
        }
      }
      for (std::uint32_t t = 0; t < span.count; ++t) {
        const WaveTransition& tr = span.tr[t];
        const std::uint64_t sub = sbits & ~tr.ending;
        if (sub == 0) continue;
        if (track_bounds) {
          const double via = f_here + tr.latency_us;
          const auto [slot, fresh] = fcost.try_emplace(sub, via);
          if (!fresh && via < *slot) *slot = via;
        }
        if (seen.insert(sub)) fresh_subs.push_back(sub);
      }
    }
    // Bucket the level's fresh states by popcount in one batch — a stable
    // counting sort over a contiguous array (vectorizable popcounts), and
    // first-discovery order within each level is preserved.
    buckets.build(fresh_subs.data(), fresh_subs.size());
    for (int q = p - 1; q >= 1; --q) {
      const std::size_t c = buckets.count(q);
      if (c == 0) continue;
      WaveLevel& dst = levels[static_cast<std::size_t>(q)];
      const std::uint64_t* b = buckets.bucket(q);
      dst.states.insert(dst.states.end(), b, b + c);
    }
    // Freeze this level's fresh endings: every later wave's repeat lookups
    // of them become lock-free hits.
    endings.drain();
  }

  // ---- Cost pass (popcount ascending) ----------------------------------
  // Measurement-free: each state replays its recorded span, reads sub-state
  // costs from strictly lower levels (frozen during the wave), and takes
  // the argmin in enumeration order — the same tie-breaking as the serial
  // engine. For exact and beam modes the pass is measurement-free (recorded
  // latencies; the argmin's stage build is re-read from the frozen
  // stripes). Dominance mode measures *here*, lazily: each transition's
  // recorded stage floor plus the exact sub-cost is a lower bound on its
  // total, so candidates are tried cheapest-bound-first and evaluation
  // stops once the bound alone exceeds the best total found — a transition
  // skipped that way provably cannot beat (or tie) the running best, so
  // the argmin, its enumeration-order tie-break, and the found latency are
  // bit-identical to exact mode while many stages are never simulated at
  // all. In beam mode a sub-state may have no memo entry (it was cut);
  // such transitions are skipped, and a state left with no finite cost
  // simply gets no entry of its own.
  memo.reserve(static_cast<std::size_t>(seen.size()));
  std::uint64_t root_bits = dag.all().bits();
  struct LazyScratch {
    std::vector<std::uint32_t> order;
    std::vector<double> lb;
  };
  std::vector<LazyScratch> lazy_scratch(
      mode == PruneMode::kDominance
          ? static_cast<std::size_t>(std::max(1, workers))
          : 0);
  for (int p = 1; p <= n; ++p) {
    WaveLevel& wave = levels[static_cast<std::size_t>(p)];
    if (wave.states.empty()) continue;
    const std::size_t cnt = wave.states.size();
    std::vector<Entry> entries(cnt);
    std::vector<char> has(cnt, 0);
    std::vector<std::int32_t> evals_per_state(
        mode == PruneMode::kDominance ? cnt : 0, 0);
    wave_level_for(cnt, threads, kSerialLevelCutoff,
                   [&](int slot, std::size_t i) {
      const std::uint64_t s = wave.states[i];
      const Span& span = wave.spans[i];
      Entry best;
      best.cost = kInf;
      if (mode == PruneMode::kDominance) {
        LazyScratch& sc = lazy_scratch[static_cast<std::size_t>(slot)];
        sc.order.resize(span.count);
        sc.lb.resize(span.count);
        for (std::uint32_t t = 0; t < span.count; ++t) {
          const WaveTransition& tr = span.tr[t];
          const std::uint64_t sub = s & ~tr.ending;
          double bound = tr.latency_us;  // the recorded stage floor
          if (sub != 0) {
            const Entry* e = memo.find(sub);
            bound = e ? bound + e->cost : kInf;
          }
          sc.order[t] = t;
          sc.lb[t] = bound;
        }
        std::sort(sc.order.begin(), sc.order.end(),
                  [&sc](std::uint32_t a, std::uint32_t b) {
                    if (sc.lb[a] != sc.lb[b]) return sc.lb[a] < sc.lb[b];
                    return a < b;
                  });
        std::uint32_t best_t = std::numeric_limits<std::uint32_t>::max();
        for (const std::uint32_t t : sc.order) {
          // Strictly above the running best: this candidate can neither
          // beat nor tie it, and the order is sorted, so every remaining
          // candidate is out too. Ties (lb == best) are still evaluated so
          // the enumeration-order tie-break sees every minimal candidate.
          if (sc.lb[t] > best.cost || !std::isfinite(sc.lb[t])) break;
          const WaveTransition& tr = span.tr[t];
          const EndingEval eval =
              endings.get_or_eval(*this, dag, Set64{tr.ending});
          ++evals_per_state[i];
          if (eval.pruned) continue;  // discovery already excluded these
          const std::uint64_t sub = s & ~tr.ending;
          double total = eval.latency_us;
          if (sub != 0) total += memo.find(sub)->cost;
          if (total < best.cost || (total == best.cost && t < best_t)) {
            best.cost = total;
            best.choice = tr.ending;
            best.build = eval.build;
            best_t = t;
          }
        }
        if (!std::isfinite(best.cost)) {
          throw std::logic_error(
              "no feasible ending found for a non-empty state");
        }
        entries[i] = best;
        has[i] = 1;
        return;
      }
      for (std::uint32_t t = 0; t < span.count; ++t) {
        const WaveTransition& tr = span.tr[t];
        const std::uint64_t sub = s & ~tr.ending;
        double total = tr.latency_us;
        if (sub != 0) {
          const Entry* e = memo.find(sub);
          if (!e) continue;  // sub-state was cut (beam mode only)
          total += e->cost;
        }
        if (total < best.cost) {
          best.cost = total;
          best.choice = tr.ending;
        }
      }
      if (!std::isfinite(best.cost)) {
        if (mode == PruneMode::kExact) {
          throw std::logic_error(
              "no feasible ending found for a non-empty state");
        }
        return;  // unreachable under the cuts; no memo entry
      }
      best.build = endings.find_frozen(best.choice)->build;
      entries[i] = best;
      has[i] = 1;
    });
    for (std::size_t i = 0; i < cnt; ++i) {
      if (has[i]) memo.try_emplace(wave.states[i], entries[i]);
      if (mode == PruneMode::kDominance) {
        lazy_evals += evals_per_state[i];
        const std::int32_t skipped =
            static_cast<std::int32_t>(wave.spans[i].count) -
            evals_per_state[i];
        if (skipped > 0) {
          trimmed += skipped;
          ++pruned_states;
        }
      }
    }
    // Dominance evaluates lazily during this pass; freezing after each
    // level keeps the next level's repeat lookups off the stripe locks.
    if (mode == PruneMode::kDominance) endings.drain();
    // The level's records are dead once its costs are in the memo: return
    // the arenas to the pool and drop the level's vectors.
    wave.leases.clear();
    std::vector<Span>().swap(wave.spans);
    std::vector<std::uint64_t>().swap(wave.states);
  }

  const Entry* root = memo.find(root_bits);
  if (!root) {
    throw std::logic_error("wave search found no feasible schedule");
  }
  const double found = root->cost;

  if (stats) {
    stats->states += states_expanded;
    const std::int64_t transitions = enumerated - pruned_calls;
    stats->transitions += transitions;
    stats->pruned_endings += pruned_calls;
    if (mode == PruneMode::kDominance) {
      // Lazy evaluation: only `lazy_evals` of the transitions ever touched
      // the ending cache, so repeat lookups among those are the hits.
      stats->cache_hits += lazy_evals - endings.distinct_unpruned();
    } else {
      // Identical to the serial engine's counting by construction: the same
      // multiset of (S, S') pairs is visited exactly once per solved state,
      // and repeat lookups of surviving endings are cache hits.
      stats->cache_hits += transitions - endings.distinct_unpruned();
    }
    stats->pruned_states += pruned_states;
    stats->beam_trimmed += trimmed;
    // Certified bound: every schedule the trims could have lost costs at
    // least min_cut, so the optimum is >= min(found, min_cut). Dominance
    // never trims a candidate that could beat or tie the best, so nothing
    // feeds min_cut there and the gap is exactly zero.
    const double lower = std::min(found, min_cut);
    stats->latency_gap_bound_us += std::max(0.0, found - lower);
  }
  return found;
}

void IosScheduler::solve_wave(BlockContext& ctx, SchedulerStats* stats) {
  const int threads = options_.num_threads;
  const int workers =
      threads <= 0 ? ThreadPool::hardware_threads() : threads;
  EndingStripes endings(/*locked=*/workers > 1);

  switch (options_.prune) {
    case PruneMode::kExact:
      wave_pass(ctx.dag, endings, ctx.memo, PruneMode::kExact, 0, stats);
      break;
    case PruneMode::kBeam:
      wave_pass(ctx.dag, endings, ctx.memo, PruneMode::kBeam,
                options_.beam_width, stats);
      break;
    case PruneMode::kDominance:
      wave_pass(ctx.dag, endings, ctx.memo, PruneMode::kDominance, 0, stats);
      break;
  }
}

std::string IosScheduler::canonical_block_key(const BlockDag& dag) const {
  const Graph& g = cost_.graph();
  std::string key;
  key.reserve(64 + static_cast<std::size_t>(dag.size()) * 48);
  const auto num = [&key](std::int64_t v) {
    key += std::to_string(v);
    key += ',';
  };
  key += "env:";
  num(static_cast<std::int64_t>(cost_.environment_fingerprint()));
  key += "cfg:";
  num(static_cast<int>(options_.variant));
  num(options_.pruning.r);
  num(options_.pruning.s);
  num(static_cast<int>(options_.prune));
  num(options_.prune == PruneMode::kBeam ? options_.beam_width : 0);

  // External producers are identified by first-appearance alias, not OpId:
  // two blocks match when the *sharing structure* of their outside inputs
  // matches (analyze_merge keys on shared-input identity), regardless of
  // where in their graphs they sit.
  std::vector<OpId> external;
  for (int i = 0; i < dag.size(); ++i) {
    const Op& op = g.op(dag.op_of(i));
    key += "op:";
    num(static_cast<int>(op.kind));
    switch (op.kind) {
      case OpKind::kConv2d: {
        const Conv2dAttrs& a = op.conv();
        num(a.out_channels);
        num(a.kh);
        num(a.kw);
        num(a.sh);
        num(a.sw);
        num(a.ph);
        num(a.pw);
        num(a.post_relu ? 1 : 0);
        break;
      }
      case OpKind::kSepConv: {
        const SepConvAttrs& a = op.sepconv();
        num(a.out_channels);
        num(a.k);
        num(a.sh);
        num(a.sw);
        num(a.ph);
        num(a.pw);
        num(a.pre_relu ? 1 : 0);
        break;
      }
      case OpKind::kPool2d: {
        const Pool2dAttrs& a = op.pool();
        num(static_cast<int>(a.kind));
        num(a.kh);
        num(a.kw);
        num(a.sh);
        num(a.sw);
        num(a.ph);
        num(a.pw);
        break;
      }
      case OpKind::kMatmul: {
        const MatmulAttrs& a = op.matmul();
        num(a.out_features);
        num(a.post_relu ? 1 : 0);
        break;
      }
      case OpKind::kSplit: {
        const SplitAttrs& a = op.split();
        num(a.begin_channel);
        num(a.end_channel);
        break;
      }
      default:
        break;
    }
    key += "out:";
    num(op.output.n);
    num(op.output.c);
    num(op.output.h);
    num(op.output.w);
    key += "in:";
    for (const OpId in : op.inputs) {
      bool internal = false;
      for (int j = 0; j < dag.size(); ++j) {
        if (dag.op_of(j) == in) {
          key += 'i';
          num(j);
          internal = true;
          break;
        }
      }
      if (internal) continue;
      std::size_t alias = 0;
      for (; alias < external.size(); ++alias) {
        if (external[alias] == in) break;
      }
      if (alias == external.size()) external.push_back(in);
      const TensorDesc& d = g.op(in).output;
      key += 'x';
      num(static_cast<std::int64_t>(alias));
      num(d.n);
      num(d.c);
      num(d.h);
      num(d.w);
    }
  }
  return key;
}

Schedule IosScheduler::schedule_block(std::span<const OpId> block_ops,
                                      SchedulerStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();
  const std::int64_t canonical_before = cost_.canonical_hits();
  const std::int64_t cross_before = cost_.cross_model_hits();

  const auto finish = [&](SchedulerStats* st) {
    if (!st) return;
    st->measurements += cost_.num_measurements() - measurements_before;
    st->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    st->canonical_hits += cost_.canonical_hits() - canonical_before;
    st->cross_model_hits += cost_.cross_model_hits() - cross_before;
    st->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  };

  BlockDag dag(cost_.graph(), block_ops);

  std::string block_key;
  if (options_.cross_block_reuse) {
    block_key = canonical_block_key(dag);
    if (const auto tpl = block_template_cache().get(block_key)) {
      // A structurally identical block was already solved (by this or any
      // other graph this process scheduled): replay its stage layout.
      Schedule q;
      for (const auto& [ending, build] : *tpl) {
        q.stages.push_back(
            build_stage(dag, Set64{ending}, static_cast<StageBuild>(build)));
      }
      if (stats) ++stats->block_cache_hits;
      finish(stats);
      return q;
    }
  }

  BlockContext ctx{dag, {}, {}};
  const SearchEngine engine = resolved_engine();
  if (engine == SearchEngine::kWave) {
    solve_wave(ctx, stats);
  } else if (engine == SearchEngine::kWaveLegacy) {
    solve_wave_legacy(ctx, stats);
  } else {
    solve(ctx, dag.all(), stats);
  }

  // Schedule construction (Algorithm 1 L6-11): walk choice[] from the full
  // set back to the empty set; the walk yields stages last-to-first, so
  // append and reverse once instead of inserting at the front (O(n) vs the
  // quadratic element shifting of repeated begin() inserts).
  Schedule q;
  BlockTemplateCache::Templates templates;
  Set64 s = dag.all();
  while (!s.empty()) {
    const Entry& e = *ctx.memo.find(s.bits());
    const Set64 ending{e.choice};
    q.stages.push_back(build_stage(dag, ending, e.build));
    if (options_.cross_block_reuse) {
      templates.emplace_back(e.choice, static_cast<int>(e.build));
    }
    s -= ending;
  }
  std::reverse(q.stages.begin(), q.stages.end());

  if (options_.cross_block_reuse) {
    std::reverse(templates.begin(), templates.end());
    block_template_cache().put(block_key, std::move(templates));
  }

  finish(stats);
  return q;
}

Schedule IosScheduler::schedule_partition(
    const std::vector<std::vector<OpId>>& blocks, SchedulerStats* stats) {
  const int want = options_.num_threads > 0 ? options_.num_threads
                                            : ThreadPool::hardware_threads();

  Schedule q;
  if (want <= 1 || blocks.size() <= 1) {
    // One block at a time; schedule_block still fans out within the block
    // when the wave engine has threads to use.
    for (const std::vector<OpId>& block : blocks) {
      Schedule bq = schedule_block(block, stats);
      for (Stage& stage : bq.stages) q.stages.push_back(std::move(stage));
    }
    return q;
  }

  // Each block DP is independent (own BlockContext); only the CostModel is
  // shared, and its measurement path is thread-safe. Per-block stats are
  // accumulated locally and merged at join so worker threads never contend
  // on the caller's counters.
  std::vector<Schedule> per_block(blocks.size());
  std::vector<SchedulerStats> per_stats(blocks.size());
  // schedule_block attributes measurements (and canonical-reuse hits) by
  // diffing the shared CostModel counters, which interleave across
  // concurrent blocks; take one global delta over the whole run instead.
  // Likewise, per-block wall times overlap, so search_wall_ms is the
  // elapsed time of the parallel region, not the sum of the workers'.
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();
  const std::int64_t canonical_before = cost_.canonical_hits();
  const std::int64_t cross_before = cost_.cross_model_hits();
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(blocks.size(), want, [&](std::size_t i) {
    per_block[i] = schedule_block(blocks[i], stats ? &per_stats[i] : nullptr);
  });

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (Stage& stage : per_block[i].stages) {
      q.stages.push_back(std::move(stage));
    }
    if (stats) {
      per_stats[i].measurements = 0;
      per_stats[i].profiling_cost_us = 0;
      per_stats[i].canonical_hits = 0;
      per_stats[i].cross_model_hits = 0;
      per_stats[i].search_wall_ms = 0;
      *stats += per_stats[i];
    }
  }
  if (stats) {
    stats->measurements += cost_.num_measurements() - measurements_before;
    stats->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    stats->canonical_hits += cost_.canonical_hits() - canonical_before;
    stats->cross_model_hits += cost_.cross_model_hits() - cross_before;
    stats->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return q;
}

Schedule IosScheduler::schedule_graph(SchedulerStats* stats) {
  return schedule_partition(cost_.graph().blocks(), stats);
}

}  // namespace ios
