#include "core/scheduler.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <chrono>
#include <cmath>
#include <limits>
#include <mutex>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace ios {

const char* ios_variant_name(IosVariant v) {
  switch (v) {
    case IosVariant::kBoth: return "IOS-Both";
    case IosVariant::kParallel: return "IOS-Parallel";
    case IosVariant::kMerge: return "IOS-Merge";
  }
  return "?";
}

const char* search_engine_name(SearchEngine e) {
  switch (e) {
    case SearchEngine::kAuto: return "auto";
    case SearchEngine::kSerial: return "serial";
    case SearchEngine::kWave: return "wave";
  }
  return "?";
}

void SchedulerOptions::validate() const {
  if (pruning.r < 1 || pruning.s < 1) {
    throw std::invalid_argument("pruning parameters must be >= 1");
  }
  if (engine == SearchEngine::kWave && !memoize) {
    throw std::invalid_argument(
        "the wave engine memoizes by construction; use engine=kSerial for "
        "the memoize=false ablation");
  }
}

IosScheduler::IosScheduler(CostModel& cost, SchedulerOptions options)
    : cost_(cost), options_(options) {
  options_.validate();
}

SearchEngine IosScheduler::resolved_engine() const {
  if (options_.engine != SearchEngine::kAuto) return options_.engine;
  if (!options_.memoize) return SearchEngine::kSerial;
  // A single-worker wave search pays the level machinery (and its
  // O(transitions) transition records) for zero parallelism; the recursive
  // engine is the better single-threaded solver. The schedule is identical
  // either way.
  const int workers = options_.num_threads > 0 ? options_.num_threads
                                               : ThreadPool::hardware_threads();
  return workers > 1 ? SearchEngine::kWave : SearchEngine::kSerial;
}

Stage IosScheduler::concurrent_stage(const BlockDag& dag,
                                     const std::vector<Set64>& comps) {
  Stage stage;
  stage.strategy = StageStrategy::kConcurrent;
  for (Set64 comp : comps) {
    stage.groups.push_back(Group{dag.to_ops(comp)});
  }
  return stage;
}

Stage IosScheduler::build_stage(const BlockDag& dag, Set64 ending,
                                StageBuild build) const {
  Stage stage;
  switch (build) {
    case StageBuild::kConcurrentGroups:
      return concurrent_stage(dag, dag.components(ending));
    case StageBuild::kMergeSingle:
      stage.strategy = StageStrategy::kMerge;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
    case StageBuild::kSequentialSingle:
      stage.strategy = StageStrategy::kConcurrent;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
  }
  return stage;
}

IosScheduler::EndingEval IosScheduler::compute_ending(const BlockDag& dag,
                                                      Set64 ending) const {
  EndingEval eval;
  // Pruning strategy P(r, s): group sizes were already bounded by the
  // enumeration; the group-count bound s is checked here. The components
  // double as the concurrent stage's groups below.
  const std::vector<Set64> comps = dag.components(ending);
  if (!options_.pruning.unrestricted() &&
      static_cast<int>(comps.size()) > options_.pruning.s) {
    eval.pruned = true;
    return eval;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<OpId> ops = dag.to_ops(ending);

  double l_concurrent = kInf;
  if (options_.variant != IosVariant::kMerge) {
    l_concurrent = cost_.measure(concurrent_stage(dag, comps));
  }

  double l_merge = kInf;
  if (options_.variant != IosVariant::kParallel && ops.size() >= 2 &&
      analyze_merge(cost_.graph(), ops)) {
    l_merge =
        cost_.measure(build_stage(dag, ending, StageBuild::kMergeSingle));
  }

  if (options_.variant == IosVariant::kMerge && !std::isfinite(l_merge)) {
    // IOS-Merge fallback: execute the ending's operators sequentially on a
    // single stream (so IOS-Merge degenerates to the sequential schedule on
    // networks with nothing to merge, as reported in Section 6.1).
    eval.build = StageBuild::kSequentialSingle;
    eval.latency_us =
        cost_.measure(build_stage(dag, ending, StageBuild::kSequentialSingle));
  } else if (l_concurrent <= l_merge) {
    eval.build = StageBuild::kConcurrentGroups;
    eval.latency_us = l_concurrent;
  } else {
    eval.build = StageBuild::kMergeSingle;
    eval.latency_us = l_merge;
  }
  return eval;
}

IosScheduler::EndingEval IosScheduler::evaluate_ending(BlockContext& ctx,
                                                       Set64 ending,
                                                       SchedulerStats* stats) {
  if (const EndingEval* hit = ctx.ending_cache.find(ending.bits())) {
    // Attribute the repeat visit by its verdict: a cached *pruned* ending is
    // another pruned (S, S') pair, not a productive cache hit — fig9's
    // pruning statistics count every cut transition.
    if (stats) {
      if (hit->pruned) {
        ++stats->pruned_endings;
      } else {
        ++stats->cache_hits;
      }
    }
    return *hit;
  }

  const EndingEval eval = compute_ending(ctx.dag, ending);
  if (stats && eval.pruned) ++stats->pruned_endings;
  ctx.ending_cache.try_emplace(ending.bits(), eval);
  return eval;
}

double IosScheduler::solve(BlockContext& ctx, Set64 s, SchedulerStats* stats) {
  if (s.empty()) return 0;  // cost[emptyset] = 0
  if (options_.memoize) {
    if (const Entry* hit = ctx.memo.find(s.bits())) return hit->cost;
  }
  if (stats) ++stats->states;

  Entry best;
  best.cost = std::numeric_limits<double>::infinity();
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  ctx.dag.for_each_ending(s, max_ops, max_group_ops, [&](Set64 ending) {
    // By value: the recursion below inserts into the flat ending cache,
    // which invalidates pointers into it.
    const EndingEval eval = evaluate_ending(ctx, ending, stats);
    if (eval.pruned) return;
    if (stats) ++stats->transitions;
    const double total = solve(ctx, s - ending, stats) + eval.latency_us;
    if (total < best.cost) {
      best.cost = total;
      best.choice = ending.bits();
      best.build = eval.build;
    }
  });

  if (!std::isfinite(best.cost)) {
    throw std::logic_error("no feasible ending found for a non-empty state");
  }
  ctx.memo.insert_or_assign(s.bits(), best);
  return best.cost;
}

// ---------------------------------------------------------------------------
// Wave engine
// ---------------------------------------------------------------------------

/// Lock-striped ending cache shared by the worker threads of one block's
/// wave search. get_or_eval holds a stripe lock only around the table
/// lookup/insert, never across the measurement, so stripes stay available
/// while stages simulate; two threads racing on the same uncached ending
/// both evaluate it (deterministically) and the first insert wins.
struct IosScheduler::EndingStripes {
  static constexpr std::size_t kStripes = 32;  // power of two

  struct Stripe {
    std::mutex mu;
    FlatMap64<EndingEval> map;
  };
  std::array<Stripe, kStripes> stripes;
  /// False when the whole search runs on the calling thread — the stripes
  /// are then only ever touched sequentially and the (per-lookup) lock cost
  /// would be pure overhead on the serial fast path.
  bool locked = true;

  explicit EndingStripes(bool locked_) : locked(locked_) {}

  Stripe& stripe_for(std::uint64_t key) {
    return stripes[shard_index(key, kStripes)];
  }

  EndingEval get_or_eval(const IosScheduler& sched, const BlockDag& dag,
                         Set64 ending) {
    Stripe& stripe = stripe_for(ending.bits());
    if (locked) {
      {
        std::lock_guard<std::mutex> lock(stripe.mu);
        if (const EndingEval* hit = stripe.map.find(ending.bits())) {
          return *hit;
        }
      }
      const EndingEval eval = sched.compute_ending(dag, ending);
      std::lock_guard<std::mutex> lock(stripe.mu);
      return *stripe.map.try_emplace(ending.bits(), eval).first;
    }
    if (const EndingEval* hit = stripe.map.find(ending.bits())) return *hit;
    return *stripe.map
                .try_emplace(ending.bits(), sched.compute_ending(dag, ending))
                .first;
  }

  /// Distinct non-pruned endings evaluated (single-threaded use only).
  std::int64_t distinct_unpruned() const {
    std::int64_t n = 0;
    for (const Stripe& stripe : stripes) {
      stripe.map.for_each([&](std::uint64_t, const EndingEval& eval) {
        if (!eval.pruned) ++n;
      });
    }
    return n;
  }
};

void IosScheduler::solve_wave(BlockContext& ctx, SchedulerStats* stats) {
  const BlockDag& dag = ctx.dag;
  const int n = dag.size();
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  const int threads = options_.num_threads;
  const int workers =
      threads <= 0 ? ThreadPool::hardware_threads() : threads;

  EndingStripes endings(/*locked=*/workers > 1);
  // Reachable DP states bucketed by popcount, each with its surviving
  // (non-pruned) transitions in enumeration order. A state's endings only
  // lead to strictly smaller states, so popcount levels are a topological
  // order of the DP dependency graph in both directions. Recording each
  // transition's evaluation during discovery lets the cost pass replay it
  // without re-running the (expensive) ending enumeration or re-probing the
  // (large) ending cache.
  struct Transition {
    std::uint64_t ending = 0;
    double latency_us = 0;
    StageBuild build = StageBuild::kConcurrentGroups;
  };
  struct WaveLevel {
    std::vector<std::uint64_t> states;
    std::vector<std::vector<Transition>> transitions;  // per state
  };
  std::vector<WaveLevel> levels(static_cast<std::size_t>(n) + 1);
  levels[static_cast<std::size_t>(n)].states.push_back(dag.all().bits());
  FlatSet64 seen;
  seen.insert(dag.all().bits());

  std::int64_t states = 0;
  std::int64_t enumerated = 0;     // (S, S') pairs visited, pruned included
  std::int64_t pruned_calls = 0;   // of which pruned

  // ---- Discovery pass (popcount descending) ----------------------------
  // Finds every state the pruned transition relation reaches from the full
  // set, and evaluates every visited ending — all measurements happen here,
  // fanned out across the wave's states. Successor dedup is merged serially
  // between waves, so the level contents (and all statistics) are
  // deterministic regardless of thread count.
  for (int p = n; p >= 1; --p) {
    WaveLevel& wave = levels[static_cast<std::size_t>(p)];
    if (wave.states.empty()) continue;
    states += static_cast<std::int64_t>(wave.states.size());
    wave.transitions.resize(wave.states.size());
    std::vector<std::int64_t> pruned_per_state(wave.states.size(), 0);
    parallel_for(wave.states.size(), threads, [&](std::size_t i) {
      const Set64 s{wave.states[i]};
      std::vector<Transition>& out = wave.transitions[i];
      dag.for_each_ending(s, max_ops, max_group_ops, [&](Set64 ending) {
        const EndingEval eval = endings.get_or_eval(*this, dag, ending);
        if (eval.pruned) {
          ++pruned_per_state[i];
          return;
        }
        out.push_back({ending.bits(), eval.latency_us, eval.build});
      });
    });
    for (std::size_t i = 0; i < wave.states.size(); ++i) {
      enumerated += pruned_per_state[i] +
                    static_cast<std::int64_t>(wave.transitions[i].size());
      pruned_calls += pruned_per_state[i];
      for (const Transition& t : wave.transitions[i]) {
        const std::uint64_t sub = wave.states[i] & ~t.ending;
        if (sub != 0 && seen.insert(sub)) {
          levels[static_cast<std::size_t>(std::popcount(sub))]
              .states.push_back(sub);
        }
      }
    }
  }

  // ---- Cost pass (popcount ascending) ----------------------------------
  // Every transition is recorded with its evaluation now, so this pass is
  // measurement-free and cache-probe-free: each state replays its recorded
  // transitions, reads sub-state costs from strictly lower levels (frozen
  // during the wave), and takes the argmin in enumeration order — the same
  // tie-breaking as the recursive engine, hence bit-identical choices.
  ctx.memo.reserve(static_cast<std::size_t>(states));
  for (int p = 1; p <= n; ++p) {
    WaveLevel& wave = levels[static_cast<std::size_t>(p)];
    if (wave.states.empty()) continue;
    std::vector<Entry> entries(wave.states.size());
    parallel_for(wave.states.size(), threads, [&](std::size_t i) {
      const std::uint64_t s = wave.states[i];
      Entry best;
      best.cost = std::numeric_limits<double>::infinity();
      for (const Transition& t : wave.transitions[i]) {
        const std::uint64_t sub = s & ~t.ending;
        double total = t.latency_us;
        if (sub != 0) total += ctx.memo.find(sub)->cost;
        if (total < best.cost) {
          best.cost = total;
          best.choice = t.ending;
          best.build = t.build;
        }
      }
      if (!std::isfinite(best.cost)) {
        throw std::logic_error(
            "no feasible ending found for a non-empty state");
      }
      entries[i] = best;
    });
    for (std::size_t i = 0; i < wave.states.size(); ++i) {
      ctx.memo.try_emplace(wave.states[i], entries[i]);
    }
    // The recorded transitions are dead once the level's costs are in the
    // memo.
    std::vector<std::vector<Transition>>().swap(wave.transitions);
  }

  if (stats) {
    // Identical to the serial engine's counting by construction: the same
    // multiset of (S, S') pairs is visited exactly once per solved state,
    // and repeat ending lookups split into cache_hits / pruned_endings by
    // verdict — computed analytically here because the racing stripe
    // lookups must not influence the (deterministic) statistics.
    const std::int64_t transitions = enumerated - pruned_calls;
    stats->states += states;
    stats->transitions += transitions;
    stats->pruned_endings += pruned_calls;
    stats->cache_hits += transitions - endings.distinct_unpruned();
  }
}

Schedule IosScheduler::schedule_block(std::span<const OpId> block_ops,
                                      SchedulerStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();

  BlockDag dag(cost_.graph(), block_ops);
  BlockContext ctx{dag, {}, {}};
  if (resolved_engine() == SearchEngine::kWave) {
    solve_wave(ctx, stats);
  } else {
    solve(ctx, dag.all(), stats);
  }

  // Schedule construction (Algorithm 1 L6-11): walk choice[] from the full
  // set back to the empty set; the walk yields stages last-to-first, so
  // append and reverse once instead of inserting at the front (O(n) vs the
  // quadratic element shifting of repeated begin() inserts).
  Schedule q;
  Set64 s = dag.all();
  while (!s.empty()) {
    const Entry& e = *ctx.memo.find(s.bits());
    const Set64 ending{e.choice};
    q.stages.push_back(build_stage(dag, ending, e.build));
    s -= ending;
  }
  std::reverse(q.stages.begin(), q.stages.end());

  if (stats) {
    stats->measurements += cost_.num_measurements() - measurements_before;
    stats->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    stats->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return q;
}

Schedule IosScheduler::schedule_partition(
    const std::vector<std::vector<OpId>>& blocks, SchedulerStats* stats) {
  const int want = options_.num_threads > 0 ? options_.num_threads
                                            : ThreadPool::hardware_threads();

  Schedule q;
  if (want <= 1 || blocks.size() <= 1) {
    // One block at a time; schedule_block still fans out within the block
    // when the wave engine has threads to use.
    for (const std::vector<OpId>& block : blocks) {
      Schedule bq = schedule_block(block, stats);
      for (Stage& stage : bq.stages) q.stages.push_back(std::move(stage));
    }
    return q;
  }

  // Each block DP is independent (own BlockContext); only the CostModel is
  // shared, and its measurement path is thread-safe. Per-block stats are
  // accumulated locally and merged at join so worker threads never contend
  // on the caller's counters.
  std::vector<Schedule> per_block(blocks.size());
  std::vector<SchedulerStats> per_stats(blocks.size());
  // schedule_block attributes measurements by diffing the shared CostModel
  // counters, which interleave across concurrent blocks; take one global
  // delta over the whole run instead. Likewise, per-block wall times
  // overlap, so search_wall_ms is the elapsed time of the parallel region,
  // not the sum of the workers'.
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();
  const auto t0 = std::chrono::steady_clock::now();
  parallel_for(blocks.size(), want, [&](std::size_t i) {
    per_block[i] = schedule_block(blocks[i], stats ? &per_stats[i] : nullptr);
  });

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (Stage& stage : per_block[i].stages) {
      q.stages.push_back(std::move(stage));
    }
    if (stats) {
      per_stats[i].measurements = 0;
      per_stats[i].profiling_cost_us = 0;
      per_stats[i].search_wall_ms = 0;
      *stats += per_stats[i];
    }
  }
  if (stats) {
    stats->measurements += cost_.num_measurements() - measurements_before;
    stats->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    stats->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return q;
}

Schedule IosScheduler::schedule_graph(SchedulerStats* stats) {
  return schedule_partition(cost_.graph().blocks(), stats);
}

}  // namespace ios
