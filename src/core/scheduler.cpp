#include "core/scheduler.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <future>
#include <limits>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace ios {

const char* ios_variant_name(IosVariant v) {
  switch (v) {
    case IosVariant::kBoth: return "IOS-Both";
    case IosVariant::kParallel: return "IOS-Parallel";
    case IosVariant::kMerge: return "IOS-Merge";
  }
  return "?";
}

IosScheduler::IosScheduler(CostModel& cost, SchedulerOptions options)
    : cost_(cost), options_(options) {
  if (options_.pruning.r < 1 || options_.pruning.s < 1) {
    throw std::invalid_argument("pruning parameters must be >= 1");
  }
}

Stage IosScheduler::concurrent_stage(const BlockDag& dag,
                                     const std::vector<Set64>& comps) {
  Stage stage;
  stage.strategy = StageStrategy::kConcurrent;
  for (Set64 comp : comps) {
    stage.groups.push_back(Group{dag.to_ops(comp)});
  }
  return stage;
}

Stage IosScheduler::build_stage(const BlockDag& dag, Set64 ending,
                                StageBuild build) const {
  Stage stage;
  switch (build) {
    case StageBuild::kConcurrentGroups:
      return concurrent_stage(dag, dag.components(ending));
    case StageBuild::kMergeSingle:
      stage.strategy = StageStrategy::kMerge;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
    case StageBuild::kSequentialSingle:
      stage.strategy = StageStrategy::kConcurrent;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
  }
  return stage;
}

const IosScheduler::EndingEval& IosScheduler::evaluate_ending(
    BlockContext& ctx, Set64 ending, SchedulerStats* stats) {
  auto it = ctx.ending_cache.find(ending.bits());
  if (it != ctx.ending_cache.end()) {
    if (stats) ++stats->cache_hits;
    return it->second;
  }

  EndingEval eval;
  // Pruning strategy P(r, s): group sizes were already bounded by the
  // enumeration; the group-count bound s is checked here. The components
  // double as the concurrent stage's groups below.
  const std::vector<Set64> comps = ctx.dag.components(ending);
  if (!options_.pruning.unrestricted() &&
      static_cast<int>(comps.size()) > options_.pruning.s) {
    eval.pruned = true;
    if (stats) ++stats->pruned_endings;
    return ctx.ending_cache.emplace(ending.bits(), eval).first->second;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<OpId> ops = ctx.dag.to_ops(ending);

  double l_concurrent = kInf;
  if (options_.variant != IosVariant::kMerge) {
    l_concurrent = cost_.measure(concurrent_stage(ctx.dag, comps));
  }

  double l_merge = kInf;
  if (options_.variant != IosVariant::kParallel && ops.size() >= 2 &&
      analyze_merge(cost_.graph(), ops)) {
    l_merge =
        cost_.measure(build_stage(ctx.dag, ending, StageBuild::kMergeSingle));
  }

  if (options_.variant == IosVariant::kMerge && !std::isfinite(l_merge)) {
    // IOS-Merge fallback: execute the ending's operators sequentially on a
    // single stream (so IOS-Merge degenerates to the sequential schedule on
    // networks with nothing to merge, as reported in Section 6.1).
    eval.build = StageBuild::kSequentialSingle;
    eval.latency_us =
        cost_.measure(build_stage(ctx.dag, ending, StageBuild::kSequentialSingle));
  } else if (l_concurrent <= l_merge) {
    eval.build = StageBuild::kConcurrentGroups;
    eval.latency_us = l_concurrent;
  } else {
    eval.build = StageBuild::kMergeSingle;
    eval.latency_us = l_merge;
  }
  return ctx.ending_cache.emplace(ending.bits(), eval).first->second;
}

double IosScheduler::solve(BlockContext& ctx, Set64 s, SchedulerStats* stats) {
  if (s.empty()) return 0;  // cost[emptyset] = 0
  if (options_.memoize) {
    auto it = ctx.memo.find(s.bits());
    if (it != ctx.memo.end()) return it->second.cost;
  }
  if (stats) ++stats->states;

  Entry best;
  best.cost = std::numeric_limits<double>::infinity();
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  ctx.dag.for_each_ending(s, max_ops, max_group_ops, [&](Set64 ending) {
    const EndingEval& eval = evaluate_ending(ctx, ending, stats);
    if (eval.pruned) return;
    if (stats) ++stats->transitions;
    const double total = solve(ctx, s - ending, stats) + eval.latency_us;
    if (total < best.cost) {
      best.cost = total;
      best.choice = ending.bits();
      best.build = eval.build;
    }
  });

  if (!std::isfinite(best.cost)) {
    throw std::logic_error("no feasible ending found for a non-empty state");
  }
  ctx.memo[s.bits()] = best;
  return best.cost;
}

Schedule IosScheduler::schedule_block(std::span<const OpId> block_ops,
                                      SchedulerStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();

  BlockDag dag(cost_.graph(), block_ops);
  BlockContext ctx{dag, {}, {}};
  solve(ctx, dag.all(), stats);

  // Schedule construction (Algorithm 1 L6-11): walk choice[] from the full
  // set back to the empty set; the walk yields stages last-to-first, so
  // append and reverse once instead of inserting at the front (O(n) vs the
  // quadratic element shifting of repeated begin() inserts).
  Schedule q;
  Set64 s = dag.all();
  while (!s.empty()) {
    const Entry& e = ctx.memo.at(s.bits());
    const Set64 ending{e.choice};
    q.stages.push_back(build_stage(dag, ending, e.build));
    s -= ending;
  }
  std::reverse(q.stages.begin(), q.stages.end());

  if (stats) {
    stats->measurements += cost_.num_measurements() - measurements_before;
    stats->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    stats->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return q;
}

Schedule IosScheduler::schedule_partition(
    const std::vector<std::vector<OpId>>& blocks, SchedulerStats* stats) {
  const int want = options_.num_threads > 0 ? options_.num_threads
                                            : ThreadPool::hardware_threads();
  const int workers =
      static_cast<int>(std::min<std::size_t>(
          static_cast<std::size_t>(want), blocks.size()));

  Schedule q;
  if (workers <= 1) {
    for (const std::vector<OpId>& block : blocks) {
      Schedule bq = schedule_block(block, stats);
      for (Stage& stage : bq.stages) q.stages.push_back(std::move(stage));
    }
    return q;
  }

  // Each block DP is independent (own BlockContext); only the CostModel is
  // shared, and its measurement path is thread-safe. Per-block stats are
  // accumulated locally and merged at join so worker threads never contend
  // on the caller's counters.
  std::vector<Schedule> per_block(blocks.size());
  std::vector<SchedulerStats> per_stats(blocks.size());
  // schedule_block attributes measurements by diffing the shared CostModel
  // counters, which interleave across concurrent blocks; take one global
  // delta over the whole pool run instead. Likewise, per-block wall times
  // overlap (and include waits on the CostModel mutex), so search_wall_ms
  // is the elapsed time of the pool run, not the sum of the workers'.
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();
  const auto t0 = std::chrono::steady_clock::now();
  {
    ThreadPool pool(workers);
    std::vector<std::future<void>> pending;
    pending.reserve(blocks.size());
    for (std::size_t i = 0; i < blocks.size(); ++i) {
      pending.push_back(pool.submit([this, &blocks, &per_block, &per_stats,
                                     stats, i] {
        per_block[i] =
            schedule_block(blocks[i], stats ? &per_stats[i] : nullptr);
      }));
    }
    for (std::future<void>& f : pending) f.get();
  }

  for (std::size_t i = 0; i < blocks.size(); ++i) {
    for (Stage& stage : per_block[i].stages) {
      q.stages.push_back(std::move(stage));
    }
    if (stats) {
      per_stats[i].measurements = 0;
      per_stats[i].profiling_cost_us = 0;
      per_stats[i].search_wall_ms = 0;
      *stats += per_stats[i];
    }
  }
  if (stats) {
    stats->measurements += cost_.num_measurements() - measurements_before;
    stats->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    stats->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return q;
}

Schedule IosScheduler::schedule_graph(SchedulerStats* stats) {
  return schedule_partition(cost_.graph().blocks(), stats);
}

}  // namespace ios
