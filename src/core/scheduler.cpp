#include "core/scheduler.hpp"

#include <chrono>
#include <cmath>
#include <limits>
#include <stdexcept>

namespace ios {

const char* ios_variant_name(IosVariant v) {
  switch (v) {
    case IosVariant::kBoth: return "IOS-Both";
    case IosVariant::kParallel: return "IOS-Parallel";
    case IosVariant::kMerge: return "IOS-Merge";
  }
  return "?";
}

IosScheduler::IosScheduler(CostModel& cost, SchedulerOptions options)
    : cost_(cost), options_(options) {
  if (options_.pruning.r < 1 || options_.pruning.s < 1) {
    throw std::invalid_argument("pruning parameters must be >= 1");
  }
}

Stage IosScheduler::build_stage(const BlockDag& dag, Set64 ending,
                                StageBuild build) const {
  Stage stage;
  switch (build) {
    case StageBuild::kConcurrentGroups:
      stage.strategy = StageStrategy::kConcurrent;
      for (Set64 comp : dag.components(ending)) {
        stage.groups.push_back(Group{dag.to_ops(comp)});
      }
      break;
    case StageBuild::kMergeSingle:
      stage.strategy = StageStrategy::kMerge;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
    case StageBuild::kSequentialSingle:
      stage.strategy = StageStrategy::kConcurrent;
      stage.groups.push_back(Group{dag.to_ops(ending)});
      break;
  }
  return stage;
}

const IosScheduler::EndingEval& IosScheduler::evaluate_ending(
    BlockContext& ctx, Set64 ending, SchedulerStats* stats) {
  auto it = ctx.ending_cache.find(ending.bits());
  if (it != ctx.ending_cache.end()) return it->second;

  EndingEval eval;
  // Pruning strategy P(r, s): group sizes were already bounded by the
  // enumeration; the group-count bound s is checked here.
  const std::vector<Set64> comps = ctx.dag.components(ending);
  if (!options_.pruning.unrestricted() &&
      static_cast<int>(comps.size()) > options_.pruning.s) {
    eval.pruned = true;
    return ctx.ending_cache.emplace(ending.bits(), eval).first->second;
  }

  constexpr double kInf = std::numeric_limits<double>::infinity();
  const std::vector<OpId> ops = ctx.dag.to_ops(ending);

  double l_concurrent = kInf;
  if (options_.variant != IosVariant::kMerge) {
    l_concurrent =
        cost_.measure(build_stage(ctx.dag, ending, StageBuild::kConcurrentGroups));
  }

  double l_merge = kInf;
  if (options_.variant != IosVariant::kParallel && ops.size() >= 2 &&
      analyze_merge(cost_.graph(), ops)) {
    l_merge =
        cost_.measure(build_stage(ctx.dag, ending, StageBuild::kMergeSingle));
  }

  if (options_.variant == IosVariant::kMerge && !std::isfinite(l_merge)) {
    // IOS-Merge fallback: execute the ending's operators sequentially on a
    // single stream (so IOS-Merge degenerates to the sequential schedule on
    // networks with nothing to merge, as reported in Section 6.1).
    eval.build = StageBuild::kSequentialSingle;
    eval.latency_us =
        cost_.measure(build_stage(ctx.dag, ending, StageBuild::kSequentialSingle));
  } else if (l_concurrent <= l_merge) {
    eval.build = StageBuild::kConcurrentGroups;
    eval.latency_us = l_concurrent;
  } else {
    eval.build = StageBuild::kMergeSingle;
    eval.latency_us = l_merge;
  }
  (void)stats;
  return ctx.ending_cache.emplace(ending.bits(), eval).first->second;
}

double IosScheduler::solve(BlockContext& ctx, Set64 s, SchedulerStats* stats) {
  if (s.empty()) return 0;  // cost[emptyset] = 0
  if (options_.memoize) {
    auto it = ctx.memo.find(s.bits());
    if (it != ctx.memo.end()) return it->second.cost;
  }
  if (stats) ++stats->states;

  Entry best;
  best.cost = std::numeric_limits<double>::infinity();
  const int max_ops = options_.pruning.unrestricted()
                          ? 64
                          : options_.pruning.r * options_.pruning.s;
  const int max_group_ops =
      options_.pruning.unrestricted() ? 64 : options_.pruning.r;
  ctx.dag.for_each_ending(s, max_ops, max_group_ops, [&](Set64 ending) {
    const EndingEval& eval = evaluate_ending(ctx, ending, stats);
    if (eval.pruned) return;
    if (stats) ++stats->transitions;
    const double total = solve(ctx, s - ending, stats) + eval.latency_us;
    if (total < best.cost) {
      best.cost = total;
      best.choice = ending.bits();
      best.build = eval.build;
    }
  });

  if (!std::isfinite(best.cost)) {
    throw std::logic_error("no feasible ending found for a non-empty state");
  }
  ctx.memo[s.bits()] = best;
  return best.cost;
}

Schedule IosScheduler::schedule_block(std::span<const OpId> block_ops,
                                      SchedulerStats* stats) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::int64_t measurements_before = cost_.num_measurements();
  const double profiling_before = cost_.profiling_cost_us();

  BlockDag dag(cost_.graph(), block_ops);
  BlockContext ctx{dag, {}, {}};
  solve(ctx, dag.all(), stats);

  // Schedule construction (Algorithm 1 L6-11): walk choice[] from the full
  // set back to the empty set, prepending stages.
  Schedule q;
  Set64 s = dag.all();
  while (!s.empty()) {
    const Entry& e = ctx.memo.at(s.bits());
    const Set64 ending{e.choice};
    q.stages.insert(q.stages.begin(), build_stage(dag, ending, e.build));
    s -= ending;
  }

  if (stats) {
    stats->measurements += cost_.num_measurements() - measurements_before;
    stats->profiling_cost_us += cost_.profiling_cost_us() - profiling_before;
    stats->search_wall_ms +=
        std::chrono::duration<double, std::milli>(
            std::chrono::steady_clock::now() - t0)
            .count();
  }
  return q;
}

Schedule IosScheduler::schedule_partition(
    const std::vector<std::vector<OpId>>& blocks, SchedulerStats* stats) {
  Schedule q;
  for (const std::vector<OpId>& block : blocks) {
    Schedule bq = schedule_block(block, stats);
    for (Stage& stage : bq.stages) q.stages.push_back(std::move(stage));
  }
  return q;
}

Schedule IosScheduler::schedule_graph(SchedulerStats* stats) {
  return schedule_partition(cost_.graph().blocks(), stats);
}

}  // namespace ios
