#pragma once
// Complexity analysis utilities behind Table 1 and Table 2 of the paper:
// per-block operator count n, DAG width d, the closed-form transition bound,
// the exact number of (S, S') transitions, the number of feasible schedules,
// and whole-network summaries.

#include <string>

#include "core/block_dag.hpp"

namespace ios {

struct BlockComplexity {
  int block_index = 0;
  int n = 0;                    ///< operators in the block
  int d = 0;                    ///< width of the block DAG
  double upper_bound = 0;       ///< ((n/d+2) choose 2)^d
  std::int64_t states = 0;      ///< distinct DP states
  std::int64_t transitions = 0; ///< exact #(S, S')
  double num_schedules = 0;     ///< #feasible schedules
};

BlockComplexity analyze_block(const Graph& g, std::span<const OpId> block_ops,
                              int block_index);

/// Analysis of the block with the most operators (the paper's Table 1 rows).
BlockComplexity largest_block_complexity(const Graph& g);

struct NetworkSummary {
  std::string name;
  int num_blocks = 0;
  int num_ops = 0;            ///< schedulable operators
  std::string main_op_type;   ///< e.g. "Conv-Relu" / "Relu-SepConv"
};

NetworkSummary summarize_network(const Graph& g);

}  // namespace ios
