#pragma once
// Automatic block partitioning. The paper (Section 4.2) optimizes each block
// of a network separately: "modern convolution neural networks usually
// construct the network by stacking multiple blocks, making it possible to
// optimize each block separately". Model builders mark blocks explicitly;
// for graphs that arrive without block annotations (imported graphs, custom
// builders), this pass recovers them.
//
// A *cut point* is a schedulable operator whose output is the only tensor
// crossing from the prefix to the suffix of the topological order — every
// dependency path passes through it, so scheduling the two sides separately
// loses nothing. Consecutive segments between cut points are coalesced until
// a size budget is reached (the DP is exponential in block width, and Set64
// limits blocks to 64 operators).

#include <vector>

#include "graph/graph.hpp"

namespace ios {

struct PartitionOptions {
  /// Coalesce adjacent segments while the combined block stays at or below
  /// this many operators. Must be <= 64 (the DP's Set64 state limit).
  int max_block_ops = 40;
  /// Keep coalescing while a block is below this size, even across cut
  /// points (avoids degenerate one-op blocks on chain networks).
  int min_block_ops = 4;
};

/// Partitions the schedulable operators of `g` into blocks, ignoring any
/// block annotations already present. Returned blocks are in topological
/// order; each is a topologically ordered op list of size <= max_block_ops
/// (unless a single unsplittable segment exceeds it, in which case the
/// segment is chunked by topological order as a fallback).
std::vector<std::vector<OpId>> auto_partition(
    const Graph& g, const PartitionOptions& options = {});

}  // namespace ios
