// Wall-clock scaling of schedule_partition with the per-block thread pool:
// every block of the partition runs its dynamic program on its own worker,
// so multi-block networks (Inception V3: 11 blocks, NASNet: 13) should
// approach linear speedup until the largest block dominates (Amdahl). The
// schedule found is identical for every thread count.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

using namespace ios;

void schedule_with_threads(benchmark::State& state, const Graph& g,
                           int threads) {
  for (auto _ : state) {
    // Fresh CostModel per iteration: a warm measurement cache would make
    // every iteration after the first nearly free and hide the DP cost.
    CostModel cost(g, bench::config_for(tesla_v100()));
    IosScheduler scheduler(cost, SchedulerOptions{.num_threads = threads});
    benchmark::DoNotOptimize(scheduler.schedule_graph());
  }
}

void BM_ScheduleInceptionV3Threads(benchmark::State& state) {
  const Graph g = models::inception_v3(1);
  schedule_with_threads(state, g, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ScheduleInceptionV3Threads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

void BM_ScheduleNasnetThreads(benchmark::State& state) {
  const Graph g = models::nasnet_a(1);
  schedule_with_threads(state, g, static_cast<int>(state.range(0)));
}
BENCHMARK(BM_ScheduleNasnetThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->MeasureProcessCPUTime()
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
