// Fleet benchmark: planning cost and failure recovery at cluster scale. A
// heterogeneous {P100, 1080Ti} building-block node is replicated into
// fleets of 16 -> 1024 devices; each fleet is planned from a cold
// FleetPlanner. Because the Placer optimizes per device *class*, not per
// device instance, the number of Optimizer searches must stay constant
// across the sweep — planning cost is sub-linear in fleet size (the only
// thing that scales is the cheap replica assignment). A second plan on the
// warm planner must re-search nothing at all.
//
// The failure half replays a saturating trace on a 64-device fleet while a
// seeded FailureInjector kills workers mid-run. Gates: every admitted
// request completes (lost_requests == 0), kills actually interrupted
// in-flight batches (rerouted_requests > 0), and a second identical run is
// bit-identical in stats and per-request latencies — the fleet layer keeps
// the repo's determinism doctrine under failures.
//
// Like bench_placement this is a plain main() with no google-benchmark
// dependency; everything simulated is on the virtual clock.
//
//   $ ./bench_fleet [out.json] [max_devices] [num_requests]
//     out.json      default BENCH_fleet.json
//     max_devices   default 1024 (CI smoke: 64)
//     num_requests  default 2000 (CI smoke runs fewer)

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "fleet/planner.hpp"
#include "fleet/sim.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace ios;
  using namespace ios::fleet;
  using namespace ios::serve;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_fleet.json";
  const int max_devices = argc > 2 ? std::atoi(argv[2]) : 1024;
  const int num_requests = argc > 3 ? std::atoi(argv[3]) : 2000;
  const auto bench_begin = std::chrono::steady_clock::now();

  // The building block: a node of 4 P100s + 4 1080Tis (8 devices), so every
  // fleet size exercises heterogeneous routing.
  struct Size {
    int devices;
    const char* spec;
  };
  const std::vector<Size> all_sizes = {
      {16, "rack:1{node:2{p100x4,1080tix4}}"},
      {64, "rack:2{node:4{p100x4,1080tix4}}"},
      {256, "rack:8{node:4{p100x4,1080tix4}}"},
      {1024, "rack:32{node:4{p100x4,1080tix4}}"},
  };
  std::vector<Size> sizes;
  for (const Size& s : all_sizes) {
    if (s.devices <= max_devices) sizes.push_back(s);
  }
  if (sizes.empty()) sizes.push_back(all_sizes.front());

  const std::vector<WorkloadItem> workload = {
      WorkloadItem{"squeezenet", 8, 3.0}, WorkloadItem{"mobilenet_v2", 8, 2.0}};

  // ---- planning sweep: cold planner per size -----------------------------
  JsonValue size_entries = JsonValue::array();
  std::vector<double> plan_walls;
  std::vector<std::int64_t> plan_optimizations;
  for (const Size& size : sizes) {
    FleetPlanRequest request;
    request.topology = fleet_from_spec(size.spec);
    request.workload = workload;
    request.replicas = 2;
    FleetPlanner planner;  // cold: pays the full per-class search cost
    const FleetPlan plan = planner.plan(request);
    plan_walls.push_back(plan.plan_wall_ms);
    plan_optimizations.push_back(plan.placement.optimizations);
    std::printf("plan %5d devices (%2d nodes, %2d racks): %7.1f ms wall, "
                "%lld searches, replica spread >= %d nodes / %d racks\n",
                request.topology.total_devices(), request.topology.num_nodes,
                request.topology.num_racks, plan.plan_wall_ms,
                static_cast<long long>(plan.placement.optimizations),
                plan.min_distinct_nodes, plan.min_distinct_racks);

    JsonValue entry = JsonValue::object();
    entry.set("spec", size.spec);
    entry.set("devices", request.topology.total_devices());
    entry.set("nodes", request.topology.num_nodes);
    entry.set("racks", request.topology.num_racks);
    entry.set("plan_wall_ms", plan.plan_wall_ms);
    entry.set("optimizations", plan.placement.optimizations);
    entry.set("cache_hits", plan.placement.cache_hits);
    entry.set("min_distinct_nodes", plan.min_distinct_nodes);
    entry.set("min_distinct_racks", plan.min_distinct_racks);
    size_entries.push_back(std::move(entry));
  }

  // Gate: the search count is constant in fleet size (per-class planning).
  bool constant_searches = true;
  for (const std::int64_t o : plan_optimizations) {
    constant_searches = constant_searches && o == plan_optimizations.front();
  }
  // Gate: wall time grows sub-linearly — at a >= 16x device ratio the cold
  // plan must cost well under a proportional scale-up (2x headroom).
  bool sublinear_wall = true;
  const double device_ratio = static_cast<double>(sizes.back().devices) /
                              static_cast<double>(sizes.front().devices);
  if (device_ratio >= 16) {
    sublinear_wall =
        plan_walls.back() < plan_walls.front() * device_ratio / 2.0;
    std::printf("sub-linear planning: %.1f ms at %dx devices vs %.1f ms "
                "(linear would allow %.1f ms): %s\n",
                plan_walls.back(), static_cast<int>(device_ratio),
                plan_walls.front(), plan_walls.front() * device_ratio,
                sublinear_wall ? "yes" : "NO");
  }

  // Gate: a warm planner re-searches nothing for the largest fleet.
  FleetPlanRequest warm_request;
  warm_request.topology = fleet_from_spec(sizes.back().spec);
  warm_request.workload = workload;
  warm_request.replicas = 2;
  FleetPlanner warm_planner;
  warm_planner.plan(warm_request);
  const FleetPlan warm = warm_planner.plan(warm_request);
  const bool warm_replan_free = warm.placement.optimizations == 0;
  std::printf("warm re-plan at %d devices: %lld searches, %lld cache hits, "
              "%.1f ms\n",
              warm_request.topology.total_devices(),
              static_cast<long long>(warm.placement.optimizations),
              static_cast<long long>(warm.placement.cache_hits),
              warm.plan_wall_ms);

  // ---- failure recovery on a 64-device fleet -----------------------------
  const Size& sim_size = sizes.size() > 1 ? sizes[1] : sizes[0];
  TraceSpec trace_spec;
  trace_spec.models = {"squeezenet", "squeezenet", "squeezenet",
                       "mobilenet_v2", "mobilenet_v2"};
  trace_spec.num_requests = num_requests;
  trace_spec.mean_interarrival_us = 10;  // saturating: batches stay in flight
  trace_spec.seed = 7;
  const Trace trace = generate_trace(trace_spec);

  FleetSimOptions sim_options;
  sim_options.topology = fleet_from_spec(sim_size.spec);
  sim_options.batching = BatchingPolicy{{1, 2, 4, 8}, 3000};
  sim_options.workload = workload;
  sim_options.failures.seed = 11;
  sim_options.failures.max_kills = 6;
  sim_options.failures.first_kill_at_us = trace.duration_us() * 0.05;
  sim_options.failures.mean_time_between_kills_us = trace.duration_us() * 0.1;

  const auto run_once = [&]() {
    FleetSimulator sim(sim_options);
    sim.plan();  // warm the shared Optimizer so re-plans are cache hits
    return sim.run(trace);
  };
  const FleetSimResult run1 = run_once();
  const FleetSimResult run2 = run_once();
  const FleetStats& s = run1.stats;
  std::printf("failure sim %d devices, %d requests: %lld kills, %lld batches "
              "killed, %lld requests re-routed, %lld re-plans, %lld lost | "
              "p99 %9.1f us, recovery mean %8.1f us\n",
              sim_options.topology.total_devices(), num_requests,
              static_cast<long long>(s.failures),
              static_cast<long long>(s.killed_batches),
              static_cast<long long>(s.rerouted_requests),
              static_cast<long long>(s.replans),
              static_cast<long long>(s.lost_requests), s.p99_latency_us,
              s.mean_recovery_us);

  const bool nothing_lost = s.lost_requests == 0;
  const bool kills_fired = s.failures > 0;
  const bool kills_interrupted = s.rerouted_requests > 0;
  const bool deterministic =
      run1.latencies == run2.latencies &&
      fleet_stats_to_json(run1.stats).dump() ==
          fleet_stats_to_json(run2.stats).dump();
  std::printf("zero lost admitted requests: %s | deterministic replay: %s\n",
              nothing_lost ? "yes" : "NO", deterministic ? "yes" : "NO");

  const double bench_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - bench_begin)
          .count();

  JsonValue root = JsonValue::object();
  root.set("bench", "fleet");
  root.set("unit", "ms wall (planning), us simulated (serving)");
  root.set("requests", num_requests);
  root.set("trace_seed", static_cast<std::int64_t>(trace_spec.seed));
  root.set("failure_seed", static_cast<std::int64_t>(sim_options.failures.seed));
  root.set("sizes", std::move(size_entries));
  JsonValue warm_json = JsonValue::object();
  warm_json.set("devices", warm_request.topology.total_devices());
  warm_json.set("optimizations", warm.placement.optimizations);
  warm_json.set("cache_hits", warm.placement.cache_hits);
  warm_json.set("plan_wall_ms", warm.plan_wall_ms);
  root.set("warm_replan", std::move(warm_json));
  JsonValue failure_json = JsonValue::object();
  failure_json.set("devices", sim_options.topology.total_devices());
  failure_json.set("stats", fleet_stats_to_json(run1.stats));
  failure_json.set("run_wall_ms", run1.run_wall_ms);
  root.set("failure", std::move(failure_json));
  JsonValue gates = JsonValue::object();
  gates.set("constant_searches", constant_searches);
  gates.set("sublinear_plan_wall", sublinear_wall);
  gates.set("warm_replan_free", warm_replan_free);
  gates.set("zero_lost_requests", nothing_lost);
  gates.set("kills_fired", kills_fired);
  gates.set("kills_interrupted_batches", kills_interrupted);
  gates.set("deterministic_replay", deterministic);
  root.set("gates", std::move(gates));
  root.set("wall_ms", bench_wall_ms);
  write_file(out_path, root.dump());
  std::printf("wrote %s (%.0f ms wall)\n", out_path.c_str(), bench_wall_ms);

  bool ok = true;
  if (!constant_searches) {
    std::fprintf(stderr, "FAIL: Optimizer search count grew with fleet size "
                         "(planning must be per-class, not per-device)\n");
    ok = false;
  }
  if (!sublinear_wall) {
    std::fprintf(stderr,
                 "FAIL: cold planning wall time scaled about linearly "
                 "with device count\n");
    ok = false;
  }
  if (!warm_replan_free) {
    std::fprintf(stderr,
                 "FAIL: warm re-plan ran Optimizer searches (recipe cache "
                 "should have served all of them)\n");
    ok = false;
  }
  if (!nothing_lost) {
    std::fprintf(stderr, "FAIL: admitted requests were lost under the "
                         "seeded kill schedule\n");
    ok = false;
  }
  if (!kills_fired || !kills_interrupted) {
    std::fprintf(stderr, "FAIL: the kill schedule did not exercise the "
                         "requeue path (no kills or no interrupted batches)\n");
    ok = false;
  }
  if (!deterministic) {
    std::fprintf(stderr, "FAIL: two identical failure runs diverged "
                         "(determinism doctrine)\n");
    ok = false;
  }
  return ok ? 0 : 1;
}
