// Ablation: stage synchronization overhead (DESIGN.md item 4) — why the
// greedy schedule degrades SqueezeNet (Section 6.1). Sweeping the sync cost
// shows greedy losing to sequential once syncs outweigh the tiny
// concurrency gains of the small fire-module convolutions, while IOS adapts
// (it simply stops parallelizing when it does not pay).

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace ios;

  std::printf("Ablation: stage sync cost vs schedule quality (SqueezeNet, "
              "batch size 1, V100)\n\n");

  TablePrinter t({"sync (us)", "sequential (ms)", "greedy (ms)", "IOS (ms)",
                  "greedy vs seq", "IOS vs seq"});
  for (double sync : {0.0, 2.0, 4.5, 9.0, 18.0}) {
    DeviceSpec dev = tesla_v100();
    dev.stage_sync_us = sync;

    const Graph g = models::squeezenet(1);
    Executor ex(g, bench::config_for(dev));
    const double seq = ex.schedule_latency_us(sequential_schedule(g));
    const double greedy = ex.schedule_latency_us(greedy_schedule(g));
    const double ios_lat =
        bench::latency_us(g, dev, bench::ios_schedule(g, dev));

    t.add_row({TablePrinter::fmt(sync, 1),
               TablePrinter::fmt(seq / 1000.0, 3),
               TablePrinter::fmt(greedy / 1000.0, 3),
               TablePrinter::fmt(ios_lat / 1000.0, 3),
               TablePrinter::fmt(seq / greedy, 3) + "x",
               TablePrinter::fmt(seq / ios_lat, 3) + "x"});
  }
  t.print();
  std::printf("\n(IOS never drops below 1.0x: the sequential schedule is in "
              "its search space)\n");
  return 0;
}
