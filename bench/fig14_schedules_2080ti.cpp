// Figure 14 (Appendix B): the Figure 6 schedule comparison repeated on an
// RTX 2080Ti (Turing) to show the optimization generalizes across GPU
// architectures.

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = rtx_2080ti();

  std::vector<bench::SeriesRow> rows;
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    Executor ex(g, bench::config_for(dev));
    bench::SeriesRow row{m.name, {}};
    row.latencies_us.push_back(ex.schedule_latency_us(sequential_schedule(g)));
    row.latencies_us.push_back(ex.schedule_latency_us(greedy_schedule(g)));
    for (IosVariant v :
         {IosVariant::kMerge, IosVariant::kParallel, IosVariant::kBoth}) {
      row.latencies_us.push_back(
          bench::latency_us(g, dev, bench::ios_schedule(g, dev, v)));
    }
    rows.push_back(std::move(row));
  }

  bench::print_normalized(
      "Figure 14: schedule comparison, batch size 1, RTX 2080Ti",
      {"Sequential", "Greedy", "IOS-Merge", "IOS-Parallel", "IOS-Both"},
      rows);
  return 0;
}
