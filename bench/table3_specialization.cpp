// Table 3: specialized schedules win. (1) Schedules optimized for batch size
// 1/32/128 are cross-executed on each batch size; (2) schedules optimized
// for Tesla K80 / V100 are cross-executed on each device. The diagonal
// should be the best entry of every row (paper Section 7.2).

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace ios;

  std::printf("Table 3 (1): Inception V3 latency (ms), schedules specialized "
              "per batch size (V100)\n");
  std::printf("(paper: rows bs=1/32/128, diagonal best: 4.03 / 27.44 / "
              "103.29 ms)\n\n");
  const int batches[] = {1, 32, 128};
  std::vector<Schedule> by_batch;
  for (int b : batches) {
    by_batch.push_back(bench::ios_schedule(models::inception_v3(b),
                                           tesla_v100()));
  }
  {
    TablePrinter t({"execute \\ optimized for", "bs=1", "bs=32", "bs=128"});
    for (int i = 0; i < 3; ++i) {
      const Graph g = models::inception_v3(batches[i]);
      Executor ex(g, bench::config_for(tesla_v100()));
      std::vector<std::string> row{"bs=" + std::to_string(batches[i])};
      for (int j = 0; j < 3; ++j) {
        row.push_back(TablePrinter::fmt(
            ex.schedule_latency_us(by_batch[static_cast<std::size_t>(j)]) /
                1000.0,
            2));
      }
      t.add_row(std::move(row));
    }
    t.print();
  }

  std::printf("\nTable 3 (2): Inception V3 latency (ms), schedules "
              "specialized per device (batch size 1)\n");
  std::printf("(paper: K80 row 13.87/14.65; V100 row 4.49/4.03)\n\n");
  const Graph g1 = models::inception_v3(1);
  const Schedule q_k80 = bench::ios_schedule(g1, tesla_k80());
  const Schedule q_v100 = bench::ios_schedule(g1, tesla_v100());
  {
    TablePrinter t({"execute \\ optimized for", "K80", "V100"});
    for (const DeviceSpec& dev : {tesla_k80(), tesla_v100()}) {
      Executor ex(g1, bench::config_for(dev));
      t.add_row({dev.name,
                 TablePrinter::fmt(ex.schedule_latency_us(q_k80) / 1000.0, 2),
                 TablePrinter::fmt(ex.schedule_latency_us(q_v100) / 1000.0,
                                   2)});
    }
    t.print();
  }
  return 0;
}
