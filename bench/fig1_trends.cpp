// Figure 1: the motivation trend — device peak performance rises while the
// average computation per convolution falls, widening the utilization gap.
// Representatives (as in the paper): VGG on GTX 980Ti (2013-era), Inception
// V3 on GTX 1080 (2015), NasNet on Tesla V100 (2018). We additionally
// measure each era's *actual* single-kernel utilization on the simulator —
// the gap the paper motivates IOS with.

#include <cstdio>

#include "bench/common.hpp"
#include "sim/kernel_model.hpp"

namespace {

using namespace ios;

struct EraRow {
  const char* year;
  Graph graph;
  DeviceSpec device;
};

}  // namespace

int main() {
  using namespace ios;

  std::printf("Figure 1: average FLOPs per convolution vs device peak "
              "performance\n(paper: VGG 2330 MFLOPs/conv & ~16 convs on "
              "5767 GFLOPs/s; Inception ~116 MFLOPs & 94 convs on 8873; "
              "NasNet ~82 MFLOPs & 535 convs on 15700)\n\n");

  EraRow rows[] = {
      {"2013", models::vgg16(1), gtx_980ti()},
      {"2015", models::inception_v3(1), gtx_1080()},
      {"2018", models::nasnet_a(1), tesla_v100()},
  };

  TablePrinter t({"year", "network", "#conv", "avg MFLOPs/conv",
                  "device", "peak GFLOPs/s", "measured conv util"});
  for (EraRow& row : rows) {
    const Graph& g = row.graph;
    int convs = 0;
    std::int64_t conv_flops = 0;
    double util_sum = 0;
    Engine engine(row.device);
    for (const Op& op : g.ops()) {
      if (op.kind != OpKind::kConv2d && op.kind != OpKind::kSepConv) continue;
      ++convs;
      conv_flops += g.flops(op.id);
      const KernelDesc k = kernel_for_op(g, op.id);
      const double lat = engine.kernel_latency_us(k);
      util_sum += (k.flops / lat) / row.device.peak_flops_per_us();
    }
    t.add_row({row.year, g.name(), std::to_string(convs),
               TablePrinter::fmt(static_cast<double>(conv_flops) / convs / 1e6,
                                 0),
               row.device.name,
               TablePrinter::fmt(row.device.peak_tflops * 1000, 0),
               TablePrinter::fmt(util_sum / convs * 100, 1) + "%"});
  }
  t.print();
  std::printf("\n(average per-convolution work falls by ~2 orders of "
              "magnitude while peak performance triples: single kernels "
              "cannot utilize modern devices)\n");
  return 0;
}
