// Figure 7: end-to-end comparison of the cuDNN-based frameworks
// (TensorFlow, TensorFlow-XLA, TASO, TVM-cuDNN, TensorRT) against IOS at
// batch size 1 on Tesla V100. Expected shape: IOS wins on every network,
// 1.1-1.5x over the best baseline.

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  std::vector<std::string> methods;
  for (const auto& spec : frameworks::cudnn_baselines()) {
    methods.push_back(spec.name);
  }
  methods.push_back("IOS");

  std::vector<bench::SeriesRow> rows;
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    bench::SeriesRow row{m.name, {}};
    for (const auto& spec : frameworks::cudnn_baselines()) {
      row.latencies_us.push_back(
          frameworks::run_framework(g, dev, spec).latency_us);
    }
    row.latencies_us.push_back(
        bench::latency_us(g, dev, bench::ios_schedule(g, dev)));
    rows.push_back(std::move(row));
  }

  bench::print_normalized(
      "Figure 7: cuDNN-based framework comparison, batch size 1, Tesla V100",
      methods, rows);
  return 0;
}
