#pragma once
// Shared helpers for the benchmark binaries that regenerate the paper's
// tables and figures. Each binary prints the same rows/series the paper
// reports; absolute numbers come from the execution simulator, so the
// *shape* (who wins, by what factor) is the comparison target.

#include <cstdio>
#include <map>
#include <string>
#include <vector>

#include "core/scheduler.hpp"
#include "frameworks/frameworks.hpp"
#include "models/models.hpp"
#include "runtime/executor.hpp"
#include "schedule/baselines.hpp"
#include "util/stats.hpp"
#include "util/table.hpp"

namespace ios::bench {

inline ExecConfig config_for(const DeviceSpec& device) {
  return ExecConfig{device, KernelModelParams{}};
}

/// Runs IOS (default pruning r=3, s=8 as in Section 5) and returns the
/// found schedule.
inline Schedule ios_schedule(const Graph& g, const DeviceSpec& device,
                             IosVariant variant = IosVariant::kBoth,
                             PruningStrategy pruning = PruningStrategy{},
                             SchedulerStats* stats = nullptr) {
  CostModel cost(g, config_for(device));
  SchedulerOptions options;
  options.pruning = pruning;
  options.variant = variant;
  return IosScheduler(cost, options).schedule_graph(stats);
}

inline double latency_us(const Graph& g, const DeviceSpec& device,
                         const Schedule& q) {
  return Executor(g, config_for(device)).schedule_latency_us(q);
}

/// The paper reports the average of 5 runs; the simulator is deterministic,
/// so we run once and report that value.
struct SeriesRow {
  std::string model;
  std::vector<double> latencies_us;  // one per method
};

/// Prints a normalized-throughput table (Figures 6/7/12/14/15 style): each
/// row is normalized to its best method; a GeoMean row is appended.
inline void print_normalized(const std::string& title,
                             const std::vector<std::string>& methods,
                             const std::vector<SeriesRow>& rows) {
  std::printf("== %s ==\n", title.c_str());
  std::vector<std::string> header{"model"};
  header.insert(header.end(), methods.begin(), methods.end());
  TablePrinter t(header);

  std::vector<std::vector<double>> normalized(methods.size());
  for (const SeriesRow& row : rows) {
    const double best = min_of(row.latencies_us);
    std::vector<std::string> cells{row.model};
    for (std::size_t i = 0; i < row.latencies_us.size(); ++i) {
      const double norm = best / row.latencies_us[i];  // throughput, best = 1
      normalized[i].push_back(norm);
      cells.push_back(TablePrinter::fmt(norm, 3));
    }
    t.add_row(std::move(cells));
  }
  std::vector<std::string> geo{"GeoMean"};
  for (const auto& series : normalized) {
    geo.push_back(TablePrinter::fmt(geomean(series), 3));
  }
  t.add_row(std::move(geo));
  t.print();

  std::printf("-- raw latencies (ms) --\n");
  TablePrinter raw(header);
  for (const SeriesRow& row : rows) {
    std::vector<std::string> cells{row.model};
    for (double l : row.latencies_us) {
      cells.push_back(TablePrinter::fmt(l / 1000.0, 3));
    }
    raw.add_row(std::move(cells));
  }
  raw.print();
  std::printf("\n");
}

struct NamedModel {
  std::string name;
  Graph (*build)(int batch);
};

inline std::vector<NamedModel> paper_models() {
  return {
      {"Inception V3", [](int b) { return models::inception_v3(b); }},
      {"RandWire", [](int b) { return models::randwire(b); }},
      {"NasNet", [](int b) { return models::nasnet_a(b); }},
      {"SqueezeNet", [](int b) { return models::squeezenet(b); }},
  };
}

}  // namespace ios::bench
