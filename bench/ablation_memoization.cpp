// Ablation: the cost[S] memoization (DESIGN.md item 1). Without it the DP
// re-solves shared sub-schedules and the number of explored transitions
// explodes; with it the search visits each state once. Reported both as a
// google-benchmark timing and as transition counts.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"

namespace {

using namespace ios;

void run_dp(bool memoize, benchmark::State& state) {
  const Graph g = models::fig2_graph(1);
  for (auto _ : state) {
    CostModel cost(g, bench::config_for(tesla_v100()));
    SchedulerOptions options;
    options.memoize = memoize;
    SchedulerStats stats;
    const Schedule q = IosScheduler(cost, options).schedule_graph(&stats);
    benchmark::DoNotOptimize(q);
    state.counters["transitions"] =
        static_cast<double>(stats.transitions);
    state.counters["measurements"] =
        static_cast<double>(stats.measurements);
  }
}

void BM_DpWithMemoization(benchmark::State& state) { run_dp(true, state); }
void BM_DpWithoutMemoization(benchmark::State& state) { run_dp(false, state); }

BENCHMARK(BM_DpWithMemoization);
BENCHMARK(BM_DpWithoutMemoization);

// A wider block (the Inception-E block, n=11) where the gap is dramatic.
void run_block_dp(bool memoize, benchmark::State& state) {
  const Graph g = models::inception_v3(1);
  const auto blocks = g.blocks();
  for (auto _ : state) {
    CostModel cost(g, bench::config_for(tesla_v100()));
    SchedulerOptions options;
    options.memoize = memoize;
    // Keep the no-memo variant tractable with the default pruning.
    SchedulerStats stats;
    IosScheduler scheduler(cost, options);
    const Schedule q = scheduler.schedule_block(blocks[10], &stats);
    benchmark::DoNotOptimize(q);
    state.counters["transitions"] = static_cast<double>(stats.transitions);
  }
}

void BM_InceptionEBlockWithMemoization(benchmark::State& state) {
  run_block_dp(true, state);
}
void BM_InceptionEBlockWithoutMemoization(benchmark::State& state) {
  run_block_dp(false, state);
}

BENCHMARK(BM_InceptionEBlockWithMemoization);
BENCHMARK(BM_InceptionEBlockWithoutMemoization);

}  // namespace

BENCHMARK_MAIN();
