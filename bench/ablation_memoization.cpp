// Ablation: the cost[S] memoization (DESIGN.md item 1). Without it the DP
// re-solves shared sub-schedules and the number of explored transitions
// explodes; with it the search visits each state once. Reported both as a
// google-benchmark timing and as transition counts.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "runtime/canonical_cache.hpp"

namespace {

using namespace ios;

void run_dp(bool memoize, benchmark::State& state) {
  const Graph g = models::fig2_graph(1);
  for (auto _ : state) {
    CostModel cost(g, bench::config_for(tesla_v100()));
    SchedulerOptions options;
    options.memoize = memoize;
    SchedulerStats stats;
    const Schedule q = IosScheduler(cost, options).schedule_graph(&stats);
    benchmark::DoNotOptimize(q);
    state.counters["transitions"] =
        static_cast<double>(stats.transitions);
    state.counters["measurements"] =
        static_cast<double>(stats.measurements);
  }
}

void BM_DpWithMemoization(benchmark::State& state) { run_dp(true, state); }
void BM_DpWithoutMemoization(benchmark::State& state) { run_dp(false, state); }

BENCHMARK(BM_DpWithMemoization);
BENCHMARK(BM_DpWithoutMemoization);

// A wider block (the Inception-E block, n=11) where the gap is dramatic.
void run_block_dp(bool memoize, benchmark::State& state) {
  const Graph g = models::inception_v3(1);
  const auto blocks = g.blocks();
  for (auto _ : state) {
    CostModel cost(g, bench::config_for(tesla_v100()));
    SchedulerOptions options;
    options.memoize = memoize;
    // Keep the no-memo variant tractable with the default pruning.
    SchedulerStats stats;
    IosScheduler scheduler(cost, options);
    const Schedule q = scheduler.schedule_block(blocks[10], &stats);
    benchmark::DoNotOptimize(q);
    state.counters["transitions"] = static_cast<double>(stats.transitions);
  }
}

void BM_InceptionEBlockWithMemoization(benchmark::State& state) {
  run_block_dp(true, state);
}
void BM_InceptionEBlockWithoutMemoization(benchmark::State& state) {
  run_block_dp(false, state);
}

BENCHMARK(BM_InceptionEBlockWithMemoization);
BENCHMARK(BM_InceptionEBlockWithoutMemoization);

// Memoization across *requests*: the canonical stage cache is the same idea
// one level up — a stage whose expanded kernel streams were already
// simulated by any earlier request costs nothing, whichever model asked.
// Runs ResNet-50's search against a fresh cache versus one primed by a
// ResNet-34 search (the primed iteration's wall time includes the priming
// search itself — compare the counters, not the times): measurements drops
// and cross_model_hits shows how much of the second model's profiling the
// first one paid for.
void run_cross_reuse(bool primed, benchmark::State& state) {
  const Graph first = models::resnet34(1);
  const Graph second = models::resnet50(1);
  for (auto _ : state) {
    CanonicalStageCache cache;  // per-iteration: no state leaks across runs
    if (primed) {
      CostModel warm(first, bench::config_for(tesla_v100()));
      warm.enable_canonical_reuse(&cache);
      IosScheduler(warm, SchedulerOptions{}).schedule_graph();
    }
    CostModel cost(second, bench::config_for(tesla_v100()));
    cost.enable_canonical_reuse(&cache);
    SchedulerStats stats;
    const Schedule q =
        IosScheduler(cost, SchedulerOptions{}).schedule_graph(&stats);
    benchmark::DoNotOptimize(q);
    state.counters["measurements"] = static_cast<double>(stats.measurements);
    state.counters["canonical_hits"] =
        static_cast<double>(stats.canonical_hits);
    state.counters["cross_model_hits"] =
        static_cast<double>(stats.cross_model_hits);
  }
}

void BM_SecondModelFreshCache(benchmark::State& state) {
  run_cross_reuse(false, state);
}
void BM_SecondModelPrimedCache(benchmark::State& state) {
  run_cross_reuse(true, state);
}

BENCHMARK(BM_SecondModelFreshCache);
BENCHMARK(BM_SecondModelPrimedCache);

}  // namespace

BENCHMARK_MAIN();
