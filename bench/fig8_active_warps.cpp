// Figure 8: active warps over time for the sequential schedule vs the IOS
// schedule of the Figure 2 model. The IOS schedule keeps substantially more
// warps resident (paper: 2.7e8 vs 1.7e8 warps/ms, a 1.58x increase), which
// is the microarchitectural explanation of the speedup.

#include <cstdio>

#include "bench/common.hpp"

namespace {

/// Samples a piecewise-constant warp trace at a fixed period.
std::vector<double> sample(const ios::SimResult& r, double period_us,
                           int samples) {
  std::vector<double> out;
  std::size_t seg = 0;
  for (int i = 0; i < samples; ++i) {
    const double t = i * period_us;
    while (seg + 1 < r.warp_trace.size() &&
           r.warp_trace[seg + 1].t_us <= t) {
      ++seg;
    }
    out.push_back(t <= r.makespan_us && !r.warp_trace.empty()
                      ? r.warp_trace[seg].active_warps
                      : 0.0);
  }
  return out;
}

}  // namespace

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();
  const Graph g = models::fig2_graph(1);
  Executor ex(g, bench::config_for(dev));

  const SimResult seq = ex.run_schedule(sequential_schedule(g));
  const SimResult ios_run = ex.run_schedule(bench::ios_schedule(g, dev));

  std::printf("Figure 8: active warps, sequential vs IOS (Figure 2 model, "
              "%s)\n\n", dev.name.c_str());

  const int samples = 24;
  const double horizon = std::max(seq.makespan_us, ios_run.makespan_us);
  const double period = horizon / samples;
  const auto s_seq = sample(seq, period, samples);
  const auto s_ios = sample(ios_run, period, samples);

  TablePrinter t({"t (us)", "Sequential", "IOS"});
  for (int i = 0; i < samples; ++i) {
    t.add_row({TablePrinter::fmt(i * period, 1),
               TablePrinter::fmt(s_seq[static_cast<std::size_t>(i)], 0),
               TablePrinter::fmt(s_ios[static_cast<std::size_t>(i)], 0)});
  }
  t.print();

  const double seq_rate = seq.warp_time_integral() / seq.makespan_us;
  const double ios_rate = ios_run.warp_time_integral() / ios_run.makespan_us;
  std::printf(
      "\nmean active warps: sequential %.0f, IOS %.0f -> %.2fx more active "
      "warps (paper: 1.58x)\n",
      seq_rate, ios_rate, ios_rate / seq_rate);
  return 0;
}
