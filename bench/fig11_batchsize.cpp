// Figure 11: Inception V3 throughput (images/s) across batch sizes 1..128
// for Sequential, TVM-cuDNN, TASO, TensorRT, and IOS. Expected shape:
// throughput grows with batch and saturates; IOS stays on top at every
// batch size, with the largest relative win at small batches.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  std::printf("Figure 11: Inception V3 throughput (images/s) vs batch size, "
              "Tesla V100\n\n");

  TablePrinter t({"batch", "Sequential", "TVM-cuDNN", "TASO", "TensorRT",
                  "IOS", "IOS speedup vs best baseline"});
  for (int batch : {1, 16, 32, 64, 128}) {
    const Graph g = models::inception_v3(batch);
    Executor ex(g, bench::config_for(dev));
    auto thr = [&](double lat_us) { return batch / (lat_us / 1e6); };

    const double seq = ex.schedule_latency_us(sequential_schedule(g));
    const double tvm =
        frameworks::run_framework(g, dev, frameworks::tvm_cudnn_spec())
            .latency_us;
    const double taso =
        frameworks::run_framework(g, dev, frameworks::taso_spec()).latency_us;
    const double trt =
        frameworks::run_framework(g, dev, frameworks::tensorrt_spec())
            .latency_us;
    const double ios_lat =
        bench::latency_us(g, dev, bench::ios_schedule(g, dev));
    const double best_baseline = std::min({seq, tvm, taso, trt});

    t.add_row({std::to_string(batch), TablePrinter::fmt(thr(seq), 0),
               TablePrinter::fmt(thr(tvm), 0), TablePrinter::fmt(thr(taso), 0),
               TablePrinter::fmt(thr(trt), 0),
               TablePrinter::fmt(thr(ios_lat), 0),
               TablePrinter::fmt(best_baseline / ios_lat, 2) + "x"});
  }
  t.print();
  return 0;
}
