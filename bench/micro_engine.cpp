// Micro-benchmarks of the infrastructure itself: simulator event-loop
// throughput, ending enumeration, width computation, and a full network
// scheduling pass. These guard the optimization cost claims (Figure 9's
// wall-clock column) against regressions.

#include <benchmark/benchmark.h>

#include "bench/common.hpp"
#include "core/analysis.hpp"

namespace {

using namespace ios;

void BM_EngineSingleStream(benchmark::State& state) {
  Engine engine(tesla_v100());
  KernelStream stream;
  for (int i = 0; i < 32; ++i) {
    KernelDesc k;
    k.flops = 1e8 + i * 1e6;
    k.bytes = 1e6;
    k.warps = 500;
    k.efficiency = 0.8;
    stream.push_back(k);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run({stream}).makespan_us);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EngineSingleStream);

void BM_EngineEightStreams(benchmark::State& state) {
  Engine engine(tesla_v100());
  std::vector<KernelStream> streams(8);
  for (auto& s : streams) {
    for (int i = 0; i < 4; ++i) {
      KernelDesc k;
      k.flops = 2e8;
      k.bytes = 2e6;
      k.warps = 400;
      k.efficiency = 0.8;
      s.push_back(k);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run(streams).makespan_us);
  }
  state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_EngineEightStreams);

void BM_EndingEnumerationInceptionE(benchmark::State& state) {
  const Graph g = models::inception_v3(1);
  const BlockDag dag(g, g.blocks()[10]);
  for (auto _ : state) {
    std::int64_t count = 0;
    dag.for_each_ending(dag.all(), 64, [&](Set64) { ++count; });
    benchmark::DoNotOptimize(count);
  }
}
BENCHMARK(BM_EndingEnumerationInceptionE);

void BM_WidthNasnetCell(benchmark::State& state) {
  const Graph g = models::nasnet_a(1);
  const auto block = largest_block_complexity(g);
  const auto blocks = g.blocks();
  const BlockDag dag(g, blocks[static_cast<std::size_t>(block.block_index)]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(dag.width());
  }
}
BENCHMARK(BM_WidthNasnetCell);

void BM_ScheduleInceptionV3(benchmark::State& state) {
  const Graph g = models::inception_v3(1);
  for (auto _ : state) {
    const Schedule q = bench::ios_schedule(g, tesla_v100());
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(BM_ScheduleInceptionV3)->Unit(benchmark::kMillisecond);

void BM_StageLatencyMeasurement(benchmark::State& state) {
  const Graph g = models::inception_v3(1);
  Executor ex(g, bench::config_for(tesla_v100()));
  const Schedule q = greedy_schedule(g);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ex.schedule_latency_us(q));
  }
}
BENCHMARK(BM_StageLatencyMeasurement);

}  // namespace

BENCHMARK_MAIN();
