// Section 5 observation: ResNet-34/50 expose almost no inter-operator
// parallelism (only the downsample shortcut can overlap the main path), so
// IOS gains only 2-5%. This bench reproduces that claim and contrasts it
// with the multi-branch Inception V3.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  std::printf("ResNet has limited inter-operator parallelism (paper "
              "Section 5: 2-5%% speedup)\n\n");

  TablePrinter t({"model", "sequential (ms)", "IOS (ms)", "speedup"});
  const bench::NamedModel rows[] = {
      {"ResNet-34", [](int b) { return models::resnet34(b); }},
      {"ResNet-50", [](int b) { return models::resnet50(b); }},
      {"Inception V3", [](int b) { return models::inception_v3(b); }},
  };
  for (const auto& m : rows) {
    const Graph g = m.build(1);
    Executor ex(g, bench::config_for(dev));
    const double seq = ex.schedule_latency_us(sequential_schedule(g));
    const double ios_lat =
        bench::latency_us(g, dev, bench::ios_schedule(g, dev));
    t.add_row({m.name, TablePrinter::fmt(seq / 1000.0, 2),
               TablePrinter::fmt(ios_lat / 1000.0, 2),
               TablePrinter::fmt(seq / ios_lat, 3) + "x"});
  }
  t.print();
  return 0;
}
