// Serving benchmark: replays a saturating Poisson request trace through
// ios::serve::Server and sweeps worker count x batching policy, writing the
// simulated throughput/latency grid as machine-readable JSON for the perf
// trajectory. Like bench_optimizer this is a plain main() with no
// google-benchmark dependency, so CI can always run it.
//
//   $ ./bench_serving [out.json] [num_requests] [models_csv]
//     out.json      default BENCH_serving.json
//     num_requests  default 400 (CI smoke runs fewer)
//     models_csv    default "squeezenet,inception_v3"
//
// All servers share one sharded recipe cache, so each (model, batch size)
// configuration is optimized exactly once across the whole sweep; the
// simulated serving numbers are unaffected (optimization is off the
// simulated clock).

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "util/json.hpp"
#include "util/names.hpp"

int main(int argc, char** argv) {
  using namespace ios;
  using namespace ios::serve;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_serving.json";
  const int num_requests = argc > 2 ? std::atoi(argv[2]) : 400;
  const std::vector<std::string> models =
      split_csv(argc > 3 ? argv[3] : "squeezenet,inception_v3");

  // A deliberately saturating trace (mean gap 50 us = 20k req/s offered):
  // throughput is then bounded by the workers, which is what the sweep
  // measures.
  TraceSpec spec;
  spec.models = models;
  spec.num_requests = num_requests;
  spec.mean_interarrival_us = 50;
  spec.seed = 7;
  const Trace trace = generate_trace(spec);

  struct Policy {
    const char* name;
    BatchingPolicy batching;
  };
  const std::vector<Policy> policies = {
      {"dynamic", BatchingPolicy{{1, 2, 4, 8}, 2000}},
      {"none", BatchingPolicy{{1}, 0}},
  };
  const std::vector<int> worker_counts = {1, 2, 4};

  auto cache = std::make_shared<ShardedRecipeCache>(RecipeCacheOptions{});
  JsonValue results = JsonValue::array();
  JsonValue monotone_by_policy = JsonValue::object();
  bool all_monotone = true;
  const auto bench_begin = std::chrono::steady_clock::now();

  for (const Policy& policy : policies) {
    double prev_throughput = 0;
    bool monotone = true;
    for (int workers : worker_counts) {
      ServerOptions options;
      options.device = "v100";
      options.num_workers = workers;
      options.batching = policy.batching;
      Server server(options, cache);
      server.prewarm(models, /*threads=*/0);
      const ServingResult run = server.run(trace);
      const ServingStats& s = run.stats;

      monotone = monotone && s.throughput_rps >= prev_throughput;
      prev_throughput = s.throughput_rps;
      std::printf("%-8s workers=%d  %9.1f req/s | mean %8.1f us, p50 %8.1f, "
                  "p99 %9.1f | %lld batches (mean %.2f) | util %.0f%%\n",
                  policy.name, workers, s.throughput_rps, s.mean_latency_us,
                  s.p50_latency_us, s.p99_latency_us,
                  static_cast<long long>(s.batches), s.mean_batch_size,
                  100 * s.worker_utilization);

      JsonValue entry = JsonValue::object();
      entry.set("policy", policy.name);
      entry.set("workers", workers);
      entry.set("throughput_rps", s.throughput_rps);
      entry.set("makespan_us", s.makespan_us);
      entry.set("mean_latency_us", s.mean_latency_us);
      entry.set("p50_latency_us", s.p50_latency_us);
      entry.set("p95_latency_us", s.p95_latency_us);
      entry.set("p99_latency_us", s.p99_latency_us);
      entry.set("mean_batch_size", s.mean_batch_size);
      entry.set("worker_utilization", s.worker_utilization);
      entry.set("batches", s.batches);
      entry.set("cache_hits", s.cache_hits);
      entry.set("cache_misses", s.cache_misses);
      results.push_back(std::move(entry));
    }
    std::printf("%-8s throughput monotone over workers: %s\n", policy.name,
                monotone ? "yes" : "NO");
    monotone_by_policy.set(policy.name, monotone);
    all_monotone = all_monotone && monotone;
  }

  const double bench_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - bench_begin)
          .count();
  const RecipeCacheStats cache_stats = cache->stats();

  JsonValue models_json = JsonValue::array();
  for (const std::string& m : models) models_json.push_back(m);
  JsonValue root = JsonValue::object();
  root.set("bench", "serving");
  root.set("unit", "req/s (simulated)");
  root.set("device", "v100");
  root.set("requests", num_requests);
  root.set("offered_rps", 1e6 / spec.mean_interarrival_us);
  root.set("trace_seed", static_cast<std::int64_t>(spec.seed));
  root.set("models", std::move(models_json));
  root.set("results", std::move(results));
  root.set("throughput_monotone", std::move(monotone_by_policy));
  root.set("cache_hits", cache_stats.hits);
  root.set("cache_misses", cache_stats.misses);
  root.set("wall_ms", bench_wall_ms);
  write_file(out_path, root.dump());
  std::printf("wrote %s (%.0f ms wall)\n", out_path.c_str(), bench_wall_ms);
  if (!all_monotone) {
    std::fprintf(stderr, "FAIL: throughput did not grow monotonically with "
                         "worker count (acceptance criterion)\n");
    return 1;
  }
  return 0;
}
