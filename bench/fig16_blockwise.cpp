// Figure 16 (Appendix C): per-block speedup of IOS over the sequential
// schedule on Inception V3. Later blocks are wider (more branches at lower
// resolution), so the speedup grows toward the back of the network
// (paper: up to 2.3x per block, 1.6x end to end).

#include <cstdio>

#include "bench/common.hpp"
#include "core/analysis.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();
  const Graph g = models::inception_v3(1);

  CostModel cost(g, bench::config_for(dev));
  IosScheduler scheduler(cost);
  Executor ex(g, bench::config_for(dev));

  std::printf("Figure 16: block-wise speedup of IOS over sequential, "
              "Inception V3, batch size 1, Tesla V100\n\n");

  TablePrinter t({"block", "n", "width", "seq (us)", "IOS (us)", "speedup"});
  double seq_total = 0, ios_total = 0;
  const auto blocks = g.blocks();
  for (std::size_t i = 0; i < blocks.size(); ++i) {
    const auto& block = blocks[i];
    const Schedule q = scheduler.schedule_block(block);
    double seq = 0;
    for (OpId id : block) {
      Stage s;
      s.strategy = StageStrategy::kConcurrent;
      s.groups.push_back(Group{{id}});
      seq += ex.stage_latency_us(s);
    }
    const double ios_lat = ex.schedule_latency_us(q);
    seq_total += seq;
    ios_total += ios_lat;
    BlockDag dag(g, block);
    t.add_row({std::to_string(i), std::to_string(dag.size()),
               std::to_string(dag.width()), TablePrinter::fmt(seq, 1),
               TablePrinter::fmt(ios_lat, 1),
               TablePrinter::fmt(seq / ios_lat, 2) + "x"});
  }
  t.print();
  std::printf("\nend-to-end: sequential %.2f ms, IOS %.2f ms, speedup %.2fx "
              "(paper: 1.6x)\n",
              seq_total / 1000.0, ios_total / 1000.0, seq_total / ios_total);
  return 0;
}
