// Figure 12: intra-operator parallelism (TVM-AutoTune) vs inter-operator
// parallelism (IOS). Expected shape: IOS wins on the dense-conv networks
// (Inception V3, SqueezeNet), TVM wins on the separable-conv networks
// (RandWire, NasNet), and IOS's optimization cost is about two orders of
// magnitude smaller (paper: 3 vs 208 GPU hours for all four networks).

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  std::vector<bench::SeriesRow> rows;
  double tvm_cost_s = 0;
  double ios_cost_s = 0;
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    const auto tvm =
        frameworks::run_framework(g, dev, frameworks::tvm_autotune_spec());
    SchedulerStats stats;
    const Schedule q = bench::ios_schedule(g, dev, IosVariant::kBoth,
                                           PruningStrategy{}, &stats);
    tvm_cost_s += tvm.optimization_cost_s;
    ios_cost_s += stats.profiling_cost_us / 1e6 + stats.search_wall_ms / 1e3;
    rows.push_back(bench::SeriesRow{
        m.name, {tvm.latency_us, bench::latency_us(g, dev, q)}});
  }

  bench::print_normalized(
      "Figure 12: TVM-AutoTune vs IOS, batch size 1, Tesla V100",
      {"TVM-AutoTune", "IOS"}, rows);

  std::printf("total optimization cost (all 4 networks, simulated GPU "
              "time):\n  TVM-AutoTune: %.1f GPU-hours\n  IOS: %.2f "
              "GPU-hours (%.0fx cheaper; paper: 208 vs 3 GPU-hours)\n",
              tvm_cost_s / 3600.0, ios_cost_s / 3600.0,
              tvm_cost_s / std::max(ios_cost_s, 1e-9));
  return 0;
}
