// Figure 6: end-to-end comparison of Sequential, Greedy, IOS-Merge,
// IOS-Parallel, and IOS-Both schedules across the four benchmark CNNs at
// batch size 1 on Tesla V100. Throughput is normalized to the best schedule
// per model. Expected shape: IOS-Both >= every other schedule; greedy beats
// sequential on RandWire/NasNet but degrades SqueezeNet.

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  std::vector<bench::SeriesRow> rows;
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    Executor ex(g, bench::config_for(dev));
    bench::SeriesRow row{m.name, {}};
    row.latencies_us.push_back(
        ex.schedule_latency_us(sequential_schedule(g)));
    row.latencies_us.push_back(ex.schedule_latency_us(greedy_schedule(g)));
    for (IosVariant v :
         {IosVariant::kMerge, IosVariant::kParallel, IosVariant::kBoth}) {
      row.latencies_us.push_back(
          bench::latency_us(g, dev, bench::ios_schedule(g, dev, v)));
    }
    rows.push_back(std::move(row));
  }

  bench::print_normalized(
      "Figure 6: schedule comparison, batch size 1, Tesla V100",
      {"Sequential", "Greedy", "IOS-Merge", "IOS-Parallel", "IOS-Both"},
      rows);
  return 0;
}
