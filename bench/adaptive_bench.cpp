// Adaptive-serving benchmark: replays a non-stationary (quiet -> burst ->
// quiet) trace with per-model SLOs through ios::serve::Server and compares
// the SLO-aware adaptive policy (deadline flushing + degrade + load-shift
// re-planning) against a sweep of static max_queue_delay_us configurations
// that face the same SLOs but act on none of them. Writes the grid as
// machine-readable BENCH_adaptive.json and enforces the acceptance gates:
//
//   * the adaptive policy strictly beats every static sweep point on SLO
//     attainment, at equal-or-better sustained throughput (requests
//     completed inside the arrival window — the makespan variant would
//     mostly compare how long each policy holds its last partial batch
//     after the trace stops);
//   * the controller re-planned at least once, and — because the re-plan
//     shares the serving path's recipe cache and profiling database — ran
//     zero new cost-model measurements (a warm re-plan).
//
//   $ ./bench_adaptive [out.json] [num_requests]
//     out.json      default BENCH_adaptive.json
//     num_requests  default 600, split 30/70 across the phases. The whole
//                   grid is a deterministic simulation (tens of ms of wall
//                   time), so CI runs the full default scale; the gates are
//                   defined at that scale.
//
// Like bench_serving this is a plain main() with no google-benchmark
// dependency, so CI can always run it.

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "serve/server.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace ios;
  using namespace ios::serve;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_adaptive.json";
  const int num_requests = argc > 2 ? std::atoi(argv[2]) : 600;
  if (num_requests < 40) {
    std::fprintf(stderr, "bench_adaptive: need at least 40 requests\n");
    return 1;
  }

  // The non-stationary workload: a trickle, then a 9x burst that runs to
  // the end of the trace — the post-burst drain tail is part of what the
  // sweep measures. The burst sits between the workers' batch-1 capacity
  // (which drowns) and their full-batch capacity (which keeps up), the
  // regime where flush policy actually decides who meets deadlines. fig2
  // is the expensive model with the loose SLO; fig5 is cheap and
  // latency-critical.
  TraceSpec spec;
  spec.models = {"fig2", "fig5"};
  spec.phases = {{num_requests * 30 / 100, 900},
                 {num_requests * 70 / 100, 100}};
  spec.seed = 7;
  const Trace trace = generate_trace(spec);

  // One recipe cache and one profiling database across every
  // configuration: recipes are optimized once, and the adaptive
  // controller's re-plans start warm — the zero-measurement gate.
  const std::string profile_db = out_path + ".profiledb";
  std::remove(profile_db.c_str());
  auto cache = std::make_shared<ShardedRecipeCache>(RecipeCacheOptions{});

  const auto base_options = [&profile_db] {
    ServerOptions options;
    options.device = "v100";
    options.num_workers = 2;
    options.batching.batch_sizes = {1, 2, 4};
    options.profile_db = profile_db;
    // Both models carry an SLO so attainment is measured identically in
    // every configuration; only the adaptive run *acts* on them.
    // No single static timer can serve this pair: fig5's tight tail SLO
    // needs dispatch within ~340 us of arrival, while fig2 needs large
    // batches (so, long waits) to fit the burst inside the fleet's
    // capacity. Only per-deadline flushing satisfies both.
    options.slo.models["fig2"] = {2500, 2};
    options.slo.models["fig5"] = {450, 1};
    return options;
  };

  const auto bench_begin = std::chrono::steady_clock::now();
  JsonValue results = JsonValue::array();

  struct Point {
    std::string name;
    ServingStats stats;
    double window_rps = 0;
  };
  std::vector<Point> statics;

  // Sustained throughput, free of the end-of-trace artifact: requests
  // completed inside the arrival window, over that window. The stats'
  // makespan-based throughput_rps also counts how long each policy holds
  // its final partial batches after the last arrival — a tie-breaking
  // accident of where the trace stops, not a property of the policy.
  const double window_us = trace.requests.back().arrival_us;
  const auto window_rps = [window_us](const ServingResult& r) {
    std::int64_t done = 0;
    for (const auto& rec : r.records) {
      if (!rec.shed && rec.completion_us <= window_us) ++done;
    }
    return static_cast<double>(done) / (window_us / 1e6);
  };

  // ---- static sweep: a fixed global timer, SLO-blind ---------------------
  for (double delay : {0.0, 250.0, 500.0, 1000.0, 2000.0, 4000.0}) {
    ServerOptions options = base_options();
    options.batching.max_queue_delay_us = delay;
    options.slo.deadline_flush = false;
    options.slo.degrade = false;
    Server server(options, cache);
    server.prewarm(spec.models, /*threads=*/0);
    const ServingResult r = server.run(trace);
    const ServingStats& s = r.stats;
    statics.push_back({"static_" + std::to_string(static_cast<int>(delay)), s,
                       window_rps(r)});
    std::printf("static delay=%5.0f us  %9.1f req/s | attainment %5.1f%% | "
                "p99 %9.1f us | %lld batches\n",
                delay, statics.back().window_rps, 100 * s.slo_attainment,
                s.p99_latency_us, static_cast<long long>(s.batches));
  }

  // ---- the adaptive policy ----------------------------------------------
  ServerOptions adaptive = base_options();
  adaptive.batching.max_queue_delay_us = 500;  // timer as an upper bound
  // Degrading would save individual deadline-doomed requests, but under a
  // sustained just-over-capacity burst every shrunk batch re-serves its
  // remainder later and the lost capacity costs more downstream misses
  // than the degrade saves; an operator tunes it off for this workload.
  adaptive.slo.degrade = false;
  adaptive.adaptive.enabled = true;
  adaptive.adaptive.warmup_arrivals = 8;
  adaptive.adaptive.min_replan_gap_us = 5000;
  Server server(adaptive, cache);
  server.prewarm(spec.models, /*threads=*/0);
  const ServingResult adaptive_result = server.run(trace);
  const ServingStats& a = adaptive_result.stats;
  const double a_window_rps = window_rps(adaptive_result);
  std::printf("adaptive             %9.1f req/s | attainment %5.1f%% | "
              "p99 %9.1f us | %lld batches (%lld degraded) | %lld re-plans "
              "(%lld measurements)\n",
              a_window_rps, 100 * a.slo_attainment, a.p99_latency_us,
              static_cast<long long>(a.batches),
              static_cast<long long>(a.degraded_batches),
              static_cast<long long>(a.replans),
              static_cast<long long>(a.replan_measurements));

  // ---- gates -------------------------------------------------------------
  bool attainment_wins = true;
  bool throughput_holds = true;
  for (const Point& p : statics) {
    if (!(a.slo_attainment > p.stats.slo_attainment)) {
      attainment_wins = false;
      std::fprintf(stderr,
                   "FAIL: adaptive attainment %.4f does not strictly beat "
                   "%s (%.4f)\n",
                   a.slo_attainment, p.name.c_str(), p.stats.slo_attainment);
    }
    if (!(a_window_rps >= p.window_rps)) {
      throughput_holds = false;
      std::fprintf(stderr,
                   "FAIL: adaptive throughput %.1f req/s below %s (%.1f)\n",
                   a_window_rps, p.name.c_str(), p.window_rps);
    }
  }
  const bool replanned = a.replans >= 1;
  const bool warm_replans = a.replan_measurements == 0;
  if (!replanned) {
    std::fprintf(stderr, "FAIL: the controller never re-planned\n");
  }
  if (!warm_replans) {
    std::fprintf(stderr,
                 "FAIL: re-plans ran %lld new cost-model measurements "
                 "(expected 0: warm cache + profile db)\n",
                 static_cast<long long>(a.replan_measurements));
  }

  // ---- report ------------------------------------------------------------
  const auto entry_json = [](const std::string& name, const ServingStats& s,
                             double window) {
    JsonValue v = JsonValue::object();
    v.set("config", name);
    v.set("throughput_rps", s.throughput_rps);
    v.set("window_throughput_rps", window);
    v.set("slo_attainment", s.slo_attainment);
    v.set("slo_met", s.slo_met);
    v.set("shed", s.shed);
    v.set("degraded_batches", s.degraded_batches);
    v.set("mean_latency_us", s.mean_latency_us);
    v.set("p99_latency_us", s.p99_latency_us);
    v.set("batches", s.batches);
    v.set("mean_batch_size", s.mean_batch_size);
    v.set("replans", s.replans);
    v.set("replan_measurements", s.replan_measurements);
    return v;
  };
  for (const Point& p : statics) {
    results.push_back(entry_json(p.name, p.stats, p.window_rps));
  }
  results.push_back(entry_json("adaptive", a, a_window_rps));

  const double bench_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - bench_begin)
          .count();
  JsonValue gates = JsonValue::object();
  gates.set("attainment_beats_every_static", attainment_wins);
  gates.set("throughput_equal_or_better", throughput_holds);
  gates.set("replanned", replanned);
  gates.set("warm_replans_zero_measurements", warm_replans);

  JsonValue root = JsonValue::object();
  root.set("bench", "adaptive");
  root.set("unit", "SLO attainment fraction / req/s (simulated)");
  root.set("device", "v100");
  root.set("requests", static_cast<std::int64_t>(trace.requests.size()));
  root.set("trace_seed", static_cast<std::int64_t>(spec.seed));
  root.set("results", std::move(results));
  root.set("gates", std::move(gates));
  root.set("wall_ms", bench_wall_ms);
  write_file(out_path, root.dump());
  std::remove(profile_db.c_str());
  std::printf("wrote %s (%.0f ms wall)\n", out_path.c_str(), bench_wall_ms);

  if (!(attainment_wins && throughput_holds && replanned && warm_replans)) {
    return 1;
  }
  return 0;
}
