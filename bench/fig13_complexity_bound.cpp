// Figure 13 / Appendix A: the complexity bound ((n/d+2) choose 2)^d is tight.
// For d independent chains of c operators each, the exact number of DP pairs
// (including empty endings, as counted by Lemma 3) equals the bound.

#include <cstdio>

#include "bench/common.hpp"
#include "core/analysis.hpp"

int main() {
  using namespace ios;

  std::printf("Figure 13: tightness of the ((n/d+2) choose 2)^d transition "
              "bound on d independent chains of c operators\n\n");

  TablePrinter t({"c (chain len)", "d (chains)", "n", "width", "#(S,S')",
                  "#states", "bound", "#(S,S') + #states == bound"});
  for (int d = 1; d <= 4; ++d) {
    for (int c = 1; c <= 4; ++c) {
      const Graph g = models::fig13_chains(1, c, d);
      const BlockDag dag(g, g.blocks()[0]);
      const auto counts = dag.count_transitions();
      const double bound = BlockDag::transition_upper_bound(c * d, d);
      const bool tight =
          static_cast<double>(counts.transitions + counts.states) == bound;
      t.add_row({std::to_string(c), std::to_string(d),
                 std::to_string(c * d), std::to_string(dag.width()),
                 std::to_string(counts.transitions),
                 std::to_string(counts.states), TablePrinter::fmt(bound, 0),
                 tight ? "yes" : "NO"});
    }
  }
  t.print();
  return 0;
}
