// Figure 9: trade-off between optimized latency and optimization cost under
// the schedule pruning strategy P(r, s), for Inception V3 and NasNet with
// r in {1,2,3} and s in {3,8}. Smaller r/s cut the search cost at the price
// of a (slightly) worse schedule.

#include <cstdio>

#include "bench/common.hpp"
#include "runtime/canonical_cache.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  std::printf("Figure 9: pruning trade-off (latency vs optimization cost), "
              "Tesla V100, batch size 1\n");
  std::printf("(paper shape: smaller r and s -> lower optimization cost, "
              "higher latency)\n\n");

  const bench::NamedModel models_under_test[] = {
      {"Inception V3", [](int b) { return models::inception_v3(b); }},
      {"NasNet", [](int b) { return models::nasnet_a(b); }},
  };

  for (const auto& m : models_under_test) {
    const Graph g = m.build(1);
    TablePrinter t({"pruning", "latency (ms)", "opt cost (sim s)",
                    "#measurements", "DP transitions", "wall (ms)"});
    for (int s : {8, 3}) {
      for (int r : {3, 2, 1}) {
        SchedulerStats stats;
        const Schedule q = bench::ios_schedule(
            g, dev, IosVariant::kBoth, PruningStrategy{r, s}, &stats);
        const double lat = bench::latency_us(g, dev, q);
        t.add_row({"r=" + std::to_string(r) + " s=" + std::to_string(s),
                   TablePrinter::fmt(lat / 1000.0, 3),
                   TablePrinter::fmt(stats.profiling_cost_us / 1e6, 2),
                   std::to_string(stats.measurements),
                   std::to_string(stats.transitions),
                   TablePrinter::fmt(stats.search_wall_ms, 0)});
      }
    }
    std::printf("%s\n", m.name.c_str());
    t.print();

    // The paper also reports that even r=1, s=8 keeps a large speedup over
    // the sequential schedule (1.59x Inception, 1.37x NasNet).
    Executor ex(g, bench::config_for(dev));
    const double seq = ex.schedule_latency_us(sequential_schedule(g));
    const double pruned = bench::latency_us(
        g, dev, bench::ios_schedule(g, dev, IosVariant::kBoth,
                                    PruningStrategy{1, 8}));
    std::printf("speedup of r=1,s=8 over sequential: %.2fx\n\n", seq / pruned);
  }

  // Beyond P(r, s): the optimization cost of a *fleet* of models also drops
  // when requests share the canonical stage cache — stages whose expanded
  // kernel streams coincide are simulated once per process, not once per
  // model. ResNet-50 after ResNet-34 answers part of its profiling from the
  // earlier model's measurements (cross-model hits), on top of the
  // within-model canonical collapses.
  std::printf("cross-request reuse (shared canonical stage cache, "
              "ResNet-34 then ResNet-50)\n");
  CanonicalStageCache cache;
  TablePrinter reuse({"model", "#measurements", "canonical hits",
                      "cross-model hits", "block-schedule hits"});
  const bench::NamedModel fleet[] = {
      {"ResNet-34", [](int b) { return models::resnet34(b); }},
      {"ResNet-50", [](int b) { return models::resnet50(b); }},
  };
  for (const auto& m : fleet) {
    const Graph g = m.build(1);
    CostModel cost(g, bench::config_for(dev));
    cost.enable_canonical_reuse(&cache);
    SchedulerOptions options;
    options.cross_block_reuse = true;
    SchedulerStats stats;
    IosScheduler(cost, options).schedule_graph(&stats);
    reuse.add_row({m.name, std::to_string(stats.measurements),
                   std::to_string(stats.canonical_hits),
                   std::to_string(stats.cross_model_hits),
                   std::to_string(stats.block_cache_hits)});
  }
  reuse.print();
  return 0;
}
