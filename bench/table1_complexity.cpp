// Table 1: for the largest block of each benchmarked network, the number of
// operators n, the width d, the transition upper bound ((n/d+2) choose 2)^d,
// the exact number of transitions #(S, S'), and the number of feasible
// schedules. Paper reference values are printed alongside.

#include <cstdio>

#include "bench/common.hpp"
#include "core/analysis.hpp"

namespace {

std::string sci(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1e", v);
  return buf;
}

}  // namespace

int main() {
  using namespace ios;

  std::printf(
      "Table 1: DP complexity of the largest block of each network\n"
      "(paper reference: InceptionV3 n=11 d=6 bound=2.6e4 #(S,S')=4.9e3 "
      "#sched=3.8e6; RandWire 33/8/3.7e9/1.2e6/9.2e22;\n"
      " NasNet 18/8/5.2e6/3.1e5/7.2e12; SqueezeNet 6/3/2.2e2/51/1.3e2)\n\n");

  TablePrinter t({"Model", "n", "d", "bound", "#(S,S')", "#Schedules"});
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    BlockComplexity c;
    if (m.name == "Inception V3") {
      // The paper's row is the Inception-E block (n=11). Our operator
      // counting makes the Inception-B block slightly larger (n=12), so we
      // report the paper's block; the B block is shown as a footnote below.
      c = analyze_block(g, g.blocks()[10], 10);
    } else {
      c = largest_block_complexity(g);
    }
    t.add_row({m.name, std::to_string(c.n), std::to_string(c.d),
               sci(c.upper_bound), sci(static_cast<double>(c.transitions)),
               sci(c.num_schedules)});
  }
  t.print();

  const Graph g = models::inception_v3(1);
  const BlockComplexity b = largest_block_complexity(g);
  std::printf(
      "\nnote: under our op counting the largest Inception V3 block is the "
      "Inception-B block:\n      n=%d d=%d bound=%s #(S,S')=%s #sched=%s\n",
      b.n, b.d, sci(b.upper_bound).c_str(),
      sci(static_cast<double>(b.transitions)).c_str(),
      sci(b.num_schedules).c_str());
  return 0;
}
