// Figure 15 (Appendix B): the Figure 7 framework comparison repeated on an
// RTX 2080Ti.

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = rtx_2080ti();

  std::vector<std::string> methods;
  for (const auto& spec : frameworks::cudnn_baselines()) {
    methods.push_back(spec.name);
  }
  methods.push_back("IOS");

  std::vector<bench::SeriesRow> rows;
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    bench::SeriesRow row{m.name, {}};
    for (const auto& spec : frameworks::cudnn_baselines()) {
      row.latencies_us.push_back(
          frameworks::run_framework(g, dev, spec).latency_us);
    }
    row.latencies_us.push_back(
        bench::latency_us(g, dev, bench::ios_schedule(g, dev)));
    rows.push_back(std::move(row));
  }

  bench::print_normalized(
      "Figure 15: cuDNN-based framework comparison, batch size 1, RTX 2080Ti",
      methods, rows);
  return 0;
}
