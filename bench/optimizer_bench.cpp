// Facade benchmark: times ios::Optimizer cold (full profile + DP search)
// versus warm (recipe-cache hit) on zoo models and writes the results as
// machine-readable JSON for the perf trajectory. Unlike the other bench
// binaries this is a plain main() with no google-benchmark dependency, so CI
// can always run it.
//
//   $ ./bench_optimizer [out.json]        # default: BENCH_optimizer.json

#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "api/optimizer.hpp"
#include "util/json.hpp"

namespace {

double wall_ms(std::chrono::steady_clock::time_point begin,
               std::chrono::steady_clock::time_point end) {
  return std::chrono::duration<double, std::milli>(end - begin).count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace ios;
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_optimizer.json";
  const std::vector<std::string> models = {"squeezenet", "inception_v3",
                                           "nasnet"};

  Optimizer optimizer;
  JsonValue results = JsonValue::array();
  for (const std::string& model : models) {
    const OptimizationRequest request =
        OptimizationRequest::for_model(model, "v100", 1);

    const auto t0 = std::chrono::steady_clock::now();
    const OptimizationResult cold = optimizer.optimize(request);
    const auto t1 = std::chrono::steady_clock::now();
    const OptimizationResult warm = optimizer.optimize(request);
    const auto t2 = std::chrono::steady_clock::now();

    const double cold_ms = wall_ms(t0, t1);
    const double warm_ms = wall_ms(t1, t2);
    std::printf("%-14s cold %8.1f ms (%lld profiles) | cached %6.2f ms "
                "(hit=%d) | IOS %.3f ms, %.2fx over sequential\n",
                model.c_str(), cold_ms,
                static_cast<long long>(cold.new_measurements), warm_ms,
                warm.cache_hit ? 1 : 0, cold.latency_us / 1000.0,
                cold.baseline("sequential")->speedup);

    JsonValue entry = JsonValue::object();
    entry.set("model", model);
    entry.set("device", "v100");
    entry.set("batch", 1);
    entry.set("cold_wall_ms", cold_ms);
    entry.set("cached_wall_ms", warm_ms);
    entry.set("cache_hit", warm.cache_hit);
    entry.set("measurements", cold.new_measurements);
    entry.set("cached_measurements", warm.new_measurements);
    entry.set("search_states", cold.stats.states);
    entry.set("search_wall_ms", cold.stats.search_wall_ms);
    entry.set("profiling_cost_us", cold.stats.profiling_cost_us);
    entry.set("ios_latency_us", cold.latency_us);
    entry.set("sequential_latency_us",
              cold.baseline("sequential")->latency_us);
    entry.set("greedy_latency_us", cold.baseline("greedy")->latency_us);
    entry.set("speedup_over_sequential",
              cold.baseline("sequential")->speedup);
    results.push_back(std::move(entry));
  }

  JsonValue root = JsonValue::object();
  root.set("bench", "optimizer");
  root.set("unit", "ms");
  root.set("results", std::move(results));
  write_file(out_path, root.dump());
  std::printf("wrote %s\n", out_path.c_str());
  return 0;
}
