// Extension beyond the paper's evaluation: Nimble (Kwon et al. 2020, cited
// in related work) parallelizes operators with ahead-of-time scheduling but
// is latency-oblivious. We compare: stock sequential/greedy, Nimble (greedy
// + AOT overhead elimination), IOS on the stock engine, and IOS on the same
// AOT engine — showing that (a) AOT dispatch helps a lot at batch 1, and
// (b) a profile-based schedule still beats a latency-oblivious one on the
// same engine, the paper's related-work claim.

#include <cstdio>

#include "bench/common.hpp"

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();
  DeviceSpec aot = dev;
  aot.kernel_launch_us *= 0.15;
  aot.stage_sync_us *= 0.25;
  aot.stream_sync_us *= 0.25;

  std::printf("Extension: Nimble-style AOT scheduling vs IOS (batch 1, "
              "V100-class device)\n\n");

  TablePrinter t({"model", "Sequential", "Greedy", "Nimble (AOT greedy)",
                  "IOS", "IOS+AOT", "IOS+AOT vs Nimble"});
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    Executor stock(g, bench::config_for(dev));
    Executor aot_exec(g, bench::config_for(aot));
    const double seq = stock.schedule_latency_us(sequential_schedule(g));
    const double greedy = stock.schedule_latency_us(greedy_schedule(g));
    const double nimble = frameworks::run_nimble(g, dev).latency_us;
    const double ios_lat =
        stock.schedule_latency_us(bench::ios_schedule(g, dev));
    const double ios_aot =
        aot_exec.schedule_latency_us(bench::ios_schedule(g, aot));
    t.add_row({m.name, TablePrinter::fmt(seq / 1000, 3),
               TablePrinter::fmt(greedy / 1000, 3),
               TablePrinter::fmt(nimble / 1000, 3),
               TablePrinter::fmt(ios_lat / 1000, 3),
               TablePrinter::fmt(ios_aot / 1000, 3),
               TablePrinter::fmt(nimble / ios_aot, 2) + "x"});
  }
  t.print();
  return 0;
}
