// Figure 10: the schedules IOS finds for the last block of Inception V3
// when optimizing for batch size 1 vs batch size 32, and the cross-executed
// latencies (paper: the bs-1 schedule is 28% faster at bs 1; the bs-32
// schedule is 8% faster at bs 32; the bs-32 schedule has more stages and
// uses operator merge).

#include <cstdio>

#include "bench/common.hpp"

namespace {

ios::Schedule schedule_last_block(const ios::Graph& g,
                                  const ios::DeviceSpec& dev) {
  using namespace ios;
  CostModel cost(g, bench::config_for(dev));
  IosScheduler scheduler(cost);
  const auto blocks = g.blocks();
  // Block 11 is the second Inception-E block (the network's last
  // inception block).
  return scheduler.schedule_block(blocks[11]);
}

double block_latency(const ios::Graph& g, const ios::DeviceSpec& dev,
                     const ios::Schedule& q) {
  ios::Executor ex(g, ios::bench::config_for(dev));
  return ex.schedule_latency_us(q);
}

}  // namespace

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();

  const Graph g1 = models::inception_v3(1);
  const Graph g32 = models::inception_v3(32);

  const Schedule q1 = schedule_last_block(g1, dev);
  const Schedule q32 = schedule_last_block(g32, dev);

  std::printf("Figure 10: IOS schedules for the last Inception V3 block\n\n");
  std::printf("schedule optimized for batch size 1 (%zu stages):\n%s\n",
              q1.stages.size(), q1.to_string(g1).c_str());
  std::printf("schedule optimized for batch size 32 (%zu stages):\n%s\n",
              q32.stages.size(), q32.to_string(g32).c_str());

  const double l1_q1 = block_latency(g1, dev, q1);
  const double l1_q32 = block_latency(g1, dev, q32);
  const double l32_q1 = block_latency(g32, dev, q1);
  const double l32_q32 = block_latency(g32, dev, q32);

  std::printf("block latency at bs=1:  schedule(1) %.1f us, schedule(32) "
              "%.1f us -> schedule(1) is %.0f%% faster (paper: 28%%)\n",
              l1_q1, l1_q32, (l1_q32 / l1_q1 - 1) * 100);
  std::printf("block latency at bs=32: schedule(1) %.1f us, schedule(32) "
              "%.1f us -> schedule(32) is %.0f%% faster (paper: 8%%)\n",
              l32_q1, l32_q32, (l32_q1 / l32_q32 - 1) * 100);
  return 0;
}
