// Search-engine benchmark: times the DP search core — the serial recursive
// reference engine versus the wave-parallel bottom-up engine at 1/2/4
// threads — on the models whose largest block dominates the search (the
// per-block parallelism of schedule_partition cannot help those; only the
// wave engine's intra-block fan-out can). Every engine run uses a fresh
// CostModel so measured stage latencies are re-simulated, not served from a
// previous run's cache, and the resulting schedules are checked to be
// bit-identical across engines and thread counts.
//
// Like bench_optimizer this is a plain main() (no google-benchmark) that
// writes machine-readable JSON for the perf trajectory:
//
//   $ ./bench_search [out.json] [repeats]     # default: BENCH_search.json, 2
//
// Exit status is the CI gate: nonzero when any engine/thread count changes
// the schedule, or when — on a multi-core host — the 4-thread wave search
// is slower than the serial engine. On a single-core host the wall-time
// gate is recorded as skipped (there is nothing to fan out to).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "models/models.hpp"
#include "runtime/executor.hpp"
#include "sim/device.hpp"
#include "util/json.hpp"

namespace {

using namespace ios;

struct RunResult {
  double wall_ms = 0;          // best-of-repeats host time of the search
  double latency_us = 0;       // executor latency of the found schedule
  std::size_t stages = 0;
  SchedulerStats stats;
};

RunResult run_search(const Graph& g, const ExecConfig& config,
                     SearchEngine engine, int threads, int repeats) {
  RunResult out;
  out.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    CostModel cost(g, config);  // fresh: no cached stage latencies
    SchedulerOptions options;
    options.engine = engine;
    options.num_threads = threads;
    SchedulerStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const Schedule q = IosScheduler(cost, options).schedule_graph(&stats);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < out.wall_ms) out.wall_ms = ms;
    out.latency_us = Executor(g, config).schedule_latency_us(q);
    out.stages = q.stages.size();
    out.stats = stats;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_search.json";
  const int repeats = argc > 2 ? std::max(1, std::atoi(argv[2])) : 2;
  const unsigned hw = std::thread::hardware_concurrency();
  const bool multi_core = hw >= 2;
  const std::vector<std::string> models = {"randwire", "nasnet",
                                           "inception_v3"};
  const std::vector<int> wave_threads = {1, 2, 4};

  std::printf("search engines on %u hardware threads (best of %d runs, "
              "wall-time gate %s)\n\n",
              hw, repeats, multi_core ? "enforced" : "skipped: single core");

  bool ok = true;
  JsonValue results = JsonValue::array();
  for (const std::string& model : models) {
    const Graph g = models::build_model(model, 1);
    const ExecConfig config{device_by_name("v100"), KernelModelParams{}};

    const RunResult serial =
        run_search(g, config, SearchEngine::kSerial, 1, repeats);
    std::printf("%-14s serial %9.1f ms  (%lld states, %lld transitions, "
                "%lld profiles)\n",
                model.c_str(), serial.wall_ms,
                static_cast<long long>(serial.stats.states),
                static_cast<long long>(serial.stats.transitions),
                static_cast<long long>(serial.stats.measurements));

    JsonValue entry = JsonValue::object();
    entry.set("model", model);
    entry.set("device", "v100");
    entry.set("serial_wall_ms", serial.wall_ms);
    entry.set("states", serial.stats.states);
    entry.set("transitions", serial.stats.transitions);
    entry.set("measurements", serial.stats.measurements);
    entry.set("latency_us", serial.latency_us);

    JsonValue waves = JsonValue::object();
    double wave1_ms = 0, wave4_ms = 0;
    for (const int threads : wave_threads) {
      const RunResult wave =
          run_search(g, config, SearchEngine::kWave, threads, repeats);
      const bool identical = wave.latency_us == serial.latency_us &&
                             wave.stages == serial.stages &&
                             wave.stats.states == serial.stats.states &&
                             wave.stats.transitions == serial.stats.transitions;
      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: %s wave@%d diverged from serial "
                     "(latency %.6f vs %.6f us, %zu vs %zu stages)\n",
                     model.c_str(), threads, wave.latency_us,
                     serial.latency_us, wave.stages, serial.stages);
        ok = false;
      }
      std::printf("               wave@%d %9.1f ms  (%.2fx vs serial)%s\n",
                  threads, wave.wall_ms, serial.wall_ms / wave.wall_ms,
                  identical ? "" : "  [MISMATCH]");
      waves.set(std::to_string(threads), wave.wall_ms);
      if (threads == 1) wave1_ms = wave.wall_ms;
      if (threads == 4) wave4_ms = wave.wall_ms;
    }
    entry.set("wave_wall_ms", std::move(waves));
    entry.set("speedup_wave4_vs_wave1", wave1_ms / wave4_ms);
    entry.set("speedup_wave4_vs_serial", serial.wall_ms / wave4_ms);

    if (multi_core && wave4_ms > serial.wall_ms) {
      std::fprintf(stderr,
                   "FAIL: %s wave@4 (%.1f ms) slower than serial (%.1f ms) "
                   "on a multi-core host\n",
                   model.c_str(), wave4_ms, serial.wall_ms);
      ok = false;
    }
    results.push_back(std::move(entry));
  }

  JsonValue root = JsonValue::object();
  root.set("bench", "search");
  root.set("unit", "ms");
  root.set("hardware_threads", static_cast<std::int64_t>(hw));
  root.set("wall_time_gate",
           multi_core ? "enforced" : "skipped-single-core");
  root.set("results", std::move(results));
  write_file(out_path, root.dump());
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "search bench FAILED\n");
    return 1;
  }
  return 0;
}
