// Search-engine benchmark: pins the DP search core's constant factors. Per
// model it runs the serial recursive reference, the previous wave solver
// (SearchEngine::kWaveLegacy, kept verbatim as the in-tree baseline), the
// arena-backed wave engine at 1/2/4 threads, the dominance pruner, and a
// beam-width frontier — and gates the ratios, not just correctness.
//
// Measurement protocol: every timed run shares ONE CostModel per model that
// a single untimed exact pass has already warmed. Exact enumeration visits
// a superset of every stage any engine or prune mode can request, so each
// timed run is 100% cache-warm: wall time measures the search engine's own
// work (enumeration, hashing, memo upkeep, pruning bookkeeping), not the
// stage simulator. That makes states/sec comparable across engines and
// reproducible on loaded or single-core CI hosts, where cold multi-thread
// walls are dominated by simulator time and scheduler jitter.
//
// Peak RSS is measured in forked children (getrusage RUSAGE_SELF), forked
// BEFORE any in-process search so the legacy and arena children inherit an
// identical parent image and their ru_maxrss deltas are attributable to the
// engines' own state (per-state transition vectors + node heap vs arena
// waves).
//
// Like bench_optimizer this is a plain main() (no google-benchmark) that
// writes machine-readable JSON for the perf trajectory:
//
//   $ ./bench_search [out.json] [repeats]     # default: BENCH_search.json, 2
//
// Exit status is the CI gate; any of these fail the run:
//   - exactness: wave@{1,2,4} and legacy@4 bit-identical to serial
//     (latency, stages, states, transitions) — divergence is fatal;
//   - dominance: the exact optimum latency (tie-broken schedules may
//     differ), latency_gap_bound_us == 0, strictly fewer distinct stage
//     profiles than exact (cold, deterministic), and lower aggregate COLD
//     wall time — cold is where pruning pays, since the saving is skipped
//     stage simulations;
//   - beam: found latency never below exact, and the certified bound holds
//     (found - gap_bound <= exact) at every width;
//   - throughput: aggregate warm states/sec of the arena wave engine @4
//     threads >= 1.3x the legacy baseline @4 threads;
//   - memory: the arena engine's cold peak RSS on randwire (largest search)
//     below the legacy engine's.

#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "core/scheduler.hpp"
#include "models/models.hpp"
#include "runtime/executor.hpp"
#include "sim/device.hpp"
#include "util/json.hpp"

namespace {

using namespace ios;

constexpr double kStatesPerSecGate = 1.3;  // arena wave@4 vs legacy@4, warm
constexpr int kGateThreads = 4;

ExecConfig bench_config() {
  return ExecConfig{device_by_name("v100"), KernelModelParams{}};
}

struct RunResult {
  double wall_ms = 0;     // best-of-repeats host time of the search
  double latency_us = 0;  // executor latency of the found schedule
  std::size_t stages = 0;
  SchedulerStats stats;

  double states_per_sec() const {
    return static_cast<double>(stats.states) / (wall_ms / 1000.0);
  }
};

/// One timed search against the shared warm cost model. Repeats re-run the
/// whole search (the per-block DP memo is per-run; only stage latencies are
/// shared) and keep the best wall time.
RunResult run_warm(const Graph& g, CostModel& cost,
                   const SchedulerOptions& options, int repeats) {
  RunResult out;
  out.wall_ms = std::numeric_limits<double>::infinity();
  for (int rep = 0; rep < repeats; ++rep) {
    SchedulerStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const Schedule q = IosScheduler(cost, options).schedule_graph(&stats);
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - t0)
                          .count();
    if (ms < out.wall_ms) out.wall_ms = ms;
    out.latency_us = Executor(g, bench_config()).schedule_latency_us(q);
    out.stages = q.stages.size();
    out.stats = stats;
  }
  return out;
}

SchedulerOptions make_options(SearchEngine engine, int threads,
                              PruneMode prune = PruneMode::kExact,
                              int beam_width = 8) {
  SchedulerOptions options;
  options.engine = engine;
  options.num_threads = threads;
  options.prune = prune;
  options.beam_width = beam_width;
  return options;
}

/// Cold search in a forked child; returns the child's peak RSS in KiB, or
/// -1 on failure. Called before any in-process search so every child starts
/// from the same pristine parent image.
long forked_peak_rss_kb(const std::string& model, SearchEngine engine,
                        int threads) {
  int fds[2];
  if (pipe(fds) != 0) return -1;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return -1;
  }
  if (pid == 0) {
    close(fds[0]);
    {
      const Graph g = models::build_model(model, 1);
      CostModel cost(g, bench_config());
      SchedulerStats stats;
      const Schedule q =
          IosScheduler(cost, make_options(engine, threads)).schedule_graph(&stats);
      struct rusage ru {};
      getrusage(RUSAGE_SELF, &ru);
      long kb = q.stages.empty() ? -1 : ru.ru_maxrss;  // ru_maxrss is KiB on Linux
      if (write(fds[1], &kb, sizeof kb) != sizeof kb) _exit(1);
    }
    close(fds[1]);
    _exit(0);
  }
  close(fds[1]);
  long kb = -1;
  const ssize_t got = read(fds[0], &kb, sizeof kb);
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (got != static_cast<ssize_t>(sizeof kb) || !WIFEXITED(status) ||
      WEXITSTATUS(status) != 0) {
    return -1;
  }
  return kb;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string out_path = argc > 1 ? argv[1] : "BENCH_search.json";
  const int repeats = argc > 2 ? std::max(1, std::atoi(argv[2])) : 2;
  const unsigned hw = std::thread::hardware_concurrency();
  const std::vector<std::string> models = {"randwire", "nasnet",
                                           "inception_v3"};
  const std::vector<int> wave_threads = {1, 2, 4};
  const std::vector<int> beam_widths = {2, 4, 8, 16};

  std::printf("search engines on %u hardware threads "
              "(warm-cache protocol, best of %d runs)\n\n",
              hw, repeats);

  // Peak RSS first: fork while this process has run no search, spawned no
  // pool threads, and touched no heap beyond argv handling.
  const std::string rss_model = "randwire";
  const long rss_legacy_kb =
      forked_peak_rss_kb(rss_model, SearchEngine::kWaveLegacy, kGateThreads);
  const long rss_wave_kb =
      forked_peak_rss_kb(rss_model, SearchEngine::kWave, kGateThreads);

  bool ok = true;
  double agg_legacy_states = 0, agg_legacy_sec = 0;
  double agg_wave_states = 0, agg_wave_sec = 0;
  double agg_exact_cold_ms = 0, agg_dominance_cold_ms = 0;
  JsonValue results = JsonValue::array();

  for (const std::string& model : models) {
    const Graph g = models::build_model(model, 1);

    // The cache-warming exact pass doubles as the cold-exact reference: its
    // wall time includes every stage simulation, and its (deterministic)
    // profile count anchors the dominance gate.
    CostModel cost(g, bench_config());
    SchedulerStats warm_stats;
    const auto tw0 = std::chrono::steady_clock::now();
    IosScheduler(cost, make_options(SearchEngine::kWave, kGateThreads))
        .schedule_graph(&warm_stats);
    const double exact_cold_ms = std::chrono::duration<double, std::milli>(
                                     std::chrono::steady_clock::now() - tw0)
                                     .count();
    const std::int64_t exact_profiles = warm_stats.measurements;

    // Dominance evaluates a subset of exact's endings, so a fresh model
    // shows how many stage profiles (and how much cold wall) it saved.
    std::int64_t dominance_profiles = 0;
    double dominance_cold_ms = 0;
    {
      CostModel cold(g, bench_config());
      SchedulerStats stats;
      const auto t0 = std::chrono::steady_clock::now();
      IosScheduler(cold, make_options(SearchEngine::kAuto, kGateThreads,
                                      PruneMode::kDominance))
          .schedule_graph(&stats);
      dominance_cold_ms = std::chrono::duration<double, std::milli>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      dominance_profiles = stats.measurements;
    }
    agg_exact_cold_ms += exact_cold_ms;
    agg_dominance_cold_ms += dominance_cold_ms;

    const RunResult serial =
        run_warm(g, cost, make_options(SearchEngine::kSerial, 1), repeats);
    std::printf("%-14s serial   %9.2f ms  (%lld states, %lld transitions, "
                "%lld profiles)\n",
                model.c_str(), serial.wall_ms,
                static_cast<long long>(serial.stats.states),
                static_cast<long long>(serial.stats.transitions),
                static_cast<long long>(exact_profiles));

    const auto check_identical = [&](const char* name, const RunResult& r) {
      const bool identical = r.latency_us == serial.latency_us &&
                             r.stages == serial.stages &&
                             r.stats.states == serial.stats.states &&
                             r.stats.transitions == serial.stats.transitions;
      if (!identical) {
        std::fprintf(stderr,
                     "FAIL: %s %s diverged from serial "
                     "(latency %.6f vs %.6f us, %zu vs %zu stages)\n",
                     model.c_str(), name, r.latency_us, serial.latency_us,
                     r.stages, serial.stages);
        ok = false;
      }
      return identical;
    };

    // The two sides of the states/sec gate always get at least three
    // repeats: best-of-N keeps a stray scheduler hiccup on a loaded host
    // from deciding the ratio.
    const int gate_repeats = std::max(repeats, 3);
    const RunResult legacy = run_warm(
        g, cost, make_options(SearchEngine::kWaveLegacy, kGateThreads),
        gate_repeats);
    check_identical("legacy@4", legacy);
    std::printf("               legacy@%d %9.2f ms  (%.0f states/s)\n",
                kGateThreads, legacy.wall_ms, legacy.states_per_sec());
    agg_legacy_states += static_cast<double>(legacy.stats.states);
    agg_legacy_sec += legacy.wall_ms / 1000.0;

    JsonValue entry = JsonValue::object();
    entry.set("model", model);
    entry.set("device", "v100");
    entry.set("states", serial.stats.states);
    entry.set("transitions", serial.stats.transitions);
    entry.set("latency_us", serial.latency_us);
    entry.set("serial_wall_ms", serial.wall_ms);
    entry.set("exact_profiles", exact_profiles);
    entry.set("legacy4_wall_ms", legacy.wall_ms);
    entry.set("legacy4_states_per_sec", legacy.states_per_sec());

    JsonValue waves = JsonValue::object();
    RunResult wave4;
    for (const int threads : wave_threads) {
      const RunResult wave = run_warm(
          g, cost, make_options(SearchEngine::kWave, threads),
          threads == kGateThreads ? gate_repeats : repeats);
      const bool identical =
          check_identical(("wave@" + std::to_string(threads)).c_str(), wave);
      std::printf("               wave@%d   %9.2f ms  (%.0f states/s, "
                  "%.2fx legacy)%s\n",
                  threads, wave.wall_ms, wave.states_per_sec(),
                  legacy.wall_ms / wave.wall_ms,
                  identical ? "" : "  [MISMATCH]");
      JsonValue w = JsonValue::object();
      w.set("wall_ms", wave.wall_ms);
      w.set("states_per_sec", wave.states_per_sec());
      waves.set(std::to_string(threads), std::move(w));
      if (threads == kGateThreads) wave4 = wave;
    }
    entry.set("wave", std::move(waves));
    entry.set("ratio_wave4_vs_legacy4",
              wave4.states_per_sec() / legacy.states_per_sec());
    agg_wave_states += static_cast<double>(wave4.stats.states);
    agg_wave_sec += wave4.wall_ms / 1000.0;

    // Dominance: the exact optimum latency (equal-latency tie-breaks may
    // pick a different partition), certified zero gap, fewer profiles.
    const RunResult dom = run_warm(
        g, cost,
        make_options(SearchEngine::kAuto, kGateThreads, PruneMode::kDominance),
        repeats);
    if (dom.latency_us != serial.latency_us) {
      std::fprintf(stderr,
                   "FAIL: %s dominance missed the optimum "
                   "(latency %.6f vs %.6f us)\n",
                   model.c_str(), dom.latency_us, serial.latency_us);
      ok = false;
    }
    if (dom.stats.latency_gap_bound_us != 0) {
      std::fprintf(stderr, "FAIL: %s dominance reported a nonzero gap bound "
                   "(%.6f us)\n",
                   model.c_str(), dom.stats.latency_gap_bound_us);
      ok = false;
    }
    if (dominance_profiles >= exact_profiles) {
      std::fprintf(stderr,
                   "FAIL: %s dominance measured %lld profiles, exact %lld — "
                   "pruning saved nothing\n",
                   model.c_str(), static_cast<long long>(dominance_profiles),
                   static_cast<long long>(exact_profiles));
      ok = false;
    }
    std::printf("               dom@%d    %9.2f ms cold, %8.2f ms warm  "
                "(%lld of %lld profiles, %lld states cut, gap 0)\n",
                kGateThreads, dominance_cold_ms, dom.wall_ms,
                static_cast<long long>(dominance_profiles),
                static_cast<long long>(exact_profiles),
                static_cast<long long>(dom.stats.pruned_states));
    JsonValue domj = JsonValue::object();
    domj.set("wall_ms", dom.wall_ms);
    domj.set("cold_wall_ms", dominance_cold_ms);
    domj.set("exact_cold_wall_ms", exact_cold_ms);
    domj.set("profiles", dominance_profiles);
    domj.set("pruned_states", dom.stats.pruned_states);
    domj.set("trimmed_transitions", dom.stats.beam_trimmed);
    domj.set("latency_gap_bound_us", dom.stats.latency_gap_bound_us);
    entry.set("dominance4", std::move(domj));

    // Beam frontier: latency vs certified gap bound per width.
    JsonValue beams = JsonValue::array();
    for (const int width : beam_widths) {
      const RunResult beam = run_warm(
          g, cost,
          make_options(SearchEngine::kAuto, kGateThreads, PruneMode::kBeam,
                       width),
          repeats);
      const double eps = 1e-6 * serial.latency_us;
      if (beam.latency_us + eps < serial.latency_us) {
        std::fprintf(stderr,
                     "FAIL: %s beam:%d found %.6f us, below the exact "
                     "optimum %.6f us\n",
                     model.c_str(), width, beam.latency_us, serial.latency_us);
        ok = false;
      }
      if (beam.latency_us - beam.stats.latency_gap_bound_us >
          serial.latency_us + eps) {
        std::fprintf(stderr,
                     "FAIL: %s beam:%d certified bound violated — found "
                     "%.6f us, gap %.6f us, exact %.6f us\n",
                     model.c_str(), width, beam.latency_us,
                     beam.stats.latency_gap_bound_us, serial.latency_us);
        ok = false;
      }
      std::printf("               beam:%-3d %9.2f ms  (latency +%.3f us, "
                  "gap bound %.3f us, %lld trimmed)\n",
                  width, beam.wall_ms, beam.latency_us - serial.latency_us,
                  beam.stats.latency_gap_bound_us,
                  static_cast<long long>(beam.stats.beam_trimmed));
      JsonValue b = JsonValue::object();
      b.set("width", static_cast<std::int64_t>(width));
      b.set("wall_ms", beam.wall_ms);
      b.set("latency_us", beam.latency_us);
      b.set("latency_delta_us", beam.latency_us - serial.latency_us);
      b.set("latency_gap_bound_us", beam.stats.latency_gap_bound_us);
      b.set("trimmed_transitions", beam.stats.beam_trimmed);
      beams.push_back(std::move(b));
    }
    entry.set("beam4", std::move(beams));
    results.push_back(std::move(entry));
    std::printf("\n");
  }

  // Aggregate gates — summed over the model zoo so the verdict rides the
  // largest searches instead of per-model timer noise.
  const double legacy_sps = agg_legacy_states / agg_legacy_sec;
  const double wave_sps = agg_wave_states / agg_wave_sec;
  const double sps_ratio = wave_sps / legacy_sps;
  if (sps_ratio < kStatesPerSecGate) {
    std::fprintf(stderr,
                 "FAIL: aggregate wave@%d states/sec only %.2fx legacy@%d "
                 "(gate %.2fx)\n",
                 kGateThreads, sps_ratio, kGateThreads, kStatesPerSecGate);
    ok = false;
  }
  if (agg_dominance_cold_ms >= agg_exact_cold_ms) {
    std::fprintf(stderr,
                 "FAIL: dominance aggregate cold wall %.2f ms not below "
                 "exact %.2f ms\n",
                 agg_dominance_cold_ms, agg_exact_cold_ms);
    ok = false;
  }
  const bool rss_measured = rss_legacy_kb > 0 && rss_wave_kb > 0;
  if (!rss_measured) {
    std::fprintf(stderr, "FAIL: peak-RSS fork measurement failed "
                 "(legacy %ld KiB, wave %ld KiB)\n",
                 rss_legacy_kb, rss_wave_kb);
    ok = false;
  } else if (rss_wave_kb >= rss_legacy_kb) {
    std::fprintf(stderr,
                 "FAIL: wave peak RSS %ld KiB not below legacy %ld KiB on "
                 "%s\n",
                 rss_wave_kb, rss_legacy_kb, rss_model.c_str());
    ok = false;
  }
  std::printf("aggregate: wave@%d %.0f states/s vs legacy@%d %.0f states/s "
              "(%.2fx, gate %.1fx)\n",
              kGateThreads, wave_sps, kGateThreads, legacy_sps, sps_ratio,
              kStatesPerSecGate);
  std::printf("aggregate: dominance %.2f ms vs exact %.2f ms (cold)\n",
              agg_dominance_cold_ms, agg_exact_cold_ms);
  std::printf("peak RSS (%s, cold, forked): wave %ld KiB vs legacy %ld KiB\n",
              rss_model.c_str(), rss_wave_kb, rss_legacy_kb);

  JsonValue gates = JsonValue::object();
  gates.set("protocol", "warm-cache");
  gates.set("states_per_sec_ratio", sps_ratio);
  gates.set("states_per_sec_gate", kStatesPerSecGate);
  gates.set("dominance_cold_wall_ms", agg_dominance_cold_ms);
  gates.set("exact_cold_wall_ms", agg_exact_cold_ms);
  JsonValue rss = JsonValue::object();
  rss.set("model", rss_model);
  rss.set("legacy_kb", static_cast<std::int64_t>(rss_legacy_kb));
  rss.set("wave_kb", static_cast<std::int64_t>(rss_wave_kb));
  gates.set("peak_rss", std::move(rss));

  JsonValue root = JsonValue::object();
  root.set("bench", "search");
  root.set("unit", "ms");
  root.set("hardware_threads", static_cast<std::int64_t>(hw));
  root.set("repeats", static_cast<std::int64_t>(repeats));
  root.set("gates", std::move(gates));
  root.set("results", std::move(results));
  write_file(out_path, root.dump());
  std::printf("\nwrote %s\n", out_path.c_str());
  if (!ok) {
    std::fprintf(stderr, "search bench FAILED\n");
    return 1;
  }
  return 0;
}
