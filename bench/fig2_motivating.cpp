// Figure 2: the motivating example. A four-convolution block is executed
// under the sequential, greedy, and IOS schedules; per-stage computation
// (GFLOPs), achieved performance (TFLOPs/s) and device utilization are
// reported, as in the paper's annotated timelines.

#include <cstdio>

#include "bench/common.hpp"

namespace {

void report(const char* title, const ios::Graph& g, const ios::Schedule& q,
            const ios::DeviceSpec& dev) {
  using namespace ios;
  Executor ex(g, bench::config_for(dev));
  std::printf("%s: %zu stages, total %.3f ms\n", title, q.stages.size(),
              ex.schedule_latency_us(q) / 1000.0);
  double total_util = 0;
  for (std::size_t i = 0; i < q.stages.size(); ++i) {
    const Stage& s = q.stages[i];
    double gflops = 0;
    for (OpId id : s.ops()) gflops += static_cast<double>(g.flops(id)) / 1e9;
    const double lat_ms = ex.stage_latency_us(s) / 1000.0;
    const double tflops = gflops / lat_ms;  // 1 GFLOP/ms == 1 TFLOP/s
    const double util = tflops / dev.peak_tflops * 100.0;
    total_util += util;
    std::printf("  stage %zu [%s] ops={", i + 1,
                stage_strategy_name(s.strategy));
    for (OpId id : s.ops()) std::printf(" %s", g.op(id).name.c_str());
    std::printf(" } %.2f GFLOPs, %.3f ms, %.1f TFLOPs/s, %.0f%% util\n",
                gflops, lat_ms, tflops, util);
  }
  std::printf("  avg util: %.0f%%\n\n",
              total_util / static_cast<double>(q.stages.size()));
}

}  // namespace

int main() {
  using namespace ios;
  const DeviceSpec dev = tesla_v100();
  const Graph g = models::fig2_graph(1);
  std::printf("Figure 2: execution schedules for the motivating block on "
              "%s\n(paper: sequential 0.48ms/48%% util, greedy "
              "0.37ms/62%%, IOS 0.33ms/70%%)\n\n",
              dev.name.c_str());

  report("(1) Sequential", g, sequential_schedule(g), dev);
  report("(2) Greedy", g, greedy_schedule(g), dev);
  report("(3) IOS", g, bench::ios_schedule(g, dev), dev);
  return 0;
}
