// Placement benchmark: the heterogeneous-pool payoff, end to end. A mixed
// trace (bandwidth-leaning squeezenet next to compute-leaning mobilenet_v2,
// 3:2) is served on a heterogeneous {P100, 1080Ti} pool and on every
// same-size homogeneous pool built from the pool's own classes ({P100 x2},
// {1080Ti x2}). Device-aware routing must make the mixed pool strictly beat
// both homogeneous ones on served throughput — neither device dominates the
// other (the P100 wins memory-bound networks on HBM2 bandwidth, the 1080Ti
// wins compute-bound ones on FP32 peak), so a pool that has both and routes
// by device wins the mixed workload. The ios::Placer's predicted makespans
// are emitted next to the served numbers; the plan must predict the same
// winner the serving simulation crowns.
//
// Like bench_serving this is a plain main() with no google-benchmark
// dependency, so CI can always run it; everything is on the simulated
// clock and deterministic for the fixed trace seed.
//
//   $ ./bench_placement [out.json] [num_requests]
//     out.json      default BENCH_placement.json
//     num_requests  default 1500 (CI smoke runs fewer)

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "place/placer.hpp"
#include "serve/server.hpp"
#include "util/json.hpp"

int main(int argc, char** argv) {
  using namespace ios;
  using namespace ios::serve;

  const std::string out_path = argc > 1 ? argv[1] : "BENCH_placement.json";
  const int num_requests = argc > 2 ? std::atoi(argv[2]) : 1500;

  // 3:2 squeezenet : mobilenet_v2 — roughly balances the two classes' work.
  const std::vector<std::string> trace_models = {
      "squeezenet", "squeezenet", "squeezenet", "mobilenet_v2",
      "mobilenet_v2"};
  TraceSpec spec;
  spec.models = trace_models;
  spec.num_requests = num_requests;
  spec.mean_interarrival_us = 40;  // 25k req/s offered: saturating
  spec.seed = 7;
  const Trace trace = generate_trace(spec);

  const BatchingPolicy batching{{1, 2, 4, 8}, 3000};
  const std::vector<std::string> pool_specs = {"p100,1080ti", "p100x2",
                                               "1080tix2"};

  // ---- Placer predictions (batch-8 steady state, weights = trace mix) ----
  PlacementRequest plan_request;
  plan_request.workload = {WorkloadItem{"squeezenet", 8, 3.0},
                           WorkloadItem{"mobilenet_v2", 8, 2.0}};
  Placer placer;
  JsonValue predictions = JsonValue::array();
  std::vector<double> predicted_makespans;
  for (const std::string& pool : pool_specs) {
    plan_request.pool = pool_from_spec(pool);
    const PlacementResult planned = placer.place(plan_request);
    predicted_makespans.push_back(planned.plan.makespan_us);
    std::printf("plan %-12s makespan %8.1f us/weight:", pool.c_str(),
                planned.plan.makespan_us);
    for (const Assignment& a : planned.plan.assignments) {
      std::printf("  %s->%s", a.model.c_str(), a.device.c_str());
    }
    std::printf("\n");
    JsonValue entry = placement_to_json(planned);
    entry.set("pool", pool);
    predictions.push_back(std::move(entry));
  }
  const bool plan_predicts_hetero =
      predicted_makespans[0] < predicted_makespans[1] &&
      predicted_makespans[0] < predicted_makespans[2];

  // ---- served comparison (one shared recipe cache across all pools) ------
  auto cache = std::make_shared<ShardedRecipeCache>(RecipeCacheOptions{});
  const auto bench_begin = std::chrono::steady_clock::now();
  JsonValue results = JsonValue::array();
  double hetero_throughput = 0;
  double best_homogeneous = 0;
  for (std::size_t i = 0; i < pool_specs.size(); ++i) {
    ServerOptions options;
    options.pool = pool_from_spec(pool_specs[i]);
    options.batching = batching;
    Server server(options, cache);
    server.prewarm({"squeezenet", "mobilenet_v2"}, /*threads=*/0);
    const ServingResult run = server.run(trace);
    const ServingStats& s = run.stats;

    std::printf("%-12s %9.1f req/s | mean %8.1f us, p99 %9.1f | "
                "%lld batches | util %.0f%%\n",
                pool_specs[i].c_str(), s.throughput_rps, s.mean_latency_us,
                s.p99_latency_us, static_cast<long long>(s.batches),
                100 * s.worker_utilization);
    JsonValue loads = JsonValue::array();
    for (const DeviceLoad& l : run.device_loads) {
      JsonValue load = JsonValue::object();
      load.set("device", l.device);
      load.set("devices", l.devices);
      load.set("batches", l.batches);
      load.set("utilization", l.utilization);
      loads.push_back(std::move(load));
      if (run.device_loads.size() > 1) {
        std::printf("             %-12s %lld batches, util %.1f%%\n",
                    l.device.c_str(), static_cast<long long>(l.batches),
                    100 * l.utilization);
      }
    }

    JsonValue entry = JsonValue::object();
    entry.set("pool", pool_specs[i]);
    entry.set("devices", options.pool.total_devices());
    entry.set("heterogeneous", options.pool.num_classes() > 1);
    entry.set("throughput_rps", s.throughput_rps);
    entry.set("mean_latency_us", s.mean_latency_us);
    entry.set("p50_latency_us", s.p50_latency_us);
    entry.set("p99_latency_us", s.p99_latency_us);
    entry.set("batches", s.batches);
    entry.set("mean_batch_size", s.mean_batch_size);
    entry.set("worker_utilization", s.worker_utilization);
    entry.set("predicted_makespan_us", predicted_makespans[i]);
    entry.set("device_loads", std::move(loads));
    results.push_back(std::move(entry));

    if (i == 0) {
      hetero_throughput = s.throughput_rps;
    } else {
      best_homogeneous = std::max(best_homogeneous, s.throughput_rps);
    }
  }

  const bool hetero_wins = hetero_throughput > best_homogeneous;
  const double bench_wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - bench_begin)
          .count();
  std::printf("heterogeneous pool beats every homogeneous equal-count pool: "
              "%s (%.1f vs %.1f req/s, %+.1f%%)\n",
              hetero_wins ? "yes" : "NO", hetero_throughput, best_homogeneous,
              100 * (hetero_throughput / best_homogeneous - 1));

  JsonValue models_json = JsonValue::array();
  for (const std::string& m : trace_models) models_json.push_back(m);
  JsonValue root = JsonValue::object();
  root.set("bench", "placement");
  root.set("unit", "req/s (simulated)");
  root.set("requests", num_requests);
  root.set("offered_rps", 1e6 / spec.mean_interarrival_us);
  root.set("trace_seed", static_cast<std::int64_t>(spec.seed));
  root.set("trace_models", std::move(models_json));
  root.set("results", std::move(results));
  root.set("plans", std::move(predictions));
  root.set("hetero_beats_all_homogeneous", hetero_wins);
  root.set("plan_predicts_hetero_win", plan_predicts_hetero);
  root.set("wall_ms", bench_wall_ms);
  write_file(out_path, root.dump());
  std::printf("wrote %s (%.0f ms wall)\n", out_path.c_str(), bench_wall_ms);

  if (!hetero_wins) {
    std::fprintf(stderr,
                 "FAIL: heterogeneous pool did not strictly beat every "
                 "homogeneous equal-count pool (acceptance criterion)\n");
    return 1;
  }
  if (!plan_predicts_hetero) {
    std::fprintf(stderr, "FAIL: the Placer plan did not predict the "
                         "heterogeneous win the serving simulation showed\n");
    return 1;
  }
  return 0;
}
