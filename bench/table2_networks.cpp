// Table 2: the CNN benchmarks — number of blocks, number of operators, and
// the main operator type of each network.

#include <cstdio>

#include "bench/common.hpp"
#include "core/analysis.hpp"

int main() {
  using namespace ios;

  std::printf(
      "Table 2: CNN benchmarks (paper reference: InceptionV3 11/119 "
      "Conv-Relu, RandWire 3/120 Relu-SepConv,\n"
      "NasNet 13/374 Relu-SepConv, SqueezeNet 10/50 Conv-Relu; our counts "
      "include stem/classifier blocks)\n\n");

  TablePrinter t({"Network", "#Blocks", "#Operators", "Operator Type",
                  "GFLOPs(bs1)"});
  for (const auto& m : bench::paper_models()) {
    const Graph g = m.build(1);
    const NetworkSummary s = summarize_network(g);
    t.add_row({s.name, std::to_string(s.num_blocks),
               std::to_string(s.num_ops), s.main_op_type,
               TablePrinter::fmt(static_cast<double>(g.total_flops()) / 1e9,
                                 2)});
  }
  // Auxiliary models used in the discussion sections.
  for (const Graph& g :
       {models::resnet34(1), models::resnet50(1), models::vgg16(1)}) {
    const NetworkSummary s = summarize_network(g);
    t.add_row({s.name + " (aux)", std::to_string(s.num_blocks),
               std::to_string(s.num_ops), s.main_op_type,
               TablePrinter::fmt(static_cast<double>(g.total_flops()) / 1e9,
                                 2)});
  }
  t.print();
  return 0;
}
