// Two contention ablations.
//
// 1. The shared-resource contention term of the execution simulator
//    (DESIGN.md item 3). With the term disabled, concurrency is never
//    harmful, the DP finds the same schedule at every batch size, and the
//    paper's Table 3 batch-size specialization disappears. With it, large
//    batches favor fewer/merged stages.
//
// 2. Lock contention on the CostModel's stage-latency cache. The wave
//    engine's worker threads hammer the cache on every ending evaluation;
//    with a single shard (one global mutex) they convoy, with the default
//    striping they mostly don't. Schedules and counters are identical
//    either way — only wall time moves (and only on multi-core hosts).

#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/common.hpp"

int main() {
  using namespace ios;

  std::printf("Ablation: memory-contention coefficient vs batch-size "
              "specialization (Inception V3, V100)\n\n");

  TablePrinter t({"contention coef", "opt@1 run@1 (ms)", "opt@32 run@1 (ms)",
                  "opt@1 run@32 (ms)", "opt@32 run@32 (ms)",
                  "specialization effect"});
  for (double coef : {0.0, 0.35, 0.7}) {
    DeviceSpec dev = tesla_v100();
    dev.mem_contention_coef = coef;

    const Graph g1 = models::inception_v3(1);
    const Graph g32 = models::inception_v3(32);
    const Schedule q1 = bench::ios_schedule(g1, dev);
    const Schedule q32 = bench::ios_schedule(g32, dev);
    Executor e1(g1, bench::config_for(dev));
    Executor e32(g32, bench::config_for(dev));

    const double l11 = e1.schedule_latency_us(q1) / 1000.0;
    const double l12 = e1.schedule_latency_us(q32) / 1000.0;
    const double l21 = e32.schedule_latency_us(q1) / 1000.0;
    const double l22 = e32.schedule_latency_us(q32) / 1000.0;
    // How much the mismatched schedules lose against the diagonal.
    const double effect = 0.5 * ((l12 / l11 - 1) + (l21 / l22 - 1)) * 100;
    t.add_row({TablePrinter::fmt(coef, 2), TablePrinter::fmt(l11, 2),
               TablePrinter::fmt(l12, 2), TablePrinter::fmt(l21, 2),
               TablePrinter::fmt(l22, 2),
               TablePrinter::fmt(effect, 1) + "%"});
  }
  t.print();
  std::printf("\n(the specialization effect should grow with the contention "
              "coefficient; at 0 the schedules are interchangeable)\n");

  std::printf("\nAblation: cost-model cache lock striping under the "
              "wave-parallel search (NasNet, V100, 4 threads, %u hardware "
              "threads)\n\n",
              std::thread::hardware_concurrency());
  TablePrinter locks({"cache shards", "search wall (ms)", "profiles",
                      "IOS latency (ms)"});
  const Graph g = models::nasnet_a(1);
  const DeviceSpec dev = tesla_v100();
  for (const int shards : {1, CostModel::kDefaultCacheShards}) {
    CostModel cost(g, bench::config_for(dev), ProfilingProtocol{}, shards);
    SchedulerOptions options;
    options.engine = SearchEngine::kWave;
    options.num_threads = 4;
    SchedulerStats stats;
    const auto t0 = std::chrono::steady_clock::now();
    const Schedule q = IosScheduler(cost, options).schedule_graph(&stats);
    const double wall_ms = std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count();
    locks.add_row({std::to_string(shards), TablePrinter::fmt(wall_ms, 1),
                   std::to_string(stats.measurements),
                   TablePrinter::fmt(bench::latency_us(g, dev, q) / 1000.0,
                                     3)});
  }
  locks.print();
  std::printf("\n(identical schedules and profile counts; striping only "
              "removes mutex convoying, so the wall-time gap needs "
              "multiple cores to show)\n");
  return 0;
}
