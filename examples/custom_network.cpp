// Bring-your-own-network: define a custom multi-branch CNN with the builder
// API, optimize it with IOS, and *verify numerically* that the found
// schedule (including operator-merge stages) computes exactly the same
// values as sequential execution, using the CPU reference executor.
//
//   $ ./custom_network

#include <cstdio>

#include "core/scheduler.hpp"
#include "runtime/reference_executor.hpp"
#include "schedule/baselines.hpp"
#include "tensor/kernels.hpp"

int main() {
  using namespace ios;

  // A two-block network: a fire-like block (mergeable expand convs) feeding
  // a dual-branch block with a residual add.
  Graph g(/*batch=*/2, "custom");
  const OpId in = g.input(24, 16, 16, "input");

  g.begin_block();
  const OpId squeeze = g.conv2d(
      in, Conv2dAttrs{.out_channels = 12, .kh = 1, .kw = 1}, "squeeze");
  const OpId e1 = g.conv2d(
      squeeze, Conv2dAttrs{.out_channels = 24, .kh = 1, .kw = 1}, "expand1x1");
  const OpId e3 = g.conv2d(
      squeeze,
      Conv2dAttrs{.out_channels = 24, .kh = 3, .kw = 3, .ph = 1, .pw = 1},
      "expand3x3");
  const OpId expanded[] = {e1, e3};
  const OpId fire_out = g.concat(expanded, "fire_concat");

  g.begin_block();
  const OpId left = g.conv2d(
      fire_out,
      Conv2dAttrs{.out_channels = 48, .kh = 3, .kw = 3, .ph = 1, .pw = 1},
      "left_3x3");
  const OpId right = g.sepconv(
      fire_out, SepConvAttrs{.out_channels = 48}, "right_sep");
  const OpId sum = g.add(left, right, "residual_add");
  const OpId gap = g.pool2d(
      sum, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0},
      "gap");
  g.matmul(gap, MatmulAttrs{.out_features = 10}, "classifier");
  g.validate();

  // Optimize.
  CostModel cost(g, ExecConfig{tesla_v100(), KernelModelParams{}});
  const Schedule schedule = IosScheduler(cost).schedule_graph();
  std::printf("%s", schedule.to_string(g).c_str());

  // Verify functional equivalence on real (CPU) numerics.
  ReferenceExecutor exec(g, /*seed=*/42);
  const auto inputs = exec.make_inputs(/*seed=*/43);
  const auto oracle = exec.run_sequential(inputs);
  const auto scheduled = exec.run_schedule(schedule, inputs);

  float worst = 0;
  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    worst = std::max(
        worst,
        kernels::max_abs_diff(oracle[static_cast<std::size_t>(op.id)],
                              scheduled[static_cast<std::size_t>(op.id)]));
  }
  std::printf("\nmax |oracle - scheduled| over all operator outputs: %g\n",
              static_cast<double>(worst));
  std::printf(worst < 1e-3f ? "schedule is functionally equivalent ✓\n"
                            : "MISMATCH!\n");
  return worst < 1e-3f ? 0 : 1;
}
