// A guided replay of the paper's Figure 5: the dynamic program on the
// 3-operator graph (a -> b, with c independent). Prints every state S, the
// endings S' enumerated from it, the measured stage latency L_{S'}, and the
// resulting cost[S] / choice[S], then reconstructs the optimal schedule
// back-to-front exactly like INTER_OPERATOR_SCHEDULER (Algorithm 1 L6-11).
//
//   $ ./dp_walkthrough

#include <cstdio>
#include <unordered_map>

#include "core/block_dag.hpp"
#include "models/models.hpp"
#include "runtime/cost_model.hpp"
#include "util/hash.hpp"

namespace {

using namespace ios;

std::string names(const Graph& g, const BlockDag& dag, Set64 s) {
  std::string out = "{";
  bool first = true;
  for (int i : s) {
    if (!first) out += ", ";
    out += g.op(dag.op_of(i)).name;
    first = false;
  }
  return out + "}";
}

struct Walkthrough {
  const Graph& g;
  const BlockDag& dag;
  CostModel& cost;
  std::unordered_map<std::uint64_t, double, U64Hasher> cost_memo;
  std::unordered_map<std::uint64_t, Set64, U64Hasher> choice;

  double scheduler(Set64 s) {  // SCHEDULER (Algorithm 1 L13-22)
    if (s.empty()) return 0;
    auto it = cost_memo.find(s.bits());
    if (it != cost_memo.end()) {
      std::printf("  state S=%s already solved: cost[S]=%.1f us (memoized)\n",
                  names(g, dag, s).c_str(), it->second);
      return it->second;
    }
    std::printf("  solving state S=%s\n", names(g, dag, s).c_str());
    double best = 1e300;
    Set64 best_ending;
    dag.for_each_ending(s, 64, [&](Set64 ending) {
      const StageChoice stage = cost.generate_stage(dag.to_ops(ending));
      const double total = scheduler(s - ending) + stage.latency_us;
      std::printf("    ending S'=%-10s L_S'=%6.1f us -> L_S=%6.1f us%s\n",
                  names(g, dag, ending).c_str(), stage.latency_us, total,
                  total < best ? "  (new best)" : "");
      if (total < best) {
        best = total;
        best_ending = ending;
      }
    });
    cost_memo[s.bits()] = best;
    choice[s.bits()] = best_ending;
    std::printf("  => cost[%s] = %.1f us, choice = %s\n",
                names(g, dag, s).c_str(), best,
                names(g, dag, best_ending).c_str());
    return best;
  }
};

}  // namespace

int main() {
  const Graph g = models::fig5_graph(1);
  const auto blocks = g.blocks();
  const BlockDag dag(g, blocks[0]);
  CostModel cost(g, ExecConfig{tesla_v100(), KernelModelParams{}});

  std::printf("Figure 5 walkthrough: computation graph with a -> b and "
              "independent c\n\n");
  Walkthrough w{g, dag, cost, {}, {}};
  const double total = w.scheduler(dag.all());

  std::printf("\nschedule construction (choice[] walk, back to front):\n");
  Set64 s = dag.all();
  std::vector<Set64> stages;
  while (!s.empty()) {
    const Set64 ending = w.choice.at(s.bits());
    stages.insert(stages.begin(), ending);
    s -= ending;
  }
  for (std::size_t i = 0; i < stages.size(); ++i) {
    std::printf("  stage %zu: %s\n", i + 1, names(g, dag, stages[i]).c_str());
  }
  std::printf("\noptimal latency cost[V] = %.1f us over %zu stages\n", total,
              stages.size());
  return 0;
}
