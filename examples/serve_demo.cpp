// Serving demo: the optimizer meets traffic. Generates a two-model Poisson
// request trace, replays it through ios::serve::Server — dynamic batcher,
// sharded recipe cache, four simulated executor workers — and shows how the
// same workload behaves with batching disabled.
//
//   $ ./serve_demo

#include <cstdio>

#include "serve/server.hpp"

int main() {
  using namespace ios::serve;

  // 1. A synthetic workload: 120 single-sample requests, Poisson arrivals
  // at ~5000 req/s offered, mixing two zoo models. Seeded — the trace and
  // every latency below are bit-reproducible.
  TraceSpec spec;
  spec.models = {"squeezenet", "fig3"};
  spec.num_requests = 120;
  spec.mean_interarrival_us = 200;
  spec.seed = 42;
  const Trace trace = generate_trace(spec);
  std::printf("trace: %d requests over %.1f ms\n", spec.num_requests,
              trace.duration_us() / 1000);

  // 2. A server: 4 workers, batches of up to 8, queues flushed after 2 ms.
  ServerOptions options;
  options.device = "v100";
  options.num_workers = 4;
  options.batching.batch_sizes = {1, 2, 4, 8};
  options.batching.max_queue_delay_us = 2000;
  Server server(options);

  // Optional: optimize every (model, batch size) pair up front on all host
  // threads. Misses would otherwise be resolved lazily during run().
  server.prewarm(spec.models, /*threads=*/0);
  std::printf("prewarmed %zu recipes into the sharded cache\n\n",
              server.cache().size());

  // 3. Replay the trace on the simulated clock.
  const ServingResult batched = server.run(trace);
  const ServingStats& s = batched.stats;
  std::printf("dynamic batching, 4 workers:\n");
  std::printf("  %.1f req/s | latency mean %.0f us, p50 %.0f, p99 %.0f | "
              "%lld batches, mean size %.2f\n",
              s.throughput_rps, s.mean_latency_us, s.p50_latency_us,
              s.p99_latency_us, static_cast<long long>(s.batches),
              s.mean_batch_size);

  // A few per-request records: arrival -> batch -> worker -> completion.
  std::printf("  first requests:\n");
  for (int i = 0; i < 5; ++i) {
    const RequestRecord& r = batched.records[static_cast<std::size_t>(i)];
    std::printf("    #%-3d %-10s arrived %7.1f us, rode batch %d "
                "(size %d) on worker %d, done %7.1f us (latency %.1f us)\n",
                r.index, r.model.c_str(), r.arrival_us, r.batch_id,
                r.batch_size, r.worker, r.completion_us, r.latency_us);
  }

  // 4. Same trace, batching disabled: every request is its own batch.
  ServerOptions unbatched = options;
  unbatched.batching.batch_sizes = {1};
  Server naive(unbatched);
  const ServingStats u = naive.run(trace).stats;
  std::printf("\nno batching, 4 workers:\n");
  std::printf("  %.1f req/s | latency mean %.0f us, p50 %.0f, p99 %.0f\n",
              u.throughput_rps, u.mean_latency_us, u.p50_latency_us,
              u.p99_latency_us);

  // 5. The sharded cache made every configuration a one-time search.
  const ServerStats totals = server.stats();
  std::printf("\nbatched server counters: %lld requests in %lld batches, "
              "cache %lld hits / %lld misses, %lld optimizer runs\n",
              static_cast<long long>(totals.requests),
              static_cast<long long>(totals.batches),
              static_cast<long long>(totals.cache.hits),
              static_cast<long long>(totals.cache.misses),
              static_cast<long long>(totals.optimizations));
  return 0;
}
