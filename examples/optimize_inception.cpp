// End-to-end walkthrough on a real network through the ios::Optimizer
// facade: optimize Inception V3 by zoo name, compare against the sequential
// / greedy schedules and the simulated framework baselines, and reuse the
// result as a persisted recipe on a different device.
//
//   $ ./optimize_inception

#include <cstdio>

#include "api/optimizer.hpp"

int main() {
  using namespace ios;

  OptimizationRequest request =
      OptimizationRequest::for_model("inception_v3", "v100", /*batch=*/1);
  request.baselines = all_baselines();

  std::printf("optimizing %s for %s, batch %d...\n", request.model.c_str(),
              request.device.c_str(), request.batch);

  Optimizer optimizer;
  const OptimizationResult result = optimizer.optimize(request);

  std::printf("done: %zu stages, %lld stage profiles, %.1f s simulated "
              "profiling, %.0f ms search time\n\n",
              result.schedule.stages.size(),
              static_cast<long long>(result.stats.measurements),
              result.stats.profiling_cost_us / 1e6,
              result.stats.search_wall_ms);

  std::printf("latency comparison (batch %d, Tesla V100):\n", request.batch);
  for (const BaselineResult& b : result.baselines) {
    std::printf("  %-16s %8.2f ms  (IOS %5.2fx)\n", b.name.c_str(),
                b.latency_us / 1000.0, b.speedup);
  }
  std::printf("  %-16s %8.2f ms\n", "IOS", result.latency_us / 1000.0);

  // A second identical request is served from the recipe cache — the serving
  // scenario: optimize once per deployment configuration, then reuse.
  const OptimizationResult again = optimizer.optimize(request);
  std::printf("\nrepeat request: cache %s, %lld new stage profiles\n",
              again.cache_hit ? "hit" : "miss",
              static_cast<long long>(again.new_measurements));

  // The recipe generalizes: evaluate the found schedule on the low-end K80.
  const EvaluationResult k80 = optimizer.evaluate(result.recipe, "k80");
  std::printf("recipe on %s: IOS %.2f ms vs sequential %.2f ms (%.2fx)\n",
              k80.device.c_str(), k80.latency_us / 1000.0,
              k80.sequential_latency_us / 1000.0, k80.speedup);
  return 0;
}
