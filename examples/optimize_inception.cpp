// End-to-end walkthrough on a real network: optimize Inception V3 with IOS,
// print the per-block schedules it found, and compare against the sequential
// / greedy schedules and the simulated framework baselines.
//
//   $ ./optimize_inception

#include <cstdio>

#include "core/scheduler.hpp"
#include "frameworks/frameworks.hpp"
#include "models/models.hpp"
#include "schedule/baselines.hpp"

int main() {
  using namespace ios;

  const Graph g = models::inception_v3(/*batch=*/1);
  const DeviceSpec device = tesla_v100();
  const ExecConfig config{device, KernelModelParams{}};

  std::printf("optimizing %s (%d ops, %zu blocks) for %s, batch 1...\n",
              g.name().c_str(), static_cast<int>(g.schedulable_ops().size()),
              g.blocks().size(), device.name.c_str());

  CostModel cost(g, config);
  SchedulerStats stats;
  const Schedule schedule = IosScheduler(cost).schedule_graph(&stats);
  validate_schedule(g, schedule);

  std::printf("done: %zu stages, %lld stage profiles, %.1f s simulated "
              "profiling, %.0f ms search time\n\n",
              schedule.stages.size(),
              static_cast<long long>(stats.measurements),
              stats.profiling_cost_us / 1e6, stats.search_wall_ms);

  // Show the schedule found for the last (widest) inception block.
  const auto blocks = g.blocks();
  std::printf("schedule of the last inception block:\n");
  CostModel block_cost(g, config);
  const Schedule block_schedule =
      IosScheduler(block_cost).schedule_block(blocks[11]);
  std::printf("%s\n", block_schedule.to_string(g).c_str());

  Executor executor(g, config);
  std::printf("latency comparison (batch 1, %s):\n", device.name.c_str());
  std::printf("  %-16s %8.2f ms\n", "sequential",
              executor.schedule_latency_us(sequential_schedule(g)) / 1000.0);
  std::printf("  %-16s %8.2f ms\n", "greedy",
              executor.schedule_latency_us(greedy_schedule(g)) / 1000.0);
  for (const auto& spec : frameworks::cudnn_baselines()) {
    std::printf("  %-16s %8.2f ms\n", spec.name.c_str(),
                frameworks::run_framework(g, device, spec).latency_us / 1000.0);
  }
  std::printf("  %-16s %8.2f ms\n", "IOS",
              executor.schedule_latency_us(schedule) / 1000.0);
  return 0;
}
