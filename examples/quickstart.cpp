// Quickstart: build a small multi-branch CNN block, let IOS find a schedule
// for it, and compare against sequential execution on a simulated V100.
//
//   $ ./quickstart

#include <cstdio>

#include "core/scheduler.hpp"
#include "schedule/baselines.hpp"
#include "sim/device.hpp"

int main() {
  using namespace ios;

  // 1. Describe the computation graph (an inception-style block).
  Graph g(/*batch=*/1, "quickstart");
  const OpId in = g.input(/*c=*/192, /*h=*/28, /*w=*/28, "input");
  g.begin_block();
  const OpId b0 = g.conv2d(
      in, Conv2dAttrs{.out_channels = 64, .kh = 1, .kw = 1}, "b0_1x1");
  const OpId b1a = g.conv2d(
      in, Conv2dAttrs{.out_channels = 96, .kh = 1, .kw = 1}, "b1_1x1");
  const OpId b1b = g.conv2d(
      b1a, Conv2dAttrs{.out_channels = 128, .kh = 3, .kw = 3, .ph = 1, .pw = 1},
      "b1_3x3");
  const OpId b2a = g.conv2d(
      in, Conv2dAttrs{.out_channels = 16, .kh = 1, .kw = 1}, "b2_1x1");
  const OpId b2b = g.conv2d(
      b2a, Conv2dAttrs{.out_channels = 32, .kh = 5, .kw = 5, .ph = 2, .pw = 2},
      "b2_5x5");
  const OpId branches[] = {b0, b1b, b2b};
  g.concat(branches, "concat");
  g.validate();

  // 2. Pick a device model and build the profiling cost model.
  const DeviceSpec device = tesla_v100();
  CostModel cost(g, ExecConfig{device, KernelModelParams{}});

  // 3. Run the IOS dynamic program (Algorithm 1 of the paper).
  SchedulerStats stats;
  IosScheduler scheduler(cost);
  const Schedule schedule = scheduler.schedule_graph(&stats);

  // 4. Inspect the result.
  std::printf("%s", schedule.to_string(g).c_str());
  std::printf("search explored %lld states / %lld transitions, "
              "%lld stage profiles\n\n",
              static_cast<long long>(stats.states),
              static_cast<long long>(stats.transitions),
              static_cast<long long>(stats.measurements));

  Executor executor(g, ExecConfig{device, KernelModelParams{}});
  const double seq = executor.schedule_latency_us(sequential_schedule(g));
  const double ios = executor.schedule_latency_us(schedule);
  std::printf("sequential: %.1f us\nIOS:        %.1f us  (%.2fx speedup on "
              "%s)\n",
              seq, ios, seq / ios, device.name.c_str());
  return 0;
}
