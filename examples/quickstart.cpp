// Quickstart: build a small multi-branch CNN block, hand it to the
// ios::Optimizer facade, and compare the found schedule against sequential
// execution on a simulated V100. The facade runs the whole pipeline —
// profiling cost model, DP search, baseline comparison — in one call.
//
//   $ ./quickstart

#include <cstdio>

#include "api/optimizer.hpp"

int main() {
  using namespace ios;

  // 1. Describe the computation graph (an inception-style block).
  Graph g(/*batch=*/1, "quickstart");
  const OpId in = g.input(/*c=*/192, /*h=*/28, /*w=*/28, "input");
  g.begin_block();
  const OpId b0 = g.conv2d(
      in, Conv2dAttrs{.out_channels = 64, .kh = 1, .kw = 1}, "b0_1x1");
  const OpId b1a = g.conv2d(
      in, Conv2dAttrs{.out_channels = 96, .kh = 1, .kw = 1}, "b1_1x1");
  const OpId b1b = g.conv2d(
      b1a, Conv2dAttrs{.out_channels = 128, .kh = 3, .kw = 3, .ph = 1, .pw = 1},
      "b1_3x3");
  const OpId b2a = g.conv2d(
      in, Conv2dAttrs{.out_channels = 16, .kh = 1, .kw = 1}, "b2_1x1");
  const OpId b2b = g.conv2d(
      b2a, Conv2dAttrs{.out_channels = 32, .kh = 5, .kw = 5, .ph = 2, .pw = 2},
      "b2_5x5");
  const OpId branches[] = {b0, b1b, b2b};
  g.concat(branches, "concat");
  g.validate();

  // 2. One facade call: profile, search (Algorithm 1), compare baselines.
  Optimizer optimizer;
  const OptimizationResult result =
      optimizer.optimize(OptimizationRequest::for_graph(g, "v100"));

  // 3. Inspect the result.
  std::printf("%s", result.schedule.to_string(g).c_str());
  std::printf("search explored %lld states / %lld transitions, "
              "%lld stage profiles\n\n",
              static_cast<long long>(result.stats.states),
              static_cast<long long>(result.stats.transitions),
              static_cast<long long>(result.stats.measurements));

  const BaselineResult* seq = result.baseline("sequential");
  std::printf("sequential: %.1f us\nIOS:        %.1f us  (%.2fx speedup on "
              "Tesla V100)\n",
              seq->latency_us, result.latency_us, seq->speedup);

  // 4. An identical request is served from the in-process recipe cache:
  // no new profiling, no new DP search.
  const OptimizationResult again =
      optimizer.optimize(OptimizationRequest::for_graph(g, "v100"));
  std::printf("repeat request: cache %s, %lld new profiles\n",
              again.cache_hit ? "hit" : "miss",
              static_cast<long long>(again.new_measurements));
  return 0;
}
