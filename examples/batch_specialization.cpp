// Schedule specialization (paper Section 7.2 / Table 3): optimize the same
// network for two batch sizes and cross-execute the schedules. The schedule
// specialized for the executed batch size should win its row.
//
//   $ ./batch_specialization

#include <cstdio>

#include "core/scheduler.hpp"
#include "models/models.hpp"

int main() {
  using namespace ios;

  const DeviceSpec device = tesla_v100();
  const int batches[] = {1, 32};

  Schedule schedules[2];
  for (int i = 0; i < 2; ++i) {
    const Graph g = models::inception_v3(batches[i]);
    CostModel cost(g, ExecConfig{device, KernelModelParams{}});
    schedules[i] = IosScheduler(cost).schedule_graph();
    std::printf("optimized for batch %d: %zu stages\n", batches[i],
                schedules[i].stages.size());
  }

  std::printf("\ncross-execution latency (ms) on %s:\n", device.name.c_str());
  std::printf("%-14s %-16s %-16s\n", "", "sched(bs=1)", "sched(bs=32)");
  for (int i = 0; i < 2; ++i) {
    const Graph g = models::inception_v3(batches[i]);
    Executor ex(g, ExecConfig{device, KernelModelParams{}});
    std::printf("run at bs=%-4d", batches[i]);
    for (int j = 0; j < 2; ++j) {
      std::printf(" %-16.2f", ex.schedule_latency_us(schedules[j]) / 1000.0);
    }
    std::printf("  <- %s schedule wins\n",
                i == 0 ? "the bs=1" : "the bs=32");
  }
  std::printf("\nworkload-specialized schedules win their own diagonal — "
              "the reason IOS re-optimizes per deployment setting.\n");
  return 0;
}
