// Property-based tests: random layered computation graphs are generated from
// a seed, and structural / optimality / functional invariants of the whole
// pipeline are checked on each.

#include <gtest/gtest.h>

#include <algorithm>
#include <unordered_set>

#include "core/scheduler.hpp"
#include "models/models.hpp"
#include "runtime/reference_executor.hpp"
#include "schedule/baselines.hpp"
#include "tensor/kernels.hpp"
#include "util/rng.hpp"

namespace ios {
namespace {

/// Random multi-branch CNN block: an input, 2-4 layers of 1-4 ops each
/// (conv / sepconv / pool / identity) wired randomly to earlier ops of the
/// same spatial extent, closed by a concat of the sinks.
Graph random_graph(std::uint64_t seed) {
  Rng rng(seed);
  Graph g(1 + rng.uniform_int(3), "random_" + std::to_string(seed));
  const int channels = 4 + 4 * rng.uniform_int(3);
  const OpId in = g.input(channels, 12, 12);
  g.begin_block();

  std::vector<OpId> pool{in};
  const int layers = 2 + rng.uniform_int(3);
  for (int l = 0; l < layers; ++l) {
    const int width = 1 + rng.uniform_int(4);
    std::vector<OpId> next;
    for (int i = 0; i < width; ++i) {
      const OpId src = pool[static_cast<std::size_t>(
          rng.uniform_int(static_cast<int>(pool.size())))];
      switch (rng.uniform_int(4)) {
        case 0: {
          const int kh = 1 + 2 * rng.uniform_int(2);
          const int kw = 1 + 2 * rng.uniform_int(2);
          next.push_back(g.conv2d(
              src, Conv2dAttrs{.out_channels = 4 + 4 * rng.uniform_int(3),
                               .kh = kh, .kw = kw,
                               .ph = (kh - 1) / 2, .pw = (kw - 1) / 2}));
          break;
        }
        case 1:
          next.push_back(
              g.sepconv(src, SepConvAttrs{.out_channels =
                                              4 + 4 * rng.uniform_int(3)}));
          break;
        case 2:
          next.push_back(g.pool2d(
              src, Pool2dAttrs{Pool2dAttrs::Kind::kAvg, 3, 3, 1, 1, 1, 1}));
          break;
        default:
          next.push_back(g.identity(src));
      }
    }
    for (OpId id : next) pool.push_back(id);
  }

  // Concat all sinks (ops with no consumers) of equal extent.
  std::vector<OpId> sinks;
  for (OpId id : pool) {
    if (id != in && g.succs(id).empty()) sinks.push_back(id);
  }
  if (sinks.size() > 1) {
    g.concat(sinks);
  }
  g.validate();
  return g;
}

class PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PropertyTest, IosScheduleIsValid) {
  const Graph g = random_graph(GetParam());
  CostModel cost(g, ExecConfig{tesla_v100(), {}});
  const Schedule q = IosScheduler(cost).schedule_graph();
  EXPECT_NO_THROW(validate_schedule(g, q));
}

TEST_P(PropertyTest, IosNeverWorseThanBaselines) {
  const Graph g = random_graph(GetParam());
  CostModel cost(g, ExecConfig{tesla_v100(), {}});
  const Schedule q = IosScheduler(cost).schedule_graph();
  double ios = 0, seq = 0, greedy = 0;
  for (const Stage& s : q.stages) ios += cost.measure(s);
  for (const Stage& s : sequential_schedule(g).stages) seq += cost.measure(s);
  for (const Stage& s : greedy_schedule(g).stages) greedy += cost.measure(s);
  EXPECT_LE(ios, seq + 1e-9);
  EXPECT_LE(ios, greedy + 1e-9);
}

TEST_P(PropertyTest, IosScheduleComputesSameValues) {
  const Graph g = random_graph(GetParam());
  CostModel cost(g, ExecConfig{tesla_v100(), {}});
  const Schedule q = IosScheduler(cost).schedule_graph();
  ReferenceExecutor exec(g, GetParam());
  const auto inputs = exec.make_inputs(GetParam() + 1);
  const auto oracle = exec.run_sequential(inputs);
  const auto scheduled = exec.run_schedule(q, inputs);
  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    EXPECT_LT(kernels::max_abs_diff(oracle[static_cast<std::size_t>(op.id)],
                                    scheduled[static_cast<std::size_t>(op.id)]),
              1e-3f)
        << op.name;
  }
}

TEST_P(PropertyTest, EndingsHaveNoOutgoingEdges) {
  const Graph g = random_graph(GetParam());
  for (const auto& block : g.blocks()) {
    BlockDag dag(g, block);
    dag.for_each_ending(dag.all(), 64, [&](Set64 e) {
      for (int u : e) {
        ASSERT_TRUE((dag.succ_mask(u) & dag.all()).is_subset_of(e));
      }
    });
  }
}

TEST_P(PropertyTest, GroupsPartitionStage) {
  const Graph g = random_graph(GetParam());
  const Schedule q = greedy_schedule(g);
  for (const Stage& stage : q.stages) {
    // Groups are disjoint and cover the stage.
    std::unordered_set<OpId> seen;
    for (const Group& grp : stage.groups) {
      for (OpId id : grp.ops) {
        EXPECT_TRUE(seen.insert(id).second);
      }
    }
    // No edges between different groups.
    for (std::size_t i = 0; i < stage.groups.size(); ++i) {
      for (OpId id : stage.groups[i].ops) {
        for (OpId pred : g.preds(id)) {
          for (std::size_t j = 0; j < stage.groups.size(); ++j) {
            if (j == i) continue;
            const auto& ops = stage.groups[j].ops;
            EXPECT_EQ(std::find(ops.begin(), ops.end(), pred), ops.end());
          }
        }
      }
    }
  }
}

TEST_P(PropertyTest, DpCostEqualsExecutedCost) {
  // The latency the DP predicts for its own schedule equals the measured
  // latency of executing that schedule (stage-additivity of the engine).
  const Graph g = random_graph(GetParam());
  CostModel cost(g, ExecConfig{tesla_v100(), {}});
  const Schedule q = IosScheduler(cost).schedule_graph();
  Executor ex(g, ExecConfig{tesla_v100(), {}});
  double dp = 0;
  for (const Stage& s : q.stages) dp += cost.measure(s);
  EXPECT_NEAR(dp, ex.schedule_latency_us(q), 1e-6);
}

TEST_P(PropertyTest, WidthBoundsStates) {
  // d <= n, and the DP transition count respects the paper's upper bound.
  const Graph g = random_graph(GetParam());
  for (const auto& block : g.blocks()) {
    BlockDag dag(g, block);
    const int n = dag.size();
    const int d = dag.width();
    ASSERT_GE(d, 1);
    ASSERT_LE(d, n);
    if (n <= 14) {  // keep the exact count cheap
      const auto counts = dag.count_transitions();
      EXPECT_LE(static_cast<double>(counts.transitions),
                BlockDag::transition_upper_bound(n, d) + 1e-6);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest, ::testing::Range<std::uint64_t>(0, 24));

}  // namespace
}  // namespace ios
