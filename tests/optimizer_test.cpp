#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>

#include "api/optimizer.hpp"
#include "frameworks/frameworks.hpp"
#include "models/models.hpp"
#include "schedule/serialize.hpp"

namespace ios {
namespace {

// A small two-branch block (cheap to search, still non-trivial: four ways to
// stage it) used where the model identity does not matter.
Graph small_graph(int batch = 1) {
  Graph g(batch, "api_test_block");
  const OpId in = g.input(64, 28, 28, "input");
  g.begin_block();
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 32, .kh = 1,
                                          .kw = 1}, "a");
  const OpId b = g.conv2d(in, Conv2dAttrs{.out_channels = 48, .kh = 3,
                                          .kw = 3, .ph = 1, .pw = 1}, "b");
  const OpId branches[] = {a, b};
  g.concat(branches, "concat");
  g.validate();
  return g;
}

std::string dump(const Schedule& q) { return schedule_to_json(q).dump(); }

TEST(Optimizer, CacheHitSkipsAllProfiling) {
  Optimizer opt;
  const OptimizationRequest request =
      OptimizationRequest::for_graph(small_graph());

  const OptimizationResult first = opt.optimize(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.new_measurements, 0);
  EXPECT_EQ(first.new_measurements, first.stats.measurements);
  EXPECT_EQ(opt.cache_size(), 1u);

  const OptimizationResult second = opt.optimize(request);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.new_measurements, 0);  // zero new CostModel measurements
  EXPECT_EQ(opt.total_measurements(), first.new_measurements);
  EXPECT_EQ(second.fingerprint, first.fingerprint);
  EXPECT_EQ(dump(second.schedule), dump(first.schedule));
  EXPECT_DOUBLE_EQ(second.latency_us, first.latency_us);
  EXPECT_EQ(opt.cache_size(), 1u);

  opt.clear_cache();
  EXPECT_EQ(opt.cache_size(), 0u);
  EXPECT_FALSE(opt.optimize(request).cache_hit);
}

TEST(Optimizer, CacheIsBoundedWithLruEviction) {
  Optimizer opt(/*cache_capacity=*/2);
  EXPECT_EQ(opt.cache_capacity(), 2u);

  OptimizationRequest a = OptimizationRequest::for_graph(small_graph());
  OptimizationRequest b = a;
  b.options.pruning = {1, 1};
  OptimizationRequest c = a;
  c.options.variant = IosVariant::kMerge;

  opt.optimize(a);
  opt.optimize(b);
  EXPECT_EQ(opt.cache_size(), 2u);

  // Touch `a` so `b` becomes least-recently-used, then overflow with `c`.
  EXPECT_TRUE(opt.optimize(a).cache_hit);
  opt.optimize(c);
  EXPECT_EQ(opt.cache_size(), 2u);
  EXPECT_EQ(opt.cache_stats().evictions, 1);

  // `a` and `c` survived; `b` was evicted and must be searched again.
  EXPECT_TRUE(opt.optimize(a).cache_hit);
  EXPECT_TRUE(opt.optimize(c).cache_hit);
  const OptimizationResult again = opt.optimize(b);
  EXPECT_FALSE(again.cache_hit);
  EXPECT_GT(again.new_measurements, 0);

  const OptimizerCacheStats stats = opt.cache_stats();
  EXPECT_EQ(stats.hits, 3);
  EXPECT_EQ(stats.misses, 4);  // a, b, c cold + b re-searched
  EXPECT_EQ(stats.evictions, 2);
  EXPECT_EQ(stats.size, 2u);
}

TEST(Optimizer, CacheCapacityClampedToOne) {
  Optimizer opt(/*cache_capacity=*/0);
  EXPECT_EQ(opt.cache_capacity(), 1u);
  const OptimizationRequest request =
      OptimizationRequest::for_graph(small_graph());
  opt.optimize(request);
  EXPECT_TRUE(opt.optimize(request).cache_hit);
  EXPECT_EQ(opt.cache_size(), 1u);
}

TEST(Optimizer, ClearCacheKeepsCounters) {
  Optimizer opt;
  const OptimizationRequest request =
      OptimizationRequest::for_graph(small_graph());
  opt.optimize(request);
  opt.optimize(request);
  opt.clear_cache();
  const OptimizerCacheStats stats = opt.cache_stats();
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.size, 0u);
}

TEST(Optimizer, DistinctConfigurationsMissTheCache) {
  Optimizer opt;
  OptimizationRequest request = OptimizationRequest::for_graph(small_graph());
  const OptimizationResult base = opt.optimize(request);

  request.device = "k80";
  EXPECT_FALSE(opt.optimize(request).cache_hit);

  request.device = "v100";
  request.options.pruning = {1, 1};
  EXPECT_FALSE(opt.optimize(request).cache_hit);

  request.options.pruning = {};
  request.options.variant = IosVariant::kMerge;
  EXPECT_FALSE(opt.optimize(request).cache_hit);
  EXPECT_EQ(opt.cache_size(), 4u);

  // num_threads does not change the found schedule and is not in the key.
  request.options.variant = IosVariant::kBoth;
  request.options.num_threads = 4;
  const OptimizationResult threaded = opt.optimize(request);
  EXPECT_TRUE(threaded.cache_hit);
  EXPECT_EQ(threaded.fingerprint, base.fingerprint);
}

TEST(Optimizer, GraphAndNameRequestsAreEquivalent) {
  Optimizer opt;
  const OptimizationResult by_name =
      opt.optimize(OptimizationRequest::for_model("squeezenet", "v100", 1));
  EXPECT_FALSE(by_name.cache_hit);
  EXPECT_EQ(by_name.recipe.model, "squeezenet");
  EXPECT_FALSE(by_name.recipe.graph.has_value());

  // The same network handed over as an in-memory graph fingerprints to the
  // same cache key, so it is even served from the cache.
  const OptimizationResult by_graph = opt.optimize(
      OptimizationRequest::for_graph(models::squeezenet(1), "v100"));
  EXPECT_TRUE(by_graph.cache_hit);
  EXPECT_EQ(by_graph.fingerprint, by_name.fingerprint);
  EXPECT_EQ(dump(by_graph.schedule), dump(by_name.schedule));
  EXPECT_DOUBLE_EQ(by_graph.latency_us, by_name.latency_us);
  EXPECT_TRUE(by_graph.recipe.graph.has_value());
}

TEST(Optimizer, BaselineSetIsPerRequestEvenOnCacheHit) {
  Optimizer opt;
  OptimizationRequest request = OptimizationRequest::for_graph(small_graph());
  const OptimizationResult first = opt.optimize(request);
  ASSERT_EQ(first.baselines.size(), 2u);
  EXPECT_NE(first.baseline("sequential"), nullptr);
  EXPECT_GT(first.baseline("sequential")->latency_us, 0);
  EXPECT_EQ(first.baseline("TensorRT"), nullptr);

  request.baselines = all_baselines();
  const OptimizationResult second = opt.optimize(request);
  EXPECT_TRUE(second.cache_hit);
  ASSERT_EQ(second.baselines.size(), all_baselines().size());
  ASSERT_NE(second.baseline("TensorRT"), nullptr);
  EXPECT_GT(second.baseline("TensorRT")->latency_us, 0);
  EXPECT_DOUBLE_EQ(
      second.baseline("sequential")->latency_us,
      first.baseline("sequential")->latency_us);
}

TEST(Optimizer, RecipeSaveLoadEvaluateRoundTrip) {
  Optimizer opt;
  const OptimizationResult result =
      opt.optimize(OptimizationRequest::for_model("squeezenet", "v100", 1));

  const std::string path = ::testing::TempDir() + "/optimizer_recipe.json";
  Optimizer::save(result, path);
  const Recipe loaded = Optimizer::load(path);
  EXPECT_EQ(loaded.model, "squeezenet");
  EXPECT_EQ(loaded.device, "Tesla V100");
  EXPECT_EQ(loaded.batch, 1);
  EXPECT_EQ(dump(loaded.schedule), dump(result.schedule));

  const EvaluationResult ev = opt.evaluate(loaded);
  EXPECT_EQ(ev.device, "Tesla V100");
  EXPECT_EQ(ev.batch, 1);
  EXPECT_DOUBLE_EQ(ev.latency_us, result.latency_us);
  EXPECT_DOUBLE_EQ(ev.sequential_latency_us,
                   result.baseline("sequential")->latency_us);

  // The same recipe evaluated on another device and batch size.
  const EvaluationResult k80 = opt.evaluate(loaded, "k80", 4);
  EXPECT_EQ(k80.device, "Tesla K80");
  EXPECT_EQ(k80.batch, 4);
  EXPECT_GT(k80.latency_us, ev.latency_us);
}

TEST(Optimizer, GraphRecipeEmbedsGraphAndRoundTrips) {
  Optimizer opt;
  const OptimizationResult result =
      opt.optimize(OptimizationRequest::for_graph(small_graph()));
  ASSERT_TRUE(result.recipe.graph.has_value());

  const std::string path =
      ::testing::TempDir() + "/optimizer_graph_recipe.json";
  Optimizer::save(result, path);
  const Recipe loaded = Optimizer::load(path);
  ASSERT_TRUE(loaded.graph.has_value());
  EXPECT_EQ(loaded.model, "api_test_block");
  EXPECT_EQ(loaded.graph->name(), "api_test_block");

  const EvaluationResult ev = opt.evaluate(loaded);
  EXPECT_DOUBLE_EQ(ev.latency_us, result.latency_us);

  // Batch override on an embedded graph re-materializes it at the new batch.
  const EvaluationResult batched = opt.evaluate(loaded, "", 8);
  EXPECT_EQ(batched.batch, 8);
  EXPECT_GT(batched.latency_us, ev.latency_us);
}

TEST(Optimizer, GraphWithBatchPreservesStructure) {
  const Graph g = small_graph(1);
  const Graph g8 = graph_with_batch(g, 8);
  EXPECT_EQ(g8.batch(), 8);
  EXPECT_EQ(g8.num_ops(), g.num_ops());
  EXPECT_EQ(g8.name(), g.name());
  // Same graph at the same batch is returned unchanged (same fingerprint).
  EXPECT_EQ(graph_to_json(graph_with_batch(g, 1)).dump(),
            graph_to_json(g).dump());
}

TEST(Optimizer, UnknownNamesEnumerateAllKnownNames) {
  try {
    models::build_model("no_such_model", 1);
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_model"), std::string::npos);
    EXPECT_NE(msg.find("inception_v3"), std::string::npos);
    EXPECT_NE(msg.find("squeezenet"), std::string::npos);
  }

  try {
    device_by_name("no_such_device");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("no_such_device"), std::string::npos);
    EXPECT_NE(msg.find("v100"), std::string::npos);
    EXPECT_NE(msg.find("k80"), std::string::npos);
  }

  try {
    baseline_by_name("no_such_baseline");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string msg = e.what();
    EXPECT_NE(msg.find("greedy"), std::string::npos);
    EXPECT_NE(msg.find("TensorRT"), std::string::npos);
  }

  Optimizer opt;
  EXPECT_THROW(opt.optimize(OptimizationRequest::for_model("nope")),
               std::invalid_argument);
  EXPECT_THROW(opt.optimize(OptimizationRequest::for_model(
                   "squeezenet", "nope")),
               std::invalid_argument);
}

// baseline_name() promises the display names of frameworks.cpp so tables
// printed from OptimizationResult line up with the Figure 7 benches; pin the
// two sources together.
TEST(Optimizer, BaselineNamesMatchFrameworkSpecs) {
  EXPECT_EQ(baseline_name(Baseline::kTensorFlow),
            frameworks::tensorflow_spec().name);
  EXPECT_EQ(baseline_name(Baseline::kTensorFlowXla),
            frameworks::tensorflow_xla_spec().name);
  EXPECT_EQ(baseline_name(Baseline::kTaso), frameworks::taso_spec().name);
  EXPECT_EQ(baseline_name(Baseline::kTvmCudnn),
            frameworks::tvm_cudnn_spec().name);
  EXPECT_EQ(baseline_name(Baseline::kTensorRT),
            frameworks::tensorrt_spec().name);
  EXPECT_EQ(baseline_name(Baseline::kTvmAutoTune),
            frameworks::tvm_autotune_spec().name);
  for (Baseline b : all_baselines()) {
    EXPECT_EQ(baseline_by_name(baseline_name(b)), b);
  }
}

TEST(Optimizer, ProfileDbWarmsAcrossOptimizerInstances) {
  const std::string path =
      ::testing::TempDir() + "/optimizer_profile_db.json";
  std::remove(path.c_str());

  OptimizationRequest request = OptimizationRequest::for_graph(small_graph());
  request.profile_db = path;

  // Cold: a fresh database is created and fully populated.
  Optimizer cold;
  const OptimizationResult first = cold.optimize(request);
  EXPECT_FALSE(first.cache_hit);
  EXPECT_GT(first.new_measurements, 0);
  EXPECT_EQ(first.profile_entries_loaded, 0);
  EXPECT_EQ(first.profile_entries_saved, first.new_measurements);

  // Warm, in a *new* Optimizer (empty recipe cache): the search re-runs but
  // every stage latency comes from the database — zero new simulations.
  Optimizer warm;
  const OptimizationResult second = warm.optimize(request);
  EXPECT_FALSE(second.cache_hit);
  EXPECT_EQ(second.profile_entries_loaded, first.profile_entries_saved);
  EXPECT_EQ(second.new_measurements, 0);
  EXPECT_EQ(dump(second.schedule), dump(first.schedule));
  EXPECT_DOUBLE_EQ(second.latency_us, first.latency_us);

  // A different device under the same path coexists (separate context) and
  // does not clobber the first context's entries.
  OptimizationRequest k80 = request;
  k80.device = "k80";
  const OptimizationResult third = Optimizer().optimize(k80);
  EXPECT_EQ(third.profile_entries_loaded, 0);
  EXPECT_GT(third.new_measurements, 0);
  const OptimizationResult fourth = Optimizer().optimize(request);
  EXPECT_EQ(fourth.new_measurements, 0);
  std::remove(path.c_str());
}

TEST(Optimizer, ProfileDbDoesNotAffectCacheKey) {
  // The database only changes where latencies come from, never the found
  // schedule, so requests with and without it share one recipe-cache entry.
  Optimizer opt;
  OptimizationRequest without = OptimizationRequest::for_graph(small_graph());
  OptimizationRequest with = without;
  with.profile_db = ::testing::TempDir() + "/optimizer_profile_key.json";
  std::remove(with.profile_db.c_str());
  const OptimizationResult a = opt.optimize(without);
  const OptimizationResult b = opt.optimize(with);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_TRUE(b.cache_hit);
  // The cache hit short-circuits before any profiling, so no file appears.
  EXPECT_EQ(b.profile_entries_loaded, 0);
  EXPECT_EQ(b.profile_entries_saved, 0);
}

TEST(Optimizer, SearchEngineExcludedFromCacheKey) {
  // Both engines find bit-identical schedules, so the engine (like the
  // thread count) is not key material: a serial-engine result serves a
  // wave-engine request.
  Optimizer opt;
  OptimizationRequest serial = OptimizationRequest::for_graph(small_graph());
  serial.options.engine = SearchEngine::kSerial;
  OptimizationRequest wave = serial;
  wave.options.engine = SearchEngine::kWave;
  wave.options.num_threads = 4;
  const OptimizationResult a = opt.optimize(serial);
  const OptimizationResult b = opt.optimize(wave);
  EXPECT_TRUE(b.cache_hit);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(dump(b.schedule), dump(a.schedule));
}

TEST(Optimizer, InvalidOptionsRejectedEvenOnCachedRequests) {
  // The engine is excluded from the cache key, so a kWave+memoize=false
  // request maps to the same entry as a valid kSerial+memoize=false one; it
  // must still throw (options are validated before the cache lookup).
  Optimizer opt;
  OptimizationRequest valid = OptimizationRequest::for_graph(small_graph());
  valid.options.memoize = false;
  valid.options.engine = SearchEngine::kSerial;
  opt.optimize(valid);

  OptimizationRequest invalid = valid;
  invalid.options.engine = SearchEngine::kWave;
  EXPECT_THROW(opt.optimize(invalid), std::invalid_argument);
}

TEST(Optimizer, RegistryEnumerationMatchesLookup) {
  const std::vector<std::string> names = models::model_names();
  EXPECT_EQ(names.size(), models::registry().size());
  EXPECT_TRUE(models::has_model("nasnet"));
  EXPECT_FALSE(models::has_model("nasnet_b"));
  for (const std::string& name : names) {
    EXPECT_TRUE(models::has_model(name));
  }
  // Every registered builder produces a valid graph at batch 1 with the
  // requested batch applied.
  const Graph g = models::build_model("fig3", 2);
  EXPECT_EQ(g.batch(), 2);
}

}  // namespace
}  // namespace ios
