// Crash-safe persistence: ProfileDb and Recipe files are written via
// temp + fsync + atomic rename with an embedded content checksum, so a
// kill -9 mid-save leaves either the old or the new file — never a torn
// one — and any corruption that still parses is rejected on load as a
// named CorruptFileError instead of silently feeding the optimizer bad
// latencies.

#include <gtest/gtest.h>

#include <cstdio>
#include <stdexcept>
#include <string>

#include "api/optimizer.hpp"
#include "runtime/profile_db.hpp"
#include "schedule/serialize.hpp"
#include "util/json.hpp"

namespace ios {
namespace {

// Each test uses its own path: the Optimizer keeps a process-wide registry
// per profile-db path, so reusing one across tests would share state.
std::string temp_path(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::remove(path.c_str());
  return path;
}

ProfileDb sample_db() {
  ProfileDb db;
  ProfileDb::Entries& ctx = db.context_for_update(0xabcdef0123456789ull);
  ctx[1] = 10.5;
  ctx[2] = 20.25;
  db.context_for_update(0x42ull)[7] = 1234.0;
  return db;
}

TEST(Persistence, SaveEmbedsAVerifiableChecksumAndRoundTrips) {
  const std::string path = temp_path("persist_roundtrip.json");
  sample_db().save(path);

  const JsonValue doc = JsonValue::parse(read_file(path));
  ASSERT_TRUE(doc.contains("checksum"));
  EXPECT_NO_THROW(verify_content_checksum(doc, "profile-db"));

  const ProfileDb loaded = ProfileDb::load(path);
  EXPECT_EQ(loaded.num_contexts(), 2u);
  EXPECT_EQ(loaded.num_entries(), 3u);
  const ProfileDb::Entries* ctx = loaded.context(0xabcdef0123456789ull);
  ASSERT_NE(ctx, nullptr);
  EXPECT_EQ(ctx->at(1), 10.5);
  EXPECT_EQ(ctx->at(2), 20.25);
}

TEST(Persistence, TruncatedProfileDbIsRejectedByName) {
  const std::string path = temp_path("persist_truncated.json");
  sample_db().save(path);
  const std::string full = read_file(path);
  write_file(path, full.substr(0, full.size() / 2));  // torn mid-document

  try {
    ProfileDb::load(path);
    FAIL() << "truncated file loaded";
  } catch (const CorruptFileError& e) {
    EXPECT_NE(std::string(e.what()).find("profile-db"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos);
  }
}

TEST(Persistence, FlippedByteFailsTheContentChecksum) {
  const std::string path = temp_path("persist_bitrot.json");
  sample_db().save(path);
  // Corrupt a latency digit: the document still parses as valid JSON with
  // the right format header, so only the checksum can catch it.
  std::string text = read_file(path);
  const std::size_t pos = text.find("10.5");
  ASSERT_NE(pos, std::string::npos);
  text[pos] = '9';
  write_file(path, text);

  try {
    ProfileDb::load(path);
    FAIL() << "bit-rotted file loaded";
  } catch (const CorruptFileError& e) {
    EXPECT_NE(std::string(e.what()).find("checksum"), std::string::npos);
  }
}

TEST(Persistence, PreChecksumFilesStillLoad) {
  // Databases saved before checksums were embedded have no "checksum" key;
  // they must keep loading (verify passes on absence).
  const std::string path = temp_path("persist_legacy.json");
  write_file(path, sample_db().to_json().dump());
  const ProfileDb loaded = ProfileDb::load(path);
  EXPECT_EQ(loaded.num_entries(), 3u);
}

TEST(Persistence, StaleTempFileFromACrashedSaveIsHarmless) {
  // A crash between temp-write and rename leaves path.tmp behind; the next
  // save must overwrite it and still land atomically.
  const std::string path = temp_path("persist_stale_tmp.json");
  write_file(path + ".tmp", "garbage from a dead process");
  sample_db().save(path);
  EXPECT_EQ(ProfileDb::load(path).num_entries(), 3u);
}

TEST(Persistence, CorruptRecipeIsRejectedMissingFileIsNot) {
  const std::string path = temp_path("persist_recipe.json");
  // Missing file: a plain runtime_error (caller typo), not corruption.
  try {
    load_recipe(path);
    FAIL() << "missing file loaded";
  } catch (const CorruptFileError&) {
    FAIL() << "missing file misreported as corrupt";
  } catch (const std::runtime_error&) {
  }

  Optimizer opt;
  OptimizationRequest request = OptimizationRequest::for_model("fig3");
  request.baselines.clear();
  const Recipe recipe = opt.optimize(request).recipe;
  save_recipe(recipe, path);
  EXPECT_EQ(load_recipe(path).model, recipe.model);

  std::string text = read_file(path);
  write_file(path, text.substr(0, text.size() - 40));
  try {
    load_recipe(path);
    FAIL() << "corrupt recipe loaded";
  } catch (const CorruptFileError& e) {
    EXPECT_NE(std::string(e.what()).find("recipe"), std::string::npos);
  }
}

TEST(Persistence, OptimizerColdStartsOverACorruptProfileDb) {
  const std::string path = temp_path("persist_cold_start.json");
  write_file(path, R"({"format":"ios-profile-db")");  // torn header

  // The corrupt database must not fail the optimization: the registry
  // falls back to a cold profile database (with a stderr note).
  Optimizer opt;
  OptimizationRequest request = OptimizationRequest::for_model("fig3");
  request.baselines.clear();
  request.profile_db = path;
  const OptimizationResult result = opt.optimize(request);
  EXPECT_GT(result.latency_us, 0);
  EXPECT_GT(result.new_measurements, 0);  // cold: nothing was imported

  // The merge-back then replaces the corrupt file with a valid one.
  const ProfileDb healed = ProfileDb::load(path);
  EXPECT_GT(healed.num_entries(), 0u);
}

}  // namespace
}  // namespace ios
