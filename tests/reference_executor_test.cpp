#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "models/models.hpp"
#include "runtime/reference_executor.hpp"
#include "schedule/baselines.hpp"
#include "tensor/kernels.hpp"

namespace ios {
namespace {

constexpr float kTol = 1e-3f;

/// Compares the outputs of every op under two executions.
void expect_equivalent(const Graph& g, const std::vector<Tensor>& a,
                       const std::vector<Tensor>& b) {
  for (const Op& op : g.ops()) {
    if (!op.schedulable()) continue;
    const auto& ta = a[static_cast<std::size_t>(op.id)];
    const auto& tb = b[static_cast<std::size_t>(op.id)];
    ASSERT_EQ(ta.desc(), tb.desc()) << op.name;
    EXPECT_LT(kernels::max_abs_diff(ta, tb), kTol) << op.name;
  }
}

TEST(ReferenceExecutor, SequentialScheduleMatchesOracle) {
  const Graph g = models::fig3_graph(1);
  ReferenceExecutor exec(g, 1);
  const auto inputs = exec.make_inputs(2);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(sequential_schedule(g), inputs));
}

TEST(ReferenceExecutor, GreedyScheduleMatchesOracle) {
  const Graph g = models::fig2_graph(1);
  ReferenceExecutor exec(g, 3);
  const auto inputs = exec.make_inputs(4);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(greedy_schedule(g), inputs));
}

TEST(ReferenceExecutor, MergedStageMatchesOracle) {
  // Conv a (1x1) and b (3x3) share an input: merge stage must reproduce
  // both outputs exactly (up to fp round-off from the different reduction
  // order of the stacked kernel).
  Graph g(2, "m");
  const OpId in = g.input(6, 9, 9);
  g.begin_block();
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 5, .kh = 1, .kw = 1},
                          "a");
  const OpId b = g.conv2d(in, Conv2dAttrs{.out_channels = 7, .kh = 3, .kw = 3,
                                          .ph = 1, .pw = 1},
                          "b");
  const OpId ins[] = {a, b};
  g.concat(ins, "cat");

  Schedule q;
  q.stages.push_back(Stage{StageStrategy::kMerge, {Group{{a, b}}}});
  q.stages.push_back(
      Stage{StageStrategy::kConcurrent, {Group{{g.num_ops() - 1}}}});

  ReferenceExecutor exec(g, 5);
  const auto inputs = exec.make_inputs(6);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(q, inputs));
}

TEST(ReferenceExecutor, MergedAsymmetricKernelsMatchOracle) {
  // Figure 10's f & g: 3x1 and 1x3 merged into a 3x3 kernel.
  Graph g(1, "fg");
  const OpId in = g.input(4, 8, 8);
  g.begin_block();
  const OpId f = g.conv2d(in, Conv2dAttrs{.out_channels = 3, .kh = 3, .kw = 1,
                                          .ph = 1, .pw = 0},
                          "f");
  const OpId h = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 3,
                                          .ph = 0, .pw = 1},
                          "g");
  const OpId ins[] = {f, h};
  g.concat(ins, "cat");

  Schedule q;
  q.stages.push_back(Stage{StageStrategy::kMerge, {Group{{f, h}}}});
  q.stages.push_back(
      Stage{StageStrategy::kConcurrent, {Group{{g.num_ops() - 1}}}});

  ReferenceExecutor exec(g, 7);
  const auto inputs = exec.make_inputs(8);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(q, inputs));
}

TEST(ReferenceExecutor, IosScheduleOfFireModuleMatchesOracle) {
  // A real IOS-found schedule over a SqueezeNet-like fire module (may
  // contain merge stages) computes the same values as sequential execution.
  Graph g(1, "fire");
  const OpId in = g.input(16, 12, 12);
  g.begin_block();
  const OpId s = g.conv2d(in, Conv2dAttrs{.out_channels = 8, .kh = 1, .kw = 1},
                          "squeeze");
  const OpId e1 = g.conv2d(s, Conv2dAttrs{.out_channels = 16, .kh = 1, .kw = 1},
                           "e1");
  const OpId e3 = g.conv2d(s, Conv2dAttrs{.out_channels = 16, .kh = 3, .kw = 3,
                                          .ph = 1, .pw = 1},
                           "e3");
  const OpId ins[] = {e1, e3};
  g.concat(ins, "cat");

  CostModel cost(g, ExecConfig{tesla_v100(), {}});
  const Schedule q = IosScheduler(cost).schedule_graph();
  validate_schedule(g, q);

  ReferenceExecutor exec(g, 11);
  const auto inputs = exec.make_inputs(12);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(q, inputs));
}

TEST(ReferenceExecutor, MultiInputSepconvGraph) {
  Graph g(1, "rw");
  const OpId in = g.input(8, 10, 10);
  g.begin_block();
  const OpId a = g.sepconv(in, SepConvAttrs{.out_channels = 8}, "a");
  const OpId b = g.sepconv(in, SepConvAttrs{.out_channels = 8}, "b");
  const OpId both[] = {a, b};
  g.sepconv(both, SepConvAttrs{.out_channels = 8}, "c");

  ReferenceExecutor exec(g, 13);
  const auto inputs = exec.make_inputs(14);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(greedy_schedule(g), inputs));
}

TEST(ReferenceExecutor, PoolAddIdentitySplitPath) {
  Graph g(1, "misc");
  const OpId in = g.input(8, 6, 6);
  g.begin_block();
  const OpId p = g.pool2d(in, Pool2dAttrs{Pool2dAttrs::Kind::kAvg, 3, 3, 1, 1,
                                          1, 1});
  const OpId i = g.identity(in);
  const OpId s = g.add(p, i);
  const OpId sp = g.split(s, 2, 6);
  const OpId r = g.relu(sp);
  const OpId gap = g.pool2d(
      r, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0});
  g.matmul(gap, MatmulAttrs{.out_features = 3});

  ReferenceExecutor exec(g, 15);
  const auto inputs = exec.make_inputs(16);
  expect_equivalent(g, exec.run_sequential(inputs),
                    exec.run_schedule(sequential_schedule(g), inputs));
}

TEST(ReferenceExecutor, RejectsWrongInputCountOrShape) {
  const Graph g = models::fig5_graph(1);
  ReferenceExecutor exec(g, 17);
  EXPECT_THROW(exec.run_sequential({}), std::invalid_argument);
  std::vector<Tensor> bad;
  bad.emplace_back(TensorDesc{1, 1, 1, 1});
  EXPECT_THROW(exec.run_sequential(bad), std::invalid_argument);
}

TEST(ReferenceExecutor, DeterministicWeights) {
  const Graph g = models::fig5_graph(1);
  ReferenceExecutor e1(g, 21), e2(g, 21), e3(g, 22);
  const auto in = e1.make_inputs(23);
  const auto a = e1.run_sequential(in);
  const auto b = e2.run_sequential(in);
  const auto c = e3.run_sequential(in);
  const OpId last = g.num_ops() - 1;
  EXPECT_EQ(kernels::max_abs_diff(a[static_cast<std::size_t>(last)],
                                  b[static_cast<std::size_t>(last)]),
            0.0f);
  EXPECT_GT(kernels::max_abs_diff(a[static_cast<std::size_t>(last)],
                                  c[static_cast<std::size_t>(last)]),
            0.0f);
}

}  // namespace
}  // namespace ios
