// Unit tests for the bump-allocation arena behind the wave engine's
// transition records: alignment, in-place extension, wholesale reset, the
// ArenaVec fill pattern, and the process-wide lease pool.

#include "util/arena.hpp"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <thread>
#include <vector>

namespace ios {
namespace {

TEST(Arena, AllocationsAreAlignedAndDisjoint) {
  Arena arena;
  std::vector<std::pair<std::byte*, std::size_t>> blocks;
  for (std::size_t align : {1, 2, 4, 8, 16, 64}) {
    for (std::size_t bytes : {1, 3, 8, 17, 64, 1000}) {
      auto* p = static_cast<std::byte*>(arena.allocate(bytes, align));
      ASSERT_NE(p, nullptr);
      EXPECT_EQ(reinterpret_cast<std::uintptr_t>(p) % align, 0u)
          << "align " << align << " bytes " << bytes;
      std::memset(p, 0xAB, bytes);  // ASan/TSAN-visible touch
      for (const auto& [q, n] : blocks) {
        const bool disjoint = p + bytes <= q || q + n <= p;
        EXPECT_TRUE(disjoint);
      }
      blocks.emplace_back(p, bytes);
    }
  }
}

TEST(Arena, ZeroByteAllocationsAreDistinct) {
  Arena arena;
  void* a = arena.allocate(0, 1);
  void* b = arena.allocate(0, 1);
  EXPECT_NE(a, b);
}

TEST(Arena, OversizedAllocationGetsOwnChunk) {
  Arena arena{256};
  // Far larger than the chunk size: the arena must still serve it.
  auto* p = arena.allocate_array<std::uint64_t>(4096);
  ASSERT_NE(p, nullptr);
  p[0] = 1;
  p[4095] = 2;
  EXPECT_GE(arena.bytes_reserved(), 4096 * sizeof(std::uint64_t));
}

TEST(Arena, TryExtendGrowsTailInPlace) {
  Arena arena;
  auto* p = arena.allocate_array<std::uint32_t>(8);
  ASSERT_TRUE(arena.try_extend(p, 8 * sizeof(std::uint32_t),
                               16 * sizeof(std::uint32_t)));
  // The extension must not move: writes through the old pointer land in the
  // extended block.
  for (int i = 0; i < 16; ++i) p[i] = static_cast<std::uint32_t>(i);
  EXPECT_EQ(p[15], 15u);
}

TEST(Arena, TryExtendRefusesNonTailAllocation) {
  Arena arena;
  auto* a = arena.allocate_array<std::uint32_t>(8);
  (void)arena.allocate_array<std::uint32_t>(8);  // now `a` is not the tail
  EXPECT_FALSE(arena.try_extend(a, 8 * sizeof(std::uint32_t),
                                16 * sizeof(std::uint32_t)));
}

TEST(Arena, ShrinkTailReturnsSlack) {
  Arena arena;
  auto* a = arena.allocate_array<std::uint64_t>(64);
  const std::size_t before = arena.bytes_used();
  arena.shrink_tail(a, 64 * sizeof(std::uint64_t), 16 * sizeof(std::uint64_t));
  EXPECT_EQ(arena.bytes_used(), before - 48 * sizeof(std::uint64_t));
  // The next allocation starts right after the shrunk tail.
  auto* b = arena.allocate_array<std::uint64_t>(1);
  EXPECT_EQ(reinterpret_cast<std::byte*>(b),
            reinterpret_cast<std::byte*>(a) + 16 * sizeof(std::uint64_t));
}

TEST(Arena, ResetKeepsChunksAndReusesMemory) {
  Arena arena{1024};
  for (int i = 0; i < 100; ++i) (void)arena.allocate(128, 8);
  const std::size_t reserved = arena.bytes_reserved();
  EXPECT_GT(reserved, 0u);
  arena.reset();
  EXPECT_EQ(arena.bytes_used(), 0u);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
  // Steady state: refilling after reset allocates no new chunks.
  for (int i = 0; i < 100; ++i) (void)arena.allocate(128, 8);
  EXPECT_EQ(arena.bytes_reserved(), reserved);
}

TEST(ArenaVec, FillPatternPacksExactly) {
  Arena arena;
  ArenaVec<std::uint64_t> v{arena};
  EXPECT_TRUE(v.empty());
  for (std::uint64_t i = 0; i < 1000; ++i) v.push_back(i);
  v.shrink_to_fit();
  ASSERT_EQ(v.size(), 1000u);
  for (std::uint32_t i = 0; i < v.size(); ++i) {
    ASSERT_EQ(v[i], i);
  }
  // After shrink_to_fit the next vector starts immediately after this one's
  // last element — the wave engine's exact-fit span layout.
  ArenaVec<std::uint64_t> w{arena};
  w.push_back(7);
  EXPECT_EQ(w.data(), v.data() + v.size());
}

TEST(ArenaVec, ManySmallVectorsShareChunks) {
  Arena arena;
  std::vector<ArenaVec<std::uint32_t>> vecs;
  for (int s = 0; s < 500; ++s) {
    vecs.emplace_back(arena);
    for (int i = 0; i <= s % 7; ++i) {
      vecs.back().push_back(static_cast<std::uint32_t>(s));
    }
    vecs.back().shrink_to_fit();
  }
  for (int s = 0; s < 500; ++s) {
    ASSERT_EQ(vecs[static_cast<std::size_t>(s)].size(),
              static_cast<std::uint32_t>(s % 7 + 1));
    for (std::uint32_t x : vecs[static_cast<std::size_t>(s)]) {
      ASSERT_EQ(x, static_cast<std::uint32_t>(s));
    }
  }
}

TEST(ArenaPool, LeaseReturnsResetArena) {
  ArenaPool pool;
  std::size_t reserved = 0;
  {
    ArenaPool::Lease lease = pool.acquire();
    ASSERT_TRUE(lease);
    (void)lease->allocate(1024, 8);
    reserved = lease->bytes_reserved();
    EXPECT_EQ(pool.idle(), 0u);
  }
  EXPECT_EQ(pool.idle(), 1u);
  ArenaPool::Lease again = pool.acquire();
  EXPECT_EQ(again->bytes_used(), 0u);          // reset on return
  EXPECT_EQ(again->bytes_reserved(), reserved);  // chunks retained
}

TEST(ArenaPool, EarlyReleaseIsIdempotent) {
  ArenaPool pool;
  ArenaPool::Lease lease = pool.acquire();
  lease.release();
  lease.release();
  EXPECT_FALSE(lease);
  EXPECT_EQ(pool.idle(), 1u);
}

TEST(ArenaPool, MoveTransfersOwnership) {
  ArenaPool pool;
  ArenaPool::Lease a = pool.acquire();
  Arena* raw = &*a;
  ArenaPool::Lease b = std::move(a);
  EXPECT_TRUE(b);
  EXPECT_EQ(&*b, raw);
  b = pool.acquire();  // move-assign over a live lease returns the old arena
  EXPECT_EQ(pool.idle(), 1u);
}

// Concurrent lease/fill/return through the shared pool: each thread's arena
// is exclusively leased, so the only shared state is the pool's free list.
// Run under TSAN this is the wave engine's worker access pattern in
// miniature.
TEST(ArenaPool, ConcurrentLeasesAreExclusive) {
  ArenaPool pool;
  constexpr int kThreads = 8;
  constexpr int kRounds = 50;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&pool, t] {
      for (int r = 0; r < kRounds; ++r) {
        ArenaPool::Lease lease = pool.acquire();
        ArenaVec<std::uint64_t> v{*lease};
        const std::uint64_t tag =
            static_cast<std::uint64_t>(t) * 1000 + static_cast<std::uint64_t>(r);
        for (int i = 0; i < 100; ++i) v.push_back(tag);
        v.shrink_to_fit();
        for (std::uint64_t x : v) {
          ASSERT_EQ(x, tag);  // another thread writing here is a TSAN race
        }
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_LE(pool.idle(), static_cast<std::size_t>(kThreads));
  EXPECT_GE(pool.idle(), 1u);
}

}  // namespace
}  // namespace ios
