#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "serve/engine.hpp"
#include "serve/server.hpp"

namespace ios {
namespace {

using namespace ios::serve;

// ---- clocks --------------------------------------------------------------

TEST(Clock, VirtualClockAdvancesAndRefusesToGoBackwards) {
  VirtualClock clock;
  EXPECT_EQ(clock.now_us(), 0.0);
  clock.advance_to(125.5);
  EXPECT_EQ(clock.now_us(), 125.5);
  clock.advance_to(125.5);  // standing still is fine
  EXPECT_THROW(clock.advance_to(125.0), std::invalid_argument);
  clock.reset();
  EXPECT_EQ(clock.now_us(), 0.0);
}

TEST(Clock, WallClockIsMonotoneAndMapsTimePoints) {
  WallClock clock;
  const double a = clock.now_us();
  const double b = clock.now_us();
  EXPECT_GE(b, a);
  // time_point_at inverts now_us up to clock granularity.
  const auto tp = clock.time_point_at(b);
  const double us = std::chrono::duration<double, std::micro>(
                        tp.time_since_epoch() -
                        clock.time_point_at(0).time_since_epoch())
                        .count();
  EXPECT_NEAR(us, b, 1.0);
}

// ---- direct engine driving -----------------------------------------------

TEST(ServingEngine, RequiresAClock) {
  EXPECT_THROW(ServingEngine(ServerOptions{}, nullptr), std::invalid_argument);
}

TEST(ServingEngine, SubmitFormsFullBatchesAndPollFlushesDeadlines) {
  ServerOptions options;
  options.device = "v100";
  options.num_workers = 1;
  options.batching.batch_sizes = {1, 2, 4};
  options.batching.max_queue_delay_us = 1000;
  VirtualClock clock;
  ServingEngine engine(options, &clock);

  EXPECT_EQ(engine.next_deadline_us(),
            std::numeric_limits<double>::infinity());

  // Three arrivals at t=0: no full batch of 4 yet, so a deadline is armed.
  for (int i = 0; i < 3; ++i) {
    EXPECT_TRUE(engine.submit(i, "fig3").empty());
  }
  EXPECT_EQ(engine.queued(), 3u);
  EXPECT_EQ(engine.next_deadline_us(), 1000.0);

  // The fourth arrival completes a max-size batch immediately.
  const std::vector<EngineBatch> formed = engine.submit(3, "fig3");
  ASSERT_EQ(formed.size(), 1u);
  EXPECT_EQ(formed[0].record.size, 4);
  EXPECT_EQ(formed[0].record.formed_us, 0.0);
  ASSERT_EQ(formed[0].members.size(), 4u);
  EXPECT_EQ(formed[0].members[0].id, 0);
  EXPECT_EQ(formed[0].members[3].id, 3);
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_EQ(engine.next_deadline_us(),
            std::numeric_limits<double>::infinity());

  // One more arrival, then its deadline fires at arrival + delay.
  clock.advance_to(2500);
  EXPECT_TRUE(engine.submit(4, "fig3").empty());
  EXPECT_EQ(engine.next_deadline_us(), 3500.0);
  EXPECT_TRUE(engine.poll().empty());  // not due yet
  clock.advance_to(3500);
  const std::vector<EngineBatch> flushed = engine.poll();
  ASSERT_EQ(flushed.size(), 1u);
  EXPECT_EQ(flushed[0].record.size, 1);
  EXPECT_EQ(flushed[0].record.formed_us, 3500.0);
}

TEST(ServingEngine, DrainFlushesEverythingRegardlessOfDeadline) {
  ServerOptions options;
  options.batching.batch_sizes = {8};
  options.batching.max_queue_delay_us = 1e9;
  VirtualClock clock;
  ServingEngine engine(options, &clock);
  for (int i = 0; i < 3; ++i) engine.submit(i, "fig3");
  EXPECT_EQ(engine.queued(), 3u);
  const std::vector<EngineBatch> drained = engine.drain();
  ASSERT_EQ(drained.size(), 1u);
  EXPECT_EQ(drained[0].record.size, 3);
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_EQ(engine.next_deadline_us(),
            std::numeric_limits<double>::infinity());
}

TEST(ServingEngine, TimeMustNotGoBackwardsAcrossCalls) {
  VirtualClock clock;
  ServerOptions options;
  ServingEngine engine(options, &clock);
  clock.advance_to(100);
  engine.submit(0, "fig3");
  clock.reset(50);  // rewind the clock under the engine's feet
  EXPECT_THROW(engine.submit(1, "fig3"), std::invalid_argument);
}

TEST(ServingEngine, ResetClearsRunStateButKeepsCacheAndCounters) {
  VirtualClock clock;
  ServerOptions options;
  options.batching.batch_sizes = {2};
  ServingEngine engine(options, &clock);
  engine.submit(0, "fig3");
  engine.submit(1, "fig3");  // forms a batch -> resolves -> cache miss
  engine.submit(2, "fig3");  // queued
  EXPECT_EQ(engine.queued(), 1u);
  const EngineCounters before = engine.counters();
  EXPECT_GT(before.optimizations, 0);

  engine.reset();
  clock.reset();
  EXPECT_EQ(engine.queued(), 0u);
  EXPECT_EQ(engine.next_deadline_us(),
            std::numeric_limits<double>::infinity());
  EXPECT_EQ(engine.counters().optimizations, before.optimizations);
  EXPECT_GT(engine.cache().size(), 0u);

  // The same workload after reset resolves from cache: no new optimizer
  // runs.
  engine.submit(0, "fig3");
  engine.submit(1, "fig3");
  EXPECT_EQ(engine.counters().optimizations, before.optimizations);
}

// ---- DES <-> engine equivalence ------------------------------------------
//
// The acceptance bar of the engine extraction: the DES Server (event heap
// semantics) and a hand-driven ServingEngine on a VirtualClock must produce
// bit-identical batch compositions, routing decisions, and statistics.

/// Drives a fresh engine through `trace` exactly like the Server's event
/// loop: deadlines strictly before an arrival fire first, arrivals win
/// ties, trailing deadlines fire after the last arrival.
ServingResult drive_engine(const ServerOptions& options, const Trace& trace) {
  VirtualClock clock;
  ServingEngine engine(options, &clock);
  std::vector<EngineBatch> batches;
  auto collect = [&batches](std::vector<EngineBatch> formed) {
    for (EngineBatch& b : formed) batches.push_back(std::move(b));
  };
  for (std::size_t i = 0; i < trace.requests.size(); ++i) {
    const TraceRequest& request = trace.requests[i];
    while (engine.next_deadline_us() < request.arrival_us) {
      clock.advance_to(engine.next_deadline_us());
      collect(engine.poll());
    }
    clock.advance_to(request.arrival_us);
    collect(engine.submit(static_cast<std::int64_t>(i), request.model));
  }
  while (engine.next_deadline_us() < std::numeric_limits<double>::infinity()) {
    clock.advance_to(engine.next_deadline_us());
    collect(engine.poll());
  }
  return summarize(std::move(batches), engine, trace.requests.size());
}

/// Bit-identical comparison of two serving results (EXPECT_EQ on doubles is
/// exact equality — that is the point).
void expect_identical(const ServingResult& a, const ServingResult& b) {
  ASSERT_EQ(a.records.size(), b.records.size());
  for (std::size_t i = 0; i < a.records.size(); ++i) {
    const RequestRecord& x = a.records[i];
    const RequestRecord& y = b.records[i];
    EXPECT_EQ(x.index, y.index);
    EXPECT_EQ(x.model, y.model);
    EXPECT_EQ(x.arrival_us, y.arrival_us);
    EXPECT_EQ(x.dispatch_us, y.dispatch_us);
    EXPECT_EQ(x.completion_us, y.completion_us);
    EXPECT_EQ(x.latency_us, y.latency_us);
    EXPECT_EQ(x.batch_size, y.batch_size);
    EXPECT_EQ(x.batch_id, y.batch_id);
    EXPECT_EQ(x.worker, y.worker);
    EXPECT_EQ(x.device, y.device);
  }
  ASSERT_EQ(a.batches.size(), b.batches.size());
  for (std::size_t i = 0; i < a.batches.size(); ++i) {
    const BatchRecord& x = a.batches[i];
    const BatchRecord& y = b.batches[i];
    EXPECT_EQ(x.id, y.id);
    EXPECT_EQ(x.model, y.model);
    EXPECT_EQ(x.size, y.size);
    EXPECT_EQ(x.formed_us, y.formed_us);
    EXPECT_EQ(x.start_us, y.start_us);
    EXPECT_EQ(x.completion_us, y.completion_us);
    EXPECT_EQ(x.service_us, y.service_us);
    EXPECT_EQ(x.worker, y.worker);
    EXPECT_EQ(x.device, y.device);
  }
  EXPECT_EQ(a.stats.requests, b.stats.requests);
  EXPECT_EQ(a.stats.batches, b.stats.batches);
  EXPECT_EQ(a.stats.makespan_us, b.stats.makespan_us);
  EXPECT_EQ(a.stats.throughput_rps, b.stats.throughput_rps);
  EXPECT_EQ(a.stats.mean_latency_us, b.stats.mean_latency_us);
  EXPECT_EQ(a.stats.p50_latency_us, b.stats.p50_latency_us);
  EXPECT_EQ(a.stats.p95_latency_us, b.stats.p95_latency_us);
  EXPECT_EQ(a.stats.p99_latency_us, b.stats.p99_latency_us);
  EXPECT_EQ(a.stats.max_latency_us, b.stats.max_latency_us);
  EXPECT_EQ(a.stats.mean_queue_wait_us, b.stats.mean_queue_wait_us);
  EXPECT_EQ(a.stats.mean_batch_size, b.stats.mean_batch_size);
  EXPECT_EQ(a.stats.worker_utilization, b.stats.worker_utilization);
  EXPECT_EQ(a.stats.cache_hits, b.stats.cache_hits);
  EXPECT_EQ(a.stats.cache_misses, b.stats.cache_misses);
  ASSERT_EQ(a.device_loads.size(), b.device_loads.size());
  for (std::size_t i = 0; i < a.device_loads.size(); ++i) {
    EXPECT_EQ(a.device_loads[i].device, b.device_loads[i].device);
    EXPECT_EQ(a.device_loads[i].devices, b.device_loads[i].devices);
    EXPECT_EQ(a.device_loads[i].batches, b.device_loads[i].batches);
    EXPECT_EQ(a.device_loads[i].busy_us, b.device_loads[i].busy_us);
    EXPECT_EQ(a.device_loads[i].utilization, b.device_loads[i].utilization);
  }
}

/// One equivalence case: a serving configuration plus a trace to replay.
struct EquivalenceCase {
  const char* name;
  ServerOptions options;
  Trace trace;
};

Trace poisson(std::vector<std::string> models, int n, double mean_gap_us,
              unsigned long long seed) {
  TraceSpec spec;
  spec.models = std::move(models);
  spec.num_requests = n;
  spec.mean_interarrival_us = mean_gap_us;
  spec.seed = seed;
  return generate_trace(spec);
}

Trace burst(const std::string& model, int n, double at_us) {
  Trace t;
  for (int i = 0; i < n; ++i) t.requests.push_back({at_us, model});
  return t;
}

std::vector<EquivalenceCase> equivalence_cases() {
  std::vector<EquivalenceCase> cases;

  {  // 1: single worker, single model, moderate load
    EquivalenceCase c;
    c.name = "fig3-1worker";
    c.options.device = "v100";
    c.options.num_workers = 1;
    c.options.batching.max_queue_delay_us = 1000;
    c.trace = poisson({"fig3"}, 120, 400, 7);
    cases.push_back(std::move(c));
  }
  {  // 2: two workers, two models, heavier load
    EquivalenceCase c;
    c.name = "fig3+fig5-2workers";
    c.options.device = "v100";
    c.options.num_workers = 2;
    c.options.batching.max_queue_delay_us = 800;
    c.trace = poisson({"fig3", "fig5"}, 160, 150, 21);
    cases.push_back(std::move(c));
  }
  {  // 3: heterogeneous pool, device-aware routing
    EquivalenceCase c;
    c.name = "pool-v100x2-k80";
    c.options.pool = pool_from_spec("v100x2,k80");
    c.options.batching.max_queue_delay_us = 1200;
    c.trace = poisson({"fig3", "fig5"}, 140, 250, 3);
    cases.push_back(std::move(c));
  }
  {  // 4: a different pool, three models
    EquivalenceCase c;
    c.name = "pool-p100-1080ti";
    c.options.pool = pool_from_spec("p100,1080ti");
    c.options.batching.max_queue_delay_us = 600;
    c.trace = poisson({"fig3", "fig5", "fig2"}, 150, 200, 11);
    cases.push_back(std::move(c));
  }
  {  // 5: simultaneous arrivals (event-heap tie-breaking)
    EquivalenceCase c;
    c.name = "burst-ties";
    c.options.device = "v100";
    c.options.num_workers = 2;
    c.options.batching.max_queue_delay_us = 500;
    c.trace = burst("fig3", 11, 0);
    for (const TraceRequest& r : burst("fig5", 7, 0).requests) {
      c.trace.requests.push_back(r);
    }
    for (const TraceRequest& r : burst("fig3", 5, 500).requests) {
      c.trace.requests.push_back(r);  // arrivals exactly at a deadline
    }
    cases.push_back(std::move(c));
  }
  {  // 6: degenerate policy {1} — no batching at all
    EquivalenceCase c;
    c.name = "no-batching";
    c.options.device = "k80";
    c.options.num_workers = 2;
    c.options.batching.batch_sizes = {1};
    c.options.batching.max_queue_delay_us = 300;
    c.trace = poisson({"fig3"}, 80, 100, 5);
    cases.push_back(std::move(c));
  }
  {  // 7: allowed sizes {4, 8} only — deadline flushes serve short queues
    EquivalenceCase c;
    c.name = "sizes-4-8";
    c.options.device = "v100";
    c.options.num_workers = 1;
    c.options.batching.batch_sizes = {4, 8};
    c.options.batching.max_queue_delay_us = 900;
    c.trace = poisson({"fig3", "fig5"}, 130, 300, 13);
    cases.push_back(std::move(c));
  }
  {  // 8: a single lonely request
    EquivalenceCase c;
    c.name = "single-request";
    c.options.device = "v100";
    c.options.num_workers = 3;
    c.options.batching.max_queue_delay_us = 2000;
    c.trace = burst("fig5", 1, 42.5);
    cases.push_back(std::move(c));
  }
  {  // 9: zero queueing delay — every request flushes at its own arrival
    EquivalenceCase c;
    c.name = "zero-delay";
    c.options.device = "p100";
    c.options.num_workers = 2;
    c.options.batching.max_queue_delay_us = 0;
    c.trace = poisson({"fig3", "fig5"}, 90, 180, 17);
    cases.push_back(std::move(c));
  }
  return cases;
}

TEST(Equivalence, ServerAndHandDrivenEngineAreBitIdentical) {
  for (EquivalenceCase& c : equivalence_cases()) {
    SCOPED_TRACE(c.name);
    Server server(c.options);
    const ServingResult des = server.run(c.trace);
    const ServingResult manual = drive_engine(c.options, c.trace);
    expect_identical(des, manual);
  }
}

TEST(Equivalence, RepeatedRunsOnOneServerStayIdentical) {
  // Second run on the same server: warm cache (different cache counters by
  // design), identical timing decisions.
  EquivalenceCase c = std::move(equivalence_cases()[2]);
  Server server(c.options);
  const ServingResult first = server.run(c.trace);
  const ServingResult second = server.run(c.trace);
  ASSERT_EQ(first.records.size(), second.records.size());
  for (std::size_t i = 0; i < first.records.size(); ++i) {
    EXPECT_EQ(first.records[i].latency_us, second.records[i].latency_us);
    EXPECT_EQ(first.records[i].worker, second.records[i].worker);
    EXPECT_EQ(first.records[i].batch_id, second.records[i].batch_id);
  }
  EXPECT_EQ(first.stats.makespan_us, second.stats.makespan_us);
  EXPECT_EQ(second.stats.cache_misses, 0);  // everything resolved warm
}

}  // namespace
}  // namespace ios
