// Device-pool parsing and placement-plan tests: pool spec round trips, the
// enumerating unknown-device UX, the Placer's recipe grid / specialization /
// split mechanics, and the machine-readable plan JSON.

#include <gtest/gtest.h>

#include <stdexcept>

#include "models/models.hpp"
#include "place/placer.hpp"
#include "place/pool.hpp"

namespace ios {
namespace {

// ---------------------------------------------------------------------------
// DevicePool / pool_from_spec
// ---------------------------------------------------------------------------

TEST(DevicePool, ParsesCountsAndFullNames) {
  const DevicePool pool = pool_from_spec("v100,k80x2,Tesla P100");
  ASSERT_EQ(pool.num_classes(), 3);
  EXPECT_EQ(pool.classes[0].spec.name, "Tesla V100");
  EXPECT_EQ(pool.classes[0].count, 1);
  EXPECT_EQ(pool.classes[1].spec.name, "Tesla K80");
  EXPECT_EQ(pool.classes[1].count, 2);
  EXPECT_EQ(pool.classes[2].spec.name, "Tesla P100");
  EXPECT_EQ(pool.total_devices(), 4);
}

TEST(DevicePool, ParsesDeviceNamesContainingX) {
  // "1080ti" must not be split at its 'x'-free suffix; "1080x3" must.
  const DevicePool pool = pool_from_spec("1080ti,1080x3");
  ASSERT_EQ(pool.num_classes(), 2);
  EXPECT_EQ(pool.classes[0].spec.name, "GTX 1080Ti");
  EXPECT_EQ(pool.classes[1].spec.name, "GTX 1080");
  EXPECT_EQ(pool.classes[1].count, 3);
}

TEST(DevicePool, MergesDuplicateClasses) {
  const DevicePool pool = pool_from_spec("k80,v100,k80x2");
  ASSERT_EQ(pool.num_classes(), 2);
  EXPECT_EQ(pool.classes[0].spec.name, "Tesla K80");
  EXPECT_EQ(pool.classes[0].count, 3);
  EXPECT_EQ(pool.total_devices(), 4);
}

TEST(DevicePool, SpecStringRoundTrips) {
  for (const char* spec : {"v100", "p100,1080tix2", "k80x3,v100x2,2080ti"}) {
    EXPECT_EQ(pool_from_spec(spec).spec_string(), spec);
  }
}

TEST(DevicePool, UnknownDeviceEnumeratesKnownDevices) {
  // The satellite UX fix: a typo in a pool spec lists every known device,
  // exactly like model/baseline lookups.
  try {
    pool_from_spec("v100,banana");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    const std::string message = e.what();
    EXPECT_NE(message.find("unknown device 'banana'"), std::string::npos)
        << message;
    EXPECT_NE(message.find("known devices:"), std::string::npos) << message;
    for (const std::string& name : device_names()) {
      EXPECT_NE(message.find(name), std::string::npos)
          << message << " should list " << name;
    }
  }
}

TEST(DevicePool, EmptyPoolErrorEnumeratesKnownDevices) {
  // A spec that names no devices at all gets the same enumeration as a
  // typo'd name — the user learns the vocabulary either way.
  for (const char* spec : {"", ","}) {
    try {
      pool_from_spec(spec);
      FAIL() << "expected std::invalid_argument for '" << spec << "'";
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("names no devices"), std::string::npos)
          << message;
      EXPECT_NE(message.find("known devices:"), std::string::npos) << message;
      for (const std::string& name : device_names()) {
        EXPECT_NE(message.find(name), std::string::npos)
            << message << " should list " << name;
      }
    }
  }
}

TEST(DevicePool, RejectsMalformedSpecs) {
  EXPECT_THROW(pool_from_spec(""), std::invalid_argument);
  EXPECT_THROW(pool_from_spec(","), std::invalid_argument);
  EXPECT_THROW(pool_from_spec("v100x0"), std::invalid_argument);
  EXPECT_THROW(pool_from_spec("x2"), std::invalid_argument);
  // Counts beyond the per-class cap — including ones that overflow int —
  // must surface as the documented invalid_argument, not std::out_of_range
  // or a multi-billion-worker server.
  EXPECT_THROW(pool_from_spec("v100x4097"), std::invalid_argument);
  EXPECT_THROW(pool_from_spec("v100x2000000000"), std::invalid_argument);
  EXPECT_THROW(pool_from_spec("k80x9999999999999999999"),
               std::invalid_argument);
  EXPECT_EQ(pool_from_spec("v100x4096").total_devices(), 4096);
}

TEST(DevicePool, RejectsZeroAndNegativeCountsNamingTheToken) {
  // The error must name the offending token and the >= 1 rule — and a
  // negative count must hit the count diagnosis, not fall through to a
  // baffling unknown-device lookup of the literal "k80x-1".
  for (const char* bad : {"v100x0", "k80x-1", "v100,k80x-3", "1080tix-12"}) {
    try {
      pool_from_spec(bad);
      FAIL() << "expected invalid_argument for '" << bad << "'";
    } catch (const std::invalid_argument& e) {
      const std::string message = e.what();
      EXPECT_NE(message.find("count must be >= 1"), std::string::npos)
          << message;
      EXPECT_EQ(message.find("unknown device"), std::string::npos) << message;
    }
  }
  try {
    pool_from_spec("p100,v100x-2");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'v100x-2'"), std::string::npos)
        << e.what();
  }
}

TEST(DevicePool, ValidateRejectsEmptyAndNonPositiveCounts) {
  DevicePool pool;
  EXPECT_THROW(pool.validate(), std::invalid_argument);
  pool.classes.push_back(DeviceClass{tesla_v100(), 0});
  EXPECT_THROW(pool.validate(), std::invalid_argument);
  pool.classes[0].count = 1;
  EXPECT_NO_THROW(pool.validate());
}

TEST(Interconnect, TransferCostIsLatencyPlusBytesOverBandwidth) {
  const InterconnectSpec link{10.0, 12.0};  // 12 GB/s = 12000 bytes/us
  EXPECT_DOUBLE_EQ(link.transfer_us(0), 10.0);
  EXPECT_DOUBLE_EQ(link.transfer_us(120000), 10.0 + 10.0);
  const InterconnectSpec fast{0.0, 1e9};
  EXPECT_NEAR(fast.transfer_us(1 << 20), 0.0, 1e-5);
}

// ---------------------------------------------------------------------------
// Placer
// ---------------------------------------------------------------------------

PlacementRequest two_class_request() {
  PlacementRequest request;
  request.pool = pool_from_spec("p100,1080ti");
  request.workload = {WorkloadItem{"squeezenet", 8, 3.0},
                      WorkloadItem{"mobilenet_v2", 8, 2.0}};
  return request;
}

TEST(Placer, ValidatesRequests) {
  Placer placer;
  PlacementRequest request;  // empty pool + workload
  EXPECT_THROW(placer.place(request), std::invalid_argument);
  request.pool = pool_from_spec("v100");
  EXPECT_THROW(placer.place(request), std::invalid_argument);  // no workload
  request.workload = {WorkloadItem{"squeezenet", 0, 1.0}};
  EXPECT_THROW(placer.place(request), std::invalid_argument);  // bad batch
  request.workload = {WorkloadItem{"squeezenet", 1, 0.0}};
  EXPECT_THROW(placer.place(request), std::invalid_argument);  // bad weight
  request.workload = {WorkloadItem{"no_such_model", 1, 1.0}};
  EXPECT_THROW(placer.place(request), std::invalid_argument);  // bad model
}

TEST(Placer, BuildsTheFullRecipeGrid) {
  Placer placer;
  const PlacementResult result = placer.place(two_class_request());
  ASSERT_EQ(result.recipes.size(), 4u);  // 2 items x 2 classes
  for (const DeviceRecipe& recipe : result.recipes) {
    EXPECT_GT(recipe.latency_us, 0) << recipe.model << " on " << recipe.device;
    EXPECT_FALSE(recipe.recipe.schedule.stages.empty());
  }
  EXPECT_NE(result.recipe_for("squeezenet", 8, "Tesla P100"), nullptr);
  EXPECT_NE(result.recipe_for("mobilenet_v2", 8, "GTX 1080Ti"), nullptr);
  EXPECT_EQ(result.recipe_for("squeezenet", 8, "Tesla K80"), nullptr);
  EXPECT_EQ(result.recipe_for("squeezenet", 1, "Tesla P100"), nullptr);
  EXPECT_EQ(result.optimizations, 4);
  EXPECT_EQ(result.cache_hits, 0);
}

TEST(Placer, SpecializesTheTradeoffWorkload) {
  // The P100 (HBM2 bandwidth) must win the memory-bound squeezenet, the
  // 1080Ti (FP32 peak) the compute-bound mobilenet_v2 — the device tradeoff
  // the heterogeneous pools exist for.
  Placer placer;
  const PlacementResult result = placer.place(two_class_request());
  ASSERT_EQ(result.plan.assignments.size(), 2u);
  EXPECT_EQ(result.plan.assignments[0].model, "squeezenet");
  EXPECT_EQ(result.plan.assignments[0].device, "Tesla P100");
  EXPECT_EQ(result.plan.assignments[1].model, "mobilenet_v2");
  EXPECT_EQ(result.plan.assignments[1].device, "GTX 1080Ti");
  for (const Assignment& a : result.plan.assignments) {
    EXPECT_GT(a.service_us, 0);
    EXPECT_EQ(a.service_us, a.best_single_us);  // no split chosen here
  }
  EXPECT_GT(result.plan.makespan_us, 0);
  ASSERT_EQ(result.plan.loads.size(), 2u);
  double max_utilization = 0;
  for (const ClassLoad& load : result.plan.loads) {
    EXPECT_GE(load.utilization, 0);
    EXPECT_LE(load.utilization, 1.0 + 1e-12);
    max_utilization = std::max(max_utilization, load.utilization);
  }
  EXPECT_DOUBLE_EQ(max_utilization, 1.0);  // someone is the bottleneck
}

TEST(Placer, ReusesTheOptimizerRecipeCacheAcrossCalls) {
  Optimizer optimizer;
  Placer placer(optimizer);
  const PlacementRequest request = two_class_request();
  const PlacementResult first = placer.place(request);
  EXPECT_EQ(first.optimizations, 4);
  const PlacementResult second = placer.place(request);
  EXPECT_EQ(second.optimizations, 0);
  EXPECT_EQ(second.cache_hits, 4);
  EXPECT_EQ(second.measurements, 0);
  // Cached plans are identical.
  EXPECT_DOUBLE_EQ(second.plan.makespan_us, first.plan.makespan_us);
  ASSERT_EQ(second.plan.assignments.size(), first.plan.assignments.size());
  for (std::size_t i = 0; i < first.plan.assignments.size(); ++i) {
    EXPECT_EQ(second.plan.assignments[i].device,
              first.plan.assignments[i].device);
  }
}

TEST(Placer, SplitNeverWorseThanBestSingleDevice) {
  // With a free interconnect a pipeline split can only help; with splits
  // disabled every assignment is a single class. Either way service_us must
  // never exceed the best single-device latency.
  PlacementRequest request = two_class_request();
  request.workload = {WorkloadItem{"inception_v3", 1, 1.0}};
  request.pool.interconnect = InterconnectSpec{0.0, 1e9};
  Placer placer;
  const PlacementResult with_splits = placer.place(request);
  ASSERT_EQ(with_splits.plan.assignments.size(), 1u);
  const Assignment& a = with_splits.plan.assignments[0];
  EXPECT_LE(a.service_us, a.best_single_us + 1e-12);
  if (a.split) {
    EXPECT_GT(a.split->cut_block, 0);
    EXPECT_NE(a.split->first_device, a.split->second_device);
    EXPECT_DOUBLE_EQ(a.split->latency_us, a.split->first_us +
                                              a.split->transfer_us +
                                              a.split->second_us);
    EXPECT_LT(a.split->latency_us, a.best_single_us);
  }

  request.allow_splits = false;
  const PlacementResult without = placer.place(request);
  EXPECT_FALSE(without.plan.assignments[0].split.has_value());
  EXPECT_EQ(without.plan.assignments[0].service_us,
            without.plan.assignments[0].best_single_us);
}

TEST(Placer, RealisticInterconnectRarelyJustifiesSplits) {
  // With the default PCIe-ish interconnect the transfer term must be part
  // of any chosen split's latency, and a split is only ever chosen when it
  // strictly beats the best single device.
  Placer placer;
  const PlacementResult result = placer.place(two_class_request());
  for (const Assignment& a : result.plan.assignments) {
    if (a.split) {
      EXPECT_GT(a.split->transfer_us, 0);
      EXPECT_LT(a.service_us, a.best_single_us);
    }
  }
}

TEST(Placer, PoolRequestOnOptimizationRequestPlacesSingleConfig) {
  // The facade-level entry point: an OptimizationRequest carrying a pool.
  OptimizationRequest request =
      OptimizationRequest::for_model("squeezenet", "v100", 4);
  request.pool = pool_from_spec("p100,1080ti");
  Placer placer;
  const PlacementResult result = placer.place(request);
  EXPECT_EQ(result.recipes.size(), 2u);  // one per class
  ASSERT_EQ(result.plan.assignments.size(), 1u);
  EXPECT_EQ(result.plan.assignments[0].model, "squeezenet");
  EXPECT_EQ(result.plan.assignments[0].batch, 4);

  // In-memory graphs have no registry name to re-optimize per class.
  OptimizationRequest graph_request = request;
  graph_request.graph = models::build_model("fig2", 1);
  EXPECT_THROW(placer.place(graph_request), std::invalid_argument);
}

TEST(Placer, PlanJsonCarriesEverything) {
  Placer placer;
  const PlacementResult result = placer.place(two_class_request());
  const JsonValue json =
      JsonValue::parse(placement_to_json(result).dump());
  EXPECT_EQ(json.at("recipes").as_array().size(), 4u);
  EXPECT_EQ(json.at("plan").at("assignments").as_array().size(), 2u);
  EXPECT_EQ(json.at("plan").at("loads").as_array().size(), 2u);
  EXPECT_DOUBLE_EQ(json.at("plan").at("makespan_us").as_number(),
                   result.plan.makespan_us);
  EXPECT_EQ(json.at("optimizations").as_int(), result.optimizations);
  const JsonValue& first = json.at("plan").at("assignments").as_array()[0];
  EXPECT_EQ(first.at("model").as_string(), "squeezenet");
  EXPECT_EQ(first.at("device").as_string(), "Tesla P100");
}

}  // namespace
}  // namespace ios
