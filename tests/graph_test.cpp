#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/graph.hpp"
#include "models/models.hpp"

namespace ios {
namespace {

TEST(TensorDesc, NumelAndBytes) {
  const TensorDesc d{2, 3, 4, 5};
  EXPECT_EQ(d.numel(), 120);
  EXPECT_EQ(d.bytes(), 480);
  EXPECT_EQ(d.to_string(), "[2,3,4,5]");
}

TEST(TensorDesc, ConvOutDim) {
  EXPECT_EQ(conv_out_dim(32, 3, 1, 1), 32);  // "same" padding
  EXPECT_EQ(conv_out_dim(32, 3, 2, 1), 16);
  EXPECT_EQ(conv_out_dim(299, 3, 2, 0), 149);
  EXPECT_EQ(conv_out_dim(8, 1, 1, 0), 8);
}

TEST(Graph, RejectsBadBatch) {
  EXPECT_THROW(Graph(0), std::invalid_argument);
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(Graph, BuilderShapes) {
  Graph g(2, "t");
  const OpId in = g.input(16, 32, 32);
  EXPECT_EQ(g.op(in).output, (TensorDesc{2, 16, 32, 32}));

  const OpId c = g.conv2d(in, Conv2dAttrs{.out_channels = 8, .kh = 3, .kw = 3,
                                          .ph = 1, .pw = 1});
  EXPECT_EQ(g.op(c).output, (TensorDesc{2, 8, 32, 32}));

  const OpId s = g.sepconv(c, SepConvAttrs{.out_channels = 24});
  EXPECT_EQ(g.op(s).output, (TensorDesc{2, 24, 32, 32}));

  const OpId p = g.pool2d(s, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 2, 2, 2, 2,
                                         0, 0});
  EXPECT_EQ(g.op(p).output, (TensorDesc{2, 24, 16, 16}));

  const OpId gap = g.pool2d(
      p, Pool2dAttrs{Pool2dAttrs::Kind::kGlobalAvg, 0, 0, 1, 1, 0, 0});
  EXPECT_EQ(g.op(gap).output, (TensorDesc{2, 24, 1, 1}));

  const OpId m = g.matmul(gap, MatmulAttrs{.out_features = 10});
  EXPECT_EQ(g.op(m).output, (TensorDesc{2, 10, 1, 1}));
}

TEST(Graph, ConcatChannelsAndValidation) {
  Graph g(1);
  const OpId in = g.input(8, 10, 10);
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  const OpId b = g.conv2d(in, Conv2dAttrs{.out_channels = 6, .kh = 1, .kw = 1});
  const OpId ops[] = {a, b};
  const OpId cat = g.concat(ops);
  EXPECT_EQ(g.op(cat).output.c, 10);

  const OpId small = g.pool2d(
      a, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 2, 2, 2, 2, 0, 0});
  const OpId bad[] = {a, small};
  EXPECT_THROW(g.concat(bad), std::invalid_argument);
}

TEST(Graph, AddRequiresSameShape) {
  Graph g(1);
  const OpId in = g.input(8, 10, 10);
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  const OpId b = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  const OpId c = g.conv2d(in, Conv2dAttrs{.out_channels = 5, .kh = 1, .kw = 1});
  EXPECT_NO_THROW(g.add(a, b));
  EXPECT_THROW(g.add(a, c), std::invalid_argument);
}

TEST(Graph, SplitRange) {
  Graph g(1);
  const OpId in = g.input(8, 4, 4);
  EXPECT_NO_THROW(g.split(in, 0, 4));
  EXPECT_NO_THROW(g.split(in, 4, 8));
  EXPECT_THROW(g.split(in, 4, 4), std::invalid_argument);
  EXPECT_THROW(g.split(in, 0, 9), std::invalid_argument);
  EXPECT_THROW(g.split(in, -1, 4), std::invalid_argument);
  EXPECT_EQ(g.op(g.split(in, 2, 5)).output.c, 3);
}

TEST(Graph, SepconvMultiInputShapeCheck) {
  Graph g(1);
  const OpId in = g.input(8, 10, 10);
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  const OpId b = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  const OpId c = g.conv2d(in, Conv2dAttrs{.out_channels = 6, .kh = 1, .kw = 1});
  const OpId good[] = {a, b};
  EXPECT_NO_THROW(g.sepconv(good, SepConvAttrs{.out_channels = 4}));
  const OpId bad[] = {a, c};
  EXPECT_THROW(g.sepconv(bad, SepConvAttrs{.out_channels = 4}),
               std::invalid_argument);
}

TEST(Graph, FlopsAccounting) {
  Graph g(1);
  const OpId in = g.input(16, 8, 8);
  const OpId c = g.conv2d(in, Conv2dAttrs{.out_channels = 32, .kh = 3, .kw = 3,
                                          .ph = 1, .pw = 1});
  // 2 * N*C_out*H*W * C_in*kh*kw
  EXPECT_EQ(g.flops(c), 2ll * 32 * 8 * 8 * 16 * 3 * 3);
  // weights: out_c * in_c * kh * kw * 4 bytes
  EXPECT_EQ(g.weight_bytes(c), 4ll * 32 * 16 * 3 * 3);
  EXPECT_EQ(g.input_bytes(c), 4ll * 16 * 8 * 8);
  EXPECT_EQ(g.output_bytes(c), 4ll * 32 * 8 * 8);

  const OpId m = g.matmul(c, MatmulAttrs{.out_features = 10});
  EXPECT_EQ(g.flops(m), 2ll * 10 * 32 * 8 * 8);

  const OpId r = g.relu(m);
  EXPECT_EQ(g.flops(r), 10);

  EXPECT_GT(g.total_flops(), 0);
}

TEST(Graph, SepconvFlopsIncludeAggregation) {
  Graph g(1);
  const OpId in = g.input(8, 4, 4);
  const OpId a = g.identity(in);
  const OpId b = g.identity(in);
  const OpId single = g.sepconv(a, SepConvAttrs{.out_channels = 8});
  const OpId both_ops[] = {a, b};
  const OpId both = g.sepconv(both_ops, SepConvAttrs{.out_channels = 8});
  EXPECT_EQ(g.flops(both) - g.flops(single), 8 * 4 * 4);  // one extra add
}

TEST(Graph, BlocksGroupOps) {
  Graph g(1);
  const OpId in = g.input(4, 8, 8);
  g.begin_block();
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  g.begin_block();
  const OpId b = g.conv2d(a, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  const OpId c = g.relu(b);
  const auto blocks = g.blocks();
  ASSERT_EQ(blocks.size(), 2u);
  EXPECT_EQ(blocks[0], std::vector<OpId>{a});
  EXPECT_EQ(blocks[1], (std::vector<OpId>{b, c}));
  EXPECT_EQ(g.schedulable_ops().size(), 3u);
}

TEST(Graph, ValidateRejectsBackwardBlockEdge) {
  Graph g(1);
  const OpId in = g.input(4, 8, 8);
  g.begin_block();
  const OpId a = g.conv2d(in, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  g.begin_block();
  g.conv2d(a, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1});
  // Force a block inversion by hand is not possible through the builder API,
  // so validate() passes for any graph the builder constructs.
  EXPECT_NO_THROW(g.validate());
}

TEST(Graph, SuccsMirrorPreds) {
  Graph g = models::fig5_graph(1);
  for (const Op& op : g.ops()) {
    for (OpId p : g.preds(op.id)) {
      const auto succs = g.succs(p);
      EXPECT_NE(std::find(succs.begin(), succs.end(), op.id), succs.end());
    }
  }
}

TEST(Graph, ToStringMentionsOps) {
  Graph g = models::fig5_graph(1);
  const std::string s = g.to_string();
  EXPECT_NE(s.find("Fig5"), std::string::npos);
  EXPECT_NE(s.find("Conv"), std::string::npos);
}

TEST(Graph, OutOfRangeInputRejected) {
  Graph g(1);
  EXPECT_THROW(
      g.conv2d(5, Conv2dAttrs{.out_channels = 4, .kh = 1, .kw = 1}),
      std::out_of_range);
}

}  // namespace
}  // namespace ios
