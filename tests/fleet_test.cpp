// Fleet subsystem tests: hierarchical topology parsing (racks/nodes/devices
// and the per-level interconnects), anti-affinity replica planning, engine
// worker-death semantics, and the failure-injected fleet simulator's
// recovery invariants — zero lost requests and bit-identical replay.

#include <gtest/gtest.h>

#include <limits>
#include <stdexcept>
#include <string>
#include <vector>

#include "fleet/failure.hpp"
#include "fleet/planner.hpp"
#include "fleet/sim.hpp"
#include "fleet/topology.hpp"
#include "serve/engine.hpp"
#include "serve/trace.hpp"

namespace ios::fleet {
namespace {

// ---------------------------------------------------------------------------
// fleet_from_spec
// ---------------------------------------------------------------------------

TEST(FleetTopology, ParsesTheHierarchicalExample) {
  const FleetTopology t = fleet_from_spec("rack:2{node:4{v100x8}}");
  EXPECT_EQ(t.total_devices(), 64);
  EXPECT_EQ(t.num_nodes, 8);
  EXPECT_EQ(t.num_racks, 2);
  ASSERT_EQ(t.pool.classes.size(), 1u);
  EXPECT_EQ(t.pool.classes[0].spec.name, "Tesla V100");
  EXPECT_EQ(t.pool.classes[0].count, 64);
  // Device ids are dense and doubled as engine worker indexes.
  for (int i = 0; i < t.total_devices(); ++i) {
    EXPECT_EQ(t.devices[static_cast<std::size_t>(i)].id, i);
  }
  // Declaration order: nodes 0-3 are rack 0, nodes 4-7 rack 1, 8 devices
  // per node.
  EXPECT_EQ(t.devices[0].node, 0);
  EXPECT_EQ(t.devices[0].rack, 0);
  EXPECT_EQ(t.devices[7].node, 0);
  EXPECT_EQ(t.devices[8].node, 1);
  EXPECT_EQ(t.devices[32].node, 4);
  EXPECT_EQ(t.devices[32].rack, 1);
  EXPECT_EQ(t.devices[63].node, 7);
  EXPECT_EQ(t.devices[63].rack, 1);
}

TEST(FleetTopology, GroupsHeterogeneousDevicesByClassLikeEngineWorkers) {
  // The ServingEngine numbers workers grouped by pool class; the device
  // list must follow that order so FleetDevice::id == worker index.
  const FleetTopology t = fleet_from_spec("rack:2{node:2{p100x2,1080tix2}}");
  EXPECT_EQ(t.total_devices(), 16);
  EXPECT_EQ(t.num_nodes, 4);
  EXPECT_EQ(t.num_racks, 2);
  ASSERT_EQ(t.pool.classes.size(), 2u);
  EXPECT_EQ(t.pool.classes[0].spec.name, "Tesla P100");
  EXPECT_EQ(t.pool.classes[0].count, 8);
  EXPECT_EQ(t.pool.classes[1].spec.name, "GTX 1080Ti");
  EXPECT_EQ(t.pool.classes[1].count, 8);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(t.devices[static_cast<std::size_t>(i)].class_index, 0);
    EXPECT_EQ(t.devices[static_cast<std::size_t>(8 + i)].class_index, 1);
  }
  // Both classes cover all four nodes (2 instances per node each).
  EXPECT_EQ(t.devices[0].node, 0);
  EXPECT_EQ(t.devices[1].node, 0);
  EXPECT_EQ(t.devices[2].node, 1);
  EXPECT_EQ(t.devices[6].node, 3);
  EXPECT_EQ(t.devices[8].node, 0);
  EXPECT_EQ(t.devices[15].node, 3);
}

TEST(FleetTopology, LooseTokensFormImplicitNodesAndRacks) {
  const FleetTopology flat = fleet_from_spec("v100x4");
  EXPECT_EQ(flat.total_devices(), 4);
  EXPECT_EQ(flat.num_nodes, 1);
  EXPECT_EQ(flat.num_racks, 1);

  const FleetTopology nodes = fleet_from_spec("node:2{v100},k80");
  EXPECT_EQ(nodes.total_devices(), 3);
  // Two explicit nodes plus the implicit node for the loose k80, all in
  // one implicit rack.
  EXPECT_EQ(nodes.num_nodes, 3);
  EXPECT_EQ(nodes.num_racks, 1);
}

TEST(FleetTopology, IgnoresWhitespaceAndMergesDuplicateClasses) {
  const FleetTopology t =
      fleet_from_spec(" rack:1 { node:2 { v100 , v100x2 } } ");
  EXPECT_EQ(t.total_devices(), 6);
  EXPECT_EQ(t.num_nodes, 2);
  ASSERT_EQ(t.pool.classes.size(), 1u);
  EXPECT_EQ(t.pool.classes[0].count, 6);
}

TEST(FleetTopology, LinkLevelsFollowTheOutermostDifference) {
  InterconnectHierarchy links;
  links.intra_node = InterconnectSpec{1.0, 100.0};
  links.cross_node = InterconnectSpec{10.0, 10.0};
  links.cross_rack = InterconnectSpec{100.0, 1.0};
  const FleetTopology t = fleet_from_spec("rack:2{node:2{v100x2}}", links);
  // Class-grouped ids: v100s 0..7 = (rack 0 node 0)x2, (r0 n1)x2,
  // (r1 n2)x2, (r1 n3)x2.
  EXPECT_EQ(t.level_between(0, 0), LinkLevel::kIntraNode);
  EXPECT_EQ(t.level_between(0, 1), LinkLevel::kIntraNode);
  EXPECT_EQ(t.level_between(0, 2), LinkLevel::kCrossNode);
  EXPECT_EQ(t.level_between(0, 4), LinkLevel::kCrossRack);
  EXPECT_DOUBLE_EQ(t.link_between(0, 1).latency_us, 1.0);
  EXPECT_DOUBLE_EQ(t.link_between(0, 2).latency_us, 10.0);
  EXPECT_DOUBLE_EQ(t.link_between(0, 4).latency_us, 100.0);
  // The flattened pool prices single-node transfers at the intra-node link.
  EXPECT_DOUBLE_EQ(t.pool.interconnect.latency_us, 1.0);
  EXPECT_THROW(t.level_between(0, 99), std::out_of_range);
  EXPECT_STREQ(link_level_name(LinkLevel::kCrossRack), "cross-rack");
}

TEST(FleetTopology, RejectsMalformedSpecsNamingTheProblem) {
  EXPECT_THROW(fleet_from_spec(""), std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("rack:2{node:2{v100}"), std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("rack:2{}"), std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("node:2{}"), std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("rack:{v100}"), std::invalid_argument);
  // Misplaced levels.
  EXPECT_THROW(fleet_from_spec("rack:1{rack:1{v100}}"), std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("node:1{node:1{v100}}"), std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("node:1{rack:1{v100}}"), std::invalid_argument);
  // Fleet-wide device cap.
  EXPECT_THROW(fleet_from_spec("rack:2{node:4{v100x4096}}"),
               std::invalid_argument);
  EXPECT_THROW(fleet_from_spec("rack:4096{node:4096{v100x4096}}"),
               std::invalid_argument);

  try {
    fleet_from_spec("rack:0{v100}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'rack:0'"), std::string::npos)
        << e.what();
  }
  try {
    fleet_from_spec("rack:1{node:-2{v100}}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'node:-2'"), std::string::npos)
        << e.what();
  }
  try {
    fleet_from_spec("pod:2{v100}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'pod'"), std::string::npos)
        << e.what();
  }
  try {
    fleet_from_spec("rack:1{node:1{warp9}}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    // Device typos keep the enumerating unknown-device UX of pool_from_spec.
    EXPECT_NE(std::string(e.what()).find("known devices"), std::string::npos)
        << e.what();
  }
  try {
    fleet_from_spec("rack:1{node:1{v100x-2}}");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("'v100x-2'"), std::string::npos)
        << e.what();
  }
}

// ---------------------------------------------------------------------------
// FailureInjector
// ---------------------------------------------------------------------------

TEST(FailureInjector, SeededScheduleIsDeterministicAndExhaustible) {
  FailureSpec spec;
  spec.seed = 42;
  spec.max_kills = 3;
  spec.mean_time_between_kills_us = 1000;
  FailureInjector a(spec);
  FailureInjector b(spec);
  const std::vector<int> alive = {0, 1, 2, 3};
  for (int k = 0; k < 3; ++k) {
    EXPECT_DOUBLE_EQ(a.next_kill_us(), b.next_kill_us());
    EXPECT_GT(a.next_kill_us(), 0.0);
    EXPECT_EQ(a.fire(alive), b.fire(alive));
  }
  EXPECT_EQ(a.kills_fired(), 3);
  EXPECT_EQ(a.next_kill_us(), std::numeric_limits<double>::infinity());
  EXPECT_THROW(a.fire(alive), std::logic_error);
}

TEST(FailureInjector, ValidatesSpecAndVictims) {
  FailureSpec negative;
  negative.max_kills = -1;
  EXPECT_THROW(FailureInjector{negative}, std::invalid_argument);

  FailureSpec unsorted;
  unsorted.schedule = {KillEvent{50, 0}, KillEvent{10, 1}};
  EXPECT_THROW(FailureInjector{unsorted}, std::invalid_argument);

  FailureSpec scripted;
  scripted.schedule = {KillEvent{10, 2}, KillEvent{20, 7}};
  FailureInjector injector(scripted);
  EXPECT_DOUBLE_EQ(injector.next_kill_us(), 10);
  EXPECT_THROW(injector.fire({}), std::invalid_argument);
  EXPECT_EQ(injector.fire({0, 2, 3}), 2);
  EXPECT_THROW(injector.fire({0, 3}), std::invalid_argument);  // 7 not alive
}

// ---------------------------------------------------------------------------
// ServingEngine worker-death semantics
// ---------------------------------------------------------------------------

serve::ServerOptions tiny_engine_options(const std::string& pool_spec) {
  serve::ServerOptions options;
  options.pool = pool_from_spec(pool_spec);
  options.batching.batch_sizes = {1};  // every submit forms a batch
  return options;
}

TEST(EngineKill, DeadWorkersAreNeverRoutedToAndResetRevives) {
  serve::VirtualClock clock;
  serve::ServingEngine engine(tiny_engine_options("p100x2"), &clock);
  EXPECT_EQ(engine.alive_workers(), 2);
  EXPECT_TRUE(engine.worker_alive(0));

  engine.kill_worker(0);
  EXPECT_FALSE(engine.worker_alive(0));
  EXPECT_EQ(engine.alive_workers(), 1);
  EXPECT_EQ(engine.alive_in_class(0), 1);
  EXPECT_THROW(engine.kill_worker(0), std::invalid_argument);
  EXPECT_THROW(engine.kill_worker(99), std::out_of_range);
  EXPECT_THROW(engine.worker_alive(-1), std::out_of_range);

  for (int i = 0; i < 4; ++i) {
    const auto batches =
        engine.submit(i, "squeezenet");
    ASSERT_EQ(batches.size(), 1u);
    EXPECT_EQ(batches[0].record.worker, 1);  // never the dead worker 0
  }

  engine.reset();
  EXPECT_TRUE(engine.worker_alive(0));
  EXPECT_EQ(engine.alive_workers(), 2);
}

TEST(EngineKill, WipedOutFleetThrowsOnTheNextBatch) {
  serve::VirtualClock clock;
  serve::ServingEngine engine(tiny_engine_options("p100x2"), &clock);
  engine.kill_worker(0);
  engine.kill_worker(1);  // killing the last worker is allowed...
  EXPECT_EQ(engine.alive_workers(), 0);
  // ...but the next formed batch has nowhere to go.
  EXPECT_THROW(engine.submit(0, "squeezenet"), std::runtime_error);
}

TEST(EngineKill, WipedOutClassStopsAnchoringRouting) {
  // Heterogeneous pool: killing the whole P100 class must push every batch
  // to the 1080Ti without touching the dead class's service times.
  serve::VirtualClock clock;
  serve::ServingEngine engine(tiny_engine_options("p100,1080ti"), &clock);
  engine.kill_worker(0);
  EXPECT_EQ(engine.alive_in_class(0), 0);
  EXPECT_EQ(engine.alive_in_class(1), 1);
  const auto batches = engine.submit(0, "squeezenet");
  ASSERT_EQ(batches.size(), 1u);
  EXPECT_EQ(batches[0].record.worker, 1);
  EXPECT_EQ(batches[0].record.device, "GTX 1080Ti");
}

// ---------------------------------------------------------------------------
// FleetPlanner
// ---------------------------------------------------------------------------

TEST(FleetPlanner, SpreadsReplicasAcrossNodesAndRacks) {
  FleetPlanRequest request;
  request.topology = fleet_from_spec("rack:2{node:2{p100,1080ti}}");
  request.workload = {WorkloadItem{"squeezenet", 4, 2.0},
                      WorkloadItem{"mobilenet_v2", 4, 1.0}};
  request.replicas = 2;
  FleetPlanner planner;
  const FleetPlan plan = planner.plan(request);

  ASSERT_EQ(plan.replicas.size(), 4u);  // 2 items x 2 replicas
  EXPECT_EQ(plan.min_distinct_nodes, 2);
  EXPECT_EQ(plan.min_distinct_racks, 2);
  for (const ReplicaPlacement& r : plan.replicas) {
    // The pinned worker really is an instance of the assigned class.
    EXPECT_EQ(request.topology.devices[static_cast<std::size_t>(r.worker)]
                  .class_index,
              request.topology.pool.classes[0].spec.name == r.device ? 0 : 1);
    EXPECT_EQ(request.topology.devices[static_cast<std::size_t>(r.worker)].node,
              r.node);
  }

  // Deterministic: a fresh planner reproduces the identical pinning.
  FleetPlanner again;
  const FleetPlan replay = again.plan(request);
  ASSERT_EQ(replay.replicas.size(), plan.replicas.size());
  for (std::size_t i = 0; i < plan.replicas.size(); ++i) {
    EXPECT_EQ(replay.replicas[i].worker, plan.replicas[i].worker);
  }
  EXPECT_EQ(fleet_plan_to_json(request.topology, replay)
                .at("replicas")
                .dump(),
            fleet_plan_to_json(request.topology, plan).at("replicas").dump());
}

TEST(FleetPlanner, ClampsReplicasToTheClassPopulationAndValidates) {
  FleetPlanRequest request;
  request.topology = fleet_from_spec("node:2{p100}");
  request.workload = {WorkloadItem{"squeezenet", 1, 1.0}};
  request.replicas = 100;  // only 2 instances exist
  FleetPlanner planner;
  const FleetPlan plan = planner.plan(request);
  ASSERT_EQ(plan.replicas.size(), 2u);
  EXPECT_NE(plan.replicas[0].worker, plan.replicas[1].worker);

  request.replicas = 0;
  EXPECT_THROW(planner.plan(request), std::invalid_argument);
  request.replicas = 1;
  request.topology = FleetTopology{};
  EXPECT_THROW(planner.plan(request), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// FleetSimulator
// ---------------------------------------------------------------------------

FleetSimOptions small_fleet_options() {
  FleetSimOptions options;
  options.topology = fleet_from_spec("rack:2{node:2{p100x2,1080tix2}}");
  options.batching.batch_sizes = {1, 2, 4, 8};
  options.batching.max_queue_delay_us = 3000;
  options.workload = {WorkloadItem{"squeezenet", 8, 3.0},
                      WorkloadItem{"mobilenet_v2", 8, 2.0}};
  return options;
}

serve::Trace small_fleet_trace(int num_requests) {
  serve::TraceSpec spec;
  spec.models = {"squeezenet", "squeezenet", "mobilenet_v2"};
  spec.num_requests = num_requests;
  spec.mean_interarrival_us = 15;  // saturating on 16 devices
  spec.seed = 7;
  return serve::generate_trace(spec);
}

TEST(FleetSimulator, SeededKillsLoseNoRequestsAndRerouteInFlightBatches) {
  FleetSimOptions options = small_fleet_options();
  options.failures.seed = 11;
  options.failures.max_kills = 4;
  options.failures.first_kill_at_us = 500;
  options.failures.mean_time_between_kills_us = 1200;
  FleetSimulator sim(options);
  const serve::Trace trace = small_fleet_trace(400);
  const FleetSimResult result = sim.run(trace);

  EXPECT_EQ(result.stats.requests, 400);
  EXPECT_EQ(result.stats.lost_requests, 0);
  EXPECT_EQ(result.stats.failures, 4);
  EXPECT_GT(result.stats.killed_batches, 0);
  EXPECT_GT(result.stats.rerouted_requests, 0);
  EXPECT_GT(result.stats.mean_recovery_us, 0.0);
  ASSERT_EQ(result.latencies.size(), 400u);
  for (const double latency : result.latencies) {
    EXPECT_GE(latency, 0.0);  // -1 would mean a lost request
  }
}

TEST(FleetSimulator, ReplayIsBitIdenticalAcrossRunsAndThreadCounts) {
  const serve::Trace trace = small_fleet_trace(300);
  const auto run_with_threads = [&](int threads) {
    FleetSimOptions options = small_fleet_options();
    options.scheduler.num_threads = threads;
    options.prewarm_threads = threads;
    options.failures.seed = 13;
    options.failures.max_kills = 3;
    options.failures.first_kill_at_us = 400;
    options.failures.mean_time_between_kills_us = 1000;
    FleetSimulator sim(options);
    sim.plan();
    return sim.run(trace);
  };
  const FleetSimResult a = run_with_threads(1);
  const FleetSimResult b = run_with_threads(1);
  const FleetSimResult c = run_with_threads(4);

  // Same configuration, fresh simulator: bit-identical latencies and stats
  // (FleetStats carries no wall-clock fields by design).
  EXPECT_EQ(a.latencies, b.latencies);
  EXPECT_EQ(fleet_stats_to_json(a.stats).dump(),
            fleet_stats_to_json(b.stats).dump());
  // Host parallelism changes wall time only, never simulated results.
  EXPECT_EQ(a.latencies, c.latencies);
  EXPECT_EQ(fleet_stats_to_json(a.stats).dump(),
            fleet_stats_to_json(c.stats).dump());
}

TEST(FleetSimulator, ScriptedClassWipeOutTriggersOneWarmReplan) {
  FleetSimOptions options;
  options.topology = fleet_from_spec("node:1{p100,1080ti}");
  options.batching.batch_sizes = {1};
  options.workload = {WorkloadItem{"squeezenet", 1, 1.0}};
  // Worker 0 is the only P100: killing it wipes the class mid-trace.
  options.failures.schedule = {KillEvent{900, 0}};
  FleetSimulator sim(options);
  sim.plan();  // warms the planner's Optimizer for the re-plan

  serve::TraceSpec spec;
  spec.models = {"squeezenet"};
  spec.num_requests = 60;
  spec.mean_interarrival_us = 50;
  spec.seed = 3;
  const FleetSimResult result = sim.run(serve::generate_trace(spec));

  EXPECT_EQ(result.stats.failures, 1);
  EXPECT_EQ(result.stats.replans, 1);
  // The re-plan re-searched nothing: the shared Optimizer already holds the
  // (model, batch, survivor-class) recipes from plan().
  EXPECT_EQ(result.stats.replan_optimizations, 0);
  EXPECT_GT(result.stats.replan_cache_hits, 0);
  EXPECT_EQ(result.stats.lost_requests, 0);
}

TEST(FleetSimulator, TheLastAliveWorkerIsNeverKilled) {
  FleetSimOptions options;
  options.topology = fleet_from_spec("v100");
  options.batching.batch_sizes = {1};
  options.failures.seed = 1;
  options.failures.max_kills = 5;
  options.failures.first_kill_at_us = 0;
  options.failures.mean_time_between_kills_us = 100;
  FleetSimulator sim(options);

  serve::TraceSpec spec;
  spec.models = {"squeezenet"};
  spec.num_requests = 20;
  spec.mean_interarrival_us = 100;
  spec.seed = 2;
  const FleetSimResult result = sim.run(serve::generate_trace(spec));
  EXPECT_EQ(result.stats.failures, 0);  // one worker: every kill suppressed
  EXPECT_EQ(result.stats.lost_requests, 0);
  EXPECT_EQ(result.stats.requests, 20);
}

TEST(FleetSimulator, RejectsEmptyTopologyAndEmptyWorkloadPlans) {
  FleetSimOptions empty;
  EXPECT_THROW(FleetSimulator{empty}, std::invalid_argument);

  FleetSimOptions no_workload;
  no_workload.topology = fleet_from_spec("v100");
  FleetSimulator sim(no_workload);
  EXPECT_THROW(sim.plan(), std::invalid_argument);
}

}  // namespace
}  // namespace ios::fleet
