#include <gtest/gtest.h>

#include "core/scheduler.hpp"
#include "models/models.hpp"
#include "runtime/trace_export.hpp"
#include "schedule/baselines.hpp"
#include "util/json.hpp"

namespace ios {
namespace {

TEST(ChromeTrace, ValidJsonWithAllKernels) {
  const Graph g = models::fig2_graph(1);
  Executor ex(g, ExecConfig{tesla_v100(), {}});
  const SimResult r = ex.run_schedule(greedy_schedule(g));
  const JsonValue doc = JsonValue::parse(to_chrome_trace(r));
  const auto& events = doc.at("traceEvents").as_array();
  int complete_events = 0;
  for (const JsonValue& e : events) {
    if (e.at("ph").as_string() == "X") {
      ++complete_events;
      EXPECT_GE(e.at("dur").as_number(), 0);
      EXPECT_GE(e.at("ts").as_number(), 0);
    }
  }
  EXPECT_EQ(complete_events, static_cast<int>(r.timeline.size()));
}

TEST(ChromeTrace, IncludesWarpCounterTrack) {
  const Graph g = models::fig5_graph(1);
  Executor ex(g, ExecConfig{tesla_v100(), {}});
  const SimResult r = ex.run_schedule(sequential_schedule(g));
  const JsonValue doc = JsonValue::parse(to_chrome_trace(r));
  bool has_counter = false;
  for (const JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "C") {
      has_counter = true;
      EXPECT_GE(e.at("args").at("warps").as_number(), 0);
    }
  }
  EXPECT_TRUE(has_counter);
}

TEST(ChromeTrace, StreamsBecomeThreads) {
  const Graph g = models::fig2_graph(1);
  Executor ex(g, ExecConfig{tesla_v100(), {}});
  const SimResult r = ex.run_schedule(greedy_schedule(g));
  const JsonValue doc = JsonValue::parse(to_chrome_trace(r));
  std::set<std::int64_t> tids;
  for (const JsonValue& e : doc.at("traceEvents").as_array()) {
    if (e.at("ph").as_string() == "X") tids.insert(e.at("tid").as_int());
  }
  EXPECT_GE(tids.size(), 2u);  // greedy runs concurrent groups
}

TEST(Dot, PlainGraphListsAllOpsAndEdges) {
  const Graph g = models::fig5_graph(1);
  const std::string dot = to_dot(g);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  for (const Op& op : g.ops()) {
    EXPECT_NE(dot.find(op.name), std::string::npos) << op.name;
  }
  // Edge count: every op input becomes an arrow.
  std::size_t arrows = 0;
  for (std::size_t pos = 0; (pos = dot.find("->", pos)) != std::string::npos;
       ++pos) {
    ++arrows;
  }
  std::size_t expected = 0;
  for (const Op& op : g.ops()) expected += op.inputs.size();
  EXPECT_EQ(arrows, expected);
}

TEST(Dot, ScheduleClustersByStage) {
  const Graph g = models::fig2_graph(1);
  CostModel cost(g, ExecConfig{tesla_v100(), {}});
  const Schedule q = IosScheduler(cost).schedule_graph();
  const std::string dot = to_dot(g, &q);
  for (std::size_t i = 0; i < q.stages.size(); ++i) {
    EXPECT_NE(dot.find("cluster_stage" + std::to_string(i)),
              std::string::npos);
  }
  EXPECT_NE(dot.find("fillcolor=lightblue"), std::string::npos);
}

}  // namespace
}  // namespace ios
