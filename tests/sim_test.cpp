#include <gtest/gtest.h>

#include "sim/device.hpp"
#include "sim/engine.hpp"
#include "sim/kernel_model.hpp"
#include "graph/graph.hpp"

namespace ios {
namespace {

KernelDesc kernel(double flops, double bytes, double warps,
                  double efficiency = 1.0) {
  KernelDesc k;
  k.name = "k";
  k.flops = flops;
  k.bytes = bytes;
  k.warps = warps;
  k.efficiency = efficiency;
  return k;
}

class EngineTest : public ::testing::Test {
 protected:
  Engine engine_{tesla_v100()};
};

TEST_F(EngineTest, EmptyStreamsFinishInstantly) {
  const SimResult r = engine_.run({});
  EXPECT_EQ(r.makespan_us, 0);
  EXPECT_TRUE(r.timeline.empty());
}

TEST_F(EngineTest, SingleKernelIncludesLaunchOverhead) {
  const double lat = engine_.kernel_latency_us(kernel(1e6, 1e4, 100));
  EXPECT_GT(lat, engine_.device().kernel_launch_us);
}

TEST_F(EngineTest, LatencyMonotonicInWork) {
  const double small = engine_.kernel_latency_us(kernel(1e8, 1e5, 1000));
  const double large = engine_.kernel_latency_us(kernel(4e8, 1e5, 1000));
  EXPECT_GT(large, small);
  EXPECT_LT(large, 4 * small);  // launch overhead amortizes
}

TEST_F(EngineTest, MoreWarpsRaiseUtilization) {
  // Same work exposed with more parallelism must not be slower.
  const double narrow = engine_.kernel_latency_us(kernel(1e9, 1e5, 200));
  const double wide = engine_.kernel_latency_us(kernel(1e9, 1e5, 4000));
  EXPECT_LT(wide, narrow);
}

TEST_F(EngineTest, MemoryBoundKernelLimitedByBandwidth) {
  // Zero-FLOP kernel moving 90 MB at ~900 GB/s takes >= 100 us.
  const double lat = engine_.kernel_latency_us(kernel(0, 90e6, 6000));
  EXPECT_GT(lat, 100.0);
}

TEST_F(EngineTest, ConcurrencyHelpsSmallKernels) {
  // Two small kernels: sequential executes them back-to-back; two streams
  // overlap them and raise device utilization.
  const KernelDesc k = kernel(2e8, 1e5, 400, 0.8);
  const double seq = engine_.run({{k, k}}).makespan_us;
  const double par = engine_.run({{k}, {k}}).makespan_us;
  EXPECT_LT(par, seq * 0.85);
}

TEST_F(EngineTest, SaturatedKernelsGainLittleFromConcurrency) {
  // Two kernels that each saturate the device: overlapping them cannot beat
  // back-to-back execution by much (and contention may make it worse).
  const double slots = tesla_v100().total_warp_slots();
  const KernelDesc k = kernel(4e9, 4e8, slots, 0.8);
  const double seq = engine_.run({{k, k}}).makespan_us;
  const double par = engine_.run({{k}, {k}}).makespan_us;
  EXPECT_GT(par, seq * 0.9);
}

TEST_F(EngineTest, ContentionHurtsMemoryBoundConcurrency) {
  // Memory-bound kernels at full occupancy interfere (Section 7.2): running
  // them concurrently is slower than sequentially.
  const double slots = tesla_v100().total_warp_slots();
  const KernelDesc k = kernel(0, 2e8, slots);
  const double seq = engine_.run({{k, k}}).makespan_us;
  const double par = engine_.run({{k}, {k}}).makespan_us;
  EXPECT_GT(par, seq);
}

TEST_F(EngineTest, Deterministic) {
  const KernelDesc a = kernel(1e8, 1e6, 500);
  const KernelDesc b = kernel(3e8, 2e6, 900, 0.7);
  const SimResult r1 = engine_.run({{a, b}, {b}});
  const SimResult r2 = engine_.run({{a, b}, {b}});
  EXPECT_EQ(r1.makespan_us, r2.makespan_us);
  ASSERT_EQ(r1.timeline.size(), r2.timeline.size());
}

TEST_F(EngineTest, TimelineCoversAllKernels) {
  const KernelDesc a = kernel(1e8, 1e6, 500);
  const SimResult r = engine_.run({{a, a}, {a}});
  EXPECT_EQ(r.timeline.size(), 3u);
  for (const KernelTiming& t : r.timeline) {
    EXPECT_GE(t.start_us, 0);
    EXPECT_GT(t.end_us, t.start_us);
    EXPECT_LE(t.end_us, r.makespan_us + 1e-6);
  }
}

TEST_F(EngineTest, WarpTraceIntegralPositive) {
  const KernelDesc a = kernel(1e9, 1e6, 2000);
  const SimResult r = engine_.run({{a}, {a}});
  EXPECT_GT(r.warp_time_integral(), 0);
  EXPECT_GT(r.mean_active_warps(), 0);
  EXPECT_LE(r.mean_active_warps(),
            static_cast<double>(tesla_v100().total_warp_slots()));
}

TEST_F(EngineTest, ConcurrentRunHasMoreActiveWarps) {
  const KernelDesc a = kernel(5e8, 1e6, 800, 0.8);
  const SimResult seq = engine_.run({{a, a, a}});
  const SimResult par = engine_.run({{a}, {a}, {a}});
  EXPECT_GT(par.mean_active_warps(), seq.mean_active_warps());
}

TEST_F(EngineTest, ZeroWorkKernelCompletes) {
  const SimResult r = engine_.run({{kernel(0, 0, 1)}});
  EXPECT_EQ(r.timeline.size(), 1u);
  EXPECT_NEAR(r.makespan_us, engine_.device().kernel_launch_us, 1e-6);
}

TEST(DeviceSpec, Presets) {
  for (const DeviceSpec& d :
       {tesla_v100(), tesla_k80(), rtx_2080ti(), gtx_1080(), tesla_p100(),
        gtx_1080ti()}) {
    EXPECT_GT(d.num_sms, 0) << d.name;
    EXPECT_GT(d.peak_tflops, 0) << d.name;
    EXPECT_GT(d.dram_gbps, 0) << d.name;
    EXPECT_GT(d.total_warp_slots(), 0) << d.name;
  }
  EXPECT_GT(tesla_v100().peak_tflops, tesla_k80().peak_tflops);
}

TEST(DeviceSpec, LookupByName) {
  EXPECT_EQ(device_by_name("v100").name, "Tesla V100");
  EXPECT_EQ(device_by_name("k80").name, "Tesla K80");
  EXPECT_EQ(device_by_name("2080ti").name, "RTX 2080Ti");
  EXPECT_EQ(device_by_name("p100").name, "Tesla P100");
  EXPECT_EQ(device_by_name("1080ti").name, "GTX 1080Ti");
  EXPECT_THROW(device_by_name("tpu"), std::invalid_argument);
}

TEST(DeviceSpec, ShortNameRoundTrips) {
  for (const std::string& short_name : device_names()) {
    EXPECT_EQ(device_short_name(short_name), short_name);
    EXPECT_EQ(device_short_name(device_by_name(short_name).name), short_name);
  }
  EXPECT_THROW(device_short_name("tpu"), std::invalid_argument);
}

TEST(DeviceSpec, PascalPairIsAGenuineTradeoff) {
  // The pool-placement story rests on neither Pascal card dominating the
  // other: the P100 leads on DRAM bandwidth, the 1080Ti on FP32 peak.
  const DeviceSpec p100 = tesla_p100();
  const DeviceSpec ti = gtx_1080ti();
  EXPECT_GT(p100.dram_gbps, ti.dram_gbps);
  EXPECT_GT(ti.peak_tflops, p100.peak_tflops);

  // And the simulator must reflect it: a memory-bound kernel runs faster on
  // the P100, a compute-bound one faster on the 1080Ti.
  const KernelDesc memory_bound = kernel(1e6, 5e7, 4000, 0.8);
  EXPECT_LT(Engine(p100).kernel_latency_us(memory_bound),
            Engine(ti).kernel_latency_us(memory_bound));
  const KernelDesc compute_bound = kernel(2e10, 1e6, 4000, 0.8);
  EXPECT_GT(Engine(p100).kernel_latency_us(compute_bound),
            Engine(ti).kernel_latency_us(compute_bound));
}

TEST(DeviceSpec, FasterDeviceRunsKernelFaster) {
  const KernelDesc k = kernel(5e9, 1e7, 4000, 0.8);
  const double v100 = Engine(tesla_v100()).kernel_latency_us(k);
  const double k80 = Engine(tesla_k80()).kernel_latency_us(k);
  EXPECT_LT(v100, k80);
}

TEST(KernelModel, ConvKernelFields) {
  Graph g(1);
  const OpId in = g.input(16, 8, 8);
  const OpId c = g.conv2d(in, Conv2dAttrs{.out_channels = 32, .kh = 3, .kw = 3,
                                          .ph = 1, .pw = 1});
  const KernelDesc k = kernel_for_op(g, c);
  EXPECT_EQ(k.op, c);
  EXPECT_DOUBLE_EQ(k.flops, static_cast<double>(g.flops(c)));
  EXPECT_DOUBLE_EQ(
      k.bytes, static_cast<double>(g.input_bytes(c) + g.weight_bytes(c) +
                                   g.output_bytes(c)));
  EXPECT_GT(k.warps, 0);
  EXPECT_DOUBLE_EQ(k.efficiency, KernelModelParams{}.conv_efficiency);
}

TEST(KernelModel, BatchScalesWarps) {
  Graph g1(1), g8(8);
  const OpId i1 = g1.input(16, 8, 8);
  const OpId c1 = g1.conv2d(i1, Conv2dAttrs{.out_channels = 32, .kh = 1, .kw = 1});
  const OpId i8 = g8.input(16, 8, 8);
  const OpId c8 = g8.conv2d(i8, Conv2dAttrs{.out_channels = 32, .kh = 1, .kw = 1});
  EXPECT_DOUBLE_EQ(kernel_for_op(g8, c8).warps,
                   8 * kernel_for_op(g1, c1).warps);
}

TEST(KernelModel, EfficiencyByKind) {
  Graph g(1);
  const OpId in = g.input(16, 8, 8);
  const OpId s = g.sepconv(in, SepConvAttrs{.out_channels = 16});
  const OpId p = g.pool2d(s, Pool2dAttrs{Pool2dAttrs::Kind::kMax, 2, 2, 2, 2, 0, 0});
  const KernelModelParams params;
  EXPECT_DOUBLE_EQ(kernel_for_op(g, s).efficiency, params.sepconv_efficiency);
  EXPECT_DOUBLE_EQ(kernel_for_op(g, p).efficiency, params.pool_efficiency);
}

}  // namespace
}  // namespace ios
